// Regenerates Table 1: sensitivity of the "potentially congested" link
// counts (and the with-diurnal-pattern subset) to the level-shift magnitude
// threshold, across all six vantage points.
//
// Methodology is the paper's: run the full TSLP campaign per VP, detect
// level shifts with the rank-based CUSUM at the 5 ms floor, then count, for
// each threshold in {5, 10, 15, 20} ms, the links with any episode at or
// above it.  VP5 is topology-scaled (see DESIGN.md); the printed paper
// column keeps the original values for comparison.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace ixp;
  std::cout << "bench_table1: threshold sensitivity of congested-link labeling\n";
  std::cout << "cadence: " << format_duration(bench::round_interval_from_env())
            << (bench::fast_mode() ? "  (IXP_FAST: 6-week campaign)\n" : "  (full campaign)\n");

  const auto specs = analysis::make_all_vps();
  const auto fleet = bench::run_fleet_vps(specs);
  std::vector<analysis::Table1Row> rows;
  for (const auto& result : fleet.results) {
    rows.push_back(analysis::make_table1_row(result));
    std::cout << result.vp_name << ": monitored links: " << result.series.size()
              << ", probes sent: " << result.probes_sent << "\n";
  }
  std::cout << "\n";
  analysis::print_table1(std::cout, rows);
  std::cout << "\nNote: VP5 runs at 1:" << analysis::kVp5Scale
            << " topology scale, so its measured counts are ~1/" << analysis::kVp5Scale
            << " of the paper's (shape preserved: many flagged, none diurnal).\n";
  return 0;
}
