// Ablation of the core substitution: the fluid drop-tail queue.
//
// DESIGN.md claims the standing fluid backlog reproduces exactly the
// observable TSLP measures -- the level-shift magnitude A_w equals the
// buffer depth in time units, and the loss rate under saturation equals
// the overflow fraction.  This bench sweeps both mappings end-to-end
// through the full pipeline (scenario -> probing -> CUSUM detection), and
// compares the analytic fast path against real event-driven packets on a
// congested link.
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/scenario.h"
#include "bench_common.h"
#include "prober/prober.h"
#include "prober/tslp_driver.h"
#include "tslp/classifier.h"

namespace {

using namespace ixp;

analysis::VpSpec sweep_spec(double a_w_ms, double overload) {
  analysis::VpSpec s;
  s.vp_name = "QSWEEP";
  s.ixp.name = "QSX";
  s.ixp.country = "GH";
  s.ixp.city = "Accra";
  s.ixp.peering_prefix = *net::Ipv4Prefix::parse("196.49.0.0/24");
  s.ixp.management_prefix = *net::Ipv4Prefix::parse("196.49.1.0/24");
  s.vp_asn = 64800;
  s.vp_as_name = "QS-IX";
  s.vp_org = "ORG-QS";
  s.country = "GH";
  s.seed = 1234;
  s.campaign_start = TimePoint{};
  s.campaign_end = TimePoint(kDay * 10);
  analysis::NeighborSpec hot;
  hot.name = "HOT";
  hot.asn = 64801;
  hot.country = "GH";
  hot.port_capacity_bps = 100e6;
  analysis::CongestionSpec c;
  c.a_w_ms = a_w_ms;
  c.dt_ud = kHour * 6;
  c.peak_hour = 14.0;
  c.overload = overload;
  c.begin = TimePoint{};
  c.end = analysis::kForever;
  hot.congestion = {c};
  s.neighbors.push_back(hot);
  return s;
}

}  // namespace

int main() {
  using namespace ixp;
  std::cout << "bench_ablation_queue: validating the fluid-queue substitution\n";

  std::cout << "\n[1] buffer depth -> measured A_w (the paper's 'magnitude = router buffer')\n";
  std::cout << strformat("%-14s | %-14s | %-8s\n", "buffer (ms)", "measured A_w", "error");
  for (const double a_w : {5.0, 10.7, 17.5, 27.9, 40.0}) {
    const auto spec = sweep_spec(a_w, 1.15);
    auto rt = analysis::build_scenario(spec);
    analysis::CampaignOptions opt;
    opt.round_interval = kMinute * 10;
    opt.classifier.level_shift.threshold_ms = 3.0;
    const auto result = analysis::run_campaign(*rt, spec, opt);
    double measured = 0;
    for (const auto& rep : result.reports) {
      if (rep.far_shifts.any()) measured = rep.waveform.a_w_ms;
    }
    std::cout << strformat("%-14.1f | %-14.1f | %+.1f%%\n", a_w, measured,
                           a_w > 0 ? 100.0 * (measured - a_w) / a_w : 0.0);
  }

  std::cout << "\n[2] overload -> probe loss at saturation (expected: (x-1)/x per crossing)\n";
  std::cout << strformat("%-10s | %-12s | %-12s\n", "overload", "expected", "measured");
  for (const double overload : {1.05, 1.15, 1.30, 1.50}) {
    const auto spec = sweep_spec(15.0, overload);
    auto rt = analysis::build_scenario(spec);
    prober::Prober prober(rt->topology.net(), rt->vp_host, 0.0);
    net::Ipv4Address target;
    for (const auto& t : rt->topology.interdomain_links_of(spec.vp_asn)) {
      if (t.far_asn == 64801) target = t.far_ip;
    }
    rt->topology.net().simulator().advance_to(TimePoint(kHour * 14));
    prober::LossConfig cfg;
    cfg.batch_size = 400;
    const auto loss = prober::measure_loss(prober, target, TimePoint(kHour * 14),
                                           TimePoint(kHour * 14 + kSecond * 1200), cfg);
    const double expected = (overload - 1.0) / overload;
    std::cout << strformat("%-10.2f | %-12.3f | %-12.3f\n", overload, expected,
                           loss.average_loss());
  }

  std::cout << "\n[3] analytic fast path vs event-driven packets on a congested link\n";
  {
    const auto spec = sweep_spec(16.0, 1.08);
    auto run = [&](bool event_mode) {
      auto rt = analysis::build_scenario(spec);
      prober::Prober prober(rt->topology.net(), rt->vp_host, 0.0);
      std::vector<prober::MonitorTarget> targets;
      for (const auto& t : rt->topology.interdomain_links_of(spec.vp_asn)) {
        if (t.far_asn == 64801) {
          targets.push_back({"hot", t.near_ip, t.far_ip, t.near_asn, t.far_asn, t.at_ixp});
        }
      }
      prober::TslpConfig cfg;
      cfg.round_interval = kMinute * 10;
      cfg.event_mode = event_mode;
      prober::TslpDriver driver(prober, cfg);
      return driver.run(targets, TimePoint(kHour * 10), TimePoint(kHour * 18));
    };
    const auto fast = run(false);
    const auto slow = run(true);
    double max_dev = 0;
    int n = 0;
    for (std::size_t i = 0; i < fast[0].far_rtt.ms.size(); ++i) {
      const double a = fast[0].far_rtt.ms[i];
      const double b = slow[0].far_rtt.ms[i];
      if (std::isnan(a) || std::isnan(b)) continue;
      max_dev = std::max(max_dev, std::fabs(a - b));
      ++n;
    }
    std::cout << strformat("  %d rounds compared through the afternoon peak; "
                           "max |fast - event| = %.2f ms\n",
                           n, max_dev);
    std::cout << "  (both modes share the same fluid queues; differences are ICMP jitter draws)\n";
  }
  return 0;
}
