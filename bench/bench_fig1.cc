// Regenerates Figure 1: RTTs to both ends of the GIXA-GHANATEL link during
// phase 1 (03/03/2016 - 14/06/2016).  The paper reports far-end weekday
// peaks of 20-50 ms over a flat near end, a level-shift magnitude
// A_w = 27.9 ms, up-to-down widths of roughly 20 hours, weekday spikes
// taller than weekend ones, and record-route evidence of path symmetry.
#include <iostream>

#include "analysis/casebook.h"
#include "bench_common.h"
#include "prober/prober.h"
#include "tslp/classifier.h"

int main() {
  using namespace ixp;
  using topo::date;
  std::cout << "bench_fig1: GIXA-GHANATEL phase 1 (the congested 100 Mb/s transit link)\n";

  const auto spec = analysis::make_fig_ghanatel();
  // Campaign covering phase 1 with margin.
  auto result = bench::run_vp(spec, date(1, 7, 2016) - spec.campaign_start, kMinute * 10);

  const auto* link = bench::find_series(result, 29614, /*want_at_ixp=*/0);
  if (link == nullptr) {
    std::cerr << "GHANATEL ptp link not monitored -- bdrmap failure\n";
    return 1;
  }
  const auto phase1 = tslp::slice(*link, date(7, 3, 2016), date(13, 6, 2016));

  // Show two weeks of the waveform (as the paper's figure does).
  const auto fortnight = tslp::slice(*link, date(14, 3, 2016), date(28, 3, 2016));
  bench::print_rtt_figure("Fig 1: RTTs GIXA-GHANATEL, two weeks of phase 1", fortnight, 800);

  // Waveform characteristics vs the paper.
  tslp::CongestionClassifier classifier;
  const auto report = classifier.classify(phase1);
  const auto& cs = analysis::case_ghanatel();
  std::cout << "\nWaveform characteristics (phase 1):\n";
  bench::compare("A_w (avg shift magnitude)", cs.expected_a_w_ms, report.waveform.a_w_ms, "ms");
  bench::compare("dt_UD (avg event width)", to_hours(cs.expected_dt_ud),
                 to_hours(report.waveform.dt_ud), "h");
  bench::compare("weekday p95 elevation", 35.0, report.waveform.weekday_peak_ms, "ms");
  bench::compare("weekend p95 elevation", 20.0, report.waveform.weekend_peak_ms, "ms");
  std::cout << "  verdict: "
            << (report.verdict == tslp::Verdict::kCongested
                    ? "congested"
                    : report.verdict == tslp::Verdict::kInconclusive ? "inconclusive" : "OTHER")
            << " (near side clean: " << (report.near_clean ? "yes" : "no") << ")\n";
  std::cout << "  persistence: "
            << (report.persistence == tslp::Persistence::kSustained ? "sustained" : "transient")
            << "   (paper: sustained until the link was shut off)\n";

  // Record-route symmetry check, as in §6.2.1, on a fresh world.
  {
    auto rt2 = analysis::build_scenario(spec);
    rt2->topology.net().simulator().advance_to(date(1, 4, 2016));
    rt2->apply_timeline_until(date(1, 4, 2016));
    prober::Prober prober(rt2->topology.net(), rt2->vp_host);
    const auto sym = prober.record_route_symmetric(link->far_ip);
    std::cout << "  record-route symmetry: "
              << (sym.has_value() ? (*sym ? "symmetric" : "ASYMMETRIC") : "undecidable")
              << "   (paper: symmetric)\n";
  }

  const auto check = analysis::check_case(analysis::case_ghanatel(), report);
  std::cout << "\nCase-study check vs operators' account: "
            << (check.all() ? "PASS" : "PARTIAL") << "\n";
  std::cout << "Documented cause: " << analysis::case_ghanatel().cause << "\n";
  return 0;
}
