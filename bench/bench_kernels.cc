// Microbenchmarks of the library's computational kernels (google-benchmark):
// the rank-based CUSUM detector, fluid-queue integration, fast-path probes,
// and longest-prefix FIB lookups.  These are throughput sanity checks for
// the year-long campaign drivers, not paper results.
#include <benchmark/benchmark.h>

#include "net/prefix_map.h"
#include "sim/queue.h"
#include "stats/changepoint.h"
#include "tslp/level_shift.h"
#include "util/rng.h"

namespace {

using namespace ixp;

void BM_CusumDetection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (i > n / 2 ? 25.0 : 10.0) + rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::detect_change_points(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CusumDetection)->Arg(288)->Arg(2016);

void BM_LevelShiftDay(benchmark::State& state) {
  // One year of 5-minute samples with a daily congestion plateau.
  tslp::RttSeries s;
  s.interval = kMinute * 5;
  Rng rng(2);
  for (int d = 0; d < static_cast<int>(state.range(0)); ++d) {
    for (int i = 0; i < 288; ++i) {
      const double hour = i / 12.0;
      s.ms.push_back((hour > 12 && hour < 18 ? 22.0 : 2.0) + 0.3 * std::fabs(rng.normal()));
    }
  }
  tslp::LevelShiftDetector det;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.detect(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.ms.size()));
}
BENCHMARK(BM_LevelShiftDay)->Arg(30)->Arg(365);

void BM_FluidQueueAdvance(benchmark::State& state) {
  sim::DiurnalProfile::Config cfg;
  cfg.base_bps = 30e6;
  cfg.peak_bps = 90e6;
  sim::FluidQueue q({100e6, 350e3, std::make_shared<sim::DiurnalProfile>(cfg), kMinute, 0.0});
  TimePoint t{};
  for (auto _ : state) {
    t += kMinute * 5;
    benchmark::DoNotOptimize(q.queuing_delay(t));
  }
}
BENCHMARK(BM_FluidQueueAdvance);

void BM_PrefixLookup(benchmark::State& state) {
  net::PrefixMap<int> m;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    m.insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng.next())), 22), i);
  }
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(m.lookup(net::Ipv4Address(x)));
  }
}
BENCHMARK(BM_PrefixLookup);

}  // namespace
