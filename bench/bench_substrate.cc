// Continent-scale substrate benchmark.
//
// Generates a substrate from a topology-spec preset (src/topo/gen.h), runs
// every generated campaign through the fleet with the columnar series
// store engaged, and writes BENCH_substrate.json: links simulated per
// second and resident bytes per monitored link are the two numbers
// docs/SCALING.md sizes campaigns with.  `afixp gen --bench` is the same
// harness behind the CLI; tools/check_bench.sh runs the smoke size from
// CTest and validates the JSON.
//
//   bench_substrate [--smoke] [--spec continent100] [--jobs N] [--seed S]
//                   [--days D] [--out BENCH_substrate.json]
#include <fstream>
#include <iostream>

#include "analysis/benchmarks.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ixp;
  Flags flags("bench_substrate",
              "continent-scale substrate benchmark (BENCH_substrate.json)");
  flags.add_bool("smoke", false, "CI-sized substrate (seconds, not minutes)");
  flags.add_string("spec", "continent100",
                   "topology-spec preset to run (paper6, regional50, continent100)");
  flags.add_int("jobs", 0, "fleet workers (0 = auto: IXP_JOBS or hardware)");
  flags.add_int("seed", 0, "override the preset's seed (0 = keep)");
  flags.add_int("days", 0, "override the campaign length in days (0 = spec)");
  flags.add_string("out", "BENCH_substrate.json", "output JSON path (empty = stdout)");
  if (!flags.parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  analysis::SubstrateBenchOptions opt;
  opt.smoke = flags.get_bool("smoke");
  opt.spec = flags.get_string("spec");
  opt.jobs = static_cast<int>(flags.get_int("jobs"));
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  if (flags.get_int("days") > 0) opt.duration_override = kDay * flags.get_int("days");

  analysis::SubstrateBenchReport report;
  try {
    report = analysis::run_substrate_benchmark(opt, &std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "bench_substrate: " << e.what() << "\n";
    return 1;
  }

  const auto out_path = flags.get_string("out");
  if (out_path.empty()) {
    analysis::write_substrate_bench_json(std::cout, report);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  analysis::write_substrate_bench_json(out, report);
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
