// Shared plumbing for the table/figure benches.
//
// Every bench prints (a) the paper's reported values, (b) what this
// reproduction measures, and (c) the raw series as CSV so the figures can
// be re-plotted.  Campaign durations and cadences are configurable through
// environment variables so the full-fidelity run stays available:
//   IXP_ROUND_MINUTES  probing cadence (default 30; the paper used 5)
//   IXP_FAST=1         shorten campaigns (smoke-test mode)
//   IXP_JOBS=N         parallel campaigns for the fleet-based table benches
//                      (default: hardware concurrency, clamped to VP count)
#pragma once

#include <iostream>
#include <string>

#include "analysis/africa.h"
#include "analysis/campaign.h"
#include "analysis/fleet.h"
#include "analysis/tables.h"
#include "tslp/series.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/strings.h"

namespace ixp::bench {

inline Duration round_interval_from_env() {
  double minutes = env::double_value("IXP_ROUND_MINUTES").value_or(30);
  if (minutes <= 0) minutes = 30;
  return Duration(static_cast<std::int64_t>(minutes * 60e9));
}

inline bool fast_mode() { return env::flag("IXP_FAST"); }

/// Runs one VP's campaign with bench-standard options.  Case-study benches
/// pass `round_override` to probe at a finer cadence than the table
/// campaigns (short congestion events quantize badly at coarse rounds).
inline analysis::VpCampaignResult run_vp(const analysis::VpSpec& spec,
                                         Duration duration_override = Duration(0),
                                         Duration round_override = Duration(0)) {
  auto rt = analysis::build_scenario(spec);
  analysis::CampaignOptions opt;
  opt.round_interval =
      round_override.count() > 0 ? round_override : round_interval_from_env();
  opt.duration_override = duration_override;
  if (fast_mode() && duration_override.count() == 0) {
    opt.duration_override = kDay * 42;
  }
  return analysis::run_campaign(*rt, spec, opt);
}

/// Runs a whole VP fleet in parallel with bench-standard options (cadence
/// and duration from the environment, IXP_JOBS-many workers).  Live status
/// and the metrics table render on stderr; stdout stays byte-identical to
/// a serial run, so bench output can still be diffed.
inline analysis::FleetResult run_fleet_vps(const std::vector<analysis::VpSpec>& specs) {
  analysis::FleetOptions opt;
  opt.campaign.round_interval = round_interval_from_env();
  if (fast_mode()) opt.campaign.duration_override = kDay * 42;
  analysis::FleetStatusPrinter status(std::cerr, specs);
  opt.on_progress = [&status](const analysis::CampaignMetrics& m) { status(m); };
  auto fleet = analysis::run_fleet(specs, opt);
  status.finish();
  analysis::print_fleet_metrics(std::cerr, fleet);
  return fleet;
}

/// First series whose far AS matches (and, optionally, whose IXP flag).
inline const tslp::LinkSeries* find_series(const analysis::VpCampaignResult& r, topo::Asn far_asn,
                                           int want_at_ixp = -1) {
  for (const auto& s : r.series) {
    if (s.far_asn != far_asn) continue;
    if (want_at_ixp >= 0 && s.at_ixp != (want_at_ixp != 0)) continue;
    return &s;
  }
  return nullptr;
}

/// Renders a near/far RTT figure: ASCII to stdout plus CSV rows.
inline void print_rtt_figure(const std::string& title, const tslp::LinkSeries& link,
                             int max_csv_rows = 4000) {
  std::cout << "\n--- " << title << " ---\n";
  AsciiSeries far{"far RTT (ms)", '*', link.far_rtt.ms};
  AsciiSeries near{"near RTT (ms)", '.', link.near_rtt.ms};
  AsciiChartOptions opt;
  opt.y_label = "RTT [ms]";
  opt.x_label = strformat("time (%s total, one column ~ %s)",
                          format_duration(link.far_rtt.interval *
                                          static_cast<std::int64_t>(link.far_rtt.ms.size()))
                              .c_str(),
                          format_duration(link.far_rtt.interval *
                                          std::max<std::int64_t>(
                                              1, static_cast<std::int64_t>(link.far_rtt.ms.size()) /
                                                     opt.width))
                              .c_str());
  std::cout << render_ascii_chart({far, near}, opt);

  std::cout << "CSV (day,hour,near_ms,far_ms) -- decimated to <= " << max_csv_rows << " rows\n";
  CsvWriter csv(std::cout);
  csv.header({"day", "hour", "near_ms", "far_ms"});
  const std::size_t n = link.far_rtt.ms.size();
  const std::size_t step = std::max<std::size_t>(1, n / static_cast<std::size_t>(max_csv_rows));
  for (std::size_t i = 0; i < n; i += step) {
    const CalendarTime c = to_calendar(link.far_rtt.time_of(i));
    csv.row()
        .cell(static_cast<std::int64_t>(c.day))
        .cell(c.hour_of_day)
        .cell(i < link.near_rtt.ms.size() ? link.near_rtt.ms[i] : tslp::kMissing)
        .cell(link.far_rtt.ms[i]);
  }
  csv.end_row();
}

/// Prints a paper-vs-measured comparison line.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit) {
  std::cout << strformat("  %-28s paper: %8.2f %-4s   measured: %8.2f %-4s\n", what.c_str(), paper,
                         unit.c_str(), measured, unit.c_str());
}

}  // namespace ixp::bench
