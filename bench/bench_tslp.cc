// TSLP statistics benchmark.
//
// Classifies one synthetic link corpus (sized from a topology-spec preset)
// with all three detector engines -- legacy scalar, structure-of-arrays
// batch, and the online detector fed day-sized chunks -- and writes
// BENCH_tslp.json: series classified per second for each engine, the
// batch/scalar and online/scalar speedups, and the equivalence verdict
// (all engines must produce byte-identical reports).  `afixp bench --tslp`
// is the same harness behind the CLI; tools/check_bench.sh runs the smoke
// size from CTest, validates the JSON, and gates the committed reference
// record on speedup_batch >= 3x.
//
//   bench_tslp [--smoke] [--spec regional50] [--seed S] [--repeats N]
//              [--out BENCH_tslp.json]
#include <fstream>
#include <iostream>

#include "analysis/benchmarks.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ixp;
  Flags flags("bench_tslp", "TSLP statistics benchmark (BENCH_tslp.json)");
  flags.add_bool("smoke", false, "CI-sized corpus (seconds, not minutes)");
  flags.add_string("spec", "regional50",
                   "topology-spec preset sizing the corpus (paper6, regional50, continent100)");
  flags.add_int("seed", 0, "override the preset's seed (0 = keep)");
  flags.add_int("repeats", 1, "warm passes per engine (cold pass is always 1)");
  flags.add_string("out", "BENCH_tslp.json", "output JSON path (empty = stdout)");
  if (!flags.parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  analysis::TslpBenchOptions opt;
  opt.smoke = flags.get_bool("smoke");
  opt.spec = flags.get_string("spec");
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  opt.repeats = static_cast<int>(flags.get_int("repeats"));

  analysis::TslpBenchReport report;
  try {
    report = analysis::run_tslp_benchmark(opt, &std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "bench_tslp: " << e.what() << "\n";
    return 1;
  }

  const auto out_path = flags.get_string("out");
  if (out_path.empty()) {
    analysis::write_tslp_bench_json(std::cout, report);
    return report.equivalent ? 0 : 1;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  analysis::write_tslp_bench_json(out, report);
  std::cerr << "wrote " << out_path << "\n";
  return report.equivalent ? 0 : 1;
}
