// Detector ablations (§5.2 design choices):
//   1. rank-based CUSUM vs plain (parametric) CUSUM under heavy-tailed
//      ICMP noise -- why the paper uses ranks;
//   2. the 30-minute minimum shift duration vs false positives from short
//      blips;
//   3. probing cadence (the paper's 5-minute rounds vs coarser ones) vs
//      detection of short congestion events.
// Each cell reports detection precision/recall against injected ground
// truth over many synthetic link-series.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "tslp/level_shift.h"
#include "util/rng.h"

namespace {

using namespace ixp;

// Builds a far-RTT series with `days` days; congested days get a plateau of
// `magnitude` for `width_hours`.  Heavy-tailed outliers model ICMP slow
// paths.
tslp::RttSeries make_series(int days, double magnitude, double width_hours, Duration interval,
                            double outlier_rate, bool congested, std::uint64_t seed) {
  Rng rng(seed);
  tslp::RttSeries s;
  s.interval = interval;
  const int spd = static_cast<int>(kDay.count() / interval.count());
  for (int d = 0; d < days; ++d) {
    for (int i = 0; i < spd; ++i) {
      const double hour = 24.0 * i / spd;
      double v = 2.0 + 0.3 * std::fabs(rng.normal());
      if (congested && hour >= 13.0 && hour < 13.0 + width_hours) v += magnitude;
      if (rng.chance(outlier_rate)) v += rng.pareto(1.5, 30.0);  // slow ICMP
      s.ms.push_back(v);
    }
  }
  return s;
}

struct PrecisionRecall {
  int tp = 0, fp = 0, fn = 0;
  double precision() const { return tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0; }
  double recall() const { return tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0; }
};

PrecisionRecall evaluate(const tslp::LevelShiftOptions& opt, Duration interval, double magnitude,
                         double width_hours, double outlier_rate, int trials) {
  PrecisionRecall pr;
  tslp::LevelShiftDetector det(opt);
  for (int t = 0; t < trials; ++t) {
    const bool congested = (t % 2) == 0;
    const auto s = make_series(10, magnitude, width_hours, interval, outlier_rate,
                               congested, 1000 + static_cast<std::uint64_t>(t));
    const bool flagged = det.detect(s).any();
    if (congested && flagged) ++pr.tp;
    if (congested && !flagged) ++pr.fn;
    if (!congested && flagged) ++pr.fp;
  }
  return pr;
}

}  // namespace

int main() {
  using namespace ixp;
  const int trials = bench::fast_mode() ? 10 : 30;
  std::cout << "bench_detector: level-shift detector ablations (" << trials
            << " series per cell)\n";

  std::cout << "\n[1] rank-based vs plain CUSUM under heavy-tailed ICMP outliers\n";
  std::cout << strformat("%-14s | %-22s | %-22s\n", "outlier rate", "rank precision/recall",
                         "plain precision/recall");
  for (const double rate : {0.0, 0.05, 0.15, 0.25}) {
    tslp::LevelShiftOptions rank_opt;
    tslp::LevelShiftOptions plain_opt;
    plain_opt.cusum.use_ranks = false;
    const auto r = evaluate(rank_opt, kMinute * 5, 12.0, 5.0, rate, trials);
    const auto p = evaluate(plain_opt, kMinute * 5, 12.0, 5.0, rate, trials);
    std::cout << strformat("%-14.2f | %8.2f / %-11.2f | %8.2f / %-11.2f\n", rate, r.precision(),
                           r.recall(), p.precision(), p.recall());
  }

  std::cout << "\n[2] minimum shift duration (paper: 30 min) vs 35-minute blips\n";
  std::cout << "(the CUSUM's own minimum segment already suppresses anything under 30 min;\n"
               " this knob controls how much longer an elevation must persist)\n";
  std::cout << strformat("%-16s | %-10s\n", "min duration", "flagged blip-only series");
  for (const Duration min_dur : {kMinute * 5, kMinute * 30, kMinute * 60, kMinute * 120}) {
    tslp::LevelShiftOptions opt;
    opt.min_duration = min_dur;
    tslp::LevelShiftDetector det(opt);
    int flagged = 0;
    for (int t = 0; t < trials; ++t) {
      // Clean series plus four 35-minute 30 ms blips per day (7 samples
      // each; enough elevated mass that the quiet-window fast path does
      // not skip the day outright).
      auto s = make_series(10, 0.0, 0.0, kMinute * 5, 0.0, false, 2000 + t);
      const int spd = 288;
      for (int d = 0; d < 10; ++d) {
        for (const int start : {72, 120, 168, 216}) {
          for (int i = 0; i < 7; ++i) s.ms[static_cast<std::size_t>(d * spd + start + i)] = 32.0;
        }
      }
      flagged += det.detect(s).any() ? 1 : 0;
    }
    std::cout << strformat("%-16s | %d/%d\n", format_duration(min_dur).c_str(), flagged, trials);
  }

  std::cout << "\n[3] probing cadence vs short-event recall (2 h events, 15 ms)\n";
  std::cout << strformat("%-12s | %-10s %-10s\n", "cadence", "recall", "precision");
  for (const Duration cadence : {kMinute * 5, kMinute * 15, kMinute * 30, kMinute * 60}) {
    tslp::LevelShiftOptions opt;
    const auto pr = evaluate(opt, cadence, 15.0, 2.0, 0.01, trials);
    std::cout << strformat("%-12s | %-10.2f %-10.2f\n", format_duration(cadence).c_str(),
                           pr.recall(), pr.precision());
  }

  std::cout << "\n[4] threshold sweep on a 10 ms link (the Table 1 mechanism)\n";
  std::cout << strformat("%-12s | %-10s\n", "threshold", "flagged");
  for (const double threshold : {5.0, 10.0, 15.0, 20.0}) {
    tslp::LevelShiftOptions opt;
    opt.threshold_ms = threshold;
    tslp::LevelShiftDetector det(opt);
    int flagged = 0;
    for (int t = 0; t < trials; ++t) {
      const auto s = make_series(10, 10.7, 6.0, kMinute * 5, 0.01, true, 3000 + t);
      flagged += det.detect(s).any() ? 1 : 0;
    }
    std::cout << strformat("%-12.0f | %d/%d\n", threshold, flagged, trials);
  }
  return 0;
}
