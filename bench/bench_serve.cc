// Serving-layer benchmark: read throughput against a *live* observatory.
//
// Starts a ServeDaemon on a generated substrate with the campaign driver
// looping (rounds=0), waits for the first epoch, then soaks
// /api/v1/links/top with keep-alive client threads for a fixed window and
// writes BENCH_serve.json (schema afixp-bench-serve/1): queries per second
// while campaign passes and epoch publishes are happening underneath is
// the number docs/SERVING.md quotes.  The snapshot hot path has no locks,
// so read throughput must not care that the writer is busy.
// tools/check_bench.sh runs the smoke size from CTest and validates the
// JSON; the committed full-workload record is gated too (>= 10k queries/s
// when the recording host had CPUs to spare).
//
//   bench_serve [--smoke] [--spec continent100] [--seconds S]
//               [--client-threads N] [--http-threads N] [--jobs N]
//               [--days D] [--out BENCH_serve.json]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "analysis/africa.h"
#include "analysis/substrate.h"
#include "net/http.h"
#include "serve/serve.h"
#include "topo/gen.h"
#include "util/flags.h"
#include "util/strings.h"

namespace {

using namespace ixp;

struct SoakReport {
  std::string workload;
  std::string spec;
  int http_threads = 0;
  int client_threads = 0;
  double soak_seconds = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  double queries_per_sec = 0.0;
  std::uint64_t passes = 0;
  std::uint64_t epochs = 0;
  std::uint64_t links = 0;
  unsigned host_cpus = 0;
};

void write_json(std::ostream& out, const SoakReport& r) {
  out << "{\n";
  out << strformat("  \"schema\": \"afixp-bench-serve/1\",\n");
  out << strformat("  \"workload\": \"%s\",\n", r.workload.c_str());
  out << strformat("  \"spec\": \"%s\",\n", r.spec.c_str());
  out << strformat("  \"http_threads\": %d,\n", r.http_threads);
  out << strformat("  \"client_threads\": %d,\n", r.client_threads);
  out << strformat("  \"soak_seconds\": %.3f,\n", r.soak_seconds);
  out << strformat("  \"queries\": %llu,\n",
                   static_cast<unsigned long long>(r.queries));
  out << strformat("  \"errors\": %llu,\n",
                   static_cast<unsigned long long>(r.errors));
  out << strformat("  \"queries_per_sec\": %.1f,\n", r.queries_per_sec);
  out << strformat("  \"passes\": %llu,\n",
                   static_cast<unsigned long long>(r.passes));
  out << strformat("  \"epochs\": %llu,\n",
                   static_cast<unsigned long long>(r.epochs));
  out << strformat("  \"links\": %llu,\n",
                   static_cast<unsigned long long>(r.links));
  out << strformat("  \"host_cpus\": %u\n", r.host_cpus);
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("bench_serve",
              "live-observatory read-throughput benchmark (BENCH_serve.json)");
  flags.add_bool("smoke", false,
                 "CI-sized soak: paper's six VPs, one week, two seconds");
  flags.add_string("spec", "continent100",
                   "substrate preset to serve (paper6 = the six hand-written VPs)");
  flags.add_int("seconds", 10, "soak window length");
  flags.add_int("client-threads", 2, "keep-alive client threads");
  flags.add_int("http-threads", 2, "HTTP worker threads");
  flags.add_int("jobs", 0, "fleet workers (0 = auto: IXP_JOBS or hardware)");
  flags.add_int("days", 0, "campaign length in days (0 = full calendar)");
  flags.add_string("out", "BENCH_serve.json", "output JSON path (empty = stdout)");
  if (!flags.parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const bool smoke = flags.get_bool("smoke");
  SoakReport report;
  report.workload = smoke ? "smoke" : "full";
  report.spec = smoke ? "paper6" : flags.get_string("spec");
  report.http_threads = static_cast<int>(flags.get_int("http-threads"));
  report.client_threads =
      smoke ? 1 : static_cast<int>(flags.get_int("client-threads"));
  report.host_cpus = std::thread::hardware_concurrency();
  const int soak_seconds =
      smoke ? 2 : static_cast<int>(flags.get_int("seconds"));

  serve::ServeOptions sopt;
  if (report.spec == "paper6") {
    sopt.specs = analysis::make_all_vps();
  } else {
    const std::optional<topo::TopoSpec> spec = topo::topo_spec_preset(report.spec);
    if (!spec) {
      std::cerr << "bench_serve: unknown substrate preset '" << report.spec << "'\n";
      return 2;
    }
    try {
      sopt.specs = analysis::generate_substrate(*spec);
    } catch (const std::exception& e) {
      std::cerr << "bench_serve: " << e.what() << "\n";
      return 1;
    }
    sopt.campaign.columnar = true;  // the substrate default (docs/SCALING.md)
  }
  sopt.campaign.round_interval = kMinute * 30;
  if (flags.get_int("days") > 0) {
    sopt.campaign.duration_override = kDay * flags.get_int("days");
  } else if (smoke) {
    sopt.campaign.duration_override = kDay * 7;
  }
  sopt.jobs = static_cast<int>(flags.get_int("jobs"));
  sopt.http_threads = report.http_threads;
  sopt.rounds = 0;  // keep passes coming until the soak window closes

  serve::ServeDaemon daemon(std::move(sopt));
  std::string err;
  if (!daemon.start(&err)) {
    std::cerr << "bench_serve: " << err << "\n";
    return 1;
  }
  std::cerr << "bench_serve: serving " << report.spec << " on 127.0.0.1:"
            << daemon.port() << ", waiting for the first epoch\n";
  while (daemon.epochs_published() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Soak: every client thread hammers the ranked-links endpoint over one
  // keep-alive connection while the campaign driver keeps publishing.
  std::atomic<bool> stop_clients{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(report.client_threads));
  const auto soak_begin = std::chrono::steady_clock::now();
  for (int t = 0; t < report.client_threads; ++t) {
    clients.emplace_back([&] {
      net::HttpClient client;
      int status = 0;
      std::string body;
      while (!stop_clients.load(std::memory_order_acquire)) {
        if (!client.connected() && !client.connect(daemon.port())) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (client.get("/api/v1/links/top?n=20", &status, &body) && status == 200) {
          queries.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(soak_seconds));
  stop_clients.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - soak_begin)
          .count();

  daemon.request_stop();
  if (daemon.wait() != 0) {
    std::cerr << "bench_serve: daemon exited non-zero\n";
    return 1;
  }

  report.soak_seconds = wall;
  report.queries = queries.load();
  report.errors = errors.load();
  report.queries_per_sec = wall > 0 ? static_cast<double>(report.queries) / wall : 0;
  report.passes = daemon.passes_completed();
  report.epochs = daemon.epochs_published();
  report.links = daemon.snapshot()->links.size();
  std::cerr << strformat(
      "bench_serve: %llu queries in %.2fs (%.0f/s), %llu errors, "
      "%llu passes, %llu epochs, %llu links\n",
      static_cast<unsigned long long>(report.queries), wall,
      report.queries_per_sec, static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.passes),
      static_cast<unsigned long long>(report.epochs),
      static_cast<unsigned long long>(report.links));

  const std::string out_path = flags.get_string("out");
  if (out_path.empty()) {
    write_json(std::cout, report);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  write_json(out, report);
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
