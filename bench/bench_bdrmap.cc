// Border-mapping accuracy (§4): the paper reports that bdrmap correctly
// discovered 96.2 % of the VP networks' neighbors on average (validated by
// emailing the probe hosts).  This bench scores bdrmap-lite against the
// simulator's ground truth at each VP's first snapshot, and adds two
// ablations: inference without the IXP participant data (PCH's
// ip_asn_mapping role) and without the infrastructure (/30) delegations --
// the two data sources the paper's process leans on hardest.
#include <iostream>

#include "analysis/africa.h"
#include "analysis/scenario.h"
#include "bdrmap/bdrmap.h"
#include "bench_common.h"
#include "registry/registry.h"

int main() {
  using namespace ixp;
  std::cout << "bench_bdrmap: neighbor/link discovery accuracy vs ground truth\n";
  std::cout << "(paper: 96.2% of VP neighbors correctly discovered on average)\n\n";
  std::cout << strformat("%-5s | %9s %9s | %9s | %12s %12s\n", "VP", "nbr", "link", "false",
                         "no-PCH nbr", "no-/30 nbr");
  std::cout << std::string(72, '-') << "\n";

  double recall_sum = 0;
  int count = 0;
  for (const auto& spec : analysis::make_all_vps()) {
    auto rt = analysis::build_scenario(spec);
    rt->topology.net().simulator().advance_to(spec.campaign_start);
    rt->apply_timeline_until(spec.campaign_start);
    prober::Prober prober(rt->topology.net(), rt->vp_host, 0.0);
    const auto data = registry::harvest(rt->topology, *rt->bgp, rt->vp_asn, rt->collectors);
    const auto truth = rt->topology.interdomain_links_of(rt->vp_asn);

    bdrmap::Bdrmap mapper(prober, data, rt->vp_asn);
    const auto full = bdrmap::score(mapper.run(), truth);

    // Ablation 1: no IXP participant mapping.
    auto data_no_pch = data;
    data_no_pch.ixp_participants.clear();
    bdrmap::Bdrmap mapper2(prober, data_no_pch, rt->vp_asn);
    const auto no_pch = bdrmap::score(mapper2.run(), truth);

    // Ablation 2: no infrastructure delegations (/30s vanish).
    auto data_no_infra = data;
    std::erase_if(data_no_infra.delegations,
                  [](const registry::DelegationRecord& d) { return d.prefix.length() >= 30; });
    bdrmap::Bdrmap mapper3(prober, data_no_infra, rt->vp_asn);
    const auto no_infra = bdrmap::score(mapper3.run(), truth);

    std::cout << strformat("%-5s | %8.1f%% %8.1f%% | %9zu | %11.1f%% %11.1f%%\n",
                           spec.vp_name.c_str(), 100.0 * full.neighbor_recall(),
                           100.0 * full.link_recall(), full.false_neighbors,
                           100.0 * no_pch.neighbor_recall(), 100.0 * no_infra.neighbor_recall());
    recall_sum += full.neighbor_recall();
    ++count;
  }
  std::cout << std::string(72, '-') << "\n";
  std::cout << strformat("average neighbor recall: %.1f%%   (paper: 96.2%%)\n",
                         100.0 * recall_sum / count);
  return 0;
}
