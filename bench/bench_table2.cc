// Regenerates Table 2: per-VP evolution of discovered IP (peering) links,
// congested links, and AS neighbors (peers) at the paper's snapshot dates,
// plus the §6.1 headline (2.2 % of discovered IP peering links congested)
// and the per-VP congestion fractions.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace ixp;
  std::cout << "bench_table2: evolution of discovered links / neighbors / congestion\n";
  std::cout << "cadence: " << format_duration(bench::round_interval_from_env()) << "\n";

  std::vector<analysis::VpSpec> specs = analysis::make_all_vps();
  auto fleet = bench::run_fleet_vps(specs);
  std::vector<analysis::Table2Row> rows;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (auto& row : analysis::make_table2_rows(fleet.results[i], specs[i])) rows.push_back(row);
  }
  std::vector<analysis::VpCampaignResult> results = std::move(fleet.results);
  std::cout << "\n";
  analysis::print_table2(std::cout, rows);

  // §6.1 aggregates.
  const auto headline = analysis::make_headline(results);
  std::cout << "\nHeadline (6.1): " << headline.congested_links << " of "
            << headline.total_peering_links << " monitored IP peering links congested = "
            << strformat("%.1f%%", headline.fraction()) << "   (paper: 2.2%)\n";
  std::cout << "Per-VP fraction of links with any congestion (paper: VP1 7.7%, VP2 3.3%, "
               "VP3 0.6%, VP4 33%, VP5 0%, VP6 0%):\n";
  for (const auto& r : results) {
    std::size_t peering = 0, congested = 0;
    for (std::size_t i = 0; i < r.series.size(); ++i) {
      if (!r.series[i].at_ixp) continue;
      ++peering;
      if (r.reports[i].congested()) ++congested;
    }
    std::cout << strformat("  %s: %zu/%zu = %.1f%%\n", r.vp_name.c_str(), congested, peering,
                           peering ? 100.0 * congested / peering : 0.0);
  }
  return 0;
}
