// Probe hot-path benchmark harness.
//
// Runs the simulator workloads in src/analysis/benchmarks.h (probe_fabric,
// event_loop, campaign_six_vp, lp_islands) and writes BENCH_sim.json.
// Fixed seeds and fixed probe counts keep runs comparable across PRs; see
// the "Benchmark harness" section of README.md for how to compare against
// the previous PR's numbers.  `afixp bench` is the same harness behind the
// CLI; tools/check_bench.sh runs the smoke size from CTest.
//
//   bench_probe [--smoke] [--out BENCH_sim.json] [--only <name>] [--repeats N]
//               [--metrics] [--sim-threads N]
#include <fstream>
#include <iostream>

#include "analysis/benchmarks.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ixp;
  Flags flags("bench_probe", "probe hot-path benchmark harness (BENCH_sim.json)");
  flags.add_bool("smoke", false, "CI-sized workloads (seconds, not minutes)");
  flags.add_string("out", "BENCH_sim.json", "output JSON path (empty = stdout)");
  flags.add_string("only", "", "run only the named benchmark");
  flags.add_int("repeats", 3, "warm passes per micro-benchmark");
  flags.add_bool("metrics", false,
                 "collect campaign metrics during campaign_six_vp (measures "
                 "the observability overhead; default measures the disabled path)");
  flags.add_int("sim-threads", 0,
                "LP workers for the lp_islands serial-vs-parallel comparison "
                "(0 = IXP_SIM_THREADS, else 8 -- the committed-record setup)");
  if (!flags.parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  analysis::BenchOptions opt;
  opt.smoke = flags.get_bool("smoke");
  opt.only = flags.get_string("only");
  opt.repeats = static_cast<int>(flags.get_int("repeats"));
  opt.metrics = flags.get_bool("metrics");
  opt.sim_threads = static_cast<int>(flags.get_int("sim-threads"));
  const auto report = analysis::run_sim_benchmarks(opt, &std::cerr);

  const auto out_path = flags.get_string("out");
  if (out_path.empty()) {
    analysis::write_bench_json(std::cout, report);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  analysis::write_bench_json(out, report);
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
