// Regenerates Figure 4: the QCELL-NETPAGE link at SIXP.
//   Phase 1 (29/02/2016 - 28/04/2016): repeating diurnal congestion on
//   NETPAGE's 10 Mb/s port (A_w = 10.7 ms, dt_UD = 6 h 22 m, ~1-day
//   periodicity, weekday spikes ~35 ms vs ~15 ms on weekends), caused by
//   user demand for the Google caches QCELL hosts.
//   Phase 2 (after the 28/04/2016 upgrade to 1 Gb/s): the pattern
//   disappears and RTTs stay below 10 ms to the end of the campaign.
#include <iostream>

#include "analysis/casebook.h"
#include "bench_common.h"
#include "tslp/classifier.h"

int main() {
  using namespace ixp;
  using topo::date;
  std::cout << "bench_fig4: QCELL-NETPAGE (demand-driven congestion, fixed by an upgrade)\n";

  const auto spec = analysis::make_fig_netpage();
  const Duration duration =
      bench::fast_mode() ? date(1, 6, 2016) - spec.campaign_start : Duration(0);
  auto result = bench::run_vp(spec, duration, kMinute * 10);

  const auto* link = bench::find_series(result, 65400);
  if (link == nullptr) {
    std::cerr << "NETPAGE link not monitored -- bdrmap failure\n";
    return 1;
  }

  const auto phase1 = tslp::slice(*link, date(1, 3, 2016), date(27, 4, 2016));
  bench::print_rtt_figure("Fig 4a: phase 1 (10 Mb/s port, congested)",
                          tslp::slice(*link, date(14, 3, 2016), date(11, 4, 2016)), 800);

  tslp::CongestionClassifier classifier;
  const auto rep1 = classifier.classify(phase1);
  const auto& cs = analysis::case_netpage();
  std::cout << "\nPhase 1 waveform:\n";
  bench::compare("A_w (avg shift magnitude)", cs.expected_a_w_ms, rep1.waveform.a_w_ms, "ms");
  bench::compare("dt_UD (avg event width)", to_hours(cs.expected_dt_ud),
                 to_hours(rep1.waveform.dt_ud), "h");
  bench::compare("periodicity", 24.0, to_hours(rep1.waveform.period), "h");
  bench::compare("weekday spike height", 35.0, rep1.waveform.weekday_peak_ms, "ms");
  bench::compare("weekend spike height", 15.0, rep1.waveform.weekend_peak_ms, "ms");
  std::cout << "  diurnal pattern: " << (rep1.has_diurnal_pattern() ? "yes" : "no")
            << ", near clean: " << (rep1.near_clean ? "yes" : "no") << "\n";

  const TimePoint p2_end = bench::fast_mode() ? date(1, 6, 2016) : date(1, 3, 2017);
  const auto phase2 = tslp::slice(*link, date(29, 4, 2016), p2_end);
  bench::print_rtt_figure("Fig 4b: phase 2 (after the 1 Gb/s upgrade)",
                          tslp::slice(*link, date(29, 4, 2016),
                                      std::min(p2_end, date(27, 5, 2016))),
                          800);
  const auto rep2 = classifier.classify(phase2);
  std::cout << "\nPhase 2: diurnal pattern "
            << (rep2.has_diurnal_pattern() ? "STILL PRESENT (unexpected)" : "gone")
            << "; verdict "
            << (rep2.verdict == tslp::Verdict::kNotCongested ? "not congested" : "NOT clean")
            << "   (paper: congestion events disappeared after the upgrade)\n";

  // The full-series verdict should be congested-but-transient.
  const auto full = classifier.classify(*link);
  std::cout << "full-series persistence: "
            << (full.persistence == tslp::Persistence::kTransient
                    ? "transient"
                    : full.persistence == tslp::Persistence::kSustained ? "sustained" : "none")
            << "   (paper: transient -- mitigated by the upgrade)\n";
  std::cout << "Documented cause: " << cs.cause << "\n";
  return 0;
}
