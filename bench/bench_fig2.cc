// Regenerates Figure 2: GIXA-GHANATEL phase 2 (15/06/2016 - 06/08/2016),
// after GHANATEL shut off the transit service and reused the link for
// peering.  The paper reports (a) a diurnal far-end waveform with a 10 ms
// amplitude, and (b) loss rates with visible diurnal structure (plotted up
// to 25 %, raw batches ranging 0-85 %).
#include <iostream>

#include "analysis/casebook.h"
#include "bench_common.h"
#include "prober/prober.h"
#include "prober/tslp_driver.h"
#include "stats/descriptive.h"
#include "tslp/classifier.h"
#include "tslp/loss_analysis.h"

int main() {
  using namespace ixp;
  using topo::date;
  std::cout << "bench_fig2: GIXA-GHANATEL phase 2 (peering reuse of the 100 Mb/s link)\n";

  const auto spec = analysis::make_fig_ghanatel();
  auto result = bench::run_vp(spec, date(10, 8, 2016) - spec.campaign_start, kMinute * 10);

  const auto* link = bench::find_series(result, 29614, /*want_at_ixp=*/1);
  if (link == nullptr) {
    std::cerr << "GHANATEL LAN link not monitored -- bdrmap failure\n";
    return 1;
  }
  const auto phase2 = tslp::slice(*link, date(16, 6, 2016), date(5, 8, 2016));
  bench::print_rtt_figure("Fig 2a: RTTs GIXA-GHANATEL in phase 2", phase2, 800);

  tslp::CongestionClassifier classifier;
  const auto report = classifier.classify(phase2);
  std::cout << "\nWaveform characteristics (phase 2):\n";
  bench::compare("amplitude (A_w)", 10.0, report.waveform.a_w_ms, "ms");
  std::cout << "  diurnal pattern: " << (report.has_diurnal_pattern() ? "yes" : "no")
            << "   (paper: yes)\n";

  // Figure 2b: loss rate on the link during phase 2, from 1 pps batches of
  // 100 probes (run on a fresh world so the queues replay the phase).
  std::cout << "\nFig 2b: loss rate on the link in phase 2 (batches of 100 probes at 1 pps)\n";
  auto rt2 = analysis::build_scenario(spec);
  const TimePoint loss_start = date(21, 7, 2016);
  const TimePoint loss_end = date(5, 8, 2016);
  rt2->topology.net().simulator().advance_to(spec.campaign_start);
  rt2->apply_timeline_until(loss_start);
  prober::Prober prober(rt2->topology.net(), rt2->vp_host, 0.0);
  prober::LossConfig lcfg;
  lcfg.batch_gap = bench::fast_mode() ? kMinute * 60 : kMinute * 15;
  const auto loss = prober::measure_loss(prober, link->far_ip, loss_start, loss_end, lcfg);

  std::vector<double> series;
  series.reserve(loss.batches.size());
  for (const auto& b : loss.batches) series.push_back(100.0 * b.loss_rate());
  AsciiChartOptions opt;
  opt.y_label = "loss [%]";
  opt.x_label = "time (21/07 - 05/08/2016)";
  std::cout << render_ascii_chart({{"loss %", '#', series}}, opt);
  CsvWriter csv(std::cout);
  csv.header({"day", "hour", "loss_pct"});
  for (const auto& b : loss.batches) {
    const auto c = to_calendar(b.at);
    csv.row().cell(static_cast<std::int64_t>(c.day)).cell(c.hour_of_day).cell(100.0 * b.loss_rate());
  }
  csv.end_row();

  const double peak = stats::max_value(series);
  std::cout << strformat("\naverage loss: %.1f%%   peak batch loss: %.1f%%   "
                         "(paper: diurnal loss, batches ranging 0-85%%)\n",
                         100.0 * loss.average_loss(), peak);

  // The paper's reading of Fig 2b: the loss-rate increase *confirms* the
  // diurnal congestion pattern.  Quantify that with the loss/episode
  // correlation over the same window.
  const auto corr = tslp::correlate_loss(loss, phase2.far_rtt, report.far_shifts);
  std::cout << strformat(
      "loss inside congestion episodes: %.1f%%   outside: %.1f%%   correlation: %.2f\n",
      100.0 * corr.loss_in_episodes, 100.0 * corr.loss_outside, corr.correlation);
  std::cout << "loss confirms the diurnal pattern: "
            << (corr.loss_confirms_congestion() ? "yes" : "no") << "   (paper: yes)\n";
  return 0;
}
