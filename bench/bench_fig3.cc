// Regenerates Figure 3: the GIXA-KNET link.  From 06/08/2016 to the end of
// the campaign (~8 months) the far-end RTTs show a sustained diurnal
// waveform (A_w = 17.5 ms, dt_UD = 2 h 14 m after sanitization, a dip
// around midnight, an afternoon plateau near 20 ms, identical on business
// days and weekends) while the near end stays below 1 ms; the average loss
// rate is only 0.1 %, so end users were likely unaffected.  The suspected
// cause is the KNET router's control plane (slow ICMP at peak load), which
// is exactly how this scenario generates the waveform.
#include <iostream>

#include "analysis/casebook.h"
#include "bench_common.h"
#include "prober/prober.h"
#include "prober/tslp_driver.h"
#include "tslp/classifier.h"
#include "tslp/loss_analysis.h"

int main() {
  using namespace ixp;
  using topo::date;
  std::cout << "bench_fig3: GIXA-KNET (slow-ICMP diurnal waveform, low loss)\n";

  const auto spec = analysis::make_fig_knet();
  auto result = bench::run_vp(spec, Duration(0), kMinute * 5);

  const auto* link = bench::find_series(result, 33786);
  if (link == nullptr) {
    std::cerr << "KNET link not monitored -- bdrmap failure\n";
    return 1;
  }
  const TimePoint pattern_start = date(6, 8, 2016);
  const TimePoint shown_end = bench::fast_mode() ? pattern_start + kDay * 14 : date(1, 10, 2016);
  bench::print_rtt_figure("Fig 3a: RTTs GIXA-KNET from 06/08/2016",
                          tslp::slice(*link, pattern_start, shown_end), 800);

  const auto active = tslp::slice(*link, pattern_start, link->far_rtt.time_of(link->far_rtt.size()));
  tslp::CongestionClassifier classifier;
  const auto report = classifier.classify(active);
  const auto& cs = analysis::case_knet();
  std::cout << "\nWaveform characteristics:\n";
  bench::compare("A_w (avg shift magnitude)", cs.expected_a_w_ms, report.waveform.a_w_ms, "ms");
  bench::compare("dt_UD (avg event width)", to_hours(cs.expected_dt_ud),
                 to_hours(report.waveform.dt_ud), "h");
  std::cout << "  near end stays below 1 ms: "
            << (report.near_shifts.baseline_ms < 1.0 && report.near_clean ? "yes" : "no")
            << "   (paper: yes)\n";
  std::cout << "  weekday vs weekend amplitude: "
            << strformat("%.1f vs %.1f ms", report.waveform.weekday_peak_ms,
                         report.waveform.weekend_peak_ms)
            << "   (paper: same pattern regardless of day type)\n";
  std::cout << "  persistence: "
            << (report.persistence == tslp::Persistence::kSustained ? "sustained" : "transient")
            << "   (paper: sustained)\n";

  // Fig 3b: loss on the link (paper: 0.1 % average from 21/07/2016).
  std::cout << "\nFig 3b: loss rate (batches of 100 probes at 1 pps, subsampled)\n";
  auto rt2 = analysis::build_scenario(spec);
  const TimePoint loss_start = date(10, 8, 2016);
  const TimePoint loss_end = bench::fast_mode() ? loss_start + kDay * 7 : date(10, 9, 2016);
  rt2->topology.net().simulator().advance_to(spec.campaign_start);
  rt2->apply_timeline_until(loss_start);
  prober::Prober prober(rt2->topology.net(), rt2->vp_host, 0.0);
  prober::LossConfig lcfg;
  lcfg.batch_gap = kMinute * 30;
  const auto loss = prober::measure_loss(prober, link->far_ip, loss_start, loss_end, lcfg);
  bench::compare("average loss", 100.0 * cs.expected_avg_loss, 100.0 * loss.average_loss(), "%");
  const auto corr = tslp::correlate_loss(loss, active.far_rtt, report.far_shifts);
  std::cout << "  end users likely unaffected (loss < 0.5%): "
            << (corr.users_likely_unaffected() ? "yes" : "no")
            << "   (paper: yes -- no customer complaints)\n";

  const auto check = analysis::check_case(cs, report);
  std::cout << "\nCase-study check vs operators' account: "
            << (check.all() ? "PASS" : "PARTIAL") << "\n";
  std::cout << "Documented cause: " << cs.cause << "\n";
  return 0;
}
