#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace ixp {

CalendarTime to_calendar(TimePoint t) {
  // Clamp negative times (possible for pre-campaign bookkeeping) to day 0.
  std::int64_t ns = t.ns() < 0 ? 0 : t.ns();
  const std::int64_t day_ns = kDay.count();
  CalendarTime c{};
  c.day = ns / day_ns;
  c.day_of_week = static_cast<int>(c.day % 7);
  c.hour_of_day = static_cast<double>(ns % day_ns) / static_cast<double>(kHour.count());
  c.is_weekend = c.day_of_week >= 5;
  return c;
}

std::string format_duration(Duration d) {
  char buf[64];
  const std::int64_t ns = d.count();
  const double ms = static_cast<double>(ns) / 1e6;
  if (ns < 0) {
    std::string out = "-";
    out += format_duration(-d);
    return out;
  }
  if (ns < kMillisecond.count()) {
    std::snprintf(buf, sizeof buf, "%ldus", static_cast<long>(ns / 1000));
  } else if (ns < kSecond.count()) {
    std::snprintf(buf, sizeof buf, "%.1fms", ms);
  } else if (ns < kMinute.count()) {
    std::snprintf(buf, sizeof buf, "%.1fs", ms / 1e3);
  } else if (ns < kHour.count()) {
    const long m = static_cast<long>(ns / kMinute.count());
    const long s = static_cast<long>((ns % kMinute.count()) / kSecond.count());
    std::snprintf(buf, sizeof buf, "%ldm%02lds", m, s);
  } else {
    const long h = static_cast<long>(ns / kHour.count());
    const long m = static_cast<long>((ns % kHour.count()) / kMinute.count());
    std::snprintf(buf, sizeof buf, "%ldh%02ldm", h, m);
  }
  return buf;
}

std::string format_time(TimePoint t) {
  const CalendarTime c = to_calendar(t);
  const int hh = static_cast<int>(c.hour_of_day);
  const int mm = static_cast<int>((c.hour_of_day - hh) * 60.0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "day %ld %02d:%02d", static_cast<long>(c.day), hh, mm);
  return buf;
}

}  // namespace ixp
