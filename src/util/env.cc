#include "util/env.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/check.h"
#include "util/strings.h"

namespace ixp::env {

namespace {

// The single source of truth for which IXP_* knobs exist.  README's
// env-knob table and this table are cross-checked by tools/check_docs.sh;
// add the knob to both or the docs lint fails.
const std::vector<Knob> kKnobs = {
    {"IXP_ROUND_MINUTES", "probe round interval in minutes for bench/example drivers"},
    {"IXP_FAST", "shrink bench/example campaigns for smoke runs (any value but 0)"},
    {"IXP_JOBS", "default worker count for --jobs when the flag is absent"},
    {"IXP_SIM_THREADS", "default intra-simulation LP worker count for --sim-threads when the flag is 0/absent"},
    {"IXP_PARANOID", "enable expensive IXP_CHECK invariants (any value but 0)"},
    {"IXP_FAULT_PLAN", "default fault-plan spec for the chaos subcommand"},
    {"IXP_METRICS", "default --metrics-out path for metrics-capable subcommands"},
};

struct Cache {
  std::mutex mu;
  std::map<std::string, std::optional<std::string>> values;
};

Cache& cache() {
  static Cache c;
  return c;
}

bool known(const char* name) {
  for (const Knob& k : kKnobs) {
    if (std::string_view(k.name) == name) return true;
  }
  return false;
}

}  // namespace

const std::vector<Knob>& known_knobs() { return kKnobs; }

std::optional<std::string> string_value(const char* name) {
  if (!known(name)) {
    detail::check_failed(__FILE__, __LINE__, "env::known(name)",
                         strformat("undeclared env knob %s: add it to kKnobs in "
                                   "src/util/env.cc and to README's knob table",
                                   name));
  }
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.values.find(name);
  if (it == c.values.end()) {
    const char* raw = std::getenv(name);
    it = c.values
             .emplace(name, raw ? std::optional<std::string>(raw) : std::nullopt)
             .first;
  }
  return it->second;
}

bool flag(const char* name) {
  const std::optional<std::string> v = string_value(name);
  return v.has_value() && *v != "0";
}

std::optional<std::int64_t> int_value(const char* name) {
  const std::optional<double> d = double_value(name);
  if (!d.has_value()) return std::nullopt;
  return static_cast<std::int64_t>(*d);
}

std::optional<double> double_value(const char* name) {
  const std::optional<std::string> v = string_value(name);
  if (!v.has_value()) return std::nullopt;
  double d = 0.0;
  if (!parse_double(*v, d)) return std::nullopt;
  return d;
}

void refresh_for_tests() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.values.clear();
}

}  // namespace ixp::env
