// Minimal GNU-style command-line flag parsing for the tools and benches.
//
// Supports --name=value, --name value, boolean --name / --no-name, a
// free-form positional list, and generated --help text.  Unknown flags are
// errors (tools should not silently ignore typos).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ixp {

class Flags {
 public:
  /// `program` and `summary` feed the --help output.
  Flags(std::string program, std::string summary);

  /// Registers flags before parse(). `help` is shown in --help.
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_bool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// malformed values. --help sets help_requested() and returns true.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Arguments that are not flags, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::string help_text() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical string form
  };

  bool set_value(const std::string& name, const std::string& value);

  std::string program_;
  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace ixp
