#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace ixp {
namespace {

struct Band {
  double lo = std::numeric_limits<double>::quiet_NaN();
  double hi = std::numeric_limits<double>::quiet_NaN();
  bool valid() const { return !std::isnan(lo); }
};

// Collapses a series to `width` columns, keeping per-column min and max so
// that spikes narrower than one column still render.
std::vector<Band> downsample(const std::vector<double>& v, int width) {
  std::vector<Band> bands(static_cast<std::size_t>(width));
  if (v.empty()) return bands;
  const double per = static_cast<double>(v.size()) / width;
  for (int c = 0; c < width; ++c) {
    const std::size_t b = static_cast<std::size_t>(c * per);
    std::size_t e = static_cast<std::size_t>((c + 1) * per);
    e = std::min(std::max(e, b + 1), v.size());
    Band band;
    for (std::size_t i = b; i < e; ++i) {
      if (std::isnan(v[i])) continue;
      if (!band.valid()) {
        band.lo = band.hi = v[i];
      } else {
        band.lo = std::min(band.lo, v[i]);
        band.hi = std::max(band.hi, v[i]);
      }
    }
    bands[static_cast<std::size_t>(c)] = band;
  }
  return bands;
}

}  // namespace

std::string render_ascii_chart(const std::vector<AsciiSeries>& series, const AsciiChartOptions& opt) {
  const int w = std::max(opt.width, 10);
  const int h = std::max(opt.height, 4);

  double lo = opt.y_min, hi = opt.y_max;
  if (opt.auto_y) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const auto& s : series) {
      for (double v : s.values) {
        if (std::isnan(v)) continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!std::isfinite(lo)) {
      lo = 0;
      hi = 1;
    }
  }
  if (hi <= lo) hi = lo + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  auto to_row = [&](double v) {
    const double frac = (v - lo) / (hi - lo);
    int r = static_cast<int>(std::lround(frac * (h - 1)));
    r = std::clamp(r, 0, h - 1);
    return (h - 1) - r;  // row 0 is the top of the chart
  };

  for (const auto& s : series) {
    const auto bands = downsample(s.values, w);
    for (int c = 0; c < w; ++c) {
      const Band& b = bands[static_cast<std::size_t>(c)];
      if (!b.valid()) continue;
      const int r_hi = to_row(b.hi);
      const int r_lo = to_row(b.lo);
      for (int r = r_hi; r <= r_lo; ++r) {
        grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = s.glyph;
      }
    }
  }

  std::string out;
  if (!opt.y_label.empty()) out += opt.y_label + "\n";
  for (int r = 0; r < h; ++r) {
    const double yv = hi - (hi - lo) * r / (h - 1);
    out += strformat("%8.1f |", yv);
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "         +" + std::string(static_cast<std::size_t>(w), '-') + "\n";
  if (!opt.x_label.empty()) out += "          " + opt.x_label + "\n";
  std::string legend = "          ";
  for (const auto& s : series) legend += strformat("[%c] %s   ", s.glyph, s.name.c_str());
  out += legend + "\n";
  return out;
}

}  // namespace ixp
