// CSV emission for bench/figure series.
//
// Every figure bench writes its series as CSV (to stdout or a file) so that
// the paper's plots can be regenerated with any external plotting tool, and
// also renders an ASCII preview (ascii_chart.h) for eyeballing in a terminal.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ixp {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::initializer_list<std::string_view> cols);
  void header(const std::vector<std::string>& cols);

  /// Starts a new row; values are appended with cell().
  CsvWriter& row();
  CsvWriter& cell(std::string_view v);
  CsvWriter& cell(double v);
  CsvWriter& cell(std::int64_t v);
  CsvWriter& cell(std::uint64_t v);
  CsvWriter& cell(int v) { return cell(static_cast<std::int64_t>(v)); }

  /// Finishes the current row (also called implicitly by row()/destructor).
  void end_row();

  ~CsvWriter() { end_row(); }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void put(std::string_view v);
  std::ostream* out_;
  bool row_open_ = false;
  bool first_cell_ = true;
};

/// Quotes a CSV field if it contains separators/quotes/newlines.
std::string csv_escape(std::string_view v);

}  // namespace ixp
