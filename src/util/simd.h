// Portable SIMD helpers for the TSLP fast path.
//
// Every routine here is *exact*: only comparisons, counting, copying, and
// min/max over finite values -- no floating-point arithmetic whose result
// could depend on lane order.  That property is what lets the vectorized
// detector stay byte-identical to the scalar one (see
// docs/ARCHITECTURE.md, "TSLP fast path").
//
// The AVX2 bodies are compiled only when the target enables them
// (`__AVX2__`); otherwise the scalar fallbacks below are the
// implementation.  Both paths share the same tail handling, so switching
// instruction sets never changes a result.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ixp::simd {

/// Count of entries that are not NaN (the level-shift detector's window
/// "finite" predicate -- note: +/-inf counts, matching `!std::isnan`).
inline std::size_t count_not_nan(std::span<const double> v) {
  std::size_t n = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= v.size(); i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    // x == x is false exactly for NaN lanes (ordered, quiet compare).
    const __m256d ord = _mm256_cmp_pd(x, x, _CMP_ORD_Q);
    n += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(ord))));
  }
#endif
  for (; i < v.size(); ++i) {
    if (!std::isnan(v[i])) ++n;
  }
  return n;
}

/// Copies the finite entries of `v` into `out` (which must have room for
/// v.size() values), preserving order.  Returns the number written.  Uses
/// `std::isfinite` -- the predicate the quantile/baseline code applies --
/// so the compacted buffer is exactly what stats::quantile would have
/// built internally.
inline std::size_t compact_finite(std::span<const double> v, double* out) {
  std::size_t n = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  for (; i + 4 <= v.size(); i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    // |x| < inf is true exactly for finite lanes (NaN compares false).
    const __m256d fin = _mm256_cmp_pd(_mm256_and_pd(x, abs_mask), inf, _CMP_LT_OQ);
    const int mask = _mm256_movemask_pd(fin);
    if (mask == 0xf) {
      // Common case on dense series: copy the whole lane group.
      _mm256_storeu_pd(out + n, x);
      n += 4;
    } else if (mask != 0) {
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) out[n++] = v[i + static_cast<std::size_t>(lane)];
      }
    }
  }
#endif
  for (; i < v.size(); ++i) {
    if (std::isfinite(v[i])) out[n++] = v[i];
  }
  return n;
}

/// Min and max over the finite entries of `v`.  Returns false (lo/hi
/// untouched) when no entry is finite.  Exactness: min/max over finite
/// doubles is order-independent (a -0.0 vs +0.0 pick cannot change any
/// `hi - lo` comparison the detector makes).
inline bool finite_minmax(std::span<const double> v, double& lo, double& hi) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  bool any = false;
  std::size_t i = 0;
#if defined(__AVX2__)
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d vinf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d vmn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d vmx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  int seen = 0;
  for (; i + 4 <= v.size(); i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    const __m256d fin = _mm256_cmp_pd(_mm256_and_pd(x, abs_mask), vinf, _CMP_LT_OQ);
    seen |= _mm256_movemask_pd(fin);
    // Non-finite lanes are replaced by identity elements before the fold.
    vmn = _mm256_min_pd(vmn, _mm256_blendv_pd(vinf, x, fin));
    vmx = _mm256_max_pd(vmx, _mm256_blendv_pd(_mm256_sub_pd(_mm256_setzero_pd(), vinf), x, fin));
  }
  if (seen != 0) {
    any = true;
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, vmn);
    for (double t : tmp) mn = std::min(mn, t);
    _mm256_store_pd(tmp, vmx);
    for (double t : tmp) mx = std::max(mx, t);
  }
#endif
  for (; i < v.size(); ++i) {
    if (std::isfinite(v[i])) {
      any = true;
      mn = std::min(mn, v[i]);
      mx = std::max(mx, v[i]);
    }
  }
  if (!any) return false;
  lo = mn;
  hi = mx;
  return true;
}

#if defined(__AVX2__)
namespace detail {
inline std::int32_t hmin_epi32(__m256i x) {
  __m128i m = _mm_min_epi32(_mm256_castsi256_si128(x), _mm256_extracti128_si256(x, 1));
  m = _mm_min_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_min_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(m);
}
inline std::int32_t hmax_epi32(__m256i x) {
  __m128i m = _mm_max_epi32(_mm256_castsi256_si128(x), _mm256_extracti128_si256(x, 1));
  m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(m);
}
}  // namespace detail
#endif

/// Exact CUSUM range test over int32 deviations: true iff the running
/// prefix-sum range (including the initial 0) stays strictly below
/// `observed`.  The bootstrap's integer fast path calls this once per
/// shuffle round.  PRECONDITION: every prefix sum fits in int32, i.e.
/// (v.size() + 1) * max|v[i]| < 2^31 -- the caller checks this once per
/// window (the multiset is shuffle-invariant).  Under that bound all
/// arithmetic here is exact integer math, so the vector path computes the
/// identical prefix values the scalar loop does; the range is monotone
/// over the scan, so the periodic early exit cannot change the verdict.
inline bool cusum_i32_range_below(std::span<const std::int32_t> v, std::int64_t observed) {
  std::size_t i = 0;
  std::int64_t s = 0, lo = 0, hi = 0;
#if defined(__AVX2__)
  const std::size_t n = v.size();
  if (n >= 8) {
    __m256i vmin = _mm256_setzero_si256();
    __m256i vmax = _mm256_setzero_si256();
    __m256i vcarry = _mm256_setzero_si256();
    const __m256i seven = _mm256_set1_epi32(7);
    int block = 0;
    for (; i + 8 <= n; i += 8) {
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.data() + i));
      // In-lane inclusive prefix sums (log-shift), ...
      x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
      x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
      // ... then carry the low 128-bit lane's total into the high lane ...
      const __m256i lane_tot = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
      x = _mm256_add_epi32(x, _mm256_permute2x128_si256(lane_tot, lane_tot, 0x08));
      // ... and the running total of all previous blocks.
      x = _mm256_add_epi32(x, vcarry);
      vmin = _mm256_min_epi32(vmin, x);
      vmax = _mm256_max_epi32(vmax, x);
      vcarry = _mm256_permutevar8x32_epi32(x, seven);
      if (++block == 8) {
        block = 0;
        if (static_cast<std::int64_t>(detail::hmax_epi32(vmax)) - detail::hmin_epi32(vmin) >=
            observed) {
          return false;
        }
      }
    }
    lo = detail::hmin_epi32(vmin);
    hi = detail::hmax_epi32(vmax);
    s = _mm_cvtsi128_si32(_mm256_castsi256_si128(vcarry));
  }
#endif
  for (; i < v.size(); ++i) {
    s += v[i];
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    if (hi - lo >= observed) return false;
  }
  return hi - lo < observed;
}

/// True when the implementation actually uses vector instructions (for
/// bench metadata; the results are identical either way).
constexpr bool vectorized() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

}  // namespace ixp::simd
