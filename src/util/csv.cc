#include "util/csv.h"

#include <cmath>

#include "util/strings.h"

namespace ixp {

std::string csv_escape(std::string_view v) {
  const bool needs_quote = v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(v);
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  row();
  for (auto c : cols) cell(c);
  end_row();
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  row();
  for (const auto& c : cols) cell(c);
  end_row();
}

CsvWriter& CsvWriter::row() {
  end_row();
  row_open_ = true;
  first_cell_ = true;
  return *this;
}

void CsvWriter::put(std::string_view v) {
  if (!first_cell_) *out_ << ',';
  first_cell_ = false;
  *out_ << v;
}

CsvWriter& CsvWriter::cell(std::string_view v) {
  put(csv_escape(v));
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  if (std::isnan(v)) {
    put("nan");
  } else {
    put(strformat("%.6g", v));
  }
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t v) {
  put(strformat("%lld", static_cast<long long>(v)));
  return *this;
}

CsvWriter& CsvWriter::cell(std::uint64_t v) {
  put(strformat("%llu", static_cast<unsigned long long>(v)));
  return *this;
}

void CsvWriter::end_row() {
  if (row_open_) {
    *out_ << '\n';
    row_open_ = false;
  }
}

}  // namespace ixp
