#include "util/check.h"

#include <cstdio>
#include <cstdlib>

#include "util/env.h"

namespace ixp::detail {

bool paranoid_env_enabled() { return env::flag("IXP_PARANOID"); }

void check_failed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: IXP_CHECK(%s) failed: %s\n", file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ixp::detail
