#include "util/check.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ixp::detail {

bool paranoid_env_enabled() {
  const char* v = std::getenv("IXP_PARANOID");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

void check_failed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: IXP_CHECK(%s) failed: %s\n", file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ixp::detail
