#include "util/fault_plan.h"

#include <cstdio>
#include <iterator>

namespace ixp {

namespace {

// Fixed windows are quoted as (offset from campaign start, length); the
// random counts add seed-dependent windows on top.  The "default" plan
// deliberately touches every fault category while staying gentle enough
// that the paper's case-study links (GIXA-GHANATEL, GIXA-KNET) remain
// classifiable — that property is the acceptance run recorded in
// EXPERIMENTS.md.
FaultPlan make_none_plan() {
  return {};
}

FaultPlan make_default_plan() {
  FaultPlan p;
  p.vp_outages.push_back(
      {{{{kDay * 10, kHour * 36}}, /*random_count=*/1, kHour * 12, kHour * 48}});
  p.link_flaps.push_back(
      {/*nth_link=*/0, {{{kDay * 30, kHour * 4}}, /*random_count=*/2, kHour, kHour * 6}});
  p.icmp_tighten.push_back({/*nth_router=*/1,
                            /*rate_per_sec=*/0.0003,
                            {{{kDay * 45, kDay * 3}}, /*random_count=*/1, kDay, kDay * 3}});
  p.silent_drops.push_back(
      {/*nth_router=*/2, {{{kDay * 60, kDay * 2}}, /*random_count=*/1, kDay, kDay * 2}});
  p.reroutes.push_back(
      {/*nth_link=*/0, {{{kDay * 80, kDay * 2}}, /*random_count=*/1, kHour * 12, kDay * 2}});
  p.loss_bursts.push_back(
      {/*loss_prob=*/0.5, {{{kDay * 5, kHour * 6}}, /*random_count=*/3, kHour, kHour * 6}});
  return p;
}

// Heavier monitor-side pathologies only: outages plus loss bursts.
FaultPlan make_outages_plan() {
  FaultPlan p;
  p.vp_outages.push_back(
      {{{{kDay * 7, kDay * 4}, {kDay * 120, kDay * 7}}, /*random_count=*/2, kDay, kDay * 4}});
  p.loss_bursts.push_back(
      {/*loss_prob=*/0.6, {{{kDay * 20, kHour * 12}}, /*random_count=*/6, kHour, kHour * 12}});
  return p;
}

// Responder-side pathologies: rate limiting and silent drops.
FaultPlan make_icmp_plan() {
  FaultPlan p;
  p.icmp_tighten.push_back({/*nth_router=*/0,
                            /*rate_per_sec=*/0.0003,
                            {{{kDay * 15, kDay * 5}}, /*random_count=*/2, kDay, kDay * 4}});
  p.silent_drops.push_back(
      {/*nth_router=*/1, {{{kDay * 40, kDay * 3}}, /*random_count=*/2, kDay, kDay * 3}});
  return p;
}

// Path-change pathologies only: reroutes plus link flaps, zero scripted
// congestion — the substrate this runs on decides whether any congestion
// exists at all.  Against the paper's six VPs the acceptance criterion is
// that the reroute cross-check leaves zero congestion false positives.
FaultPlan make_reroutes_plan() {
  FaultPlan p;
  p.reroutes.push_back(
      {/*nth_link=*/0, {{{kDay * 25, kDay * 3}}, /*random_count=*/2, kDay, kDay * 3}});
  p.link_flaps.push_back(
      {/*nth_link=*/1, {{{kDay * 50, kHour * 8}}, /*random_count=*/3, kHour, kHour * 8}});
  return p;
}

// Remote-peering exchange (rixp16 substrate, 28-day calendar): the stress
// comes from the topology — a long, jittery VP↔fabric tail and remotely
// peered members — so the fault schedule only adds the monitor-side noise
// any real remote VP suffers.  Nothing here changes scenario ground truth.
FaultPlan make_rixp_plan() {
  FaultPlan p;
  p.vp_outages.push_back(
      {{{{kDay * 6, kHour * 12}}, /*random_count=*/1, kHour * 6, kHour * 24}});
  p.loss_bursts.push_back(
      {/*loss_prob=*/0.5, {{{kDay * 3, kHour * 6}}, /*random_count=*/2, kHour, kHour * 6}});
  return p;
}

// Colocation-facility outages (facility8 substrate, 28-day calendar):
// every link homed at one facility drops together, twice on the fixed
// calendar plus one seed-drawn window.  No other fault category runs, so
// the facility-aggregation detector's precision/recall against this plan
// is a pure measure of the concentration score.
FaultPlan make_facility_plan() {
  FaultPlan p;
  p.facility_outages.push_back(
      {/*nth_facility=*/1,
       {{{kDay * 8, kHour * 36}, {kDay * 18, kDay}}, /*random_count=*/1, kHour * 6, kDay}});
  return p;
}

// The scenario-plan registry.  One row per named plan; tools/check_docs.sh
// extracts the first column of this table and lints it two-way against the
// "Plan registry" table in docs/SCENARIOS.md, so adding a row here without
// documenting it (or vice versa) fails CI.
struct PlanDef {
  const char* name;
  const char* family;
  const char* substrate;
  const char* description;
  FaultPlan (*make)();
};

constexpr PlanDef kScenarioPlans[] = {
    {"none", "paper6", "",
     "no faults; the clean paper-calendar baseline", make_none_plan},
    {"default", "paper6", "",
     "every fault category, gentle enough that the case studies survive", make_default_plan},
    {"outages", "paper6", "",
     "monitor-side pathologies only: VP outages plus probe-loss bursts", make_outages_plan},
    {"icmp", "paper6", "",
     "responder-side pathologies: ICMP rate limiting and silent drops", make_icmp_plan},
    {"reroutes", "reroute", "",
     "path changes only: detour routes plus link flaps, zero scripted congestion",
     make_reroutes_plan},
    {"rixp", "rixp", "rixp16",
     "remote-peering exchange: long jittery VP tail, remote members, monitor noise",
     make_rixp_plan},
    {"facility", "facility", "facility8",
     "colocation-facility outages: every link homed at one facility drops together",
     make_facility_plan},
};

void describe_windows(std::string& out, const FaultWindowSpec& w) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu fixed + %d random window(s)", w.fixed.size(),
                w.random_count);
  out += buf;
}

}  // namespace

const std::vector<ScenarioPlan>& list_plans() {
  static const std::vector<ScenarioPlan> plans = [] {
    std::vector<ScenarioPlan> v;
    v.reserve(std::size(kScenarioPlans));
    for (const PlanDef& d : kScenarioPlans) {
      ScenarioPlan p;
      p.name = d.name;
      p.family = d.family;
      p.substrate = d.substrate;
      p.description = d.description;
      p.faults = d.make();
      p.faults.name = d.name;
      v.push_back(std::move(p));
    }
    return v;
  }();
  return plans;
}

const ScenarioPlan* find_plan(std::string_view name) {
  for (const ScenarioPlan& p : list_plans()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string describe_fault_plan(const FaultPlan& plan) {
  std::string out = "plan '" + plan.name + "'";
  if (plan.empty()) return out + ": no faults\n";
  out += ":\n";
  for (const auto& f : plan.vp_outages) {
    out += "  vp-outage: ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.link_flaps) {
    out += "  link-flap (neighbor #" + std::to_string(f.nth_link) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.icmp_tighten) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%g", f.rate_per_sec);
    out += "  icmp-tighten (router #" + std::to_string(f.nth_router) + ", " + buf + "/s): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.silent_drops) {
    out += "  silent-drop (router #" + std::to_string(f.nth_router) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.reroutes) {
    out += "  reroute (neighbor #" + std::to_string(f.nth_link) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.loss_bursts) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.0f%%", f.loss_prob * 100.0);
    out += "  probe-loss burst (" + std::string(buf) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.facility_outages) {
    out += "  facility-outage (facility #" + std::to_string(f.nth_facility) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  return out;
}

}  // namespace ixp
