#include "util/fault_plan.h"

#include <cstdio>
#include <map>

namespace ixp {

namespace {

// Fixed windows are quoted as (offset from campaign start, length); the
// random counts add seed-dependent windows on top.  The "default" plan
// deliberately touches every fault category while staying gentle enough
// that the paper's case-study links (GIXA-GHANATEL, GIXA-KNET) remain
// classifiable — that property is the acceptance run recorded in
// EXPERIMENTS.md.
FaultPlan make_default_plan() {
  FaultPlan p;
  p.name = "default";
  p.vp_outages.push_back(
      {{{{kDay * 10, kHour * 36}}, /*random_count=*/1, kHour * 12, kHour * 48}});
  p.link_flaps.push_back(
      {/*nth_link=*/0, {{{kDay * 30, kHour * 4}}, /*random_count=*/2, kHour, kHour * 6}});
  p.icmp_tighten.push_back({/*nth_router=*/1,
                            /*rate_per_sec=*/0.0003,
                            {{{kDay * 45, kDay * 3}}, /*random_count=*/1, kDay, kDay * 3}});
  p.silent_drops.push_back(
      {/*nth_router=*/2, {{{kDay * 60, kDay * 2}}, /*random_count=*/1, kDay, kDay * 2}});
  p.reroutes.push_back(
      {/*nth_link=*/0, {{{kDay * 80, kDay * 2}}, /*random_count=*/1, kHour * 12, kDay * 2}});
  p.loss_bursts.push_back(
      {/*loss_prob=*/0.5, {{{kDay * 5, kHour * 6}}, /*random_count=*/3, kHour, kHour * 6}});
  return p;
}

// Heavier monitor-side pathologies only: outages plus loss bursts.
FaultPlan make_outages_plan() {
  FaultPlan p;
  p.name = "outages";
  p.vp_outages.push_back(
      {{{{kDay * 7, kDay * 4}, {kDay * 120, kDay * 7}}, /*random_count=*/2, kDay, kDay * 4}});
  p.loss_bursts.push_back(
      {/*loss_prob=*/0.6, {{{kDay * 20, kHour * 12}}, /*random_count=*/6, kHour, kHour * 12}});
  return p;
}

// Responder-side pathologies: rate limiting and silent drops.
FaultPlan make_icmp_plan() {
  FaultPlan p;
  p.name = "icmp";
  p.icmp_tighten.push_back({/*nth_router=*/0,
                            /*rate_per_sec=*/0.0003,
                            {{{kDay * 15, kDay * 5}}, /*random_count=*/2, kDay, kDay * 4}});
  p.silent_drops.push_back(
      {/*nth_router=*/1, {{{kDay * 40, kDay * 3}}, /*random_count=*/2, kDay, kDay * 3}});
  return p;
}

// Path-change pathologies: reroutes plus link flaps.
FaultPlan make_reroutes_plan() {
  FaultPlan p;
  p.name = "reroutes";
  p.reroutes.push_back(
      {/*nth_link=*/0, {{{kDay * 25, kDay * 3}}, /*random_count=*/2, kDay, kDay * 3}});
  p.link_flaps.push_back(
      {/*nth_link=*/1, {{{kDay * 50, kHour * 8}}, /*random_count=*/3, kHour, kHour * 8}});
  return p;
}

const std::map<std::string, FaultPlan, std::less<>>& registry() {
  static const std::map<std::string, FaultPlan, std::less<>> plans = [] {
    std::map<std::string, FaultPlan, std::less<>> m;
    FaultPlan none;
    none.name = "none";
    m.emplace("none", std::move(none));
    m.emplace("default", make_default_plan());
    m.emplace("outages", make_outages_plan());
    m.emplace("icmp", make_icmp_plan());
    m.emplace("reroutes", make_reroutes_plan());
    return m;
  }();
  return plans;
}

void describe_windows(std::string& out, const FaultWindowSpec& w) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu fixed + %d random window(s)", w.fixed.size(),
                w.random_count);
  out += buf;
}

}  // namespace

const FaultPlan* fault_plan_by_name(std::string_view name) {
  const auto& plans = registry();
  const auto it = plans.find(name);
  return it == plans.end() ? nullptr : &it->second;
}

std::vector<std::string> known_fault_plan_names() {
  return {"none", "default", "outages", "icmp", "reroutes"};
}

std::string describe_fault_plan(const FaultPlan& plan) {
  std::string out = "plan '" + plan.name + "'";
  if (plan.empty()) return out + ": no faults\n";
  out += ":\n";
  for (const auto& f : plan.vp_outages) {
    out += "  vp-outage: ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.link_flaps) {
    out += "  link-flap (neighbor #" + std::to_string(f.nth_link) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.icmp_tighten) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%g", f.rate_per_sec);
    out += "  icmp-tighten (router #" + std::to_string(f.nth_router) + ", " + buf + "/s): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.silent_drops) {
    out += "  silent-drop (router #" + std::to_string(f.nth_router) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.reroutes) {
    out += "  reroute (neighbor #" + std::to_string(f.nth_link) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  for (const auto& f : plan.loss_bursts) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.0f%%", f.loss_prob * 100.0);
    out += "  probe-loss burst (" + std::string(buf) + "): ";
    describe_windows(out, f.windows);
    out += "\n";
  }
  return out;
}

}  // namespace ixp
