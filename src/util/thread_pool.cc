#include "util/thread_pool.h"

#include "util/env.h"

namespace ixp {

ThreadPool::ThreadPool(int threads) {
  const int extra = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_batch_tasks(std::size_t n) {
  // Claims indices until the batch cursor runs past the end.  Runs on both
  // the background workers and the thread inside parallel_for().
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    std::exception_ptr err;
    try {
      (*task_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (err) errors_[i] = err;
    if (++done_ == n) batch_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    batch_ready_.wait(lk, [&] { return stop_ || batch_id_ != seen; });
    if (stop_) return;
    seen = batch_id_;
    // A worker that wakes after the batch already drained (task_ cleared
    // under this lock) must not join: the next batch may have reset the
    // cursor, and claiming against the stale size would hand out
    // out-of-range indices.
    if (task_ == nullptr) continue;
    ++workers_in_batch_;
    const std::size_t n = batch_n_;
    lk.unlock();
    run_batch_tasks(n);
    lk.lock();
    if (--workers_in_batch_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  task_ = &task;
  batch_n_ = n;
  done_ = 0;
  cursor_.store(0, std::memory_order_relaxed);
  errors_.assign(n, nullptr);
  ++batch_id_;
  lk.unlock();
  batch_ready_.notify_all();

  run_batch_tasks(n);

  // Wait for (a) every task to finish and (b) every worker that woke for
  // this batch to check back out.  (b) matters: without it a worker could
  // still be between reading the batch state and its first (empty) cursor
  // claim when the *next* batch resets the cursor, and would claim stale
  // work.  Workers that never woke observe the next batch_id_ instead and
  // are harmless.
  lk.lock();
  batch_done_.wait(lk, [&] { return done_ == n && workers_in_batch_ == 0; });
  task_ = nullptr;

  std::exception_ptr first;
  for (auto& e : errors_) {
    if (e) {
      first = e;
      break;
    }
  }
  errors_.clear();
  if (first) {
    lk.unlock();
    std::rethrow_exception(first);
  }
}

int ThreadPool::resolve_jobs(int requested, std::size_t fleet_size) {
  int jobs = requested;
  if (jobs <= 0) {
    if (const auto v = env::int_value("IXP_JOBS")) jobs = static_cast<int>(*v);
  }
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs <= 0) jobs = 1;
  if (fleet_size > 0 && static_cast<std::size_t>(jobs) > fleet_size) {
    jobs = static_cast<int>(fleet_size);
  }
  return jobs;
}

}  // namespace ixp
