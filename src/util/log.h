// Minimal leveled logger.
//
// The library is deterministic and mostly silent; logging exists for the
// campaign drivers and examples to narrate progress.  Output goes to stderr
// so that bench/table output on stdout stays machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace ixp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

#define IXP_LOG(level)                              \
  if (::ixp::log_level() > ::ixp::LogLevel::level) { \
  } else                                            \
    ::ixp::detail::LogLine(::ixp::LogLevel::level)

#define IXP_DEBUG IXP_LOG(kDebug)
#define IXP_INFO IXP_LOG(kInfo)
#define IXP_WARN IXP_LOG(kWarn)
#define IXP_ERROR IXP_LOG(kError)

}  // namespace ixp
