#include "util/rng.h"

#include <cmath>

namespace ixp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * m;
  have_cached_normal_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  // Inverse CDF; 1 - uniform() is in (0, 1] so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double alpha, double xm) {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next()); }

}  // namespace ixp
