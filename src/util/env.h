// Consolidated IXP_* environment-knob access.
//
// Every environment variable a compiled binary reads goes through this
// module: each knob is declared once in the registry table in env.cc
// (tools/check_docs.sh lints that table against README's env-knob table,
// and rejects any getenv("IXP_...") call outside this file), and its value
// is read from the process environment exactly once -- the first access
// caches, later setenv() calls are invisible.  Tests that mutate the
// environment call refresh_for_tests() to drop the cache.
//
// Accessing a knob that is not in the registry aborts: an undeclared knob
// is an undocumented knob, and the point of the registry is that the two
// cannot drift apart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ixp::env {

/// One declared knob; `summary` feeds --help text and the docs lint.
struct Knob {
  const char* name;
  const char* summary;
};

/// The full registry, in declaration order.
const std::vector<Knob>& known_knobs();

/// Raw value of a declared knob; nullopt when unset.
std::optional<std::string> string_value(const char* name);

/// True when the knob is set to anything other than "0" (the repo-wide
/// convention for boolean knobs: IXP_FAST, IXP_PARANOID).
bool flag(const char* name);

/// Parsed numeric value; nullopt when unset or unparsable (callers fall
/// back to their defaults, matching the pre-consolidation behaviour).
std::optional<std::int64_t> int_value(const char* name);
std::optional<double> double_value(const char* name);

/// Drops the cache so the next access re-reads the process environment.
/// For tests that setenv()/unsetenv() around assertions; production code
/// relies on the one-time parse.
void refresh_for_tests();

}  // namespace ixp::env
