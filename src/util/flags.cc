#include "util/flags.h"

#include "util/strings.h"

namespace ixp {

Flags::Flags(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Flags::add_string(const std::string& name, const std::string& default_value,
                       const std::string& help) {
  flags_[name] = {Kind::kString, help, default_value};
}

void Flags::add_int(const std::string& name, std::int64_t default_value, const std::string& help) {
  flags_[name] = {Kind::kInt, help, strformat("%lld", static_cast<long long>(default_value))};
}

void Flags::add_double(const std::string& name, double default_value, const std::string& help) {
  flags_[name] = {Kind::kDouble, help, strformat("%g", default_value)};
}

void Flags::add_bool(const std::string& name, bool default_value, const std::string& help) {
  flags_[name] = {Kind::kBool, help, default_value ? "true" : "false"};
}

bool Flags::set_value(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  switch (it->second.kind) {
    case Kind::kInt: {
      double d = 0;
      if (!parse_double(value, d) || d != static_cast<std::int64_t>(d)) {
        error_ = "--" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Kind::kDouble: {
      double d = 0;
      if (!parse_double(value, d)) {
        error_ = "--" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Kind::kBool: {
      const auto v = to_lower(value);
      if (v != "true" && v != "false" && v != "1" && v != "0") {
        error_ = "--" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    }
    case Kind::kString:
      break;
  }
  it->second.value = value;
  return true;
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!set_value(arg.substr(0, eq), arg.substr(eq + 1))) return false;
      continue;
    }
    // --no-name for booleans.
    if (starts_with(arg, "no-")) {
      const std::string name = arg.substr(3);
      const auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        it->second.value = "false";
        continue;
      }
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + arg;
      return false;
    }
    if (it->second.kind == Kind::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "--" + arg + " needs a value";
      return false;
    }
    if (!set_value(arg, argv[++i])) return false;
  }
  return true;
}

std::string Flags::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

std::int64_t Flags::get_int(const std::string& name) const {
  double d = 0;
  parse_double(get_string(name), d);
  return static_cast<std::int64_t>(d);
}

double Flags::get_double(const std::string& name) const {
  double d = 0;
  parse_double(get_string(name), d);
  return d;
}

bool Flags::get_bool(const std::string& name) const {
  const auto v = to_lower(get_string(name));
  return v == "true" || v == "1";
}

std::string Flags::help_text() const {
  std::string out = program_ + " -- " + summary_ + "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out += strformat("  --%-18s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                     flag.value.c_str());
  }
  return out;
}

}  // namespace ixp
