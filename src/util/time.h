// Simulated-time primitives used throughout the library.
//
// All simulation components, the prober, and the analysis pipeline share a
// single notion of time: nanoseconds since the start of the measurement
// campaign, held in a strong type so that raw integers cannot be mixed up
// with sequence numbers or byte counts.  Calendar helpers convert between
// campaign offsets and (day-of-week, hour-of-day) values, which the diurnal
// traffic models and the congestion classifier both need.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ixp {

/// Duration in simulated time. 64-bit nanoseconds covers ~292 years.
using Duration = std::chrono::nanoseconds;

/// A point in simulated time, measured from the campaign epoch (t = 0).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Duration since_epoch) : since_epoch_(since_epoch) {}

  [[nodiscard]] constexpr Duration since_epoch() const { return since_epoch_; }
  [[nodiscard]] constexpr std::int64_t ns() const { return since_epoch_.count(); }

  constexpr TimePoint& operator+=(Duration d) {
    since_epoch_ += d;
    return *this;
  }
  constexpr TimePoint& operator-=(Duration d) {
    since_epoch_ -= d;
    return *this;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint(t.since_epoch_ + d); }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint(t.since_epoch_ - d); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return a.since_epoch_ - b.since_epoch_; }
  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

 private:
  Duration since_epoch_{0};
};

inline constexpr Duration kNanosecond = Duration(1);
inline constexpr Duration kMicrosecond = std::chrono::microseconds(1);
inline constexpr Duration kMillisecond = std::chrono::milliseconds(1);
inline constexpr Duration kSecond = std::chrono::seconds(1);
inline constexpr Duration kMinute = std::chrono::minutes(1);
inline constexpr Duration kHour = std::chrono::hours(1);
inline constexpr Duration kDay = kHour * 24;
inline constexpr Duration kWeek = kDay * 7;

constexpr Duration milliseconds(double ms) {
  return Duration(static_cast<std::int64_t>(ms * 1e6));
}
constexpr Duration seconds(double s) {
  return Duration(static_cast<std::int64_t>(s * 1e9));
}

/// Duration expressed as fractional milliseconds (the natural RTT unit).
constexpr double to_ms(Duration d) { return static_cast<double>(d.count()) / 1e6; }
/// Duration expressed as fractional seconds.
constexpr double to_sec(Duration d) { return static_cast<double>(d.count()) / 1e9; }
/// Duration expressed as fractional hours.
constexpr double to_hours(Duration d) { return static_cast<double>(d.count()) / 3.6e12; }

/// Calendar view of a campaign time point.  The campaign epoch is pinned to
/// a Monday 00:00 so that weekday/weekend logic is deterministic.
struct CalendarTime {
  std::int64_t day;     ///< whole days since epoch
  int day_of_week;      ///< 0 = Monday .. 6 = Sunday
  double hour_of_day;   ///< [0, 24)
  bool is_weekend;      ///< Saturday or Sunday
};

CalendarTime to_calendar(TimePoint t);

/// Renders a duration as a compact human string, e.g. "2h14m" or "27.9ms".
std::string format_duration(Duration d);

/// Renders a time point as "day D HH:MM".
std::string format_time(TimePoint t);

}  // namespace ixp
