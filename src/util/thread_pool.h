// A small, work-stealing-free, deterministic thread pool.
//
// The pool exists for embarrassingly parallel fan-out (the fleet driver in
// src/analysis/fleet.h runs one VP campaign per task).  Design goals, in
// order: determinism, exception safety, simplicity.
//
//   * Tasks are indexed 0..n-1 and workers claim indices from a single
//     atomic cursor in submission order -- there are no per-worker deques
//     and no stealing, so which task runs is never a scheduling decision.
//     Callers store results by index, which makes the *merged* output
//     independent of thread count and interleaving.
//   * parallel_for() is a barrier: it returns only after every task in the
//     batch has finished, so callers never observe a half-drained pool.
//   * Exceptions thrown by tasks are captured per index; after the batch
//     drains, the exception of the *lowest* index is rethrown (again:
//     deterministic, regardless of which worker hit it first).  Remaining
//     tasks still run to completion -- a failed campaign must not abort
//     its siblings -- and the pool stays usable for the next batch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ixp {

class ThreadPool {
 public:
  /// Spawns `threads - 1` background workers (minimum 0): the thread that
  /// calls parallel_for() is always the remaining worker, so a 1-thread
  /// pool degenerates to a plain serial loop with no handoff latency.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs task(0) .. task(n-1) across the workers and blocks until every
  /// one of them has finished.  If any tasks threw, the exception of the
  /// lowest index is rethrown after the batch has fully drained.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& task);

  /// Worker count (background workers + the calling thread).
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// The pool width `requested` resolves to on this host: positive values
  /// pass through; 0 means "auto" = the IXP_JOBS env var if set, else
  /// std::thread::hardware_concurrency().  The result is clamped to
  /// [1, fleet_size] so a six-campaign fleet never spawns idle workers.
  static int resolve_jobs(int requested, std::size_t fleet_size);

 private:
  void worker_loop();
  void run_batch_tasks(std::size_t n);

  std::mutex mu_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // current batch
  std::size_t batch_n_ = 0;          // task count of the current batch
  std::uint64_t batch_id_ = 0;       // bumped per batch; wakes workers
  std::size_t done_ = 0;             // tasks finished in the current batch
  std::size_t workers_in_batch_ = 0; // background workers inside the batch
  std::atomic<std::size_t> cursor_{0};
  std::vector<std::exception_ptr> errors_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ixp
