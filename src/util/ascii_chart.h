// Terminal rendering of time series, so each figure bench can show the
// waveform shape (diurnal spikes, level shifts, upgrades) inline.
#pragma once

#include <string>
#include <vector>

namespace ixp {

struct AsciiChartOptions {
  int width = 110;        ///< columns of plot area
  int height = 16;        ///< rows of plot area
  double y_min = 0.0;     ///< lower bound; ignored if auto_y
  double y_max = 0.0;     ///< upper bound; ignored if auto_y
  bool auto_y = true;     ///< derive bounds from data
  std::string y_label;    ///< printed above the chart
  std::string x_label;    ///< printed below the chart
};

/// One plotted series: values at uniformly spaced x positions.
struct AsciiSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> values;  ///< NaN entries are skipped (gaps)
};

/// Renders series into a multi-line string.  Series are downsampled to the
/// plot width with per-column min/max banding so narrow spikes stay visible.
std::string render_ascii_chart(const std::vector<AsciiSeries>& series, const AsciiChartOptions& opt = {});

}  // namespace ixp
