// Deterministic random number generation.
//
// Every stochastic component of the simulator (traffic models, router ICMP
// slow-path jitter, loss decisions) draws from an ixp::Rng seeded from the
// scenario, so a campaign replays bit-identically.  The core generator is
// xoshiro256++ (public domain, Blackman & Vigna), which is fast and has
// 256-bit state -- plenty for year-long campaigns.
#pragma once

#include <cstdint>
#include <limits>

namespace ixp {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a single 64-bit value via splitmix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Pareto with shape alpha and scale xm (heavy-tailed burst sizes).
  double pareto(double alpha, double xm);
  /// Bernoulli trial.
  bool chance(double p);

  /// Derives an independent child generator; used to give each simulated
  /// entity its own stream so that adding one entity does not perturb the
  /// draws of the others.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ixp
