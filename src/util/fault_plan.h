// Declarative fault plans: the measurement pathologies the paper's year-long
// deployment actually suffered.  §3 of the paper notes VPs that went dark for
// weeks, routers that rate-limited or silently dropped ICMP, and paths that
// changed under the prober so the monitored far address went stale.  A
// FaultPlan describes a reproducible schedule of such pathologies; the
// sim-side FaultInjector (src/sim/faults.h) expands it against a concrete
// campaign window using forked Rng streams, so `plan name + seed` replays
// byte-identically — the same contract the fleet executor gives tables.
//
// This header is data-only (util layer): it knows nothing about the
// simulator.  Attachment to a live scenario happens in
// analysis/scenario.h (`attach_fault_plan`).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.h"

namespace ixp {

/// When a fault is active.  Windows are expressed relative to the campaign
/// start so one plan applies to every VP regardless of its calendar;
/// `random_count` extra windows are drawn from the injector's forked Rng
/// stream, which is what makes a plan+seed reproduce byte-identically.
struct FaultWindowSpec {
  /// Fixed windows: (offset from campaign start, length).  Windows that
  /// start past the campaign end are dropped; windows that overhang are
  /// clamped.
  std::vector<std::pair<Duration, Duration>> fixed;
  /// Extra windows with uniformly drawn start and length.
  int random_count = 0;
  Duration random_min_len = kHour;
  Duration random_max_len = kHour * 6;
};

/// The VP host goes dark: no probes at all are sent while the window is
/// active (monitor outage — the paper lost individual Ark VPs for weeks).
struct VpOutageFault {
  FaultWindowSpec windows;
};

/// A clean member's IXP port flaps: link down at window start (BGP
/// reconverges around it), restored at window end.
struct LinkFlapFault {
  int nth_link = 0;  ///< picks the nth eligible clean neighbor (mod count)
  FaultWindowSpec windows;
};

/// A clean member's router tightens its ICMP rate limit so most TSLP
/// expiries go unanswered — gappy series without any forwarding change.
struct IcmpTightenFault {
  int nth_router = 0;
  /// Tokens/sec while tightened.  The default admits roughly one response
  /// per couple of probing rounds at either the 5- or 30-minute cadence.
  double rate_per_sec = 0.0003;
  FaultWindowSpec windows;
};

/// A clean member's router stops answering ICMP entirely (silent drop).
struct SilentDropFault {
  int nth_router = 0;
  FaultWindowSpec windows;
};

/// Mid-campaign path change: a more-specific detour route is installed on
/// the VP router for a monitored far address, so TTL-limited probes expire
/// at a *different* router — the TSLP target series goes stale until the
/// driver notices the responder change and re-learns the hop distance.
struct RerouteFault {
  int nth_link = 0;  ///< target = nth eligible neighbor, detour = nth+1
  FaultWindowSpec windows;
};

/// The measurement path itself drops probes in bursts (loss trains).
struct ProbeLossBurstFault {
  double loss_prob = 0.5;  ///< per-probe loss probability inside a window
  FaultWindowSpec windows;
};

/// A colocation-facility disruption: every link homed at one facility goes
/// down at window start and is restored at window end — the correlated
/// multi-link failure signature of "Detecting Network Disruptions At
/// Colocation Facilities" (PAPERS.md).  Facilities only exist on generated
/// substrates with `facilities > 0` (docs/SCALING.md); against an
/// unassigned topology the fault is a no-op.
struct FacilityFault {
  int nth_facility = 0;  ///< picks the nth facility at the IXP (mod count)
  FaultWindowSpec windows;
};

/// A named bundle of fault schedules, attachable to any VP campaign.
struct FaultPlan {
  std::string name;
  std::vector<VpOutageFault> vp_outages;
  std::vector<LinkFlapFault> link_flaps;
  std::vector<IcmpTightenFault> icmp_tighten;
  std::vector<SilentDropFault> silent_drops;
  std::vector<RerouteFault> reroutes;
  std::vector<ProbeLossBurstFault> loss_bursts;
  std::vector<FacilityFault> facility_outages;

  [[nodiscard]] bool empty() const {
    return vp_outages.empty() && link_flaps.empty() && icmp_tighten.empty() &&
           silent_drops.empty() && reroutes.empty() && loss_bursts.empty() &&
           facility_outages.empty();
  }
  /// Total number of fault specs across all categories.
  [[nodiscard]] std::size_t fault_count() const {
    return vp_outages.size() + link_flaps.size() + icmp_tighten.size() +
           silent_drops.size() + reroutes.size() + loss_bursts.size() +
           facility_outages.size();
  }
};

/// A scenario plan: one registry entry the CLI, daemon, tests, and docs
/// lint all enumerate from.  Beyond the fault schedule it names the
/// substrate the scenario runs on ("" = the paper's six hand-written VPs,
/// otherwise a topo-spec preset name resolved through
/// topo::topo_spec_preset) and the scoring family its chaos results are
/// reported under (`afixp chaos` prints one row per family so a regression
/// in one family cannot hide behind another's true negatives).
struct ScenarioPlan {
  std::string name;
  std::string family;       ///< scoring family: paper6 / reroute / rixp / facility
  std::string substrate;    ///< topo preset name; "" = the paper's six VPs
  std::string description;  ///< one line for `afixp chaos --list-plans`
  FaultPlan faults;
};

/// Looks up a registered plan by name; nullptr when unknown.  Callers that
/// reject unknown names should print the names from list_plans().
const ScenarioPlan* find_plan(std::string_view name);

/// Every registered plan, in presentation order.  The single source of
/// truth for `--list-plans`, the chaos CLI, `afixp serve --fault-plan`,
/// and the docs lint against docs/SCENARIOS.md (tools/check_docs.sh).
const std::vector<ScenarioPlan>& list_plans();

/// Human-readable one-line-per-category description, for `afixp chaos
/// --list-plans` and chaos report headers.
std::string describe_fault_plan(const FaultPlan& plan);

}  // namespace ixp
