#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ixp {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

}  // namespace ixp
