#include "util/golden.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace ixp {

namespace {

// Within tolerance, treating NaN as equal to NaN (a detector that returns
// NaN for "undefined" must keep returning NaN, not drift to a number).
bool value_matches(double expected, double actual, double tol) {
  if (std::isnan(expected) || std::isnan(actual)) {
    return std::isnan(expected) && std::isnan(actual);
  }
  return std::fabs(expected - actual) <= tol;
}

std::string render(double v) {
  if (std::isnan(v)) return "nan";
  return strformat("%.17g", v);
}

}  // namespace

void GoldenRecord::set(const std::string& key, double value, double tolerance) {
  set(key, std::vector<double>{value}, tolerance);
}

void GoldenRecord::set(const std::string& key, std::vector<double> values, double tolerance) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.values = std::move(values);
      e.tolerance = tolerance;
      return;
    }
  }
  entries_.push_back({key, std::move(values), tolerance});
}

const GoldenEntry* GoldenRecord::find(const std::string& key) const {
  for (const auto& e : entries_) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

bool GoldenRecord::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "# afixp golden record v1\n";
  for (const auto& e : entries_) {
    out << e.key << " tol=" << render(e.tolerance);
    for (const double v : e.values) out << ' ' << render(v);
    out << '\n';
  }
  return static_cast<bool>(out.flush());
}

std::optional<GoldenRecord> GoldenRecord::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  GoldenRecord rec;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream fields{std::string(stripped)};
    GoldenEntry e;
    std::string tol;
    if (!(fields >> e.key >> tol) || !starts_with(tol, "tol=")) return std::nullopt;
    if (!parse_double(tol.substr(4), e.tolerance)) return std::nullopt;
    std::string value;
    while (fields >> value) {
      double v = 0;
      if (value == "nan") {
        v = std::nan("");
      } else if (!parse_double(value, v)) {
        return std::nullopt;
      }
      e.values.push_back(v);
    }
    rec.entries_.push_back(std::move(e));
  }
  return rec;
}

std::vector<std::string> GoldenRecord::diff(const GoldenRecord& expected,
                                            const GoldenRecord& actual) {
  std::vector<std::string> out;
  for (const auto& e : expected.entries_) {
    const GoldenEntry* a = actual.find(e.key);
    if (a == nullptr) {
      out.push_back(strformat("key '%s': missing from actual output", e.key.c_str()));
      continue;
    }
    if (a->values.size() != e.values.size()) {
      out.push_back(strformat("key '%s': expected %zu value(s), got %zu", e.key.c_str(),
                              e.values.size(), a->values.size()));
      continue;
    }
    for (std::size_t i = 0; i < e.values.size(); ++i) {
      if (value_matches(e.values[i], a->values[i], e.tolerance)) continue;
      out.push_back(strformat("key '%s'[%zu]: expected %s, got %s (tol %s)", e.key.c_str(), i,
                              render(e.values[i]).c_str(), render(a->values[i]).c_str(),
                              render(e.tolerance).c_str()));
    }
  }
  for (const auto& a : actual.entries_) {
    if (expected.find(a.key) == nullptr) {
      out.push_back(strformat("key '%s': unexpected in actual output", a.key.c_str()));
    }
  }
  return out;
}

}  // namespace ixp
