// Small string utilities shared by parsers, report writers, and tests.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ixp {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// Joins the pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a non-negative integer; returns false on any non-digit content.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Parses a double; returns false if the whole string is not consumed.
bool parse_double(std::string_view s, double& out);

}  // namespace ixp
