// Golden-record regression machinery (layer 1 of the correctness harness).
//
// A GoldenRecord is an ordered map from string keys to vectors of doubles,
// each with an absolute comparison tolerance.  Records round-trip through a
// small line-oriented text format so expectations can be checked into the
// repository (tests/golden/), reviewed in diffs, and regenerated with
// `afixp selftest --update-golden`.
//
// The point of the tolerance living *in the record* is that the producer of
// a fixture decides how tightly each quantity is pinned (counts exactly,
// bootstrap confidences loosely), and the comparator stays generic.
//
// File format, one entry per line (order preserved, '#' lines ignored):
//
//   # afixp golden record v1
//   baseline_ms tol=1e-09 2.19340111
//   episode_begin tol=0 144 432 720
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace ixp {

struct GoldenEntry {
  std::string key;
  std::vector<double> values;
  double tolerance = 0.0;  ///< absolute; NaN expects NaN
};

class GoldenRecord {
 public:
  /// Appends a scalar entry (replaces an existing entry with the same key).
  void set(const std::string& key, double value, double tolerance = 0.0);
  /// Appends a vector entry.
  void set(const std::string& key, std::vector<double> values, double tolerance = 0.0);

  [[nodiscard]] const std::vector<GoldenEntry>& entries() const { return entries_; }
  [[nodiscard]] const GoldenEntry* find(const std::string& key) const;

  /// Writes the record; returns false on I/O error.
  [[nodiscard]] bool save(const std::string& path) const;
  /// Reads a record; nullopt when the file is missing or malformed.
  static std::optional<GoldenRecord> load(const std::string& path);

  /// Compares `actual` against `expected` using the *expected* side's
  /// tolerances.  Returns one human-readable line per mismatch (missing or
  /// unexpected keys, length mismatches, out-of-tolerance values); empty
  /// means the records agree.
  static std::vector<std::string> diff(const GoldenRecord& expected, const GoldenRecord& actual);

 private:
  std::vector<GoldenEntry> entries_;
};

}  // namespace ixp
