// Runtime invariant checks for the statistics path (the "paranoid" layer
// of the correctness harness).
//
// IXP_CHECK(cond, msg) aborts with a readable message when `cond` is false
// and paranoid checks are enabled.  They are enabled two ways:
//
//   * at run time, by setting the IXP_PARANOID environment variable to
//     anything other than "0" (zero rebuild cost, one cached branch per
//     check site when off);
//   * at build time, by configuring with -DIXP_PARANOID=ON, which defines
//     the IXP_PARANOID macro and compiles the checks in unconditionally
//     (this is what the sanitizer CI build uses).
//
// The message expression is only evaluated on failure, so callers may use
// strformat() freely without paying for it on the hot path.
#pragma once

#include <string>

namespace ixp {

namespace detail {

/// Reads the IXP_PARANOID environment variable (once).
bool paranoid_env_enabled();

/// Prints "<file>:<line>: IXP_CHECK(<expr>) failed: <msg>" and aborts.
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

}  // namespace detail

/// True when invariant checks should run (see the header comment).
inline bool paranoid_checks_enabled() {
#ifdef IXP_PARANOID
  return true;
#else
  static const bool enabled = detail::paranoid_env_enabled();
  return enabled;
#endif
}

}  // namespace ixp

#define IXP_CHECK(cond, msg)                                                 \
  do {                                                                       \
    if (::ixp::paranoid_checks_enabled() && !(cond)) {                       \
      ::ixp::detail::check_failed(__FILE__, __LINE__, #cond, (msg));         \
    }                                                                        \
  } while (0)
