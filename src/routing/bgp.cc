#include "routing/bgp.h"

#include <algorithm>
#include <queue>

#include "util/log.h"

namespace ixp::routing {
namespace {

// Priority entry for the deterministic Dijkstra-like relaxations: shorter
// paths first, then lower learned-from ASN.
struct Cand {
  std::uint16_t len;
  Asn from_asn;
  std::size_t idx;
  std::size_t from_idx;
  bool operator>(const Cand& o) const {
    if (len != o.len) return len > o.len;
    if (from_asn != o.from_asn) return from_asn > o.from_asn;
    return idx > o.idx;
  }
};

using CandQueue = std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>>;

}  // namespace

Bgp::Bgp(const topo::Topology& topology) : topo_(&topology) {
  for (const auto& [asn, info] : topology.ases()) {
    (void)info;
    asns_.push_back(asn);
  }
  std::sort(asns_.begin(), asns_.end());
  for (std::size_t i = 0; i < asns_.size(); ++i) index_[asns_[i]] = i;

  const std::size_t n = asns_.size();
  providers_.resize(n);
  customers_.resize(n);
  peers_.resize(n);
  providers_asn_.resize(n);
  customers_asn_.resize(n);
  peers_asn_.resize(n);

  for (const auto& l : topology.as_links()) {
    const auto ia = index_.find(l.a);
    const auto ib = index_.find(l.b);
    if (ia == index_.end() || ib == index_.end()) continue;
    switch (l.rel) {
      case topo::Relationship::kCustomerToProvider:
        providers_[ia->second].push_back(ib->second);
        customers_[ib->second].push_back(ia->second);
        providers_asn_[ia->second].push_back(l.b);
        customers_asn_[ib->second].push_back(l.a);
        break;
      case topo::Relationship::kPeerToPeer:
      case topo::Relationship::kSibling:  // routed as mutual peers
        peers_[ia->second].push_back(ib->second);
        peers_[ib->second].push_back(ia->second);
        peers_asn_[ia->second].push_back(l.b);
        peers_asn_[ib->second].push_back(l.a);
        break;
    }
  }
}

std::size_t Bgp::index_of(Asn a) const {
  const auto it = index_.find(a);
  return it == index_.end() ? static_cast<std::size_t>(-1) : it->second;
}

void Bgp::compute() {
  const std::size_t n = asns_.size();
  best_.assign(n, std::vector<Best>(n));
  for (std::size_t o = 0; o < n; ++o) compute_origin(o);
}

void Bgp::compute_origin(std::size_t origin) {
  auto& best = best_[origin];
  best[origin] = {RouteClass::kSelf, 0, 0};

  // Stage 1: customer routes climb the provider edges.
  CandQueue q;
  for (const std::size_t p : providers_[origin]) q.push({1, asns_[origin], p, origin});
  while (!q.empty()) {
    const Cand c = q.top();
    q.pop();
    Best& b = best[c.idx];
    if (b.cls != RouteClass::kNone) continue;  // already settled (shorter or equal-better)
    b = {RouteClass::kCustomer, c.len, c.from_asn};
    for (const std::size_t p : providers_[c.idx]) {
      q.push({static_cast<std::uint16_t>(c.len + 1), asns_[c.idx], p, c.idx});
    }
  }

  // Stage 2: one hop across peer links from any customer/self route.
  std::vector<Best> peer_best(best.size());
  for (std::size_t u = 0; u < best.size(); ++u) {
    if (best[u].cls != RouteClass::kSelf && best[u].cls != RouteClass::kCustomer) continue;
    for (const std::size_t v : peers_[u]) {
      if (best[v].cls != RouteClass::kNone) continue;  // customer route wins
      const std::uint16_t len = static_cast<std::uint16_t>(best[u].path_len + 1);
      Best cand{RouteClass::kPeer, len, asns_[u]};
      Best& cur = peer_best[v];
      if (cur.cls == RouteClass::kNone || cand.path_len < cur.path_len ||
          (cand.path_len == cur.path_len && cand.learned_from < cur.learned_from)) {
        cur = cand;
      }
    }
  }
  for (std::size_t v = 0; v < best.size(); ++v) {
    if (peer_best[v].cls != RouteClass::kNone) best[v] = peer_best[v];
  }

  // Stage 3: provider routes descend the customer edges from every routed AS.
  CandQueue q3;
  for (std::size_t u = 0; u < best.size(); ++u) {
    if (best[u].cls == RouteClass::kNone) continue;
    for (const std::size_t v : customers_[u]) {
      if (best[v].cls != RouteClass::kNone) continue;
      q3.push({static_cast<std::uint16_t>(best[u].path_len + 1), asns_[u], v, u});
    }
  }
  while (!q3.empty()) {
    const Cand c = q3.top();
    q3.pop();
    Best& b = best[c.idx];
    if (b.cls != RouteClass::kNone) continue;
    b = {RouteClass::kProvider, c.len, c.from_asn};
    for (const std::size_t v : customers_[c.idx]) {
      if (best[v].cls == RouteClass::kNone) {
        q3.push({static_cast<std::uint16_t>(c.len + 1), asns_[c.idx], v, c.idx});
      }
    }
  }
}

Asn Bgp::next_hop(Asn from, Asn origin) const {
  const std::size_t f = index_of(from), o = index_of(origin);
  if (f >= asns_.size() || o >= asns_.size() || f == o) return 0;
  const Best& b = best_[o][f];
  return b.cls == RouteClass::kNone ? 0 : b.learned_from;
}

RouteClass Bgp::route_class(Asn from, Asn origin) const {
  const std::size_t f = index_of(from), o = index_of(origin);
  if (f >= asns_.size() || o >= asns_.size()) return RouteClass::kNone;
  return best_[o][f].cls;
}

std::vector<Asn> Bgp::as_path(Asn from, Asn origin) const {
  std::vector<Asn> path;
  const std::size_t o = index_of(origin);
  if (o >= asns_.size()) return path;
  Asn cur = from;
  for (std::size_t guard = 0; guard <= asns_.size(); ++guard) {
    path.push_back(cur);
    if (cur == origin) return path;
    const std::size_t c = index_of(cur);
    if (c >= asns_.size()) break;
    const Best& b = best_[o][c];
    if (b.cls == RouteClass::kNone || b.cls == RouteClass::kSelf) break;
    cur = b.learned_from;
  }
  return {};  // unreachable or loop guard tripped
}

const std::vector<Asn>& Bgp::providers(Asn a) const {
  static const std::vector<Asn> kEmpty;
  const std::size_t i = index_of(a);
  return i >= asns_.size() ? kEmpty : providers_asn_[i];
}

const std::vector<Asn>& Bgp::customers(Asn a) const {
  static const std::vector<Asn> kEmpty;
  const std::size_t i = index_of(a);
  return i >= asns_.size() ? kEmpty : customers_asn_[i];
}

const std::vector<Asn>& Bgp::peers(Asn a) const {
  static const std::vector<Asn> kEmpty;
  const std::size_t i = index_of(a);
  return i >= asns_.size() ? kEmpty : peers_asn_[i];
}

std::vector<RibEntry> Bgp::rib_dump(Asn collector) const {
  std::vector<RibEntry> out;
  for (const auto& ann : topo_->announcements()) {
    auto path = as_path(collector, ann.asn);
    if (path.empty()) continue;
    out.push_back({ann.prefix, std::move(path)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Router-level FIB installation

namespace {

struct Egress {
  sim::NodeId router = sim::kInvalidNode;
  int ifindex = -1;
  net::Ipv4Address next_hop;
};

// Locates every usable adjacency from AS x to AS y: point-to-point links
// and shared IXP LANs with both ports up.  Multiple adjacencies give the
// FIB installer per-prefix path diversity (parallel interdomain links are
// only discoverable by bdrmap if some prefix actually exits over them).
std::vector<Egress> find_egresses(const topo::Topology& topology, Asn x, Asn y) {
  // Dedicated point-to-point interconnects come before LAN adjacencies:
  // when an AS has both (e.g. a transit contract over a private link plus
  // a public peering port), the private link carries the routed traffic.
  std::vector<Egress> direct;
  std::vector<Egress> lan;
  auto& net = const_cast<topo::Topology&>(topology).net();
  for (const sim::NodeId rid : topology.routers_of(x)) {
    const sim::Node& r = net.node(rid);
    for (std::size_t i = 0; i < r.interfaces().size(); ++i) {
      const auto& ifc = r.interfaces()[i];
      if (ifc.link_id < 0) continue;
      sim::DuplexLink& link = net.link(ifc.link_id);
      if (!link.is_up()) continue;
      const sim::NodeId peer = link.other(rid);
      if (topology.router_owner(peer) == y) {
        const int pif = link.ifindex_at(peer);
        const auto& paddr = net.node(peer).interfaces()[static_cast<std::size_t>(pif)].addr;
        direct.push_back(Egress{rid, static_cast<int>(i), paddr});
        continue;
      }
      // Shared IXP LAN: find y-owned routers with a live port on the same
      // fabric node.
      if (net.node(peer).is_switch()) {
        for (const sim::NodeId yr : topology.routers_of(y)) {
          const sim::Node& yn = net.node(yr);
          for (std::size_t j = 0; j < yn.interfaces().size(); ++j) {
            const auto& yifc = yn.interfaces()[j];
            if (yifc.link_id < 0) continue;
            sim::DuplexLink& ylink = net.link(yifc.link_id);
            if (!ylink.is_up() || ylink.other(yr) != peer) continue;
            lan.push_back(Egress{rid, static_cast<int>(i), yifc.addr});
          }
        }
      }
    }
  }
  direct.insert(direct.end(), lan.begin(), lan.end());
  return direct;
}

// Intra-AS next hop from router `from` toward router `to` (BFS over links
// whose both endpoints belong to the AS).
std::optional<Egress> intra_as_hop(const topo::Topology& topology, Asn x, sim::NodeId from,
                                   sim::NodeId to) {
  if (from == to) return std::nullopt;
  auto& net = const_cast<topo::Topology&>(topology).net();
  // BFS backwards from `to`, remembering the first hop out of `from`.
  std::unordered_map<sim::NodeId, std::pair<int, net::Ipv4Address>> via;  // node -> (ifindex, nh)
  std::queue<sim::NodeId> q;
  q.push(to);
  std::unordered_map<sim::NodeId, bool> seen;
  seen[to] = true;
  while (!q.empty()) {
    const sim::NodeId cur = q.front();
    q.pop();
    const sim::Node& n = net.node(cur);
    for (const auto& ifc : n.interfaces()) {
      if (ifc.link_id < 0) continue;
      sim::DuplexLink& link = net.link(ifc.link_id);
      if (!link.is_up()) continue;
      const sim::NodeId peer = link.other(cur);
      if (topology.router_owner(peer) != x || seen.count(peer)) continue;
      seen[peer] = true;
      // From `peer`, the next hop toward `to` is across this link into cur.
      const int pif = link.ifindex_at(peer);
      via[peer] = {pif, ifc.addr};
      if (peer == from) {
        return Egress{from, pif, ifc.addr};
      }
      q.push(peer);
    }
  }
  return std::nullopt;
}

void install_at(sim::Network& net, sim::NodeId router, const net::Ipv4Prefix& prefix,
                int ifindex, net::Ipv4Address nh) {
  auto& r = static_cast<sim::Router&>(net.node(router));
  r.add_route(prefix, sim::FibEntry{ifindex, nh});
}

}  // namespace

void Bgp::install_fibs(topo::Topology& topology) const {
  auto& net = topology.net();
  const net::Ipv4Prefix kDefault(net::Ipv4Address(0), 0);

  // Pass 1: reset and install connected subnets on every router.
  for (const auto& [asn, routers] : [&] {
        std::vector<std::pair<Asn, std::vector<sim::NodeId>>> v;
        for (const auto& a : asns_) v.emplace_back(a, topology.routers_of(a));
        return v;
      }()) {
    (void)asn;
    for (const sim::NodeId rid : routers) {
      if (!net.node(rid).is_router()) continue;
      auto* r = static_cast<sim::Router*>(&net.node(rid));
      r->clear_fib();
      for (std::size_t i = 0; i < r->interfaces().size(); ++i) {
        const auto& ifc = r->interfaces()[i];
        if (ifc.subnet.length() > 0) {
          r->add_route(ifc.subnet, sim::FibEntry{static_cast<int>(i), net::Ipv4Address()});
        }
      }
    }
  }

  // Pass 2: per-AS routes.
  for (std::size_t xi = 0; xi < asns_.size(); ++xi) {
    const Asn x = asns_[xi];
    const auto& routers = topology.routers_of(x);
    if (routers.empty()) continue;
    const bool tier1 = providers_[xi].empty();

    // Cache of AS-level egress resolutions for this source AS.
    std::unordered_map<Asn, std::vector<Egress>> egress_cache;
    auto egresses_to = [&](Asn y) -> const std::vector<Egress>& {
      auto it = egress_cache.find(y);
      if (it == egress_cache.end()) {
        it = egress_cache.emplace(y, find_egresses(topology, x, y)).first;
      }
      return it->second;
    };
    // Deterministic round-robin spreading over parallel adjacencies: the
    // k-th prefix learned from a neighbor exits over its k-th adjacency, so
    // every parallel link carries some prefix and stays discoverable.
    std::unordered_map<Asn, std::size_t> rotation;
    auto pick = [&rotation](const std::vector<Egress>& v, Asn learned_from) -> const Egress& {
      return v[rotation[learned_from]++ % v.size()];
    };

    auto install_via = [&](const net::Ipv4Prefix& prefix, const Egress& eg) {
      install_at(net, eg.router, prefix, eg.ifindex, eg.next_hop);
      for (const sim::NodeId rid : routers) {
        if (rid == eg.router) continue;
        if (auto hop = intra_as_hop(topology, x, rid, eg.router)) {
          install_at(net, rid, prefix, hop->ifindex, hop->next_hop);
        }
      }
    };

    // Own prefixes: route every router toward the originating router.
    for (const auto& ann : topo_->announcements()) {
      if (ann.asn != x) continue;
      for (const sim::NodeId rid : routers) {
        if (rid == ann.router) continue;
        if (auto hop = intra_as_hop(topology, x, rid, ann.router)) {
          install_at(net, rid, ann.prefix, hop->ifindex, hop->next_hop);
        }
      }
    }

    // Learned routes.
    for (const auto& ann : topo_->announcements()) {
      if (ann.asn == x) continue;
      const std::size_t oi = index_of(ann.asn);
      if (oi >= asns_.size()) continue;
      const Best& b = best_[oi][xi];
      if (b.cls == RouteClass::kNone) continue;
      const bool explicit_route =
          b.cls == RouteClass::kCustomer || b.cls == RouteClass::kPeer || tier1;
      if (!explicit_route) continue;  // covered by the default route below
      const auto& egs = egresses_to(b.learned_from);
      if (!egs.empty()) install_via(ann.prefix, pick(egs, b.learned_from));
    }

    // Default route toward the preferred (lowest-ASN reachable) provider.
    if (!tier1) {
      for (const Asn p : [&] {
            auto v = providers_asn_[xi];
            std::sort(v.begin(), v.end());
            return v;
          }()) {
        const auto& egs = egresses_to(p);
        if (!egs.empty()) {
          install_via(kDefault, egs.front());
          break;
        }
      }
    }
  }
}

}  // namespace ixp::routing
