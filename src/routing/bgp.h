// Gao-Rexford interdomain routing over the synthetic AS graph.
//
// Route preference follows the standard model: customer-learned routes are
// preferred over peer-learned over provider-learned; exports are valley
// free (customer routes go to everyone, peer/provider routes only to
// customers).  Ties break on AS-path length, then lowest next-hop ASN, so
// the computation is deterministic.
//
// After AS-level computation, install_fibs() writes router-level forwarding
// tables with realistic compression: stub and member networks carry
// explicit routes only for their own, customer, and peer prefixes plus a
// default toward their preferred provider; provider-free (tier-1) networks
// carry the full table.  This mirrors how African IXP members actually
// provision their routers and keeps the simulated FIBs small.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/topology.h"

namespace ixp::routing {

using topo::Asn;

enum class RouteClass : std::uint8_t {
  kNone = 0,      ///< unreachable
  kSelf = 1,      ///< the destination itself
  kCustomer = 2,  ///< learned from a customer
  kPeer = 3,      ///< learned from a peer
  kProvider = 4,  ///< learned from a provider
};

/// One line of a synthetic BGP RIB dump (RouteViews/RIS-like input for
/// bdrmap-lite and AS-rank-lite).
struct RibEntry {
  net::Ipv4Prefix prefix;
  std::vector<Asn> as_path;  ///< collector first, origin last
};

class Bgp {
 public:
  explicit Bgp(const topo::Topology& topology);

  /// Computes best routes from every AS toward every origin AS.
  void compute();

  /// The AS that `from` forwards to for traffic toward `origin`; 0 when
  /// unreachable or from == origin.
  [[nodiscard]] Asn next_hop(Asn from, Asn origin) const;

  /// Best-route class at `from` toward `origin`.
  [[nodiscard]] RouteClass route_class(Asn from, Asn origin) const;

  /// Full AS path (from .. origin); empty when unreachable.
  [[nodiscard]] std::vector<Asn> as_path(Asn from, Asn origin) const;

  /// Providers/customers/peers of an AS per the declared relationships.
  [[nodiscard]] const std::vector<Asn>& providers(Asn a) const;
  [[nodiscard]] const std::vector<Asn>& customers(Asn a) const;
  [[nodiscard]] const std::vector<Asn>& peers(Asn a) const;

  /// Installs router-level FIBs into the topology's simulator nodes.
  /// Re-runs from scratch; call again after timeline changes.
  void install_fibs(topo::Topology& topology) const;

  /// Synthetic RIB dump as seen from `collector` (one entry per announced
  /// prefix reachable from there).
  [[nodiscard]] std::vector<RibEntry> rib_dump(Asn collector) const;

 private:
  struct Best {
    RouteClass cls = RouteClass::kNone;
    std::uint16_t path_len = 0xffff;
    Asn learned_from = 0;  ///< neighbor the route was learned from
  };

  [[nodiscard]] std::size_t index_of(Asn a) const;
  void compute_origin(std::size_t origin_idx);

  const topo::Topology* topo_;
  std::vector<Asn> asns_;                       // index -> ASN
  std::unordered_map<Asn, std::size_t> index_;  // ASN -> index
  std::vector<std::vector<std::size_t>> providers_;
  std::vector<std::vector<std::size_t>> customers_;
  std::vector<std::vector<std::size_t>> peers_;
  std::vector<std::vector<Asn>> providers_asn_;
  std::vector<std::vector<Asn>> customers_asn_;
  std::vector<std::vector<Asn>> peers_asn_;
  // best_[origin][as] -- row-major per origin.
  std::vector<std::vector<Best>> best_;
};

}  // namespace ixp::routing
