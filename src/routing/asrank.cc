#include "routing/asrank.h"

#include <algorithm>

namespace ixp::routing {
namespace {
std::pair<Asn, Asn> norm(Asn a, Asn b) { return a < b ? std::make_pair(a, b) : std::make_pair(b, a); }
}

void AsRank::add_path(const std::vector<Asn>& path) {
  if (path.size() >= 2) paths_.push_back(path);
}

void AsRank::infer() {
  transit_degree_.clear();
  plain_degree_.clear();
  edges_.clear();

  // Pass 1: degrees.  Transit degree counts distinct neighbors adjacent to
  // an AS while that AS sits mid-path (it is carrying someone's traffic);
  // plain degree counts distinct neighbors anywhere.
  std::set<std::pair<Asn, Asn>> transit_adj;   // (mid AS, neighbor)
  std::set<std::pair<Asn, Asn>> plain_adj;     // normalized edge
  for (const auto& path : paths_) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Asn a = path[i], b = path[i + 1];
      if (a == b) continue;
      if (plain_adj.insert(norm(a, b)).second) {
        ++plain_degree_[a];
        ++plain_degree_[b];
      }
      // `a` transits if it is not the first hop; `b` if not the last.
      if (i > 0 && transit_adj.insert({a, b}).second) ++transit_degree_[a];
      if (i + 2 < path.size() && transit_adj.insert({b, a}).second) ++transit_degree_[b];
    }
  }
  auto tdeg = [&](Asn a) {
    const auto it = transit_degree_.find(a);
    return it == transit_degree_.end() ? 0 : it->second;
  };
  auto pdeg = [&](Asn a) {
    const auto it = plain_degree_.find(a);
    return it == plain_degree_.end() ? 0 : it->second;
  };

  // Pass 2: votes against each path's summit.
  struct Votes {
    int a_below_b = 0;  // votes that lo is the customer of hi
    int b_below_a = 0;
  };
  std::map<std::pair<Asn, Asn>, Votes> votes;
  for (const auto& path : paths_) {
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      const int di = tdeg(path[i]), dt = tdeg(path[top]);
      if (di > dt || (di == dt && pdeg(path[i]) > pdeg(path[top]))) top = i;
    }
    // Climbing half: path[i] is a customer of path[i+1].
    for (std::size_t i = 0; i + 1 <= top; ++i) {
      const Asn a = path[i], b = path[i + 1];
      if (a == b) continue;
      auto& v = votes[norm(a, b)];
      (a < b ? v.a_below_b : v.b_below_a) += 1;
    }
    // Descending half: path[i+1] is a customer of path[i].
    for (std::size_t i = top; i + 1 < path.size(); ++i) {
      const Asn a = path[i], b = path[i + 1];
      if (a == b) continue;
      auto& v = votes[norm(a, b)];
      (b < a ? v.a_below_b : v.b_below_a) += 1;
    }
  }

  // Pass 3: decisions.
  for (const auto& [key, v] : votes) {
    const auto [lo, hi] = key;
    const int dlo = std::max(tdeg(lo), pdeg(lo));
    const int dhi = std::max(tdeg(hi), pdeg(hi));
    const double ratio = (std::min(dlo, dhi) + 1.0) / (std::max(dlo, dhi) + 1.0);
    const bool contested = v.a_below_b > 0 && v.b_below_a > 0;
    if ((contested && ratio > 0.5) || v.a_below_b == v.b_below_a) {
      edges_[key] = InferredRel::kPeerToPeer;
    } else if (v.a_below_b > v.b_below_a) {
      edges_[key] = InferredRel::kCustomerToProvider;  // lo below hi
    } else {
      edges_[key] = InferredRel::kProviderToCustomer;  // lo above hi
    }
  }
}

InferredRel AsRank::relationship(Asn a, Asn b) const {
  const auto it = edges_.find(norm(a, b));
  if (it == edges_.end()) return InferredRel::kUnknown;
  InferredRel r = it->second;
  if (a < b) return r;
  switch (r) {
    case InferredRel::kCustomerToProvider: return InferredRel::kProviderToCustomer;
    case InferredRel::kProviderToCustomer: return InferredRel::kCustomerToProvider;
    default: return r;
  }
}

int AsRank::degree(Asn a) const {
  const auto it = plain_degree_.find(a);
  return it == plain_degree_.end() ? 0 : it->second;
}

}  // namespace ixp::routing
