// AS-relationship inference from BGP paths (AS-rank-lite).
//
// bdrmap consumes CAIDA's AS-rank relationship file; we reproduce a compact
// Gao-style inference.  infer() first computes each AS's *transit degree*
// (distinct neighbors seen while the AS is in the middle of a path -- the
// signal CAIDA's AS-rank uses), then takes the highest-transit-degree AS on
// each path as its summit: links climbing toward the summit vote
// customer->provider, links descending vote provider->customer, and links
// voted both ways between similar-degree ASes are peers.  Inference is
// order-independent (votes are recomputed from the stored paths once all
// degrees are known).  Quality is checkable against the topology's declared
// relationships (tests do exactly that).
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "routing/bgp.h"

namespace ixp::routing {

enum class InferredRel {
  kCustomerToProvider,  ///< first is customer of second
  kProviderToCustomer,
  kPeerToPeer,
  kUnknown,
};

class AsRank {
 public:
  /// Feeds one AS path (collector .. origin).
  void add_path(const std::vector<Asn>& path);

  /// Runs the inference over everything fed so far.
  void infer();

  /// Relationship of the ordered pair (a, b); kUnknown when never seen.
  [[nodiscard]] InferredRel relationship(Asn a, Asn b) const;

  /// All inferred edges, normalized with a < b.
  [[nodiscard]] const std::map<std::pair<Asn, Asn>, InferredRel>& edges() const { return edges_; }

  /// Transit degree (distinct neighbors seen around the AS mid-path);
  /// valid after infer().
  [[nodiscard]] int degree(Asn a) const;

 private:
  std::vector<std::vector<Asn>> paths_;
  std::map<Asn, int> transit_degree_;
  std::map<Asn, int> plain_degree_;
  std::map<std::pair<Asn, Asn>, InferredRel> edges_;
};

}  // namespace ixp::routing
