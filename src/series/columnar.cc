#include "series/columnar.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace ixp::series {
namespace {

constexpr std::uint8_t kOpGap = 0x00;
constexpr std::uint8_t kOpLiteral = 0x01;
constexpr std::uint8_t kOpDelta = 0x02;

// Milliseconds -> integer nanoseconds.  Everything the simulator emits is
// to_ms() of an integer-nanosecond Duration, so this grid is exact for the
// entire campaign workload; the literal escape covers everything else.
constexpr double kScale = 1e6;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    IXP_CHECK(pos < in.size(), "columnar: truncated varint");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    IXP_CHECK(shift < 64, "columnar: varint overflow");
  }
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// True iff v sits exactly on the integer-nanosecond grid: round-tripping
/// through the quantized integer reproduces the identical bit pattern
/// (this rejects -0.0, which quantizes to +0.0).
bool quantize(double v, std::int64_t* q) {
  const double scaled = v * kScale;
  if (!(scaled >= -9.0e18 && scaled <= 9.0e18)) return false;  // llround domain
  const std::int64_t cand = std::llround(scaled);
  if (std::bit_cast<std::uint64_t>(static_cast<double>(cand) / kScale) !=
      std::bit_cast<std::uint64_t>(v)) {
    return false;
  }
  *q = cand;
  return true;
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

void StreamStats::add(double v) {
  ++samples;
  if (std::isnan(v)) return;
  if (finite == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++finite;
  const double delta = v - mean;
  mean += delta / static_cast<double>(finite);
  m2 += delta * (v - mean);
}

void Column::append(std::span<const double> values) {
  for (const double v : values) {
    ++samples;
    stats.add(v);
    if (std::isnan(v)) {
      ++open_gap;
      continue;
    }
    if (open_gap > 0) {
      bytes.push_back(kOpGap);
      put_varint(bytes, open_gap);
      open_gap = 0;
    }
    std::int64_t q = 0;
    if (quantize(v, &q)) {
      bytes.push_back(kOpDelta);
      put_varint(bytes, zigzag(q - prev_q));
      prev_q = q;
    } else {
      // Off-grid value (or -0.0): store the raw bits.  The predictor is
      // left untouched so encode state stays a pure function of the
      // quantizable samples seen so far.
      bytes.push_back(kOpLiteral);
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
      for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }
}

std::vector<double> Column::decode() const {
  std::vector<double> out;
  decode_into(out);
  return out;
}

void Column::decode_into(std::vector<double>& out) const {
  out.clear();
  out.reserve(samples);
  std::size_t pos = 0;
  std::int64_t q = 0;
  while (pos < bytes.size()) {
    const std::uint8_t op = bytes[pos++];
    switch (op) {
      case kOpGap: {
        const std::uint64_t run = get_varint(bytes, pos);
        out.insert(out.end(), run, tslp::kMissing);
        break;
      }
      case kOpLiteral: {
        IXP_CHECK(pos + 8 <= bytes.size(), "columnar: truncated literal");
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i) {
          bits |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
        }
        pos += 8;
        out.push_back(std::bit_cast<double>(bits));
        break;
      }
      case kOpDelta: {
        q += unzigzag(get_varint(bytes, pos));
        out.push_back(static_cast<double>(q) / kScale);
        break;
      }
      default:
        IXP_CHECK(false, "columnar: unknown token");
    }
  }
  // The trailing missing run is flushed lazily; materialize it here.
  out.insert(out.end(), open_gap, tslp::kMissing);
  IXP_CHECK(out.size() == samples, "columnar: decoded length mismatch");
}

std::size_t Column::resident_bytes() const {
  std::size_t n = bytes.size();
  if (open_gap > 0) n += 1 + varint_size(open_gap);
  return n;
}

std::size_t SeriesStore::add_link(LinkMeta meta, std::uint64_t lead_missing) {
  Entry e;
  e.meta = std::move(meta);
  links_.push_back(std::move(e));
  Entry& back = links_.back();
  if (lead_missing > 0) {
    back.near.samples = lead_missing;
    back.far.samples = lead_missing;
    back.near.open_gap = lead_missing;
    back.far.open_gap = lead_missing;
    for (std::uint64_t k = 0; k < lead_missing; ++k) {
      back.near.stats.add(tslp::kMissing);
      back.far.stats.add(tslp::kMissing);
    }
  }
  return links_.size() - 1;
}

void SeriesStore::append(std::size_t i, std::span<const double> near,
                         std::span<const double> far) {
  IXP_CHECK(i < links_.size(), "SeriesStore::append: bad link index");
  IXP_CHECK(near.size() == far.size(), "SeriesStore::append: near/far length mismatch");
  links_[i].near.append(near);
  links_[i].far.append(far);
}

void SeriesStore::pad_to(std::size_t i, std::uint64_t rounds) {
  IXP_CHECK(i < links_.size(), "SeriesStore::pad_to: bad link index");
  Entry& e = links_[i];
  IXP_CHECK(e.near.samples <= rounds, "SeriesStore::pad_to: link already past target");
  while (e.near.samples < rounds) {
    ++e.near.samples;
    ++e.near.open_gap;
    e.near.stats.add(tslp::kMissing);
    ++e.far.samples;
    ++e.far.open_gap;
    e.far.stats.add(tslp::kMissing);
  }
}

tslp::LinkSeries SeriesStore::decode(std::size_t i) const {
  IXP_CHECK(i < links_.size(), "SeriesStore::decode: bad link index");
  const Entry& e = links_[i];
  tslp::LinkSeries ls;
  ls.key = e.meta.key;
  ls.near_ip = e.meta.near_ip;
  ls.far_ip = e.meta.far_ip;
  ls.near_asn = e.meta.near_asn;
  ls.far_asn = e.meta.far_asn;
  ls.at_ixp = e.meta.at_ixp;
  ls.near_rtt.start = start_;
  ls.near_rtt.interval = interval_;
  ls.near_rtt.ms = e.near.decode();
  ls.far_rtt.start = start_;
  ls.far_rtt.interval = interval_;
  ls.far_rtt.ms = e.far.decode();
  return ls;
}

void SeriesStore::decode_into(std::size_t i, std::vector<double>& near,
                              std::vector<double>& far) const {
  IXP_CHECK(i < links_.size(), "SeriesStore::decode_into: bad link index");
  links_[i].near.decode_into(near);
  links_[i].far.decode_into(far);
}

std::size_t SeriesStore::resident_bytes() const {
  std::size_t n = 0;
  for (const Entry& e : links_) n += e.near.resident_bytes() + e.far.resident_bytes();
  return n;
}

std::size_t SeriesStore::raw_bytes() const {
  return static_cast<std::size_t>(samples_total()) * sizeof(double);
}

std::uint64_t SeriesStore::samples_total() const {
  std::uint64_t n = 0;
  for (const Entry& e : links_) n += e.near.samples + e.far.samples;
  return n;
}

}  // namespace ixp::series
