// Columnar storage for RTT time series: lossless delta/quantized encoding
// plus single-pass streaming statistics, so a long-horizon many-link
// campaign holds its sample history in a few percent of the raw
// 8-bytes-per-sample footprint.
//
// Why this exists: the paper's substrate is 6 VPs and a few hundred links,
// where `std::vector<double>` per link side is fine.  The continent-scale
// substrate (docs/SCALING.md) is hundreds of IXPs and ~10^6 monitored
// links over a year -- raw doubles would be ~1.6 TB.  Almost every sample
// the simulator produces is derived from an integer-nanosecond RTT
// (util/time.h `to_ms`), so quantizing to integer nanoseconds is exact,
// and consecutive RTTs on an uncongested link differ by microseconds, so
// zigzag-varint deltas are 1-2 bytes.  Lost probes (NaN, tslp::kMissing)
// arrive in runs -- probe bursts, maintenance windows, membership gaps
// (PR 4) -- and compress to a single run-length token.
//
// Encoding, per column (one column = one side of one link):
//
//   token 0x00 <varint n>          gap: n consecutive missing samples
//   token 0x01 <8 bytes LE bits>   literal: raw IEEE-754 double
//   token 0x02 <zigzag varint d>   delta: q = prev_q + d, value = q / 1e6 ms
//
// A finite value v is delta-eligible iff round(v * 1e6) converts back to
// bit-identical v; anything else (including -0.0 and values produced
// outside the integer-ns grid) is stored as a literal, so decode is
// bit-exact for arbitrary input -- the property tests in
// tests/test_series.cc round-trip adversarial doubles.
//
// The encoder is streaming: `SeriesStore::append` consumes one segment of
// samples at a time (campaign segments between membership events) and
// carries (prev_q, open gap run) across calls, so encoded bytes are
// identical whether a series arrives in one call or round-by-round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tslp/series.h"
#include "util/time.h"

namespace ixp::series {

/// Single-pass (Welford) summary of one column.  Missing samples count
/// toward `samples` but not toward the moments.
struct StreamStats {
  std::uint64_t samples = 0;  ///< total appended, including missing
  std::uint64_t finite = 0;   ///< samples carrying a measurement
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean

  void add(double v);
  [[nodiscard]] double variance() const {
    return finite > 1 ? m2 / static_cast<double>(finite - 1) : 0.0;
  }
  [[nodiscard]] double coverage() const {
    return samples > 0 ? static_cast<double>(finite) / static_cast<double>(samples) : 1.0;
  }
};

/// One encoded column and the codec state needed to keep appending to it.
struct Column {
  std::vector<std::uint8_t> bytes;  ///< token stream (see file header)
  std::uint64_t samples = 0;        ///< decoded length
  StreamStats stats;

  // Streaming encoder state.
  std::int64_t prev_q = 0;    ///< last quantized value (integer nanoseconds)
  std::uint64_t open_gap = 0; ///< missing run not yet flushed to `bytes`

  /// Appends samples (NaN = missing) to the token stream.
  void append(std::span<const double> values);
  /// Decodes the full column back to raw samples, bit-exact.
  [[nodiscard]] std::vector<double> decode() const;
  /// Same decode into a caller-owned buffer (cleared first), so a sweep
  /// over a large store reuses one allocation instead of one per column.
  void decode_into(std::vector<double>& out) const;
  /// Bytes held, including any open gap run (flushed lazily on decode).
  [[nodiscard]] std::size_t resident_bytes() const;
};

/// Identity of one monitored link; mirrors tslp::LinkSeries minus the
/// sample vectors.
struct LinkMeta {
  std::string key;
  net::Ipv4Address near_ip;
  net::Ipv4Address far_ip;
  std::uint32_t near_asn = 0;
  std::uint32_t far_asn = 0;
  bool at_ixp = false;
};

/// Append-only store of near/far RTT columns for a set of monitored
/// links sharing one sample grid (same start and round interval).
///
/// All links are kept at the same decoded length: a link discovered
/// mid-campaign is added with a leading gap, and `pad_to` advances
/// stragglers (links probed in no segment of a window) with missing
/// samples, mirroring what the in-memory campaign path does with
/// explicit kMissing entries.
class SeriesStore {
 public:
  SeriesStore() = default;
  SeriesStore(TimePoint start, Duration interval) : start_(start), interval_(interval) {}

  /// Registers a link whose first sample is at grid index `lead_missing`.
  /// Returns the link's index.
  std::size_t add_link(LinkMeta meta, std::uint64_t lead_missing = 0);

  /// Appends one segment of near/far samples (equal length) to link `i`.
  void append(std::size_t i, std::span<const double> near, std::span<const double> far);

  /// Extends link `i` with missing samples up to `rounds` total.
  void pad_to(std::size_t i, std::uint64_t rounds);

  /// Decodes link `i` into a LinkSeries identical to what the raw
  /// in-memory path would have accumulated.
  [[nodiscard]] tslp::LinkSeries decode(std::size_t i) const;

  /// Decodes link `i`'s two columns into reusable buffers (bit-exact, like
  /// decode) without constructing a LinkSeries; the TSLP fast path wraps
  /// the buffers in SeriesViews on the store's time base.
  void decode_into(std::size_t i, std::vector<double>& near, std::vector<double>& far) const;

  [[nodiscard]] std::size_t size() const { return links_.size(); }
  [[nodiscard]] const LinkMeta& meta(std::size_t i) const { return links_[i].meta; }
  [[nodiscard]] std::uint64_t samples(std::size_t i) const { return links_[i].near.samples; }
  [[nodiscard]] const StreamStats& near_stats(std::size_t i) const { return links_[i].near.stats; }
  [[nodiscard]] const StreamStats& far_stats(std::size_t i) const { return links_[i].far.stats; }
  [[nodiscard]] TimePoint start() const { return start_; }
  [[nodiscard]] Duration interval() const { return interval_; }

  /// Encoded bytes held across all columns.
  [[nodiscard]] std::size_t resident_bytes() const;
  /// What the raw in-memory representation would hold (8 bytes/sample).
  [[nodiscard]] std::size_t raw_bytes() const;
  /// Total samples across all columns (near + far).
  [[nodiscard]] std::uint64_t samples_total() const;

 private:
  struct Entry {
    LinkMeta meta;
    Column near;
    Column far;
  };
  TimePoint start_{};
  Duration interval_ = kMinute * 5;
  std::vector<Entry> links_;
};

}  // namespace ixp::series
