#include "analysis/report.h"

#include <ostream>
#include <sstream>

#include "analysis/casebook.h"
#include "analysis/tables.h"
#include "util/ascii_chart.h"
#include "util/strings.h"

namespace ixp::analysis {
namespace {

const char* verdict_name(tslp::Verdict v) {
  switch (v) {
    case tslp::Verdict::kNotCongested: return "not congested";
    case tslp::Verdict::kPotentiallyCongested: return "level shifts, no diurnal pattern";
    case tslp::Verdict::kInconclusive: return "inconclusive (near side unclear)";
    case tslp::Verdict::kCongested: return "congested";
  }
  return "?";
}

const char* persistence_name(tslp::Persistence p) {
  switch (p) {
    case tslp::Persistence::kNone: return "-";
    case tslp::Persistence::kTransient: return "transient";
    case tslp::Persistence::kSustained: return "sustained";
  }
  return "?";
}

const CaseStudy* matching_case(const VpSpec& spec, const tslp::LinkSeries& link) {
  for (const auto& cs : casebook()) {
    if (cs.vp != spec.vp_name) continue;
    // Match on the far AS named in the case id (GHANATEL=29614, KNET=33786,
    // NETPAGE is synthetic): use the key suffix.
    if (cs.id == "GIXA-GHANATEL" && link.far_asn == 29614) return &cs;
    if (cs.id == "GIXA-KNET" && link.far_asn == 33786) return &cs;
    if (cs.id == "QCELL-NETPAGE" && link.far_asn == 65400) return &cs;
  }
  return nullptr;
}

}  // namespace

void write_report(std::ostream& out, const VpSpec& spec, const VpCampaignResult& result,
                  const ReportOptions& opts) {
  out << "# Congestion report: " << spec.vp_name << " at " << spec.ixp.name << "\n\n";
  out << "- Exchange: " << spec.ixp.long_name << " (" << spec.ixp.city << ", "
      << spec.ixp.sub_region << ", launched " << spec.ixp.launch_year << ")\n";
  out << "- Vantage point: AS" << spec.vp_asn << " (" << spec.vp_as_name << "), "
      << (spec.vp_is_ixp_network ? "inside the exchange's own network"
                                 : "hosted by a member network")
      << "\n";
  out << "- Monitored links: " << result.series.size() << "; probes sent: " << result.probes_sent
      << "\n\n";

  if (!result.snapshots.empty()) {
    out << "## Snapshot evolution\n\n";
    out << "| date | links (peering) | congested | neighbors (peers) | bdrmap recall |\n";
    out << "|---|---|---|---|---|\n";
    for (const auto& s : result.snapshots) {
      out << "| " << format_date(s.at) << " | " << s.discovered_links << " (" << s.peering_links
          << ") | " << s.congested_links << " | " << s.neighbors << " (" << s.peers << ") | "
          << strformat("%.1f%%", 100.0 * s.accuracy.neighbor_recall()) << " |\n";
    }
    out << "\n";
  }

  out << "## Threshold sensitivity\n\n";
  out << "| threshold | potentially congested | with diurnal pattern |\n|---|---|---|\n";
  for (const double t : kTable1Thresholds) {
    out << "| " << strformat("%.0f ms", t) << " | " << result.potentially_congested(t) << " | "
        << result.with_diurnal(t) << " |\n";
  }
  out << "\n";

  out << "## Findings\n\n";
  bool any = false;
  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    const auto& rep = result.reports[i];
    if (rep.verdict == tslp::Verdict::kNotCongested) continue;
    any = true;
    const auto& link = result.series[i];
    out << "### " << link.key << (link.at_ixp ? " (at the exchange)" : " (private interconnect)")
        << "\n\n";
    out << "- Verdict: **" << verdict_name(rep.verdict) << "**";
    if (rep.verdict == tslp::Verdict::kCongested || rep.verdict == tslp::Verdict::kInconclusive) {
      out << ", " << persistence_name(rep.persistence);
    }
    out << "\n";
    if (rep.far_shifts.any()) {
      std::size_t significant = 0;
      for (const auto& e : rep.far_shifts.episodes) significant += e.significant() ? 1 : 0;
      out << "- Episodes: " << rep.far_shifts.episodes.size() << " (" << significant
          << " significant at alpha = 0.01); A_w "
          << strformat("%.1f ms", rep.waveform.a_w_ms) << "; dt_UD "
          << format_duration(rep.waveform.dt_ud);
      if (rep.waveform.period.count() > 0) {
        out << "; periodicity " << format_duration(rep.waveform.period);
      }
      out << "\n";
      out << "- Weekday vs weekend p95 elevation: "
          << strformat("%.1f / %.1f ms", rep.waveform.weekday_peak_ms,
                       rep.waveform.weekend_peak_ms)
          << "; near side " << (rep.near_clean ? "clean" : "NOT clean") << "\n";
    }
    if (const CaseStudy* cs = matching_case(spec, link)) {
      const auto check = check_case(*cs, rep);
      out << "- Casebook: " << cs->id << " -- " << (check.all() ? "matches" : "partially matches")
          << " the documented account\n";
      out << "- Documented cause: " << cs->cause << "\n";
    }
    if (opts.include_waveforms && rep.congested()) {
      AsciiChartOptions chart;
      chart.width = 100;
      chart.height = 12;
      out << "\n```\n"
          << render_ascii_chart({{"far", '*', link.far_rtt.ms}, {"near", '.', link.near_rtt.ms}},
                                chart)
          << "```\n";
    }
    out << "\n";
  }
  if (!any) out << "No congestion was detected on any monitored link.\n\n";

  if (opts.include_link_appendix) {
    out << "## Appendix: all monitored links\n\n";
    out << "| link | at IXP | loss | verdict |\n|---|---|---|---|\n";
    for (std::size_t i = 0; i < result.series.size(); ++i) {
      const auto& link = result.series[i];
      out << "| " << link.key << " | " << (link.at_ixp ? "yes" : "no") << " | "
          << strformat("%.1f%%", 100.0 * link.far_rtt.loss_fraction()) << " | "
          << verdict_name(result.reports[i].verdict) << " |\n";
    }
    out << "\n";
  }
}

std::string report_to_string(const VpSpec& spec, const VpCampaignResult& result,
                             const ReportOptions& opts) {
  std::ostringstream out;
  write_report(out, spec, result, opts);
  return out.str();
}

void write_combined_report(std::ostream& out,
                           const std::vector<std::pair<VpSpec, const VpCampaignResult*>>& vps,
                           const ReportOptions& opts) {
  out << "# Congestion on the IXP substrate: combined study report\n\n";

  // The 6.1 aggregate.
  std::size_t total_links = 0, peering_links = 0, congested = 0, flagged = 0;
  std::uint64_t probes = 0, rr = 0;
  for (const auto& [spec, result] : vps) {
    (void)spec;
    total_links += result->series.size();
    for (std::size_t i = 0; i < result->series.size(); ++i) {
      if (result->series[i].at_ixp) ++peering_links;
      if (result->reports[i].congested()) ++congested;
    }
    flagged += result->potentially_congested(10.0);
    probes += result->probes_sent;
    rr += result->record_routes;
  }
  out << "- Vantage points: " << vps.size() << "; monitored interdomain links: " << total_links
      << " (" << peering_links << " at exchanges)\n";
  out << "- Probes sent: " << probes << "; record-route measurements: " << rr << "\n";
  out << "- Links flagged at the 10 ms threshold: " << flagged << "; congested (recurring "
      << "diurnal pattern over a clean near side): " << congested;
  if (peering_links > 0) {
    out << strformat(" -- %.1f%% of monitored peering links", 100.0 * congested / peering_links);
  }
  out << "\n\n";

  out << "## Per vantage point\n\n";
  out << "| VP | exchange | links (peering) | flagged @10ms | congested | record routes |\n";
  out << "|---|---|---|---|---|---|\n";
  for (const auto& [spec, result] : vps) {
    std::size_t vp_peering = 0, vp_congested = 0;
    for (std::size_t i = 0; i < result->series.size(); ++i) {
      if (result->series[i].at_ixp) ++vp_peering;
      if (result->reports[i].congested()) ++vp_congested;
    }
    out << "| " << spec.vp_name << " | " << spec.ixp.name << " (" << spec.ixp.sub_region
        << ") | " << result->series.size() << " (" << vp_peering << ") | "
        << result->potentially_congested(10.0) << " | " << vp_congested << " | "
        << result->record_routes << " |\n";
  }
  out << "\n## Findings\n\n";
  for (const auto& [spec, result] : vps) {
    for (std::size_t i = 0; i < result->reports.size(); ++i) {
      const auto& rep = result->reports[i];
      if (!rep.congested()) continue;
      const auto& link = result->series[i];
      out << "- **" << spec.vp_name << " / " << link.key << "**: A_w "
          << strformat("%.1f ms", rep.waveform.a_w_ms) << ", dt_UD "
          << format_duration(rep.waveform.dt_ud) << ", "
          << persistence_name(rep.persistence);
      if (const CaseStudy* cs = matching_case(spec, link)) {
        out << " -- documented cause: " << cs->cause;
      }
      out << "\n";
    }
  }

  out << "\n## Implications (following the paper's 7)\n\n";
  out << "- Congestion touched only a small fraction of the monitored links; the substrate "
         "is not systematically congested, but the cases that do occur sit on links used to "
         "reach content (cache transit and cache-serving ports).\n";
  out << "- ISPs should monitor the provisioning of their peering links: the one demand-driven "
         "case was resolved by a port upgrade within two months, while the disputed transit "
         "case persisted until the link was withdrawn.\n";
  out << "- TSLP detects these events without operator cooperation, but attributing *causes* "
         "required the per-case context recorded in the casebook -- exactly the paper's "
         "conclusion about needing operator collaboration.\n";
  (void)opts;
}

}  // namespace ixp::analysis
