// Chaos scoring: classifier verdicts vs. engineered scenario ground truth.
//
// A neighbor is a positive when its spec scripts behaviour the classifier
// is *supposed* to flag inside the measured window -- diurnal congestion
// on a monitored link, or slow-ICMP (which TSLP cannot tell apart from
// congestion; the paper's KNET case study).  Route-change noise is
// "potentially congested, no diurnal" by design: a negative.  Factored out
// of the `afixp chaos` subcommand so the serving layer's chaos-under-load
// regression (tests/test_serve.cc) scores against the exact same oracle.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/campaign.h"
#include "analysis/scenario.h"

namespace ixp::analysis {

/// One neighbor's ground-truth-vs-classified outcome in a chaos run.
struct ChaosRow {
  std::size_t vp = 0;          ///< spec index
  Asn asn = 0;
  std::string name;
  bool truth = false;          ///< engineered to be classified congested
  bool classified = false;     ///< some monitored link to it came back congested
  /// "TP" / "FP" / "FN" / "TN".
  [[nodiscard]] const char* outcome() const;
};

struct ChaosVpScore {
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
};

/// Confusion counts for one scenario family ("paper6", "rixp", "reroute",
/// "facility", ...).  The link-congestion oracle contributes one row named
/// after the plan's family; the facility-aggregation oracle contributes a
/// "facility" row whose unit is a *facility*, not a link.
struct FamilyScore {
  std::string family;
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
};

struct ChaosScore {
  std::vector<ChaosRow> interesting;   ///< every non-TN outcome
  std::vector<ChaosRow> case_studies;  ///< VP1 GHANATEL + KNET (paper §6)
  std::vector<ChaosVpScore> per_vp;    ///< one entry per spec, spec order
  std::vector<FamilyScore> families;   ///< per-scenario-family breakdown
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] bool case_studies_ok() const;
  /// The oracle bar: no false positives, no false negatives, and both
  /// GIXA case studies match their ground truth.
  [[nodiscard]] bool perfect() const {
    return fp == 0 && fn == 0 && case_studies_ok();
  }
};

/// Scores one fleet's classification results against the specs' engineered
/// ground truth.  `duration_override` must match the CampaignOptions value
/// the campaigns ran with (0 = each spec's full calendar): truth windows
/// are clipped to the measured window, so a shortened campaign is scored
/// only against faults it could have seen.
ChaosScore score_chaos(const std::vector<VpSpec>& specs,
                       const std::vector<VpCampaignResult>& results,
                       Duration duration_override = Duration(0),
                       std::string_view family = "paper6");

/// Scores the facility-aggregation detector (analysis/facility.h) against
/// the plan's facility-outage ground truth, per *facility*: a facility is
/// a true positive when some FacilityFault targeted it inside the measured
/// window and the detector flags it from the per-link far-series gaps.
/// The realized windows are reconstructed by re-expanding `plan` with the
/// same per-VP seed derivation the fleet uses (`fault_seed` must match
/// FleetOptions::fault_seed, `duration_override` the campaign's), so the
/// oracle needs no side channel out of the workers.  Requires raw series
/// (far_rtt.ms populated); columnar campaigns score zero detections.
FamilyScore score_facilities(const std::vector<VpSpec>& specs,
                             const std::vector<VpCampaignResult>& results,
                             const FaultPlan& plan,
                             std::uint64_t fault_seed,
                             Duration duration_override = Duration(0));

}  // namespace ixp::analysis
