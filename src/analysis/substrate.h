// Substrate generator: expands a declarative topo::TopoSpec into one
// VpSpec per generated exchange, so the continent-scale substrate runs
// through exactly the same scenario builder, campaign loop, and fleet as
// the paper's six hand-written vantage points.
//
// Everything is a pure function of the spec (all draws come from an
// ixp::Rng forked off spec.seed per IXP), so the same spec file yields a
// byte-identical substrate on every machine -- pinned by
// tests/test_substrate.cc.  Generated entities live in dedicated number
// spaces (ASNs >= 3,000,000; 197/8 peering LANs; 198/8 management) that
// cannot collide with the paper scenarios or the allocator pools
// (41/8, 102/8, 154.64/10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scenario.h"
#include "topo/gen.h"

namespace ixp::analysis {

/// What a spec expands to, before simulating anything: the numbers the
/// `afixp gen` summary and docs/SCALING.md sizing tables are built from.
struct SubstrateSummary {
  std::string spec_name;
  int ixps = 0;
  int members = 0;           ///< neighbor specs across all IXPs
  int silent_members = 0;    ///< invisible to bdrmap/TSLP (not monitored)
  int congested_members = 0;
  int noisy_members = 0;
  std::uint64_t lan_links = 0;  ///< IXP LAN ports across visible members
  std::uint64_t ptp_links = 0;  ///< private interconnects across visible members
  /// LAN ports + ptps of visible members: what bdrmap discovers and TSLP
  /// monitors (each link has a near and a far sample column).
  [[nodiscard]] std::uint64_t monitored_links() const { return lan_links + ptp_links; }
  /// Samples a full campaign accumulates at `interval` cadence.
  [[nodiscard]] std::uint64_t samples(Duration campaign, Duration interval) const {
    const auto rounds = static_cast<std::uint64_t>(campaign.count() / interval.count());
    return monitored_links() * 2 * rounds;
  }
};

/// Expands the spec deterministically.  Throws std::runtime_error when
/// validate_topo_spec(spec) rejects it.
std::vector<VpSpec> generate_substrate(const topo::TopoSpec& spec);

/// Counts what a generated substrate contains (spec order).
SubstrateSummary summarize_substrate(const topo::TopoSpec& spec,
                                     const std::vector<VpSpec>& vps);

}  // namespace ixp::analysis
