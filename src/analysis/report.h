// Campaign report writer: renders a VpCampaignResult as a Markdown
// document an operator could read -- the §6 narrative, generated.
//
// Sections: campaign summary, Table-2-style snapshot evolution, the
// Table-1-style threshold sensitivity row, per-link congestion findings
// with waveform characteristics, and (when the link matches a casebook
// entry) the documented cause.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/campaign.h"
#include "analysis/scenario.h"

namespace ixp::analysis {

struct ReportOptions {
  /// Include every monitored link in an appendix table (can be long).
  bool include_link_appendix = false;
  /// Attach ASCII waveform plots for congested links.
  bool include_waveforms = true;
};

/// Writes the Markdown report to `out`.
void write_report(std::ostream& out, const VpSpec& spec, const VpCampaignResult& result,
                  const ReportOptions& opts = {});

/// Convenience: the report as a string.
std::string report_to_string(const VpSpec& spec, const VpCampaignResult& result,
                             const ReportOptions& opts = {});

/// The multi-VP study report: the §6.1 aggregate (how many links were
/// congested across the whole substrate), one summary row per VP, every
/// finding, and the §7 implications the numbers support.
void write_combined_report(std::ostream& out,
                           const std::vector<std::pair<VpSpec, const VpCampaignResult*>>& vps,
                           const ReportOptions& opts = {});

}  // namespace ixp::analysis
