// The six African-IXP vantage-point scenarios, calibrated to the paper.
//
// Each VpSpec encodes:
//   * the IXP's identity (name, country, sub-region, launch year, ASN) as
//     reported in §3;
//   * the membership timeline that produces Table 2's per-snapshot counts
//     of discovered links, neighbors, and peers (member joins/leaves, the
//     GIXA content-network commercialisation, KIXP's growth);
//   * per-link behaviour that produces Table 1's threshold-sensitivity
//     histogram: for every VP, the number of links whose level shifts fall
//     into the magnitude bins [5,10), [10,15), [15,20), [20,..) ms matches
//     the paper's flagged-link counts at thresholds 5/10/15/20 ms;
//   * the three case studies with their documented parameters:
//       GIXA-GHANATEL  A_w 27.9 ms, dt_UD ~20 h, weekday>weekend, phases,
//                      transit shut-off 14/06/2016, port reuse, loss storm;
//       GIXA-KNET      A_w 17.5 ms, dt_UD 2 h 14 m, slow-ICMP cause, from
//                      06/08/2016, midnight dip, ~0.1 % loss;
//       QCELL-NETPAGE  A_w 10.7 ms, dt_UD 6 h 22 m, weekday 35 ms vs
//                      weekend 15 ms, upgrade 10 Mb/s -> 1 Gb/s 28/04/2016.
//
// Scale substitutions (documented in DESIGN.md): VP5's thousands of
// parallel backbone links are collapsed to one link per neighbor, and its
// neighbor count is scaled down by kVp5Scale so year-long campaigns stay
// tractable; the relative shape (VP5 >> other VPs, zero congestion) is
// preserved.
#pragma once

#include "analysis/scenario.h"

namespace ixp::analysis {

/// Downscaling factor for VP5 (KIXP / Liquid Telecom) neighbor counts.
inline constexpr int kVp5Scale = 8;

VpSpec make_vp1_gixa();
VpSpec make_vp2_tix();
VpSpec make_vp3_jinx();
VpSpec make_vp4_sixp();
VpSpec make_vp5_kixp(int scale = kVp5Scale);
VpSpec make_vp6_rinex();

/// All six, in VP order.
std::vector<VpSpec> make_all_vps();

/// Case-study scenarios for the figure benches: minimal worlds containing
/// just the link under study, with the paper's exact parameters.
VpSpec make_fig_ghanatel();  ///< Figures 1 and 2
VpSpec make_fig_knet();      ///< Figure 3
VpSpec make_fig_netpage();   ///< Figure 4

}  // namespace ixp::analysis
