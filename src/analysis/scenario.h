// Campaign scenarios: declarative descriptions of one vantage point's
// world, and the builder that turns them into a live simulated topology.
//
// A VpSpec lists the IXP, the hosting AS, every neighbor with its port
// provisioning and behaviour (clean / route-change level shifts / diurnal
// congestion), plus timeline events quoted from the paper (member joins
// and departures, transit shut-off, port upgrades).  The builder creates
// the topology, computes routes, installs FIBs, and returns a runtime
// handle that the campaign driver (campaign.h) probes and analyses.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "routing/bgp.h"
#include "topo/calendar.h"
#include "topo/topology.h"

namespace ixp {
struct FaultPlan;
namespace sim {
class FaultInjector;
}  // namespace sim
}  // namespace ixp

namespace ixp::analysis {

using topo::Asn;

/// Never-expires sentinel for membership windows.
inline constexpr TimePoint kForever = TimePoint(kDay * 100000);

/// One diurnal-congestion phase on a link direction.
struct CongestionSpec {
  double a_w_ms = 15.0;            ///< buffer depth = level-shift ceiling
  Duration dt_ud = kHour * 4;      ///< target width of a congestion event
  double peak_hour = 14.0;         ///< local time of the demand peak
  double weekday_scale = 1.0;
  double weekend_scale = 1.0;
  double overload = 1.10;          ///< peak offered load / capacity
  double midnight_dip = 0.0;       ///< KNET-style dip around 00:00
  bool reverse_direction = false;  ///< also congest member->fabric
  double reverse_peak_hour = 20.0; ///< peak hour of the reverse direction
  Duration reverse_dt_ud{};        ///< reverse event width (0 = same as dt_ud)
  TimePoint begin{};               ///< phase window
  TimePoint end = kForever;
};

/// Slow-ICMP behaviour (control-plane load) of the neighbor's router.
struct SlowIcmpSpec {
  double extra_ms = 17.5;     ///< added ICMP generation delay at full load
  double peak_hour = 15.0;
  double half_width_hours = 8.0;
  double midnight_dip = 0.9;
  TimePoint begin{};
  TimePoint end = kForever;
};

/// Non-diurnal level shifts on one link: the far side's propagation delay
/// steps up and back at scheduled times (route changes inside the neighbor
/// network -- the dominant source of the paper's "potentially congested
/// without a diurnal pattern" links).
struct NoiseShiftSpec {
  double magnitude_ms = 25.0;
  int events = 4;               ///< shift episodes over the campaign
  Duration event_duration = kDay * 2;
  std::uint64_t seed = 1;       ///< event placement
  bool on_ptp = false;          ///< target a ptp link instead of a LAN port
  int port_index = 0;           ///< which LAN port / ptp link
};

/// Availability window of one link (campaign-absolute times).
struct LinkWindow {
  TimePoint up{};               ///< link comes up (0 = from the start)
  TimePoint down = kForever;    ///< link goes down
};

struct NeighborSpec {
  std::string name;
  Asn asn = 0;
  std::string country = "ZZ";
  topo::AsType type = topo::AsType::kAccessIsp;
  /// Relationship of this neighbor toward the VP AS.
  enum class Rel { kPeer, kCustomerOfVp, kProviderOfVp } rel = Rel::kPeer;

  /// Routers never answer ICMP (invisible to bdrmap and TSLP, but still
  /// forwarding) -- models the unresponsive minority that keeps the
  /// paper's neighbor recall at 96.2 %.
  bool silent = false;
  int lan_routers = 1;   ///< routers/ports on the IXP LAN; 0 = not at IXP
  int ptp_links = 0;     ///< private interconnects with the VP AS
  double port_capacity_bps = 1e9;
  double port_base_loss = 0.0;
  /// One-way propagation delay of this neighbor's links: the RTT-geography
  /// knob the substrate generator (analysis/substrate.h) uses to place
  /// members at metro / regional / continental distance from the exchange.
  /// Defaults match the hand-written paper scenarios.
  double lan_prop_ms = 0.15;  ///< IXP LAN ports
  double ptp_prop_ms = 0.4;   ///< private interconnects

  TimePoint join{};      ///< default up time for all links
  TimePoint leave = kForever;  ///< default down time for all links
  /// Per-link window overrides; entry i applies to LAN port i / ptp i.
  /// When longer than lan_routers/ptp_links, the counts grow to match.
  std::vector<LinkWindow> lan_windows;
  std::vector<LinkWindow> ptp_windows;
  /// Scheduled port re-provisioning of the congested link: (when, new
  /// capacity).  Buffer re-sizes to ~250 ms at the new rate.
  std::vector<std::pair<TimePoint, double>> capacity_upgrades;

  std::vector<CongestionSpec> congestion;      ///< phases on LAN port 0
  std::vector<CongestionSpec> congestion_ptp;  ///< phases on ptp link 0
  bool upgrade_ptp = false;  ///< capacity_upgrades target ptp 0, not LAN 0
  std::optional<SlowIcmpSpec> slow_icmp;
  std::vector<NoiseShiftSpec> noise_list;  ///< per-link route-change noise

  /// Colocation facility this member is homed at ("" = unassigned).  Set
  /// by the substrate generator when TopoSpec::facilities > 0; facility
  /// faults and the facility-aggregation detector group links by it.
  std::string facility;
};

struct VpSpec {
  std::string vp_name;   ///< "VP1" .. "VP6"
  topo::IxpInfo ixp;
  Asn vp_asn = 0;
  std::string vp_as_name;
  std::string vp_org;
  std::string country = "ZZ";
  /// True when the VP is plugged into the IXP's own content network
  /// (VP1-VP3); false when hosted inside a member AS (VP4-VP6).
  bool vp_is_ixp_network = true;
  /// The VP network filters the IPv4 record-route option (QCELL and RDB
  /// did: their Table 2 record-route totals are zero).
  bool vp_filters_rr = false;
  /// Whether the VP AS buys transit from the synthetic regional provider
  /// over an off-IXP ptp.  VPs whose transit arrives through the exchange
  /// itself (GIXA's GHANATEL arrangement) set this to false and declare a
  /// provider-neighbor instead.
  bool vp_has_regional_transit = true;
  std::vector<NeighborSpec> neighbors;
  std::uint64_t seed = 42;
  /// Remote-peering (RIXP) tail: when > 0, the VP reaches the fabric over
  /// a long leased circuit instead of an in-building port — the VP port
  /// gets this one-way propagation delay, and `vp_tail_jitter` replaces
  /// its light cross-load with a burstier jittered profile so the *near*
  /// segment of every TSLP series is itself noisy.
  double vp_tail_ms = 0.0;
  double vp_tail_jitter = 0.0;
  /// Start/end of the paper's measurement window for this VP.
  TimePoint campaign_start{};
  TimePoint campaign_end = topo::kCampaignEnd;
  /// Table 2 snapshot dates for this VP.
  std::vector<TimePoint> snapshot_dates;
};

/// A scheduled mutation of the world.
struct TimelineEvent {
  TimePoint at;
  std::string what;              ///< for narration
  std::function<void()> apply;
  bool membership = false;       ///< changes who is connected (re-run bdrmap)
};

/// Simulator handles for one built neighbor, kept so post-build passes
/// (fault attachment, diagnostics) can address its routers and links
/// without re-deriving them from addresses.
struct NeighborHandles {
  Asn asn = 0;
  std::string name;
  /// Carries scripted congestion / slow-ICMP / noise / upgrades — its
  /// behaviour is part of the ground truth, so faults must not target it.
  bool engineered = false;
  bool silent = false;
  /// Present for the whole campaign with no membership windows; only such
  /// neighbors are eligible fault targets (flapping a windowed member's
  /// link would fight the membership timeline).
  bool always_on = false;
  std::string facility;  ///< colocation facility ("" = unassigned)
  std::vector<sim::NodeId> routers;
  std::vector<int> lan_links;  ///< IXP-port link ids, port order
  std::vector<int> ptp_links;
};

/// Live world for one VP: topology + routing + bookkeeping.
class ScenarioRuntime {
 public:
  topo::Topology topology;
  std::unique_ptr<routing::Bgp> bgp;
  sim::NodeId vp_host = sim::kInvalidNode;
  sim::NodeId vp_router = sim::kInvalidNode;
  Asn vp_asn = 0;
  std::string ixp_name;
  std::vector<TimelineEvent> timeline;  ///< sorted by time
  std::vector<Asn> collectors;          ///< RIB-dump vantage ASes
  std::vector<NeighborHandles> neighbor_handles;  ///< spec order

  /// Merges extra events into the timeline (keeping it sorted).  Must be
  /// called before the first apply_timeline_until(); the cursor would skip
  /// events inserted behind it.
  void add_events(std::vector<TimelineEvent> events);

  /// Applies every event with at <= t (in order); returns how many fired.
  /// Reroutes requested by the fired events are coalesced into a single
  /// BGP+FIB recomputation at the end of the batch (hundreds of member
  /// joins applied together would otherwise recompute hundreds of times).
  std::size_t apply_timeline_until(TimePoint t);

  /// Recomputes routes + FIBs (after membership changes).  Inside an
  /// apply_timeline_until() batch the recomputation is deferred.
  void reroute();

 private:
  std::size_t timeline_cursor_ = 0;
  bool defer_reroutes_ = false;
  bool reroute_dirty_ = false;
};

/// Builds the world at campaign start; later joins/leaves/upgrades are in
/// the returned runtime's timeline.
std::unique_ptr<ScenarioRuntime> build_scenario(const VpSpec& spec);

/// Expands `plan` against [spec.campaign_start, campaign_end) and installs
/// the topology-touching faults (link flaps, ICMP tightening, silent drops,
/// reroutes) as membership=false timeline events on `rt`.  Destructive
/// faults target only clean always-on neighbors, so the engineered ground
/// truth stays interpretable.  The returned injector also gates VP outages
/// and probe-loss bursts; hand it to CampaignOptions::faults and keep the
/// shared_ptr alive for the duration of the run (timeline events hold a raw
/// pointer into it).  Call before the first apply_timeline_until().
std::shared_ptr<sim::FaultInjector> attach_fault_plan(ScenarioRuntime& rt,
                                                      const VpSpec& spec,
                                                      const FaultPlan& plan,
                                                      std::uint64_t seed,
                                                      TimePoint campaign_end);

/// Demand profile engineered so that a link of `capacity_bps` develops a
/// standing queue of up to `a_w_ms` for about `dt_ud` around `peak_hour`
/// (the buffer is sized to a_w_ms elsewhere, in build_scenario).
sim::TrafficProfilePtr make_congestion_profile(double capacity_bps, const CongestionSpec& c,
                                               bool reverse, std::uint64_t seed);

}  // namespace ixp::analysis
