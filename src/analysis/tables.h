// Table generators: render the paper's Table 1 and Table 2 from campaign
// results, next to the published values for comparison.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/campaign.h"

namespace ixp::analysis {

/// One VP's row of Table 1 (threshold sensitivity).
struct Table1Row {
  std::string vp;
  // flagged[t] / diurnal[t] at thresholds {5, 10, 15, 20} ms.
  std::size_t flagged[4] = {0, 0, 0, 0};
  std::size_t diurnal[4] = {0, 0, 0, 0};
};

inline constexpr double kTable1Thresholds[4] = {5.0, 10.0, 15.0, 20.0};

/// Published Table 1 values (for the side-by-side comparison printout).
const std::vector<Table1Row>& paper_table1();

Table1Row make_table1_row(const VpCampaignResult& result);

/// Renders measured rows (plus an "All VPs" total) next to the paper's.
void print_table1(std::ostream& out, const std::vector<Table1Row>& measured);

/// One VP snapshot row of Table 2.
struct Table2Row {
  std::string vp;
  std::string ixp;
  std::string date;  ///< dd/mm/yyyy
  std::uint64_t record_routes = 0;   ///< campaign total (same for all rows of a VP)
  std::uint64_t traceroutes = 0;     ///< probes sent over the campaign
  std::size_t discovered = 0;
  std::size_t peering = 0;
  std::size_t congested = 0;
  std::size_t neighbors = 0;
  std::size_t peers = 0;
  double neighbor_recall = 0.0;  ///< bdrmap accuracy vs ground truth
};

/// Published Table 2 values.
const std::vector<Table2Row>& paper_table2();

std::vector<Table2Row> make_table2_rows(const VpCampaignResult& result, const VpSpec& spec);

void print_table2(std::ostream& out, const std::vector<Table2Row>& measured);

/// The §6.1 headline: fraction of discovered IP peering links that
/// experienced congestion (paper: 2.2 %), plus per-VP fractions.
struct HeadlineStats {
  std::size_t total_peering_links = 0;  ///< union over the campaign
  std::size_t congested_links = 0;
  double fraction() const {
    return total_peering_links ? 100.0 * congested_links / total_peering_links : 0.0;
  }
};

HeadlineStats make_headline(const std::vector<VpCampaignResult>& results);

std::string format_date(TimePoint t);

}  // namespace ixp::analysis
