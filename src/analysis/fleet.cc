#include "analysis/fleet.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <ostream>

#include "sim/faults.h"
#include "sim/lp.h"
#include "util/fault_plan.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ixp::analysis {
namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

long peak_rss_kb_now() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

std::string human_count(double v) {
  if (v >= 1e9) return strformat("%.1fG", v / 1e9);
  if (v >= 1e6) return strformat("%.1fM", v / 1e6);
  if (v >= 1e3) return strformat("%.1fk", v / 1e3);
  return strformat("%.0f", v);
}

}  // namespace

double estimate_campaign_cost(const VpSpec& spec, const CampaignOptions& opt) {
  const TimePoint start = spec.campaign_start;
  const TimePoint end = opt.duration_override.count() > 0 ? start + opt.duration_override
                                                          : spec.campaign_end;
  const auto interval =
      static_cast<double>(std::max<std::int64_t>(1, opt.round_interval.count()));
  auto overlap_rounds = [&](const LinkWindow& w) {
    const TimePoint lo = std::max(w.up, start);
    const TimePoint hi = std::min(w.down, end);
    if (hi <= lo) return 0.0;
    return static_cast<double>((hi - lo).count()) / interval;
  };
  // Fixed charges: scenario build + route computation + initial bdrmap,
  // then per-neighbor router/announcement/bdrmap work.  The units are
  // "link-rounds": one monitored link probed for one round costs 1.
  double cost = 1000.0;
  for (const NeighborSpec& n : spec.neighbors) {
    cost += 200.0;
    const int lan_count = std::max<int>(n.lan_routers, static_cast<int>(n.lan_windows.size()));
    const int ptp_count = std::max<int>(n.ptp_links, static_cast<int>(n.ptp_windows.size()));
    // Silent neighbors are never probed, but their links still carry
    // simulated cross-traffic, so they are not free either.
    const double weight = n.silent ? 0.25 : 1.0;
    const LinkWindow whole{n.join, n.leave};
    for (int i = 0; i < lan_count; ++i) {
      const LinkWindow& w =
          static_cast<std::size_t>(i) < n.lan_windows.size() ? n.lan_windows[i] : whole;
      cost += weight * overlap_rounds(w);
    }
    for (int j = 0; j < ptp_count; ++j) {
      const LinkWindow& w =
          static_cast<std::size_t>(j) < n.ptp_windows.size() ? n.ptp_windows[j] : whole;
      cost += weight * overlap_rounds(w);
    }
  }
  return cost;
}

ShardPlan plan_shards(const std::vector<VpSpec>& specs, int jobs, const CampaignOptions& opt) {
  ShardPlan plan;
  const std::size_t n = specs.size();
  const auto shard_count =
      static_cast<std::size_t>(std::clamp<std::int64_t>(jobs, 1, std::max<std::size_t>(1, n)));
  plan.cost.resize(n);
  plan.shard_of.assign(n, 0);
  plan.shards.resize(shard_count);
  for (std::size_t i = 0; i < n; ++i) plan.cost[i] = estimate_campaign_cost(specs[i], opt);

  // Greedy LPT: heaviest campaign onto the least-loaded shard.  All
  // tie-breaks are by index, so the plan is a pure function of its inputs.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (plan.cost[a] != plan.cost[b]) return plan.cost[a] > plan.cost[b];
    return a < b;
  });
  std::vector<double> load(shard_count, 0.0);
  for (const std::size_t idx : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    plan.shards[best].push_back(idx);
    plan.shard_of[idx] = static_cast<int>(best);
    load[best] += plan.cost[idx];
  }
  return plan;
}

std::string ShardPlan::to_string(const std::vector<VpSpec>& specs) const {
  std::string out;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    double total = 0.0;
    std::string items;
    for (const std::size_t i : shards[s]) {
      total += cost[i];
      items += strformat(" %s(%s)", i < specs.size() ? specs[i].vp_name.c_str() : "?",
                         human_count(cost[i]).c_str());
    }
    out += strformat("shard %zu: %s link-rounds |%s\n", s, human_count(total).c_str(),
                     items.c_str());
  }
  return out;
}

FleetResult run_fleet(const std::vector<VpSpec>& specs, const FleetOptions& opt) {
  FleetResult out;
  out.results.resize(specs.size());
  out.metrics.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.metrics[i].vp_name = specs[i].vp_name;
    out.metrics[i].vp_index = i;
  }
  // Fleet-level and intra-sim parallelism share one thread budget: a fleet
  // asked for --jobs 16 with --sim-threads 4 runs 4 campaign workers, each
  // entitled to 4 LP workers.  Integer division, floored at 1, so an
  // over-subscribed sim-threads value degrades to a serial fleet rather
  // than oversubscribing the host.
  out.jobs_used = std::max(1, ThreadPool::resolve_jobs(opt.jobs, specs.size()) /
                                  sim::resolve_sim_threads(opt.campaign.sim_threads));

  const auto fleet_t0 = WallClock::now();
  std::mutex progress_mu;
  auto emit = [&](const CampaignMetrics& m) {
    if (!opt.on_progress) return;
    std::lock_guard<std::mutex> lk(progress_mu);
    opt.on_progress(m);
  };

  // One registry shard per campaign: the owning worker is its only writer,
  // and the merge below runs after the pool drains, in spec order, so the
  // merged registry never depends on worker scheduling.
  std::vector<obs::Registry> shards(specs.size());

  auto run_one = [&](std::size_t i) {
    CampaignMetrics& m = out.metrics[i];  // written only by this worker
    const auto t0 = WallClock::now();
    CampaignOptions copt = opt.campaign;
    // The shard replaces any caller-supplied registry: a single registry
    // shared across workers would race, and the fleet merge already
    // reassembles the whole picture in FleetResult::registry.
    copt.metrics = opt.collect_metrics ? &shards[i] : nullptr;
    copt.on_progress = [&](const CampaignProgress& p) {
      if (copt.metrics != nullptr) m.counters = *copt.metrics;  // snapshot
      m.wall_seconds = seconds_since(t0);
      if (!p.finished) emit(m);  // the finished event fires below, with RSS
    };
    auto rt = build_scenario(specs[i]);
    std::shared_ptr<sim::FaultInjector> faults;
    if (opt.fault_plan != nullptr && !opt.fault_plan->empty()) {
      const TimePoint fstart = specs[i].campaign_start;
      const TimePoint fend = copt.duration_override.count() > 0
                                 ? fstart + copt.duration_override
                                 : specs[i].campaign_end;
      // Per-VP seed derived from the spec index, never from worker
      // identity, so the expanded plan is byte-identical for any --jobs.
      faults = attach_fault_plan(*rt, specs[i], *opt.fault_plan,
                                 opt.fault_seed + (i + 1) * 0x9e3779b97f4a7c15ULL, fend);
      copt.faults = faults.get();
    }
    auto result = run_campaign(*rt, specs[i], copt);
    if (copt.metrics != nullptr) m.counters = *copt.metrics;  // final snapshot
    m.wall_seconds = seconds_since(t0);
    m.probes_per_sec =
        m.wall_seconds > 0 ? static_cast<double>(m.probes_sent()) / m.wall_seconds : 0;
    m.peak_rss_kb = peak_rss_kb_now();
    m.finished = true;
    out.results[i] = std::move(result);
    emit(m);
  };

  // Pack campaigns onto shards by estimated cost (heaviest first), then
  // run one shard per worker.  Results are keyed by spec index and the
  // registry merge below is in spec order, so the packing affects only
  // wall clock, never output bytes.
  out.plan = plan_shards(specs, out.jobs_used, opt.campaign);
  std::vector<std::exception_ptr> errors(specs.size());
  ThreadPool pool(out.jobs_used);
  pool.parallel_for(out.plan.shards.size(), [&](std::size_t s) {
    for (const std::size_t i : out.plan.shards[s]) {
      try {
        run_one(i);
      } catch (...) {
        // A failed campaign must not abort its shard siblings; the first
        // (lowest spec index) exception is rethrown after the drain.
        errors[i] = std::current_exception();
      }
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Merge in spec order: labelled per-VP copies first, then the unlabelled
  // fleet-wide sums.  Deterministic for any job count by construction.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.registry.merge_from(shards[i], specs[i].vp_name);
    out.registry.merge_from(shards[i]);
  }

  out.wall_seconds = seconds_since(fleet_t0);
  return out;
}

FleetStatusPrinter::FleetStatusPrinter(std::ostream& out, const std::vector<VpSpec>& specs)
    : out_(out), cells_(specs.size()) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cells_[i] = strformat("[%s ...]", specs[i].vp_name.c_str());
  }
}

FleetStatusPrinter::~FleetStatusPrinter() { finish(); }

void FleetStatusPrinter::operator()(const CampaignMetrics& m) {
  if (m.vp_index >= cells_.size()) return;
  cells_[m.vp_index] =
      m.finished
          ? strformat("[%s ok %.1fs]", m.vp_name.c_str(), m.wall_seconds)
          : strformat("[%s %llur %sp]", m.vp_name.c_str(),
                      static_cast<unsigned long long>(m.rounds_completed()),
                      human_count(static_cast<double>(m.probes_sent())).c_str());
  render();
}

void FleetStatusPrinter::render() {
  std::string line;
  for (const auto& c : cells_) {
    if (!line.empty()) line += ' ';
    line += c;
  }
  const std::size_t width = line.size();
  if (width < last_width_) line.append(last_width_ - width, ' ');
  last_width_ = width;
  out_ << '\r' << line << std::flush;
}

void FleetStatusPrinter::finish() {
  if (finished_) return;
  finished_ = true;
  if (last_width_ > 0) out_ << '\n' << std::flush;
}

void print_fleet_metrics(std::ostream& out, const FleetResult& fleet) {
  out << strformat("%-5s %9s %10s %10s %7s %6s %7s %7s %8s %8s %9s\n", "VP", "rounds",
                   "probes", "probes/s", "bdrmap", "links", "faults", "suppr", "relearns",
                   "wall", "peak RSS");
  for (const auto& m : fleet.metrics) {
    out << strformat("%-5s %9llu %10s %10s %7llu %6zu %7llu %7s %8llu %7.1fs %7ldMB\n",
                     m.vp_name.c_str(),
                     static_cast<unsigned long long>(m.rounds_completed()),
                     human_count(static_cast<double>(m.probes_sent())).c_str(),
                     human_count(m.probes_per_sec).c_str(),
                     static_cast<unsigned long long>(m.bdrmap_runs()), m.monitored_links(),
                     static_cast<unsigned long long>(m.fault_events()),
                     human_count(static_cast<double>(m.probes_suppressed())).c_str(),
                     static_cast<unsigned long long>(m.stale_relearns() + m.loss_relearns()),
                     m.wall_seconds, m.peak_rss_kb / 1024);
  }
  out << strformat("fleet: %d job%s, %.1fs wall\n", fleet.jobs_used,
                   fleet.jobs_used == 1 ? "" : "s", fleet.wall_seconds);
}

}  // namespace ixp::analysis
