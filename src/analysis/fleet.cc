#include "analysis/fleet.h"

#include <sys/resource.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

#include "sim/faults.h"
#include "util/fault_plan.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ixp::analysis {
namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

long peak_rss_kb_now() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

std::string human_count(double v) {
  if (v >= 1e9) return strformat("%.1fG", v / 1e9);
  if (v >= 1e6) return strformat("%.1fM", v / 1e6);
  if (v >= 1e3) return strformat("%.1fk", v / 1e3);
  return strformat("%.0f", v);
}

}  // namespace

FleetResult run_fleet(const std::vector<VpSpec>& specs, const FleetOptions& opt) {
  FleetResult out;
  out.results.resize(specs.size());
  out.metrics.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.metrics[i].vp_name = specs[i].vp_name;
    out.metrics[i].vp_index = i;
  }
  out.jobs_used = ThreadPool::resolve_jobs(opt.jobs, specs.size());

  const auto fleet_t0 = WallClock::now();
  std::mutex progress_mu;
  auto emit = [&](const CampaignMetrics& m) {
    if (!opt.on_progress) return;
    std::lock_guard<std::mutex> lk(progress_mu);
    opt.on_progress(m);
  };

  // One registry shard per campaign: the owning worker is its only writer,
  // and the merge below runs after the pool drains, in spec order, so the
  // merged registry never depends on worker scheduling.
  std::vector<obs::Registry> shards(specs.size());

  ThreadPool pool(out.jobs_used);
  pool.parallel_for(specs.size(), [&](std::size_t i) {
    CampaignMetrics& m = out.metrics[i];  // written only by this worker
    const auto t0 = WallClock::now();
    CampaignOptions copt = opt.campaign;
    // The shard replaces any caller-supplied registry: a single registry
    // shared across workers would race, and the fleet merge already
    // reassembles the whole picture in FleetResult::registry.
    copt.metrics = opt.collect_metrics ? &shards[i] : nullptr;
    copt.on_progress = [&](const CampaignProgress& p) {
      if (copt.metrics != nullptr) m.counters = *copt.metrics;  // snapshot
      m.wall_seconds = seconds_since(t0);
      if (!p.finished) emit(m);  // the finished event fires below, with RSS
    };
    auto rt = build_scenario(specs[i]);
    std::shared_ptr<sim::FaultInjector> faults;
    if (opt.fault_plan != nullptr && !opt.fault_plan->empty()) {
      const TimePoint fstart = specs[i].campaign_start;
      const TimePoint fend = copt.duration_override.count() > 0
                                 ? fstart + copt.duration_override
                                 : specs[i].campaign_end;
      // Per-VP seed derived from the spec index, never from worker
      // identity, so the expanded plan is byte-identical for any --jobs.
      faults = attach_fault_plan(*rt, specs[i], *opt.fault_plan,
                                 opt.fault_seed + (i + 1) * 0x9e3779b97f4a7c15ULL, fend);
      copt.faults = faults.get();
    }
    auto result = run_campaign(*rt, specs[i], copt);
    if (copt.metrics != nullptr) m.counters = *copt.metrics;  // final snapshot
    m.wall_seconds = seconds_since(t0);
    m.probes_per_sec =
        m.wall_seconds > 0 ? static_cast<double>(m.probes_sent()) / m.wall_seconds : 0;
    m.peak_rss_kb = peak_rss_kb_now();
    m.finished = true;
    out.results[i] = std::move(result);
    emit(m);
  });

  // Merge in spec order: labelled per-VP copies first, then the unlabelled
  // fleet-wide sums.  Deterministic for any job count by construction.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.registry.merge_from(shards[i], specs[i].vp_name);
    out.registry.merge_from(shards[i]);
  }

  out.wall_seconds = seconds_since(fleet_t0);
  return out;
}

FleetStatusPrinter::FleetStatusPrinter(std::ostream& out, const std::vector<VpSpec>& specs)
    : out_(out), cells_(specs.size()) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cells_[i] = strformat("[%s ...]", specs[i].vp_name.c_str());
  }
}

FleetStatusPrinter::~FleetStatusPrinter() { finish(); }

void FleetStatusPrinter::operator()(const CampaignMetrics& m) {
  if (m.vp_index >= cells_.size()) return;
  cells_[m.vp_index] =
      m.finished
          ? strformat("[%s ok %.1fs]", m.vp_name.c_str(), m.wall_seconds)
          : strformat("[%s %llur %sp]", m.vp_name.c_str(),
                      static_cast<unsigned long long>(m.rounds_completed()),
                      human_count(static_cast<double>(m.probes_sent())).c_str());
  render();
}

void FleetStatusPrinter::render() {
  std::string line;
  for (const auto& c : cells_) {
    if (!line.empty()) line += ' ';
    line += c;
  }
  const std::size_t width = line.size();
  if (width < last_width_) line.append(last_width_ - width, ' ');
  last_width_ = width;
  out_ << '\r' << line << std::flush;
}

void FleetStatusPrinter::finish() {
  if (finished_) return;
  finished_ = true;
  if (last_width_ > 0) out_ << '\n' << std::flush;
}

void print_fleet_metrics(std::ostream& out, const FleetResult& fleet) {
  out << strformat("%-5s %9s %10s %10s %7s %6s %7s %7s %8s %8s %9s\n", "VP", "rounds",
                   "probes", "probes/s", "bdrmap", "links", "faults", "suppr", "relearns",
                   "wall", "peak RSS");
  for (const auto& m : fleet.metrics) {
    out << strformat("%-5s %9llu %10s %10s %7llu %6zu %7llu %7s %8llu %7.1fs %7ldMB\n",
                     m.vp_name.c_str(),
                     static_cast<unsigned long long>(m.rounds_completed()),
                     human_count(static_cast<double>(m.probes_sent())).c_str(),
                     human_count(m.probes_per_sec).c_str(),
                     static_cast<unsigned long long>(m.bdrmap_runs()), m.monitored_links(),
                     static_cast<unsigned long long>(m.fault_events()),
                     human_count(static_cast<double>(m.probes_suppressed())).c_str(),
                     static_cast<unsigned long long>(m.stale_relearns() + m.loss_relearns()),
                     m.wall_seconds, m.peak_rss_kb / 1024);
  }
  out << strformat("fleet: %d job%s, %.1fs wall\n", fleet.jobs_used,
                   fleet.jobs_used == 1 ? "" : "s", fleet.wall_seconds);
}

}  // namespace ixp::analysis
