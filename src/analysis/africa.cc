#include "analysis/africa.h"

#include "util/rng.h"
#include "util/strings.h"

namespace ixp::analysis {
namespace {

using topo::date;

topo::IxpInfo gixa_info() {
  topo::IxpInfo i;
  i.name = "GIXA";
  i.long_name = "Ghana Internet eXchange Association";
  i.country = "GH";
  i.city = "Accra";
  i.sub_region = "West Africa";
  i.ixp_asn = 30997;
  i.launch_year = 2005;
  i.peering_prefix = *net::Ipv4Prefix::parse("196.49.0.0/24");
  i.management_prefix = *net::Ipv4Prefix::parse("196.49.1.0/24");
  return i;
}

topo::IxpInfo tix_info() {
  topo::IxpInfo i;
  i.name = "TIX";
  i.long_name = "Tanzania Internet eXchange";
  i.country = "TZ";
  i.city = "Dar es Salaam";
  i.sub_region = "East Africa";
  i.ixp_asn = 33791;
  i.launch_year = 2004;
  i.peering_prefix = *net::Ipv4Prefix::parse("196.32.0.0/24");
  i.management_prefix = *net::Ipv4Prefix::parse("196.32.1.0/24");
  return i;
}

topo::IxpInfo jinx_info() {
  topo::IxpInfo i;
  i.name = "JINX";
  i.long_name = "Johannesburg INternet eXchange";
  i.country = "ZA";
  i.city = "Johannesburg";
  i.sub_region = "Southern Africa";
  i.ixp_asn = 37474;
  i.launch_year = 1996;
  i.peering_prefix = *net::Ipv4Prefix::parse("196.60.0.0/24");
  i.management_prefix = *net::Ipv4Prefix::parse("196.60.1.0/24");
  return i;
}

topo::IxpInfo sixp_info() {
  topo::IxpInfo i;
  i.name = "SIXP";
  i.long_name = "Serekunda Internet eXchange Point";
  i.country = "GM";
  i.city = "Serekunda";
  i.sub_region = "West Africa";
  i.ixp_asn = 327719;
  i.launch_year = 2014;
  i.peering_prefix = *net::Ipv4Prefix::parse("196.46.0.0/24");
  i.management_prefix = *net::Ipv4Prefix::parse("196.46.1.0/24");
  return i;
}

topo::IxpInfo kixp_info() {
  topo::IxpInfo i;
  i.name = "KIXP";
  i.long_name = "Kenya Internet eXchange Point";
  i.country = "KE";
  i.city = "Nairobi";
  i.sub_region = "East Africa";
  i.ixp_asn = 4558;
  i.launch_year = 2002;
  i.peering_prefix = *net::Ipv4Prefix::parse("196.6.0.0/24");
  i.management_prefix = *net::Ipv4Prefix::parse("196.6.1.0/24");
  return i;
}

topo::IxpInfo rinex_info() {
  topo::IxpInfo i;
  i.name = "RINEX";
  i.long_name = "Rwanda Internet eXchange";
  i.country = "RW";
  i.city = "Kigali";
  i.sub_region = "East Africa";
  i.ixp_asn = 37224;
  i.launch_year = 2004;
  i.peering_prefix = *net::Ipv4Prefix::parse("196.12.0.0/24");
  i.management_prefix = *net::Ipv4Prefix::parse("196.12.1.0/24");
  return i;
}

NeighborSpec member(const std::string& name, Asn asn, const std::string& country, int lan_routers) {
  NeighborSpec n;
  n.name = name;
  n.asn = asn;
  n.country = country;
  n.lan_routers = lan_routers;
  return n;
}


}  // namespace

// ---------------------------------------------------------------------------
// VP1 -- GIXA (Ghana), AS30997, content network of the IXP.

VpSpec make_vp1_gixa() {
  VpSpec s;
  s.vp_name = "VP1";
  s.ixp = gixa_info();
  s.vp_asn = 30997;
  s.vp_as_name = "GIXA";
  s.vp_org = "ORG-GIXA";
  s.country = "GH";
  s.vp_is_ixp_network = true;
  s.vp_has_regional_transit = false;  // transit came through GHANATEL
  s.seed = 101;
  s.campaign_start = date(27, 2, 2016);
  s.campaign_end = date(27, 3, 2017);
  s.snapshot_dates = {date(17, 3, 2016), date(18, 6, 2016), date(15, 11, 2016)};

  // GHANATEL (Vodafone Ghana, AS29614): the VP's transit provider over a
  // 100 Mb/s ptp (congested, A_w 27.9 ms, ~20 h events, weekday > weekend,
  // both directions -- the "peak on top of the peak"); shut off 14/06/2016.
  // Its LAN port is then used for peering with a 10 ms amplitude until the
  // far end stops answering on 06/08/2016.
  {
    NeighborSpec g;
    g.name = "GHANATEL";
    g.asn = 29614;
    g.country = "GH";
    g.type = topo::AsType::kTransit;
    g.rel = NeighborSpec::Rel::kProviderOfVp;
    g.lan_routers = 1;
    g.ptp_links = 1;
    g.port_capacity_bps = 100e6;
    g.lan_windows = {{TimePoint{}, date(6, 8, 2016)}};
    g.ptp_windows = {{TimePoint{}, date(14, 6, 2016)}};
    // Per-direction buffer of 22 ms: with the forward direction saturated
    // ~18 h and the reverse ~6 h around the evening peak, the union of the
    // two (the far-RTT elevation) spans ~20 h with peaks of ~44 ms when
    // both queues stand and ~22 ms otherwise -- matching the paper's
    // A_w = 27.9 ms average, 20-50 ms peaks, and ~20 h dt_UD.
    CongestionSpec phase1;
    phase1.a_w_ms = 22.0;
    phase1.dt_ud = kHour * 18;
    phase1.peak_hour = 13.0;
    phase1.weekend_scale = 0.84;
    phase1.overload = 1.25;
    phase1.reverse_direction = true;
    phase1.reverse_peak_hour = 19.0;
    phase1.reverse_dt_ud = kHour * 6;
    phase1.begin = date(3, 3, 2016);
    phase1.end = date(14, 6, 2016);
    g.congestion_ptp = {phase1};
    CongestionSpec phase2;
    phase2.a_w_ms = 10.0;
    phase2.dt_ud = kHour * 10;
    phase2.peak_hour = 14.0;
    phase2.overload = 1.45;  // heavy loss during phase 2 (up to ~30 %)
    phase2.begin = date(15, 6, 2016);
    phase2.end = date(6, 8, 2016);
    g.congestion = {phase2};
    s.neighbors.push_back(std::move(g));
  }

  // KNET (AS33786): appears 29/06/2016; from 06/08/2016 its far-side RTTs
  // show a sustained diurnal waveform with a midnight dip, caused by the
  // router's control plane (slow ICMP), with ~0.1 % loss.  The six-VP
  // variant uses a 13 ms amplitude so the Table 1 row matches; the figure
  // bench (make_fig_knet) uses the case study's 17.5 ms.
  {
    NeighborSpec k;
    k.name = "KNET";
    k.asn = 33786;
    k.country = "GH";
    k.join = date(29, 6, 2016);
    k.port_base_loss = 0.001;
    SlowIcmpSpec icmp;
    icmp.extra_ms = 17.0;  // measured episode magnitude lands in [10, 15) ms
    icmp.peak_hour = 15.0;
    icmp.half_width_hours = 4.0;
    icmp.midnight_dip = 0.9;
    icmp.begin = date(6, 8, 2016);
    k.slow_icmp = icmp;
    s.neighbors.push_back(std::move(k));
  }

  // INTERCOSAT: the intercontinental ISP the IXP hired in October 2016 to
  // feed the Google caches (620 Mb/s).
  {
    NeighborSpec i;
    i.name = "INTERCOSAT";
    i.asn = 64949;
    i.country = "GB";
    i.type = topo::AsType::kTransit;
    i.rel = NeighborSpec::Rel::kProviderOfVp;
    i.port_capacity_bps = 620e6;
    i.join = date(5, 10, 2016);
    s.neighbors.push_back(std::move(i));
  }

  // Regular members.  Multiplicities reproduce Table 2's link counts:
  // stayers [3,2,2,2,1,1,1], June leavers [5,5,5,4,4] with ptps [3,3,2,1,0],
  // October leavers are the stayers with 3 and 1 ports.
  const int stay_mult[] = {3, 2, 2, 2, 1, 1, 1};
  for (int i = 0; i < 7; ++i) {
    auto m = member(strformat("GHMEM%02d", i), 65100 + static_cast<Asn>(i), "GH", stay_mult[i]);
    if (i == 0 || i == 6) m.leave = date(10, 10, 2016);  // October policy change
    // Two of the stayers carry route-change noise (Table 1's non-diurnal
    // flagged links): magnitudes 17 ms and 28 ms.
    if (i == 1) m.noise_list.push_back({17.0, 4, kDay * 2, 11, false, 0});
    if (i == 2) m.noise_list.push_back({28.0, 3, kDay * 2, 12, false, 0});
    s.neighbors.push_back(std::move(m));
  }
  // One member whose router never answers ICMP: present in the ground
  // truth, invisible to bdrmap (the paper's 96.2 % recall).
  {
    auto m = member("GHSILENT", 65120, "GH", 1);
    m.silent = true;
    s.neighbors.push_back(std::move(m));
  }
  const int leave_mult[] = {5, 5, 5, 4, 4};
  const int leave_ptps[] = {3, 3, 2, 1, 0};
  for (int i = 0; i < 5; ++i) {
    auto m = member(strformat("GHLVR%02d", i), 65110 + static_cast<Asn>(i), "GH", leave_mult[i]);
    m.ptp_links = leave_ptps[i];
    m.leave = date(10, 6, 2016);  // commercialisation of the content network
    s.neighbors.push_back(std::move(m));
  }
  return s;
}

// ---------------------------------------------------------------------------
// VP2 -- TIX (Tanzania), AS33791.

VpSpec make_vp2_tix() {
  VpSpec s;
  s.vp_name = "VP2";
  s.ixp = tix_info();
  s.vp_asn = 33791;
  s.vp_as_name = "TIX";
  s.vp_org = "ORG-TIX";
  s.country = "TZ";
  s.vp_is_ixp_network = true;
  s.vp_has_regional_transit = false;
  s.seed = 202;
  s.campaign_start = date(28, 2, 2016);
  s.campaign_end = date(27, 3, 2017);
  s.snapshot_dates = {date(19, 3, 2016), date(18, 6, 2016), date(16, 11, 2016)};

  // Transit arrives over the LAN.
  {
    NeighborSpec t;
    t.name = "TZTRANSIT";
    t.asn = 65200;
    t.country = "TZ";
    t.type = topo::AsType::kTransit;
    t.rel = NeighborSpec::Rel::kProviderOfVp;
    s.neighbors.push_back(std::move(t));
  }
  // Two large members.
  s.neighbors.push_back(member("TZBIG00", 65201, "TZ", 11));
  s.neighbors.push_back(member("TZBIG01", 65202, "TZ", 10));
  s.neighbors.back().leave = date(1, 10, 2016);
  s.neighbors[s.neighbors.size() - 2].leave = date(1, 10, 2016);
  // Ten mid members (two of them transiently congested, two noisy).
  for (int i = 0; i < 10; ++i) {
    auto m = member(strformat("TZMID%02d", i), 65210 + static_cast<Asn>(i), "TZ", 2);
    if (i == 0) {
      CongestionSpec c;
      c.a_w_ms = 12.0;
      c.dt_ud = kHour * 5;
      c.peak_hour = 13.5;
      c.overload = 1.12;
      c.begin = date(1, 3, 2016);
      c.end = date(15, 9, 2016);
      m.congestion = {c};
    }
    if (i == 1) {
      CongestionSpec c;
      c.a_w_ms = 24.0;
      c.dt_ud = kHour * 7;
      c.peak_hour = 15.0;
      c.overload = 1.15;
      c.begin = date(1, 3, 2016);
      c.end = date(8, 9, 2016);
      m.congestion = {c};
    }
    if (i == 2) m.noise_list.push_back({7.0, 4, kDay * 2, 21, false, 0});
    if (i == 3) m.noise_list.push_back({17.0, 4, kDay * 2, 22, false, 0});
    if (i == 4) m.noise_list.push_back({25.0, 3, kDay * 2, 23, false, 0});
    if (i == 5) m.noise_list.push_back({30.0, 3, kDay * 2, 24, false, 0});
    s.neighbors.push_back(std::move(m));
  }
  // Seventeen small members; four are customers of the IXP AS.
  for (int i = 0; i < 17; ++i) {
    auto m = member(strformat("TZSML%02d", i), 65230 + static_cast<Asn>(i), "TZ", 1);
    if (i < 4) m.rel = NeighborSpec::Rel::kCustomerOfVp;
    if (i >= 13) m.leave = date(1, 5, 2016);  // four leave before the May wave
    else if (i >= 12) m.leave = date(1, 10, 2016);
    s.neighbors.push_back(std::move(m));
  }
  // The May joiners with big port counts (the mid-campaign link spike).
  const int may_mult[] = {17, 14, 12};
  for (int i = 0; i < 3; ++i) {
    auto m = member(strformat("TZMAY%02d", i), 65250 + static_cast<Asn>(i), "TZ", may_mult[i]);
    m.join = date(5, 5, 2016);
    m.leave = date(1, 10, 2016);
    s.neighbors.push_back(std::move(m));
  }
  {
    auto m = member("TZSILENT", 65280, "TZ", 1);
    m.silent = true;
    s.neighbors.push_back(std::move(m));
  }
  // Autumn joiners (the November growth in neighbors).
  for (int i = 0; i < 12; ++i) {
    auto m = member(strformat("TZNOV%02d", i), 65260 + static_cast<Asn>(i), "TZ", 1);
    m.join = date(5, 10, 2016);
    s.neighbors.push_back(std::move(m));
  }
  return s;
}

// ---------------------------------------------------------------------------
// VP3 -- JINX (South Africa), AS37474.

VpSpec make_vp3_jinx() {
  VpSpec s;
  s.vp_name = "VP3";
  s.ixp = jinx_info();
  s.vp_asn = 37474;
  s.vp_as_name = "JINX";
  s.vp_org = "ORG-JINX";
  s.country = "ZA";
  s.vp_is_ixp_network = true;
  s.vp_has_regional_transit = false;
  s.seed = 303;
  s.campaign_start = date(5, 3, 2016);
  s.campaign_end = date(27, 3, 2017);
  s.snapshot_dates = {date(27, 7, 2016), date(15, 11, 2016), date(19, 2, 2017)};

  {
    NeighborSpec t;
    t.name = "ZATRANSIT";
    t.asn = 65300;
    t.country = "ZA";
    t.type = topo::AsType::kTransit;
    t.rel = NeighborSpec::Rel::kProviderOfVp;
    s.neighbors.push_back(std::move(t));
  }

  // 31 members: 15 with 6 ports, 16 with 5 ports.  From 01/09/2016 many
  // members renumber ports onto private interconnects: LAN ports go down,
  // ptp links come up (the Table 2 peering-share decline).
  Rng rng(s.seed);
  int noise_budget_low = 19;    // [5,10) ms
  int noise_budget_mid = 7;     // [10,15)
  int noise_budget_high = 7;    // [15,20)
  int noise_budget_top = 34;    // >= 20 (one more link is the diurnal one)
  for (int i = 0; i < 31; ++i) {
    const int mult = i < 15 ? 6 : 5;
    auto m = member(strformat("ZAMEM%02d", i), 65301 + static_cast<Asn>(i), "ZA", mult);
    if (i < 4) m.rel = NeighborSpec::Rel::kCustomerOfVp;
    // Port-to-PNI migration on 01/09/2016: the first 13 six-port members
    // drop 5 LAN ports, the next 4 drop 4; 15 members gain 4 ptps each.
    if (i < 13) {
      for (int p = mult - 5; p < mult; ++p) m.lan_windows.resize(static_cast<std::size_t>(mult));
      for (int p = 1; p < mult; ++p) m.lan_windows[static_cast<std::size_t>(p)].down = date(1, 9, 2016);
    } else if (i < 17) {
      m.lan_windows.resize(static_cast<std::size_t>(mult));
      for (int p = mult - 4; p < mult; ++p) m.lan_windows[static_cast<std::size_t>(p)].down = date(1, 9, 2016);
    }
    if (i < 15) {
      for (int p = 0; p < 4; ++p) m.ptp_windows.push_back({date(1, 9, 2016), kForever});
    }
    // January 2017: a further 20 LAN ports retire, 10 ptps appear.
    if (i >= 17 && i < 27) {
      m.lan_windows.resize(static_cast<std::size_t>(mult));
      m.lan_windows[static_cast<std::size_t>(mult - 1)].down = date(1, 1, 2017);
      m.lan_windows[static_cast<std::size_t>(mult - 2)].down = date(1, 1, 2017);
      if (i < 27) m.ptp_windows.push_back({date(1, 1, 2017), kForever});
    }
    // The one congested (transient) link: member 20, gone by September.
    if (i == 20) {
      CongestionSpec c;
      c.a_w_ms = 25.0;
      c.dt_ud = kHour * 6;
      c.peak_hour = 14.0;
      c.overload = 1.12;
      c.begin = date(10, 3, 2016);
      c.end = date(1, 9, 2016);
      m.congestion = {c};
    }
    // Route-change noise spread across ports to hit Table 1's bins.
    auto draw_noise = [&](double lo, double hi, int port) {
      NoiseShiftSpec ns;
      ns.magnitude_ms = rng.uniform(lo, hi);
      ns.events = 3 + static_cast<int>(rng.uniform_int(0, 2));
      ns.event_duration = kDay + Duration(rng.uniform_int(0, kDay.count()));
      ns.seed = rng.next();
      ns.port_index = port;
      m.noise_list.push_back(ns);
    };
    for (int p = (i == 20 ? 1 : 0); p < mult; ++p) {
      if (noise_budget_low > 0) {
        draw_noise(6.0, 9.5, p);
        --noise_budget_low;
      } else if (noise_budget_mid > 0) {
        draw_noise(11.0, 14.5, p);
        --noise_budget_mid;
      } else if (noise_budget_high > 0) {
        draw_noise(16.0, 19.5, p);
        --noise_budget_high;
      } else if (noise_budget_top > 0) {
        draw_noise(22.0, 42.0, p);
        --noise_budget_top;
      }
    }
    s.neighbors.push_back(std::move(m));
  }
  // Ten members join 01/09/2016 with 4 ports each; two more in January.
  for (int i = 0; i < 10; ++i) {
    auto m = member(strformat("ZASEP%02d", i), 65340 + static_cast<Asn>(i), "ZA", 4);
    m.join = date(1, 9, 2016);
    s.neighbors.push_back(std::move(m));
  }
  for (int i = 0; i < 2; ++i) {
    auto m = member(strformat("ZAJAN%02d", i), 65355 + static_cast<Asn>(i), "ZA", 5);
    m.join = date(1, 1, 2017);
    s.neighbors.push_back(std::move(m));
  }
  {
    auto m = member("ZASILENT", 65360, "ZA", 2);
    m.silent = true;
    s.neighbors.push_back(std::move(m));
  }
  return s;
}

// ---------------------------------------------------------------------------
// VP4 -- SIXP (Gambia), hosted inside QCELL (AS37309).

VpSpec make_vp4_sixp() {
  VpSpec s;
  s.vp_name = "VP4";
  s.ixp = sixp_info();
  s.vp_asn = 37309;
  s.vp_as_name = "QCELL";
  s.vp_org = "ORG-QCELL";
  s.country = "GM";
  s.vp_is_ixp_network = false;
  s.vp_filters_rr = true;  // Table 2: zero record routes at VP4
  s.vp_has_regional_transit = true;
  s.seed = 404;
  s.campaign_start = date(22, 2, 2016);
  s.campaign_end = date(27, 3, 2017);
  s.snapshot_dates = {date(18, 3, 2016), date(22, 7, 2016), date(7, 9, 2016)};

  // NETPAGE: 10 Mb/s SIXP port saturated by Google-cache demand (QCELL
  // hosts the GGC and provides its transit); upgraded to 1 Gb/s on
  // 28/04/2016, after which congestion disappears.  Weekday spikes ~35 ms,
  // weekend ~15 ms; dt_UD 6 h 22 m.
  {
    NeighborSpec n;
    n.name = "NETPAGE";
    n.asn = 65400;
    n.country = "GM";
    n.port_capacity_bps = 10e6;
    CongestionSpec c;
    c.a_w_ms = 35.0;  // buffer ceiling = weekday spike height
    c.dt_ud = kHour * 6 + kMinute * 22;
    c.peak_hour = 13.0;
    c.weekend_scale = 0.85;   // weekend demand only marginally saturates the port
    c.overload = 1.18;
    c.begin = date(29, 2, 2016);
    c.end = date(28, 4, 2016);
    n.congestion = {c};
    n.capacity_upgrades = {{date(28, 4, 2016), 1e9}};
    s.neighbors.push_back(std::move(n));
  }
  // Other SIXP members seen from QCELL.
  {
    auto m = member("GAMMEM00", 65401, "GM", 3);
    m.ptp_links = 1;
    m.leave = date(20, 6, 2016);
    s.neighbors.push_back(std::move(m));
  }
  {
    auto m = member("GAMMEM01", 65402, "GM", 3);
    m.ptp_links = 1;
    m.leave = date(20, 6, 2016);
    s.neighbors.push_back(std::move(m));
  }
  {
    auto m = member("GAMMEM02", 65403, "GM", 2);
    m.lan_windows = {{TimePoint{}, date(20, 6, 2016)},
                     {TimePoint{}, date(20, 6, 2016)},
                     {date(15, 8, 2016), kForever}};
    s.neighbors.push_back(std::move(m));
  }
  {
    auto m = member("GAMMEM03", 65404, "GM", 1);
    m.noise_list.push_back({7.5, 4, kDay * 2, 41, false, 0});
    s.neighbors.push_back(std::move(m));
  }
  s.neighbors.push_back(member("GAMMEM04", 65405, "GM", 1));
  {
    auto m = member("GAMAUG00", 65406, "GM", 1);
    m.join = date(15, 8, 2016);
    s.neighbors.push_back(std::move(m));
  }
  return s;
}

// ---------------------------------------------------------------------------
// VP5 -- KIXP (Kenya), hosted inside Liquid Telecom (AS30844).

VpSpec make_vp5_kixp(int scale) {
  VpSpec s;
  s.vp_name = "VP5";
  s.ixp = kixp_info();
  if (scale < 4) {
    // At (near) full scale the paper's ~600 peering members outgrow a /24
    // LAN; KIXP's real LAN grew the same way.
    s.ixp.peering_prefix = *net::Ipv4Prefix::parse("196.6.0.0/22");
    s.ixp.management_prefix = *net::Ipv4Prefix::parse("196.6.4.0/24");
  }
  s.vp_asn = 30844;
  s.vp_as_name = "LIQUID";
  s.vp_org = "ORG-LIQUID";
  s.country = "KE";
  s.vp_is_ixp_network = false;
  s.vp_has_regional_transit = true;
  s.seed = 505;
  s.campaign_start = date(25, 2, 2016);
  s.campaign_end = date(27, 3, 2017);
  s.snapshot_dates = {date(11, 3, 2016), date(23, 3, 2017), date(26, 3, 2017)};

  // Initial world (scaled 1:scale): one LAN peer, 29 backbone neighbors.
  const int initial_backbone = 232 / scale;  // ~29 at scale 8
  s.neighbors.push_back(member("KEPEER00", 65500, "KE", 2));

  Rng rng(s.seed);
  for (int i = 0; i < initial_backbone; ++i) {
    NeighborSpec n;
    n.name = strformat("KECUST%03d", i);
    n.asn = 66000 + static_cast<Asn>(i);
    n.country = "KE";
    n.rel = NeighborSpec::Rel::kCustomerOfVp;
    n.lan_routers = 0;
    n.ptp_links = i < 6 ? 2 : 1;
    s.neighbors.push_back(std::move(n));
  }

  // Growth: monthly waves through the campaign; most new neighbors join
  // the exchange (the KIXP peering boom), the rest are backbone customers.
  for (int i = 0; i < 4; ++i) {
    NeighborSpec m;
    m.name = strformat("KESILENT%d", i);
    m.asn = 65590 + static_cast<Asn>(i);
    m.country = "KE";
    m.silent = true;
    m.lan_routers = 0;
    m.ptp_links = 1;
    m.rel = NeighborSpec::Rel::kCustomerOfVp;
    s.neighbors.push_back(std::move(m));
  }
  const int waves = 12;
  const int joiners_per_wave = 976 / scale / waves + 1;  // ~11 at scale 8
  int noise_high = 17;  // links with >= 20 ms route-change shifts
  int noise_mid = 1;    // the single [15,20) ms link
  Asn next_asn = 67000;
  for (int w = 0; w < waves; ++w) {
    const TimePoint when = date(25, 3, 2016) + kDay * (30 * w);
    for (int j = 0; j < joiners_per_wave; ++j) {
      NeighborSpec n;
      n.name = strformat("KEW%02dN%02d", w, j);
      n.asn = next_asn++;
      n.country = "KE";
      n.join = when;
      const bool at_lan = (j % 9) < 5;  // ~55% join the exchange
      if (at_lan) {
        n.lan_routers = 1;
      } else {
        n.lan_routers = 0;
        n.ptp_links = 1;
        n.rel = NeighborSpec::Rel::kCustomerOfVp;
      }
      if (noise_high > 0 && w < 6) {
        NoiseShiftSpec ns;
        ns.magnitude_ms = rng.uniform(22.0, 45.0);
        ns.events = 3;
        ns.event_duration = kDay * 2;
        ns.seed = rng.next();
        ns.on_ptp = !at_lan;
        n.noise_list.push_back(ns);
        --noise_high;
      } else if (noise_mid > 0 && w == 6) {
        NoiseShiftSpec ns;
        ns.magnitude_ms = 17.0;
        ns.events = 3;
        ns.event_duration = kDay * 2;
        ns.seed = rng.next();
        ns.on_ptp = !at_lan;
        n.noise_list.push_back(ns);
        --noise_mid;
      }
      s.neighbors.push_back(std::move(n));
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// VP6 -- RINEX (Rwanda), hosted inside RDB (AS37228).

VpSpec make_vp6_rinex() {
  VpSpec s;
  s.vp_name = "VP6";
  s.ixp = rinex_info();
  s.vp_asn = 37228;
  s.vp_as_name = "RDB";
  s.vp_org = "ORG-RDB";
  s.country = "RW";
  s.vp_is_ixp_network = false;
  s.vp_filters_rr = true;  // Table 2: zero record routes at VP6
  s.vp_has_regional_transit = false;
  s.seed = 606;
  s.campaign_start = date(8, 7, 2016);
  s.campaign_end = date(27, 3, 2017);
  s.snapshot_dates = {date(27, 7, 2016), date(15, 11, 2016), date(19, 2, 2017)};

  // The single RINEX peer (the exchange's shared services), four ports.
  {
    auto m = member("RINEXSVC", 65600 - 1, "RW", 4);
    for (int p = 0; p < 4; ++p) {
      NoiseShiftSpec ns;
      ns.magnitude_ms = 23.0 + 2.0 * p;
      ns.events = 4;
      ns.event_duration = kDay * 2;
      ns.seed = 61 + static_cast<std::uint64_t>(p);
      ns.port_index = p;
      m.noise_list.push_back(ns);
    }
    s.neighbors.push_back(std::move(m));
  }

  {
    NeighborSpec m;
    m.name = "RWSILENT";
    m.asn = 65630;
    m.country = "RW";
    m.silent = true;
    m.lan_routers = 0;
    m.ptp_links = 1;
    m.rel = NeighborSpec::Rel::kCustomerOfVp;
    s.neighbors.push_back(std::move(m));
  }
  // Eight off-exchange neighbors with many parallel interconnects; ports
  // churn over the campaign (Table 2: 79 -> 82 -> 72 links), and every
  // link experiences occasional route-change level shifts (Table 1: ~100
  // flagged links, none diurnal).
  Rng rng(s.seed);
  int budget_low = 12;   // [5,10)
  int budget_high = 17;  // [15,20)
  int budget_top = 53;   // >= 20 (plus the 4 LAN ports above)
  const int base_ports[] = {10, 10, 10, 10, 9, 9, 9, 8};  // 75 at start
  for (int i = 0; i < 8; ++i) {
    NeighborSpec n;
    n.name = strformat("RWNET%02d", i);
    n.asn = 65610 + static_cast<Asn>(i);
    n.country = "RW";
    n.lan_routers = 0;
    n.rel = i == 0 ? NeighborSpec::Rel::kProviderOfVp : NeighborSpec::Rel::kCustomerOfVp;
    if (i == 0) n.type = topo::AsType::kTransit;
    int total_ports = base_ports[i];
    n.ptp_windows.assign(static_cast<std::size_t>(total_ports), LinkWindow{});
    // +3 ports on 01/09/2016 (spread over the first three neighbors): the
    // 79 -> 82 rise between the first two snapshots.
    if (i < 3) {
      n.ptp_windows.push_back({date(1, 9, 2016), kForever});
      ++total_ports;
    }
    // 01/01/2017: the first five neighbors lose two ports each (82 -> 72).
    if (i < 5) {
      n.ptp_windows[0].down = date(1, 1, 2017);
      n.ptp_windows[1].down = date(1, 1, 2017);
    }
    // A few part-time ports that appear only after the last snapshot keep
    // the ever-seen link total near the paper's ~100 flagged links.
    const int extra = i < 4 ? 1 : 0;
    for (int e = 0; e < extra; ++e) {
      n.ptp_windows.push_back({date(1, 3, 2017), date(20, 3, 2017)});
      ++total_ports;
    }
    for (int p = 0; p < total_ports; ++p) {
      NoiseShiftSpec ns;
      if (budget_top > 0) {
        ns.magnitude_ms = rng.uniform(22.0, 45.0);
        --budget_top;
      } else if (budget_high > 0) {
        ns.magnitude_ms = rng.uniform(16.0, 19.5);
        --budget_high;
      } else if (budget_low > 0) {
        ns.magnitude_ms = rng.uniform(6.0, 9.5);
        --budget_low;
      } else {
        break;
      }
      ns.events = 4;
      ns.event_duration = kDay + Duration(rng.uniform_int(0, kDay.count()));
      ns.seed = rng.next();
      ns.on_ptp = true;
      ns.port_index = p;
      n.noise_list.push_back(ns);
    }
    s.neighbors.push_back(std::move(n));
  }
  return s;
}

std::vector<VpSpec> make_all_vps() {
  return {make_vp1_gixa(), make_vp2_tix(),  make_vp3_jinx(),
          make_vp4_sixp(), make_vp5_kixp(), make_vp6_rinex()};
}

// ---------------------------------------------------------------------------
// Figure scenarios: minimal worlds, paper-exact parameters.

VpSpec make_fig_ghanatel() {
  VpSpec s = make_vp1_gixa();
  s.vp_name = "FIG-GHANATEL";
  // Strip everything except GHANATEL and two clean members (the figures
  // only need the link under study; clean members keep routing realistic).
  std::vector<NeighborSpec> kept;
  for (auto& n : s.neighbors) {
    if (n.name == "GHANATEL" || n.name == "INTERCOSAT") kept.push_back(std::move(n));
  }
  kept.push_back(member("GHMEM00", 65100, "GH", 1));
  kept.push_back(member("GHMEM01", 65101, "GH", 1));
  s.neighbors = std::move(kept);
  s.snapshot_dates.clear();
  return s;
}

VpSpec make_fig_knet() {
  VpSpec s;
  s.vp_name = "FIG-KNET";
  s.ixp = gixa_info();
  s.vp_asn = 30997;
  s.vp_as_name = "GIXA";
  s.vp_org = "ORG-GIXA";
  s.country = "GH";
  s.vp_is_ixp_network = true;
  s.vp_has_regional_transit = true;  // keep the world routable on its own
  s.seed = 107;
  s.campaign_start = date(29, 6, 2016);
  s.campaign_end = date(29, 3, 2017);

  NeighborSpec k;
  k.name = "KNET";
  k.asn = 33786;
  k.country = "GH";
  k.port_base_loss = 0.001;  // the measured 0.1 % average loss
  SlowIcmpSpec icmp;
  icmp.extra_ms = 19.5;  // yields the case study's A_w of ~17.5 ms
  icmp.peak_hour = 15.0;
  icmp.half_width_hours = 2.2;  // events of ~2 h 14 m above the threshold
  icmp.midnight_dip = 0.9;
  icmp.begin = date(6, 8, 2016);
  k.slow_icmp = icmp;
  s.neighbors.push_back(std::move(k));
  s.neighbors.push_back(member("GHMEM00", 65100, "GH", 1));
  s.neighbors.push_back(member("GHMEM01", 65101, "GH", 1));
  return s;
}

VpSpec make_fig_netpage() {
  VpSpec s = make_vp4_sixp();
  s.vp_name = "FIG-NETPAGE";
  std::vector<NeighborSpec> kept;
  for (auto& n : s.neighbors) {
    if (n.name == "NETPAGE" || n.name == "GAMMEM04") kept.push_back(std::move(n));
  }
  s.neighbors = std::move(kept);
  s.snapshot_dates.clear();
  return s;
}

}  // namespace ixp::analysis
