#include "analysis/facility.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ixp::analysis {

double binomial_upper_tail(std::size_t k, std::size_t n, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Sum the pmf from k to n through log-gamma: n stays small (links per
  // substrate), so the direct sum is both exact enough and cheap.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  const double log_fact_n = std::lgamma(static_cast<double>(n) + 1.0);
  double tail = 0.0;
  for (std::size_t x = k; x <= n; ++x) {
    const double log_pmf = log_fact_n - std::lgamma(static_cast<double>(x) + 1.0) -
                           std::lgamma(static_cast<double>(n - x) + 1.0) +
                           static_cast<double>(x) * log_p +
                           static_cast<double>(n - x) * log_q;
    tail += std::exp(log_pmf);
  }
  return std::min(tail, 1.0);
}

std::vector<FacilityVerdict> detect_facility_disruptions(
    const std::vector<FacilityObservation>& obs, const FacilityDetectorOptions& opt) {
  std::size_t total = 0, total_disrupted = 0;
  std::map<std::string, FacilityVerdict> by_facility;
  for (const FacilityObservation& o : obs) {
    ++total;
    if (o.disrupted) ++total_disrupted;
    if (o.facility.empty()) continue;  // background only
    FacilityVerdict& v = by_facility[o.facility];
    v.facility = o.facility;
    ++v.links;
    if (o.disrupted) ++v.disrupted;
  }

  std::vector<FacilityVerdict> out;
  out.reserve(by_facility.size());
  for (auto& [name, v] : by_facility) {
    // Leave-one-out background rate with Laplace smoothing: what fraction
    // of the links *outside* this facility were disrupted?  Smoothing
    // keeps the null rate strictly inside (0, 1), so a quiet substrate
    // doesn't collapse the tail to an automatic zero.
    const std::size_t n_out = total - v.links;
    const std::size_t k_out = total_disrupted - v.disrupted;
    const double p_out =
        (static_cast<double>(k_out) + 1.0) / (static_cast<double>(n_out) + 2.0);
    v.p_value = binomial_upper_tail(v.disrupted, v.links, p_out);
    v.disrupted_verdict = v.links >= opt.min_links && v.disrupted >= opt.min_disrupted &&
                          v.p_value <= opt.alpha;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(), [](const FacilityVerdict& a, const FacilityVerdict& b) {
    if (a.disrupted_verdict != b.disrupted_verdict) return a.disrupted_verdict;
    if (a.p_value != b.p_value) return a.p_value < b.p_value;
    return a.facility < b.facility;
  });
  return out;
}

}  // namespace ixp::analysis
