#include "analysis/campaign.h"

#include <algorithm>
#include <set>

#include "geo/dns_lite.h"
#include "sim/faults.h"
#include "sim/lp.h"
#include "registry/registry.h"
#include "tslp/engine.h"
#include "tslp/online.h"
#include "util/strings.h"
#include "util/log.h"

namespace ixp::analysis {
namespace {

// Derives monitored targets from a bdrmap result.
std::vector<prober::MonitorTarget> to_targets(const bdrmap::BdrmapResult& borders, Asn vp_asn) {
  std::vector<prober::MonitorTarget> out;
  out.reserve(borders.links.size());
  for (const auto& l : borders.links) {
    prober::MonitorTarget t;
    t.key = strformat("AS%u-AS%u-%s", vp_asn, l.far_asn, l.far_ip.to_string().c_str());
    t.near_ip = l.near_ip;
    t.far_ip = l.far_ip;
    t.near_asn = vp_asn;
    t.far_asn = l.far_asn;
    t.at_ixp = l.at_ixp;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

std::size_t VpCampaignResult::potentially_congested(double threshold_ms) const {
  std::size_t n = 0;
  for (const auto& r : reports) {
    const bool hit = std::any_of(r.far_shifts.episodes.begin(), r.far_shifts.episodes.end(),
                                 [&](const tslp::Episode& e) { return e.magnitude_ms >= threshold_ms; });
    n += hit ? 1 : 0;
  }
  return n;
}

std::size_t VpCampaignResult::with_diurnal(double threshold_ms) const {
  std::size_t n = 0;
  for (const auto& r : reports) {
    if (!r.has_diurnal_pattern()) continue;
    const bool hit = std::any_of(r.far_shifts.episodes.begin(), r.far_shifts.episodes.end(),
                                 [&](const tslp::Episode& e) { return e.magnitude_ms >= threshold_ms; });
    n += hit ? 1 : 0;
  }
  return n;
}

std::size_t VpCampaignResult::congested() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.congested() ? 1 : 0;
  return n;
}

VpCampaignResult run_campaign(ScenarioRuntime& rt, const VpSpec& spec, const CampaignOptions& opt) {
  VpCampaignResult result;
  result.vp_name = spec.vp_name;

  // Resolve the LP worker budget up front so a bad IXP_SIM_THREADS value
  // surfaces here rather than mid-run.  The TSLP probe loop below is
  // analytic -- it schedules no events -- so there is nothing for LP
  // workers to execute and every resolved value produces byte-identical
  // output (pinned by test_parallel_sim); the fleet driver uses the same
  // resolution to divide its thread budget.
  (void)sim::resolve_sim_threads(opt.sim_threads);

  const TimePoint start = spec.campaign_start;
  const TimePoint end = opt.duration_override.count() > 0
                            ? start + opt.duration_override
                            : spec.campaign_end;

  prober::Prober prober(rt.topology.net(), rt.vp_host, 100.0);
  sim::Simulator& simulator = rt.topology.net().simulator();
  simulator.advance_to(start);
  rt.apply_timeline_until(start);

  // Covers the whole campaign window in simulated time; records on scope
  // exit, so the span lands in the registry before the caller reads it.  A
  // null registry disarms the scope entirely.
  obs::ScopedSpan window_span(
      opt.metrics != nullptr ? opt.metrics->span(metric::kWindowSpan) : nullptr,
      [&simulator] { return simulator.now(); });

  // ---- Discovery: initial bdrmap run --------------------------------------
  auto run_bdrmap = [&]() {
    ++result.bdrmap_runs;
    const auto data = registry::harvest(rt.topology, *rt.bgp, rt.vp_asn, rt.collectors);
    bdrmap::Bdrmap mapper(prober, data, rt.vp_asn);
    return mapper.run();
  };
  bdrmap::BdrmapResult borders = run_bdrmap();

  std::vector<prober::MonitorTarget> targets = to_targets(borders, rt.vp_asn);
  // Sample accumulation: either raw per-link vectors (`series`, the
  // paper-scale default) or the columnar store (bounded-RSS substrate
  // path).  Exactly one of the two is populated.
  std::vector<tslp::LinkSeries> series;
  std::shared_ptr<series::SeriesStore> store;
  if (opt.columnar) {
    store = std::make_shared<series::SeriesStore>(start, opt.round_interval);
  }
  auto to_meta = [](const prober::MonitorTarget& t) {
    return series::LinkMeta{t.key, t.near_ip, t.far_ip, t.near_asn, t.far_asn, t.at_ixp};
  };

  // Final classification runs at the 5 ms floor (threshold sweeps re-filter
  // episodes by magnitude afterwards); computed up front because the online
  // detectors must scan windows with the same options finalize will use.
  tslp::ClassifierOptions final_opts = opt.classifier;
  final_opts.level_shift.threshold_ms = std::min(final_opts.level_shift.threshold_ms, 5.0);
  tslp::LevelShiftOptions online_near_opts = final_opts.level_shift;
  online_near_opts.threshold_ms = final_opts.near_threshold_ms;
  std::vector<tslp::OnlineLevelShift> online_near, online_far;
  auto add_online = [&](std::uint64_t lead_missing) {
    if (!opt.online) return;
    online_near.emplace_back(online_near_opts, start, opt.round_interval);
    online_far.emplace_back(final_opts.level_shift, start, opt.round_interval);
    if (lead_missing > 0) {
      const std::vector<double> pad(lead_missing, tslp::kMissing);
      online_near.back().push(pad);
      online_far.back().push(pad);
    }
  };

  // Responder-identity change rounds per link, accumulated across segments
  // in campaign-global round indices (the driver reports segment-relative
  // ones).  Feeds the reroute-vs-congestion cross-check after final
  // classification, in both raw and columnar accumulation modes.
  std::vector<std::vector<std::size_t>> responder_rounds;

  std::set<net::Ipv4Address> known_far;
  for (const auto& t : targets) {
    known_far.insert(t.far_ip);
    responder_rounds.emplace_back();
    add_online(0);
    if (store != nullptr) {
      store->add_link(to_meta(t));
      continue;
    }
    tslp::LinkSeries ls;
    ls.key = t.key;
    ls.near_ip = t.near_ip;
    ls.far_ip = t.far_ip;
    ls.near_asn = t.near_asn;
    ls.far_asn = t.far_asn;
    ls.at_ixp = t.at_ixp;
    ls.near_rtt.start = start;
    ls.near_rtt.interval = opt.round_interval;
    ls.far_rtt.start = start;
    ls.far_rtt.interval = opt.round_interval;
    series.push_back(std::move(ls));
  }

  // ---- Segment boundaries: membership changes and snapshots ---------------
  std::vector<TimePoint> boundaries;
  for (const auto& ev : rt.timeline) {
    if (ev.membership && ev.at > start && ev.at < end) boundaries.push_back(ev.at);
  }
  for (const auto& s : spec.snapshot_dates) {
    if (s > start && s < end) boundaries.push_back(s);
  }
  boundaries.push_back(end);
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()), boundaries.end());

  const std::set<TimePoint> snapshot_set(spec.snapshot_dates.begin(), spec.snapshot_dates.end());

  tslp::CongestionClassifier classifier(opt.classifier);

  // §5.1 location cross-check inputs (built once; the address plan and the
  // PTR zone are static over the campaign).
  const geo::GeoDatabase geo_db = geo::build_geo_database(rt.topology);
  const geo::DnsLite dns(rt.topology);

  auto record_snapshot = [&](TimePoint at, const bdrmap::BdrmapResult& b) {
    SnapshotResult snap;
    snap.at = at;
    snap.discovered_links = b.link_count();
    snap.peering_links = b.peering_link_count();
    snap.neighbors = b.neighbors.size();
    snap.peers = b.peers.size();
    snap.accuracy = bdrmap::score(b, rt.topology.interdomain_links_of(rt.vp_asn));
    // Congestion status of currently-live links, judged on the trailing
    // 60 days of their series (links congested long ago but mitigated are
    // no longer counted; see EXPERIMENTS.md on Table 2 semantics).
    std::set<net::Ipv4Address> live;
    for (const auto& l : b.links) live.insert(l.far_ip);
    const std::size_t min_samples =
        static_cast<std::size_t>((kDay * 2).count() / opt.round_interval.count());
    const std::size_t window_samples =
        static_cast<std::size_t>((kDay * 60).count() / opt.round_interval.count());
    const std::size_t link_count = store != nullptr ? store->size() : series.size();
    for (std::size_t li = 0; li < link_count; ++li) {
      // Columnar mode decodes one link at a time, so the snapshot's
      // working set stays a single series regardless of fleet scale.
      const tslp::LinkSeries decoded =
          store != nullptr ? store->decode(li) : tslp::LinkSeries{};
      const tslp::LinkSeries& ls = store != nullptr ? decoded : series[li];
      if (!live.count(ls.far_ip)) continue;
      const std::size_t n = std::min<std::size_t>(ls.far_rtt.index_of(at), ls.far_rtt.ms.size());
      if (n < min_samples) continue;  // not enough data to judge
      const std::size_t begin = n > window_samples ? n - window_samples : 0;
      tslp::LinkSeries window = ls;
      window.near_rtt.start = ls.near_rtt.time_of(begin);
      window.far_rtt.start = window.near_rtt.start;
      window.near_rtt.ms.assign(ls.near_rtt.ms.begin() + static_cast<std::ptrdiff_t>(begin),
                                ls.near_rtt.ms.begin() + static_cast<std::ptrdiff_t>(
                                    std::min(n, ls.near_rtt.ms.size())));
      window.far_rtt.ms.assign(ls.far_rtt.ms.begin() + static_cast<std::ptrdiff_t>(begin),
                               ls.far_rtt.ms.begin() + static_cast<std::ptrdiff_t>(n));
      const auto rep = classifier.classify(window);
      if (rep.congested()) ++snap.congested_links;
    }
    // Location cross-check over the inferred peering links.
    std::size_t checked = 0, consistent = 0;
    for (const auto& l : b.links) {
      if (!l.at_ixp) continue;
      const auto* ixp = rt.topology.find_ixp(l.ixp_name);
      if (!ixp) continue;
      ++checked;
      const auto verdict = geo::check_end_location(geo_db, dns, l.far_ip, *ixp);
      if (verdict == geo::LocationVerdict::kConfirmed || verdict == geo::LocationVerdict::kWeak) {
        ++consistent;
      }
    }
    snap.location_consistent = checked ? static_cast<double>(consistent) / checked : 1.0;
    result.snapshots.push_back(std::move(snap));
  };

  // Mirrors the running totals into the registry.  Everything here is a
  // set(), not an add(): the sources (prober, driver accumulators, fault
  // counters) are themselves monotone, so re-publishing at every boundary
  // is idempotent and observers see consistent values mid-run.
  auto publish = [&] {
    obs::Registry* reg = opt.metrics;
    if (reg == nullptr) return;
    reg->counter(metric::kRounds)->set(result.rounds_completed);
    reg->counter(metric::kProbesSent)->set(prober.probes_sent());
    reg->counter(metric::kProbesLost)->set(result.probes_lost);
    reg->counter(metric::kBdrmapRuns)->set(result.bdrmap_runs);
    reg->gauge(metric::kMonitoredLinks)->set(static_cast<double>(targets.size()));
    reg->counter(metric::kRecordRoutes)->set(result.record_routes);
    reg->counter(metric::kRecordRoutesSymmetric)->set(result.record_routes_symmetric);
    reg->counter(metric::kRelearns, "cause=\"stale\"")->set(result.stale_relearns);
    reg->counter(metric::kRelearns, "cause=\"loss\"")->set(result.loss_relearns);
    if (opt.faults != nullptr) {
      reg->counter(metric::kFaultEvents)->set(opt.faults->counters().timeline_faults);
      reg->counter(metric::kProbesSuppressed)
          ->set(opt.faults->counters().probes_suppressed);
      reg->counter(metric::kOutageRounds)->set(opt.faults->counters().outage_rounds);
    }
    if (store != nullptr) {
      reg->gauge(metric::kSeriesResidentBytes)
          ->set(static_cast<double>(store->resident_bytes()));
      reg->gauge(metric::kSeriesRawBytes)->set(static_cast<double>(store->raw_bytes()));
      reg->counter(metric::kSeriesSamples)->set(store->samples_total());
    }
  };

  auto report_progress = [&](TimePoint at, bool finished) {
    publish();
    if (!opt.on_progress) return;
    opt.on_progress(CampaignProgress{at, finished});
  };

  // Live verdicts for the serving layer: finalize every link's online far
  // detector against its series-so-far.  The window scans already ran as
  // rounds completed, so this is only the assembly tail per link; finalize
  // does not mutate the detector, so later segments keep pushing into it.
  tslp::DetectScratch verdict_scratch;
  std::vector<double> verdict_near_buf, verdict_far_buf;
  auto report_verdicts = [&](TimePoint at) {
    if (!opt.online || !opt.on_verdicts) return;
    LiveVerdictBatch batch;
    batch.vp_name = spec.vp_name;
    batch.ixp = spec.ixp.name;
    batch.at = at;
    const std::size_t link_count = store != nullptr ? store->size() : series.size();
    batch.links.reserve(link_count);
    for (std::size_t i = 0; i < link_count; ++i) {
      LiveLinkVerdict v;
      if (store != nullptr) {
        store->decode_into(i, verdict_near_buf, verdict_far_buf);
        const series::LinkMeta& m = store->meta(i);
        v.key = m.key;
        v.far_asn = m.far_asn;
        v.at_ixp = m.at_ixp;
        v.samples = verdict_far_buf.size();
        tslp::RttSeries tmp;
        tmp.start = store->start();
        tmp.interval = store->interval();
        tmp.ms = std::move(verdict_far_buf);
        v.far = online_far[i].finalize(tslp::view_of(tmp), verdict_scratch);
        verdict_far_buf = std::move(tmp.ms);  // reuse the buffer next link
      } else {
        const tslp::LinkSeries& ls = series[i];
        v.key = ls.key;
        v.far_asn = ls.far_asn;
        v.at_ixp = ls.at_ixp;
        v.samples = ls.far_rtt.ms.size();
        v.far = online_far[i].finalize(tslp::view_of(ls.far_rtt), verdict_scratch);
      }
      batch.links.push_back(std::move(v));
    }
    opt.on_verdicts(batch);
  };

  // ---- Main loop ------------------------------------------------------------
  // Probing rounds live on the campaign-global grid start + k*interval.
  // Segment boundaries (membership events, snapshot dates) may fall
  // anywhere, so each segment starts at the first grid point at or after
  // its boundary and runs a whole number of rounds; a cadence that does
  // not divide a boundary offset must never shift later samples off the
  // grid (regression: GridAlignment in tests/test_campaigns.cc).  For the
  // paper scenarios -- boundaries on day marks, 5-minute cadence -- the
  // alignment is the identity and output is byte-identical to before.
  const std::int64_t iv = opt.round_interval.count();
  auto grid_align_up = [&](TimePoint tp) {
    const std::int64_t k = ((tp - start).count() + iv - 1) / iv;
    return start + Duration(k * iv);
  };
  TimePoint t = start;
  for (const TimePoint b : boundaries) {
    if (b > t) {
      const TimePoint seg_start = grid_align_up(t);
      const std::int64_t rounds = seg_start < b ? ((b - seg_start).count() + iv - 1) / iv : 0;
      prober::TslpConfig cfg;
      cfg.round_interval = opt.round_interval;
      cfg.pre_round = [&rt](TimePoint at) { rt.apply_timeline_until(at); };
      // One record-route measurement per link per day (the paper's RR
      // campaign for path-symmetry checks).
      cfg.rr_every_rounds = static_cast<int>(kDay.count() / opt.round_interval.count());
      cfg.faults = opt.faults;
      prober::TslpDriver driver(prober, cfg);
      auto segment = driver.run(targets, seg_start, seg_start + Duration(rounds * iv),
                                [&](std::size_t) { ++result.rounds_completed; });
      result.record_routes += driver.record_routes();
      result.record_routes_symmetric += driver.record_routes_symmetric();
      result.stale_relearns += driver.stale_relearns();
      result.loss_relearns += driver.loss_relearns();
      result.probes_lost += driver.probes_lost();
      if (opt.metrics != nullptr) {
        opt.metrics->span(metric::kSegmentSpan)->record(b - t);
      }
      for (std::size_t i = 0; i < segment.size(); ++i) {
        if (!segment[i].responder_changes.empty()) {
          const std::size_t base = store != nullptr
                                       ? static_cast<std::size_t>(store->samples(i))
                                       : series[i].far_rtt.ms.size();
          for (const std::size_t rr : segment[i].responder_changes) {
            responder_rounds[i].push_back(base + rr);
          }
        }
        if (opt.online) {
          online_near[i].push(segment[i].near_rtt.ms);
          online_far[i].push(segment[i].far_rtt.ms);
        }
        if (store != nullptr) {
          store->append(i, segment[i].near_rtt.ms, segment[i].far_rtt.ms);
          continue;
        }
        auto& acc = series[i];
        acc.near_rtt.ms.insert(acc.near_rtt.ms.end(), segment[i].near_rtt.ms.begin(),
                               segment[i].near_rtt.ms.end());
        acc.far_rtt.ms.insert(acc.far_rtt.ms.end(), segment[i].far_rtt.ms.begin(),
                              segment[i].far_rtt.ms.end());
      }
      t = b;
    }
    rt.apply_timeline_until(b);
    // Membership may have changed; rediscover and absorb new links.
    borders = run_bdrmap();
    for (const auto& nt : to_targets(borders, rt.vp_asn)) {
      if (known_far.count(nt.far_ip)) continue;
      known_far.insert(nt.far_ip);
      targets.push_back(nt);
      responder_rounds.emplace_back();
      // Like the sample accumulators, a link discovered mid-campaign joins
      // the online detectors with its past padded as one missing run.
      if (store != nullptr) {
        add_online(store->size() > 0 ? store->samples(0) : 0);
      } else {
        add_online(series.empty() ? 0 : series.front().far_rtt.ms.size());
      }
      if (store != nullptr) {
        // Pad the past with a leading gap run (a handful of bytes, vs. the
        // raw path's 8 bytes per elapsed round).
        const std::uint64_t elapsed = store->size() > 0 ? store->samples(0) : 0;
        store->add_link(to_meta(nt), elapsed);
        continue;
      }
      tslp::LinkSeries ls;
      ls.key = nt.key;
      ls.near_ip = nt.near_ip;
      ls.far_ip = nt.far_ip;
      ls.near_asn = nt.near_asn;
      ls.far_asn = nt.far_asn;
      ls.at_ixp = nt.at_ixp;
      ls.near_rtt.start = start;
      ls.near_rtt.interval = opt.round_interval;
      ls.far_rtt.start = start;
      ls.far_rtt.interval = opt.round_interval;
      // Pad the past with missing samples.
      const std::size_t elapsed = series.empty() ? 0 : series.front().far_rtt.ms.size();
      ls.near_rtt.ms.assign(elapsed, tslp::kMissing);
      ls.far_rtt.ms.assign(elapsed, tslp::kMissing);
      series.push_back(std::move(ls));
    }
    if (snapshot_set.count(b)) record_snapshot(b, borders);
    report_verdicts(b);
    if (opt.verbose) {
      IXP_INFO << spec.vp_name << " boundary " << format_time(b) << ": " << targets.size()
               << " monitored links";
    }
    report_progress(b, false);
  }

  // ---- Final classification (5 ms floor for threshold sweeps) --------------
  tslp::CongestionClassifier final_classifier(final_opts);
  if (opt.online) {
    // The window scans already ran as rounds completed; replay only the
    // assembly tail against a transient view of each full series (decoded
    // into one reusable buffer pair in columnar mode) and classify from
    // the finalized shifts.  Byte-identical to the offline branches below.
    obs::Histogram* rtt_hist =
        store != nullptr && opt.metrics != nullptr
            ? opt.metrics->histogram(metric::kFarRttMs, {5, 10, 20, 50, 100, 200, 500, 1000})
            : nullptr;
    tslp::DetectScratch scratch;
    std::vector<double> near_buf, far_buf;
    const std::size_t link_count = store != nullptr ? store->size() : series.size();
    result.reports.reserve(link_count);
    for (std::size_t i = 0; i < link_count; ++i) {
      tslp::LinkSeries decoded;
      const tslp::LinkSeries* ls = &decoded;
      if (store != nullptr) {
        store->decode_into(i, near_buf, far_buf);
        const series::LinkMeta& m = store->meta(i);
        decoded.key = m.key;
        decoded.near_ip = m.near_ip;
        decoded.far_ip = m.far_ip;
        decoded.near_asn = m.near_asn;
        decoded.far_asn = m.far_asn;
        decoded.at_ixp = m.at_ixp;
        decoded.near_rtt.start = store->start();
        decoded.near_rtt.interval = store->interval();
        decoded.far_rtt.start = store->start();
        decoded.far_rtt.interval = store->interval();
        decoded.near_rtt.ms = std::move(near_buf);
        decoded.far_rtt.ms = std::move(far_buf);
      } else {
        ls = &series[i];
      }
      result.reports.push_back(final_classifier.classify_with_shifts(
          *ls, online_far[i].finalize(tslp::view_of(ls->far_rtt), scratch),
          online_near[i].finalize(tslp::view_of(ls->near_rtt), scratch)));
      if (store != nullptr) {
        if (rtt_hist != nullptr) {
          for (const double ms : decoded.far_rtt.ms) rtt_hist->observe(ms);
        }
        // Hand the buffers back for the next link, then keep metadata only.
        near_buf = std::move(decoded.near_rtt.ms);
        far_buf = std::move(decoded.far_rtt.ms);
        decoded.near_rtt.ms = {};
        decoded.far_rtt.ms = {};
        result.series.push_back(std::move(decoded));
      }
    }
    if (store != nullptr) {
      result.columns = store;
    } else {
      result.series = std::move(series);
    }
  } else if (store != nullptr) {
    // Decode-classify-discard, one link at a time: peak RSS is the encoded
    // store plus a single decoded series.  The far-RTT histogram is
    // observed here so the samples are not decoded a second time below.
    obs::Histogram* rtt_hist =
        opt.metrics != nullptr
            ? opt.metrics->histogram(metric::kFarRttMs, {5, 10, 20, 50, 100, 200, 500, 1000})
            : nullptr;
    result.reports.reserve(store->size());
    result.series.reserve(store->size());
    for (std::size_t i = 0; i < store->size(); ++i) {
      tslp::LinkSeries ls = store->decode(i);
      result.reports.push_back(final_classifier.classify(ls));
      if (rtt_hist != nullptr) {
        for (const double ms : ls.far_rtt.ms) rtt_hist->observe(ms);  // NaN = missing round
      }
      ls.near_rtt.ms = {};
      ls.far_rtt.ms = {};
      result.series.push_back(std::move(ls));  // metadata only
    }
    result.columns = store;
  } else {
    result.reports.reserve(series.size());
    for (const auto& ls : series) result.reports.push_back(final_classifier.classify(ls));
    result.series = std::move(series);
  }
  // Reroute-vs-congestion cross-check: a verdict whose every far episode
  // begins at a responder-identity change is explained by the path moving
  // under the monitor, not by queueing — downgrade it (the scenario
  // diversity pack's discrimination requirement; see tslp::crosscheck_reroute).
  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    if (i >= responder_rounds.size() || i >= result.series.size()) break;
    result.series[i].responder_changes = std::move(responder_rounds[i]);
    tslp::crosscheck_reroute(result.reports[i], result.series[i].responder_changes);
  }

  result.probes_sent = prober.probes_sent();
  if (opt.faults != nullptr) {
    result.fault_events = opt.faults->counters().timeline_faults;
    result.probes_suppressed = opt.faults->counters().probes_suppressed;
    result.outage_rounds = opt.faults->counters().outage_rounds;
  }

  // Completion-time scrape: runtime internals (event loop, fluid queues,
  // packet transport), detector outcomes, and the far-RTT distribution.
  // These are not re-published mid-run -- they are either cumulative
  // runtime totals or only meaningful once classification has run.
  if (opt.metrics != nullptr) {
    obs::Registry* reg = opt.metrics;
    const sim::Network& net = rt.topology.net();
    reg->counter(metric::kSimEventsExecuted)->set(simulator.executed());
    reg->counter(metric::kSimEventsScheduled)->set(simulator.scheduled());
    const sim::FluidQueue::Stats qs = net.queue_stats();
    reg->counter(metric::kQueueHeadroomSkips)->set(qs.headroom_skips);
    reg->counter(metric::kQueueIntegrationSteps)->set(qs.integration_steps);
    reg->counter(metric::kQueueTailDrops)->set(qs.tail_drops);
    reg->counter(metric::kNetForwarded)->set(net.packets_forwarded);
    reg->counter(metric::kNetDropped)->set(net.packets_dropped);
    reg->counter(metric::kNetIcmp)->set(net.icmp_generated);
    reg->counter(metric::kNetHops)->set(net.hops_walked);
    std::uint64_t episodes = 0, raw_episodes = 0, refused = 0;
    std::uint64_t windows_scanned = 0, windows_skipped = 0;
    for (const auto& r : result.reports) {
      for (const tslp::LevelShiftResult* ls : {&r.far_shifts, &r.near_shifts}) {
        episodes += ls->episodes.size();
        raw_episodes += ls->raw_episode_count;
        refused += ls->refused_low_coverage ? 1 : 0;
        windows_scanned += ls->windows_scanned;
        windows_skipped += ls->windows_skipped_dark + ls->windows_skipped_quiet;
      }
    }
    reg->counter(metric::kDetectorEpisodes)->set(episodes);
    reg->counter(metric::kDetectorRawEpisodes)->set(raw_episodes);
    reg->counter(metric::kDetectorRefused)->set(refused);
    reg->counter(metric::kDetectorWindowsScanned)->set(windows_scanned);
    reg->counter(metric::kDetectorWindowsSkipped)->set(windows_skipped);
    if (store == nullptr) {  // columnar mode observed during classification
      obs::Histogram* rtt =
          reg->histogram(metric::kFarRttMs, {5, 10, 20, 50, 100, 200, 500, 1000});
      for (const auto& ls : result.series) {
        for (const double ms : ls.far_rtt.ms) rtt->observe(ms);  // NaN = missing round
      }
    }
  }

  report_progress(end, true);
  return result;
}

}  // namespace ixp::analysis
