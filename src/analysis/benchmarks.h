// Simulator benchmark harness: the repo's perf trajectory.
//
// Every PR that touches the probe hot path re-runs these workloads and
// commits the result as BENCH_sim.json, so probes/s and ns/hop are
// comparable across PRs (fixed seeds, fixed topologies, fixed probe
// counts -- only the wall clock varies with the host).
//
// Three workloads, ordered from micro to macro:
//   * probe_fabric   -- the TSLP inner loop in isolation: analytic probes
//     across a VP -> border -> IXP fabric -> member topology, TTL expiry
//     at the member router.  Reports probes/s and ns per link crossing.
//   * event_loop     -- event-mode echo through two routers; measures the
//     Simulator's scheduling throughput (events/s).
//   * campaign_six_vp -- the paper's six VP campaigns end to end at the
//     5-minute cadence (the acceptance workload for probe-path PRs).
//
// Entry points: `afixp bench` and bench/bench_probe.cc; tools/check_bench.sh
// runs the smoke size from CTest and validates the JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ixp::analysis {

struct BenchOptions {
  /// CI-sized workloads (seconds, not minutes); what check_bench runs.
  bool smoke = false;
  /// Seeds the synthetic topologies and every RNG stream.
  std::uint64_t seed = 0x5eed0001u;
  /// Warm passes per micro-benchmark (cold pass is always 1).
  int repeats = 3;
  /// Run only the benchmark with this name (empty = all).
  std::string only;
  /// Collect per-campaign observability registries during campaign_six_vp.
  /// Off by default so the reference numbers (BENCH_sim.json) measure the
  /// instrumentation-free path; check_bench.sh compares both settings to
  /// gate the metrics overhead.
  bool metrics = false;
};

/// One benchmark's numbers.  `items` are probes (probe benches) or events
/// (event_loop) per pass; `hops` are link crossings per pass.
struct BenchMeasurement {
  std::string name;
  std::string unit;               ///< "probes_per_sec" | "events_per_sec"
  std::uint64_t items = 0;        ///< work items per pass
  std::uint64_t hops = 0;         ///< link crossings per pass (0 = n/a)
  double cold_per_sec = 0.0;      ///< first pass (cold caches, lazy state)
  double warm_per_sec = 0.0;      ///< best warm pass
  double cold_ns_per_hop = 0.0;   ///< 0 when hops == 0
  double warm_ns_per_hop = 0.0;
  double wall_seconds = 0.0;      ///< total across all passes
};

struct BenchReport {
  std::string workload;  ///< "smoke" | "full"
  std::uint64_t seed = 0;
  std::vector<BenchMeasurement> benches;
};

/// Runs the harness.  `log`, when non-null, receives one progress line per
/// benchmark (human-readable; the JSON goes elsewhere).
BenchReport run_sim_benchmarks(const BenchOptions& opt, std::ostream* log = nullptr);

/// Serializes a report as the BENCH_sim.json document (schema
/// "afixp-bench-sim/1"; see docs/ARCHITECTURE.md).
void write_bench_json(std::ostream& out, const BenchReport& rep);

}  // namespace ixp::analysis
