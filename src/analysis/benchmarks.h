// Simulator benchmark harness: the repo's perf trajectory.
//
// Every PR that touches the probe hot path re-runs these workloads and
// commits the result as BENCH_sim.json, so probes/s and ns/hop are
// comparable across PRs (fixed seeds, fixed topologies, fixed probe
// counts -- only the wall clock varies with the host).
//
// Three workloads, ordered from micro to macro:
//   * probe_fabric   -- the TSLP inner loop in isolation: analytic probes
//     across a VP -> border -> IXP fabric -> member topology, TTL expiry
//     at the member router.  Reports probes/s and ns per link crossing.
//   * event_loop     -- event-mode echo through two routers; measures the
//     Simulator's scheduling throughput (events/s).
//   * campaign_six_vp -- the paper's six VP campaigns end to end at the
//     5-minute cadence (the acceptance workload for probe-path PRs).
//   * lp_islands     -- event-mode ping workload over a chain of IXP
//     islands, run serially and again under the conservative LP scheduler
//     (sim/lp.h); records the speedup and asserts the RTT bit patterns
//     are identical (the determinism contract, also pinned by
//     tests/test_parallel_sim.cc).
//
// Entry points: `afixp bench` and bench/bench_probe.cc; tools/check_bench.sh
// runs the smoke size from CTest and validates the JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/lp.h"
#include "topo/gen.h"
#include "util/time.h"

namespace ixp::analysis {

struct BenchOptions {
  /// CI-sized workloads (seconds, not minutes); what check_bench runs.
  bool smoke = false;
  /// Seeds the synthetic topologies and every RNG stream.
  std::uint64_t seed = 0x5eed0001u;
  /// Warm passes per micro-benchmark (cold pass is always 1).
  int repeats = 3;
  /// Run only the benchmark with this name (empty = all).
  std::string only;
  /// Collect per-campaign observability registries during campaign_six_vp.
  /// Off by default so the reference numbers (BENCH_sim.json) measure the
  /// instrumentation-free path; check_bench.sh compares both settings to
  /// gate the metrics overhead.
  bool metrics = false;
  /// LP worker count for the lp_islands benchmark: positive passes
  /// through, 0 falls back to IXP_SIM_THREADS and then to 8 (the
  /// committed-record configuration check_bench gates on).
  int sim_threads = 0;
};

/// One benchmark's numbers.  `items` are probes (probe benches) or events
/// (event_loop) per pass; `hops` are link crossings per pass.
struct BenchMeasurement {
  std::string name;
  std::string unit;               ///< "probes_per_sec" | "events_per_sec"
  std::uint64_t items = 0;        ///< work items per pass
  std::uint64_t hops = 0;         ///< link crossings per pass (0 = n/a)
  double cold_per_sec = 0.0;      ///< first pass (cold caches, lazy state)
  double warm_per_sec = 0.0;      ///< best warm pass
  double cold_ns_per_hop = 0.0;   ///< 0 when hops == 0
  double warm_ns_per_hop = 0.0;
  double wall_seconds = 0.0;      ///< total across all passes
};

/// Serial-vs-LP comparison of the lp_islands workload.  `identical` is the
/// determinism contract observed end to end: every island's RTT bit
/// pattern from the LP run equals the serial run's.  check_bench.sh fails
/// any record where it is false and gates the committed full record on
/// speedup >= 1.5 at 8 threads.
struct LpBenchRecord {
  bool present = false;   ///< lp_islands ran (it respects --only)
  std::string spec;       ///< island sizing label ("paper6" | "regional50")
  int threads = 0;        ///< requested LP workers
  int lps = 0;            ///< logical processes the partitioner produced
  /// CPUs the recording host exposed (std::thread::hardware_concurrency).
  /// check_bench.sh only applies the speedup floor when this shows real
  /// parallelism was available; on a single-CPU host the record still
  /// gates on `identical` but not on wall-clock scaling.
  int host_cpus = 0;
  double serial_wall_seconds = 0.0;
  double lp_wall_seconds = 0.0;
  double speedup = 0.0;   ///< serial_wall / lp_wall
  bool identical = false; ///< RTT bit patterns byte-identical serial vs LP
  std::uint64_t windows = 0;         ///< barrier windows (null-message rounds)
  std::uint64_t cross_messages = 0;  ///< packets exchanged across LPs
  std::uint64_t events = 0;          ///< events executed (same both runs)
};

struct BenchReport {
  std::string workload;  ///< "smoke" | "full"
  std::uint64_t seed = 0;
  std::vector<BenchMeasurement> benches;
  LpBenchRecord lp;      ///< filled when lp_islands ran
};

// ---------------------------------------------------------------------------
// Island-chain event world: the LP scheduler's reference workload, shared
// by the lp_islands benchmark and tests/test_parallel_sim.cc.
//
// K islands, each a miniature IXP: a VP host behind a border router, the
// border on a switching fabric with M member routers, and a stub host
// behind every member.  Borders chain island i to island i+1 over 10 ms
// long-haul links -- the only links at or above the island threshold, so
// partition_network() discovers exactly K islands and a 10 ms lookahead.
// The workload pings intra-island and next-island stub addresses with
// unique per-(island, ping) send instants, which eliminates cross-LP
// merge ties by construction (see sim/lp.h).

struct IslandWorld {
  sim::Network net;
  int islands = 0;
  int members = 0;
  std::vector<sim::NodeId> vps;                          ///< VP host per island
  std::vector<net::Ipv4Address> vp_addrs;                ///< VP address per island
  std::vector<std::vector<net::Ipv4Address>> far_addrs;  ///< [island][member] stubs
};

/// Builds the world deterministically.  `islands` in [1, 250], `members`
/// in [1, 200] (address-plan bounds).
void build_island_world(IslandWorld& w, int islands, int members);

/// One serial or LP execution of the ping workload.  `rtt_ns` holds, per
/// island, every echo-reply RTT observed at that island's VP in arrival
/// order -- the byte-identity witness (exact integer nanoseconds).
struct IslandRunResult {
  std::vector<std::vector<std::int64_t>> rtt_ns;
  std::uint64_t events = 0;     ///< events executed across all simulators
  std::uint64_t scheduled = 0;  ///< events scheduled across all simulators
  std::uint64_t forwarded = 0;  ///< Network::packets_forwarded delta
  double wall_seconds = 0.0;
  int lps = 1;                  ///< logical processes used (1 = serial)
  sim::LpRunStats lp;           ///< zero-valued for the serial run
};

/// Seeds `pings_per_island` staggered pings per island and runs them to
/// completion: serially on the network's own simulator when `threads` <=
/// 0, through an LpScheduler with that many workers otherwise (1 is the
/// degenerate single-LP scheduler path).  When `metrics` is non-null and
/// an LP run happened, publishes the LP stats into it.  One world, one
/// run: build a fresh IslandWorld per execution.
IslandRunResult run_island_workload(IslandWorld& w, int pings_per_island, int threads,
                                    obs::Registry* metrics = nullptr);

/// Runs the harness.  `log`, when non-null, receives one progress line per
/// benchmark (human-readable; the JSON goes elsewhere).
BenchReport run_sim_benchmarks(const BenchOptions& opt, std::ostream* log = nullptr);

/// Serializes a report as the BENCH_sim.json document (schema
/// "afixp-bench-sim/2"; see docs/ARCHITECTURE.md).
void write_bench_json(std::ostream& out, const BenchReport& rep);

// ---------------------------------------------------------------------------
// Substrate benchmark: the continent-scale acceptance workload.
//
// Generates a substrate from a topology-spec preset (topo/gen.h), runs the
// whole fleet with the columnar series store engaged, and reports the two
// numbers docs/SCALING.md sizes everything with: links simulated per
// second (one monitored link advanced one probing round = one link-round)
// and resident bytes per monitored link.  Entry points: `afixp gen
// --bench` and bench/bench_substrate.cc; results are committed as
// BENCH_substrate.json and linted by tools/check_bench.sh and
// tools/check_docs.sh.

struct SubstrateBenchOptions {
  /// CI-sized: a 6-IXP substrate over two days (seconds of wall clock).
  /// Full mode runs the `spec` preset as-is.
  bool smoke = false;
  std::string spec = "continent100";  ///< preset fed to topo_spec_preset()
  std::uint64_t seed = 0;             ///< 0 = keep the preset's seed
  int jobs = 0;                       ///< fleet workers (0 = auto)
  Duration round_interval = kMinute * 5;
  Duration duration_override = Duration(0);  ///< 0 = the spec's `days`
};

struct SubstrateBenchReport {
  std::string workload;  ///< "smoke" | "full"
  std::string spec;      ///< preset the substrate came from
  std::uint64_t seed = 0;
  int jobs = 0;
  std::size_t ixps = 0;
  std::uint64_t links = 0;    ///< monitored links, fleet-wide
  std::uint64_t rounds = 0;   ///< TSLP rounds across all campaigns
  std::uint64_t samples = 0;  ///< stored samples (near+far columns)
  std::uint64_t probes = 0;
  double wall_seconds = 0.0;
  double link_rounds_per_sec = 0.0;  ///< links simulated per wall second
  double probes_per_sec = 0.0;
  std::uint64_t resident_bytes = 0;  ///< encoded columnar footprint
  std::uint64_t raw_bytes = 0;       ///< 8 bytes/sample equivalent
  double bytes_per_link = 0.0;       ///< resident_bytes / links
  double raw_bytes_per_link = 0.0;
  double compression_ratio = 0.0;    ///< raw_bytes / resident_bytes
  long peak_rss_kb = 0;              ///< process peak RSS after the run
};

/// Generates the substrate, runs the fleet (columnar store on), and
/// aggregates the report.  Throws std::runtime_error on an unknown preset.
SubstrateBenchReport run_substrate_benchmark(const SubstrateBenchOptions& opt,
                                             std::ostream* log = nullptr);

/// Same harness over an already-resolved spec (a preset or a file the
/// caller parsed -- `afixp gen --bench` lands here).  `opt.spec` and
/// `opt.smoke` are ignored; the report's workload is "full".
SubstrateBenchReport run_substrate_benchmark(const topo::TopoSpec& spec,
                                             const SubstrateBenchOptions& opt,
                                             std::ostream* log = nullptr);

/// Serializes a report as the BENCH_substrate.json document (schema
/// "afixp-bench-substrate/1"; field reference in docs/SCALING.md).
void write_substrate_bench_json(std::ostream& out, const SubstrateBenchReport& rep);

// ---------------------------------------------------------------------------
// TSLP statistics benchmark: the classification throughput trajectory.
//
// Classifies the same synthetic link corpus (sized from a topology-spec
// preset; see docs/SCALING.md for the presets) with all three detector
// engines -- the legacy scalar pipeline, the structure-of-arrays batch
// engine, and the online detector fed day-sized chunks -- and reports
// series classified per second for each.  All three must produce
// byte-identical reports (the `equivalent` field); check_bench.sh fails
// the smoke run otherwise and gates the committed BENCH_tslp.json on
// batch/scalar speedup >= 3x.  Entry points: `afixp bench --tslp` and
// bench/bench_tslp.cc.

struct TslpBenchOptions {
  /// CI-sized corpus (a 6-IXP spec over two days); what check_bench runs.
  bool smoke = false;
  std::string spec = "regional50";  ///< preset sizing the synthetic corpus
  std::uint64_t seed = 0;           ///< 0 = keep the preset's seed
  int repeats = 1;                  ///< warm passes per engine (cold is always 1)
};

/// One engine's throughput.  A "series" is one side of one monitored link
/// (each link contributes a near and a far detection).
struct TslpEngineMeasurement {
  std::string name;  ///< "scalar" | "batch" | "online"
  double cold_series_per_sec = 0.0;
  double warm_series_per_sec = 0.0;  ///< best warm pass (= cold when repeats 0)
  double wall_seconds = 0.0;         ///< total across all passes
};

struct TslpBenchReport {
  std::string workload;  ///< "smoke" | "full"
  std::string spec;
  std::uint64_t seed = 0;
  std::uint64_t links = 0;               ///< monitored links in the corpus
  std::uint64_t series = 0;              ///< 2 * links (near + far sides)
  std::uint64_t samples_per_series = 0;  ///< campaign rounds at the 5-min cadence
  std::uint64_t samples_total = 0;
  std::vector<TslpEngineMeasurement> engines;
  double speedup_batch = 0.0;   ///< batch warm / scalar warm
  double speedup_online = 0.0;  ///< online warm / scalar warm
  /// All engines produced byte-identical reports on every link.
  bool equivalent = false;
  std::uint64_t episodes = 0;         ///< far+near episodes, batch engine
  std::uint64_t congested_links = 0;  ///< kCongested verdicts
  /// Mirrored through the obs registry under the campaign metric names
  /// (afixp_detector_windows_*), so the bench reads the same counters the
  /// fleet metrics table scrapes.
  std::uint64_t windows_scanned = 0;
  std::uint64_t windows_skipped = 0;  ///< dark + quiet skips
  long peak_rss_kb = 0;
};

/// Builds the synthetic corpus and times the three engines.  Throws
/// std::runtime_error on an unknown preset.
TslpBenchReport run_tslp_benchmark(const TslpBenchOptions& opt, std::ostream* log = nullptr);

/// Serializes a report as the BENCH_tslp.json document (schema
/// "afixp-bench-tslp/1"; field reference in docs/ARCHITECTURE.md,
/// "TSLP fast path").
void write_tslp_bench_json(std::ostream& out, const TslpBenchReport& rep);

}  // namespace ixp::analysis
