// End-to-end campaign driver for one vantage point.
//
// Reproduces the paper's measurement workflow (§4-§5):
//   1. harvest public data, run bdrmap-lite, derive the monitored link set;
//   2. probe both ends of every monitored link every 5 minutes with TSLP,
//      applying the world timeline (joins, departures, shut-offs, upgrades)
//      as simulated time advances, re-running bdrmap after membership
//      changes so newly-appeared links join the monitored set;
//   3. at each Table 2 snapshot date, record discovered/peering/neighbor/
//      peer counts plus the congestion status of the current links;
//   4. classify every monitored link's full series (level shifts at the
//      5 ms floor, diurnal pattern, near-side cleanliness) for Table 1.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/scenario.h"
#include "bdrmap/bdrmap.h"
#include "obs/metrics.h"
#include "prober/tslp_driver.h"
#include "series/columnar.h"
#include "tslp/classifier.h"

namespace ixp::analysis {

/// Canonical metric names the campaign driver publishes (obs/metrics.h
/// naming convention).  Consumers -- the fleet metrics table, the chaos
/// report, tests -- read these instead of carrying parallel counters.
namespace metric {
inline constexpr char kRounds[] = "afixp_campaign_rounds_total";
inline constexpr char kProbesSent[] = "afixp_campaign_probes_sent_total";
inline constexpr char kProbesLost[] = "afixp_campaign_probes_lost_total";
inline constexpr char kBdrmapRuns[] = "afixp_campaign_bdrmap_runs_total";
inline constexpr char kMonitoredLinks[] = "afixp_campaign_monitored_links";
inline constexpr char kRecordRoutes[] = "afixp_campaign_record_routes_total";
inline constexpr char kRecordRoutesSymmetric[] =
    "afixp_campaign_record_routes_symmetric_total";
inline constexpr char kRelearns[] = "afixp_tslp_relearns_total";  ///< cause="stale"|"loss"
inline constexpr char kFaultEvents[] = "afixp_faults_events_total";
inline constexpr char kProbesSuppressed[] = "afixp_faults_probes_suppressed_total";
inline constexpr char kOutageRounds[] = "afixp_faults_outage_rounds_total";
inline constexpr char kSimEventsExecuted[] = "afixp_sim_events_executed_total";
inline constexpr char kSimEventsScheduled[] = "afixp_sim_events_scheduled_total";
inline constexpr char kQueueHeadroomSkips[] = "afixp_queue_headroom_skips_total";
inline constexpr char kQueueIntegrationSteps[] = "afixp_queue_integration_steps_total";
inline constexpr char kQueueTailDrops[] = "afixp_queue_tail_drops_total";
inline constexpr char kNetForwarded[] = "afixp_net_packets_forwarded_total";
inline constexpr char kNetDropped[] = "afixp_net_packets_dropped_total";
inline constexpr char kNetIcmp[] = "afixp_net_icmp_generated_total";
inline constexpr char kNetHops[] = "afixp_net_hops_walked_total";
inline constexpr char kDetectorEpisodes[] = "afixp_detector_episodes_total";
inline constexpr char kDetectorRawEpisodes[] = "afixp_detector_raw_episodes_total";
inline constexpr char kDetectorRefused[] =
    "afixp_detector_refused_low_coverage_total";
inline constexpr char kDetectorWindowsScanned[] =
    "afixp_detector_windows_scanned_total";
inline constexpr char kDetectorWindowsSkipped[] =
    "afixp_detector_windows_skipped_total";
inline constexpr char kFarRttMs[] = "afixp_tslp_far_rtt_ms";
inline constexpr char kSegmentSpan[] = "afixp_campaign_segment_simtime";
inline constexpr char kWindowSpan[] = "afixp_campaign_window_simtime";
// Columnar series storage (published only when CampaignOptions::columnar
// engages the store, so paper-path metric exports are unchanged).
inline constexpr char kSeriesResidentBytes[] = "afixp_series_resident_bytes";
inline constexpr char kSeriesRawBytes[] = "afixp_series_raw_bytes";
inline constexpr char kSeriesSamples[] = "afixp_series_samples_total";
}  // namespace metric

/// Progress of a running campaign, reported at segment boundaries
/// (membership changes, Table 2 snapshots) and once with finished=true.
/// Counts no longer travel in this struct: the campaign publishes them to
/// CampaignOptions::metrics *before* each callback, so observers read the
/// registry (see the metric:: names above) for everything quantitative.
struct CampaignProgress {
  TimePoint at{};        ///< simulated time reached
  bool finished = false;
};

/// One monitored link's live far-side detection state, delivered through
/// CampaignOptions::on_verdicts while a campaign is still running.  `far`
/// holds the level shifts over the series-so-far: the online detector has
/// already scanned every completed window, so producing it at a boundary
/// only replays the cheap assembly tail (tslp/online.h's always-on
/// observatory mode).  Full LinkReports -- diurnal pattern, near-side
/// cleanliness, the final verdict -- still come from the end-of-campaign
/// classification; a live verdict is the evidence available mid-flight.
struct LiveLinkVerdict {
  std::string key;            ///< MonitorTarget key (stable across segments)
  std::uint32_t far_asn = 0;
  bool at_ixp = false;
  std::size_t samples = 0;    ///< rounds accumulated so far (incl. gap padding)
  tslp::LevelShiftResult far; ///< level shifts over the series so far
};

/// Everything on_verdicts sees at one segment boundary: which campaign
/// produced it, the simulated time reached, and one entry per monitored
/// link in monitored-set order.  The VP/IXP identity rides along because a
/// fleet shares one on_verdicts callback across every campaign it runs.
struct LiveVerdictBatch {
  std::string vp_name;
  std::string ixp;      ///< IXP name from the spec
  TimePoint at{};
  std::vector<LiveLinkVerdict> links;
};

struct CampaignOptions {
  Duration round_interval = kMinute * 5;
  /// Override of the campaign window (0 = use the spec's window).  Benches
  /// shorten this to keep run times reasonable; EXPERIMENTS.md records the
  /// durations used.
  Duration duration_override = Duration(0);
  tslp::ClassifierOptions classifier;
  bool verbose = false;
  /// Destination registry for the campaign's metrics (not owned; may be
  /// null to disable all recording).  The campaign is the only writer for
  /// the duration of the run; counters mirrored from component stats use
  /// Counter::set(), so values are consistent at every progress callback.
  obs::Registry* metrics = nullptr;
  /// Invoked on the campaign's own thread at every segment boundary and
  /// once with finished=true, after the registry has been refreshed.  The
  /// fleet driver (fleet.h) hooks this to render live per-VP status; must
  /// not touch the runtime.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Live-verdict observer for the serving layer (docs/SERVING.md):
  /// invoked on the campaign's own thread at every segment boundary with
  /// the level shifts detected so far on every monitored link.  Requires
  /// `online` (the incremental detectors are the only source of mid-run
  /// shifts); never invoked otherwise.  Like on_progress, the callback
  /// must not touch the runtime -- hand the batch off and return.
  std::function<void(const LiveVerdictBatch&)> on_verdicts;
  /// Optional fault injector (not owned; keep it alive for the run).
  /// Obtain one from attach_fault_plan() so the timeline faults and the
  /// probe-level gates come from the same expanded plan.
  sim::FaultInjector* faults = nullptr;
  /// Accumulate samples in the columnar store (series/columnar.h) instead
  /// of raw per-link vectors: segments stream into delta-encoded columns
  /// as they complete, snapshots and the final classification decode one
  /// link at a time, and RSS stays bounded by the encoded size plus a
  /// single decoded series.  The decoded samples are bit-identical to the
  /// raw path, but VpCampaignResult::series then carries metadata only
  /// (empty ms vectors) -- the samples live in VpCampaignResult::columns.
  /// Off by default: the paper-scale path and its goldens are unchanged.
  bool columnar = false;
  /// Run level-shift detection *online*: one OnlineLevelShift pair per
  /// monitored link consumes each segment's samples as rounds complete, so
  /// the expensive rank-CUSUM window scans are already done when the
  /// campaign ends and the final classification only replays the cheap
  /// assembly tail (against the columnar store's decode buffer when
  /// `columnar` is also set).  Reports are byte-identical to the offline
  /// path -- the online detector is equivalence-pinned in test_tslp.cc --
  /// and the snapshot-window classifications are unaffected.
  bool online = false;
  /// Logical-process worker budget for this campaign's simulator (see
  /// sim/lp.h): positive = that many LP threads, 0 = the IXP_SIM_THREADS
  /// env knob, unset knob = 1.  The TSLP probe loop is analytic (no
  /// events), so campaign output is byte-identical for every value --
  /// test_parallel_sim pins this; the fleet divides its --jobs budget by
  /// the resolved value so fleet-level and intra-sim parallelism compose
  /// under one thread budget.
  int sim_threads = 0;
};

struct SnapshotResult {
  TimePoint at;
  std::size_t discovered_links = 0;
  std::size_t peering_links = 0;
  std::size_t neighbors = 0;
  std::size_t peers = 0;
  std::size_t congested_links = 0;  ///< kCongested verdicts among live links
  bdrmap::BdrmapScore accuracy;     ///< vs ground truth at the snapshot
  /// §5.1 cross-check: fraction of inferred peering links whose far end
  /// geolocates to the IXP's city (geo DB + rDNS hints agreeing or weakly
  /// agreeing).
  double location_consistent = 0.0;
};

struct VpCampaignResult {
  std::string vp_name;
  std::vector<SnapshotResult> snapshots;
  /// One per monitored link.  With CampaignOptions::columnar the ms
  /// vectors are empty (metadata only); decode from `columns` instead.
  std::vector<tslp::LinkSeries> series;
  std::vector<tslp::LinkReport> reports;  ///< classification of each series
  /// Columnar sample store (null unless CampaignOptions::columnar); holds
  /// the encoded near/far columns of every monitored link.
  std::shared_ptr<series::SeriesStore> columns;
  std::uint64_t probes_sent = 0;          ///< Table 2's "total # traceroutes" role
  std::uint64_t probes_lost = 0;          ///< round probes sent but unanswered
  std::uint64_t record_routes = 0;        ///< Table 2's "total # record routes"
  std::uint64_t record_routes_symmetric = 0;
  std::uint64_t rounds_completed = 0;     ///< TSLP rounds over the whole campaign
  std::uint64_t bdrmap_runs = 0;          ///< initial discovery + membership re-runs
  // Fault/retry accounting (all zero when no fault plan is attached).
  std::uint64_t fault_events = 0;         ///< topology fault events that fired
  std::uint64_t probes_suppressed = 0;    ///< probes not sent (outages/bursts)
  std::uint64_t outage_rounds = 0;        ///< whole rounds lost to VP outages
  std::uint64_t stale_relearns = 0;       ///< responder-change re-learns
  std::uint64_t loss_relearns = 0;        ///< consecutive-loss re-learns

  /// Links with any level-shift episode of magnitude >= threshold_ms.
  [[nodiscard]] std::size_t potentially_congested(double threshold_ms) const;
  /// Of those, links whose far side also shows a recurring diurnal pattern.
  [[nodiscard]] std::size_t with_diurnal(double threshold_ms) const;
  /// Links classified congested (diurnal far side, clean near side).
  [[nodiscard]] std::size_t congested() const;
};

/// Runs the full campaign for one VP scenario.
VpCampaignResult run_campaign(ScenarioRuntime& rt, const VpSpec& spec,
                              const CampaignOptions& opt = {});

}  // namespace ixp::analysis
