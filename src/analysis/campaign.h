// End-to-end campaign driver for one vantage point.
//
// Reproduces the paper's measurement workflow (§4-§5):
//   1. harvest public data, run bdrmap-lite, derive the monitored link set;
//   2. probe both ends of every monitored link every 5 minutes with TSLP,
//      applying the world timeline (joins, departures, shut-offs, upgrades)
//      as simulated time advances, re-running bdrmap after membership
//      changes so newly-appeared links join the monitored set;
//   3. at each Table 2 snapshot date, record discovered/peering/neighbor/
//      peer counts plus the congestion status of the current links;
//   4. classify every monitored link's full series (level shifts at the
//      5 ms floor, diurnal pattern, near-side cleanliness) for Table 1.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/scenario.h"
#include "bdrmap/bdrmap.h"
#include "prober/tslp_driver.h"
#include "tslp/classifier.h"

namespace ixp::analysis {

/// Cumulative progress of a running campaign, reported at segment
/// boundaries (membership changes, Table 2 snapshots) and at completion.
struct CampaignProgress {
  TimePoint at{};                  ///< simulated time reached
  std::uint64_t rounds = 0;        ///< TSLP rounds completed so far
  std::uint64_t probes = 0;        ///< probes sent so far
  std::uint64_t bdrmap_runs = 0;   ///< border-mapping (re-)discoveries so far
  std::size_t monitored_links = 0;
  std::uint64_t fault_events = 0;  ///< topology faults fired so far
  std::uint64_t outage_rounds = 0; ///< rounds lost to VP outages so far
  std::uint64_t stale_relearns = 0;  ///< responder-change re-learns so far
  std::uint64_t loss_relearns = 0;   ///< consecutive-loss re-learns so far
  bool finished = false;
};

struct CampaignOptions {
  Duration round_interval = kMinute * 5;
  /// Override of the campaign window (0 = use the spec's window).  Benches
  /// shorten this to keep run times reasonable; EXPERIMENTS.md records the
  /// durations used.
  Duration duration_override = Duration(0);
  tslp::ClassifierOptions classifier;
  bool verbose = false;
  /// Invoked on the campaign's own thread at every segment boundary and
  /// once with finished=true.  The fleet driver (fleet.h) hooks this to
  /// render live per-VP status; must not touch the runtime.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Optional fault injector (not owned; keep it alive for the run).
  /// Obtain one from attach_fault_plan() so the timeline faults and the
  /// probe-level gates come from the same expanded plan.
  sim::FaultInjector* faults = nullptr;
};

struct SnapshotResult {
  TimePoint at;
  std::size_t discovered_links = 0;
  std::size_t peering_links = 0;
  std::size_t neighbors = 0;
  std::size_t peers = 0;
  std::size_t congested_links = 0;  ///< kCongested verdicts among live links
  bdrmap::BdrmapScore accuracy;     ///< vs ground truth at the snapshot
  /// §5.1 cross-check: fraction of inferred peering links whose far end
  /// geolocates to the IXP's city (geo DB + rDNS hints agreeing or weakly
  /// agreeing).
  double location_consistent = 0.0;
};

struct VpCampaignResult {
  std::string vp_name;
  std::vector<SnapshotResult> snapshots;
  std::vector<tslp::LinkSeries> series;   ///< one per monitored link
  std::vector<tslp::LinkReport> reports;  ///< classification of each series
  std::uint64_t probes_sent = 0;          ///< Table 2's "total # traceroutes" role
  std::uint64_t record_routes = 0;        ///< Table 2's "total # record routes"
  std::uint64_t record_routes_symmetric = 0;
  std::uint64_t rounds_completed = 0;     ///< TSLP rounds over the whole campaign
  std::uint64_t bdrmap_runs = 0;          ///< initial discovery + membership re-runs
  // Fault/retry accounting (all zero when no fault plan is attached).
  std::uint64_t fault_events = 0;         ///< topology fault events that fired
  std::uint64_t probes_suppressed = 0;    ///< probes not sent (outages/bursts)
  std::uint64_t outage_rounds = 0;        ///< whole rounds lost to VP outages
  std::uint64_t stale_relearns = 0;       ///< responder-change re-learns
  std::uint64_t loss_relearns = 0;        ///< consecutive-loss re-learns

  /// Links with any level-shift episode of magnitude >= threshold_ms.
  [[nodiscard]] std::size_t potentially_congested(double threshold_ms) const;
  /// Of those, links whose far side also shows a recurring diurnal pattern.
  [[nodiscard]] std::size_t with_diurnal(double threshold_ms) const;
  /// Links classified congested (diurnal far side, clean near side).
  [[nodiscard]] std::size_t congested() const;
};

/// Runs the full campaign for one VP scenario.
VpCampaignResult run_campaign(ScenarioRuntime& rt, const VpSpec& spec,
                              const CampaignOptions& opt = {});

}  // namespace ixp::analysis
