// Facility-aggregation detector: folds per-link disruption observations
// into facility-level verdicts, after "Detecting Network Disruptions At
// Colocation Facilities" (PAPERS.md).  The idea: a genuine facility-level
// event (power, cooling, a cut riser) takes down *every* link homed at one
// colocation facility at once, while independent per-link problems spread
// across facilities.  We therefore score each facility's disrupted-link
// count against a binomial null hypothesis — links fail independently at
// the substrate-wide background rate — and flag facilities whose
// concentration is too extreme to be chance.
//
// The background rate is estimated leave-one-out (from the links *outside*
// the facility under test, Laplace-smoothed), so a monitor-side event that
// disrupts every link everywhere (a VP outage) raises the null rate and
// scores as unconcentrated, while a single-facility event against an
// otherwise quiet substrate stays significant even on small topologies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ixp::analysis {

/// One monitored link's contribution: which facility it is homed at and
/// whether the campaign saw it disrupted (long all-missing gap, refused
/// series, ...).  Links with an empty facility are counted toward the
/// background rate but can never receive a facility verdict.
struct FacilityObservation {
  std::string facility;
  std::string link_key;
  bool disrupted = false;
};

struct FacilityDetectorOptions {
  /// A facility needs at least this many monitored links to be judged at
  /// all — one link carries no concentration information.
  std::size_t min_links = 2;
  /// And at least this many of them disrupted: a single disrupted link is
  /// a link problem, never a facility problem.
  std::size_t min_disrupted = 2;
  /// Binomial upper-tail threshold.  Calibrated against the smoothed
  /// leave-one-out null: a fully disrupted 2-link facility on an
  /// otherwise-quiet 10-link substrate scores ~8e-3, while a substrate-wide
  /// outage (null rate ~0.9) scores ~0.65 — so 1e-2 separates the two with
  /// an order of magnitude to spare on either side.
  double alpha = 1e-2;
};

/// Aggregate verdict for one facility.
struct FacilityVerdict {
  std::string facility;
  std::size_t links = 0;      ///< monitored links homed here
  std::size_t disrupted = 0;  ///< of which disrupted
  /// P(X >= disrupted | links, background rate): probability of seeing at
  /// least this concentration if links failed independently.
  double p_value = 1.0;
  bool disrupted_verdict = false;
};

/// Upper tail P(X >= k) of a Binomial(n, p); exposed for tests.
double binomial_upper_tail(std::size_t k, std::size_t n, double p);

/// Scores every facility appearing in `obs`.  Results are sorted most
/// suspicious first (verdicts, then ascending p-value, then name).
std::vector<FacilityVerdict> detect_facility_disruptions(
    const std::vector<FacilityObservation>& obs,
    const FacilityDetectorOptions& opt = {});

}  // namespace ixp::analysis
