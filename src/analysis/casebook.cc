#include "analysis/casebook.h"

#include <cmath>

namespace ixp::analysis {

const std::vector<CaseStudy>& casebook() {
  static const std::vector<CaseStudy> kCases = {
      {"GIXA-GHANATEL", "VP1",
       "The 100 Mb/s link carried transit for the Google caches hosted in the "
       "IXP's content network while GHANATEL's own clients used a 1 Gb/s "
       "peering link; demand exceeded the transit link's capacity on business "
       "days. GHANATEL later shut the transit off to force the IXP to pay, "
       "then used the link for peering until early October.",
       27.9, kHour * 20, /*sustained=*/true, /*weekday_heavier=*/true,
       /*expected_avg_loss=*/-1.0},
      {"GIXA-KNET", "VP1",
       "The operator did not believe the KNET port was congested; candidate "
       "causes are an overloaded KNET router generating ICMP slowly at peak "
       "times, or congestion on the link toward the GIXA content network. "
       "Average loss stayed at 0.1 %, so end users were likely unaffected.",
       17.5, kHour * 2 + kMinute * 14, /*sustained=*/true, /*weekday_heavier=*/false,
       /*expected_avg_loss=*/0.001},
      {"QCELL-NETPAGE", "VP4",
       "Huge demand from NETPAGE users for the Google caches (for which QCELL "
       "provides transit) saturated NETPAGE's 10 Mb/s SIXP port; after the "
       "28/04/2016 upgrade to 1 Gb/s the congestion disappeared.",
       // A_w note: the paper's 10.7 ms averages many partial level shifts on
       // the ramp; the fluid queue at 10 Mb/s is nearly binary, so our
       // measured magnitude sits near the 35 ms weekday spike.  check_case
       // therefore uses a wide magnitude band here and relies on dt_UD,
       // the weekday/weekend split, and the transient verdict.
       10.7, kHour * 6 + kMinute * 22, /*sustained=*/false, /*weekday_heavier=*/true,
       /*expected_avg_loss=*/-1.0,
       /*a_w_tolerance=*/2.6, /*dt_ud_tolerance=*/0.5},
  };
  return kCases;
}

const CaseStudy& case_ghanatel() { return casebook()[0]; }
const CaseStudy& case_knet() { return casebook()[1]; }
const CaseStudy& case_netpage() { return casebook()[2]; }

CaseCheck check_case(const CaseStudy& cs, const tslp::LinkReport& report) {
  CaseCheck out;
  out.verdict_congested =
      report.verdict == tslp::Verdict::kCongested || report.verdict == tslp::Verdict::kInconclusive;

  const double a_w = report.waveform.a_w_ms;
  if (std::isfinite(a_w) && cs.expected_a_w_ms > 0) {
    out.a_w_in_range = std::fabs(a_w - cs.expected_a_w_ms) <= cs.a_w_tolerance * cs.expected_a_w_ms;
  }
  const double dt = to_hours(report.waveform.dt_ud);
  const double expected_dt = to_hours(cs.expected_dt_ud);
  if (dt > 0 && expected_dt > 0) {
    out.dt_ud_in_range = std::fabs(dt - expected_dt) <= cs.dt_ud_tolerance * expected_dt;
  }
  out.persistence_matches =
      cs.sustained ? report.persistence == tslp::Persistence::kSustained
                   : report.persistence == tslp::Persistence::kTransient;
  out.weekday_pattern_matches =
      cs.weekday_heavier
          ? report.waveform.weekday_peak_ms > report.waveform.weekend_peak_ms
          : report.waveform.weekday_peak_ms <= 1.5 * report.waveform.weekend_peak_ms;
  return out;
}

}  // namespace ixp::analysis
