#include "analysis/benchmarks.h"

#include <sys/resource.h>

#include <chrono>
#include <ostream>
#include <stdexcept>

#include <bit>
#include <cmath>

#include <memory>
#include <thread>

#include "analysis/africa.h"
#include "analysis/campaign.h"
#include "analysis/fleet.h"
#include "analysis/substrate.h"
#include "obs/metrics.h"
#include "sim/lp.h"
#include "sim/network.h"
#include "tslp/classifier.h"
#include "tslp/engine.h"
#include "tslp/online.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ixp::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// ---------------------------------------------------------------------------
// probe_fabric: the TSLP inner loop in isolation.
//
// VP host -> border router -> IXP fabric -> M member routers, each with a
// stub network behind it.  Alternating probes: a TTL-limited probe that
// expires at the member router after crossing the fabric (the canonical
// TSLP far-end probe) and a full-TTL echo to the member's fabric address.
// Links carry no cross traffic, so the walk itself -- hop resolution, FIB
// lookups, queue queries -- is all that is measured.

struct FabricWorld {
  sim::Network net;
  sim::NodeId vp = sim::kInvalidNode;
  std::vector<net::Ipv4Address> fabric_addrs;  ///< member fabric addresses
  std::vector<net::Ipv4Address> far_addrs;     ///< stub addresses behind members
  net::Ipv4Address vp_addr;
};

void build_fabric_world(FabricWorld& w, int members, std::uint64_t seed) {
  w.net.seed(seed);
  auto& host = w.net.add_host("vp");
  auto& border = w.net.add_router("border", {});
  auto& fabric = w.net.add_switch("fabric");

  const auto lan_subnet = *net::Ipv4Prefix::parse("10.0.0.0/30");
  const auto peering = *net::Ipv4Prefix::parse("196.60.0.0/24");
  w.vp_addr = net::Ipv4Address(10, 0, 0, 2);
  const auto border_lan = net::Ipv4Address(10, 0, 0, 1);
  const auto border_fab = net::Ipv4Address(196, 60, 0, 1);

  sim::LinkConfig lan;
  lan.capacity_bps = 1e9;
  lan.prop_delay = milliseconds(0.1);
  w.net.connect(host.id(), w.vp_addr, border.id(), border_lan, lan, lan_subnet);
  host.set_gateway(0, border_lan);
  w.net.connect(border.id(), border_fab, fabric.id(), {}, lan, peering);
  border.add_route(lan_subnet, {0, {}});
  border.add_route(peering, {1, {}});

  w.vp = host.id();
  for (int m = 0; m < members; ++m) {
    auto& member = w.net.add_router(strformat("member%d", m), {});
    const auto fab_addr = net::Ipv4Address(196, 60, 0, static_cast<std::uint8_t>(10 + m));
    w.net.connect(member.id(), fab_addr, fabric.id(), {}, lan, peering);
    const auto far_subnet =
        *net::Ipv4Prefix::parse(strformat("10.%d.0.0/30", m + 1));
    const auto member_far = net::Ipv4Address(10, static_cast<std::uint8_t>(m + 1), 0, 1);
    const auto stub_addr = net::Ipv4Address(10, static_cast<std::uint8_t>(m + 1), 0, 2);
    auto& stub = w.net.add_host(strformat("stub%d", m));
    w.net.connect(member.id(), member_far, stub.id(), stub_addr, lan, far_subnet);
    stub.set_gateway(0, member_far);
    member.add_route(peering, {0, {}});
    member.add_route(far_subnet, {1, {}});
    member.add_route(lan_subnet, {0, border_fab});
    border.add_route(far_subnet, {1, fab_addr});
    w.fabric_addrs.push_back(fab_addr);
    w.far_addrs.push_back(stub_addr);
  }
}

net::Packet make_probe(FabricWorld& w, net::Ipv4Address dst, std::uint8_t ttl,
                       std::uint16_t seq) {
  net::Packet p;
  p.src = w.vp_addr;
  p.dst = dst;
  p.ttl = ttl;
  p.icmp_type = net::IcmpType::kEchoRequest;
  p.ident = 0x8001;
  p.seq = seq;
  p.sent_at = w.net.simulator().now();
  return p;
}

BenchMeasurement bench_probe_fabric(const BenchOptions& opt, std::ostream* log) {
  const int members = opt.smoke ? 8 : 24;
  const std::uint64_t probes_per_pass = opt.smoke ? 20'000 : 200'000;
  FabricWorld w;
  build_fabric_world(w, members, opt.seed);

  BenchMeasurement m;
  m.name = "probe_fabric";
  m.unit = "probes_per_sec";
  m.items = probes_per_pass;

  const int passes = 1 + opt.repeats;
  auto& sim = w.net.simulator();
  for (int pass = 0; pass < passes; ++pass) {
    const std::uint64_t hops_before = w.net.hops_walked;
    std::uint64_t answered = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < probes_per_pass; ++i) {
      const std::size_t member = static_cast<std::size_t>(i % members);
      // Even probes: TTL expiry at the member router, reached across the
      // fabric.  Odd probes: full-TTL echo to the member's fabric address.
      const bool expiry = (i & 1) == 0;
      const auto pkt = expiry
                           ? make_probe(w, w.far_addrs[member], 2, static_cast<std::uint16_t>(i))
                           : make_probe(w, w.fabric_addrs[member], 64, static_cast<std::uint16_t>(i));
      const auto res = w.net.probe(w.vp, pkt);
      answered += res.answered ? 1 : 0;
      // Pace the probes in simulated time, as the real prober's rate limit
      // does: probe bytes occupy queue buffers and must drain between sends.
      sim.advance_to(sim.now() + milliseconds(1.0));
    }
    const double sec = elapsed_seconds(t0, Clock::now());
    const std::uint64_t hops = w.net.hops_walked - hops_before;
    const double per_sec = static_cast<double>(probes_per_pass) / sec;
    const double ns_per_hop = hops > 0 ? sec * 1e9 / static_cast<double>(hops) : 0.0;
    m.wall_seconds += sec;
    m.hops = hops;
    if (pass == 0) {
      m.cold_per_sec = per_sec;
      m.cold_ns_per_hop = ns_per_hop;
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    } else if (per_sec > m.warm_per_sec) {
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    }
    if (log && pass == 0 && answered != probes_per_pass) {
      *log << strformat("  probe_fabric: %llu/%llu probes answered (expected all)\n",
                        static_cast<unsigned long long>(answered),
                        static_cast<unsigned long long>(probes_per_pass));
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// event_loop: event-mode echoes through the fabric topology.  Every ping
// fans into a cascade of scheduled events (transmit hops, switch latency,
// ICMP generation, the reply's hops), so this measures the Simulator's
// scheduling throughput with realistic packet-carrying closures.

BenchMeasurement bench_event_loop(const BenchOptions& opt, std::ostream*) {
  const std::uint64_t pings = opt.smoke ? 5'000 : 50'000;
  FabricWorld w;
  build_fabric_world(w, opt.smoke ? 8 : 24, opt.seed + 1);
  auto& host = static_cast<sim::Host&>(w.net.node(w.vp));
  auto& sim = w.net.simulator();

  BenchMeasurement m;
  m.name = "event_loop";
  m.unit = "events_per_sec";

  const int passes = 1 + opt.repeats;
  for (int pass = 0; pass < passes; ++pass) {
    const std::uint64_t executed_before = sim.executed();
    const std::uint64_t hops_before = w.net.hops_walked;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < pings; ++i) {
      auto pkt = make_probe(w, w.fabric_addrs[i % w.fabric_addrs.size()], 64,
                            static_cast<std::uint16_t>(i));
      host.send(w.net, pkt);
      sim.run();
    }
    const double sec = elapsed_seconds(t0, Clock::now());
    const std::uint64_t events = sim.executed() - executed_before;
    m.items = events;
    m.hops = w.net.hops_walked - hops_before;
    const double per_sec = static_cast<double>(events) / sec;
    const double ns_per_hop =
        m.hops > 0 ? sec * 1e9 / static_cast<double>(m.hops) : 0.0;
    m.wall_seconds += sec;
    if (pass == 0) {
      m.cold_per_sec = per_sec;
      m.cold_ns_per_hop = ns_per_hop;
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    } else if (per_sec > m.warm_per_sec) {
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// campaign_six_vp: the acceptance workload.  All six paper campaigns at the
// paper's 5-minute cadence, serially (jobs = 1), over a shortened window.
// probes/s here is what the ">= 2x vs. the previous PR" criterion tracks.

BenchMeasurement bench_campaign(const BenchOptions& opt, std::ostream* log) {
  const auto specs = make_all_vps();
  FleetOptions fopt;
  fopt.jobs = 1;
  fopt.campaign.round_interval = kMinute * 5;
  fopt.campaign.duration_override = opt.smoke ? kDay : kDay * 7;
  fopt.collect_metrics = opt.metrics;
  const auto fleet = run_fleet(specs, fopt);

  // Summed from the campaign results, not the metrics views: with
  // collect_metrics off the registries are empty by design.
  std::uint64_t probes = 0;
  std::uint64_t rounds = 0;
  for (const auto& r : fleet.results) {
    probes += r.probes_sent;
    rounds += r.rounds_completed;
  }
  BenchMeasurement m;
  m.name = "campaign_six_vp";
  m.unit = "probes_per_sec";
  m.items = probes;
  m.hops = rounds;  // rounds, not link crossings: fleet wall includes analysis
  m.wall_seconds = fleet.wall_seconds;
  m.cold_per_sec = static_cast<double>(probes) / fleet.wall_seconds;
  m.warm_per_sec = m.cold_per_sec;  // one pass: a campaign is its own warmup
  if (log) {
    *log << strformat("  campaign_six_vp: %llu probes over %llu rounds\n",
                      static_cast<unsigned long long>(probes),
                      static_cast<unsigned long long>(rounds));
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// lp_islands: the conservative LP scheduler vs the serial event loop over
// the island-chain world (builder shared with tests/test_parallel_sim.cc).

namespace {

std::uint8_t oct(int v) { return static_cast<std::uint8_t>(v); }

}  // namespace

void build_island_world(IslandWorld& w, int islands, int members) {
  w.islands = islands;
  w.members = members;
  w.vps.clear();
  w.vp_addrs.clear();
  w.far_addrs.clear();
  w.net.seed(0x15a5eedULL);

  sim::LinkConfig lan;
  lan.capacity_bps = 1e9;
  lan.prop_delay = milliseconds(0.1);  // sub-threshold: stays inside the island
  sim::LinkConfig haul;
  haul.capacity_bps = 1e9;
  haul.prop_delay = milliseconds(10.0);  // the cut links; lookahead = 10 ms

  std::vector<sim::Router*> borders;
  for (int i = 0; i < islands; ++i) {
    auto& vp = w.net.add_host(strformat("vp%d", i));
    auto& border = w.net.add_router(strformat("border%d", i), {});
    auto& fabric = w.net.add_switch(strformat("fabric%d", i));
    const auto lan_subnet = *net::Ipv4Prefix::parse(strformat("172.16.%d.0/30", i));
    const auto peering = *net::Ipv4Prefix::parse(strformat("196.60.%d.0/24", i));
    const auto vp_addr = net::Ipv4Address(172, 16, oct(i), 2);
    const auto border_lan = net::Ipv4Address(172, 16, oct(i), 1);
    const auto border_fab = net::Ipv4Address(196, 60, oct(i), 1);
    w.net.connect(vp.id(), vp_addr, border.id(), border_lan, lan, lan_subnet);
    vp.set_gateway(0, border_lan);
    w.net.connect(border.id(), border_fab, fabric.id(), {}, lan, peering);
    border.add_route(lan_subnet, {0, {}});
    border.add_route(peering, {1, {}});

    std::vector<net::Ipv4Address> fars;
    for (int m = 0; m < members; ++m) {
      auto& member = w.net.add_router(strformat("r%d_%d", i, m), {});
      const auto fab_addr = net::Ipv4Address(196, 60, oct(i), oct(10 + m));
      w.net.connect(member.id(), fab_addr, fabric.id(), {}, lan, peering);
      const auto far_subnet = *net::Ipv4Prefix::parse(strformat("10.%d.%d.0/30", i + 1, m));
      const auto member_far = net::Ipv4Address(10, oct(i + 1), oct(m), 1);
      const auto stub_addr = net::Ipv4Address(10, oct(i + 1), oct(m), 2);
      auto& stub = w.net.add_host(strformat("h%d_%d", i, m));
      w.net.connect(member.id(), member_far, stub.id(), stub_addr, lan, far_subnet);
      stub.set_gateway(0, member_far);
      member.add_route(peering, {0, {}});
      member.add_route(far_subnet, {1, {}});
      // Everything non-local funnels through the border; the member's own
      // /30 wins by prefix length.
      member.add_route(*net::Ipv4Prefix::parse("10.0.0.0/8"), {0, border_fab});
      member.add_route(*net::Ipv4Prefix::parse("172.16.0.0/12"), {0, border_fab});
      border.add_route(far_subnet, {1, fab_addr});
      fars.push_back(stub_addr);
    }
    borders.push_back(&border);
    w.vps.push_back(vp.id());
    w.vp_addrs.push_back(vp_addr);
    w.far_addrs.push_back(std::move(fars));
  }

  // Long-haul chain: border i <-> border i+1.  Link c's subnet is
  // 192.168.c.0/30 with the left border at .1 and the right at .2.
  for (int i = 0; i + 1 < islands; ++i) {
    const auto chain_subnet = *net::Ipv4Prefix::parse(strformat("192.168.%d.0/30", i));
    w.net.connect(borders[static_cast<std::size_t>(i)]->id(),
                  net::Ipv4Address(192, 168, oct(i), 1),
                  borders[static_cast<std::size_t>(i + 1)]->id(),
                  net::Ipv4Address(192, 168, oct(i), 2), haul, chain_subnet);
  }

  // Inter-island aggregates along the chain.  Border i's interfaces are
  // 0 = VP LAN, 1 = fabric, then the chain ports in link-creation order:
  // the left chain port (from link i-1, when i > 0) lands at 2 and the
  // right one (link i) at 3 -- or at 2 for the leftmost border.
  for (int i = 0; i < islands; ++i) {
    const int left_if = 2;
    const int right_if = i == 0 ? 2 : 3;
    for (int j = 0; j < islands; ++j) {
      if (j == i) continue;
      const bool go_right = j > i;
      const int ifx = go_right ? right_if : left_if;
      const auto nh = go_right ? net::Ipv4Address(192, 168, oct(i), 2)
                               : net::Ipv4Address(192, 168, oct(i - 1), 1);
      borders[static_cast<std::size_t>(i)]->add_route(
          *net::Ipv4Prefix::parse(strformat("10.%d.0.0/16", j + 1)), {ifx, nh});
      borders[static_cast<std::size_t>(i)]->add_route(
          *net::Ipv4Prefix::parse(strformat("172.16.%d.0/30", j)), {ifx, nh});
    }
  }
}

IslandRunResult run_island_workload(IslandWorld& w, int pings_per_island, int threads,
                                    obs::Registry* metrics) {
  IslandRunResult res;
  res.rtt_ns.assign(w.vps.size(), {});
  // One RTT sink per island VP.  An island belongs to exactly one LP and
  // an LP runs on one thread per window, so the pushes are single-writer
  // in both modes and arrive in event order.
  for (std::size_t i = 0; i < w.vps.size(); ++i) {
    auto& host = static_cast<sim::Host&>(w.net.node(w.vps[i]));
    auto* sink = &res.rtt_ns[i];
    host.set_rx_callback([sink](const net::Packet& pkt, TimePoint at) {
      sink->push_back((at - pkt.sent_at).count());
    });
  }
  const std::uint64_t fwd0 = w.net.packets_forwarded;

  std::unique_ptr<sim::LpScheduler> sched;
  if (threads >= 1) sched = std::make_unique<sim::LpScheduler>(w.net, threads);

  // Staggered sends: ping p of island i departs at p*gap + i*skew, which
  // is unique over all (island, ping) pairs (skew * islands < gap), so no
  // two cross-LP packets can ever tie on both arrival and send instants.
  const Duration gap = std::chrono::microseconds(200);
  const Duration skew = std::chrono::microseconds(1);
  TimePoint last{};
  for (int p = 0; p < pings_per_island; ++p) {
    for (int i = 0; i < w.islands; ++i) {
      const TimePoint at = TimePoint{} + gap * p + skew * i;
      // Even pings stay intra-island; odd pings target the next island
      // over the chain.  The last island has no right neighbor and stays
      // local -- wrapping to island 0 would send its traffic across the
      // whole chain, a pipeline whose one-hop-per-window drain serializes
      // the run's tail.
      const int tgt = (p % 2 == 0 || i + 1 >= w.islands) ? i : i + 1;
      const auto dst = w.far_addrs[static_cast<std::size_t>(tgt)]
                                  [static_cast<std::size_t>(p % w.members)];
      const sim::NodeId vp = w.vps[static_cast<std::size_t>(i)];
      const auto src = w.vp_addrs[static_cast<std::size_t>(i)];
      sim::Network* netp = &w.net;
      w.net.lp_schedule(vp, at, [netp, vp, src, dst, p]() {
        net::Packet pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.ttl = 64;
        pkt.icmp_type = net::IcmpType::kEchoRequest;
        pkt.ident = 0x7a11;
        pkt.seq = static_cast<std::uint16_t>(p);
        pkt.sent_at = netp->active_sim().now();
        static_cast<sim::Host&>(netp->node(vp)).send(*netp, pkt);
      });
      last = at;
    }
  }
  // Wrap pings traverse up to the whole chain (~2 * islands * 10 ms round
  // trip), so give the drain a generous horizon past the last send.
  const TimePoint horizon = last + kSecond * 3;

  const auto t0 = Clock::now();
  if (sched) {
    sched->run_until(horizon);
    res.wall_seconds = elapsed_seconds(t0, Clock::now());
    res.lps = sched->partition().count;
    res.lp = sched->stats();
    res.events = res.lp.total_events();
    res.scheduled = res.lp.total_scheduled();
    if (metrics != nullptr) sim::publish_lp_stats(*metrics, res.lp);
    sched.reset();  // flush counters + detach before reading the totals
  } else {
    auto& s = w.net.simulator();
    const std::uint64_t e0 = s.executed();
    s.run_until(horizon);
    res.wall_seconds = elapsed_seconds(t0, Clock::now());
    res.events = s.executed() - e0;
    res.scheduled = s.scheduled();
  }
  res.forwarded = w.net.packets_forwarded - fwd0;
  return res;
}

namespace {

BenchMeasurement bench_lp_islands(const BenchOptions& opt, std::ostream* log,
                                  LpBenchRecord* lp) {
  const int islands = opt.smoke ? 6 : 50;
  const int members = opt.smoke ? 8 : 16;
  const int pings = opt.smoke ? 250 : 1500;
  // Default to the committed-record configuration (8 workers) unless the
  // flag or the IXP_SIM_THREADS knob says otherwise.
  int threads = sim::resolve_sim_threads(opt.sim_threads);
  if (opt.sim_threads == 0 && threads <= 1) threads = 8;

  IslandWorld serial_world;
  build_island_world(serial_world, islands, members);
  const auto serial = run_island_workload(serial_world, pings, /*threads=*/0);

  IslandWorld lp_world;
  build_island_world(lp_world, islands, members);
  const auto par = run_island_workload(lp_world, pings, threads);

  lp->present = true;
  lp->spec = opt.smoke ? "paper6" : "regional50";
  lp->threads = threads;
  lp->lps = par.lps;
  lp->host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  lp->serial_wall_seconds = serial.wall_seconds;
  lp->lp_wall_seconds = par.wall_seconds;
  lp->speedup = par.wall_seconds > 0 ? serial.wall_seconds / par.wall_seconds : 0.0;
  lp->identical = serial.rtt_ns == par.rtt_ns && serial.events == par.events &&
                  serial.forwarded == par.forwarded;
  lp->windows = par.lp.windows;
  lp->cross_messages = par.lp.cross_messages;
  lp->events = serial.events;
  if (log) {
    *log << strformat(
        "  lp_islands: %d islands x %d members, %d LPs / %d threads, "
        "%llu events, %llu windows, %llu cross msgs, speedup %.2fx, %s\n",
        islands, members, par.lps, threads,
        static_cast<unsigned long long>(lp->events),
        static_cast<unsigned long long>(lp->windows),
        static_cast<unsigned long long>(lp->cross_messages), lp->speedup,
        lp->identical ? "identical" : "DIVERGENT");
  }

  BenchMeasurement m;
  m.name = "lp_islands";
  m.unit = "events_per_sec";
  m.items = serial.events;
  m.wall_seconds = serial.wall_seconds + par.wall_seconds;
  m.cold_per_sec = serial.wall_seconds > 0
                       ? static_cast<double>(serial.events) / serial.wall_seconds
                       : 0.0;  // serial baseline
  m.warm_per_sec = par.wall_seconds > 0
                       ? static_cast<double>(par.events) / par.wall_seconds
                       : 0.0;  // LP run
  return m;
}

}  // namespace

BenchReport run_sim_benchmarks(const BenchOptions& opt, std::ostream* log) {
  BenchReport rep;
  rep.workload = opt.smoke ? "smoke" : "full";
  rep.seed = opt.seed;

  struct Entry {
    const char* name;
    BenchMeasurement (*fn)(const BenchOptions&, std::ostream*);
  };
  const Entry entries[] = {
      {"probe_fabric", &bench_probe_fabric},
      {"event_loop", &bench_event_loop},
      {"campaign_six_vp", &bench_campaign},
  };
  for (const auto& e : entries) {
    if (!opt.only.empty() && opt.only != e.name) continue;
    if (log) *log << "running " << e.name << " ...\n";
    rep.benches.push_back(e.fn(opt, log));
    if (log) {
      const auto& m = rep.benches.back();
      *log << strformat("  %-16s cold %12.0f /s   warm %12.0f /s   (%s)\n", m.name.c_str(),
                        m.cold_per_sec, m.warm_per_sec, m.unit.c_str());
      if (m.cold_ns_per_hop > 0) {
        *log << strformat("  %-16s cold %10.1f ns/hop warm %10.1f ns/hop\n", "",
                          m.cold_ns_per_hop, m.warm_ns_per_hop);
      }
    }
  }
  if (opt.only.empty() || opt.only == "lp_islands") {
    if (log) *log << "running lp_islands ...\n";
    rep.benches.push_back(bench_lp_islands(opt, log, &rep.lp));
    if (log) {
      const auto& m = rep.benches.back();
      *log << strformat("  %-16s serial %10.0f /s   LP %12.0f /s   (%s)\n", m.name.c_str(),
                        m.cold_per_sec, m.warm_per_sec, m.unit.c_str());
    }
  }
  return rep;
}

void write_bench_json(std::ostream& out, const BenchReport& rep) {
  out << "{\n";
  out << "  \"schema\": \"afixp-bench-sim/2\",\n";
  out << strformat("  \"workload\": \"%s\",\n", rep.workload.c_str());
  out << strformat("  \"seed\": %llu,\n", static_cast<unsigned long long>(rep.seed));
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rep.benches.size(); ++i) {
    const auto& m = rep.benches[i];
    out << "    {\n";
    out << strformat("      \"name\": \"%s\",\n", m.name.c_str());
    out << strformat("      \"unit\": \"%s\",\n", m.unit.c_str());
    out << strformat("      \"items_per_pass\": %llu,\n",
                     static_cast<unsigned long long>(m.items));
    out << strformat("      \"hops_per_pass\": %llu,\n", static_cast<unsigned long long>(m.hops));
    out << strformat("      \"cold_per_sec\": %.1f,\n", m.cold_per_sec);
    out << strformat("      \"warm_per_sec\": %.1f,\n", m.warm_per_sec);
    out << strformat("      \"cold_ns_per_hop\": %.2f,\n", m.cold_ns_per_hop);
    out << strformat("      \"warm_ns_per_hop\": %.2f,\n", m.warm_ns_per_hop);
    out << strformat("      \"wall_seconds\": %.3f\n", m.wall_seconds);
    out << (i + 1 < rep.benches.size() ? "    },\n" : "    }\n");
  }
  if (!rep.lp.present) {
    out << "  ]\n";
    out << "}\n";
    return;
  }
  out << "  ],\n";
  out << "  \"lp\": {\n";
  out << strformat("    \"spec\": \"%s\",\n", rep.lp.spec.c_str());
  out << strformat("    \"threads\": %d,\n", rep.lp.threads);
  out << strformat("    \"lps\": %d,\n", rep.lp.lps);
  out << strformat("    \"host_cpus\": %d,\n", rep.lp.host_cpus);
  out << strformat("    \"serial_wall_seconds\": %.3f,\n", rep.lp.serial_wall_seconds);
  out << strformat("    \"lp_wall_seconds\": %.3f,\n", rep.lp.lp_wall_seconds);
  out << strformat("    \"speedup\": %.2f,\n", rep.lp.speedup);
  out << strformat("    \"identical\": %s,\n", rep.lp.identical ? "true" : "false");
  out << strformat("    \"windows\": %llu,\n", static_cast<unsigned long long>(rep.lp.windows));
  out << strformat("    \"cross_messages\": %llu,\n",
                   static_cast<unsigned long long>(rep.lp.cross_messages));
  out << strformat("    \"events\": %llu\n", static_cast<unsigned long long>(rep.lp.events));
  out << "  }\n";
  out << "}\n";
}

SubstrateBenchReport run_substrate_benchmark(const SubstrateBenchOptions& opt,
                                             std::ostream* log) {
  topo::TopoSpec spec;
  if (opt.smoke) {
    // CI size: a handful of small exchanges over two days.
    spec = *topo::topo_spec_preset("regional50");
    spec.name = "smoke";
    spec.ixps = 6;
    spec.days = 2;
    spec.members_max = 40;
  } else {
    const auto preset = topo::topo_spec_preset(opt.spec);
    if (!preset) {
      throw std::runtime_error("unknown topology-spec preset: " + opt.spec);
    }
    spec = *preset;
  }
  auto rep = run_substrate_benchmark(spec, opt, log);
  rep.workload = opt.smoke ? "smoke" : "full";
  return rep;
}

SubstrateBenchReport run_substrate_benchmark(const topo::TopoSpec& spec_in,
                                             const SubstrateBenchOptions& opt,
                                             std::ostream* log) {
  topo::TopoSpec spec = spec_in;
  if (opt.seed != 0) spec.seed = opt.seed;

  const auto vps = generate_substrate(spec);
  const auto summary = summarize_substrate(spec, vps);
  if (log) {
    *log << strformat("substrate %s: %d IXPs, %d members, %llu monitored links\n",
                      spec.name.c_str(), summary.ixps, summary.members,
                      static_cast<unsigned long long>(summary.monitored_links()));
  }

  FleetOptions fopt;
  fopt.jobs = opt.jobs;
  fopt.campaign.round_interval = opt.round_interval;
  fopt.campaign.duration_override = opt.duration_override;
  fopt.campaign.columnar = true;  // the whole point: bounded-RSS storage
  fopt.collect_metrics = false;   // measure the instrumentation-free path
  const auto fleet = run_fleet(vps, fopt);

  SubstrateBenchReport rep;
  rep.workload = opt.smoke ? "smoke" : "full";
  rep.spec = spec.name;
  rep.seed = spec.seed;
  rep.jobs = fleet.jobs_used;
  rep.ixps = vps.size();
  rep.wall_seconds = fleet.wall_seconds;
  for (const auto& r : fleet.results) {
    rep.links += r.series.size();
    rep.rounds += r.rounds_completed;
    rep.probes += r.probes_sent;
    if (r.columns != nullptr) {
      rep.samples += r.columns->samples_total();
      rep.resident_bytes += r.columns->resident_bytes();
      rep.raw_bytes += r.columns->raw_bytes();
    }
  }
  // One link-round = one monitored link advanced one probing round; every
  // link-round stores one near and one far sample, so samples/2 counts
  // them exactly even though campaigns monitor different link sets.
  const double link_rounds = static_cast<double>(rep.samples) / 2.0;
  rep.link_rounds_per_sec = rep.wall_seconds > 0 ? link_rounds / rep.wall_seconds : 0.0;
  rep.probes_per_sec =
      rep.wall_seconds > 0 ? static_cast<double>(rep.probes) / rep.wall_seconds : 0.0;
  rep.bytes_per_link =
      rep.links > 0 ? static_cast<double>(rep.resident_bytes) / static_cast<double>(rep.links)
                    : 0.0;
  rep.raw_bytes_per_link =
      rep.links > 0 ? static_cast<double>(rep.raw_bytes) / static_cast<double>(rep.links) : 0.0;
  rep.compression_ratio =
      rep.resident_bytes > 0
          ? static_cast<double>(rep.raw_bytes) / static_cast<double>(rep.resident_bytes)
          : 0.0;
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) rep.peak_rss_kb = ru.ru_maxrss;
  if (log) {
    *log << strformat(
        "  %llu links, %.0f link-rounds/s, %.1f B/link encoded (%.0fx vs raw), "
        "peak RSS %ld MB, %.1fs wall (%d jobs)\n",
        static_cast<unsigned long long>(rep.links), rep.link_rounds_per_sec,
        rep.bytes_per_link, rep.compression_ratio, rep.peak_rss_kb / 1024, rep.wall_seconds,
        rep.jobs);
  }
  return rep;
}

namespace {

// ---------------------------------------------------------------------------
// TSLP statistics benchmark.
//
// The corpus is synthetic but sized from the same topology-spec presets
// the substrate benchmark runs: monitored-link count from the generated
// substrate, samples from the spec's campaign length at the 5-minute
// cadence, behaviour mix (congested/noisy fractions) from the spec's
// knobs.  Generating series directly keeps the harness measuring the
// statistics path alone -- no simulator time in the denominator.

/// One synthetic link: clean near side, far side optionally carrying a
/// daily congestion plateau, heavy-tailed ICMP outliers, random unanswered
/// rounds, and occasional maintenance gap runs on both sides.
tslp::LinkSeries make_tslp_link(const topo::TopoSpec& spec, std::uint64_t rounds,
                                std::size_t link_index) {
  Rng rng(spec.seed ^ (0x9e3779b97f4a7c15ULL * (link_index + 1)));
  const bool congested = rng.chance(spec.congested_fraction);
  const bool noisy = !congested && rng.chance(spec.noise_fraction);
  const double base = rng.uniform(1.5, 45.0);
  const double outlier_rate = noisy ? 0.15 : 0.01;
  const double magnitude = rng.uniform(12.0, 28.0);
  const double onset_hour = rng.uniform(11.0, 16.0);
  const double width_hours = spec.congested_dtud_hours;

  tslp::LinkSeries ls;
  ls.key = strformat("bench-link-%zu", link_index);
  ls.near_rtt.interval = kMinute * 5;
  ls.far_rtt.interval = kMinute * 5;
  const auto spd = static_cast<std::uint64_t>(kDay.count() / (kMinute * 5).count());
  ls.near_rtt.ms.reserve(rounds);
  ls.far_rtt.ms.reserve(rounds);
  for (std::uint64_t t = 0; t < rounds; ++t) {
    const double hour = 24.0 * static_cast<double>(t % spd) / static_cast<double>(spd);
    if (rng.chance(0.015)) {  // unanswered round: both probes lost
      ls.near_rtt.ms.push_back(tslp::kMissing);
      ls.far_rtt.ms.push_back(tslp::kMissing);
      continue;
    }
    double far = base + 0.3 * std::fabs(rng.normal());
    if (congested && hour >= onset_hour && hour < onset_hour + width_hours) far += magnitude;
    if (rng.chance(outlier_rate)) far += rng.pareto(1.5, 30.0);  // slow ICMP path
    double near = 0.3 + 0.1 * std::fabs(rng.normal());
    if (rng.chance(0.01)) near += rng.pareto(1.5, 10.0);
    ls.near_rtt.ms.push_back(near);
    ls.far_rtt.ms.push_back(far);
  }
  // Maintenance outages: whole-link gap runs long enough to become
  // explicit SeriesGap markers (gap_min_run defaults to 6).
  const auto outages = 1 + rounds / (spd * 14);
  for (std::uint64_t o = 0; o < outages; ++o) {
    const auto len = static_cast<std::uint64_t>(rng.uniform_int(6, 40));
    const auto at = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(rounds > len ? rounds - len : 0)));
    for (std::uint64_t k = at; k < std::min(rounds, at + len); ++k) {
      ls.near_rtt.ms[k] = tslp::kMissing;
      ls.far_rtt.ms[k] = tslp::kMissing;
    }
  }
  return ls;
}

std::vector<tslp::LinkSeries> make_tslp_corpus(const topo::TopoSpec& spec, std::uint64_t rounds,
                                               std::uint64_t links) {
  std::vector<tslp::LinkSeries> out;
  out.reserve(links);
  for (std::uint64_t i = 0; i < links; ++i) {
    out.push_back(make_tslp_link(spec, rounds, static_cast<std::size_t>(i)));
  }
  return out;
}

void fingerprint_bits(std::string& out, double v) {
  out += strformat("%016llx,",
                   static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
}

void fingerprint_shifts(std::string& out, const tslp::LevelShiftResult& r) {
  fingerprint_bits(out, r.baseline_ms);
  fingerprint_bits(out, r.coverage);
  out += strformat("ref%d;raw%zu;w%zu/%zu/%zu;", r.refused_low_coverage ? 1 : 0,
                   r.raw_episode_count, r.windows_scanned, r.windows_skipped_dark,
                   r.windows_skipped_quiet);
  for (const auto& g : r.gaps) out += strformat("g%zu+%zu;", g.begin, g.end);
  for (const auto& e : r.episodes) {
    out += strformat("e%zu+%zu:", e.begin, e.end);
    fingerprint_bits(out, e.magnitude_ms);
    fingerprint_bits(out, e.p_value);
  }
}

/// Every field a consumer can observe, bit-exact; two reports with equal
/// fingerprints are interchangeable.
std::string fingerprint_report(const tslp::LinkReport& r) {
  std::string out;
  out += strformat("v%d;p%d;nc%d;diurnal%d/%d/%d;", static_cast<int>(r.verdict),
                   static_cast<int>(r.persistence), r.near_clean ? 1 : 0,
                   r.diurnal.recurring ? 1 : 0, r.diurnal.elevated_days, r.diurnal.days_with_data);
  fingerprint_bits(out, r.diurnal.acf_day);
  fingerprint_bits(out, r.diurnal.elevated_day_frac);
  fingerprint_bits(out, r.waveform.a_w_ms);
  fingerprint_bits(out, r.waveform.weekday_peak_ms);
  fingerprint_bits(out, r.waveform.weekend_peak_ms);
  out += strformat("ud%lld;per%lld;", static_cast<long long>(r.waveform.dt_ud.count()),
                   static_cast<long long>(r.waveform.period.count()));
  out += "far:";
  fingerprint_shifts(out, r.far_shifts);
  out += "near:";
  fingerprint_shifts(out, r.near_shifts);
  return out;
}

std::vector<tslp::LinkReport> tslp_run_scalar(const std::vector<tslp::LinkSeries>& corpus,
                                              const tslp::ClassifierOptions& copt) {
  auto opt = copt;
  opt.level_shift.engine = tslp::DetectorEngine::kLegacy;
  const tslp::CongestionClassifier classifier(opt);
  std::vector<tslp::LinkReport> out;
  out.reserve(corpus.size());
  for (const auto& ls : corpus) out.push_back(classifier.classify(ls));
  return out;
}

std::vector<tslp::LinkReport> tslp_run_batch(const std::vector<tslp::LinkSeries>& corpus,
                                             const tslp::ClassifierOptions& copt) {
  auto far_opts = copt.level_shift;
  far_opts.engine = tslp::DetectorEngine::kFast;
  auto near_opts = far_opts;
  near_opts.threshold_ms = copt.near_threshold_ms;

  // SoA pack + sweep: the pack cost is part of the measurement (it is what
  // a caller adopting the batch engine pays too).
  tslp::SeriesBatch far_batch;
  tslp::SeriesBatch near_batch;
  std::size_t far_samples = 0;
  std::size_t near_samples = 0;
  for (const auto& ls : corpus) {
    far_samples += ls.far_rtt.ms.size();
    near_samples += ls.near_rtt.ms.size();
  }
  far_batch.reserve(corpus.size(), far_samples);
  near_batch.reserve(corpus.size(), near_samples);
  for (const auto& ls : corpus) {
    far_batch.add(ls.key, ls.far_rtt);
    near_batch.add(ls.key, ls.near_rtt);
  }
  auto far = tslp::detect_batch(far_batch, far_opts);
  auto near = tslp::detect_batch(near_batch, near_opts);

  const tslp::CongestionClassifier classifier(copt);
  std::vector<tslp::LinkReport> out;
  out.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    out.push_back(classifier.classify_with_shifts(corpus[i], std::move(far[i]),
                                                  std::move(near[i])));
  }
  return out;
}

std::vector<tslp::LinkReport> tslp_run_online(const std::vector<tslp::LinkSeries>& corpus,
                                              const tslp::ClassifierOptions& copt) {
  auto far_opts = copt.level_shift;
  far_opts.engine = tslp::DetectorEngine::kFast;
  auto near_opts = far_opts;
  near_opts.threshold_ms = copt.near_threshold_ms;
  const tslp::CongestionClassifier classifier(copt);

  // Day-sized chunks model campaign segments arriving between membership
  // events; the online detector's results are chunking-invariant.
  const auto chunk = static_cast<std::size_t>(kDay.count() / (kMinute * 5).count());
  tslp::DetectScratch scratch;
  std::vector<tslp::LinkReport> out;
  out.reserve(corpus.size());
  for (const auto& ls : corpus) {
    tslp::OnlineLevelShift far(far_opts, ls.far_rtt.start, ls.far_rtt.interval);
    tslp::OnlineLevelShift near(near_opts, ls.near_rtt.start, ls.near_rtt.interval);
    for (std::size_t at = 0; at < ls.far_rtt.ms.size(); at += chunk) {
      const auto n = std::min(chunk, ls.far_rtt.ms.size() - at);
      far.push(std::span<const double>(ls.far_rtt.ms.data() + at, n));
      near.push(std::span<const double>(ls.near_rtt.ms.data() + at, n));
    }
    out.push_back(classifier.classify_with_shifts(
        ls, far.finalize(tslp::view_of(ls.far_rtt), scratch),
        near.finalize(tslp::view_of(ls.near_rtt), scratch)));
  }
  return out;
}

}  // namespace

TslpBenchReport run_tslp_benchmark(const TslpBenchOptions& opt, std::ostream* log) {
  topo::TopoSpec spec;
  if (opt.smoke) {
    spec = *topo::topo_spec_preset("regional50");
    spec.name = "smoke";
    spec.ixps = 6;
    spec.days = 2;
    spec.members_max = 40;
  } else {
    const auto preset = topo::topo_spec_preset(opt.spec);
    if (!preset) {
      throw std::runtime_error("unknown topology-spec preset: " + opt.spec);
    }
    spec = *preset;
  }
  if (opt.seed != 0) spec.seed = opt.seed;

  const auto vps = generate_substrate(spec);
  const auto summary = summarize_substrate(spec, vps);
  const std::uint64_t links = summary.monitored_links();
  const auto rounds = static_cast<std::uint64_t>(spec.days) *
                      static_cast<std::uint64_t>(kDay.count() / (kMinute * 5).count());
  if (log) {
    *log << strformat("tslp corpus from %s: %llu links x %llu rounds\n", spec.name.c_str(),
                      static_cast<unsigned long long>(links),
                      static_cast<unsigned long long>(rounds));
  }
  const auto corpus = make_tslp_corpus(spec, rounds, links);

  TslpBenchReport rep;
  rep.workload = opt.smoke ? "smoke" : "full";
  rep.spec = spec.name;
  rep.seed = spec.seed;
  rep.links = links;
  rep.series = links * 2;
  rep.samples_per_series = rounds;
  rep.samples_total = links * 2 * rounds;

  const tslp::ClassifierOptions copt;  // paper defaults; engines overridden per run
  struct Engine {
    const char* name;
    std::vector<tslp::LinkReport> (*fn)(const std::vector<tslp::LinkSeries>&,
                                        const tslp::ClassifierOptions&);
  };
  const Engine engines[] = {
      {"scalar", &tslp_run_scalar},
      {"batch", &tslp_run_batch},
      {"online", &tslp_run_online},
  };
  const int passes = 1 + std::max(0, opt.repeats);
  std::vector<std::vector<tslp::LinkReport>> first_pass;
  for (const auto& e : engines) {
    if (log) *log << "running tslp " << e.name << " ...\n";
    TslpEngineMeasurement m;
    m.name = e.name;
    for (int pass = 0; pass < passes; ++pass) {
      const auto t0 = Clock::now();
      auto reports = e.fn(corpus, copt);
      const double sec = elapsed_seconds(t0, Clock::now());
      const double per_sec = sec > 0 ? static_cast<double>(rep.series) / sec : 0.0;
      m.wall_seconds += sec;
      if (pass == 0) {
        m.cold_series_per_sec = per_sec;
        m.warm_series_per_sec = per_sec;
        first_pass.push_back(std::move(reports));
      } else if (per_sec > m.warm_series_per_sec) {
        m.warm_series_per_sec = per_sec;
      }
    }
    if (log) {
      *log << strformat("  %-8s cold %10.1f series/s   warm %10.1f series/s\n", m.name.c_str(),
                        m.cold_series_per_sec, m.warm_series_per_sec);
    }
    rep.engines.push_back(std::move(m));
  }

  // Equivalence: all three engines, byte-identical on every link.
  rep.equivalent = true;
  for (std::size_t i = 0; i < corpus.size() && rep.equivalent; ++i) {
    const auto scalar_fp = fingerprint_report(first_pass[0][i]);
    for (std::size_t k = 1; k < first_pass.size(); ++k) {
      if (fingerprint_report(first_pass[k][i]) != scalar_fp) {
        rep.equivalent = false;
        if (log) {
          *log << strformat("  engine %s DIVERGES from scalar on link %zu\n",
                            rep.engines[k].name.c_str(), i);
        }
        break;
      }
    }
  }

  rep.speedup_batch = rep.engines[0].warm_series_per_sec > 0
                          ? rep.engines[1].warm_series_per_sec / rep.engines[0].warm_series_per_sec
                          : 0.0;
  rep.speedup_online = rep.engines[0].warm_series_per_sec > 0
                           ? rep.engines[2].warm_series_per_sec / rep.engines[0].warm_series_per_sec
                           : 0.0;

  // Detector telemetry, mirrored through the obs registry under the
  // campaign metric names so the bench reads the same counters the fleet
  // metrics table scrapes.
  obs::Registry reg;
  std::uint64_t scanned = 0;
  std::uint64_t skipped = 0;
  for (const auto& r : first_pass[1]) {
    scanned += r.far_shifts.windows_scanned + r.near_shifts.windows_scanned;
    skipped += r.far_shifts.windows_skipped_dark + r.far_shifts.windows_skipped_quiet +
               r.near_shifts.windows_skipped_dark + r.near_shifts.windows_skipped_quiet;
    rep.episodes += r.far_shifts.episodes.size() + r.near_shifts.episodes.size();
    rep.congested_links += r.congested() ? 1 : 0;
  }
  reg.counter(metric::kDetectorWindowsScanned)->set(scanned);
  reg.counter(metric::kDetectorWindowsSkipped)->set(skipped);
  rep.windows_scanned = reg.counter(metric::kDetectorWindowsScanned)->value();
  rep.windows_skipped = reg.counter(metric::kDetectorWindowsSkipped)->value();

  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) rep.peak_rss_kb = ru.ru_maxrss;
  if (log) {
    *log << strformat(
        "  speedup: batch %.2fx, online %.2fx (%s); %llu episodes, %llu congested links\n",
        rep.speedup_batch, rep.speedup_online, rep.equivalent ? "equivalent" : "DIVERGENT",
        static_cast<unsigned long long>(rep.episodes),
        static_cast<unsigned long long>(rep.congested_links));
  }
  return rep;
}

void write_tslp_bench_json(std::ostream& out, const TslpBenchReport& rep) {
  out << "{\n";
  out << "  \"schema\": \"afixp-bench-tslp/1\",\n";
  out << strformat("  \"workload\": \"%s\",\n", rep.workload.c_str());
  out << strformat("  \"spec\": \"%s\",\n", rep.spec.c_str());
  out << strformat("  \"seed\": %llu,\n", static_cast<unsigned long long>(rep.seed));
  out << strformat("  \"links\": %llu,\n", static_cast<unsigned long long>(rep.links));
  out << strformat("  \"series\": %llu,\n", static_cast<unsigned long long>(rep.series));
  out << strformat("  \"samples_per_series\": %llu,\n",
                   static_cast<unsigned long long>(rep.samples_per_series));
  out << strformat("  \"samples_total\": %llu,\n",
                   static_cast<unsigned long long>(rep.samples_total));
  out << "  \"engines\": [\n";
  for (std::size_t i = 0; i < rep.engines.size(); ++i) {
    const auto& m = rep.engines[i];
    out << "    {\n";
    out << strformat("      \"name\": \"%s\",\n", m.name.c_str());
    out << strformat("      \"cold_series_per_sec\": %.1f,\n", m.cold_series_per_sec);
    out << strformat("      \"warm_series_per_sec\": %.1f,\n", m.warm_series_per_sec);
    out << strformat("      \"wall_seconds\": %.3f\n", m.wall_seconds);
    out << (i + 1 < rep.engines.size() ? "    },\n" : "    }\n");
  }
  out << "  ],\n";
  out << strformat("  \"speedup_batch\": %.2f,\n", rep.speedup_batch);
  out << strformat("  \"speedup_online\": %.2f,\n", rep.speedup_online);
  out << strformat("  \"equivalent\": %s,\n", rep.equivalent ? "true" : "false");
  out << strformat("  \"episodes\": %llu,\n", static_cast<unsigned long long>(rep.episodes));
  out << strformat("  \"congested_links\": %llu,\n",
                   static_cast<unsigned long long>(rep.congested_links));
  out << strformat("  \"windows_scanned\": %llu,\n",
                   static_cast<unsigned long long>(rep.windows_scanned));
  out << strformat("  \"windows_skipped\": %llu,\n",
                   static_cast<unsigned long long>(rep.windows_skipped));
  out << strformat("  \"peak_rss_kb\": %ld\n", rep.peak_rss_kb);
  out << "}\n";
}

void write_substrate_bench_json(std::ostream& out, const SubstrateBenchReport& rep) {
  out << "{\n";
  out << "  \"schema\": \"afixp-bench-substrate/1\",\n";
  out << strformat("  \"workload\": \"%s\",\n", rep.workload.c_str());
  out << strformat("  \"spec\": \"%s\",\n", rep.spec.c_str());
  out << strformat("  \"seed\": %llu,\n", static_cast<unsigned long long>(rep.seed));
  out << strformat("  \"jobs\": %d,\n", rep.jobs);
  out << strformat("  \"ixps\": %zu,\n", rep.ixps);
  out << strformat("  \"links\": %llu,\n", static_cast<unsigned long long>(rep.links));
  out << strformat("  \"rounds\": %llu,\n", static_cast<unsigned long long>(rep.rounds));
  out << strformat("  \"samples\": %llu,\n", static_cast<unsigned long long>(rep.samples));
  out << strformat("  \"probes\": %llu,\n", static_cast<unsigned long long>(rep.probes));
  out << strformat("  \"wall_seconds\": %.3f,\n", rep.wall_seconds);
  out << strformat("  \"link_rounds_per_sec\": %.1f,\n", rep.link_rounds_per_sec);
  out << strformat("  \"probes_per_sec\": %.1f,\n", rep.probes_per_sec);
  out << strformat("  \"resident_bytes\": %llu,\n",
                   static_cast<unsigned long long>(rep.resident_bytes));
  out << strformat("  \"raw_bytes\": %llu,\n", static_cast<unsigned long long>(rep.raw_bytes));
  out << strformat("  \"bytes_per_link\": %.1f,\n", rep.bytes_per_link);
  out << strformat("  \"raw_bytes_per_link\": %.1f,\n", rep.raw_bytes_per_link);
  out << strformat("  \"compression_ratio\": %.1f,\n", rep.compression_ratio);
  out << strformat("  \"peak_rss_kb\": %ld\n", rep.peak_rss_kb);
  out << "}\n";
}

}  // namespace ixp::analysis
