#include "analysis/benchmarks.h"

#include <sys/resource.h>

#include <chrono>
#include <ostream>
#include <stdexcept>

#include "analysis/africa.h"
#include "analysis/fleet.h"
#include "analysis/substrate.h"
#include "sim/network.h"
#include "util/strings.h"

namespace ixp::analysis {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// ---------------------------------------------------------------------------
// probe_fabric: the TSLP inner loop in isolation.
//
// VP host -> border router -> IXP fabric -> M member routers, each with a
// stub network behind it.  Alternating probes: a TTL-limited probe that
// expires at the member router after crossing the fabric (the canonical
// TSLP far-end probe) and a full-TTL echo to the member's fabric address.
// Links carry no cross traffic, so the walk itself -- hop resolution, FIB
// lookups, queue queries -- is all that is measured.

struct FabricWorld {
  sim::Network net;
  sim::NodeId vp = sim::kInvalidNode;
  std::vector<net::Ipv4Address> fabric_addrs;  ///< member fabric addresses
  std::vector<net::Ipv4Address> far_addrs;     ///< stub addresses behind members
  net::Ipv4Address vp_addr;
};

void build_fabric_world(FabricWorld& w, int members, std::uint64_t seed) {
  w.net.seed(seed);
  auto& host = w.net.add_host("vp");
  auto& border = w.net.add_router("border", {});
  auto& fabric = w.net.add_switch("fabric");

  const auto lan_subnet = *net::Ipv4Prefix::parse("10.0.0.0/30");
  const auto peering = *net::Ipv4Prefix::parse("196.60.0.0/24");
  w.vp_addr = net::Ipv4Address(10, 0, 0, 2);
  const auto border_lan = net::Ipv4Address(10, 0, 0, 1);
  const auto border_fab = net::Ipv4Address(196, 60, 0, 1);

  sim::LinkConfig lan;
  lan.capacity_bps = 1e9;
  lan.prop_delay = milliseconds(0.1);
  w.net.connect(host.id(), w.vp_addr, border.id(), border_lan, lan, lan_subnet);
  host.set_gateway(0, border_lan);
  w.net.connect(border.id(), border_fab, fabric.id(), {}, lan, peering);
  border.add_route(lan_subnet, {0, {}});
  border.add_route(peering, {1, {}});

  w.vp = host.id();
  for (int m = 0; m < members; ++m) {
    auto& member = w.net.add_router(strformat("member%d", m), {});
    const auto fab_addr = net::Ipv4Address(196, 60, 0, static_cast<std::uint8_t>(10 + m));
    w.net.connect(member.id(), fab_addr, fabric.id(), {}, lan, peering);
    const auto far_subnet =
        *net::Ipv4Prefix::parse(strformat("10.%d.0.0/30", m + 1));
    const auto member_far = net::Ipv4Address(10, static_cast<std::uint8_t>(m + 1), 0, 1);
    const auto stub_addr = net::Ipv4Address(10, static_cast<std::uint8_t>(m + 1), 0, 2);
    auto& stub = w.net.add_host(strformat("stub%d", m));
    w.net.connect(member.id(), member_far, stub.id(), stub_addr, lan, far_subnet);
    stub.set_gateway(0, member_far);
    member.add_route(peering, {0, {}});
    member.add_route(far_subnet, {1, {}});
    member.add_route(lan_subnet, {0, border_fab});
    border.add_route(far_subnet, {1, fab_addr});
    w.fabric_addrs.push_back(fab_addr);
    w.far_addrs.push_back(stub_addr);
  }
}

net::Packet make_probe(FabricWorld& w, net::Ipv4Address dst, std::uint8_t ttl,
                       std::uint16_t seq) {
  net::Packet p;
  p.src = w.vp_addr;
  p.dst = dst;
  p.ttl = ttl;
  p.icmp_type = net::IcmpType::kEchoRequest;
  p.ident = 0x8001;
  p.seq = seq;
  p.sent_at = w.net.simulator().now();
  return p;
}

BenchMeasurement bench_probe_fabric(const BenchOptions& opt, std::ostream* log) {
  const int members = opt.smoke ? 8 : 24;
  const std::uint64_t probes_per_pass = opt.smoke ? 20'000 : 200'000;
  FabricWorld w;
  build_fabric_world(w, members, opt.seed);

  BenchMeasurement m;
  m.name = "probe_fabric";
  m.unit = "probes_per_sec";
  m.items = probes_per_pass;

  const int passes = 1 + opt.repeats;
  auto& sim = w.net.simulator();
  for (int pass = 0; pass < passes; ++pass) {
    const std::uint64_t hops_before = w.net.hops_walked;
    std::uint64_t answered = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < probes_per_pass; ++i) {
      const std::size_t member = static_cast<std::size_t>(i % members);
      // Even probes: TTL expiry at the member router, reached across the
      // fabric.  Odd probes: full-TTL echo to the member's fabric address.
      const bool expiry = (i & 1) == 0;
      const auto pkt = expiry
                           ? make_probe(w, w.far_addrs[member], 2, static_cast<std::uint16_t>(i))
                           : make_probe(w, w.fabric_addrs[member], 64, static_cast<std::uint16_t>(i));
      const auto res = w.net.probe(w.vp, pkt);
      answered += res.answered ? 1 : 0;
      // Pace the probes in simulated time, as the real prober's rate limit
      // does: probe bytes occupy queue buffers and must drain between sends.
      sim.advance_to(sim.now() + milliseconds(1.0));
    }
    const double sec = elapsed_seconds(t0, Clock::now());
    const std::uint64_t hops = w.net.hops_walked - hops_before;
    const double per_sec = static_cast<double>(probes_per_pass) / sec;
    const double ns_per_hop = hops > 0 ? sec * 1e9 / static_cast<double>(hops) : 0.0;
    m.wall_seconds += sec;
    m.hops = hops;
    if (pass == 0) {
      m.cold_per_sec = per_sec;
      m.cold_ns_per_hop = ns_per_hop;
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    } else if (per_sec > m.warm_per_sec) {
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    }
    if (log && pass == 0 && answered != probes_per_pass) {
      *log << strformat("  probe_fabric: %llu/%llu probes answered (expected all)\n",
                        static_cast<unsigned long long>(answered),
                        static_cast<unsigned long long>(probes_per_pass));
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// event_loop: event-mode echoes through the fabric topology.  Every ping
// fans into a cascade of scheduled events (transmit hops, switch latency,
// ICMP generation, the reply's hops), so this measures the Simulator's
// scheduling throughput with realistic packet-carrying closures.

BenchMeasurement bench_event_loop(const BenchOptions& opt, std::ostream*) {
  const std::uint64_t pings = opt.smoke ? 5'000 : 50'000;
  FabricWorld w;
  build_fabric_world(w, opt.smoke ? 8 : 24, opt.seed + 1);
  auto& host = static_cast<sim::Host&>(w.net.node(w.vp));
  auto& sim = w.net.simulator();

  BenchMeasurement m;
  m.name = "event_loop";
  m.unit = "events_per_sec";

  const int passes = 1 + opt.repeats;
  for (int pass = 0; pass < passes; ++pass) {
    const std::uint64_t executed_before = sim.executed();
    const std::uint64_t hops_before = w.net.hops_walked;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < pings; ++i) {
      auto pkt = make_probe(w, w.fabric_addrs[i % w.fabric_addrs.size()], 64,
                            static_cast<std::uint16_t>(i));
      host.send(w.net, pkt);
      sim.run();
    }
    const double sec = elapsed_seconds(t0, Clock::now());
    const std::uint64_t events = sim.executed() - executed_before;
    m.items = events;
    m.hops = w.net.hops_walked - hops_before;
    const double per_sec = static_cast<double>(events) / sec;
    const double ns_per_hop =
        m.hops > 0 ? sec * 1e9 / static_cast<double>(m.hops) : 0.0;
    m.wall_seconds += sec;
    if (pass == 0) {
      m.cold_per_sec = per_sec;
      m.cold_ns_per_hop = ns_per_hop;
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    } else if (per_sec > m.warm_per_sec) {
      m.warm_per_sec = per_sec;
      m.warm_ns_per_hop = ns_per_hop;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// campaign_six_vp: the acceptance workload.  All six paper campaigns at the
// paper's 5-minute cadence, serially (jobs = 1), over a shortened window.
// probes/s here is what the ">= 2x vs. the previous PR" criterion tracks.

BenchMeasurement bench_campaign(const BenchOptions& opt, std::ostream* log) {
  const auto specs = make_all_vps();
  FleetOptions fopt;
  fopt.jobs = 1;
  fopt.campaign.round_interval = kMinute * 5;
  fopt.campaign.duration_override = opt.smoke ? kDay : kDay * 7;
  fopt.collect_metrics = opt.metrics;
  const auto fleet = run_fleet(specs, fopt);

  // Summed from the campaign results, not the metrics views: with
  // collect_metrics off the registries are empty by design.
  std::uint64_t probes = 0;
  std::uint64_t rounds = 0;
  for (const auto& r : fleet.results) {
    probes += r.probes_sent;
    rounds += r.rounds_completed;
  }
  BenchMeasurement m;
  m.name = "campaign_six_vp";
  m.unit = "probes_per_sec";
  m.items = probes;
  m.hops = rounds;  // rounds, not link crossings: fleet wall includes analysis
  m.wall_seconds = fleet.wall_seconds;
  m.cold_per_sec = static_cast<double>(probes) / fleet.wall_seconds;
  m.warm_per_sec = m.cold_per_sec;  // one pass: a campaign is its own warmup
  if (log) {
    *log << strformat("  campaign_six_vp: %llu probes over %llu rounds\n",
                      static_cast<unsigned long long>(probes),
                      static_cast<unsigned long long>(rounds));
  }
  return m;
}

}  // namespace

BenchReport run_sim_benchmarks(const BenchOptions& opt, std::ostream* log) {
  BenchReport rep;
  rep.workload = opt.smoke ? "smoke" : "full";
  rep.seed = opt.seed;

  struct Entry {
    const char* name;
    BenchMeasurement (*fn)(const BenchOptions&, std::ostream*);
  };
  const Entry entries[] = {
      {"probe_fabric", &bench_probe_fabric},
      {"event_loop", &bench_event_loop},
      {"campaign_six_vp", &bench_campaign},
  };
  for (const auto& e : entries) {
    if (!opt.only.empty() && opt.only != e.name) continue;
    if (log) *log << "running " << e.name << " ...\n";
    rep.benches.push_back(e.fn(opt, log));
    if (log) {
      const auto& m = rep.benches.back();
      *log << strformat("  %-16s cold %12.0f /s   warm %12.0f /s   (%s)\n", m.name.c_str(),
                        m.cold_per_sec, m.warm_per_sec, m.unit.c_str());
      if (m.cold_ns_per_hop > 0) {
        *log << strformat("  %-16s cold %10.1f ns/hop warm %10.1f ns/hop\n", "",
                          m.cold_ns_per_hop, m.warm_ns_per_hop);
      }
    }
  }
  return rep;
}

void write_bench_json(std::ostream& out, const BenchReport& rep) {
  out << "{\n";
  out << "  \"schema\": \"afixp-bench-sim/1\",\n";
  out << strformat("  \"workload\": \"%s\",\n", rep.workload.c_str());
  out << strformat("  \"seed\": %llu,\n", static_cast<unsigned long long>(rep.seed));
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rep.benches.size(); ++i) {
    const auto& m = rep.benches[i];
    out << "    {\n";
    out << strformat("      \"name\": \"%s\",\n", m.name.c_str());
    out << strformat("      \"unit\": \"%s\",\n", m.unit.c_str());
    out << strformat("      \"items_per_pass\": %llu,\n",
                     static_cast<unsigned long long>(m.items));
    out << strformat("      \"hops_per_pass\": %llu,\n", static_cast<unsigned long long>(m.hops));
    out << strformat("      \"cold_per_sec\": %.1f,\n", m.cold_per_sec);
    out << strformat("      \"warm_per_sec\": %.1f,\n", m.warm_per_sec);
    out << strformat("      \"cold_ns_per_hop\": %.2f,\n", m.cold_ns_per_hop);
    out << strformat("      \"warm_ns_per_hop\": %.2f,\n", m.warm_ns_per_hop);
    out << strformat("      \"wall_seconds\": %.3f\n", m.wall_seconds);
    out << (i + 1 < rep.benches.size() ? "    },\n" : "    }\n");
  }
  out << "  ]\n";
  out << "}\n";
}

SubstrateBenchReport run_substrate_benchmark(const SubstrateBenchOptions& opt,
                                             std::ostream* log) {
  topo::TopoSpec spec;
  if (opt.smoke) {
    // CI size: a handful of small exchanges over two days.
    spec = *topo::topo_spec_preset("regional50");
    spec.name = "smoke";
    spec.ixps = 6;
    spec.days = 2;
    spec.members_max = 40;
  } else {
    const auto preset = topo::topo_spec_preset(opt.spec);
    if (!preset) {
      throw std::runtime_error("unknown topology-spec preset: " + opt.spec);
    }
    spec = *preset;
  }
  auto rep = run_substrate_benchmark(spec, opt, log);
  rep.workload = opt.smoke ? "smoke" : "full";
  return rep;
}

SubstrateBenchReport run_substrate_benchmark(const topo::TopoSpec& spec_in,
                                             const SubstrateBenchOptions& opt,
                                             std::ostream* log) {
  topo::TopoSpec spec = spec_in;
  if (opt.seed != 0) spec.seed = opt.seed;

  const auto vps = generate_substrate(spec);
  const auto summary = summarize_substrate(spec, vps);
  if (log) {
    *log << strformat("substrate %s: %d IXPs, %d members, %llu monitored links\n",
                      spec.name.c_str(), summary.ixps, summary.members,
                      static_cast<unsigned long long>(summary.monitored_links()));
  }

  FleetOptions fopt;
  fopt.jobs = opt.jobs;
  fopt.campaign.round_interval = opt.round_interval;
  fopt.campaign.duration_override = opt.duration_override;
  fopt.campaign.columnar = true;  // the whole point: bounded-RSS storage
  fopt.collect_metrics = false;   // measure the instrumentation-free path
  const auto fleet = run_fleet(vps, fopt);

  SubstrateBenchReport rep;
  rep.workload = opt.smoke ? "smoke" : "full";
  rep.spec = spec.name;
  rep.seed = spec.seed;
  rep.jobs = fleet.jobs_used;
  rep.ixps = vps.size();
  rep.wall_seconds = fleet.wall_seconds;
  for (const auto& r : fleet.results) {
    rep.links += r.series.size();
    rep.rounds += r.rounds_completed;
    rep.probes += r.probes_sent;
    if (r.columns != nullptr) {
      rep.samples += r.columns->samples_total();
      rep.resident_bytes += r.columns->resident_bytes();
      rep.raw_bytes += r.columns->raw_bytes();
    }
  }
  // One link-round = one monitored link advanced one probing round; every
  // link-round stores one near and one far sample, so samples/2 counts
  // them exactly even though campaigns monitor different link sets.
  const double link_rounds = static_cast<double>(rep.samples) / 2.0;
  rep.link_rounds_per_sec = rep.wall_seconds > 0 ? link_rounds / rep.wall_seconds : 0.0;
  rep.probes_per_sec =
      rep.wall_seconds > 0 ? static_cast<double>(rep.probes) / rep.wall_seconds : 0.0;
  rep.bytes_per_link =
      rep.links > 0 ? static_cast<double>(rep.resident_bytes) / static_cast<double>(rep.links)
                    : 0.0;
  rep.raw_bytes_per_link =
      rep.links > 0 ? static_cast<double>(rep.raw_bytes) / static_cast<double>(rep.links) : 0.0;
  rep.compression_ratio =
      rep.resident_bytes > 0
          ? static_cast<double>(rep.raw_bytes) / static_cast<double>(rep.resident_bytes)
          : 0.0;
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) rep.peak_rss_kb = ru.ru_maxrss;
  if (log) {
    *log << strformat(
        "  %llu links, %.0f link-rounds/s, %.1f B/link encoded (%.0fx vs raw), "
        "peak RSS %ld MB, %.1fs wall (%d jobs)\n",
        static_cast<unsigned long long>(rep.links), rep.link_rounds_per_sec,
        rep.bytes_per_link, rep.compression_ratio, rep.peak_rss_kb / 1024, rep.wall_seconds,
        rep.jobs);
  }
  return rep;
}

void write_substrate_bench_json(std::ostream& out, const SubstrateBenchReport& rep) {
  out << "{\n";
  out << "  \"schema\": \"afixp-bench-substrate/1\",\n";
  out << strformat("  \"workload\": \"%s\",\n", rep.workload.c_str());
  out << strformat("  \"spec\": \"%s\",\n", rep.spec.c_str());
  out << strformat("  \"seed\": %llu,\n", static_cast<unsigned long long>(rep.seed));
  out << strformat("  \"jobs\": %d,\n", rep.jobs);
  out << strformat("  \"ixps\": %zu,\n", rep.ixps);
  out << strformat("  \"links\": %llu,\n", static_cast<unsigned long long>(rep.links));
  out << strformat("  \"rounds\": %llu,\n", static_cast<unsigned long long>(rep.rounds));
  out << strformat("  \"samples\": %llu,\n", static_cast<unsigned long long>(rep.samples));
  out << strformat("  \"probes\": %llu,\n", static_cast<unsigned long long>(rep.probes));
  out << strformat("  \"wall_seconds\": %.3f,\n", rep.wall_seconds);
  out << strformat("  \"link_rounds_per_sec\": %.1f,\n", rep.link_rounds_per_sec);
  out << strformat("  \"probes_per_sec\": %.1f,\n", rep.probes_per_sec);
  out << strformat("  \"resident_bytes\": %llu,\n",
                   static_cast<unsigned long long>(rep.resident_bytes));
  out << strformat("  \"raw_bytes\": %llu,\n", static_cast<unsigned long long>(rep.raw_bytes));
  out << strformat("  \"bytes_per_link\": %.1f,\n", rep.bytes_per_link);
  out << strformat("  \"raw_bytes_per_link\": %.1f,\n", rep.raw_bytes_per_link);
  out << strformat("  \"compression_ratio\": %.1f,\n", rep.compression_ratio);
  out << strformat("  \"peak_rss_kb\": %ld\n", rep.peak_rss_kb);
  out << "}\n";
}

}  // namespace ixp::analysis
