#include "analysis/tables.h"

#include <ostream>

#include "topo/calendar.h"
#include "util/strings.h"

namespace ixp::analysis {

const std::vector<Table1Row>& paper_table1() {
  static const std::vector<Table1Row> kRows = {
      {"VP1", {4, 4, 3, 2}, {2, 2, 1, 1}},
      {"VP2", {6, 5, 4, 3}, {2, 2, 1, 1}},
      {"VP3", {80, 56, 48, 40}, {1, 1, 1, 1}},
      {"VP4", {2, 1, 0, 0}, {1, 1, 0, 0}},
      {"VP5", {147, 147, 147, 146}, {0, 0, 0, 0}},
      {"VP6", {100, 88, 88, 71}, {0, 0, 0, 0}},
  };
  return kRows;
}

Table1Row make_table1_row(const VpCampaignResult& result) {
  Table1Row row;
  row.vp = result.vp_name;
  for (int i = 0; i < 4; ++i) {
    row.flagged[i] = result.potentially_congested(kTable1Thresholds[i]);
    row.diurnal[i] = result.with_diurnal(kTable1Thresholds[i]);
  }
  return row;
}

void print_table1(std::ostream& out, const std::vector<Table1Row>& measured) {
  out << "Table 1: # potentially congested links (with a diurnal pattern) per threshold\n";
  out << strformat("%-8s | %-38s | %-38s\n", "VP", "measured  5ms/10ms/15ms/20ms",
                   "paper     5ms/10ms/15ms/20ms");
  out << std::string(92, '-') << "\n";
  Table1Row total{"All VPs", {0, 0, 0, 0}, {0, 0, 0, 0}};
  Table1Row paper_total{"All VPs", {0, 0, 0, 0}, {0, 0, 0, 0}};
  for (std::size_t r = 0; r < measured.size(); ++r) {
    const auto& m = measured[r];
    const Table1Row* p = nullptr;
    for (const auto& pr : paper_table1()) {
      if (pr.vp == m.vp) p = &pr;
    }
    std::string mcol, pcol;
    for (int i = 0; i < 4; ++i) {
      mcol += strformat("%zu (%zu)%s", m.flagged[i], m.diurnal[i], i < 3 ? "  " : "");
      if (p) pcol += strformat("%zu (%zu)%s", p->flagged[i], p->diurnal[i], i < 3 ? "  " : "");
      total.flagged[i] += m.flagged[i];
      total.diurnal[i] += m.diurnal[i];
      if (p) {
        paper_total.flagged[i] += p->flagged[i];
        paper_total.diurnal[i] += p->diurnal[i];
      }
    }
    out << strformat("%-8s | %-38s | %-38s\n", m.vp.c_str(), mcol.c_str(), pcol.c_str());
  }
  std::string tcol, ptcol;
  for (int i = 0; i < 4; ++i) {
    tcol += strformat("%zu (%zu)%s", total.flagged[i], total.diurnal[i], i < 3 ? "  " : "");
    ptcol += strformat("%zu (%zu)%s", paper_total.flagged[i], paper_total.diurnal[i], i < 3 ? "  " : "");
  }
  out << std::string(92, '-') << "\n";
  out << strformat("%-8s | %-38s | %-38s\n", "All VPs", tcol.c_str(), ptcol.c_str());
}

const std::vector<Table2Row>& paper_table2() {
  // Columns: vp, ixp, date, record routes (campaign total), traceroutes
  // (campaign total), discovered links, peering links, congested links,
  // neighbors, peers, (recall placeholder).
  static const std::vector<Table2Row> kRows = {
      {"VP1", "GIXA", "17/03/2016", 34343, 241848566, 46, 36, 2, 13, 13, 0},
      {"VP1", "GIXA", "18/06/2016", 34343, 241848566, 13, 13, 1, 8, 8, 0},
      {"VP1", "GIXA", "15/11/2016", 34343, 241848566, 10, 10, 1, 7, 7, 0},
      {"VP2", "TIX", "19/03/2016", 166605, 597083978, 59, 59, 2, 31, 26, 0},
      {"VP2", "TIX", "18/06/2016", 166605, 597083978, 98, 98, 2, 30, 30, 0},
      {"VP2", "TIX", "16/11/2016", 166605, 597083978, 36, 36, 0, 36, 29, 0},
      {"VP3", "JINX", "27/07/2016", 209250, 555641317, 193, 171, 1, 32, 27, 0},
      {"VP3", "JINX", "15/11/2016", 209250, 555641317, 212, 130, 0, 42, 42, 0},
      {"VP3", "JINX", "19/02/2017", 209250, 555641317, 212, 120, 0, 44, 39, 0},
      {"VP4", "SIXP", "18/03/2016", 0, 89387074, 14, 11, 1, 7, 6, 0},
      {"VP4", "SIXP", "22/07/2016", 0, 89387074, 4, 3, 1, 4, 3, 0},
      {"VP4", "SIXP", "07/09/2016", 0, 89387074, 6, 5, 1, 6, 5, 0},
      {"VP5", "KIXP", "11/03/2016", 103392, 415583808, 288, 4, 0, 244, 4, 0},
      {"VP5", "KIXP", "23/03/2017", 103392, 415583808, 9754, 557, 0, 1208, 199, 0},
      {"VP5", "KIXP", "07/04/2017", 103392, 415583808, 10466, 601, 0, 1215, 197, 0},
      {"VP6", "RINEX", "27/07/2016", 0, 200749695, 79, 4, 0, 9, 1, 0},
      {"VP6", "RINEX", "15/11/2016", 0, 200749695, 82, 4, 0, 9, 1, 0},
      {"VP6", "RINEX", "19/02/2017", 0, 200749695, 72, 4, 0, 9, 1, 0},
  };
  return kRows;
}

std::string format_date(TimePoint t) {
  // Convert a campaign time back to dd/mm/yyyy by walking from the epoch.
  std::int64_t days = t.ns() / kDay.count() + topo::kEpochCivilDays;
  // Inverse of days_from_civil (Hinnant's civil_from_days).
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return strformat("%02u/%02u/%lld", d, m, static_cast<long long>(y + (m <= 2)));
}

std::vector<Table2Row> make_table2_rows(const VpCampaignResult& result, const VpSpec& spec) {
  std::vector<Table2Row> rows;
  for (const auto& snap : result.snapshots) {
    Table2Row row;
    row.vp = spec.vp_name;
    row.ixp = spec.ixp.name;
    row.record_routes = result.record_routes;
    row.traceroutes = result.probes_sent;
    row.date = format_date(snap.at);
    row.discovered = snap.discovered_links;
    row.peering = snap.peering_links;
    row.congested = snap.congested_links;
    row.neighbors = snap.neighbors;
    row.peers = snap.peers;
    row.neighbor_recall = snap.accuracy.neighbor_recall();
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table2(std::ostream& out, const std::vector<Table2Row>& measured) {
  out << "Table 2: evolution of discovered IP (peering) links, congested links, neighbors (peers)\n";
  out << strformat("%-5s %-6s %-11s | %-26s | %-26s | %s\n", "VP", "IXP", "date",
                   "measured links cong nbrs", "paper    links cong nbrs", "bdrmap recall");
  out << std::string(100, '-') << "\n";
  std::string last_vp;
  for (const auto& m : measured) {
    const Table2Row* p = nullptr;
    for (const auto& pr : paper_table2()) {
      if (pr.vp == m.vp && pr.date == m.date) p = &pr;
    }
    std::string mcol = strformat("%zu (%zu)  %zu  %zu (%zu)", m.discovered, m.peering, m.congested,
                                 m.neighbors, m.peers);
    std::string pcol = p ? strformat("%zu (%zu)  %zu  %zu (%zu)", p->discovered, p->peering,
                                     p->congested, p->neighbors, p->peers)
                         : std::string("-");
    out << strformat("%-5s %-6s %-11s | %-26s | %-26s | %.1f%%\n", m.vp.c_str(), m.ixp.c_str(),
                     m.date.c_str(), mcol.c_str(), pcol.c_str(), 100.0 * m.neighbor_recall);
    if (m.vp != last_vp) {
      last_vp = m.vp;
      const Table2Row* pv = nullptr;
      for (const auto& pr : paper_table2()) {
        if (pr.vp == m.vp && !pv) pv = &pr;
      }
      out << strformat(
          "%-24s | totals: %llu record routes, %llu probes   (paper: %llu RR, %llu traceroutes)\n",
          "", static_cast<unsigned long long>(m.record_routes),
          static_cast<unsigned long long>(m.traceroutes),
          static_cast<unsigned long long>(pv ? pv->record_routes : 0),
          static_cast<unsigned long long>(pv ? pv->traceroutes : 0));
    }
  }
}

HeadlineStats make_headline(const std::vector<VpCampaignResult>& results) {
  HeadlineStats h;
  for (const auto& r : results) {
    for (std::size_t i = 0; i < r.series.size(); ++i) {
      if (!r.series[i].at_ixp) continue;
      ++h.total_peering_links;
      if (i < r.reports.size() && r.reports[i].congested()) ++h.congested_links;
    }
  }
  return h;
}

}  // namespace ixp::analysis
