#include "analysis/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/faults.h"
#include "util/fault_plan.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ixp::analysis {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Background ASNs for the shared upstream structure.
constexpr Asn kTier1Asn = 64900;     // intercontinental transit
constexpr Asn kRegionalAsn = 64901;  // regional transit
constexpr Asn kCdnAsn = 64910;       // remote content network

sim::TrafficProfilePtr light_load(double capacity_bps, std::uint64_t seed) {
  auto base = std::make_shared<sim::ConstantProfile>(0.15 * capacity_bps);
  return std::make_shared<sim::JitteredProfile>(base, 0.3, seed);
}

// Demand on the congested link: light load outside the configured phases,
// the engineered overload inside them.
sim::TrafficProfilePtr phased_profile(double capacity_bps, const std::vector<CongestionSpec>& phases,
                                      bool reverse, Rng& rng) {
  std::vector<sim::PiecewiseProfile::Piece> pieces;
  for (const auto& c : phases) {
    if (reverse && !c.reverse_direction) continue;
    pieces.push_back({c.begin, light_load(capacity_bps, rng.next())});
    pieces.push_back({c.end, make_congestion_profile(capacity_bps, c, reverse, rng.next())});
  }
  auto tail = light_load(capacity_bps, rng.next());
  if (pieces.empty()) return tail;
  return std::make_shared<sim::PiecewiseProfile>(std::move(pieces), tail);
}

}  // namespace

sim::TrafficProfilePtr make_congestion_profile(double capacity_bps, const CongestionSpec& c,
                                               bool reverse, std::uint64_t seed) {
  // Engineer the raised-cosine demand bump so the offered load exceeds the
  // capacity for about dt_ud (minus the fill/drain time, which is small
  // against multi-hour events): with base + peak*bump(d) and
  // bump(d) = (1 + cos(pi d / hw)) / 2, load > C for |d| < d* where
  // bump(d*) = (C - base) / peak.  We fix base = 0.35 C, choose the half
  // width hw from dt_ud so that d* = dt_ud / 2 at the configured overload.
  const double base = 0.35 * capacity_bps;
  const double peak_total = c.overload * capacity_bps;
  const double peak = peak_total - base;  // bump amplitude
  const double beta = (capacity_bps - base) / peak;  // bump value at d*
  const Duration width = (reverse && c.reverse_dt_ud.count() > 0) ? c.reverse_dt_ud : c.dt_ud;
  const double dstar_hours = to_hours(width) / 2.0;
  // beta = (1 + cos(pi d*/hw)) / 2  =>  hw = pi d* / acos(2 beta - 1)
  const double acos_arg = std::clamp(2.0 * beta - 1.0, -0.999, 0.999);
  const double hw = std::max(0.75, kPi * dstar_hours / std::acos(acos_arg));

  sim::DiurnalProfile::Config d;
  d.base_bps = base;
  d.peak_bps = peak;
  d.peak_hour = reverse ? c.reverse_peak_hour : c.peak_hour;
  d.peak_half_width_hours = hw;
  d.weekday_scale = c.weekday_scale;
  d.weekend_scale = c.weekend_scale;
  d.midnight_dip_frac = c.midnight_dip;
  auto diurnal = std::make_shared<sim::DiurnalProfile>(d);
  return std::make_shared<sim::JitteredProfile>(diurnal, 0.04, seed);
}

std::size_t ScenarioRuntime::apply_timeline_until(TimePoint t) {
  std::size_t fired = 0;
  defer_reroutes_ = true;
  while (timeline_cursor_ < timeline.size() && timeline[timeline_cursor_].at <= t) {
    IXP_INFO << "timeline: " << format_time(timeline[timeline_cursor_].at) << " "
             << timeline[timeline_cursor_].what;
    timeline[timeline_cursor_].apply();
    ++timeline_cursor_;
    ++fired;
  }
  defer_reroutes_ = false;
  if (reroute_dirty_) {
    reroute_dirty_ = false;
    reroute();
  }
  return fired;
}

void ScenarioRuntime::reroute() {
  if (defer_reroutes_) {
    reroute_dirty_ = true;
    return;
  }
  bgp = std::make_unique<routing::Bgp>(topology);
  bgp->compute();
  bgp->install_fibs(topology);
}

std::unique_ptr<ScenarioRuntime> build_scenario(const VpSpec& spec) {
  auto rt = std::make_unique<ScenarioRuntime>();
  ScenarioRuntime* rtp = rt.get();
  auto& tp = rt->topology;
  tp.net().seed(spec.seed);
  Rng rng(spec.seed);

  rt->vp_asn = spec.vp_asn;
  rt->ixp_name = spec.ixp.name;
  tp.add_ixp(spec.ixp);

  // ---- Upstream structure --------------------------------------------------
  tp.add_as({kTier1Asn, "TRANSGLOBAL", "ORG-TRANSGLOBAL", "GB", topo::AsType::kTransit, {}});
  tp.add_as({kRegionalAsn, "AFRITRANS", "ORG-AFRITRANS", spec.country, topo::AsType::kTransit, {}});
  tp.add_as({kCdnAsn, "GLOBALCDN", "ORG-GLOBALCDN", "US", topo::AsType::kContent, {}});
  const auto tier1_r = tp.add_router(kTier1Asn, "core");
  const auto regional_r = tp.add_router(kRegionalAsn, "core");
  const auto cdn_r = tp.add_router(kCdnAsn, "edge");

  sim::LinkConfig backbone;
  backbone.capacity_bps = 100e9;
  backbone.buffer_bytes = 64e6;
  backbone.prop_delay = milliseconds(30);  // intercontinental leg
  tp.connect_routers(tier1_r, regional_r, backbone);
  sim::LinkConfig cdn_link = backbone;
  cdn_link.prop_delay = milliseconds(40);
  tp.connect_routers(tier1_r, cdn_r, cdn_link);
  tp.add_as_relationship(kRegionalAsn, kTier1Asn, topo::Relationship::kCustomerToProvider);
  tp.add_as_relationship(kCdnAsn, kTier1Asn, topo::Relationship::kCustomerToProvider);
  tp.announce(kTier1Asn, tp.allocator().next_as_block(), tier1_r);
  tp.announce(kRegionalAsn, tp.allocator().next_as_block(), regional_r);
  tp.announce(kCdnAsn, tp.allocator().next_as_block(), cdn_r);

  // ---- The VP's AS ----------------------------------------------------------
  tp.add_as({spec.vp_asn, spec.vp_as_name, spec.vp_org, spec.country,
             spec.vp_is_ixp_network ? topo::AsType::kIxpContent : topo::AsType::kAccessIsp,
             {}});
  sim::RouterConfig vp_rc;
  vp_rc.rr_filtered = spec.vp_filters_rr;
  rt->vp_router = tp.add_router(spec.vp_asn, "border", vp_rc);
  const auto vp_block = tp.allocator().next_as_block();
  tp.announce(spec.vp_asn, vp_block, rt->vp_router);
  // The VP host lives on the first /26 of the block.
  const net::Ipv4Prefix vp_host_subnet(vp_block.network(), 26);
  rt->vp_host = tp.add_host(spec.vp_asn, "ark", vp_host_subnet.at(2), rt->vp_router, vp_host_subnet);

  // VP's IXP port: generously provisioned so it never masks member queues.
  topo::PortConfig vp_port;
  vp_port.capacity_bps = 10e9;
  vp_port.buffer_bytes = 8e6;
  vp_port.egress_cross = light_load(vp_port.capacity_bps, rng.next());
  vp_port.ingress_cross = light_load(vp_port.capacity_bps, rng.next());
  // Remote-peering (RIXP) tail: the VP reaches the fabric over a long
  // leased circuit whose cross load is far burstier than an in-building
  // port's, so the *near* segment of every TSLP series carries the tail's
  // delay and jitter.  Both knobs default off; the draws above always
  // happen so default specs keep their exact random streams.
  if (spec.vp_tail_ms > 0.0) vp_port.prop_delay = milliseconds(spec.vp_tail_ms);
  if (spec.vp_tail_jitter > 0.0) {
    auto tail_base = std::make_shared<sim::ConstantProfile>(0.35 * vp_port.capacity_bps);
    vp_port.egress_cross =
        std::make_shared<sim::JitteredProfile>(tail_base, spec.vp_tail_jitter, rng.next());
    vp_port.ingress_cross =
        std::make_shared<sim::JitteredProfile>(tail_base, spec.vp_tail_jitter, rng.next());
  }
  tp.attach_to_ixp(rt->vp_router, spec.ixp.name, vp_port);

  // VP transit: customer of the regional transit over a clean 10G ptp,
  // unless the VP's transit is one of the declared neighbors (VP1).
  if (spec.vp_has_regional_transit) {
    sim::LinkConfig vp_transit;
    vp_transit.capacity_bps = 10e9;
    vp_transit.buffer_bytes = 8e6;
    vp_transit.prop_delay = milliseconds(2);
    tp.connect_routers(regional_r, rt->vp_router, vp_transit);
    tp.add_as_relationship(spec.vp_asn, kRegionalAsn, topo::Relationship::kCustomerToProvider);
  }

  // ---- Neighbors ------------------------------------------------------------
  for (const auto& n : spec.neighbors) {
    if (tp.find_as(n.asn) != nullptr) {
      throw std::runtime_error("duplicate neighbor ASN " + strformat("%u", n.asn));
    }
    tp.add_as({n.asn, n.name, "ORG-" + n.name, n.country, n.type, {}});

    const int lan_count = std::max<int>(n.lan_routers, static_cast<int>(n.lan_windows.size()));
    const int ptp_count = std::max<int>(n.ptp_links, static_cast<int>(n.ptp_windows.size()));
    const int routers = std::max(1, lan_count);

    std::vector<sim::NodeId> rts;
    for (int i = 0; i < routers; ++i) {
      sim::RouterConfig rc;
      rc.icmp_disabled = n.silent;
      // Slow-ICMP behaviour applies to the primary LAN router.
      if (i == 0 && n.slow_icmp) {
        const auto& s = *n.slow_icmp;
        sim::DiurnalProfile::Config lc;
        lc.base_bps = 0.05;  // interpreted as relative load in [0, 1]
        lc.peak_bps = 0.95;
        lc.peak_hour = s.peak_hour;
        lc.peak_half_width_hours = s.half_width_hours;
        lc.midnight_dip_frac = s.midnight_dip;
        auto load = std::make_shared<sim::DiurnalProfile>(lc);
        std::vector<sim::PiecewiseProfile::Piece> pieces;
        pieces.push_back({s.begin, std::make_shared<sim::ConstantProfile>(0.05)});
        pieces.push_back({s.end, load});
        rc.icmp_load = std::make_shared<sim::PiecewiseProfile>(
            std::move(pieces), std::make_shared<sim::ConstantProfile>(0.05));
        rc.icmp_load_extra = milliseconds(s.extra_ms);
      }
      rts.push_back(tp.add_router(n.asn, strformat("r%d", i), rc));
      if (i > 0) {
        sim::LinkConfig internal;
        internal.capacity_bps = 40e9;
        internal.buffer_bytes = 16e6;
        internal.prop_delay = milliseconds(0.3);
        tp.connect_routers(rts[0], rts[static_cast<std::size_t>(i)], internal);
      }
    }

    // Announcements: one sub-prefix per (LAN port or ptp link) so route
    // spreading keeps every parallel adjacency on some forwarding path.
    const int slices_needed = std::max(1, lan_count + ptp_count);
    const auto block = tp.allocator().next_as_block();
    int slice_len = 22;
    while ((1 << (slice_len - 22)) < slices_needed && slice_len < 30) ++slice_len;
    const std::uint64_t slice_size = net::Ipv4Prefix(block.network(), slice_len).size();
    for (int s = 0; s < slices_needed; ++s) {
      const net::Ipv4Prefix slice(block.at(static_cast<std::uint64_t>(s) * slice_size), slice_len);
      tp.announce(n.asn, slice, rts[static_cast<std::size_t>(s) % rts.size()]);
    }
    // A host inside the first slice answers end-to-end probes.
    const net::Ipv4Prefix host_subnet(block.at(slice_size - 64), 26);
    tp.add_host(n.asn, "edge", host_subnet.at(2), rts[0], host_subnet);

    std::vector<int> lan_ports;
    std::vector<int> ptps;

    // IXP LAN ports.
    for (int i = 0; i < lan_count; ++i) {
      topo::PortConfig port;
      port.capacity_bps = n.port_capacity_bps;
      port.buffer_bytes = std::max(64e3, 0.25 * n.port_capacity_bps / 8.0);  // ~250 ms
      port.base_loss = n.port_base_loss;
      port.prop_delay = milliseconds(n.lan_prop_ms);
      const bool congested_here = !n.congestion.empty() && i == 0;
      if (congested_here) {
        port.buffer_bytes = n.congestion.front().a_w_ms / 1e3 * n.port_capacity_bps / 8.0;
        port.ingress_cross = phased_profile(n.port_capacity_bps, n.congestion, false, rng);
        port.egress_cross = phased_profile(n.port_capacity_bps, n.congestion, true, rng);
      } else {
        port.egress_cross = light_load(n.port_capacity_bps, rng.next());
        port.ingress_cross = light_load(n.port_capacity_bps, rng.next());
      }
      lan_ports.push_back(
          tp.attach_to_ixp(rts[static_cast<std::size_t>(i) % rts.size()], spec.ixp.name, port));
    }

    // Private interconnects with the VP AS.
    for (int j = 0; j < ptp_count; ++j) {
      sim::LinkConfig ptp;
      ptp.capacity_bps = n.port_capacity_bps;
      ptp.buffer_bytes = std::max(64e3, 0.25 * n.port_capacity_bps / 8.0);
      ptp.prop_delay = milliseconds(n.ptp_prop_ms);
      ptp.base_loss = n.port_base_loss;
      const bool congested_here = !n.congestion_ptp.empty() && j == 0;
      // The link is created from the "numbering" side: the neighbor when it
      // is the VP's provider, otherwise the VP.  Forward (VP -> neighbor)
      // is therefore B->A when the neighbor numbers, A->B otherwise.
      const bool neighbor_numbers = n.rel == NeighborSpec::Rel::kProviderOfVp;
      if (congested_here) {
        ptp.buffer_bytes = n.congestion_ptp.front().a_w_ms / 1e3 * n.port_capacity_bps / 8.0;
        auto fwd = phased_profile(n.port_capacity_bps, n.congestion_ptp, false, rng);
        auto rev = phased_profile(n.port_capacity_bps, n.congestion_ptp, true, rng);
        if (neighbor_numbers) {
          ptp.cross_ba = fwd;  // VP -> neighbor
          ptp.cross_ab = rev;
        } else {
          ptp.cross_ab = fwd;
          ptp.cross_ba = rev;
        }
      } else {
        ptp.cross_ab = light_load(n.port_capacity_bps, rng.next());
        ptp.cross_ba = light_load(n.port_capacity_bps, rng.next());
      }
      const auto a = neighbor_numbers ? rts[0] : rt->vp_router;
      const auto b = neighbor_numbers ? rt->vp_router : rts[0];
      ptps.push_back(tp.connect_routers(a, b, ptp));
    }

    // Relationship with the VP AS, and the neighbor's own transit.
    switch (n.rel) {
      case NeighborSpec::Rel::kPeer:
        tp.add_as_relationship(n.asn, spec.vp_asn, topo::Relationship::kPeerToPeer);
        break;
      case NeighborSpec::Rel::kCustomerOfVp:
        tp.add_as_relationship(n.asn, spec.vp_asn, topo::Relationship::kCustomerToProvider);
        break;
      case NeighborSpec::Rel::kProviderOfVp:
        tp.add_as_relationship(spec.vp_asn, n.asn, topo::Relationship::kCustomerToProvider);
        break;
    }
    if (n.rel == NeighborSpec::Rel::kProviderOfVp) {
      tp.add_as_relationship(n.asn, kTier1Asn, topo::Relationship::kCustomerToProvider);
    } else {
      tp.add_as_relationship(n.asn, kRegionalAsn, topo::Relationship::kCustomerToProvider);
    }

    // ---- Link availability windows ----------------------------------------
    auto window_of = [&](const std::vector<LinkWindow>& windows, int idx,
                         bool is_ptp) -> LinkWindow {
      if (idx < static_cast<int>(windows.size())) {
        LinkWindow w = windows[static_cast<std::size_t>(idx)];
        if (w.up.ns() == 0) w.up = n.join;
        if (w.down == kForever) w.down = n.leave;
        return w;
      }
      (void)is_ptp;
      return LinkWindow{n.join, n.leave};
    };
    auto schedule_window = [&](int link_id, const LinkWindow& w, const std::string& label) {
      if (w.up > spec.campaign_start) {
        tp.net().link(link_id).set_up(false);
        rt->timeline.push_back({w.up, label + " up",
                                [rtp, link_id]() {
                                  rtp->topology.net().link(link_id).set_up(true);
                                  rtp->reroute();
                                },
                                /*membership=*/true});
      }
      if (w.down < kForever) {
        rt->timeline.push_back({w.down, label + " down",
                                [rtp, link_id]() {
                                  rtp->topology.net().link(link_id).set_up(false);
                                  rtp->reroute();
                                },
                                /*membership=*/true});
      }
    };
    for (int i = 0; i < lan_count; ++i) {
      schedule_window(lan_ports[static_cast<std::size_t>(i)], window_of(n.lan_windows, i, false),
                      n.name + strformat(" LAN port %d", i));
    }
    for (int j = 0; j < ptp_count; ++j) {
      schedule_window(ptps[static_cast<std::size_t>(j)], window_of(n.ptp_windows, j, true),
                      n.name + strformat(" ptp %d", j));
    }

    // ---- Capacity upgrades on the congested link ----------------------------
    for (const auto& [when, new_cap] : n.capacity_upgrades) {
      const int target_link = n.upgrade_ptp ? (ptps.empty() ? -1 : ptps.front())
                                            : (lan_ports.empty() ? -1 : lan_ports.front());
      if (target_link < 0) continue;
      const TimePoint at = when;
      const double cap = new_cap;
      rt->timeline.push_back(
          {at, n.name + " port upgraded to " + strformat("%.0f Mb/s", cap / 1e6),
           [rtp, target_link, cap, at]() {
             rtp->topology.net().link(target_link).upgrade(at, cap, 0.25 * cap / 8.0);
           }});
    }

    // ---- Route-change noise --------------------------------------------------
    for (const auto& noise : n.noise_list) {
      if (noise.magnitude_ms <= 0) continue;
      int target_link = -1;
      sim::NodeId target_router = sim::kInvalidNode;
      if (noise.on_ptp) {
        if (noise.port_index < static_cast<int>(ptps.size())) {
          target_link = ptps[static_cast<std::size_t>(noise.port_index)];
          target_router = rts[0];
        }
      } else if (noise.port_index < static_cast<int>(lan_ports.size())) {
        target_link = lan_ports[static_cast<std::size_t>(noise.port_index)];
        target_router = rts[static_cast<std::size_t>(noise.port_index) % rts.size()];
      }
      if (target_link < 0) continue;
      Rng noise_rng(spec.seed ^ (static_cast<std::uint64_t>(n.asn) * 0x9e37u) ^
                    (noise.seed * 0x85ebca77c2b2ae63ULL) ^
                    static_cast<std::uint64_t>(noise.port_index));
      const Duration span = spec.campaign_end - spec.campaign_start;
      const int events = std::max(1, noise.events);
      for (int e = 0; e < events; ++e) {
        const Duration slice = span / events;
        const Duration max_offset = slice - noise.event_duration;
        const Duration offset = Duration(
            max_offset.count() > 0 ? noise_rng.uniform_int(0, max_offset.count()) : 0);
        const TimePoint up_at = spec.campaign_start + slice * e + offset;
        const TimePoint down_at = up_at + noise.event_duration;
        const double mag = noise.magnitude_ms;
        // The inbound direction (toward the neighbor's router) gains the
        // delay: only probes crossing INTO this port see the shift; replies
        // leaving via this port, and the member's other links, stay clean.
        rt->timeline.push_back(
            {up_at, n.name + " route change (+" + strformat("%.1f", mag) + "ms)",
             [rtp, target_link, target_router, mag]() {
               auto& l = rtp->topology.net().link(target_link);
               l.set_extra_delay_from(l.other(target_router), milliseconds(mag));
             }});
        rt->timeline.push_back({down_at, n.name + " route restored",
                                [rtp, target_link, target_router]() {
                                  auto& l = rtp->topology.net().link(target_link);
                                  l.set_extra_delay_from(l.other(target_router), Duration(0));
                                }});
      }
    }

    // ---- Phase-boundary buffer changes (A_w changes between phases) ---------
    auto buffer_phases = [&](const std::vector<CongestionSpec>& phases, int target_link) {
      for (std::size_t p = 1; p < phases.size() && target_link >= 0; ++p) {
        if (phases[p].a_w_ms == phases[p - 1].a_w_ms) continue;
        const double cap = n.port_capacity_bps;
        const double buf = phases[p].a_w_ms / 1e3 * cap / 8.0;
        const TimePoint at = phases[p].begin;
        rt->timeline.push_back({at, n.name + " buffer re-provisioned",
                                [rtp, target_link, cap, buf, at]() {
                                  rtp->topology.net().link(target_link).upgrade(at, cap, buf);
                                }});
      }
    };
    buffer_phases(n.congestion, lan_ports.empty() ? -1 : lan_ports.front());
    buffer_phases(n.congestion_ptp, ptps.empty() ? -1 : ptps.front());

    // ---- Handles for post-build passes (fault attachment) -------------------
    NeighborHandles h;
    h.asn = n.asn;
    h.name = n.name;
    h.silent = n.silent;
    h.engineered = !n.congestion.empty() || !n.congestion_ptp.empty() ||
                   n.slow_icmp.has_value() || !n.noise_list.empty() ||
                   !n.capacity_upgrades.empty();
    const bool windowed = n.join > spec.campaign_start || n.leave < kForever ||
                          !n.lan_windows.empty() || !n.ptp_windows.empty();
    h.always_on = !windowed;
    h.facility = n.facility;
    h.routers = rts;
    h.lan_links = lan_ports;
    h.ptp_links = ptps;
    rt->neighbor_handles.push_back(std::move(h));
  }

  std::stable_sort(rt->timeline.begin(), rt->timeline.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) { return a.at < b.at; });

  rt->collectors = {kTier1Asn, kCdnAsn};
  rt->reroute();
  return rt;
}

void ScenarioRuntime::add_events(std::vector<TimelineEvent> events) {
  if (timeline_cursor_ != 0) {
    throw std::logic_error("add_events after the timeline already started firing");
  }
  for (auto& e : events) timeline.push_back(std::move(e));
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) { return a.at < b.at; });
}

namespace {

// Address a router answers with on a given link (its interface facing it).
net::Ipv4Address addr_on_link(sim::Network& net, sim::NodeId node, int link_id) {
  for (const auto& ifc : net.node(node).interfaces()) {
    if (ifc.link_id == link_id) return ifc.addr;
  }
  return net::Ipv4Address();
}

// The VP router's IXP-facing interface: the one whose link's far end is the
// fabric switch.
struct IxpPort {
  int ifindex = -1;
  net::Ipv4Address addr;
};
IxpPort vp_ixp_port(sim::Network& net, sim::NodeId vp_router) {
  const auto& ifaces = net.node(vp_router).interfaces();
  for (std::size_t i = 0; i < ifaces.size(); ++i) {
    if (ifaces[i].link_id < 0) continue;
    auto& l = net.link(ifaces[i].link_id);
    if (net.node(l.other(vp_router)).is_switch()) {
      return {static_cast<int>(i), ifaces[i].addr};
    }
  }
  return {};
}

}  // namespace

std::shared_ptr<sim::FaultInjector> attach_fault_plan(ScenarioRuntime& rt, const VpSpec& spec,
                                                      const FaultPlan& plan, std::uint64_t seed,
                                                      TimePoint campaign_end) {
  auto inj = std::make_shared<sim::FaultInjector>(plan, seed, spec.campaign_start, campaign_end);
  sim::FaultInjector* fi = inj.get();
  ScenarioRuntime* rtp = &rt;
  auto& net = rt.topology.net();

  // Destructive faults only target clean always-on neighbors: engineered
  // links keep their scripted behaviour (the ground truth must stay
  // interpretable), silent routers would make the fault unobservable, and
  // windowed members are managed by membership events.
  std::vector<const NeighborHandles*> eligible;
  for (const auto& h : rt.neighbor_handles) {
    if (h.engineered || h.silent || !h.always_on) continue;
    if (h.routers.empty() || h.lan_links.empty()) continue;
    eligible.push_back(&h);
  }

  std::vector<TimelineEvent> events;
  auto push = [&](TimePoint at, std::string what, std::function<void()> apply) {
    events.push_back({at, std::move(what),
                      [fi, apply = std::move(apply)]() {
                        apply();
                        fi->note_timeline_fault();
                      },
                      /*membership=*/false});
  };

  // Link flaps: the member's primary IXP port goes down, BGP converges
  // around it, and the port is restored at window end.
  for (std::size_t k = 0; k < plan.link_flaps.size() && !eligible.empty(); ++k) {
    const auto& h = *eligible[static_cast<std::size_t>(plan.link_flaps[k].nth_link) %
                              eligible.size()];
    const int link_id = h.lan_links.front();
    for (const auto& w : fi->flap_windows()[k]) {
      push(w.begin, "chaos: " + h.name + " port flap (down)", [rtp, link_id]() {
        rtp->topology.net().link(link_id).set_up(false);
        rtp->reroute();
      });
      push(w.end, "chaos: " + h.name + " port flap (restored)", [rtp, link_id]() {
        rtp->topology.net().link(link_id).set_up(true);
        rtp->reroute();
      });
    }
  }

  // ICMP rate-limit tightening on the member's primary router.  The old
  // rate is captured at fire time (another fault may have changed it).
  for (std::size_t k = 0; k < plan.icmp_tighten.size() && !eligible.empty(); ++k) {
    const auto& f = plan.icmp_tighten[k];
    const auto& h =
        *eligible[static_cast<std::size_t>(f.nth_router) % eligible.size()];
    const sim::NodeId router = h.routers.front();
    for (const auto& w : fi->icmp_windows()[k]) {
      auto saved = std::make_shared<double>(0.0);
      const double rate = f.rate_per_sec;
      push(w.begin, "chaos: " + h.name + " ICMP rate limit tightened",
           [rtp, router, saved, rate]() {
             auto& r = static_cast<sim::Router&>(rtp->topology.net().node(router));
             *saved = r.config().icmp_rate_limit_per_sec;
             r.mutable_config().icmp_rate_limit_per_sec = rate;
           });
      push(w.end, "chaos: " + h.name + " ICMP rate limit restored", [rtp, router, saved]() {
        auto& r = static_cast<sim::Router&>(rtp->topology.net().node(router));
        r.mutable_config().icmp_rate_limit_per_sec = *saved;
      });
    }
  }

  // Silent-drop windows: the router stops answering ICMP entirely.
  for (std::size_t k = 0; k < plan.silent_drops.size() && !eligible.empty(); ++k) {
    const auto& h = *eligible[static_cast<std::size_t>(plan.silent_drops[k].nth_router) %
                              eligible.size()];
    const sim::NodeId router = h.routers.front();
    for (const auto& w : fi->silent_windows()[k]) {
      auto saved = std::make_shared<bool>(false);
      push(w.begin, "chaos: " + h.name + " goes ICMP-silent", [rtp, router, saved]() {
        auto& r = static_cast<sim::Router&>(rtp->topology.net().node(router));
        *saved = r.config().icmp_disabled;
        r.mutable_config().icmp_disabled = true;
      });
      push(w.end, "chaos: " + h.name + " answers ICMP again", [rtp, router, saved]() {
        auto& r = static_cast<sim::Router&>(rtp->topology.net().node(router));
        r.mutable_config().icmp_disabled = *saved;
      });
    }
  }

  // Reroutes: a /32 detour route for the target member's monitored far
  // address is installed on the VP router, pointing at ANOTHER member's LAN
  // address across the fabric.  TTL-limited probes then expire one hop
  // early at the detour router, so the TSLP target goes stale until the
  // driver notices the responder change.  Restoration is a full reroute():
  // install_fibs rebuilds every FIB, which drops the injected route.
  for (std::size_t k = 0; k < plan.reroutes.size() && eligible.size() >= 2; ++k) {
    const std::size_t n = eligible.size();
    const std::size_t t_idx = static_cast<std::size_t>(plan.reroutes[k].nth_link) % n;
    const auto& target = *eligible[t_idx];
    const auto& detour = *eligible[(t_idx + 1) % n];
    const IxpPort port = vp_ixp_port(net, rt.vp_router);
    const net::Ipv4Address far_ip =
        addr_on_link(net, target.routers.front(), target.lan_links.front());
    const net::Ipv4Address detour_ip =
        addr_on_link(net, detour.routers.front(), detour.lan_links.front());
    if (port.ifindex < 0 || far_ip.value() == 0 || detour_ip.value() == 0) continue;
    const net::Ipv4Prefix host_route(far_ip, 32);
    for (const auto& w : fi->reroute_windows()[k]) {
      push(w.begin, "chaos: detour route toward " + target.name,
           [rtp, host_route, port, detour_ip]() {
             auto& r =
                 static_cast<sim::Router&>(rtp->topology.net().node(rtp->vp_router));
             r.add_route(host_route, {port.ifindex, detour_ip});
           });
      push(w.end, "chaos: detour route withdrawn (" + target.name + ")",
           [rtp]() { rtp->reroute(); });
    }
  }

  // Facility outages: every link of every member homed at the chosen
  // colocation facility goes down together at window start and is restored
  // at window end — the correlated multi-link signature the facility
  // detector (analysis/facility.h) aggregates over.  Facilities are
  // enumerated in neighbor order (first appearance), so `nth_facility`
  // picks deterministically for a given substrate.  Engineered / windowed
  // members are skipped for the same ground-truth reasons as above.
  std::vector<std::string> facilities;
  for (const auto& h : rt.neighbor_handles) {
    if (h.facility.empty() || !h.always_on || h.engineered) continue;
    if (std::find(facilities.begin(), facilities.end(), h.facility) == facilities.end()) {
      facilities.push_back(h.facility);
    }
  }
  for (std::size_t k = 0; k < plan.facility_outages.size() && !facilities.empty(); ++k) {
    const std::string& fac =
        facilities[static_cast<std::size_t>(plan.facility_outages[k].nth_facility) %
                   facilities.size()];
    std::vector<int> fac_links;
    for (const auto& h : rt.neighbor_handles) {
      if (h.facility != fac || !h.always_on || h.engineered) continue;
      fac_links.insert(fac_links.end(), h.lan_links.begin(), h.lan_links.end());
      fac_links.insert(fac_links.end(), h.ptp_links.begin(), h.ptp_links.end());
    }
    if (fac_links.empty()) continue;
    for (const auto& w : fi->facility_windows()[k]) {
      push(w.begin, "chaos: facility " + fac + " outage (all links down)",
           [rtp, fac_links]() {
             for (const int link_id : fac_links) {
               rtp->topology.net().link(link_id).set_up(false);
             }
             rtp->reroute();
           });
      push(w.end, "chaos: facility " + fac + " restored",
           [rtp, fac_links]() {
             for (const int link_id : fac_links) {
               rtp->topology.net().link(link_id).set_up(true);
             }
             rtp->reroute();
           });
    }
  }

  if (!events.empty()) rt.add_events(std::move(events));
  return inj;
}

}  // namespace ixp::analysis
