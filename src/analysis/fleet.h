// Fleet driver: runs many VP campaigns concurrently.
//
// The paper's measurement plane is embarrassingly parallel -- six Ark
// vantage points probed their IXPs independently for a year -- so the
// fleet fans the campaigns out across a deterministic thread pool
// (util/thread_pool.h).  Each worker builds its *own* ScenarioRuntime, so
// no simulator state is ever shared, and results are merged in spec order:
// the output is bit-identical to the serial path for any job count
// (pinned by tests/test_fleet.cc).
//
// Each campaign carries a per-run metrics struct (rounds, probes/sec,
// bdrmap re-runs, peak RSS sample, wall time) surfaced through a progress
// callback; FleetStatusPrinter renders those as the live per-VP status
// line used by `afixp tables --jobs N` and the table benches.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/campaign.h"

namespace ixp::analysis {

/// Per-campaign run metrics, updated while the campaign progresses and
/// finalized when it completes.  Host-side observability only: nothing in
/// here feeds back into the (deterministic) simulation.
struct CampaignMetrics {
  std::string vp_name;
  std::size_t vp_index = 0;           ///< position in the spec list
  std::uint64_t rounds_completed = 0; ///< TSLP rounds so far
  std::uint64_t probes_sent = 0;
  std::uint64_t bdrmap_runs = 0;      ///< discovery + membership re-runs
  std::size_t monitored_links = 0;
  double wall_seconds = 0.0;          ///< host wall-clock of this campaign
  double probes_per_sec = 0.0;        ///< probes_sent / wall_seconds
  long peak_rss_kb = 0;               ///< process peak RSS, sampled at completion
  // Fault/retry accounting (zero unless a fault plan was attached).
  std::uint64_t fault_events = 0;       ///< topology fault events fired
  std::uint64_t probes_suppressed = 0;  ///< probes not sent (outages/bursts)
  std::uint64_t outage_rounds = 0;      ///< whole rounds lost to VP outages
  std::uint64_t stale_relearns = 0;     ///< responder-change re-learns
  std::uint64_t loss_relearns = 0;      ///< consecutive-loss re-learns
  bool finished = false;
};

/// Receives a snapshot of one campaign's metrics whenever it progresses.
/// The fleet serializes invocations (never two at once), but they arrive
/// on whichever worker thread made the progress.
using FleetProgressFn = std::function<void(const CampaignMetrics&)>;

struct FleetOptions {
  CampaignOptions campaign;
  /// Worker threads.  0 = auto: the IXP_JOBS environment variable if set,
  /// else hardware concurrency; always clamped to the fleet size.
  int jobs = 0;
  FleetProgressFn on_progress;
  /// When set (and non-empty), every campaign runs under this fault plan:
  /// each worker expands it with a per-VP seed derived from `fault_seed`
  /// and the spec index, so results stay independent of the job count.
  const FaultPlan* fault_plan = nullptr;
  std::uint64_t fault_seed = 1;
};

struct FleetResult {
  std::vector<VpCampaignResult> results;  ///< spec order
  std::vector<CampaignMetrics> metrics;   ///< spec order
  int jobs_used = 1;
  double wall_seconds = 0.0;              ///< whole-fleet wall clock
};

/// Runs every campaign in `specs` across the pool and returns results in
/// spec order.  A campaign that throws does not abort its siblings; the
/// first (lowest-index) exception is rethrown after the fleet drains.
FleetResult run_fleet(const std::vector<VpSpec>& specs, const FleetOptions& opt = {});

/// Renders a live one-line status of every campaign, rewritten in place
/// with '\r' on each progress event.  Point it at stderr so that table
/// output on stdout stays machine-readable and byte-identical across job
/// counts.  Call finish() (or destroy) to end the line.
class FleetStatusPrinter {
 public:
  FleetStatusPrinter(std::ostream& out, const std::vector<VpSpec>& specs);
  ~FleetStatusPrinter();

  /// Bind as the FleetProgressFn: printer(metrics).
  void operator()(const CampaignMetrics& m);
  void finish();

 private:
  void render();

  std::ostream& out_;
  std::vector<std::string> cells_;
  std::size_t last_width_ = 0;
  bool finished_ = false;
};

/// Prints the per-campaign metrics table (rounds, probes, probes/s,
/// bdrmap runs, links, wall, peak RSS) after a fleet run.
void print_fleet_metrics(std::ostream& out, const FleetResult& fleet);

}  // namespace ixp::analysis
