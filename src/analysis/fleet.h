// Fleet driver: runs many VP campaigns concurrently.
//
// The paper's measurement plane is embarrassingly parallel -- six Ark
// vantage points probed their IXPs independently for a year -- so the
// fleet fans the campaigns out across a deterministic thread pool
// (util/thread_pool.h).  Each worker builds its *own* ScenarioRuntime, so
// no simulator state is ever shared, and results are merged in spec order:
// the output is bit-identical to the serial path for any job count
// (pinned by tests/test_fleet.cc).
//
// Each campaign carries a per-run metrics struct (rounds, probes/sec,
// bdrmap re-runs, peak RSS sample, wall time) surfaced through a progress
// callback; FleetStatusPrinter renders those as the live per-VP status
// line used by `afixp tables --jobs N` and the table benches.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/campaign.h"

namespace ixp::analysis {

/// Per-campaign run metrics: a snapshot of the campaign's obs::Registry
/// shard plus the host-side values no deterministic registry may carry
/// (wall clock, RSS).  The quantitative accessors are views over the
/// snapshot -- one source of truth, shared with `--metrics-out` exports.
/// Host-side observability only: nothing in here feeds back into the
/// (deterministic) simulation.
struct CampaignMetrics {
  std::string vp_name;
  std::size_t vp_index = 0;      ///< position in the spec list
  obs::Registry counters;        ///< snapshot of the campaign's registry shard
  double wall_seconds = 0.0;     ///< host wall-clock of this campaign
  double probes_per_sec = 0.0;   ///< probes_sent() / wall_seconds
  long peak_rss_kb = 0;          ///< process peak RSS, sampled at completion
  bool finished = false;

  [[nodiscard]] std::uint64_t rounds_completed() const {
    return counters.counter_value(metric::kRounds);
  }
  [[nodiscard]] std::uint64_t probes_sent() const {
    return counters.counter_value(metric::kProbesSent);
  }
  [[nodiscard]] std::uint64_t bdrmap_runs() const {
    return counters.counter_value(metric::kBdrmapRuns);
  }
  [[nodiscard]] std::size_t monitored_links() const {
    return static_cast<std::size_t>(counters.gauge_value(metric::kMonitoredLinks));
  }
  // Fault/retry accounting (zero unless a fault plan was attached).
  [[nodiscard]] std::uint64_t fault_events() const {
    return counters.counter_value(metric::kFaultEvents);
  }
  [[nodiscard]] std::uint64_t probes_suppressed() const {
    return counters.counter_value(metric::kProbesSuppressed);
  }
  [[nodiscard]] std::uint64_t outage_rounds() const {
    return counters.counter_value(metric::kOutageRounds);
  }
  [[nodiscard]] std::uint64_t stale_relearns() const {
    return counters.counter_value(metric::kRelearns, "cause=\"stale\"");
  }
  [[nodiscard]] std::uint64_t loss_relearns() const {
    return counters.counter_value(metric::kRelearns, "cause=\"loss\"");
  }
};

/// Receives a snapshot of one campaign's metrics whenever it progresses.
/// The fleet serializes invocations (never two at once), but they arrive
/// on whichever worker thread made the progress.
using FleetProgressFn = std::function<void(const CampaignMetrics&)>;

/// Cost-model-driven assignment of campaigns to workers.
///
/// Campaign runtimes differ by orders of magnitude once the substrate is
/// generated (a 3-member country IXP vs. a 300-member heavy hitter), so
/// the fleet no longer hands out campaigns one-by-one: it estimates each
/// campaign's cost up front (monitored links x probing rounds, from the
/// spec alone -- nothing is simulated) and packs them onto workers with a
/// greedy longest-processing-time pass.  The plan is a pure function of
/// (specs, jobs, campaign options): stable across machines and runs, so
/// fleet output stays byte-identical for any --jobs (pinned by
/// tests/test_fleet.cc).
struct ShardPlan {
  std::vector<double> cost;                      ///< per spec, link-rounds
  std::vector<std::vector<std::size_t>> shards;  ///< shard -> spec indices, run order
  std::vector<int> shard_of;                     ///< spec index -> shard
  /// Human-readable plan (for `afixp gen --shard-plan`).
  [[nodiscard]] std::string to_string(const std::vector<VpSpec>& specs) const;
};

/// Estimated cost of one campaign in link-rounds: every monitored link
/// contributes its membership-window overlap with the campaign window at
/// one unit per probing round, silent neighbors contribute a reduced
/// simulation-only weight, and each neighbor adds a constant build/bdrmap
/// charge.
double estimate_campaign_cost(const VpSpec& spec, const CampaignOptions& opt);

/// Packs `specs` onto `jobs` shards, heaviest first (greedy LPT with
/// deterministic tie-breaks).  `jobs` is clamped to [1, specs.size()].
ShardPlan plan_shards(const std::vector<VpSpec>& specs, int jobs, const CampaignOptions& opt);

struct FleetOptions {
  CampaignOptions campaign;
  /// Worker threads.  0 = auto: the IXP_JOBS environment variable if set,
  /// else hardware concurrency; always clamped to the fleet size.
  int jobs = 0;
  FleetProgressFn on_progress;
  /// Give each campaign its own obs::Registry shard and merge them into
  /// FleetResult::registry.  On by default; benches that measure the
  /// instrumentation-free hot path turn it off, which leaves every
  /// CampaignMetrics accessor reading zero.
  bool collect_metrics = true;
  /// When set (and non-empty), every campaign runs under this fault plan:
  /// each worker expands it with a per-VP seed derived from `fault_seed`
  /// and the spec index, so results stay independent of the job count.
  const FaultPlan* fault_plan = nullptr;
  std::uint64_t fault_seed = 1;
};

struct FleetResult {
  std::vector<VpCampaignResult> results;  ///< spec order
  std::vector<CampaignMetrics> metrics;   ///< spec order
  /// Fleet-wide registry: per-VP shards merged in *spec order* after the
  /// pool drains -- once as `vp="<name>"`-labelled copies and once into the
  /// unlabelled fleet totals -- so the merged contents (and any
  /// `--metrics-out` export of them) are byte-identical for any --jobs.
  obs::Registry registry;
  ShardPlan plan;                         ///< how campaigns were packed
  int jobs_used = 1;
  double wall_seconds = 0.0;              ///< whole-fleet wall clock
};

/// Runs every campaign in `specs` across the pool and returns results in
/// spec order.  A campaign that throws does not abort its siblings; the
/// first (lowest-index) exception is rethrown after the fleet drains.
FleetResult run_fleet(const std::vector<VpSpec>& specs, const FleetOptions& opt = {});

/// Renders a live one-line status of every campaign, rewritten in place
/// with '\r' on each progress event.  Point it at stderr so that table
/// output on stdout stays machine-readable and byte-identical across job
/// counts.  Call finish() (or destroy) to end the line.
class FleetStatusPrinter {
 public:
  FleetStatusPrinter(std::ostream& out, const std::vector<VpSpec>& specs);
  ~FleetStatusPrinter();

  /// Bind as the FleetProgressFn: printer(metrics).
  void operator()(const CampaignMetrics& m);
  void finish();

 private:
  void render();

  std::ostream& out_;
  std::vector<std::string> cells_;
  std::size_t last_width_ = 0;
  bool finished_ = false;
};

/// Prints the per-campaign metrics table (rounds, probes, probes/s,
/// bdrmap runs, links, wall, peak RSS) after a fleet run.
void print_fleet_metrics(std::ostream& out, const FleetResult& fleet);

}  // namespace ixp::analysis
