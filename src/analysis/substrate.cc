#include "analysis/substrate.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace ixp::analysis {
namespace {

// Generated number spaces; disjoint from the paper scenarios (real-world
// ASNs plus the engineered 64900/64901/64910 upstreams) and from the
// address-allocator pools.
constexpr std::uint32_t kIxpAsnBase = 3'000'000;
constexpr std::uint32_t kVpAsnBase = 3'100'000;
constexpr std::uint32_t kMemberAsnBase = 3'200'000;
constexpr std::uint32_t kTransitAsnBase = 3'600'000;
constexpr std::uint32_t kMemberAsnStride = 2048;  ///< per-IXP member ASN window

topo::IxpInfo make_ixp_info(const topo::TopoSpec& spec, int i, int region, Rng& rng) {
  topo::IxpInfo info;
  const auto idx = static_cast<std::uint32_t>(i);
  info.name = strformat("SIX%03d", i + 1);
  info.long_name = strformat("%s Substrate Internet eXchange %d", spec.name.c_str(), i + 1);
  info.country = strformat("S%c", 'A' + region % 26);
  info.city = strformat("City%03d", i + 1);
  info.sub_region = strformat("Region-%d", region + 1);
  info.ixp_asn = kIxpAsnBase + idx;
  info.launch_year = 1996 + static_cast<int>(rng.uniform_int(0, 20));
  // /22 peering LANs out of 197/8 (a /24 would cap an exchange at ~250
  // ports; the heavy-tailed presets go past that), /24 management out of
  // 198/8.  Both ranges are untouched by the paper scenarios (196/8) and
  // the allocator pools.
  info.peering_prefix = net::Ipv4Prefix(net::Ipv4Address((197u << 24) | (idx << 10)), 22);
  info.management_prefix = net::Ipv4Prefix(net::Ipv4Address((198u << 24) | (idx << 8)), 24);
  return info;
}

/// Draws the member count for one exchange from the configured
/// distribution, clamped to [members.min, members.max].
int draw_members(const topo::TopoSpec& spec, Rng& rng) {
  double raw = spec.members_mean;
  if (spec.members_dist == "uniform") {
    raw = static_cast<double>(rng.uniform_int(spec.members_min, spec.members_max));
  } else if (spec.members_dist == "pareto") {
    const auto xm = static_cast<double>(spec.members_min);
    // Shape chosen so the Pareto mean alpha*xm/(alpha-1) hits members.mean.
    const double alpha =
        spec.members_mean > xm ? spec.members_mean / (spec.members_mean - xm) : 8.0;
    raw = rng.pareto(alpha, xm);
  }
  const auto n = static_cast<int>(std::llround(raw));
  return std::clamp(n, spec.members_min, spec.members_max);
}

/// Picks the RTT-geography tier for one member: most sit in the exchange
/// building, a tail peers remotely from across the continent.
double draw_prop_ms(const topo::TopoSpec& spec, Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.70) return spec.rtt_fabric_ms;
  if (u < 0.85) return spec.rtt_metro_ms;
  if (u < 0.95) return spec.rtt_region_ms;
  return spec.rtt_continent_ms;
}

NeighborSpec make_member(const topo::TopoSpec& spec, const topo::IxpInfo& ixp, int ixp_idx,
                         int m, Rng& rng) {
  NeighborSpec n;
  n.name = strformat("M%03d-%03d", ixp_idx + 1, m + 1);
  n.asn = kMemberAsnBase + static_cast<std::uint32_t>(ixp_idx) * kMemberAsnStride +
          static_cast<std::uint32_t>(m);
  n.country = ixp.country;
  const double kind = rng.uniform();
  n.type = kind < 0.70   ? topo::AsType::kAccessIsp
           : kind < 0.85 ? topo::AsType::kMobile
           : kind < 0.95 ? topo::AsType::kContent
                         : topo::AsType::kEducation;
  n.lan_routers = rng.chance(spec.multi_router_fraction)
                      ? static_cast<int>(rng.uniform_int(2, 3))
                      : 1;
  n.ptp_links = rng.chance(spec.ptp_fraction) ? 1 : 0;
  const double prop_ms = draw_prop_ms(spec, rng);
  n.lan_prop_ms = prop_ms;
  n.ptp_prop_ms = std::max(prop_ms, 0.4);
  // Port capacity log-uniform across the configured range: small member
  // ports sit next to 10G heavy hitters, like real exchange member lists.
  const double log_lo = std::log(spec.capacity_min_mbps);
  const double log_hi = std::log(spec.capacity_max_mbps);
  n.port_capacity_bps = std::exp(rng.uniform(log_lo, log_hi)) * 1e6;

  // Behaviour mix.  Draws happen unconditionally so one member's
  // behaviour never perturbs another member's random stream.
  const bool silent = rng.chance(spec.silent_fraction);
  const bool congested = rng.chance(spec.congested_fraction);
  const bool noisy = rng.chance(spec.noise_fraction);
  const double aw_jitter = rng.uniform(0.8, 1.4);
  const double dtud_jitter = rng.uniform(0.7, 1.3);
  const double peak_hour = rng.uniform(12.0, 22.0);
  const double overload = rng.uniform(1.05, 1.30);
  const double noise_mag = rng.uniform(12.0, 45.0);
  const auto noise_seed = rng.next();
  n.silent = silent;
  if (congested && !silent) {
    CongestionSpec cs;
    cs.a_w_ms = spec.congested_aw_ms * aw_jitter;
    cs.dt_ud = Duration(static_cast<std::int64_t>(
        spec.congested_dtud_hours * dtud_jitter * static_cast<double>(kHour.count())));
    cs.peak_hour = peak_hour;
    cs.overload = overload;
    n.congestion.push_back(cs);
  }
  if (noisy && !silent && !congested) {
    NoiseShiftSpec ns;
    ns.magnitude_ms = noise_mag;
    ns.events = 1 + static_cast<int>(noise_seed % 4);
    ns.seed = noise_seed;
    n.noise_list.push_back(ns);
  }
  // Scenario-diversity draws (PR 10), gated on non-default knobs so every
  // pre-existing preset reproduces its exact pre-PR random streams.
  if (spec.remote_fraction > 0.0) {
    // Remote peering: the member reaches the exchange over a long resold
    // tail instead of an in-building port ("Poor Peering", PAPERS.md).
    const bool remote = rng.chance(spec.remote_fraction);
    const double stretch = rng.uniform(0.8, 1.3);
    if (remote) {
      n.lan_prop_ms = spec.rtt_remote_ms * stretch;
      n.ptp_prop_ms = std::max(n.lan_prop_ms, n.ptp_prop_ms);
    }
  }
  if (spec.facilities > 0) {
    const auto f = rng.uniform_int(0, spec.facilities - 1);
    n.facility = strformat("%s-F%d", ixp.name.c_str(), static_cast<int>(f) + 1);
  }
  return n;
}

}  // namespace

std::vector<VpSpec> generate_substrate(const topo::TopoSpec& spec) {
  if (const std::string msg = topo::validate_topo_spec(spec); !msg.empty()) {
    throw std::runtime_error("generate_substrate: " + msg);
  }
  if (spec.members_max >= static_cast<int>(kMemberAsnStride)) {
    throw std::runtime_error("generate_substrate: members.max exceeds the ASN stride");
  }

  std::vector<VpSpec> vps;
  vps.reserve(static_cast<std::size_t>(spec.ixps));
  Rng root(spec.seed);
  for (int i = 0; i < spec.ixps; ++i) {
    // One independent stream per exchange: adding IXP k+1 to a spec never
    // changes what IXPs 1..k generate.
    Rng rng = root.fork();
    const int region = i % spec.regions;

    VpSpec vp;
    vp.vp_name = strformat("S%03d", i + 1);
    vp.ixp = make_ixp_info(spec, i, region, rng);
    vp.vp_asn = kVpAsnBase + static_cast<std::uint32_t>(i);
    vp.vp_as_name = vp.ixp.name + "-CONTENT";
    vp.vp_org = vp.ixp.long_name;
    vp.country = vp.ixp.country;
    vp.vp_is_ixp_network = true;
    vp.vp_has_regional_transit = true;
    vp.vp_tail_ms = spec.vp_tail_ms;
    vp.vp_tail_jitter = spec.vp_tail_jitter;
    vp.seed = rng.next();
    vp.campaign_start = TimePoint{};
    vp.campaign_end = TimePoint(kDay * spec.days);
    for (int d = spec.snapshot_days; spec.snapshot_days > 0 && d < spec.days;
         d += spec.snapshot_days) {
      vp.snapshot_dates.push_back(TimePoint(kDay * d));
    }

    const int members = draw_members(spec, rng);
    vp.neighbors.reserve(static_cast<std::size_t>(members) +
                         static_cast<std::size_t>(spec.transit_depth - 1));
    for (int m = 0; m < members; ++m) {
      vp.neighbors.push_back(make_member(spec, vp.ixp, i, m, rng));
    }

    // Transit hierarchy above the built-in regional provider: depth 1 is
    // the regional upstream alone; each extra level adds an off-IXP
    // provider reached over a longer haul (regional, then continental).
    for (int t = 1; t < spec.transit_depth; ++t) {
      NeighborSpec up;
      up.name = strformat("T%d-%03d", t + 1, i + 1);
      up.asn = kTransitAsnBase + static_cast<std::uint32_t>(i) * 8 + static_cast<std::uint32_t>(t);
      up.country = vp.country;
      up.type = topo::AsType::kTransit;
      up.rel = NeighborSpec::Rel::kProviderOfVp;
      up.lan_routers = 0;
      up.ptp_links = 1;
      up.port_capacity_bps = 10e9;
      up.ptp_prop_ms = t == 1 ? spec.rtt_region_ms : spec.rtt_continent_ms;
      vp.neighbors.push_back(up);
    }

    vps.push_back(std::move(vp));
  }
  return vps;
}

SubstrateSummary summarize_substrate(const topo::TopoSpec& spec,
                                     const std::vector<VpSpec>& vps) {
  SubstrateSummary s;
  s.spec_name = spec.name;
  s.ixps = static_cast<int>(vps.size());
  for (const VpSpec& vp : vps) {
    for (const NeighborSpec& n : vp.neighbors) {
      ++s.members;
      if (n.silent) {
        ++s.silent_members;
        continue;  // invisible: contributes no monitored links
      }
      if (!n.congestion.empty()) ++s.congested_members;
      if (!n.noise_list.empty()) ++s.noisy_members;
      s.lan_links += static_cast<std::uint64_t>(n.lan_routers);
      s.ptp_links += static_cast<std::uint64_t>(n.ptp_links);
    }
  }
  return s;
}

}  // namespace ixp::analysis
