// The casebook: structured records of the paper's §6.2 case studies.
//
// The paper validates its congestion inferences by interviewing IXP
// operators; we cannot interview anyone, so the casebook plays that role:
// each case carries the documented root cause, the expected waveform
// parameters, and a check() that compares a measured LinkReport against
// them.  The figure benches and the integration tests both use it.
#pragma once

#include <string>
#include <vector>

#include "tslp/classifier.h"

namespace ixp::analysis {

struct CaseStudy {
  std::string id;            ///< "GIXA-GHANATEL", "GIXA-KNET", "QCELL-NETPAGE"
  std::string vp;
  std::string cause;         ///< the operators' explanation, quoted from §6.2
  double expected_a_w_ms;    ///< paper's reported A_w
  Duration expected_dt_ud;   ///< paper's reported dt_UD
  bool sustained;            ///< paper's persistence verdict
  bool weekday_heavier;      ///< weekday amplitude exceeds weekend
  double expected_avg_loss;  ///< average loss rate where reported (else < 0)

  /// Tolerances for check(): relative error allowed on A_w and dt_UD.
  double a_w_tolerance = 0.35;
  double dt_ud_tolerance = 0.5;
};

/// The three documented cases.
const std::vector<CaseStudy>& casebook();
const CaseStudy& case_ghanatel();
const CaseStudy& case_knet();
const CaseStudy& case_netpage();

struct CaseCheck {
  bool verdict_congested = false;  ///< detector called the link congested
  bool a_w_in_range = false;
  bool dt_ud_in_range = false;
  bool persistence_matches = false;
  bool weekday_pattern_matches = false;

  [[nodiscard]] bool all() const {
    return verdict_congested && a_w_in_range && dt_ud_in_range && persistence_matches &&
           weekday_pattern_matches;
  }
};

/// Compares a measured report against the case study's documented values.
CaseCheck check_case(const CaseStudy& cs, const tslp::LinkReport& report);

}  // namespace ixp::analysis
