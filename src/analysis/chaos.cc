#include "analysis/chaos.h"

#include <set>

namespace ixp::analysis {

const char* ChaosRow::outcome() const {
  return truth ? (classified ? "TP" : "FN") : (classified ? "FP" : "TN");
}

double ChaosScore::precision() const {
  return tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 1.0;
}

double ChaosScore::recall() const {
  return tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 1.0;
}

bool ChaosScore::case_studies_ok() const {
  for (const ChaosRow& r : case_studies) {
    if (r.truth != r.classified) return false;
  }
  return true;
}

ChaosScore score_chaos(const std::vector<VpSpec>& specs,
                       const std::vector<VpCampaignResult>& results,
                       Duration duration_override) {
  ChaosScore score;
  score.per_vp.resize(specs.size());
  for (std::size_t i = 0; i < specs.size() && i < results.size(); ++i) {
    const VpSpec& spec = specs[i];
    const VpCampaignResult& result = results[i];
    const TimePoint start = spec.campaign_start;
    const TimePoint end = duration_override.count() > 0 ? start + duration_override
                                                        : spec.campaign_end;
    std::set<Asn> congested_asns;
    for (std::size_t k = 0; k < result.reports.size(); ++k) {
      if (result.reports[k].congested()) congested_asns.insert(result.series[k].far_asn);
    }
    const auto overlaps = [&](TimePoint b, TimePoint e) { return b < end && e > start; };
    ChaosVpScore& vp = score.per_vp[i];
    for (const auto& n : spec.neighbors) {
      if (n.silent) continue;  // invisible to the prober by design
      ChaosRow row;
      row.vp = i;
      row.asn = n.asn;
      row.name = n.name;
      for (const auto& c : n.congestion) row.truth |= overlaps(c.begin, c.end);
      for (const auto& c : n.congestion_ptp) row.truth |= overlaps(c.begin, c.end);
      if (n.slow_icmp) row.truth |= overlaps(n.slow_icmp->begin, n.slow_icmp->end);
      row.classified = congested_asns.count(n.asn) > 0;
      (row.truth ? (row.classified ? vp.tp : vp.fn) : (row.classified ? vp.fp : vp.tn)) += 1;
      if (row.truth || row.classified) score.interesting.push_back(row);
      if (spec.vp_name == "VP1" && (n.asn == 29614 || n.asn == 33786)) {
        score.case_studies.push_back(row);
      }
    }
    score.tp += vp.tp;
    score.fp += vp.fp;
    score.fn += vp.fn;
    score.tn += vp.tn;
  }
  return score;
}

}  // namespace ixp::analysis
