#include "analysis/chaos.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analysis/facility.h"
#include "sim/faults.h"

namespace ixp::analysis {

const char* ChaosRow::outcome() const {
  return truth ? (classified ? "TP" : "FN") : (classified ? "FP" : "TN");
}

double FamilyScore::precision() const {
  return tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 1.0;
}

double FamilyScore::recall() const {
  return tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 1.0;
}

double ChaosScore::precision() const {
  return tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 1.0;
}

double ChaosScore::recall() const {
  return tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 1.0;
}

bool ChaosScore::case_studies_ok() const {
  for (const ChaosRow& r : case_studies) {
    if (r.truth != r.classified) return false;
  }
  return true;
}

ChaosScore score_chaos(const std::vector<VpSpec>& specs,
                       const std::vector<VpCampaignResult>& results,
                       Duration duration_override, std::string_view family) {
  ChaosScore score;
  score.families.push_back({std::string(family)});
  score.per_vp.resize(specs.size());
  for (std::size_t i = 0; i < specs.size() && i < results.size(); ++i) {
    const VpSpec& spec = specs[i];
    const VpCampaignResult& result = results[i];
    const TimePoint start = spec.campaign_start;
    const TimePoint end = duration_override.count() > 0 ? start + duration_override
                                                        : spec.campaign_end;
    std::set<Asn> congested_asns;
    for (std::size_t k = 0; k < result.reports.size(); ++k) {
      if (result.reports[k].congested()) congested_asns.insert(result.series[k].far_asn);
    }
    const auto overlaps = [&](TimePoint b, TimePoint e) { return b < end && e > start; };
    ChaosVpScore& vp = score.per_vp[i];
    for (const auto& n : spec.neighbors) {
      if (n.silent) continue;  // invisible to the prober by design
      ChaosRow row;
      row.vp = i;
      row.asn = n.asn;
      row.name = n.name;
      for (const auto& c : n.congestion) row.truth |= overlaps(c.begin, c.end);
      for (const auto& c : n.congestion_ptp) row.truth |= overlaps(c.begin, c.end);
      if (n.slow_icmp) row.truth |= overlaps(n.slow_icmp->begin, n.slow_icmp->end);
      row.classified = congested_asns.count(n.asn) > 0;
      (row.truth ? (row.classified ? vp.tp : vp.fn) : (row.classified ? vp.fp : vp.tn)) += 1;
      if (row.truth || row.classified) score.interesting.push_back(row);
      if (spec.vp_name == "VP1" && (n.asn == 29614 || n.asn == 33786)) {
        score.case_studies.push_back(row);
      }
    }
    score.tp += vp.tp;
    score.fp += vp.fp;
    score.fn += vp.fn;
    score.tn += vp.tn;
  }
  score.families[0].tp = score.tp;
  score.families[0].fp = score.fp;
  score.families[0].fn = score.fn;
  score.families[0].tn = score.tn;
  return score;
}

FamilyScore score_facilities(const std::vector<VpSpec>& specs,
                             const std::vector<VpCampaignResult>& results,
                             const FaultPlan& plan, std::uint64_t fault_seed,
                             Duration duration_override) {
  FamilyScore score;
  score.family = "facility-detector";
  // A far series that stops answering for at least this long counts as a
  // disrupted link.  Facility-outage windows are >= 6 h (72 rounds at the
  // 5-minute cadence), so an hour of consecutive loss separates them
  // cleanly from incidental probe loss.
  constexpr std::size_t kDisruptedGapRounds = 12;
  for (std::size_t i = 0; i < specs.size() && i < results.size(); ++i) {
    const VpSpec& spec = specs[i];
    const VpCampaignResult& result = results[i];
    const TimePoint start = spec.campaign_start;
    const TimePoint end = duration_override.count() > 0 ? start + duration_override
                                                        : spec.campaign_end;

    // Mirror attach_fault_plan's facility enumeration exactly: facilities
    // in neighbor order (first appearance), restricted to clean always-on
    // members, so nth_facility resolves to the same name here and there.
    std::vector<std::string> facilities;
    std::map<Asn, std::string> facility_of;
    for (const auto& n : spec.neighbors) {
      if (!n.facility.empty()) facility_of.emplace(n.asn, n.facility);
      const bool engineered = !n.congestion.empty() || !n.congestion_ptp.empty() ||
                              n.slow_icmp.has_value() || !n.noise_list.empty() ||
                              !n.capacity_upgrades.empty();
      const bool windowed = n.join > spec.campaign_start || n.leave < kForever ||
                            !n.lan_windows.empty() || !n.ptp_windows.empty();
      if (n.facility.empty() || windowed || engineered) continue;
      if (std::find(facilities.begin(), facilities.end(), n.facility) == facilities.end()) {
        facilities.push_back(n.facility);
      }
    }

    // Ground truth: re-expand the plan with the fleet's per-VP seed and
    // mark the facility each fault targeted (when any realized window
    // overlaps the measured window).
    std::set<std::string> truth;
    if (!plan.facility_outages.empty() && !facilities.empty()) {
      sim::FaultInjector fi(plan, fault_seed + (i + 1) * 0x9e3779b97f4a7c15ULL, start, end);
      for (std::size_t k = 0; k < plan.facility_outages.size(); ++k) {
        const auto& fac =
            facilities[static_cast<std::size_t>(plan.facility_outages[k].nth_facility) %
                       facilities.size()];
        for (const auto& w : fi.facility_windows()[k]) {
          if (w.begin < end && w.end > start) {
            truth.insert(fac);
            break;
          }
        }
      }
    }

    // Detection: one observation per monitored link, disrupted when its
    // far series went dark for kDisruptedGapRounds consecutive rounds.
    std::vector<FacilityObservation> obs;
    for (const auto& ls : result.series) {
      FacilityObservation o;
      const auto it = facility_of.find(ls.far_asn);
      if (it != facility_of.end()) o.facility = it->second;
      o.link_key = ls.key;
      o.disrupted = !tslp::find_gaps(ls.far_rtt, kDisruptedGapRounds).empty();
      obs.push_back(std::move(o));
    }
    std::set<std::string> detected;
    for (const auto& v : detect_facility_disruptions(obs)) {
      if (v.disrupted_verdict) detected.insert(v.facility);
    }

    for (const auto& fac : facilities) {
      const bool t = truth.count(fac) > 0;
      const bool d = detected.count(fac) > 0;
      (t ? (d ? score.tp : score.fn) : (d ? score.fp : score.tn)) += 1;
    }
    // A detection outside the eligible-facility universe is still a false
    // positive (it can only come from the detector misfiring).
    for (const auto& fac : detected) {
      if (std::find(facilities.begin(), facilities.end(), fac) == facilities.end()) ++score.fp;
    }
  }
  return score;
}

}  // namespace ixp::analysis
