#include "analysis/selftest.h"

#include <cmath>
#include <ostream>

#include "stats/changepoint.h"
#include "stats/periodicity.h"
#include "tslp/classifier.h"
#include "tslp/level_shift.h"
#include "tslp/loss_analysis.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ixp::analysis {

namespace {

using tslp::Episode;
using tslp::LevelShiftDetector;
using tslp::LevelShiftResult;
using tslp::RttSeries;

// Absolute tolerance for recorded doubles.  The fixtures are deterministic
// (seeded bootstrap streams), so this only has to absorb harmless
// compiler-level FP variation, not algorithmic drift.
constexpr double kTol = 1e-6;

// Diurnal congestion fixture: `days` days of `base_ms` RTT with a plateau
// of `magnitude_ms` between `start_hour` and `start_hour + width_hours`,
// plus one-sided noise.  Mirrors the generator the gtest suite uses, with
// its own seeds so the corpus is independent of the tests.
RttSeries diurnal_series(int days, double base_ms, double magnitude_ms, double start_hour,
                         double width_hours, double noise_ms, std::uint64_t seed,
                         Duration interval = kMinute * 5) {
  Rng rng(seed);
  RttSeries s;
  s.start = TimePoint{};
  s.interval = interval;
  const auto n = static_cast<std::size_t>((kDay.count() * days) / interval.count());
  for (std::size_t i = 0; i < n; ++i) {
    const double hour = std::fmod(to_hours(s.time_of(i).since_epoch()), 24.0);
    const bool in_window = hour >= start_hour && hour < start_hour + width_hours;
    const double level = base_ms + (in_window ? magnitude_ms : 0.0);
    s.ms.push_back(level + noise_ms * std::fabs(rng.normal()));
  }
  return s;
}

void record_episodes(GoldenRecord& rec, const LevelShiftResult& res, Duration interval) {
  std::vector<double> begins, ends, magnitudes, p_values;
  for (const auto& e : res.episodes) {
    begins.push_back(static_cast<double>(e.begin));
    ends.push_back(static_cast<double>(e.end));
    magnitudes.push_back(e.magnitude_ms);
    p_values.push_back(e.p_value);
  }
  rec.set("baseline_ms", res.baseline_ms, kTol);
  rec.set("episode_count", static_cast<double>(res.episodes.size()));
  rec.set("episode_begin", begins);
  rec.set("episode_end", ends);
  rec.set("episode_magnitude_ms", magnitudes, kTol);
  rec.set("episode_p_value", p_values, kTol);
  rec.set("average_magnitude_ms", res.average_magnitude(), kTol);
  rec.set("average_duration_hours", to_hours(res.average_duration(interval)), kTol);
  rec.set("average_period_hours", to_hours(res.average_period(interval)), kTol);
}

// Level shifts on a textbook diurnal link: one 6-hour plateau per day.
GoldenRecord case_level_shift_diurnal() {
  const auto s = diurnal_series(10, 2.0, 20.0, 12.0, 6.0, 0.3, 101);
  GoldenRecord rec;
  record_episodes(rec, LevelShiftDetector().detect(s), s.interval);
  return rec;
}

// The sanitization step on hand-built raw episodes, including the nested
// and overlapping shapes that used to shrink the merged span.
GoldenRecord case_level_shift_merge() {
  std::vector<Episode> raw;
  raw.push_back({100, 300, 10.0});
  raw.push_back({150, 250, 50.0});  // nested: contributes no new samples
  raw.push_back({290, 320, 25.0});  // overlaps the tail
  raw.push_back({330, 360, 40.0});  // separated by a small gap
  raw.push_back({500, 520, 5.0});   // distinct episode
  const auto merged = tslp::sanitize_episodes(std::move(raw), 12);
  GoldenRecord rec;
  std::vector<double> begins, ends, magnitudes;
  for (const auto& e : merged) {
    begins.push_back(static_cast<double>(e.begin));
    ends.push_back(static_cast<double>(e.end));
    magnitudes.push_back(e.magnitude_ms);
  }
  rec.set("merged_count", static_cast<double>(merged.size()));
  rec.set("merged_begin", begins);
  rec.set("merged_end", ends);
  rec.set("merged_magnitude_ms", magnitudes, kTol);
  return rec;
}

// Raw change-point detection on a three-level staircase with seeded noise.
GoldenRecord case_changepoint_staircase() {
  Rng rng(202);
  std::vector<double> v;
  for (int i = 0; i < 600; ++i) {
    const double level = i < 200 ? 10.0 : (i < 400 ? 25.0 : 14.0);
    v.push_back(level + 0.5 * rng.normal());
  }
  const auto cps = stats::detect_change_points(v);
  GoldenRecord rec;
  std::vector<double> index, confidence, before, after;
  for (const auto& cp : cps) {
    index.push_back(static_cast<double>(cp.index));
    confidence.push_back(cp.confidence);
    before.push_back(cp.level_before);
    after.push_back(cp.level_after);
  }
  rec.set("change_point_count", static_cast<double>(cps.size()));
  rec.set("change_point_index", index);
  rec.set("change_point_confidence", confidence, kTol);
  rec.set("level_before", before, kTol);
  rec.set("level_after", after, kTol);
  return rec;
}

void record_diurnal(GoldenRecord& rec, const stats::DiurnalScore& score) {
  rec.set("acf_day", score.acf_day, kTol);
  rec.set("elevated_day_frac", score.elevated_day_frac, kTol);
  rec.set("elevated_days", score.elevated_days);
  rec.set("recurring", score.recurring ? 1.0 : 0.0);
}

// diurnal_score at the paper's 5-minute cadence (288 samples/day exactly).
GoldenRecord case_diurnal_score() {
  const auto s = diurnal_series(12, 2.0, 15.0, 11.0, 5.0, 0.4, 303);
  stats::DiurnalOptions opt;
  opt.samples_per_day = tslp::samples_per_day(s.interval);
  GoldenRecord rec;
  rec.set("samples_per_day", static_cast<double>(opt.samples_per_day));
  record_diurnal(rec, stats::diurnal_score(s.ms, opt));
  return rec;
}

// The same analysis at a 7-minute cadence, which does not divide 24 h:
// 205.71 rounds to 206 (truncation used to slice days at 205).
GoldenRecord case_diurnal_nondivisor_cadence() {
  const auto s = diurnal_series(12, 2.0, 15.0, 11.0, 5.0, 0.4, 404, kMinute * 7);
  stats::DiurnalOptions opt;
  opt.samples_per_day = tslp::samples_per_day(s.interval);
  GoldenRecord rec;
  rec.set("samples_per_day", static_cast<double>(opt.samples_per_day));
  record_diurnal(rec, stats::diurnal_score(s.ms, opt));
  return rec;
}

// Loss batches correlated against detected episodes (the Fig 2b/3b logic).
GoldenRecord case_loss_correlation() {
  const auto s = diurnal_series(10, 2.0, 20.0, 12.0, 6.0, 0.3, 505);
  const auto shifts = LevelShiftDetector().detect(s);
  tslp::LossSeries loss;
  for (std::size_t i = 0; i < s.ms.size(); i += 12) {
    bool inside = false;
    for (const auto& e : shifts.episodes) {
      if (i >= e.begin && i < e.end) inside = true;
    }
    tslp::LossBatch b;
    b.at = s.time_of(i);
    b.sent = 100;
    b.lost = inside ? 18 : 1;
    loss.batches.push_back(b);
  }
  const auto corr = tslp::correlate_loss(loss, s, shifts);
  GoldenRecord rec;
  rec.set("batches_in", static_cast<double>(corr.batches_in));
  rec.set("batches_out", static_cast<double>(corr.batches_out));
  rec.set("loss_in_episodes", corr.loss_in_episodes, kTol);
  rec.set("loss_outside", corr.loss_outside, kTol);
  rec.set("correlation", corr.correlation, kTol);
  rec.set("average_loss", corr.average_loss(), kTol);
  return rec;
}

// End-to-end classification of a congested link, pinning the waveform
// numbers (A_w, dt_UD, period) that feed the paper's case-study tables.
GoldenRecord case_classifier_report() {
  tslp::LinkSeries link;
  link.key = "selftest";
  link.far_rtt = diurnal_series(14, 2.0, 18.0, 12.0, 6.0, 0.3, 606);
  link.near_rtt = diurnal_series(14, 1.0, 0.0, 0.0, 0.0, 0.2, 607);
  const auto rep = tslp::CongestionClassifier().classify(link);
  GoldenRecord rec;
  rec.set("verdict", static_cast<double>(rep.verdict));
  rec.set("persistence", static_cast<double>(rep.persistence));
  rec.set("near_clean", rep.near_clean ? 1.0 : 0.0);
  rec.set("a_w_ms", rep.waveform.a_w_ms, kTol);
  rec.set("dt_ud_hours", to_hours(rep.waveform.dt_ud), kTol);
  rec.set("period_hours", to_hours(rep.waveform.period), kTol);
  rec.set("weekday_peak_ms", rep.waveform.weekday_peak_ms, kTol);
  rec.set("weekend_peak_ms", rep.waveform.weekend_peak_ms, kTol);
  record_diurnal(rec, rep.diurnal);
  return rec;
}

}  // namespace

const std::vector<SelftestCase>& selftest_cases() {
  static const std::vector<SelftestCase> cases = {
      {"level_shift_diurnal", "level-shift episodes on a diurnal fixture",
       &case_level_shift_diurnal},
      {"level_shift_merge", "episode sanitization incl. nested/overlapping merges",
       &case_level_shift_merge},
      {"changepoint_staircase", "bootstrap CUSUM change points on a staircase",
       &case_changepoint_staircase},
      {"diurnal_score", "diurnal scoring at the paper's 5-minute cadence",
       &case_diurnal_score},
      {"diurnal_nondivisor_cadence", "diurnal scoring at a cadence that does not divide 24h",
       &case_diurnal_nondivisor_cadence},
      {"loss_correlation", "loss-rate correlation against detected episodes",
       &case_loss_correlation},
      {"classifier_report", "end-to-end congestion classification waveform",
       &case_classifier_report},
  };
  return cases;
}

int run_selftest(std::ostream& os, const std::string& golden_dir, bool update,
                 const std::string& only) {
  int failures = 0;
  int ran = 0;
  for (const auto& c : selftest_cases()) {
    if (!only.empty() && c.name != only) continue;
    ++ran;
    const std::string path = golden_dir + "/" + c.name + ".golden";
    const GoldenRecord actual = c.run();
    if (update) {
      if (actual.save(path)) {
        os << "selftest: wrote " << path << "\n";
      } else {
        os << "selftest: FAILED to write " << path << "\n";
        ++failures;
      }
      continue;
    }
    const auto expected = GoldenRecord::load(path);
    if (!expected) {
      os << "selftest: " << c.name << " ... FAIL (cannot read " << path
         << "; regenerate with `afixp selftest --update-golden`)\n";
      ++failures;
      continue;
    }
    const auto mismatches = GoldenRecord::diff(*expected, actual);
    if (mismatches.empty()) {
      os << "selftest: " << c.name << " ... OK (" << c.description << ")\n";
      continue;
    }
    ++failures;
    os << "selftest: " << c.name << " ... FAIL (" << c.description << ")\n";
    for (const auto& m : mismatches) os << "  " << m << "\n";
  }
  if (ran == 0) {
    os << "selftest: no case named '" << only << "'\n";
    return 1;
  }
  if (!update) {
    os << strformat("selftest: %d/%d cases OK\n", ran - failures, ran);
  }
  return failures;
}

}  // namespace ixp::analysis
