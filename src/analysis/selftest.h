// The golden-regression selftest (layer 1 of the correctness harness,
// driven by `afixp selftest` and the `selftest` CTest entry).
//
// Each case builds a small synthetic RTT/loss fixture with analytically
// known structure (episode positions, magnitudes, periods), runs the real
// statistics path (LevelShiftDetector, detect_change_points, diurnal_score,
// correlate_loss, CongestionClassifier), and serializes the outputs into a
// util/golden.h record.  The records checked into tests/golden/ pin those
// outputs: any silent numeric drift -- truncation, merge, indexing, seed
// handling -- shows up as a tolerance-aware diff instead of a skewed table.
//
// `--update-golden` regenerates the corpus after an *intentional* behaviour
// change; the diff of the .golden files then documents exactly what moved.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/golden.h"

namespace ixp::analysis {

struct SelftestCase {
  std::string name;         ///< golden file is <name>.golden
  std::string description;  ///< one line, shown when the case runs
  GoldenRecord (*run)();    ///< deterministic: same output on every call
};

/// The registered cases, in execution order.
const std::vector<SelftestCase>& selftest_cases();

/// Runs every case (or just `only`, when non-empty) against the records in
/// `golden_dir`.  With `update` set, rewrites the records instead of
/// comparing.  Progress and diffs go to `os`; returns the number of failed
/// cases (0 = success).
int run_selftest(std::ostream& os, const std::string& golden_dir, bool update,
                 const std::string& only = "");

}  // namespace ixp::analysis
