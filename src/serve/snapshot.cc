#include "serve/snapshot.h"

#include <algorithm>
#include <map>

#include "analysis/facility.h"
#include "util/strings.h"

namespace ixp::serve {
namespace {

// Minimal JSON string escaper.  Link keys, VP names, and IXP names are
// plain ASCII by construction, but the renderers must stay safe for any
// input that reaches a snapshot.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_link_json(std::string& out, const LinkState& l, bool with_episodes) {
  out += "{";
  out += strformat("\"key\":\"%s\",", json_escape(l.key).c_str());
  out += strformat("\"vp\":\"%s\",", json_escape(l.vp_name).c_str());
  out += strformat("\"ixp\":\"%s\",", json_escape(l.ixp).c_str());
  out += strformat("\"far_asn\":%u,", l.far_asn);
  out += strformat("\"at_ixp\":%s,", l.at_ixp ? "true" : "false");
  if (!l.facility.empty()) {
    out += strformat("\"facility\":\"%s\",", json_escape(l.facility).c_str());
  }
  out += strformat("\"samples\":%zu,", l.samples);
  out += strformat("\"baseline_ms\":%.6g,", l.baseline_ms);
  out += strformat("\"coverage\":%.6g,", l.coverage);
  out += strformat("\"refused_low_coverage\":%s,", l.refused_low_coverage ? "true" : "false");
  out += strformat("\"episode_count\":%zu,", l.episodes.size());
  out += strformat("\"max_magnitude_ms\":%.6g,", l.max_magnitude_ms());
  if (l.has_verdict) {
    out += strformat("\"verdict\":\"%s\",", verdict_name(l.verdict));
    out += strformat("\"persistence\":\"%s\",", persistence_name(l.persistence));
    out += strformat("\"diurnal\":%s,", l.diurnal ? "true" : "false");
    out += strformat("\"near_clean\":%s,", l.near_clean ? "true" : "false");
  } else {
    out += "\"verdict\":null,";
  }
  if (with_episodes) {
    out += "\"episodes\":[";
    for (std::size_t i = 0; i < l.episodes.size(); ++i) {
      const tslp::Episode& e = l.episodes[i];
      if (i > 0) out += ",";
      out += strformat("{\"begin_round\":%zu,\"end_round\":%zu,"
                       "\"magnitude_ms\":%.6g,\"p_value\":%.6g}",
                       e.begin, e.end, e.magnitude_ms, e.p_value);
    }
    out += "],";
  }
  out.pop_back();  // trailing comma
  out += "}";
}

void append_snapshot_header(std::string& out, const Snapshot& snap) {
  out += strformat("\"epoch\":%llu,\"pass\":%llu,\"final\":%s,\"sim_time\":\"%s\",",
                   static_cast<unsigned long long>(snap.epoch),
                   static_cast<unsigned long long>(snap.pass),
                   snap.final_pass ? "true" : "false",
                   format_time(snap.sim_time).c_str());
}

bool rank_less(const LinkState& a, const LinkState& b) {
  if (a.congested() != b.congested()) return a.congested();
  const double ma = a.max_magnitude_ms(), mb = b.max_magnitude_ms();
  if (ma != mb) return ma > mb;
  if (a.key != b.key) return a.key < b.key;
  return a.vp_name < b.vp_name;
}

/// A link counts as disrupted for facility aggregation when its far side
/// never produced enough coverage to judge, or went dark for over 10 % of
/// its rounds — the snapshot-level proxy for "all links at this facility
/// dropped together".
bool link_disrupted(const LinkState& l) {
  return l.refused_low_coverage || l.coverage < 0.90;
}

struct FacilityAgg {
  std::size_t links = 0;
  std::size_t congested = 0;
  std::size_t disrupted = 0;
  double max_magnitude_ms = 0.0;
  double p_value = 1.0;
  bool disrupted_verdict = false;
  std::vector<const LinkState*> members;
};

/// Groups the snapshot's links by facility and runs the facility
/// aggregation detector over every link (unassigned links feed the
/// background disruption rate only).  Returned in detector rank order.
std::vector<std::pair<std::string, FacilityAgg>> aggregate_facilities(const Snapshot& snap) {
  std::vector<analysis::FacilityObservation> obs;
  obs.reserve(snap.links.size());
  std::map<std::string, FacilityAgg> agg;
  for (const LinkState& l : snap.links) {
    obs.push_back({l.facility, l.vp_name + "/" + l.key, link_disrupted(l)});
    if (l.facility.empty()) continue;
    FacilityAgg& a = agg[l.facility];
    ++a.links;
    if (l.congested()) ++a.congested;
    if (link_disrupted(l)) ++a.disrupted;
    a.max_magnitude_ms = std::max(a.max_magnitude_ms, l.max_magnitude_ms());
    a.members.push_back(&l);
  }
  std::vector<std::pair<std::string, FacilityAgg>> out;
  out.reserve(agg.size());
  for (const analysis::FacilityVerdict& v : analysis::detect_facility_disruptions(obs)) {
    const auto it = agg.find(v.facility);
    if (it == agg.end()) continue;
    it->second.p_value = v.p_value;
    it->second.disrupted_verdict = v.disrupted_verdict;
    out.emplace_back(it->first, std::move(it->second));
  }
  return out;
}

void append_facility_json(std::string& out, const std::string& name, const FacilityAgg& a) {
  out += "{";
  out += strformat("\"facility\":\"%s\",", json_escape(name).c_str());
  out += strformat("\"links\":%zu,", a.links);
  out += strformat("\"congested\":%zu,", a.congested);
  out += strformat("\"disrupted\":%zu,", a.disrupted);
  out += strformat("\"p_value\":%.6g,", a.p_value);
  out += strformat("\"disrupted_verdict\":%s,", a.disrupted_verdict ? "true" : "false");
  out += strformat("\"max_magnitude_ms\":%.6g}", a.max_magnitude_ms);
}

}  // namespace

double LinkState::max_magnitude_ms() const {
  double m = 0.0;
  for (const tslp::Episode& e : episodes) m = std::max(m, e.magnitude_ms);
  return m;
}

const char* verdict_name(tslp::Verdict v) {
  switch (v) {
    case tslp::Verdict::kNotCongested: return "not_congested";
    case tslp::Verdict::kPotentiallyCongested: return "potentially_congested";
    case tslp::Verdict::kInconclusive: return "inconclusive";
    case tslp::Verdict::kCongested: return "congested";
  }
  return "unknown";
}

const char* persistence_name(tslp::Persistence p) {
  switch (p) {
    case tslp::Persistence::kNone: return "none";
    case tslp::Persistence::kTransient: return "transient";
    case tslp::Persistence::kSustained: return "sustained";
  }
  return "unknown";
}

std::string render_links_top(const Snapshot& snap, std::size_t n) {
  std::string out = "{";
  append_snapshot_header(out, snap);
  out += strformat("\"total_links\":%zu,\"links\":[", snap.links.size());
  const std::size_t count = std::min(n, snap.links.size());
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) out += ",";
    append_link_json(out, snap.links[i], /*with_episodes=*/false);
  }
  out += "]}";
  return out;
}

bool render_ixp_summary(const Snapshot& snap, std::string_view ixp, std::string* out) {
  std::size_t links = 0, congested = 0, potentially = 0, refused = 0, episodes = 0;
  std::size_t with_verdict = 0;
  double max_mag = 0.0;
  for (const LinkState& l : snap.links) {
    if (l.ixp != ixp) continue;
    ++links;
    if (l.congested()) ++congested;
    if (l.has_verdict) {
      ++with_verdict;
      if (l.verdict != tslp::Verdict::kNotCongested) ++potentially;
    } else if (!l.episodes.empty()) {
      ++potentially;  // live evidence only: shifts seen, verdict pending
    }
    if (l.refused_low_coverage) ++refused;
    episodes += l.episodes.size();
    max_mag = std::max(max_mag, l.max_magnitude_ms());
  }
  if (links == 0) return false;
  std::string body = "{";
  append_snapshot_header(body, snap);
  body += strformat("\"ixp\":\"%s\",", json_escape(ixp).c_str());
  body += strformat("\"links\":%zu,", links);
  body += strformat("\"classified\":%zu,", with_verdict);
  body += strformat("\"congested\":%zu,", congested);
  body += strformat("\"potentially_congested\":%zu,", potentially);
  body += strformat("\"refused_low_coverage\":%zu,", refused);
  body += strformat("\"episodes\":%zu,", episodes);
  body += strformat("\"max_magnitude_ms\":%.6g}", max_mag);
  *out = std::move(body);
  return true;
}

bool render_link_episodes(const Snapshot& snap, std::string_view key, std::string* out) {
  for (const LinkState& l : snap.links) {
    if (l.key != key) continue;
    std::string body = "{";
    append_snapshot_header(body, snap);
    body += "\"link\":";
    append_link_json(body, l, /*with_episodes=*/true);
    body += "}";
    *out = std::move(body);
    return true;
  }
  return false;
}

std::string render_facilities_top(const Snapshot& snap, std::size_t n) {
  const auto ranked = aggregate_facilities(snap);
  std::string out = "{";
  append_snapshot_header(out, snap);
  out += strformat("\"total_facilities\":%zu,\"facilities\":[", ranked.size());
  const std::size_t count = std::min(n, ranked.size());
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) out += ",";
    append_facility_json(out, ranked[i].first, ranked[i].second);
  }
  out += "]}";
  return out;
}

bool render_facility_summary(const Snapshot& snap, std::string_view facility,
                             std::string* out) {
  const auto ranked = aggregate_facilities(snap);
  for (const auto& [name, agg] : ranked) {
    if (name != facility) continue;
    std::string body = "{";
    append_snapshot_header(body, snap);
    body += "\"summary\":";
    append_facility_json(body, name, agg);
    body += ",\"links\":[";
    for (std::size_t i = 0; i < agg.members.size(); ++i) {
      const LinkState& l = *agg.members[i];
      if (i > 0) body += ",";
      body += strformat("{\"key\":\"%s\",\"vp\":\"%s\",\"coverage\":%.6g,"
                        "\"disrupted\":%s}",
                        json_escape(l.key).c_str(), json_escape(l.vp_name).c_str(),
                        l.coverage, link_disrupted(l) ? "true" : "false");
    }
    body += "]}";
    *out = std::move(body);
    return true;
  }
  return false;
}

void SnapshotBuilder::fold_live(const std::string& vp, const std::string& ixp,
                                const analysis::LiveVerdictBatch& batch) {
  const std::lock_guard<std::mutex> lock(mu_);
  sim_time_ = std::max(sim_time_, batch.at);
  for (const analysis::LiveLinkVerdict& v : batch.links) {
    LinkState& l = links_[vp + "/" + v.key];
    l.key = v.key;
    l.vp_name = vp;
    l.ixp = ixp;
    l.far_asn = v.far_asn;
    l.at_ixp = v.at_ixp;
    if (const auto it = facility_of_.find(vp + "/" + std::to_string(v.far_asn));
        it != facility_of_.end()) {
      l.facility = it->second;
    }
    l.samples = v.samples;
    l.baseline_ms = v.far.baseline_ms;
    l.coverage = v.far.coverage;
    l.refused_low_coverage = v.far.refused_low_coverage;
    l.episodes = v.far.episodes;
    // A live fold never clears a final verdict from an earlier pass; the
    // verdict stays until this pass's final fold replaces it.
  }
}

void SnapshotBuilder::fold_final(const std::string& vp, const std::string& ixp,
                                 const analysis::VpCampaignResult& result) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < result.reports.size() && i < result.series.size(); ++i) {
    const tslp::LinkReport& rep = result.reports[i];
    const tslp::LinkSeries& ls = result.series[i];
    LinkState& l = links_[vp + "/" + ls.key];
    l.key = ls.key;
    l.vp_name = vp;
    l.ixp = ixp;
    l.far_asn = ls.far_asn;
    l.at_ixp = ls.at_ixp;
    if (const auto it = facility_of_.find(vp + "/" + std::to_string(ls.far_asn));
        it != facility_of_.end()) {
      l.facility = it->second;
    }
    l.baseline_ms = rep.far_shifts.baseline_ms;
    l.coverage = rep.far_shifts.coverage;
    l.refused_low_coverage = rep.far_shifts.refused_low_coverage;
    l.episodes = rep.far_shifts.episodes;
    l.has_verdict = true;
    l.verdict = rep.verdict;
    l.persistence = rep.persistence;
    l.diurnal = rep.has_diurnal_pattern();
    l.near_clean = rep.near_clean;
  }
}

void SnapshotBuilder::begin_pass(std::uint64_t pass) {
  const std::lock_guard<std::mutex> lock(mu_);
  pass_ = pass;
}

void SnapshotBuilder::set_facilities(std::map<std::string, std::string> by_vp_asn) {
  const std::lock_guard<std::mutex> lock(mu_);
  facility_of_ = std::move(by_vp_asn);
}

std::shared_ptr<const Snapshot> SnapshotBuilder::build(std::string metrics_prom,
                                                       bool final_pass) {
  auto snap = std::make_shared<Snapshot>();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap->epoch = next_epoch_++;
    snap->pass = pass_;
    snap->sim_time = sim_time_;
    snap->links.reserve(links_.size());
    for (const auto& [id, l] : links_) snap->links.push_back(l);
  }
  snap->final_pass = final_pass;
  snap->metrics_prom = std::move(metrics_prom);
  std::sort(snap->links.begin(), snap->links.end(), rank_less);
  snap->links_top_default = render_links_top(*snap, Snapshot::kDefaultTopN);
  snap->facilities_top_default = render_facilities_top(*snap, Snapshot::kDefaultTopN);
  return snap;
}

}  // namespace ixp::serve
