// The always-on congestion observatory behind `afixp serve`.
//
// One daemon = one driver thread running fleet passes plus an HTTP server
// answering reads from the latest published epoch (docs/SERVING.md):
//
//   driver thread            HTTP workers (net/http.h)
//   ─────────────            ─────────────────────────
//   run_fleet pass p   ──►   GET /metrics, /api/v1/...
//     live folds per            pin store.current()
//     segment boundary          render from the pinned
//     publish epoch             epoch, lock-free
//   final fold + epoch
//   pass p+1 ...
//
// Determinism contract: each pass p runs the fleet with fault seed
// `fault_seed` for p = 1 (so pass 1 replays `afixp chaos` byte-for-byte)
// and a deterministic per-pass offset afterwards; the per-pass fleet
// registries are merged into the cumulative registry in pass order, so the
// shutdown metrics flush after K completed passes is byte-identical to a
// fresh `--rounds K` run -- regardless of whether K came from --rounds or
// from SIGTERM landing mid-pass (stop requests take effect at the next
// pass boundary; the in-flight pass always completes).  Served traffic
// never feeds back: readers touch only immutable snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/fleet.h"
#include "net/http.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace ixp::serve {

struct ServeOptions {
  /// Campaigns to drive, one fleet pass at a time (spec order preserved).
  std::vector<analysis::VpSpec> specs;
  /// Per-campaign options.  `online` is forced on (live verdicts need the
  /// incremental detectors); on_progress/on_verdicts/metrics are owned by
  /// the daemon and must be left unset.
  analysis::CampaignOptions campaign;
  int jobs = 0;  ///< fleet worker budget (0 = IXP_JOBS, else hardware)
  /// Fault plan applied to every pass (nullptr = fault-free).  Pass 1 uses
  /// `fault_seed` unchanged -- `afixp chaos --seed S` equivalence -- and
  /// pass p differs by a fixed odd multiple of (p-1).
  const FaultPlan* fault_plan = nullptr;
  std::uint64_t fault_seed = 1;
  /// Fleet passes to run; 0 = run until request_stop()/SIGTERM.
  std::uint64_t rounds = 1;
  // HTTP surface.
  int port = 0;  ///< 0 = kernel-assigned; read back via port()
  int http_threads = 2;
  bool verbose = false;
  std::ostream* log = nullptr;  ///< status lines (nullptr = silent)
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions opt);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Starts the HTTP server and the campaign driver thread.
  bool start(std::string* error);
  /// Requests shutdown: the in-flight pass completes, its final epoch is
  /// published, then the driver exits.  Thread-safe; callable from tests
  /// concurrently with reads.
  void request_stop() { stop_.store(true, std::memory_order_release); }
  /// Waits for the driver to finish (all rounds done or stop requested),
  /// then drains and stops the HTTP server.  Returns the exit code (0 on
  /// a clean run).
  int wait();
  /// start() + wait() + a metrics flush to `metrics_out` when non-empty.
  int run(std::string* error, const std::string& metrics_out = "");

  /// Routes SIGTERM/SIGINT to request_stop() on this daemon (process-wide;
  /// the last daemon to install wins).
  void install_signal_handlers();

  [[nodiscard]] int port() const { return http_.port(); }
  /// Pins the current epoch (what a request handler does).
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const { return store_.current(); }
  /// Cumulative deterministic registry (passes merged in pass order).
  /// Stable only once wait() has returned.
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  /// Per-pass fleet results, pass-major (stable once wait() returned).
  [[nodiscard]] const std::vector<analysis::FleetResult>& passes() const { return passes_; }
  [[nodiscard]] std::uint64_t passes_completed() const {
    return passes_completed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t epochs_published() const { return store_.epochs_published(); }
  [[nodiscard]] const net::HttpServer& http() const { return http_; }

  /// The request handler (exposed so tests can exercise routing without a
  /// socket).  Pure function of (request, current snapshot).
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& req) const;

  /// Endpoint dispatch table (path pattern + one-line description), the
  /// source of truth docs/SERVING.md is linted against (check_docs.sh).
  struct Endpoint {
    const char* pattern;
    const char* help;
  };
  static const std::vector<Endpoint>& endpoints();

 private:
  void drive();          ///< the driver thread body
  void run_pass(std::uint64_t pass);
  [[nodiscard]] bool stop_requested() const;
  void publish_epoch(bool final_pass);

  ServeOptions opt_;
  SnapshotBuilder builder_;
  SnapshotStore store_;
  net::HttpServer http_;
  std::thread driver_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> passes_completed_{0};
  bool started_ = false;
  int exit_code_ = 0;

  // Writer-side state (driver thread + campaign workers only).
  std::mutex metrics_mu_;
  std::string metrics_prom_;  ///< rendered registry text epochs embed
  obs::Registry registry_;    ///< cumulative across completed passes
  std::vector<analysis::FleetResult> passes_;
};

}  // namespace ixp::serve
