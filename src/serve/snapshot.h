// Immutable epoch snapshots: the serving layer's read model.
//
// The observatory folds detection state into a builder as campaigns
// progress and periodically freezes it into a Snapshot -- an immutable,
// heap-allocated value published through SnapshotStore by atomically
// swapping a shared_ptr.  Readers pin the current epoch with one atomic
// load (a shared_ptr copy) and render JSON from the pinned object; they
// take no lock, never observe a half-written epoch, and keep their epoch
// alive for as long as they hold the pointer even if a hundred newer
// epochs are published meanwhile.  Writers serialize among themselves on
// the builder's mutex -- only the reader side must stay lock-free, because
// readers are the ones sharing cores with the simulation hot path
// (tests/test_serve.cc pins the isolation property under TSan).
//
// Two kinds of epoch feed the builder:
//   * live folds -- LiveVerdictBatch from a running campaign's online
//     detectors (campaign.h): level shifts over the series-so-far;
//   * final folds -- end-of-pass VpCampaignResult reports: the
//     authoritative verdict ladder (diurnality, near-side cleanliness).
// A link keeps its latest live evidence until the pass completes, then
// carries the final verdict until a newer pass overwrites it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/campaign.h"
#include "tslp/classifier.h"

namespace ixp::serve {

/// One monitored link's state inside a snapshot.
struct LinkState {
  std::string key;       ///< MonitorTarget key; the <id> in /api/v1/links/<id>
  std::string vp_name;
  std::string ixp;       ///< IXP name; the <id> in /api/v1/ixps/<id>
  std::uint32_t far_asn = 0;
  bool at_ixp = false;
  /// Colocation facility of the far member ("" = unassigned); the grouping
  /// key of /api/v1/facilities/*.  From the spec's substrate metadata, via
  /// SnapshotBuilder::set_facilities().
  std::string facility;
  std::size_t samples = 0;
  double baseline_ms = 0.0;
  double coverage = 1.0;
  bool refused_low_coverage = false;
  std::vector<tslp::Episode> episodes;  ///< sanitized far-side level shifts
  // Authoritative end-of-pass classification; absent (has_verdict=false)
  // while only live evidence has arrived.
  bool has_verdict = false;
  tslp::Verdict verdict = tslp::Verdict::kNotCongested;
  tslp::Persistence persistence = tslp::Persistence::kNone;
  bool diurnal = false;
  bool near_clean = true;

  /// Largest episode magnitude (0 when episode-free): the ranking key.
  [[nodiscard]] double max_magnitude_ms() const;
  [[nodiscard]] bool congested() const {
    return has_verdict && verdict == tslp::Verdict::kCongested;
  }
};

/// One frozen epoch.  Everything a read needs is inside the object -- link
/// states in rank order plus the pre-rendered Prometheus exposition -- so
/// rendering any endpoint touches nothing outside the pinned pointer.
struct Snapshot {
  std::uint64_t epoch = 0;  ///< 0 = the empty pre-first-publish snapshot
  std::uint64_t pass = 0;   ///< fleet pass the state came from (1-based)
  TimePoint sim_time{};     ///< latest simulated time folded in
  bool final_pass = false;  ///< built from end-of-pass reports
  /// Rank order: congested links first, then by descending max episode
  /// magnitude, then (key, vp) for a total order.
  std::vector<LinkState> links;
  std::string metrics_prom;  ///< Prometheus text of the campaign registry
  /// `/api/v1/links/top` at the default depth, rendered once at freeze
  /// time: the hottest read is a string copy off the pinned epoch instead
  /// of a fresh render per request (bench_serve measures this path).
  static constexpr std::size_t kDefaultTopN = 20;
  std::string links_top_default;
  /// `/api/v1/facilities/top` at the default depth, same treatment.
  std::string facilities_top_default;
};

const char* verdict_name(tslp::Verdict v);
const char* persistence_name(tslp::Persistence p);

// JSON renderers -- pure functions of the snapshot: the same pinned epoch
// renders the same bytes no matter what is published concurrently (the
// snapshot-isolation property test_serve.cc pins).
/// `/api/v1/links/top?n=K`: the first K links in rank order.
std::string render_links_top(const Snapshot& snap, std::size_t n);
/// `/api/v1/ixps/<id>/summary`: per-IXP aggregate.  False = unknown IXP.
bool render_ixp_summary(const Snapshot& snap, std::string_view ixp, std::string* out);
/// `/api/v1/links/<id>/episodes`: one link's episode list.  False =
/// unknown link key.
bool render_link_episodes(const Snapshot& snap, std::string_view key, std::string* out);
/// `/api/v1/facilities/top?n=K`: colocation facilities ranked by the
/// facility-aggregation detector (disruption verdict first, then ascending
/// p-value).  A link counts as disrupted when its far side was refused for
/// low coverage or covers less than 90 % of rounds.
std::string render_facilities_top(const Snapshot& snap, std::size_t n);
/// `/api/v1/facilities/<id>/summary`: one facility's aggregate plus its
/// member links.  False = unknown facility.
bool render_facility_summary(const Snapshot& snap, std::string_view facility, std::string* out);

/// Accumulates detection state across folds and freezes epochs.  All
/// methods serialize on an internal mutex; build() does not disturb the
/// accumulated state, so the next fold continues from it.
class SnapshotBuilder {
 public:
  /// Folds a live mid-campaign batch from `vp` (at IXP `ixp`).
  void fold_live(const std::string& vp, const std::string& ixp,
                 const analysis::LiveVerdictBatch& batch);
  /// Folds one VP's end-of-pass result: authoritative reports replace the
  /// link's live evidence.
  void fold_final(const std::string& vp, const std::string& ixp,
                  const analysis::VpCampaignResult& result);
  /// Marks the pass number subsequent folds belong to.
  void begin_pass(std::uint64_t pass);
  /// Installs the "<vp>/<far_asn>" -> facility map folds consult; from the
  /// specs' substrate metadata (NeighborSpec::facility).  Call before the
  /// first fold; links without an entry stay unassigned.
  void set_facilities(std::map<std::string, std::string> by_vp_asn);
  /// Freezes the current state into the next epoch (epochs number from 1).
  [[nodiscard]] std::shared_ptr<const Snapshot> build(std::string metrics_prom,
                                                      bool final_pass);

 private:
  std::mutex mu_;
  std::map<std::string, LinkState> links_;  ///< "<vp>/<key>" -> state
  std::map<std::string, std::string> facility_of_;  ///< "<vp>/<far_asn>" -> facility
  std::uint64_t next_epoch_ = 1;
  std::uint64_t pass_ = 0;
  TimePoint sim_time_{};
};

/// The publication point.  publish() atomically swaps the current-epoch
/// pointer; current() pins it with one atomic shared_ptr load.
class SnapshotStore {
 public:
  SnapshotStore() : current_(std::make_shared<const Snapshot>()) {}

  /// Pins the current epoch: lock-free, never blocks a writer.
  [[nodiscard]] std::shared_ptr<const Snapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  void publish(std::shared_ptr<const Snapshot> next) {
    current_.store(std::move(next), std::memory_order_release);
    published_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t epochs_published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace ixp::serve
