#include "serve/serve.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "obs/export.h"
#include "util/strings.h"

namespace ixp::serve {
namespace {

// SIGTERM/SIGINT route to the installed daemon's stop flag.  The handler
// body is one lock-free atomic load plus one atomic store -- both
// async-signal-safe.
std::atomic<ServeDaemon*> g_signal_daemon{nullptr};

void on_stop_signal(int) {
  ServeDaemon* d = g_signal_daemon.load(std::memory_order_acquire);
  if (d != nullptr) d->request_stop();
}

}  // namespace

ServeDaemon::ServeDaemon(ServeOptions opt)
    : opt_(std::move(opt)),
      http_([this](const net::HttpRequest& r) { return handle(r); },
            [this] {
              net::HttpServer::Options o;
              o.port = static_cast<std::uint16_t>(opt_.port);
              o.threads = std::max(1, opt_.http_threads);
              return o;
            }()) {
  // Facility metadata is spec-static: install it once so every fold (live
  // or final) can tag links for the /api/v1/facilities/* aggregation.
  std::map<std::string, std::string> fmap;
  for (const analysis::VpSpec& spec : opt_.specs) {
    for (const analysis::NeighborSpec& n : spec.neighbors) {
      if (!n.facility.empty()) {
        fmap[spec.vp_name + "/" + std::to_string(n.asn)] = n.facility;
      }
    }
  }
  builder_.set_facilities(std::move(fmap));
}

ServeDaemon::~ServeDaemon() {
  request_stop();
  wait();
  ServeDaemon* self = this;
  g_signal_daemon.compare_exchange_strong(self, nullptr);
}

bool ServeDaemon::start(std::string* error) {
  if (started_) return true;
  if (!http_.start(error)) return false;
  driver_ = std::thread([this] { drive(); });
  started_ = true;
  return true;
}

int ServeDaemon::wait() {
  if (driver_.joinable()) driver_.join();
  http_.stop();  // drains in-flight reads before returning
  return exit_code_;
}

int ServeDaemon::run(std::string* error, const std::string& metrics_out) {
  if (!start(error)) return 1;
  const int rc = wait();
  if (!metrics_out.empty() && !obs::write_to_file(metrics_out, registry_)) {
    if (error != nullptr) *error = "cannot write " + metrics_out;
    return 1;
  }
  return rc;
}

void ServeDaemon::install_signal_handlers() {
  g_signal_daemon.store(this, std::memory_order_release);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);
}

bool ServeDaemon::stop_requested() const {
  return stop_.load(std::memory_order_acquire);
}

void ServeDaemon::publish_epoch(bool final_pass) {
  std::string prom;
  {
    const std::lock_guard<std::mutex> lock(metrics_mu_);
    prom = metrics_prom_;
  }
  store_.publish(builder_.build(std::move(prom), final_pass));
}

void ServeDaemon::run_pass(std::uint64_t pass) {
  builder_.begin_pass(pass);
  analysis::FleetOptions fopt;
  fopt.campaign = opt_.campaign;
  fopt.campaign.online = true;  // live verdicts need the incremental detectors
  fopt.campaign.on_verdicts = [this](const analysis::LiveVerdictBatch& b) {
    builder_.fold_live(b.vp_name, b.ixp, b);
    publish_epoch(/*final_pass=*/false);
  };
  fopt.jobs = opt_.jobs;
  fopt.fault_plan = opt_.fault_plan;
  // Pass 1 replays `afixp chaos --seed S` byte-for-byte; later passes take
  // a deterministic per-pass offset.  The mix constant differs from the
  // fleet's per-VP stride so pass p / VP i never collides with pass p' /
  // VP i' (fleet.cc uses 0x9e3779b97f4a7c15).
  fopt.fault_seed = pass == 1 ? opt_.fault_seed
                              : opt_.fault_seed ^ (pass * 0xbf58476d1ce4e5b9ULL);
  analysis::FleetResult fleet = analysis::run_fleet(opt_.specs, fopt);
  for (std::size_t i = 0; i < opt_.specs.size() && i < fleet.results.size(); ++i) {
    builder_.fold_final(opt_.specs[i].vp_name, opt_.specs[i].ixp.name, fleet.results[i]);
  }
  {
    const std::lock_guard<std::mutex> lock(metrics_mu_);
    registry_.merge_from(fleet.registry);
    std::ostringstream prom;
    obs::write_prometheus(prom, registry_);
    metrics_prom_ = prom.str();
  }
  passes_.push_back(std::move(fleet));
  publish_epoch(/*final_pass=*/true);
  passes_completed_.fetch_add(1, std::memory_order_release);
}

void ServeDaemon::drive() {
  std::uint64_t pass = 1;
  while (!stop_requested() && (opt_.rounds == 0 || pass <= opt_.rounds)) {
    if (opt_.log != nullptr) {
      *opt_.log << "serve: pass " << pass << " starting (epoch "
                << snapshot()->epoch << ")" << std::endl;
    }
    run_pass(pass);
    if (opt_.log != nullptr) {
      const auto snap = snapshot();
      *opt_.log << "serve: pass " << pass << " complete; epoch " << snap->epoch
                << ", " << snap->links.size() << " links, "
                << http_.requests_served() << " requests served" << std::endl;
    }
    ++pass;
  }
}

net::HttpResponse ServeDaemon::handle(const net::HttpRequest& req) const {
  net::HttpResponse resp;
  if (req.method != "GET") {
    resp.status = 405;
    resp.content_type = "text/plain";
    resp.body = "only GET is supported\n";
    return resp;
  }
  // Pin the current epoch once; everything below reads the pinned object.
  const std::shared_ptr<const Snapshot> snap = store_.current();
  const std::string& path = req.path;

  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = snap->metrics_prom;
    return resp;
  }
  if (path == "/healthz") {
    resp.body = strformat(
        "{\"status\":\"ok\",\"epoch\":%llu,\"pass\":%llu,\"final\":%s,"
        "\"links\":%zu,\"passes_completed\":%llu,\"epochs_published\":%llu}",
        static_cast<unsigned long long>(snap->epoch),
        static_cast<unsigned long long>(snap->pass),
        snap->final_pass ? "true" : "false", snap->links.size(),
        static_cast<unsigned long long>(passes_completed()),
        static_cast<unsigned long long>(store_.epochs_published()));
    return resp;
  }
  if (path == "/api/v1/links/top") {
    long n = std::strtol(req.query_param("n", "20").c_str(), nullptr, 10);
    n = std::clamp<long>(n, 1, 100000);
    if (static_cast<std::size_t>(n) == Snapshot::kDefaultTopN &&
        !snap->links_top_default.empty()) {
      resp.body = snap->links_top_default;  // pre-rendered at freeze time
    } else {
      resp.body = render_links_top(*snap, static_cast<std::size_t>(n));
    }
    return resp;
  }
  if (path == "/api/v1/facilities/top") {
    long n = std::strtol(req.query_param("n", "20").c_str(), nullptr, 10);
    n = std::clamp<long>(n, 1, 100000);
    if (static_cast<std::size_t>(n) == Snapshot::kDefaultTopN &&
        !snap->facilities_top_default.empty()) {
      resp.body = snap->facilities_top_default;  // pre-rendered at freeze time
    } else {
      resp.body = render_facilities_top(*snap, static_cast<std::size_t>(n));
    }
    return resp;
  }
  const auto route = [&](std::string_view prefix, std::string_view suffix,
                         std::string_view* id) {
    if (path.size() <= prefix.size() + suffix.size()) return false;
    if (path.compare(0, prefix.size(), prefix) != 0) return false;
    if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
    *id = std::string_view(path).substr(prefix.size(),
                                        path.size() - prefix.size() - suffix.size());
    return !id->empty() && id->find('/') == std::string_view::npos;
  };
  std::string_view id;
  if (route("/api/v1/ixps/", "/summary", &id)) {
    if (render_ixp_summary(*snap, id, &resp.body)) return resp;
    resp.status = 404;
    resp.body = "{\"error\":\"unknown ixp\"}";
    return resp;
  }
  if (route("/api/v1/links/", "/episodes", &id)) {
    if (render_link_episodes(*snap, id, &resp.body)) return resp;
    resp.status = 404;
    resp.body = "{\"error\":\"unknown link\"}";
    return resp;
  }
  if (route("/api/v1/facilities/", "/summary", &id)) {
    if (render_facility_summary(*snap, id, &resp.body)) return resp;
    resp.status = 404;
    resp.body = "{\"error\":\"unknown facility\"}";
    return resp;
  }
  resp.status = 404;
  resp.body = "{\"error\":\"unknown endpoint\"}";
  return resp;
}

const std::vector<ServeDaemon::Endpoint>& ServeDaemon::endpoints() {
  // The dispatch table handle() implements, in documentation order.
  // check_docs.sh lints docs/SERVING.md's endpoint table against these
  // patterns (two-way), so adding a route here without documenting it --
  // or vice versa -- fails CI.
  static const std::vector<Endpoint> kEndpoints = {
      {"/metrics", "Prometheus text exposition of the latest epoch's campaign registry"},
      {"/healthz", "daemon liveness: current epoch, pass, link count"},
      {"/api/v1/links/top", "links ranked by congestion evidence (?n=K, default 20)"},
      {"/api/v1/ixps/<id>/summary", "one IXP's aggregate congestion state"},
      {"/api/v1/links/<id>/episodes", "one link's level-shift episode list"},
      {"/api/v1/facilities/top", "colocation facilities ranked by correlated disruption (?n=K)"},
      {"/api/v1/facilities/<id>/summary", "one facility's aggregate and member links"},
  };
  return kEndpoints;
}

}  // namespace ixp::serve
