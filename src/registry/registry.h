// Internet-registry data substrate.
//
// bdrmap's inputs are files published by the registries and databases the
// paper lists: RIR delegation files, the PeeringDB/PCH IXP prefix
// directory, CAIDA's AS-to-organisation mapping, and a per-VP sibling
// list.  This module generates those files from the simulated topology
// (exactly the information a registry would hold) and parses them back --
// bdrmap-lite only ever sees the parsed file data, never the topology
// object, preserving the paper's inference-from-public-data structure.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/prefix_map.h"
#include "routing/bgp.h"
#include "topo/topology.h"

namespace ixp::registry {

using topo::Asn;

/// One line of an RIR extended delegation file.
struct DelegationRecord {
  std::string rir = "afrinic";
  std::string country;
  net::Ipv4Prefix prefix;
  std::string status = "allocated";
  std::string org_id;
};

/// One IXP directory entry (PeeringDB/PCH style).
struct IxpDirectoryEntry {
  std::string name;
  std::string country;
  net::Ipv4Prefix peering_prefix;
  net::Ipv4Prefix management_prefix;
};

/// One line of PCH's LAN-address-to-ASN mapping for an IXP.
struct IxpParticipant {
  std::string ixp;
  net::Ipv4Address lan_ip;
  Asn asn = 0;
};

/// AS-to-organisation record.
struct AsOrgRecord {
  Asn asn = 0;
  std::string org_id;
  std::string as_name;
  std::string country;
};

/// The bundle of public datasets a bdrmap run consumes.
struct PublicData {
  std::vector<DelegationRecord> delegations;
  std::vector<IxpDirectoryEntry> ixp_directory;
  std::vector<AsOrgRecord> as_orgs;
  /// prefix -> origin ASN, built from BGP dumps (RouteViews/RIS role).
  std::vector<std::pair<net::Ipv4Prefix, Asn>> prefix_origins;
  /// Sibling ASes of the VP's AS (semi-manual list in the paper).
  std::vector<Asn> vp_siblings;
  /// Raw AS paths from the collectors (AS-rank-lite input).
  std::vector<std::vector<Asn>> bgp_paths;
  /// PCH-style (IXP, LAN address, ASN) participant records.
  std::vector<IxpParticipant> ixp_participants;

  /// Longest-prefix-match view over prefix_origins.
  [[nodiscard]] net::PrefixMap<Asn> origin_map() const;
  /// True if the address is inside any IXP peering/management prefix.
  [[nodiscard]] const IxpDirectoryEntry* ixp_for(net::Ipv4Address a) const;
};

/// Builds every public dataset from the topology and a BGP view.
PublicData harvest(const topo::Topology& topology, const routing::Bgp& bgp, Asn vp_asn,
                   const std::vector<Asn>& collectors);

// ---- File round-trips (the on-disk formats) --------------------------------

std::string write_delegations(const std::vector<DelegationRecord>& recs);
std::vector<DelegationRecord> parse_delegations(const std::string& text);

std::string write_ixp_directory(const std::vector<IxpDirectoryEntry>& entries);
std::vector<IxpDirectoryEntry> parse_ixp_directory(const std::string& text);

std::string write_as_orgs(const std::vector<AsOrgRecord>& recs);
std::vector<AsOrgRecord> parse_as_orgs(const std::string& text);

std::string write_ixp_participants(const std::vector<IxpParticipant>& parts);
std::vector<IxpParticipant> parse_ixp_participants(const std::string& text);

std::string write_prefix_origins(const std::vector<std::pair<net::Ipv4Prefix, Asn>>& origins);
std::vector<std::pair<net::Ipv4Prefix, Asn>> parse_prefix_origins(const std::string& text);

}  // namespace ixp::registry
