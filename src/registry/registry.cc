#include "registry/registry.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "routing/bgp.h"
#include "util/strings.h"

namespace ixp::registry {

net::PrefixMap<Asn> PublicData::origin_map() const {
  net::PrefixMap<Asn> m;
  for (const auto& [prefix, asn] : prefix_origins) m.insert(prefix, asn);
  return m;
}

const IxpDirectoryEntry* PublicData::ixp_for(net::Ipv4Address a) const {
  for (const auto& e : ixp_directory) {
    if (e.peering_prefix.contains(a) || e.management_prefix.contains(a)) return &e;
  }
  return nullptr;
}

PublicData harvest(const topo::Topology& topology, const routing::Bgp& bgp, Asn vp_asn,
                   const std::vector<Asn>& collectors) {
  PublicData out;

  for (const auto& [asn, info] : topology.ases()) {
    const std::string org = info.org.empty() ? ("ORG-AS" + strformat("%u", asn)) : info.org;
    out.as_orgs.push_back({asn, org, info.name, info.country});
    for (const auto& p : info.prefixes) {
      out.delegations.push_back({"afrinic", info.country, p, "allocated", org});
    }
  }
  std::sort(out.as_orgs.begin(), out.as_orgs.end(),
            [](const AsOrgRecord& a, const AsOrgRecord& b) { return a.asn < b.asn; });

  // Infrastructure (point-to-point) delegations.
  for (const auto& [prefix, asn] : topology.infra_delegations()) {
    const topo::AsInfo* info = topology.find_as(asn);
    const std::string org = info && !info->org.empty() ? info->org : ("ORG-AS" + strformat("%u", asn));
    out.delegations.push_back(
        {"afrinic", info ? info->country : "ZZ", prefix, "assigned", org});
  }

  // IXP directory (PeeringDB/PCH role) and participant mappings.
  for (const auto& [name, info] : topology.ixps()) {
    out.ixp_directory.push_back({info.name, info.country, info.peering_prefix, info.management_prefix});
    for (const auto& [addr, asn] : topology.lan_participants(name)) {
      out.ixp_participants.push_back({info.name, addr, asn});
    }
  }

  // Prefix origins: union of RIB dumps from each collector.
  std::set<std::pair<net::Ipv4Prefix, Asn>> origins;
  for (const Asn c : collectors) {
    for (const auto& e : bgp.rib_dump(c)) {
      if (e.as_path.empty()) continue;
      origins.insert({e.prefix, e.as_path.back()});
      out.bgp_paths.push_back(e.as_path);
    }
  }
  out.prefix_origins.assign(origins.begin(), origins.end());

  // Sibling list: ASes sharing the VP AS's organisation.
  const topo::AsInfo* vp = topology.find_as(vp_asn);
  if (vp && !vp->org.empty()) {
    for (const auto& [asn, info] : topology.ases()) {
      if (asn != vp_asn && info.org == vp->org) out.vp_siblings.push_back(asn);
    }
  }
  std::sort(out.vp_siblings.begin(), out.vp_siblings.end());
  return out;
}

// ---------------------------------------------------------------------------
// File formats

std::string write_delegations(const std::vector<DelegationRecord>& recs) {
  std::string out;
  for (const auto& r : recs) {
    out += strformat("%s|%s|ipv4|%s|%llu|20160101|%s|%s\n", r.rir.c_str(), r.country.c_str(),
                     r.prefix.network().to_string().c_str(),
                     static_cast<unsigned long long>(r.prefix.size()), r.status.c_str(),
                     r.org_id.c_str());
  }
  return out;
}

std::vector<DelegationRecord> parse_delegations(const std::string& text) {
  std::vector<DelegationRecord> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split(trim(line), '|');
    if (f.size() < 8 || f[2] != "ipv4") continue;
    const auto addr = net::Ipv4Address::parse(f[3]);
    std::uint64_t count = 0;
    if (!addr || !parse_u64(f[4], count) || count == 0) continue;
    int len = 32;
    std::uint64_t span = 1;
    while (span < count && len > 0) {
      span <<= 1;
      --len;
    }
    out.push_back({f[0], f[1], net::Ipv4Prefix(*addr, len), f[6], f[7]});
  }
  return out;
}

std::string write_ixp_directory(const std::vector<IxpDirectoryEntry>& entries) {
  std::string out;
  for (const auto& e : entries) {
    out += strformat("%s|%s|%s|%s\n", e.name.c_str(), e.country.c_str(),
                     e.peering_prefix.to_string().c_str(), e.management_prefix.to_string().c_str());
  }
  return out;
}

std::vector<IxpDirectoryEntry> parse_ixp_directory(const std::string& text) {
  std::vector<IxpDirectoryEntry> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split(trim(line), '|');
    if (f.size() < 4) continue;
    const auto peering = net::Ipv4Prefix::parse(f[2]);
    const auto mgmt = net::Ipv4Prefix::parse(f[3]);
    if (!peering || !mgmt) continue;
    out.push_back({f[0], f[1], *peering, *mgmt});
  }
  return out;
}

std::string write_as_orgs(const std::vector<AsOrgRecord>& recs) {
  std::string out;
  for (const auto& r : recs) {
    out += strformat("%u|%s|%s|%s\n", r.asn, r.org_id.c_str(), r.as_name.c_str(), r.country.c_str());
  }
  return out;
}

std::vector<AsOrgRecord> parse_as_orgs(const std::string& text) {
  std::vector<AsOrgRecord> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split(trim(line), '|');
    if (f.size() < 4) continue;
    std::uint64_t asn = 0;
    if (!parse_u64(f[0], asn)) continue;
    out.push_back({static_cast<Asn>(asn), f[1], f[2], f[3]});
  }
  return out;
}

std::string write_ixp_participants(const std::vector<IxpParticipant>& parts) {
  std::string out;
  for (const auto& p : parts) {
    out += strformat("%s %s %u\n", p.lan_ip.to_string().c_str(), p.ixp.c_str(), p.asn);
  }
  return out;
}

std::vector<IxpParticipant> parse_ixp_participants(const std::string& text) {
  std::vector<IxpParticipant> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split(trim(line), ' ');
    if (f.size() < 3) continue;
    const auto addr = net::Ipv4Address::parse(f[0]);
    std::uint64_t asn = 0;
    if (!addr || !parse_u64(f[2], asn)) continue;
    out.push_back({f[1], *addr, static_cast<Asn>(asn)});
  }
  return out;
}

std::string write_prefix_origins(const std::vector<std::pair<net::Ipv4Prefix, Asn>>& origins) {
  std::string out;
  for (const auto& [prefix, asn] : origins) {
    out += strformat("%s %u\n", prefix.to_string().c_str(), asn);
  }
  return out;
}

std::vector<std::pair<net::Ipv4Prefix, Asn>> parse_prefix_origins(const std::string& text) {
  std::vector<std::pair<net::Ipv4Prefix, Asn>> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split(trim(line), ' ');
    if (f.size() < 2) continue;
    const auto prefix = net::Ipv4Prefix::parse(f[0]);
    std::uint64_t asn = 0;
    if (!prefix || !parse_u64(f[1], asn)) continue;
    out.emplace_back(*prefix, static_cast<Asn>(asn));
  }
  return out;
}

}  // namespace ixp::registry
