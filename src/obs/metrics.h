// Observability layer: a deterministic metrics registry plus trace spans.
//
// The registry holds four metric kinds, all with exact, replayable values:
//
//   * Counter   -- monotone uint64 (probes sent, relearns, tail drops);
//   * Gauge     -- a point-in-time double (monitored links right now);
//   * Histogram -- fixed-bucket distribution (far-side RTT in ms): bucket
//     boundaries are decided at registration, so two runs of the same
//     workload always fill the same buckets;
//   * Span      -- an aggregated timer: per span *name*, the number of
//     times the span ran and the total *simulated* time it covered.  No
//     wall-clock value ever enters a span, so registry contents are a pure
//     function of (seed, plan, workload) and byte-identical across hosts
//     and job counts.
//
// Instrumentation contract (see docs/ARCHITECTURE.md "Observability"):
// hot paths never talk to a registry.  They bump plain struct counters
// (sim::FluidQueue, sim::Simulator, prober::TslpDriver) that cost one add;
// the campaign driver *scrapes* those into its per-VP registry at segment
// boundaries.  A null registry pointer disables recording entirely, so the
// disabled path is one pointer test at scrape sites and nothing at all on
// the per-probe path.
//
// Naming convention: `afixp_<subsystem>_<quantity>[_total]` -- counters end
// in `_total`, histograms carry their unit (`_ms`), spans end in
// `_simtime`.  Labels are a single `key="value"` list; the fleet merge uses
// `vp="<name>"` to shard per-campaign copies next to the fleet-wide sums.
//
// Exporters live in obs/export.h (JSON schema `afixp-obs/1`, Prometheus
// text format); both emit metrics sorted by (name, labels), so output is
// deterministic regardless of registration order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace ixp::obs {

/// Sort key of one metric: name plus an optional Prometheus-style label
/// list (e.g. `cause="stale"`), kept separate so exporters can re-assemble
/// `name{labels}` and group TYPE lines by bare name.
struct MetricId {
  std::string name;
  std::string labels;

  bool operator<(const MetricId& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
  bool operator==(const MetricId& o) const { return name == o.name && labels == o.labels; }
  /// `name` or `name{labels}`.
  [[nodiscard]] std::string full() const;
};

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  /// Scrape-style update: components that keep their own monotone counters
  /// (sim stats, prober totals) are mirrored with set(), not add(), so
  /// re-scraping at every boundary stays idempotent.
  void set(std::uint64_t v) { v_ = v; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Fixed-bucket histogram.  `bounds` are upper bucket edges (a sample lands
/// in the first bucket whose bound is >= the sample); one implicit +Inf
/// bucket catches the rest, so counts().size() == bounds().size() + 1.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  /// NaN observations are ignored (missing TSLP rounds are not samples).
  void observe(double x);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  friend class Registry;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Aggregated timer over *simulated* time: how many times a named region
/// ran, and how much simulated time it covered in total.
class Span {
 public:
  void record(Duration sim_elapsed, std::uint64_t n = 1) {
    total_ += sim_elapsed;
    count_ += n;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Duration total() const { return total_; }

 private:
  std::uint64_t count_ = 0;
  Duration total_{};
};

/// RAII helper: measures one region against a caller-supplied simulated
/// clock (any callable returning TimePoint).  A null span disarms it -- the
/// disabled path is one pointer test per scope.
template <typename ClockFn>
class ScopedSpan {
 public:
  ScopedSpan(Span* span, ClockFn clock)
      : span_(span), clock_(std::move(clock)), t0_(span_ != nullptr ? clock_() : TimePoint{}) {}
  ~ScopedSpan() {
    if (span_ != nullptr) span_->record(clock_() - t0_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Span* span_;
  ClockFn clock_;
  TimePoint t0_;
};

/// The metrics registry.  Find-or-create accessors return stable pointers
/// (storage is node-based); handles are only invalidated by copying the
/// registry, which is reserved for snapshots handed across threads.
///
/// Registries are single-writer: each campaign owns one and writes from its
/// own worker thread; the fleet merges the shards in spec order afterwards,
/// which keeps every merged value (including floating-point histogram sums)
/// byte-identical for any --jobs count.
class Registry {
 public:
  Counter* counter(const std::string& name, const std::string& labels = {});
  Gauge* gauge(const std::string& name, const std::string& labels = {});
  /// `bounds` must be strictly increasing; they are fixed at first
  /// registration (later calls with the same id ignore `bounds`).
  Histogram* histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& labels = {});
  Span* span(const std::string& name, const std::string& labels = {});

  /// Read-side lookups for views (fleet metrics table): absent ids read as
  /// zero, so views never create metrics.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const std::string& labels = {}) const;
  [[nodiscard]] double gauge_value(const std::string& name,
                                   const std::string& labels = {}) const;

  /// Combines `other` into this registry: counters and spans add, histogram
  /// buckets add (bounds must match), gauges take the other side's value.
  void merge_from(const Registry& other);
  /// Same, but every incoming metric gains a leading `vp="<vp>"` label --
  /// the fleet's per-campaign shard copies.
  void merge_from(const Registry& other, const std::string& vp);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && spans_.empty();
  }

  [[nodiscard]] const std::map<MetricId, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<MetricId, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<MetricId, Histogram>& histograms() const { return histograms_; }
  [[nodiscard]] const std::map<MetricId, Span>& spans() const { return spans_; }

 private:
  void merge_labeled(const Registry& other, const std::string* vp);

  std::map<MetricId, Counter> counters_;
  std::map<MetricId, Gauge> gauges_;
  std::map<MetricId, Histogram> histograms_;
  std::map<MetricId, Span> spans_;
};

}  // namespace ixp::obs
