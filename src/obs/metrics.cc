#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace ixp::obs {

namespace {

// Mismatched bucket boundaries in a merge mean two shards registered the
// "same" histogram differently; summing their buckets would be silently
// meaningless, so this is checked unconditionally at merge time.
void require_same_bounds(const MetricId& id, const Histogram& into, const Histogram& from) {
  if (into.bounds() == from.bounds()) return;
  ixp::detail::check_failed(
      __FILE__, __LINE__, "into.bounds() == from.bounds()",
      strformat("histogram '%s' merged with mismatched bucket bounds (%zu vs %zu edges)",
                id.full().c_str(), into.bounds().size(), from.bounds().size()));
}

MetricId with_vp(const MetricId& id, const std::string* vp) {
  if (vp == nullptr) return id;
  MetricId out;
  out.name = id.name;
  const std::string tag = strformat("vp=\"%s\"", vp->c_str());
  out.labels = id.labels.empty() ? tag : tag + "," + id.labels;
  return out;
}

}  // namespace

std::string MetricId::full() const {
  return labels.empty() ? name : name + "{" + labels + "}";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  IXP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
            "histogram bucket bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  if (std::isnan(x)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

Counter* Registry::counter(const std::string& name, const std::string& labels) {
  return &counters_[MetricId{name, labels}];
}

Gauge* Registry::gauge(const std::string& name, const std::string& labels) {
  return &gauges_[MetricId{name, labels}];
}

Histogram* Registry::histogram(const std::string& name, std::vector<double> bounds,
                               const std::string& labels) {
  const MetricId id{name, labels};
  auto it = histograms_.find(id);
  if (it == histograms_.end()) {
    it = histograms_.emplace(id, Histogram(std::move(bounds))).first;
  }
  return &it->second;
}

Span* Registry::span(const std::string& name, const std::string& labels) {
  return &spans_[MetricId{name, labels}];
}

std::uint64_t Registry::counter_value(const std::string& name, const std::string& labels) const {
  const auto it = counters_.find(MetricId{name, labels});
  return it == counters_.end() ? 0 : it->second.value();
}

double Registry::gauge_value(const std::string& name, const std::string& labels) const {
  const auto it = gauges_.find(MetricId{name, labels});
  return it == gauges_.end() ? 0.0 : it->second.value();
}

void Registry::merge_from(const Registry& other) { merge_labeled(other, nullptr); }

void Registry::merge_from(const Registry& other, const std::string& vp) {
  merge_labeled(other, &vp);
}

void Registry::merge_labeled(const Registry& other, const std::string* vp) {
  for (const auto& [id, c] : other.counters_) {
    counters_[with_vp(id, vp)].add(c.value());
  }
  for (const auto& [id, g] : other.gauges_) {
    gauges_[with_vp(id, vp)].set(g.value());
  }
  for (const auto& [id, h] : other.histograms_) {
    const MetricId key = with_vp(id, vp);
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      histograms_.emplace(key, h);
      continue;
    }
    Histogram& into = it->second;
    require_same_bounds(key, into, h);
    for (std::size_t i = 0; i < h.counts_.size(); ++i) into.counts_[i] += h.counts_[i];
    into.count_ += h.count_;
    into.sum_ += h.sum_;
  }
  for (const auto& [id, s] : other.spans_) {
    spans_[with_vp(id, vp)].record(s.total(), s.count());
  }
}

}  // namespace ixp::obs
