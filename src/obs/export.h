// Registry exporters: the `afixp-obs/1` JSON document and the Prometheus
// text exposition format.
//
// Both walk the registry in (name, labels) order and format every value
// with a fixed printf conversion, so the bytes they emit are a pure
// function of the registry contents -- `afixp tables --jobs 8
// --metrics-out=m.json` writes the same file as `--jobs 1` (pinned by
// tests/test_fleet.cc and tools/check_metrics.sh).
//
// JSON shape:
//
//   {
//     "schema": "afixp-obs/1",
//     "counters":   [{"name": ..., "labels": ..., "value": N}, ...],
//     "gauges":     [{"name": ..., "labels": ..., "value": X}, ...],
//     "histograms": [{"name": ..., "labels": ..., "bounds": [...],
//                     "counts": [...], "count": N, "sum": X}, ...],
//     "spans":      [{"name": ..., "labels": ..., "count": N,
//                     "simtime_ns": N}, ...]
//   }
//
// The Prometheus writer renders counters/gauges natively, histograms as
// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, and spans as a
// `_count` counter plus a `_simtime_seconds_total` counter (simulated
// seconds, not wall time).
#pragma once

#include <iosfwd>

#include "obs/metrics.h"

namespace ixp::obs {

/// Writes the `afixp-obs/1` JSON document.
void write_json(std::ostream& out, const Registry& reg);

/// Writes the Prometheus text exposition format.
void write_prometheus(std::ostream& out, const Registry& reg);

/// Dispatches on the path suffix: `.prom` / `.txt` get the Prometheus text
/// format, everything else the JSON document.  Returns false when the file
/// cannot be written.
bool write_to_file(const std::string& path, const Registry& reg);

}  // namespace ixp::obs
