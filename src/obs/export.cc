#include "obs/export.h"

#include <cmath>
#include <fstream>
#include <ostream>

#include "util/strings.h"

namespace ixp::obs {

namespace {

// One fixed conversion for every double the exporters emit: %.17g
// round-trips any finite IEEE double, so equal bit patterns give equal
// bytes and the determinism guarantee reduces to "same values in, same
// file out".
std::string fmt_double(double v) {
  if (std::isnan(v)) return "null";
  return strformat("%.17g", v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_id_fields(std::ostream& out, const MetricId& id) {
  out << strformat("\"name\": \"%s\", \"labels\": \"%s\"", json_escape(id.name).c_str(),
                   json_escape(id.labels).c_str());
}

template <typename Map, typename BodyFn>
void write_json_section(std::ostream& out, const char* section, const Map& metrics,
                        bool trailing_comma, BodyFn body) {
  out << "  \"" << section << "\": [";
  bool first = true;
  for (const auto& [id, m] : metrics) {
    out << (first ? "\n    {" : ",\n    {");
    first = false;
    write_id_fields(out, id);
    body(out, m);
    out << "}";
  }
  out << (first ? "]" : "\n  ]") << (trailing_comma ? ",\n" : "\n");
}

std::string prom_series(const MetricId& id, const std::string& extra_label = {}) {
  std::string labels = id.labels;
  if (!extra_label.empty()) {
    labels = labels.empty() ? extra_label : labels + "," + extra_label;
  }
  return labels.empty() ? id.name : id.name + "{" + labels + "}";
}

void prom_type_line(std::ostream& out, std::string& last_typed, const std::string& name,
                    const char* type) {
  if (name == last_typed) return;
  last_typed = name;
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

void write_json(std::ostream& out, const Registry& reg) {
  out << "{\n  \"schema\": \"afixp-obs/1\",\n";
  write_json_section(out, "counters", reg.counters(), true,
                     [](std::ostream& o, const Counter& c) {
                       o << strformat(", \"value\": %llu",
                                      static_cast<unsigned long long>(c.value()));
                     });
  write_json_section(out, "gauges", reg.gauges(), true, [](std::ostream& o, const Gauge& g) {
    o << ", \"value\": " << fmt_double(g.value());
  });
  write_json_section(out, "histograms", reg.histograms(), true,
                     [](std::ostream& o, const Histogram& h) {
                       o << ", \"bounds\": [";
                       for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                         o << (i > 0 ? ", " : "") << fmt_double(h.bounds()[i]);
                       }
                       o << "], \"counts\": [";
                       for (std::size_t i = 0; i < h.counts().size(); ++i) {
                         o << (i > 0 ? ", " : "")
                           << strformat("%llu",
                                        static_cast<unsigned long long>(h.counts()[i]));
                       }
                       o << strformat("], \"count\": %llu, \"sum\": ",
                                      static_cast<unsigned long long>(h.count()))
                         << fmt_double(h.sum());
                     });
  write_json_section(out, "spans", reg.spans(), false, [](std::ostream& o, const Span& s) {
    o << strformat(", \"count\": %llu, \"simtime_ns\": %lld",
                   static_cast<unsigned long long>(s.count()),
                   static_cast<long long>(s.total().count()));
  });
  out << "}\n";
}

void write_prometheus(std::ostream& out, const Registry& reg) {
  std::string last_typed;
  for (const auto& [id, c] : reg.counters()) {
    prom_type_line(out, last_typed, id.name, "counter");
    out << prom_series(id)
        << strformat(" %llu\n", static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [id, g] : reg.gauges()) {
    prom_type_line(out, last_typed, id.name, "gauge");
    out << prom_series(id) << " " << fmt_double(g.value()) << "\n";
  }
  for (const auto& [id, h] : reg.histograms()) {
    prom_type_line(out, last_typed, id.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      cumulative += h.counts()[i];
      const std::string le =
          i < h.bounds().size() ? strformat("le=\"%s\"", fmt_double(h.bounds()[i]).c_str())
                                : std::string("le=\"+Inf\"");
      out << prom_series(MetricId{id.name + "_bucket", id.labels}, le)
          << strformat(" %llu\n", static_cast<unsigned long long>(cumulative));
    }
    out << prom_series(MetricId{id.name + "_sum", id.labels}) << " " << fmt_double(h.sum())
        << "\n";
    out << prom_series(MetricId{id.name + "_count", id.labels})
        << strformat(" %llu\n", static_cast<unsigned long long>(h.count()));
  }
  for (const auto& [id, s] : reg.spans()) {
    prom_type_line(out, last_typed, id.name + "_count", "counter");
    out << prom_series(MetricId{id.name + "_count", id.labels})
        << strformat(" %llu\n", static_cast<unsigned long long>(s.count()));
    prom_type_line(out, last_typed, id.name + "_simtime_seconds_total", "counter");
    out << prom_series(MetricId{id.name + "_simtime_seconds_total", id.labels}) << " "
        << fmt_double(to_sec(s.total())) << "\n";
  }
}

bool write_to_file(const std::string& path, const Registry& reg) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  if (ends_with(path, ".prom") || ends_with(path, ".txt")) {
    write_prometheus(out, reg);
  } else {
    write_json(out, reg);
  }
  return static_cast<bool>(out.flush());
}

}  // namespace ixp::obs
