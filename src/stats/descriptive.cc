#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ixp::stats {
namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> drop_nan(std::span<const double> v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) out.push_back(x);
  }
  return out;
}

std::size_t finite_count(std::span<const double> v) {
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) ++n;
  }
  return n;
}

double mean(std::span<const double> v) {
  double sum = 0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

double stddev(std::span<const double> v) {
  const double m = mean(v);
  if (std::isnan(m)) return kNaN;
  double ss = 0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) {
      ss += (x - m) * (x - m);
      ++n;
    }
  }
  if (n < 2) return kNaN;
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double quantile(std::span<const double> v, double q) {
  auto clean = drop_nan(v);
  if (clean.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(clean.begin(), clean.end());
  const double pos = q * static_cast<double>(clean.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, clean.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return clean[lo] * (1.0 - frac) + clean[hi] * frac;
}

double median(std::span<const double> v) { return quantile(v, 0.5); }

double mad(std::span<const double> v) {
  const double med = median(v);
  if (std::isnan(med)) return kNaN;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) dev.push_back(std::fabs(x - med));
  }
  return 1.4826 * median(dev);
}

double min_value(std::span<const double> v) {
  double best = kNaN;
  for (double x : v) {
    if (std::isfinite(x) && (std::isnan(best) || x < best)) best = x;
  }
  return best;
}

double max_value(std::span<const double> v) {
  double best = kNaN;
  for (double x : v) {
    if (std::isfinite(x) && (std::isnan(best) || x > best)) best = x;
  }
  return best;
}

}  // namespace ixp::stats
