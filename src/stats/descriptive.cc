#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ixp::stats {
namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> drop_nan(std::span<const double> v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) out.push_back(x);
  }
  return out;
}

std::size_t finite_count(std::span<const double> v) {
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) ++n;
  }
  return n;
}

double mean(std::span<const double> v) {
  double sum = 0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

double stddev(std::span<const double> v) {
  const double m = mean(v);
  if (std::isnan(m)) return kNaN;
  double ss = 0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) {
      ss += (x - m) * (x - m);
      ++n;
    }
  }
  if (n < 2) return kNaN;
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double quantile(std::span<const double> v, double q) {
  // Reused scratch: quantile sits inside the level-shift detector's inner
  // loop, so per-call allocation and a full sort both show up in profiles.
  static thread_local std::vector<double> clean;
  clean.clear();
  clean.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) clean.push_back(x);
  }
  return quantile_inplace(clean, q);
}

namespace {

// The k-th and (k+1)-th smallest of a[0..n) (0-based; the second value
// repeats the first when k == n-1).  Branchless three-way quickselect:
// std::nth_element's partition loop mispredicts ~50% of its branches on
// RTT data, and the TSLP window prefilter calls the selection kernel twice
// per window, which made it the single hottest function in the detector
// profile.  Here each pass streams the range into the scratch buffer --
// strict-less values packed at the front, the rest packed at the back --
// with the branch condition folded into the write cursors, so the loop
// carries no unpredictable branches.  Order statistics depend only on the
// multiset of values, so the result is bit-identical to the sort-based
// definition (and to what nth_element returned before).
std::pair<double, double> select_adjacent(const double* a, std::size_t n, std::size_t k) {
  static thread_local std::vector<double> scratch0, scratch1;
  scratch0.resize(n);
  scratch1.resize(n);
  double* buf = scratch0.data();
  double* other = scratch1.data();
  constexpr std::size_t kSortCutoff = 32;
  for (;;) {
    if (n <= kSortCutoff) {
      if (a != buf) std::copy(a, a + n, buf);
      std::sort(buf, buf + n);
      return {buf[k], buf[std::min(k + 1, n - 1)]};
    }
    // Median-of-three pivot; the max/min dance picks one of the three
    // element values, so the pivot is always a member of the multiset and
    // both partition sides shrink strictly (no tie-driven livelock).
    const double p0 = a[0], p1 = a[n / 2], p2 = a[n - 1];
    const double pivot = std::max(std::min(p0, p1), std::min(std::max(p0, p1), p2));
    // Split: x < pivot packs forward from buf[0], x >= pivot packs
    // backward from buf[n).  When the cursors meet, both speculative
    // writes target the same slot with the same value, and only the
    // winning side's cursor moves -- so the collision is benign.
    std::size_t nl = 0;
    std::size_t hj = n;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = a[i];
      const bool lt = x < pivot;
      buf[nl] = x;
      buf[hj - 1] = x;
      nl += static_cast<std::size_t>(lt);
      hj -= static_cast<std::size_t>(!lt);
    }
    if (k + 1 < nl) {
      // Both targets among the strict-less values.
      a = buf;
      std::swap(buf, other);
      n = nl;
      continue;
    }
    if (k + 1 == nl) {
      // The targets straddle the split: k-th = max of the lows,
      // (k+1)-th = min of the rest.
      double first = buf[0];
      for (std::size_t i = 1; i < nl; ++i) first = std::max(first, buf[i]);
      double second = buf[nl];
      for (std::size_t i = nl + 1; i < n; ++i) second = std::min(second, buf[i]);
      return {first, second};
    }
    // Both targets at or above the pivot: peel off the pivot-equal run
    // (their value is known), keep only the strictly-greater values.
    std::size_t ng = 0;
    for (std::size_t i = nl; i < n; ++i) {
      const double x = buf[i];
      other[ng] = x;
      ng += static_cast<std::size_t>(x > pivot);
    }
    const std::size_t ne = (n - nl) - ng;  // >= 1: the pivot is an element
    if (k < nl + ne) {
      if (k + 1 < nl + ne || ng == 0) return {pivot, pivot};
      double second = other[0];
      for (std::size_t i = 1; i < ng; ++i) second = std::min(second, other[i]);
      return {pivot, second};
    }
    // No buffer swap here: the next pass reads `other` and writes `buf`,
    // whose previous contents are dead once a pass consumes its input.
    k -= nl + ne;
    a = other;
    n = ng;
  }
}

}  // namespace

double quantile_inplace(std::span<double> finite, double q) {
  if (finite.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(finite.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, finite.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Only the lo-th and (lo+1)-th order statistics matter, so select both in
  // one walk instead of sorting: O(n) against O(n log n), bit-identical.
  const auto [at_lo, at_next] = select_adjacent(finite.data(), finite.size(), lo);
  const double at_hi = hi == lo ? at_lo : at_next;
  return at_lo * (1.0 - frac) + at_hi * frac;
}

double median(std::span<const double> v) { return quantile(v, 0.5); }

double mad(std::span<const double> v) {
  const double med = median(v);
  if (std::isnan(med)) return kNaN;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) dev.push_back(std::fabs(x - med));
  }
  return 1.4826 * median(dev);
}

double min_value(std::span<const double> v) {
  double best = kNaN;
  for (double x : v) {
    if (std::isfinite(x) && (std::isnan(best) || x < best)) best = x;
  }
  return best;
}

double max_value(std::span<const double> v) {
  double best = kNaN;
  for (double x : v) {
    if (std::isfinite(x) && (std::isnan(best) || x > best)) best = x;
  }
  return best;
}

}  // namespace ixp::stats
