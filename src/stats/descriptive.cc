#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ixp::stats {
namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> drop_nan(std::span<const double> v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) out.push_back(x);
  }
  return out;
}

std::size_t finite_count(std::span<const double> v) {
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) ++n;
  }
  return n;
}

double mean(std::span<const double> v) {
  double sum = 0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

double stddev(std::span<const double> v) {
  const double m = mean(v);
  if (std::isnan(m)) return kNaN;
  double ss = 0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::isfinite(x)) {
      ss += (x - m) * (x - m);
      ++n;
    }
  }
  if (n < 2) return kNaN;
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double quantile(std::span<const double> v, double q) {
  // Reused scratch: quantile sits inside the level-shift detector's inner
  // loop, so per-call allocation and a full sort both show up in profiles.
  static thread_local std::vector<double> clean;
  clean.clear();
  clean.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) clean.push_back(x);
  }
  if (clean.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(clean.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, clean.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Only the lo-th and hi-th order statistics matter, so select instead of
  // sorting: O(n) against O(n log n), with bit-identical results.
  const auto lo_it = clean.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(clean.begin(), lo_it, clean.end());
  const double at_lo = clean[lo];
  const double at_hi =
      hi == lo ? at_lo : *std::min_element(lo_it + 1, clean.end());
  return at_lo * (1.0 - frac) + at_hi * frac;
}

double median(std::span<const double> v) { return quantile(v, 0.5); }

double mad(std::span<const double> v) {
  const double med = median(v);
  if (std::isnan(med)) return kNaN;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) {
    if (std::isfinite(x)) dev.push_back(std::fabs(x - med));
  }
  return 1.4826 * median(dev);
}

double min_value(std::span<const double> v) {
  double best = kNaN;
  for (double x : v) {
    if (std::isfinite(x) && (std::isnan(best) || x < best)) best = x;
  }
  return best;
}

double max_value(std::span<const double> v) {
  double best = kNaN;
  for (double x : v) {
    if (std::isfinite(x) && (std::isnan(best) || x > best)) best = x;
  }
  return best;
}

}  // namespace ixp::stats
