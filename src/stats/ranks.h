// Rank transforms.
//
// The paper's level-shift detector is a *rank-based* non-parametric CUSUM
// (Taylor's change-point analysis on ranks): ranking the samples first makes
// the detector robust to the heavy-tailed RTT outliers that ICMP slow-path
// responses produce.
#pragma once

#include <span>
#include <vector>

namespace ixp::stats {

/// Fractional (mid) ranks, 1-based, ties averaged.  NaN entries receive
/// rank NaN and do not consume rank mass.
std::vector<double> ranks(std::span<const double> v);

/// Mann-Whitney U statistic of `a` against `b` (NaNs skipped).
double mann_whitney_u(std::span<const double> a, std::span<const double> b);

/// Two-sided normal-approximation p-value for the Mann-Whitney U test.
/// Suitable for the segment sizes the TSLP pipeline feeds it (>= ~10).
double mann_whitney_pvalue(std::span<const double> a, std::span<const double> b);

}  // namespace ixp::stats
