// Descriptive statistics over double sequences.
//
// NaN entries (missing RTT samples -- probe losses) are skipped by every
// function here, matching how the analysis pipeline treats unanswered
// probes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ixp::stats {

/// Arithmetic mean of finite entries; NaN if none.
double mean(std::span<const double> v);

/// Sample standard deviation (n-1 denominator); NaN if fewer than 2 entries.
double stddev(std::span<const double> v);

/// Median of finite entries; NaN if none.
double median(std::span<const double> v);

/// Linear-interpolated quantile q in [0,1] of finite entries; NaN if none.
double quantile(std::span<const double> v, double q);

/// Median absolute deviation (scaled by 1.4826 to be sigma-consistent).
double mad(std::span<const double> v);

/// Minimum / maximum of finite entries; NaN if none.
double min_value(std::span<const double> v);
double max_value(std::span<const double> v);

/// Count of finite (non-NaN) entries.
std::size_t finite_count(std::span<const double> v);

/// Copy with NaN entries removed.
std::vector<double> drop_nan(std::span<const double> v);

}  // namespace ixp::stats
