// Descriptive statistics over double sequences.
//
// NaN entries (missing RTT samples -- probe losses) are skipped by every
// function here, matching how the analysis pipeline treats unanswered
// probes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ixp::stats {

/// Arithmetic mean of finite entries; NaN if none.
double mean(std::span<const double> v);

/// Sample standard deviation (n-1 denominator); NaN if fewer than 2 entries.
double stddev(std::span<const double> v);

/// Median of finite entries; NaN if none.
double median(std::span<const double> v);

/// Linear-interpolated quantile q in [0,1] of finite entries; NaN if none.
double quantile(std::span<const double> v, double q);

/// Quantile over an already-compacted buffer of finite values.  Reorders
/// `finite` (selection, not a sort) but uses only its multiset of values,
/// so repeated calls on the same buffer return exactly what fresh calls on
/// the original compaction would -- the property the TSLP fast path's
/// fused p95/p05 prefilter relies on.  quantile() routes through this, so
/// there is a single copy of the interpolation math.
double quantile_inplace(std::span<double> finite, double q);

/// Median absolute deviation (scaled by 1.4826 to be sigma-consistent).
double mad(std::span<const double> v);

/// Minimum / maximum of finite entries; NaN if none.
double min_value(std::span<const double> v);
double max_value(std::span<const double> v);

/// Count of finite (non-NaN) entries.
std::size_t finite_count(std::span<const double> v);

/// Copy with NaN entries removed.
std::vector<double> drop_nan(std::span<const double> v);

}  // namespace ixp::stats
