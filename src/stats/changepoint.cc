#include "stats/changepoint.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "stats/ranks.h"
#include "util/simd.h"

namespace ixp::stats {
namespace {

// CUSUM range (max - min of the CUSUM path) -- Taylor's Sdiff statistic.
// Deviations are taken from the mean of the finite entries; NaN entries
// contribute zero so gaps neither create nor destroy apparent shifts.
double cusum_range(std::span<const double> v, double m) {
  double s = 0, lo = 0, hi = 0;
  for (double x : v) {
    if (std::isfinite(x)) s += x - m;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return hi - lo;
}

// Index of the CUSUM extremum: the last sample of the old level, so the
// change point (first sample of the new level) is extremum + 1.
std::size_t cusum_extremum(std::span<const double> v, double m) {
  double s = 0, best = -1;
  std::size_t at = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::isfinite(v[i])) s += v[i] - m;
    if (std::fabs(s) > best) {
      best = std::fabs(s);
      at = i;
    }
  }
  return at;
}

struct Detector {
  const CusumOptions& opt;
  Rng rng;
  std::vector<std::size_t> found;

  // Bootstrap with early exit: once the number of exceedances guarantees
  // the confidence cannot reach the bar, stop shuffling.
  double confidence_of(std::span<const double> v) {
    const double m = mean(v);
    if (std::isnan(m)) return 0.0;
    const double observed = cusum_range(v, m);
    if (observed <= 0) return 0.0;
    std::vector<double> shuffled(v.begin(), v.end());
    const int rounds = std::max(1, opt.bootstrap_rounds);
    const int max_fail = static_cast<int>(std::floor((1.0 - opt.confidence) * rounds));
    int below = 0;
    for (int r = 0; r < rounds; ++r) {
      // Fisher-Yates; reshuffling the previous permutation stays uniform.
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(shuffled[i - 1], shuffled[j]);
      }
      if (cusum_range(shuffled, m) < observed) {
        ++below;
      } else if (r - below >= max_fail + 1) {
        // Even if every remaining round lands below, the bar is missed.
        return static_cast<double>(below) / rounds;
      }
    }
    return static_cast<double>(below) / rounds;
  }

  void recurse(std::span<const double> v, std::size_t offset) {
    if (v.size() < 2 * opt.min_segment) return;
    const double conf = confidence_of(v);
    if (conf < opt.confidence) return;
    const double m = mean(v);
    const std::size_t ext = cusum_extremum(v, m);
    const std::size_t split = ext + 1;  // first index of the new level
    if (split < opt.min_segment || v.size() - split < opt.min_segment) return;
    found.push_back(offset + split);
    recurse(v.subspan(0, split), offset);
    recurse(v.subspan(split), offset + split);
  }
};

// Bit-exact inline clone of ixp::Rng (splitmix64 seeding + xoshiro256++).
// The fast detector must replay the legacy detector's draw sequence
// exactly -- the stream spans a whole recursion, so any divergence shifts
// every later decision -- and the out-of-line Rng::next() call is a
// measurable slice of the bootstrap (~57k draws per confident() call at
// the paper's window size).  Any change to util/rng.cc must land here too;
// the legacy-vs-fast equivalence suites in tests/test_tslp.cc fail loudly
// if the streams drift.
class InlineXoshiro {
 public:
  explicit InlineXoshiro(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }
  // State round trip for the batch driver's round kernel: it runs whole
  // bootstrap rounds on register-resident copies of four generators'
  // states and writes them back once per round, instead of bouncing every
  // draw's state update through memory.
  void save_state(std::uint64_t out[4]) const {
    for (int k = 0; k < 4; ++k) out[k] = s_[k];
  }
  void load_state(const std::uint64_t in[4]) {
    for (int k = 0; k < 4; ++k) s_[k] = in[k];
  }
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

 private:
  std::uint64_t s_[4];
};

/// Grows the per-span division tables to cover spans up to `n`.  Each span
/// ever seen pays its two divisions once; the bootstrap then replaces
/// every `v % span` with a multiply-high (exact: mod_magic[s] =
/// ceil(2^64/s) makes the estimated quotient off by at most one, fixed up
/// below).
void ensure_mod_tables(ChangePointScratch& scratch, std::size_t n) {
  if (n + 1 <= scratch.mod_magic.size()) return;
  const std::size_t from = std::max<std::size_t>(2, scratch.mod_magic.size());
  scratch.mod_magic.resize(n + 1, 0);
  scratch.mod_limit.resize(n + 1, 0);
  for (std::size_t s = from; s <= n; ++s) {
    scratch.mod_magic[s] = ~0ULL / s + 1;
    scratch.mod_limit[s] = ~0ULL - ~0ULL % s;
  }
}

// cusum_range over a NaN-presubstituted buffer, compared against
// `observed`.  Missing entries were replaced by the mean when the buffer
// was filled, so each contributes fl(m - m) = +0.0 and the running sum
// takes exactly the values the skip-NaN loop produces (a running CUSUM
// can never be -0.0: it starts at +0.0 and x + (-x) rounds to +0.0).
// Early exit is exact too: the range is monotone over the scan, so once it
// reaches `observed` the comparison outcome is decided.
bool cusum_below(std::span<const double> v, double m, double observed) {
  double s = 0, lo = 0, hi = 0;
  for (double x : v) {
    s += x - m;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    if (hi - lo >= observed) return false;
  }
  return true;
}

// Scale for the exact-integer bootstrap: 2^10.  On the rank path every
// input is a multiple of 1/2, and an exactly-representable window mean is
// a ratio (sum of half-integers) / count whose denominator in lowest terms
// divides 2 * count, i.e. is a power of two <= 1024 for any window the
// detector sees.  Deviations are then multiples of 2^-10 and the scaled
// values are integers.
constexpr double kExactScale = 1024.0;
// Magnitude cap on inputs and the mean for the integer path: scaled
// deviations stay below 2^30 (int32 with headroom), and CUSUM partial sums
// over any practical window stay far inside int64.
constexpr double kExactMax = 524288.0;  // 2^19

// Tries to set up the exact-integer bootstrap for this window: succeeds
// when the CUSUM arithmetic over (v, m) provably never rounds -- every
// finite sample a half-integer, mean and observed range multiples of
// 2^-10, all magnitudes small.  Then fl(x - m) == x - m exactly, every
// partial sum is an integer multiple of 2^-10 well inside the 53-bit
// window, and min/max/comparison decisions are order-independent -- so the
// scaled int32 buffer reproduces the double path's bootstrap verdicts
// bit-for-bit while swapping half the bytes and running the scan on
// 1-cycle integer adds instead of the FP add latency chain.  NaN slots
// become 0, the integer image of the +0.0 they contribute in the double
// path.  The rank path (the TSLP configuration) passes this check for
// every top-level window; recursion sub-segments pass whenever their mean
// happens to divide exactly.
bool build_exact_buffer(std::span<const double> v, double m, double observed,
                        std::vector<std::int32_t>& out, std::int64_t& observed_scaled,
                        bool& prefix_fits_i32) {
  const double m_scaled = m * kExactScale;
  if (!(std::floor(m_scaled) == m_scaled) || !(std::fabs(m) <= kExactMax)) return false;
  const double o_scaled = observed * kExactScale;
  if (!(std::floor(o_scaled) == o_scaled)) return false;
  out.clear();
  out.reserve(v.size());
  std::int64_t amax = 0;
  for (const double x : v) {
    if (!std::isfinite(x)) {
      out.push_back(0);
      continue;
    }
    const double twice = x * 2.0;
    if (!(std::floor(twice) == twice) || !(std::fabs(x) <= kExactMax)) return false;
    const std::int32_t y = static_cast<std::int32_t>(x * kExactScale - m_scaled);
    amax = std::max<std::int64_t>(amax, y < 0 ? -static_cast<std::int64_t>(y) : y);
    out.push_back(y);
  }
  observed_scaled = static_cast<std::int64_t>(o_scaled);
  // Every prefix sum bounded by n * max|y|: when that fits int32, the
  // vectorized scan's int32 prefix arithmetic is exact too.  The bound is
  // shuffle-invariant (same multiset every round), so one check per window
  // covers every bootstrap round.
  prefix_fits_i32 =
      static_cast<std::int64_t>(v.size() + 1) * amax < (std::int64_t{1} << 31);
  return true;
}

// Integer twin of cusum_below: same decision because both compare the same
// exact rational values, merely scaled by 2^10.  `prefix_fits_i32` routes
// to the vectorized prefix-sum scan (see simd.h for the exactness
// argument); the scalar int64 loop is the general fallback.
bool cusum_below_int(std::span<const std::int32_t> v, std::int64_t observed_scaled,
                     bool prefix_fits_i32) {
  if (prefix_fits_i32) return simd::cusum_i32_range_below(v, observed_scaled);
  std::int64_t s = 0, lo = 0, hi = 0;
  for (const std::int32_t y : v) {
    s += y;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    if (hi - lo >= observed_scaled) return false;
  }
  return true;
}

// The scratch-reusing twin of Detector, producing the identical accepted
// index set from the identical draw stream.  Differences from
// Detector::confidence_of, none of which can change a decision or a draw:
//   * the shuffle buffer is recycled and filled with NaN -> mean
//     substituted values (see cusum_below for why that is bit-exact);
//   * Fisher-Yates draws replay Rng::uniform_int's rejection loop with an
//     inlined generator and a table-driven exact modulo;
//   * a bootstrap round whose comparison can no longer affect the verdict
//     (acceptance already sealed) skips the swaps and the CUSUM but still
//     advances the generator through the round's draws, rejections
//     included, so the stream position stays in lockstep;
//   * the failure exit (r - below >= max_fail + 1) is the one Detector
//     also takes; a success exit that *stopped drawing* would desync the
//     stream for the rest of the recursion, which is why sealed rounds
//     drain draws instead of returning.
struct IndexDetector {
  const CusumOptions& opt;
  InlineXoshiro rng;
  ChangePointScratch& scratch;

  // The shared bootstrap round loop; `scan` judges one shuffled buffer.
  template <class T, class Scan>
  bool bootstrap_rounds(T* data, std::size_t n, Scan&& scan) {
    const int rounds = std::max(1, opt.bootstrap_rounds);
    const int max_fail = static_cast<int>(std::floor((1.0 - opt.confidence) * rounds));
    // Smallest exceedance count that already clears the confidence bar,
    // under the same floating-point comparison the verdict uses.
    int need = rounds + 1;
    for (int b = 0; b <= rounds; ++b) {
      if (static_cast<double>(b) / rounds >= opt.confidence) {
        need = b;
        break;
      }
    }
    const std::uint64_t* magic = scratch.mod_magic.data();
    const std::uint64_t* limit = scratch.mod_limit.data();
    int below = 0;
    for (int r = 0; r < rounds; ++r) {
      if (below >= need) {
        // Sealed: drain this round's draws without shuffling or scanning.
        for (std::size_t i = n; i > 1; --i) {
          while (rng.next() >= limit[i]) {
          }
        }
        continue;
      }
      // Fisher-Yates; identical draw sequence to Detector::confidence_of.
      for (std::size_t i = n; i > 1; --i) {
        std::uint64_t u = rng.next();
        if (u >= limit[i]) [[unlikely]] {
          do {
            u = rng.next();
          } while (u >= limit[i]);
        }
        const std::uint64_t q =
            static_cast<std::uint64_t>((static_cast<unsigned __int128>(u) * magic[i]) >> 64);
        std::uint64_t j = u - q * i;
        if (j >= i) j += i;  // estimated quotient overshot by one
        std::swap(data[i - 1], data[j]);
      }
      if (scan()) {
        ++below;
      } else if (r - below >= max_fail + 1) {
        // Even if every remaining round lands below, the bar is missed.
        return false;
      }
    }
    return static_cast<double>(below) / rounds >= opt.confidence;
  }

  bool confident(std::span<const double> v) {
    const double m = mean(v);
    if (std::isnan(m)) return false;
    const double observed = cusum_range(v, m);
    if (observed <= 0) return false;
    std::int64_t observed_scaled = 0;
    bool prefix_i32 = false;
    if (build_exact_buffer(v, m, observed, scratch.shuffled_int, observed_scaled, prefix_i32)) {
      auto& buf = scratch.shuffled_int;
      return bootstrap_rounds(buf.data(), buf.size(), [&buf, observed_scaled, prefix_i32] {
        return cusum_below_int(buf, observed_scaled, prefix_i32);
      });
    }
    auto& shuffled = scratch.shuffled;
    shuffled.clear();
    shuffled.reserve(v.size());
    for (const double x : v) shuffled.push_back(std::isfinite(x) ? x : m);
    return bootstrap_rounds(shuffled.data(), shuffled.size(), [&shuffled, m, observed] {
      return cusum_below(shuffled, m, observed);
    });
  }

  void recurse(std::span<const double> v, std::size_t offset) {
    if (v.size() < 2 * opt.min_segment) return;
    if (!confident(v)) return;
    const double m = mean(v);
    const std::size_t ext = cusum_extremum(v, m);
    const std::size_t split = ext + 1;  // first index of the new level
    if (split < opt.min_segment || v.size() - split < opt.min_segment) return;
    scratch.found.push_back(offset + split);
    recurse(v.subspan(0, split), offset);
    recurse(v.subspan(split), offset + split);
  }
};

void ranks_into(std::span<const double> v, std::vector<double>& out,
                std::vector<std::size_t>& idx);

// One in-flight window of the batched driver.  A lane owns everything the
// top-level bootstrap of one window touches -- generator, rank buffer,
// shuffle buffer, round counters -- so four lanes can advance one round at
// a time with their draw loops interleaved.  (The recursion after an
// accepted top-level split stays scalar inside the lane: its bootstraps
// are mostly small, size-varying segments whose chains cannot share a
// lockstep kernel without fragmenting it -- a chained-segment variant of
// this driver measured slower than the scalar recursion it replaced.)
struct BootstrapLane {
  ChangePointTask* task = nullptr;
  InlineXoshiro rng{0};
  std::span<const double> input;      ///< rank transform (or the raw samples)
  std::vector<double> ranks;          ///< backing store when use_ranks
  std::vector<std::int32_t> ibuf;     ///< exact-integer shuffle buffer
  std::vector<double> dbuf;           ///< double shuffle buffer (fallback)
  bool exact = false;
  bool prefix_i32 = false;
  double m = 0.0;
  double observed = 0.0;
  std::int64_t observed_scaled = 0;
  int rounds = 0;
  int max_fail = 0;
  int need = 0;
  int r = 0;
  int below = 0;
};

// Loads the next task whose top-level bootstrap actually needs rounds into
// `lane`.  Tasks that decide without drawing (too short, no finite mean, a
// non-positive CUSUM range) are resolved inline with an empty result, same
// as IndexDetector::recurse would.  Returns false when the task list is
// exhausted.
bool fill_lane(BootstrapLane& lane, std::span<ChangePointTask> tasks, std::size_t& next,
               ChangePointScratch& scratch) {
  while (next < tasks.size()) {
    ChangePointTask& t = tasks[next++];
    t.found.clear();
    if (t.v.size() < 2 * t.opt.min_segment) continue;
    if (t.opt.use_ranks) {
      ranks_into(t.v, lane.ranks, scratch.order);
      lane.input = lane.ranks;
    } else {
      lane.input = t.v;
    }
    const double m = mean(lane.input);
    if (std::isnan(m)) continue;
    const double observed = cusum_range(lane.input, m);
    if (observed <= 0) continue;
    ensure_mod_tables(scratch, lane.input.size());
    lane.task = &t;
    lane.rng = InlineXoshiro(t.opt.seed);
    lane.m = m;
    lane.observed = observed;
    lane.exact = build_exact_buffer(lane.input, m, observed, lane.ibuf, lane.observed_scaled,
                                    lane.prefix_i32);
    if (!lane.exact) {
      lane.dbuf.clear();
      lane.dbuf.reserve(lane.input.size());
      for (const double x : lane.input) lane.dbuf.push_back(std::isfinite(x) ? x : m);
    }
    lane.rounds = std::max(1, t.opt.bootstrap_rounds);
    lane.max_fail = static_cast<int>(std::floor((1.0 - t.opt.confidence) * lane.rounds));
    lane.need = lane.rounds + 1;
    for (int b = 0; b <= lane.rounds; ++b) {
      if (static_cast<double>(b) / lane.rounds >= t.opt.confidence) {
        lane.need = b;
        break;
      }
    }
    lane.r = 0;
    lane.below = 0;
    return true;
  }
  lane.task = nullptr;
  return false;
}

// The tail of IndexDetector::recurse for a window whose top-level
// confident() call accepted: locate the split, then continue the recursion
// scalar with the lane's generator, which sits at exactly the stream
// position the sequential path would have reached.
void finish_accepted_lane(BootstrapLane& lane, ChangePointScratch& scratch) {
  ChangePointTask& t = *lane.task;
  scratch.found.clear();
  const std::span<const double> input = lane.input;
  const double m = mean(input);
  const std::size_t ext = cusum_extremum(input, m);
  const std::size_t split = ext + 1;  // first index of the new level
  if (split >= t.opt.min_segment && input.size() - split >= t.opt.min_segment) {
    scratch.found.push_back(split);
    IndexDetector det{t.opt, lane.rng, scratch};
    det.recurse(input.subspan(0, split), 0);
    det.recurse(input.subspan(split), split);
  }
  std::sort(scratch.found.begin(), scratch.found.end());
  scratch.found.erase(std::unique(scratch.found.begin(), scratch.found.end()),
                      scratch.found.end());
  t.found.assign(scratch.found.begin(), scratch.found.end());
}

// ranks() with caller-owned buffers; same values in the same order.
void ranks_into(std::span<const double> v, std::vector<double>& out,
                std::vector<std::size_t>& idx) {
  const std::size_t n = v.size();
  out.assign(n, std::numeric_limits<double>::quiet_NaN());
  idx.clear();
  idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite(v[i])) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Mid-rank for the tie group [i, j].
    const double r = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[idx[k]] = r;
    i = j + 1;
  }
}

}  // namespace

const std::vector<std::size_t>& detect_change_point_indices(std::span<const double> v,
                                                            const CusumOptions& opt,
                                                            ChangePointScratch& scratch) {
  std::span<const double> input = v;
  if (opt.use_ranks) {
    ranks_into(v, scratch.ranks, scratch.order);
    input = scratch.ranks;
  }
  scratch.found.clear();
  ensure_mod_tables(scratch, input.size());
  IndexDetector det{opt, InlineXoshiro(opt.seed), scratch};
  det.recurse(input, 0);
  std::sort(scratch.found.begin(), scratch.found.end());
  scratch.found.erase(std::unique(scratch.found.begin(), scratch.found.end()), scratch.found.end());
  return scratch.found;
}

void detect_change_point_indices_batch(std::span<ChangePointTask> tasks,
                                       ChangePointScratch& scratch) {
  constexpr int kLanes = 4;
  BootstrapLane lanes[kLanes];
  std::size_t next = 0;
  int active = 0;
  for (auto& lane : lanes) {
    if (fill_lane(lane, tasks, next, scratch)) ++active;
  }

  while (active > 0) {
    // Advance every live lane by exactly one bootstrap round.  Each lane
    // replays exactly the draws the sequential path makes -- rejection
    // redraws are a per-lane scalar loop, so lockstep never constrains a
    // stream -- and a lane whose acceptance is already sealed drains its
    // draws without shuffling (see IndexDetector for why it must keep
    // drawing).
    const std::uint64_t* magic = scratch.mod_magic.data();
    const std::uint64_t* limit = scratch.mod_limit.data();
    bool sealed[kLanes];
    bool kernel_ok = true;
    for (int l = 0; l < kLanes; ++l) {
      sealed[l] = lanes[l].task && lanes[l].below >= lanes[l].need;
      kernel_ok = kernel_ok && lanes[l].task && lanes[l].exact &&
                  lanes[l].input.size() == lanes[0].input.size();
    }
    if (kernel_ok) {
      // Four live exact lanes of one window size: the common case (the
      // TSLP pipeline hands over same-length windows).  All four generator
      // states live in locals for the whole round, so the per-draw state
      // update is a register chain, and the four independent chains
      // overlap in the out-of-order window -- this is where the
      // interleaving actually pays; a lane-struct-resident state would
      // serialize every draw on a store-to-load round trip.
      std::uint64_t s0[kLanes], s1[kLanes], s2[kLanes], s3[kLanes];
      std::int32_t* buf[kLanes];
      bool drain[kLanes];
      for (int l = 0; l < kLanes; ++l) {
        std::uint64_t st[4];
        lanes[l].rng.save_state(st);
        s0[l] = st[0];
        s1[l] = st[1];
        s2[l] = st[2];
        s3[l] = st[3];
        buf[l] = lanes[l].ibuf.data();
        drain[l] = sealed[l];
      }
#if defined(__AVX2__)
      // The four generator states as four u64 lanes of one vector each:
      // one vector step produces all four lanes' draws.  Every operation
      // is lanewise integer (add/xor/shift/rotate), so each lane computes
      // exactly what its scalar InlineXoshiro would.  A rejected draw
      // (probability <= span / 2^64) spills the states, redraws that one
      // lane scalar, and reloads -- the other lanes never advance.
      __m256i S0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0));
      __m256i S1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s1));
      __m256i S2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s2));
      __m256i S3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s3));
      for (std::size_t s = lanes[0].input.size(); s > 1; --s) {
        const std::uint64_t lim = limit[s];
        const std::uint64_t mg = magic[s];
        const __m256i sum = _mm256_add_epi64(S0, S3);
        const __m256i rot =
            _mm256_or_si256(_mm256_slli_epi64(sum, 23), _mm256_srli_epi64(sum, 41));
        const __m256i res = _mm256_add_epi64(rot, S0);
        const __m256i t = _mm256_slli_epi64(S1, 17);
        S2 = _mm256_xor_si256(S2, S0);
        S3 = _mm256_xor_si256(S3, S1);
        S1 = _mm256_xor_si256(S1, S2);
        S0 = _mm256_xor_si256(S0, S3);
        S2 = _mm256_xor_si256(S2, t);
        S3 = _mm256_or_si256(_mm256_slli_epi64(S3, 45), _mm256_srli_epi64(S3, 19));
        alignas(32) std::uint64_t u[kLanes];
        _mm256_store_si256(reinterpret_cast<__m256i*>(u), res);
#pragma GCC unroll 4
        for (int l = 0; l < kLanes; ++l) {
          std::uint64_t ul = u[l];
          if (ul >= lim) [[unlikely]] {
            alignas(32) std::uint64_t a0[kLanes], a1[kLanes], a2[kLanes], a3[kLanes];
            _mm256_store_si256(reinterpret_cast<__m256i*>(a0), S0);
            _mm256_store_si256(reinterpret_cast<__m256i*>(a1), S1);
            _mm256_store_si256(reinterpret_cast<__m256i*>(a2), S2);
            _mm256_store_si256(reinterpret_cast<__m256i*>(a3), S3);
            do {
              ul = InlineXoshiro::rotl(a0[l] + a3[l], 23) + a0[l];
              const std::uint64_t tt = a1[l] << 17;
              a2[l] ^= a0[l];
              a3[l] ^= a1[l];
              a1[l] ^= a2[l];
              a0[l] ^= a3[l];
              a2[l] ^= tt;
              a3[l] = InlineXoshiro::rotl(a3[l], 45);
            } while (ul >= lim);
            S0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(a0));
            S1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(a1));
            S2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(a2));
            S3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(a3));
          }
          if (!drain[l]) {
            const std::uint64_t q =
                static_cast<std::uint64_t>((static_cast<unsigned __int128>(ul) * mg) >> 64);
            std::uint64_t j = ul - q * s;
            if (j >= s) j += s;  // estimated quotient overshot by one
            const std::int32_t tmp = buf[l][s - 1];
            buf[l][s - 1] = buf[l][j];
            buf[l][j] = tmp;
          }
        }
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s0), S0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s1), S1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s2), S2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s3), S3);
#else
      for (std::size_t s = lanes[0].input.size(); s > 1; --s) {
        const std::uint64_t lim = limit[s];
        const std::uint64_t mg = magic[s];
#pragma GCC unroll 4
        for (int l = 0; l < kLanes; ++l) {
          std::uint64_t u = InlineXoshiro::rotl(s0[l] + s3[l], 23) + s0[l];
          std::uint64_t t = s1[l] << 17;
          s2[l] ^= s0[l];
          s3[l] ^= s1[l];
          s1[l] ^= s2[l];
          s0[l] ^= s3[l];
          s2[l] ^= t;
          s3[l] = InlineXoshiro::rotl(s3[l], 45);
          if (u >= lim) [[unlikely]] {
            do {
              u = InlineXoshiro::rotl(s0[l] + s3[l], 23) + s0[l];
              t = s1[l] << 17;
              s2[l] ^= s0[l];
              s3[l] ^= s1[l];
              s1[l] ^= s2[l];
              s0[l] ^= s3[l];
              s2[l] ^= t;
              s3[l] = InlineXoshiro::rotl(s3[l], 45);
            } while (u >= lim);
          }
          if (!drain[l]) {
            const std::uint64_t q =
                static_cast<std::uint64_t>((static_cast<unsigned __int128>(u) * mg) >> 64);
            std::uint64_t j = u - q * s;
            if (j >= s) j += s;  // estimated quotient overshot by one
            const std::int32_t tmp = buf[l][s - 1];
            buf[l][s - 1] = buf[l][j];
            buf[l][j] = tmp;
          }
        }
      }
#endif
      for (int l = 0; l < kLanes; ++l) {
        const std::uint64_t st[4] = {s0[l], s1[l], s2[l], s3[l]};
        lanes[l].rng.load_state(st);
      }
    } else {
      // Generic round: partial occupancy (pool tail), a non-exact lane, or
      // mixed window sizes.  Same draws, lane state in place.
      for (int l = 0; l < kLanes; ++l) {
        BootstrapLane& ln = lanes[l];
        if (!ln.task) continue;
        for (std::size_t s = ln.input.size(); s > 1; --s) {
          std::uint64_t u = ln.rng.next();
          if (u >= limit[s]) [[unlikely]] {
            do {
              u = ln.rng.next();
            } while (u >= limit[s]);
          }
          if (!sealed[l]) {
            const std::uint64_t q =
                static_cast<std::uint64_t>((static_cast<unsigned __int128>(u) * magic[s]) >> 64);
            std::uint64_t j = u - q * s;
            if (j >= s) j += s;  // estimated quotient overshot by one
            if (ln.exact) {
              std::swap(ln.ibuf[s - 1], ln.ibuf[j]);
            } else {
              std::swap(ln.dbuf[s - 1], ln.dbuf[j]);
            }
          }
        }
      }
    }
    // Scans and verdicts.
    for (int l = 0; l < kLanes; ++l) {
      BootstrapLane& ln = lanes[l];
      if (!ln.task) continue;
      bool decided = false;
      bool accepted = false;
      if (!sealed[l]) {
        const bool ok = ln.exact ? cusum_below_int(ln.ibuf, ln.observed_scaled, ln.prefix_i32)
                                 : cusum_below(ln.dbuf, ln.m, ln.observed);
        if (ok) {
          ++ln.below;
        } else if (ln.r - ln.below >= ln.max_fail + 1) {
          // Even if every remaining round lands below, the bar is missed.
          decided = true;
        }
      }
      ++ln.r;
      if (!decided && ln.r == ln.rounds) {
        decided = true;
        accepted = static_cast<double>(ln.below) / ln.rounds >= ln.task->opt.confidence;
      }
      if (!decided) continue;
      if (accepted) finish_accepted_lane(ln, scratch);
      if (!fill_lane(ln, tasks, next, scratch)) --active;
    }
  }
}

std::vector<double> cusum_path(std::span<const double> v) {
  const double m = mean(v);
  std::vector<double> path;
  path.reserve(v.size() + 1);
  double s = 0;
  path.push_back(0);
  for (double x : v) {
    if (std::isfinite(x) && !std::isnan(m)) s += x - m;
    path.push_back(s);
  }
  return path;
}

double change_confidence(std::span<const double> v, int rounds, Rng& rng) {
  const double m = mean(v);
  if (std::isnan(m)) return 0.0;
  const double observed = cusum_range(v, m);
  if (observed <= 0) return 0.0;
  std::vector<double> shuffled(v.begin(), v.end());
  int below = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(shuffled[i - 1], shuffled[j]);
    }
    if (cusum_range(shuffled, m) < observed) ++below;
  }
  return static_cast<double>(below) / std::max(1, rounds);
}

std::vector<ChangePoint> detect_change_points(std::span<const double> v, const CusumOptions& opt) {
  std::vector<double> work;
  std::span<const double> input = v;
  if (opt.use_ranks) {
    work = ranks(v);
    input = work;
  }

  Detector det{opt, Rng(opt.seed), {}};
  det.recurse(input, 0);
  std::sort(det.found.begin(), det.found.end());
  det.found.erase(std::unique(det.found.begin(), det.found.end()), det.found.end());

  // Levels are reported in the original units (not ranks): medians of the
  // segments on each side of the split.
  std::vector<ChangePoint> cps;
  cps.reserve(det.found.size());
  std::size_t prev = 0;
  for (std::size_t k = 0; k < det.found.size(); ++k) {
    const std::size_t idx = det.found[k];
    const std::size_t next = (k + 1 < det.found.size()) ? det.found[k + 1] : v.size();
    ChangePoint cp;
    cp.index = idx;
    // Re-estimate confidence on the local window for reporting purposes.
    Rng rng(opt.seed ^ (idx * 0x9e3779b97f4a7c15ULL));
    std::span<const double> window = input.subspan(prev, next - prev);
    cp.confidence = change_confidence(window, opt.bootstrap_rounds, rng);
    cp.level_before = median(v.subspan(prev, idx - prev));
    cp.level_after = median(v.subspan(idx, next - idx));
    cps.push_back(cp);
    prev = idx;
  }
  return cps;
}

std::vector<Segment> to_segments(std::span<const double> v, const std::vector<ChangePoint>& cps) {
  std::vector<Segment> segs;
  std::size_t begin = 0;
  for (const auto& cp : cps) {
    if (cp.index <= begin || cp.index > v.size()) continue;
    segs.push_back({begin, cp.index, median(v.subspan(begin, cp.index - begin))});
    begin = cp.index;
  }
  if (begin < v.size()) {
    segs.push_back({begin, v.size(), median(v.subspan(begin))});
  }
  return segs;
}

}  // namespace ixp::stats
