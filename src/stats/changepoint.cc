#include "stats/changepoint.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "stats/ranks.h"

namespace ixp::stats {
namespace {

// CUSUM range (max - min of the CUSUM path) -- Taylor's Sdiff statistic.
// Deviations are taken from the mean of the finite entries; NaN entries
// contribute zero so gaps neither create nor destroy apparent shifts.
double cusum_range(std::span<const double> v, double m) {
  double s = 0, lo = 0, hi = 0;
  for (double x : v) {
    if (std::isfinite(x)) s += x - m;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return hi - lo;
}

// Index of the CUSUM extremum: the last sample of the old level, so the
// change point (first sample of the new level) is extremum + 1.
std::size_t cusum_extremum(std::span<const double> v, double m) {
  double s = 0, best = -1;
  std::size_t at = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::isfinite(v[i])) s += v[i] - m;
    if (std::fabs(s) > best) {
      best = std::fabs(s);
      at = i;
    }
  }
  return at;
}

struct Detector {
  const CusumOptions& opt;
  Rng rng;
  std::vector<std::size_t> found;

  // Bootstrap with early exit: once the number of exceedances guarantees
  // the confidence cannot reach the bar, stop shuffling.
  double confidence_of(std::span<const double> v) {
    const double m = mean(v);
    if (std::isnan(m)) return 0.0;
    const double observed = cusum_range(v, m);
    if (observed <= 0) return 0.0;
    std::vector<double> shuffled(v.begin(), v.end());
    const int rounds = std::max(1, opt.bootstrap_rounds);
    const int max_fail = static_cast<int>(std::floor((1.0 - opt.confidence) * rounds));
    int below = 0;
    for (int r = 0; r < rounds; ++r) {
      // Fisher-Yates; reshuffling the previous permutation stays uniform.
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(shuffled[i - 1], shuffled[j]);
      }
      if (cusum_range(shuffled, m) < observed) {
        ++below;
      } else if (r - below >= max_fail + 1) {
        // Even if every remaining round lands below, the bar is missed.
        return static_cast<double>(below) / rounds;
      }
    }
    return static_cast<double>(below) / rounds;
  }

  void recurse(std::span<const double> v, std::size_t offset) {
    if (v.size() < 2 * opt.min_segment) return;
    const double conf = confidence_of(v);
    if (conf < opt.confidence) return;
    const double m = mean(v);
    const std::size_t ext = cusum_extremum(v, m);
    const std::size_t split = ext + 1;  // first index of the new level
    if (split < opt.min_segment || v.size() - split < opt.min_segment) return;
    found.push_back(offset + split);
    recurse(v.subspan(0, split), offset);
    recurse(v.subspan(split), offset + split);
  }
};

}  // namespace

std::vector<double> cusum_path(std::span<const double> v) {
  const double m = mean(v);
  std::vector<double> path;
  path.reserve(v.size() + 1);
  double s = 0;
  path.push_back(0);
  for (double x : v) {
    if (std::isfinite(x) && !std::isnan(m)) s += x - m;
    path.push_back(s);
  }
  return path;
}

double change_confidence(std::span<const double> v, int rounds, Rng& rng) {
  const double m = mean(v);
  if (std::isnan(m)) return 0.0;
  const double observed = cusum_range(v, m);
  if (observed <= 0) return 0.0;
  std::vector<double> shuffled(v.begin(), v.end());
  int below = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(shuffled[i - 1], shuffled[j]);
    }
    if (cusum_range(shuffled, m) < observed) ++below;
  }
  return static_cast<double>(below) / std::max(1, rounds);
}

std::vector<ChangePoint> detect_change_points(std::span<const double> v, const CusumOptions& opt) {
  std::vector<double> work;
  std::span<const double> input = v;
  if (opt.use_ranks) {
    work = ranks(v);
    input = work;
  }

  Detector det{opt, Rng(opt.seed), {}};
  det.recurse(input, 0);
  std::sort(det.found.begin(), det.found.end());
  det.found.erase(std::unique(det.found.begin(), det.found.end()), det.found.end());

  // Levels are reported in the original units (not ranks): medians of the
  // segments on each side of the split.
  std::vector<ChangePoint> cps;
  cps.reserve(det.found.size());
  std::size_t prev = 0;
  for (std::size_t k = 0; k < det.found.size(); ++k) {
    const std::size_t idx = det.found[k];
    const std::size_t next = (k + 1 < det.found.size()) ? det.found[k + 1] : v.size();
    ChangePoint cp;
    cp.index = idx;
    // Re-estimate confidence on the local window for reporting purposes.
    Rng rng(opt.seed ^ (idx * 0x9e3779b97f4a7c15ULL));
    std::span<const double> window = input.subspan(prev, next - prev);
    cp.confidence = change_confidence(window, opt.bootstrap_rounds, rng);
    cp.level_before = median(v.subspan(prev, idx - prev));
    cp.level_after = median(v.subspan(idx, next - idx));
    cps.push_back(cp);
    prev = idx;
  }
  return cps;
}

std::vector<Segment> to_segments(std::span<const double> v, const std::vector<ChangePoint>& cps) {
  std::vector<Segment> segs;
  std::size_t begin = 0;
  for (const auto& cp : cps) {
    if (cp.index <= begin || cp.index > v.size()) continue;
    segs.push_back({begin, cp.index, median(v.subspan(begin, cp.index - begin))});
    begin = cp.index;
  }
  if (begin < v.size()) {
    segs.push_back({begin, v.size(), median(v.subspan(begin))});
  }
  return segs;
}

}  // namespace ixp::stats
