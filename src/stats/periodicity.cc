#include "stats/periodicity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"

namespace ixp::stats {

double autocorrelation(std::span<const double> v, std::size_t lag) {
  if (lag >= v.size()) return std::numeric_limits<double>::quiet_NaN();
  const double m = mean(v);
  if (std::isnan(m)) return std::numeric_limits<double>::quiet_NaN();
  double num = 0, den = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) continue;
    const double d = v[i] - m;
    den += d * d;
    if (i + lag < v.size() && std::isfinite(v[i + lag])) {
      num += d * (v[i + lag] - m);
      ++pairs;
    }
  }
  if (pairs < 8 || den <= 0) return std::numeric_limits<double>::quiet_NaN();
  return num / den;
}

std::vector<double> acf(std::span<const double> v, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) out.push_back(autocorrelation(v, lag));
  return out;
}

DiurnalScore diurnal_score(std::span<const double> v, const DiurnalOptions& opt) {
  DiurnalScore score;
  const std::size_t spd = opt.samples_per_day;
  if (spd == 0 || v.size() < 2 * spd) return score;

  const double a = autocorrelation(v, spd);
  score.acf_day = std::isnan(a) ? 0.0 : a;

  const std::size_t days = v.size() / spd;
  int elevated = 0;
  int days_with_data = 0;
  const auto min_day_samples = static_cast<std::size_t>(
      static_cast<double>(spd) * std::clamp(opt.min_day_coverage, 0.0, 1.0));
  for (std::size_t d = 0; d < days; ++d) {
    auto day = v.subspan(d * spd, spd);
    if (finite_count(day) < min_day_samples) continue;  // too sparse to judge
    ++days_with_data;
    const double p90 = quantile(day, 0.90);
    const double p10 = quantile(day, 0.10);
    if (p90 - p10 >= opt.elevation_ms) ++elevated;
  }
  score.elevated_days = elevated;
  score.days_with_data = days_with_data;
  score.elevated_day_frac = days_with_data > 0 ? static_cast<double>(elevated) / days_with_data : 0.0;
  score.recurring = score.acf_day >= opt.acf_threshold &&
                    score.elevated_day_frac >= opt.min_day_frac &&
                    elevated >= opt.min_days;
  return score;
}

}  // namespace ixp::stats
