#include "stats/ranks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ixp::stats {

std::vector<double> ranks(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<double> out(n, std::numeric_limits<double>::quiet_NaN());
  std::vector<std::size_t> idx;
  idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite(v[i])) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Mid-rank for the tie group [i, j].
    const double r = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[idx[k]] = r;
    i = j + 1;
  }
  return out;
}

double mann_whitney_u(std::span<const double> a, std::span<const double> b) {
  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  std::size_t na = 0, nb = 0;
  for (double x : a) {
    if (std::isfinite(x)) {
      pooled.push_back(x);
      ++na;
    }
  }
  for (double x : b) {
    if (std::isfinite(x)) {
      pooled.push_back(x);
      ++nb;
    }
  }
  if (na == 0 || nb == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto r = ranks(pooled);
  double ra = 0;
  for (std::size_t i = 0; i < na; ++i) ra += r[i];
  return ra - static_cast<double>(na) * (static_cast<double>(na) + 1) / 2.0;
}

double mann_whitney_pvalue(std::span<const double> a, std::span<const double> b) {
  const double na = static_cast<double>(std::count_if(a.begin(), a.end(), [](double x) { return std::isfinite(x); }));
  const double nb = static_cast<double>(std::count_if(b.begin(), b.end(), [](double x) { return std::isfinite(x); }));
  if (na == 0 || nb == 0) return std::numeric_limits<double>::quiet_NaN();
  const double u = mann_whitney_u(a, b);
  const double mu = na * nb / 2.0;
  const double sigma = std::sqrt(na * nb * (na + nb + 1) / 12.0);
  if (sigma == 0) return 1.0;
  const double z = std::fabs(u - mu) / sigma;
  // Two-sided p from the normal tail: erfc(z / sqrt(2)).
  return std::erfc(z / std::sqrt(2.0));
}

}  // namespace ixp::stats
