// Change-point analysis after W. A. Taylor ("Change-Point Analysis: A
// Powerful New Tool for Detecting Changes"), the method the paper cites
// [40] for its level-shift algorithm.
//
// Detection works on the CUSUM of deviations from the series mean: a change
// in the *direction* of the CUSUM marks a candidate change point, and a
// bootstrap (random reorderings of the series) estimates the confidence
// that the observed CUSUM range could not have arisen by chance.  Confident
// change points split the series and the procedure recurses on each half.
//
// The paper's level-shift detector runs this on *ranks* of the RTT samples
// (rank-based non-parametric CUSUM), which CusumOptions::use_ranks enables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace ixp::stats {

struct CusumOptions {
  /// Apply the rank transform before the CUSUM (the paper's configuration).
  bool use_ranks = true;
  /// Bootstrap reorderings per candidate change point.
  int bootstrap_rounds = 200;
  /// Required bootstrap confidence to accept a change point.
  double confidence = 0.95;
  /// Minimum samples on each side of an accepted change point.
  std::size_t min_segment = 6;
  /// Seed for the bootstrap shuffles (deterministic analysis).
  std::uint64_t seed = 0x5eed5eedULL;
};

struct ChangePoint {
  std::size_t index;      ///< first sample of the new level
  double confidence;      ///< bootstrap confidence in [0, 1]
  double level_before;    ///< median of the segment ending at index-1
  double level_after;     ///< median of the segment starting at index
};

/// A maximal run of samples between consecutive change points.
struct Segment {
  std::size_t begin;  ///< inclusive
  std::size_t end;    ///< exclusive
  double level;       ///< median of the finite samples inside
};

/// CUSUM S_i of deviations from the mean; S_0 = 0, size = v.size() + 1.
/// NaN samples contribute zero deviation (they neither raise nor lower).
std::vector<double> cusum_path(std::span<const double> v);

/// Bootstrap confidence that `v` contains a change point (Taylor's
/// Sdiff-based estimator).  Returns a value in [0, 1].
double change_confidence(std::span<const double> v, int rounds, Rng& rng);

/// Full recursive change-point detection.
std::vector<ChangePoint> detect_change_points(std::span<const double> v, const CusumOptions& opt = {});

/// Reusable buffers for detect_change_point_indices: the TSLP fast path
/// calls it once per analysis window, so the rank array, the bootstrap's
/// shuffle buffer, and the result vector are recycled across calls instead
/// of being reallocated hundreds of times per series.
struct ChangePointScratch {
  std::vector<double> ranks;        ///< rank transform of the window
  std::vector<std::size_t> order;   ///< rank computation ordering scratch
  std::vector<double> shuffled;     ///< bootstrap permutation buffer
  /// Integer twin of `shuffled` for windows whose CUSUM arithmetic is
  /// provably exact (rank inputs with a dyadic mean): the bootstrap then
  /// runs on scaled int32 values with identical decisions and a much
  /// shorter add-latency chain.
  std::vector<std::int32_t> shuffled_int;
  std::vector<std::size_t> found;   ///< accepted indices (sorted, unique)
  /// Per-span division magics for the bootstrap's Fisher-Yates draws
  /// (index = span): mod_magic[s] = ceil(2^64 / s), mod_limit[s] the
  /// rejection threshold Rng::uniform_int uses.  Grown on demand and kept
  /// across windows, so each span pays for its two divisions once ever
  /// instead of once per draw.
  std::vector<std::uint64_t> mod_magic;
  std::vector<std::uint64_t> mod_limit;
};

/// Accepted change-point *indices* only: the same recursion as
/// detect_change_points -- identical indices for identical input, options,
/// and seed -- without the per-point confidence re-estimation and segment
/// medians the reporting variant computes.  The level-shift detector
/// discards those, and the re-estimation repeats the full bootstrap per
/// accepted point, so this is the hot-path entry (the bootstrap *decisions*
/// replay the exact same RNG stream; only the discarded reporting work is
/// skipped).  Returns a reference to scratch.found, valid until reuse.
const std::vector<std::size_t>& detect_change_point_indices(std::span<const double> v,
                                                            const CusumOptions& opt,
                                                            ChangePointScratch& scratch);

/// One window of a batched change-point run: the same contract as
/// detect_change_point_indices (raw values + options in, sorted unique
/// accepted indices out), expressed as a task so many windows can be
/// submitted at once.
struct ChangePointTask {
  std::span<const double> v;       ///< raw window samples (rank transform applied internally)
  CusumOptions opt;                ///< per-window seed already folded in
  std::vector<std::size_t> found;  ///< out: accepted indices, sorted, unique
};

/// Batched detect_change_point_indices: each task's result is byte-identical
/// to a standalone call with the same (v, opt), but the top-level bootstraps
/// of up to four windows run with their draw streams interleaved.  Every
/// window owns an independent generator (the caller perturbs the seed per
/// window), so interleaving cannot change any stream -- it only overlaps the
/// xoshiro latency chains of four windows, which is where the sequential
/// path stalls.  Sub-segment recursion of accepted windows runs scalar, in
/// task order.
void detect_change_point_indices_batch(std::span<ChangePointTask> tasks,
                                       ChangePointScratch& scratch);

/// Converts change points into level segments covering [0, n).
std::vector<Segment> to_segments(std::span<const double> v, const std::vector<ChangePoint>& cps);

}  // namespace ixp::stats
