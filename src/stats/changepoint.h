// Change-point analysis after W. A. Taylor ("Change-Point Analysis: A
// Powerful New Tool for Detecting Changes"), the method the paper cites
// [40] for its level-shift algorithm.
//
// Detection works on the CUSUM of deviations from the series mean: a change
// in the *direction* of the CUSUM marks a candidate change point, and a
// bootstrap (random reorderings of the series) estimates the confidence
// that the observed CUSUM range could not have arisen by chance.  Confident
// change points split the series and the procedure recurses on each half.
//
// The paper's level-shift detector runs this on *ranks* of the RTT samples
// (rank-based non-parametric CUSUM), which CusumOptions::use_ranks enables.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace ixp::stats {

struct CusumOptions {
  /// Apply the rank transform before the CUSUM (the paper's configuration).
  bool use_ranks = true;
  /// Bootstrap reorderings per candidate change point.
  int bootstrap_rounds = 200;
  /// Required bootstrap confidence to accept a change point.
  double confidence = 0.95;
  /// Minimum samples on each side of an accepted change point.
  std::size_t min_segment = 6;
  /// Seed for the bootstrap shuffles (deterministic analysis).
  std::uint64_t seed = 0x5eed5eedULL;
};

struct ChangePoint {
  std::size_t index;      ///< first sample of the new level
  double confidence;      ///< bootstrap confidence in [0, 1]
  double level_before;    ///< median of the segment ending at index-1
  double level_after;     ///< median of the segment starting at index
};

/// A maximal run of samples between consecutive change points.
struct Segment {
  std::size_t begin;  ///< inclusive
  std::size_t end;    ///< exclusive
  double level;       ///< median of the finite samples inside
};

/// CUSUM S_i of deviations from the mean; S_0 = 0, size = v.size() + 1.
/// NaN samples contribute zero deviation (they neither raise nor lower).
std::vector<double> cusum_path(std::span<const double> v);

/// Bootstrap confidence that `v` contains a change point (Taylor's
/// Sdiff-based estimator).  Returns a value in [0, 1].
double change_confidence(std::span<const double> v, int rounds, Rng& rng);

/// Full recursive change-point detection.
std::vector<ChangePoint> detect_change_points(std::span<const double> v, const CusumOptions& opt = {});

/// Converts change points into level segments covering [0, n).
std::vector<Segment> to_segments(std::span<const double> v, const std::vector<ChangePoint>& cps);

}  // namespace ixp::stats
