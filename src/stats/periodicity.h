// Periodicity analysis: autocorrelation and diurnal-pattern scoring.
//
// The paper labels a link "congested" only when the far-side RTT level
// shifts recur with a *diurnal* pattern.  DiurnalScore quantifies that:
// the autocorrelation of the (NaN-tolerant, mean-removed) series at the
// one-day lag, plus the fraction of days containing an elevated period.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ixp::stats {

/// Autocorrelation at a single lag; NaN pairs are skipped.  Returns NaN if
/// fewer than 8 valid pairs exist or the series has no variance.
double autocorrelation(std::span<const double> v, std::size_t lag);

/// Autocorrelation for lags 0..max_lag inclusive.
std::vector<double> acf(std::span<const double> v, std::size_t max_lag);

struct DiurnalScore {
  double acf_day = 0.0;        ///< autocorrelation at the 1-day lag
  double elevated_day_frac = 0.0;  ///< fraction of days with an elevated period
  int elevated_days = 0;       ///< absolute number of such days
  int days_with_data = 0;      ///< days dense enough to judge at all
  bool recurring = false;      ///< final verdict given the options below
};

struct DiurnalOptions {
  std::size_t samples_per_day = 288;  ///< 5-minute cadence
  double acf_threshold = 0.2;         ///< minimum day-lag autocorrelation
  double elevation_ms = 5.0;          ///< a day counts as elevated if its
                                      ///< p90 exceeds its p10 by this much
  double min_day_frac = 0.25;         ///< fraction of days that must recur
  int min_days = 3;                   ///< and at least this many days
  /// A day with less than this fraction of finite samples is too sparse to
  /// judge: it joins neither the elevated count nor its denominator, so
  /// outage/rate-limit gaps cannot dilute the recurrence fraction.
  double min_day_coverage = 0.25;
};

/// Scores how diurnal the series is.  `v` is sampled uniformly, one entry
/// per probing round, possibly containing NaN gaps.
DiurnalScore diurnal_score(std::span<const double> v, const DiurnalOptions& opt = {});

}  // namespace ixp::stats
