#include "sim/event.h"

#include <algorithm>
#include <utility>

namespace ixp::sim {

void Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) at = now_;
  heap_.push_back(Entry{at, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Simulator::Entry Simulator::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void Simulator::run_until(TimePoint until) {
  while (!heap_.empty() && heap_.front().at <= until) {
    Entry e = pop_next();
    now_ = e.at;
    ++executed_;
    e.action();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!heap_.empty()) {
    Entry e = pop_next();
    now_ = e.at;
    ++executed_;
    e.action();
  }
}

void Simulator::clear() {
  heap_.clear();
  now_ = TimePoint{};
  next_seq_ = 0;
  executed_ = 0;
}

}  // namespace ixp::sim
