#include "sim/event.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/strings.h"

namespace ixp::sim {

void Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) {
    // A past-time event is a causality violation: under LP execution it
    // means a cross-partition message arrived behind the destination
    // clock (the lookahead bound was wrong).  Fail loudly when the
    // paranoid layer is on; clamp in release so legacy callers keep the
    // historic "fire immediately" behaviour.
    IXP_CHECK(at >= now_,
              strformat("schedule_at into the past: at=%lld ns, now=%lld ns, delta=%lld ns",
                        static_cast<long long>(at.ns()), static_cast<long long>(now_.ns()),
                        static_cast<long long>((now_ - at).count())));
    at = now_;
  }
  heap_.push_back(Entry{at, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Simulator::Entry Simulator::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void Simulator::run_until(TimePoint until) {
  while (!heap_.empty() && heap_.front().at <= until) {
    Entry e = pop_next();
    // max(): advance_to() may have moved the clock past still-pending
    // events (the fast-path prober does); executing those overdue events
    // must never rewind now() -- schedule(delay) inside the action would
    // otherwise compute from a clock that already moved on.
    now_ = std::max(now_, e.at);
    ++executed_;
    e.action();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_before(TimePoint until) {
  while (!heap_.empty() && heap_.front().at < until) {
    Entry e = pop_next();
    now_ = std::max(now_, e.at);
    ++executed_;
    e.action();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!heap_.empty()) {
    Entry e = pop_next();
    now_ = std::max(now_, e.at);
    ++executed_;
    e.action();
  }
}

void Simulator::clear() {
  heap_.clear();
  now_ = TimePoint{};
  next_seq_ = 0;
  executed_ = 0;
}

}  // namespace ixp::sim
