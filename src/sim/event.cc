#include "sim/event.h"

#include <utility>

namespace ixp::sim {

void Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) at = now_;
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

void Simulator::run_until(TimePoint until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the action handle instead (std::function copy is cheap enough
    // relative to the simulated work per event).
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.at;
    ++executed_;
    e.action();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.at;
    ++executed_;
    e.action();
  }
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace ixp::sim
