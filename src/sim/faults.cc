#include "sim/faults.h"

#include <algorithm>

namespace ixp::sim {

namespace {

std::vector<FaultWindow> expand(const FaultWindowSpec& spec, Rng rng, TimePoint start,
                                TimePoint end) {
  std::vector<FaultWindow> out;
  for (const auto& [offset, length] : spec.fixed) {
    const TimePoint b = start + offset;
    if (b >= end || length.count() <= 0) continue;
    out.push_back({b, std::min(b + length, end)});
  }
  const std::int64_t lo =
      std::min(spec.random_min_len.count(), spec.random_max_len.count());
  const std::int64_t hi =
      std::max(spec.random_min_len.count(), spec.random_max_len.count());
  for (int i = 0; i < spec.random_count; ++i) {
    // Draw length then placement, always in that order, so the sequence of
    // draws is a pure function of the spec — skipped windows (campaign too
    // short) still consume their draws and later specs stay unperturbed.
    const Duration length(rng.uniform_int(lo, std::max(lo, hi)));
    const std::int64_t room = (end - start).count() - length.count();
    const std::int64_t at = rng.uniform_int(0, std::max<std::int64_t>(0, room));
    if (room <= 0 || length.count() <= 0) continue;
    const TimePoint b = start + Duration(at);
    out.push_back({b, std::min(b + length, end)});
  }
  std::sort(out.begin(), out.end(),
            [](const FaultWindow& a, const FaultWindow& b) { return a.begin < b.begin; });
  return out;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed, TimePoint start,
                             TimePoint end)
    : plan_(std::move(plan)), burst_rng_(seed ^ 0xc2b2ae3d27d4eb4fULL) {
  // Window expansion consumes forked streams in a fixed category order;
  // adding a spec to one category never perturbs another's windows.
  Rng root(seed);
  Rng outage_rng = root.fork();
  Rng flap_rng = root.fork();
  Rng icmp_rng = root.fork();
  Rng silent_rng = root.fork();
  Rng reroute_rng = root.fork();
  Rng burst_win_rng = root.fork();
  // Forked after every pre-existing category so plans without facility
  // faults replay byte-identically against older recordings.
  Rng facility_rng = root.fork();

  for (const auto& f : plan_.vp_outages) {
    auto w = expand(f.windows, outage_rng.fork(), start, end);
    outage_windows_.insert(outage_windows_.end(), w.begin(), w.end());
  }
  std::sort(outage_windows_.begin(), outage_windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) { return a.begin < b.begin; });
  for (const auto& f : plan_.link_flaps)
    flap_windows_.push_back(expand(f.windows, flap_rng.fork(), start, end));
  for (const auto& f : plan_.icmp_tighten)
    icmp_windows_.push_back(expand(f.windows, icmp_rng.fork(), start, end));
  for (const auto& f : plan_.silent_drops)
    silent_windows_.push_back(expand(f.windows, silent_rng.fork(), start, end));
  for (const auto& f : plan_.reroutes)
    reroute_windows_.push_back(expand(f.windows, reroute_rng.fork(), start, end));
  for (const auto& f : plan_.loss_bursts)
    burst_windows_.push_back(expand(f.windows, burst_win_rng.fork(), start, end));
  for (const auto& f : plan_.facility_outages)
    facility_windows_.push_back(expand(f.windows, facility_rng.fork(), start, end));
}

bool FaultInjector::vp_down(TimePoint t) const {
  for (const auto& w : outage_windows_) {
    if (w.begin > t) break;  // sorted by begin
    if (w.contains(t)) return true;
  }
  return false;
}

bool FaultInjector::lose_probe(TimePoint t) {
  bool lost = false;
  for (std::size_t k = 0; k < burst_windows_.size(); ++k) {
    for (const auto& w : burst_windows_[k]) {
      if (w.begin > t) break;
      if (!w.contains(t)) continue;
      // Draw even when an earlier spec already lost the probe: the draw
      // sequence must depend only on the timestamps probed, not on
      // outcomes, or overlapping specs would decohere replays.
      if (burst_rng_.chance(plan_.loss_bursts[k].loss_prob)) lost = true;
    }
  }
  return lost;
}

}  // namespace ixp::sim
