#include "sim/lp.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/strings.h"

namespace ixp::sim {

namespace {

/// Links faster than this keep their endpoints in one island: an IXP
/// fabric and its members sit microseconds apart, while inter-island
/// long-haul links carry the milliseconds of propagation delay that make
/// conservative lookahead worthwhile.
constexpr Duration kIslandThreshold = milliseconds(1);

// Cost charges per island, mirroring analysis/fleet.cc's
// estimate_campaign_cost: a fixed base so tiny islands still cost
// something to wake every window, plus per-node and per-link work.
constexpr double kIslandBase = 1000.0;
constexpr double kPerNode = 200.0;
constexpr double kPerLink = 50.0;

struct Dsu {
  std::vector<int> parent;
  explicit Dsu(std::size_t n) : parent(n) { std::iota(parent.begin(), parent.end(), 0); }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); }
};

}  // namespace

LpPartition partition_network(const Network& net, int parts) {
  LpPartition part;
  const int n = static_cast<int>(net.node_count());
  part.lp_of_node.assign(static_cast<std::size_t>(n), 0);
  if (parts <= 1 || n == 0) return part;

  // Islands: connected components over the sub-threshold links.
  Dsu dsu(static_cast<std::size_t>(n));
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    const DuplexLink& l = net.link(static_cast<int>(li));
    if (l.min_prop_delay() < kIslandThreshold) dsu.unite(l.node_a(), l.node_b());
  }
  std::vector<int> island_of(static_cast<std::size_t>(n), -1);
  std::vector<double> island_weight;
  for (int i = 0; i < n; ++i) {
    const int root = dsu.find(i);
    if (island_of[static_cast<std::size_t>(root)] < 0) {
      island_of[static_cast<std::size_t>(root)] = static_cast<int>(island_weight.size());
      island_weight.push_back(kIslandBase);
    }
    island_of[static_cast<std::size_t>(i)] = island_of[static_cast<std::size_t>(root)];
    island_weight[static_cast<std::size_t>(island_of[static_cast<std::size_t>(i)])] += kPerNode;
  }
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    const DuplexLink& l = net.link(static_cast<int>(li));
    const int ia = island_of[static_cast<std::size_t>(l.node_a())];
    const int ib = island_of[static_cast<std::size_t>(l.node_b())];
    if (ia == ib) island_weight[static_cast<std::size_t>(ia)] += kPerLink;
  }

  // Greedy LPT: heaviest island first onto the least-loaded LP; ties
  // resolve to the lowest index on both sides, so the packing is a pure
  // function of the topology.
  const int bins = std::min(parts, static_cast<int>(island_weight.size()));
  if (bins <= 1) return part;
  std::vector<int> order(island_weight.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return island_weight[static_cast<std::size_t>(a)] > island_weight[static_cast<std::size_t>(b)];
  });
  std::vector<double> load(static_cast<std::size_t>(bins), 0.0);
  std::vector<int> lp_of_island(island_weight.size(), 0);
  for (const int isl : order) {
    int best = 0;
    for (int b = 1; b < bins; ++b) {
      if (load[static_cast<std::size_t>(b)] < load[static_cast<std::size_t>(best)]) best = b;
    }
    lp_of_island[static_cast<std::size_t>(isl)] = best;
    load[static_cast<std::size_t>(best)] += island_weight[static_cast<std::size_t>(isl)];
  }
  for (int i = 0; i < n; ++i) {
    part.lp_of_node[static_cast<std::size_t>(i)] =
        lp_of_island[static_cast<std::size_t>(island_of[static_cast<std::size_t>(i)])];
  }
  part.count = bins;
  part.weights = std::move(load);

  // The cut and its lookahead.
  part.lookahead = Duration::max();
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    const DuplexLink& l = net.link(static_cast<int>(li));
    if (part.lp_of_node[static_cast<std::size_t>(l.node_a())] !=
        part.lp_of_node[static_cast<std::size_t>(l.node_b())]) {
      part.cut_links.push_back(static_cast<int>(li));
      part.lookahead = std::min(part.lookahead, l.min_prop_delay());
    }
  }
  if (!part.cut_links.empty() && part.lookahead <= Duration{}) {
    // A zero-delay cut link admits same-instant cross-LP causality; no
    // conservative window can make progress.  Fall back to serial.
    part = LpPartition{};
    part.lp_of_node.assign(static_cast<std::size_t>(n), 0);
  }
  return part;
}

int resolve_sim_threads(int requested) {
  if (requested > 0) return requested;
  if (const auto v = env::int_value("IXP_SIM_THREADS"); v.has_value() && *v > 0) {
    return static_cast<int>(*v);
  }
  return 1;
}

LpScheduler::LpScheduler(Network& net, int threads)
    : net_(net),
      part_(partition_network(net, std::max(1, threads))),
      pool_(part_.count) {
  ctxs_.resize(static_cast<std::size_t>(part_.count));
  for (std::size_t i = 0; i < ctxs_.size(); ++i) {
    ctxs_[i].lp = static_cast<int>(i);
    // Independent per-LP streams, NOT forked from the network RNG: the
    // shared analytic stream must stay untouched so campaign goldens are
    // unaffected by how many LPs exist.
    ctxs_[i].rng = Rng(0x1bdca5a1e5ULL ^ (static_cast<std::uint64_t>(i) + 1));
    ctxs_[i].outbox.resize(ctxs_.size());
  }
  stats_.lps = part_.count;
  stats_.lookahead = part_.lookahead == Duration::max() ? Duration{} : part_.lookahead;
  stats_.events_per_lp.assign(ctxs_.size(), 0);
  stats_.scheduled_per_lp.assign(ctxs_.size(), 0);
  busy_.assign(ctxs_.size(), 0.0);
  net_.attach_lp(&part_.lp_of_node, &ctxs_);
}

LpScheduler::~LpScheduler() {
  flush_counters();
  net_.detach_lp();
}

void LpScheduler::run_until(TimePoint horizon) {
  const bool bounded = part_.lookahead != Duration::max();
  for (;;) {
    // Idle-jump: the next window starts at the earliest pending event
    // anywhere; empty stretches of simulated time cost nothing.
    TimePoint earliest = TimePoint(Duration::max());
    for (const LpContext& c : ctxs_) {
      if (const auto t = c.sim.next_event_at()) earliest = std::min(earliest, *t);
    }
    if (earliest >= horizon) break;
    const TimePoint end = bounded ? std::min(horizon, earliest + part_.lookahead) : horizon;
    window(end, /*inclusive=*/false);
  }
  // Final inclusive pass: events at exactly `horizon` execute, matching
  // serial run_until.  Their cross-LP messages arrive strictly after the
  // horizon (lookahead > 0) and stay pending for the next run.
  window(horizon, /*inclusive=*/true);
  for (std::size_t i = 0; i < ctxs_.size(); ++i) {
    stats_.events_per_lp[i] = ctxs_[i].sim.executed();
    stats_.scheduled_per_lp[i] = ctxs_[i].sim.scheduled();
  }
  stats_.sim_horizon = std::max(stats_.sim_horizon, horizon - TimePoint{});
  net_.simulator().advance_to(horizon);
  flush_counters();
}

void LpScheduler::window(TimePoint end, bool inclusive) {
  const auto w0 = std::chrono::steady_clock::now();
  pool_.parallel_for(ctxs_.size(), [&](std::size_t i) {
    const auto b0 = std::chrono::steady_clock::now();
    struct Armed {
      explicit Armed(LpContext* c) { Network::arm_lp(c); }
      ~Armed() { Network::arm_lp(nullptr); }
    } armed(&ctxs_[i]);
    if (inclusive) {
      ctxs_[i].sim.run_until(end);
    } else {
      ctxs_[i].sim.run_before(end);
    }
    busy_[i] = std::chrono::duration<double>(std::chrono::steady_clock::now() - b0).count();
  });
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - w0).count();
  for (const double b : busy_) stats_.barrier_wait_seconds += std::max(0.0, wall - b);
  ++stats_.windows;
  exchange();
}

void LpScheduler::exchange() {
  for (std::size_t dst = 0; dst < ctxs_.size(); ++dst) {
    staging_.clear();
    for (LpContext& src : ctxs_) {
      std::vector<LpMessage>& box = src.outbox[dst];
      for (LpMessage& m : box) staging_.push_back(std::move(m));
      box.clear();
    }
    if (staging_.empty()) continue;
    // (arrival, sent, source LP, sequence): unique total order -- the
    // first two mirror the serial execution order, the last two are the
    // documented tie-break for simultaneous cross-LP arrivals.
    std::sort(staging_.begin(), staging_.end(), [](const LpMessage& a, const LpMessage& b) {
      if (a.at != b.at) return a.at < b.at;
      if (a.sent != b.sent) return a.sent < b.sent;
      if (a.src_lp != b.src_lp) return a.src_lp < b.src_lp;
      return a.seq < b.seq;
    });
    Simulator& sim = ctxs_[dst].sim;
    Network* net = &net_;
    for (LpMessage& m : staging_) {
      ++stats_.cross_messages;
      sim.schedule_at(m.at, [net, to = m.to, ifx = m.ifindex, pkt = std::move(m.pkt)]() mutable {
        net->node(to).receive(*net, std::move(pkt), ifx);
      });
    }
  }
}

void LpScheduler::flush_counters() {
  // LP-index order: the sums land in the public totals exactly as the
  // serial tally would have produced them.
  for (LpContext& c : ctxs_) {
    net_.packets_forwarded += c.forwarded;
    net_.packets_dropped += c.dropped;
    net_.icmp_generated += c.icmp;
    net_.hops_walked += c.hops;
    c.forwarded = c.dropped = c.icmp = c.hops = 0;
  }
}

void publish_lp_stats(obs::Registry& reg, const LpRunStats& stats) {
  reg.counter("afixp_sim_lp_windows_total")->set(stats.windows);
  reg.counter("afixp_sim_lp_cross_messages_total")->set(stats.cross_messages);
  reg.gauge("afixp_sim_lp_count")->set(stats.lps);
  reg.gauge("afixp_sim_lp_lookahead_ms")->set(to_ms(stats.lookahead));
  reg.gauge("afixp_sim_lp_barrier_wait_seconds")->set(stats.barrier_wait_seconds);
  for (std::size_t i = 0; i < stats.events_per_lp.size(); ++i) {
    const std::string label = strformat("lp=\"%d\"", static_cast<int>(i));
    reg.counter("afixp_sim_lp_events_total", label)->set(stats.events_per_lp[i]);
    reg.counter("afixp_sim_lp_scheduled_total", label)->set(stats.scheduled_per_lp[i]);
    reg.span("afixp_sim_lp_run_simtime", label)->record(stats.sim_horizon);
  }
}

}  // namespace ixp::sim
