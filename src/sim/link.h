// Duplex links: a pair of independently-queued simplex directions.
//
// Each direction owns a FluidQueue (capacity, buffer, cross-traffic) plus a
// propagation delay.  Links can be taken down/up and re-provisioned at
// runtime; the topology timeline uses this for the events the paper
// documents (transit shut-off, port upgrade, member disconnection).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/queue.h"
#include "util/time.h"

namespace ixp::sim {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

struct LinkConfig {
  double capacity_bps = 1e9;
  double buffer_bytes = 1e6;
  Duration prop_delay = milliseconds(0.2);
  TrafficProfilePtr cross_ab;  ///< cross traffic A -> B (may be null)
  TrafficProfilePtr cross_ba;  ///< cross traffic B -> A (may be null)
  double base_loss = 0.0;      ///< floor loss probability per direction
};

class DuplexLink {
 public:
  DuplexLink(NodeId a, NodeId b, const LinkConfig& cfg)
      : a_(a),
        b_(b),
        prop_delay_(cfg.prop_delay),
        ab_(FluidQueue::Config{cfg.capacity_bps, cfg.buffer_bytes, cfg.cross_ab, kMinute,
                               cfg.base_loss}),
        ba_(FluidQueue::Config{cfg.capacity_bps, cfg.buffer_bytes, cfg.cross_ba, kMinute,
                               cfg.base_loss}) {}

  [[nodiscard]] NodeId node_a() const { return a_; }
  [[nodiscard]] NodeId node_b() const { return b_; }
  [[nodiscard]] NodeId other(NodeId n) const { return n == a_ ? b_ : a_; }
  [[nodiscard]] Duration prop_delay() const { return prop_delay_; }

  /// Changes the propagation delay (models route changes inside the
  /// neighbor network: the far side moves, the near side does not).
  void set_prop_delay(Duration d) { prop_delay_ = d; }

  /// Extra one-way delay for the direction leaving `from` (route changes
  /// that affect only one direction; keeps the reverse path clean).
  void set_extra_delay_from(NodeId from, Duration d) {
    (from == a_ ? extra_ab_ : extra_ba_) = d;
  }
  [[nodiscard]] Duration extra_delay_from(NodeId from) const {
    return from == a_ ? extra_ab_ : extra_ba_;
  }

  /// Queue for the direction leaving node `from`.
  FluidQueue& queue_from(NodeId from) { return from == a_ ? ab_ : ba_; }
  [[nodiscard]] const FluidQueue& queue_from(NodeId from) const {
    return from == a_ ? ab_ : ba_;
  }
  [[nodiscard]] const FluidQueue& queue_ab() const { return ab_; }
  [[nodiscard]] const FluidQueue& queue_ba() const { return ba_; }

  [[nodiscard]] bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Interface index this link occupies on each endpoint (set by Network).
  void set_ifindex(NodeId n, int ifindex) { (n == a_ ? ifindex_a_ : ifindex_b_) = ifindex; }
  [[nodiscard]] int ifindex_at(NodeId n) const { return n == a_ ? ifindex_a_ : ifindex_b_; }

  /// Re-provisions both directions (e.g., 10 Mbps -> 1 Gbps upgrade).
  void upgrade(TimePoint t, double capacity_bps, double buffer_bytes) {
    ab_.set_capacity(t, capacity_bps, buffer_bytes);
    ba_.set_capacity(t, capacity_bps, buffer_bytes);
  }

  void set_cross_traffic(TimePoint t, TrafficProfilePtr ab, TrafficProfilePtr ba) {
    ab_.set_cross_traffic(t, std::move(ab));
    ba_.set_cross_traffic(t, std::move(ba));
  }

 private:
  NodeId a_;
  NodeId b_;
  Duration prop_delay_;
  FluidQueue ab_;
  FluidQueue ba_;
  bool up_ = true;
  Duration extra_ab_{};
  Duration extra_ba_{};
  int ifindex_a_ = -1;
  int ifindex_b_ = -1;
};

}  // namespace ixp::sim
