// Duplex links: a pair of independently-queued simplex directions.
//
// Each direction owns a FluidQueue (capacity, buffer, cross-traffic) plus a
// propagation delay.  Links can be taken down/up and re-provisioned at
// runtime; the topology timeline uses this for the events the paper
// documents (transit shut-off, port upgrade, member disconnection).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/queue.h"
#include "util/time.h"

namespace ixp::sim {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

struct LinkConfig {
  double capacity_bps = 1e9;
  double buffer_bytes = 1e6;
  Duration prop_delay = milliseconds(0.2);
  TrafficProfilePtr cross_ab;  ///< cross traffic A -> B (may be null)
  TrafficProfilePtr cross_ba;  ///< cross traffic B -> A (may be null)
  double base_loss = 0.0;      ///< floor loss probability per direction
};

class DuplexLink {
 public:
  DuplexLink(NodeId a, NodeId b, const LinkConfig& cfg)
      : a_(a),
        b_(b),
        prop_delay_(cfg.prop_delay),
        ab_(FluidQueue::Config{cfg.capacity_bps, cfg.buffer_bytes, cfg.cross_ab, kMinute,
                               cfg.base_loss}),
        ba_(FluidQueue::Config{cfg.capacity_bps, cfg.buffer_bytes, cfg.cross_ba, kMinute,
                               cfg.base_loss}) {}

  [[nodiscard]] NodeId node_a() const { return a_; }
  [[nodiscard]] NodeId node_b() const { return b_; }
  [[nodiscard]] NodeId other(NodeId n) const { return n == a_ ? b_ : a_; }
  [[nodiscard]] Duration prop_delay() const { return prop_delay_; }

  /// Changes the propagation delay immediately (models route changes
  /// inside the neighbor network: the far side moves, the near side does
  /// not).  Clears any scheduled steps: the immediate setter is the
  /// legacy "retroactive" API.
  void set_prop_delay(Duration d) {
    prop_delay_ = d;
    prop_steps_.clear();
  }

  /// Schedules a propagation-delay change taking effect at `at`.  Both
  /// the event-mode transmit and the analytic walk evaluate the delay at
  /// the instant the packet crosses the link, so a step never affects
  /// packets already past the link -- this is what keeps the two modes in
  /// byte-for-byte agreement across a reroute boundary.
  void set_prop_delay(TimePoint at, Duration d) { add_step(prop_steps_, at, d); }

  /// Propagation delay in force at `t` (baseline before the first step).
  [[nodiscard]] Duration prop_delay_at(TimePoint t) const {
    return value_at(prop_steps_, prop_delay_, t);
  }

  /// Lower bound on the propagation delay over all time: the LP
  /// scheduler's lookahead must hold across every scheduled step.
  [[nodiscard]] Duration min_prop_delay() const {
    Duration m = prop_delay_;
    for (const auto& [at, d] : prop_steps_) m = std::min(m, d);
    return m;
  }

  /// Extra one-way delay for the direction leaving `from` (route changes
  /// that affect only one direction; keeps the reverse path clean).
  /// Immediate form; clears scheduled steps for that direction.
  void set_extra_delay_from(NodeId from, Duration d) {
    (from == a_ ? extra_ab_ : extra_ba_) = d;
    (from == a_ ? extra_steps_ab_ : extra_steps_ba_).clear();
  }

  /// Schedules a directional extra-delay change taking effect at `at`
  /// (a reroute landing mid-campaign).  Evaluated at crossing time, like
  /// prop-delay steps, so in-flight packets keep the delay they crossed
  /// with.
  void set_extra_delay_from(NodeId from, TimePoint at, Duration d) {
    add_step(from == a_ ? extra_steps_ab_ : extra_steps_ba_, at, d);
  }

  [[nodiscard]] Duration extra_delay_from(NodeId from) const {
    return from == a_ ? extra_ab_ : extra_ba_;
  }

  /// Extra delay in force at `t` for the direction leaving `from`.
  [[nodiscard]] Duration extra_delay_from(NodeId from, TimePoint t) const {
    return value_at(from == a_ ? extra_steps_ab_ : extra_steps_ba_,
                    from == a_ ? extra_ab_ : extra_ba_, t);
  }

  /// Queue for the direction leaving node `from`.
  FluidQueue& queue_from(NodeId from) { return from == a_ ? ab_ : ba_; }
  [[nodiscard]] const FluidQueue& queue_from(NodeId from) const {
    return from == a_ ? ab_ : ba_;
  }
  [[nodiscard]] const FluidQueue& queue_ab() const { return ab_; }
  [[nodiscard]] const FluidQueue& queue_ba() const { return ba_; }

  [[nodiscard]] bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Interface index this link occupies on each endpoint (set by Network).
  void set_ifindex(NodeId n, int ifindex) { (n == a_ ? ifindex_a_ : ifindex_b_) = ifindex; }
  [[nodiscard]] int ifindex_at(NodeId n) const { return n == a_ ? ifindex_a_ : ifindex_b_; }

  /// Re-provisions both directions (e.g., 10 Mbps -> 1 Gbps upgrade).
  void upgrade(TimePoint t, double capacity_bps, double buffer_bytes) {
    ab_.set_capacity(t, capacity_bps, buffer_bytes);
    ba_.set_capacity(t, capacity_bps, buffer_bytes);
  }

  void set_cross_traffic(TimePoint t, TrafficProfilePtr ab, TrafficProfilePtr ba) {
    ab_.set_cross_traffic(t, std::move(ab));
    ba_.set_cross_traffic(t, std::move(ba));
  }

 private:
  using DelaySteps = std::vector<std::pair<TimePoint, Duration>>;

  static void add_step(DelaySteps& steps, TimePoint at, Duration d) {
    const auto pos = std::upper_bound(
        steps.begin(), steps.end(), at,
        [](TimePoint t, const std::pair<TimePoint, Duration>& s) { return t < s.first; });
    steps.insert(pos, {at, d});
  }

  /// Value of the most recent step with step.at <= t; `base` before the
  /// first step.  Steps are few (timeline events), so a linear scan wins
  /// over binary search for the empty/short cases the hot path sees.
  [[nodiscard]] static Duration value_at(const DelaySteps& steps, Duration base, TimePoint t) {
    Duration v = base;
    for (const auto& [at, d] : steps) {
      if (at > t) break;
      v = d;
    }
    return v;
  }

  NodeId a_;
  NodeId b_;
  Duration prop_delay_;
  FluidQueue ab_;
  FluidQueue ba_;
  bool up_ = true;
  Duration extra_ab_{};
  Duration extra_ba_{};
  DelaySteps prop_steps_;
  DelaySteps extra_steps_ab_;
  DelaySteps extra_steps_ba_;
  int ifindex_a_ = -1;
  int ifindex_b_ = -1;
};

}  // namespace ixp::sim
