#include "sim/queue.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace ixp::sim {

namespace {

// The backlog is the TSLP observable; if it ever leaves [0, buffer] the
// level-shift magnitudes downstream are silently wrong.
void check_backlog(double backlog, double buffer) {
  IXP_CHECK(backlog >= 0.0 && backlog <= buffer,
            strformat("fluid backlog %.3f bytes outside [0, %.3f]", backlog, buffer));
}

}  // namespace

void FluidQueue::advance(TimePoint t) {
  if (t <= last_) return;
  if (never_congests_ && backlog_ == 0.0) {
    // Provably uncongested and already empty: every sub-step below would
    // compute dq <= 0 and clamp straight back to 0.0, so the whole
    // integration is a no-op.  Jump the clock instead of evaluating the
    // profile -- the resulting state is bit-identical.
    ++stats_.headroom_skips;
    last_ = t;
    return;
  }
  if (!cfg_.cross_traffic) {
    // No cross traffic: the backlog only drains.
    const double drained = cfg_.capacity_bps * to_sec(t - last_) / 8.0;
    backlog_ = std::max(0.0, backlog_ - drained);
    last_ = t;
    return;
  }
  const std::int64_t max_step_ns = std::max<std::int64_t>(cfg_.max_step.count(), 1);
  std::int64_t remaining = (t - last_).count();
  // Cap the work for very long idle gaps: beyond ~4 h of integration the
  // diurnal curve is still tracked, just at a coarser step.
  const std::int64_t steps_cap = 4096;
  std::int64_t step_ns = max_step_ns;
  if (remaining / step_ns > steps_cap) step_ns = remaining / steps_cap;
  while (remaining > 0) {
    ++stats_.integration_steps;
    const std::int64_t dt_ns = std::min(remaining, step_ns);
    const TimePoint mid = last_ + Duration(dt_ns / 2);
    const double lambda = cfg_.cross_traffic->bps(mid);
    const double dq = (lambda - cfg_.capacity_bps) * (static_cast<double>(dt_ns) / 1e9) / 8.0;
    backlog_ = std::clamp(backlog_ + dq, 0.0, cfg_.buffer_bytes);
    last_ += Duration(dt_ns);
    remaining -= dt_ns;
    if (never_congests_ && backlog_ == 0.0) {
      // Drained to exactly empty with provable headroom: the remaining
      // sub-steps cannot lift the backlog off zero again.
      last_ = t;
      break;
    }
  }
  IXP_CHECK(last_ == t, "fluid queue integration must land exactly on the query time");
  check_backlog(backlog_, cfg_.buffer_bytes);
}

double FluidQueue::backlog_bytes(TimePoint t) {
  advance(t);
  return backlog_;
}

Duration FluidQueue::queuing_delay(TimePoint t) {
  advance(t);
  return seconds(backlog_ * 8.0 / cfg_.capacity_bps);
}

Duration FluidQueue::transmission_delay(std::uint32_t size_bytes) const {
  return seconds(static_cast<double>(size_bytes) * 8.0 / cfg_.capacity_bps);
}

double FluidQueue::drop_probability(TimePoint t) {
  advance(t);
  // Tail drop bites only when the buffer is effectively full.
  if (backlog_ < cfg_.buffer_bytes * 0.999) return cfg_.base_loss;
  const double lambda = offered_bps(t);
  if (lambda <= cfg_.capacity_bps || lambda <= 0) return cfg_.base_loss;
  return std::max(cfg_.base_loss, (lambda - cfg_.capacity_bps) / lambda);
}

bool FluidQueue::enqueue(TimePoint t, std::uint32_t size_bytes) {
  advance(t);
  if (backlog_ + size_bytes > cfg_.buffer_bytes) {
    ++stats_.tail_drops;
    return false;
  }
  backlog_ += size_bytes;
  check_backlog(backlog_, cfg_.buffer_bytes);
  return true;
}

double FluidQueue::offered_bps(TimePoint t) const {
  return cfg_.cross_traffic ? cfg_.cross_traffic->bps(t) : 0.0;
}

void FluidQueue::set_cross_traffic(TimePoint t, TrafficProfilePtr profile) {
  advance(t);
  cfg_.cross_traffic = std::move(profile);
  refresh_headroom();
}

void FluidQueue::set_capacity(TimePoint t, double capacity_bps, double buffer_bytes) {
  advance(t);
  cfg_.capacity_bps = capacity_bps;
  cfg_.buffer_bytes = buffer_bytes;
  backlog_ = std::min(backlog_, buffer_bytes);
  refresh_headroom();
}

void FluidQueue::refresh_headroom() {
  const double bound = cfg_.cross_traffic ? cfg_.cross_traffic->max_bps() : 0.0;
  // Demand a relative safety margin: max_bps() bounds the mathematical
  // profile, but intermediate rounding inside bps() can overshoot it by a
  // few ulps.  Links with genuine headroom clear 1e-9 effortlessly.
  never_congests_ = std::isfinite(bound) && bound < cfg_.capacity_bps * (1.0 - 1e-9);
}

}  // namespace ixp::sim
