// Fluid drop-tail queue.
//
// Background cross-traffic is modelled as a fluid whose arrival rate is the
// link's TrafficProfile; the queue backlog evolves as
//     dq/dt = lambda(t) - C       (clamped to [0, buffer])
// which is exactly the mechanism TSLP exploits: when the offered load
// exceeds capacity, the backlog -- and therefore the queueing delay seen by
// probe packets -- rises until the buffer is full.  The steady full-buffer
// delay (buffer_bytes * 8 / C) is the level-shift magnitude A_w the paper
// measures, and the loss rate under saturation is (lambda - C) / lambda.
//
// The backlog is advanced lazily: each query integrates the profile from
// the last update time using sub-steps small enough to track the diurnal
// curve.  Probe packets may optionally add their own bytes (event-mode
// realism); their contribution is negligible against the fluid.
#pragma once

#include <cstdint>

#include "sim/traffic.h"
#include "util/time.h"

namespace ixp::sim {

class FluidQueue {
 public:
  struct Config {
    double capacity_bps = 100e6;
    double buffer_bytes = 350e3;
    TrafficProfilePtr cross_traffic;  ///< may be null (empty link)
    Duration max_step = kMinute;      ///< integration sub-step bound
    double base_loss = 0.0;           ///< floor loss probability (bit errors,
                                      ///< microbursts the fluid misses)
  };

  explicit FluidQueue(Config cfg) : cfg_(std::move(cfg)) { refresh_headroom(); }

  /// Advances the fluid state to `t` and returns the backlog in bytes.
  double backlog_bytes(TimePoint t);

  /// Queueing delay a packet arriving at `t` experiences (excludes its own
  /// transmission time).
  Duration queuing_delay(TimePoint t);

  /// Transmission time for a packet of `size_bytes` at line rate.
  [[nodiscard]] Duration transmission_delay(std::uint32_t size_bytes) const;

  /// Probability that a packet arriving at `t` is dropped: zero unless the
  /// buffer is (nearly) full, in which case the fluid overflow fraction.
  double drop_probability(TimePoint t);

  /// Adds a packet's bytes to the backlog (event-mode enqueue).  Returns
  /// false if the buffer cannot absorb it (tail drop).
  bool enqueue(TimePoint t, std::uint32_t size_bytes);

  /// Offered cross-traffic load at `t` in bps (0 when no profile is set).
  [[nodiscard]] double offered_bps(TimePoint t) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Replaces the cross-traffic profile (timeline events).  The backlog is
  /// first advanced to `t` under the old profile.
  void set_cross_traffic(TimePoint t, TrafficProfilePtr profile);

  /// Changes capacity (link upgrade).  Backlog carries over, clamped to the
  /// (possibly new) buffer.
  void set_capacity(TimePoint t, double capacity_bps, double buffer_bytes);

  /// Always-on observability counters (a single add per event, no registry
  /// dependency on this hot path; the analysis layer scrapes them into its
  /// obs::Registry at segment boundaries -- see src/obs/metrics.h).
  struct Stats {
    std::uint64_t headroom_skips = 0;     ///< advance() calls short-circuited
                                          ///< by the never_congests_ proof
    std::uint64_t integration_steps = 0;  ///< fluid sub-steps actually run
    std::uint64_t tail_drops = 0;         ///< enqueue() rejections
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void advance(TimePoint t);
  void refresh_headroom();

  Config cfg_;
  Stats stats_;
  TimePoint last_{};
  double backlog_ = 0.0;  ///< bytes
  /// True when the profile's max_bps() bound proves lambda(t) can never
  /// exceed capacity.  Then an empty backlog stays exactly 0.0 through any
  /// integration window (every sub-step clamps back to 0), so advance() can
  /// jump the clock without evaluating the profile -- bit-identical state at
  /// a fraction of the cost.  Recomputed whenever profile or capacity change.
  bool never_congests_ = false;
};

}  // namespace ixp::sim
