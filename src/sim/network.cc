#include "sim/network.h"

#include <cassert>

#include "util/log.h"

namespace ixp::sim {

NodeId Network::add_node(std::unique_ptr<Node> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->set_id(id);
  nodes_.push_back(std::move(node));
  return id;
}

Router& Network::add_router(const std::string& name, RouterConfig cfg) {
  auto router = std::make_unique<Router>(name, std::move(cfg), rng_.fork());
  Router& ref = *router;
  add_node(std::move(router));
  return ref;
}

Host& Network::add_host(const std::string& name) {
  auto host = std::make_unique<Host>(name);
  Host& ref = *host;
  add_node(std::move(host));
  return ref;
}

L2Switch& Network::add_switch(const std::string& name) {
  auto sw = std::make_unique<L2Switch>(name);
  L2Switch& ref = *sw;
  add_node(std::move(sw));
  return ref;
}

int Network::connect(NodeId a, net::Ipv4Address addr_a, NodeId b, net::Ipv4Address addr_b,
                     const LinkConfig& cfg, const net::Ipv4Prefix& subnet) {
  const int link_id = static_cast<int>(links_.size());
  links_.push_back(std::make_unique<DuplexLink>(a, b, cfg));
  DuplexLink& l = *links_.back();
  const int if_a = node(a).add_interface(Interface{addr_a, link_id, subnet});
  const int if_b = node(b).add_interface(Interface{addr_b, link_id, subnet});
  l.set_ifindex(a, if_a);
  l.set_ifindex(b, if_b);
  if (!addr_a.is_unspecified()) addr_owner_[addr_a] = a;
  if (!addr_b.is_unspecified()) addr_owner_[addr_b] = b;
  // If either endpoint is a switch fabric, teach it the far address.
  if (auto* sw = dynamic_cast<L2Switch*>(&node(a)); sw && !addr_b.is_unspecified()) {
    sw->learn(addr_b, if_a);
  }
  if (auto* sw = dynamic_cast<L2Switch*>(&node(b)); sw && !addr_a.is_unspecified()) {
    sw->learn(addr_a, if_b);
  }
  return link_id;
}

NodeId Network::find_owner(net::Ipv4Address addr) const {
  const auto it = addr_owner_.find(addr);
  return it == addr_owner_.end() ? kInvalidNode : it->second;
}

void Network::transmit(NodeId from, int ifindex, net::Packet pkt, net::Ipv4Address next_hop) {
  Node& sender = node(from);
  if (ifindex < 0 || ifindex >= static_cast<int>(sender.interfaces().size())) {
    ++packets_dropped;
    return;
  }
  const Interface& ifc = sender.interfaces()[static_cast<std::size_t>(ifindex)];
  DuplexLink& l = link(ifc.link_id);
  if (!l.is_up()) {
    ++packets_dropped;
    return;
  }
  FluidQueue& q = l.queue_from(from);
  const TimePoint t = sim_.now();
  const double p_drop = q.drop_probability(t);
  if (p_drop > 0 && rng_.chance(p_drop)) {
    ++packets_dropped;
    return;
  }
  const Duration delay = q.queuing_delay(t) + q.transmission_delay(pkt.size_bytes) +
                         l.prop_delay() + l.extra_delay_from(from);
  q.enqueue(t, pkt.size_bytes);  // probe bytes join the backlog (negligible)
  pkt.l2_next_hop = next_hop;
  const NodeId peer = l.other(from);
  const int peer_if = l.ifindex_at(peer);
  sim_.schedule(delay, [this, peer, peer_if, pkt = std::move(pkt)]() mutable {
    node(peer).receive(*this, std::move(pkt), peer_if);
  });
}

void Network::deliver(NodeId to, net::Packet pkt, int in_ifindex, Duration delay) {
  sim_.schedule(delay, [this, to, in_ifindex, pkt = std::move(pkt)]() mutable {
    node(to).receive(*this, std::move(pkt), in_ifindex);
  });
}

std::optional<Network::HopDecision> Network::route_at(NodeId at, net::Ipv4Address dst) const {
  const Node& n = node(at);
  if (const auto* r = dynamic_cast<const Router*>(&n)) {
    const auto* e = r->fib().lookup(dst);
    if (!e) return std::nullopt;
    return HopDecision{e->ifindex, e->next_hop.is_unspecified() ? dst : e->next_hop};
  }
  if (const auto* h = dynamic_cast<const Host*>(&n)) {
    if (n.interfaces().empty()) return std::nullopt;
    // Hosts send everything via interface 0; on-subnet destinations are
    // reached directly, everything else via the configured gateway.
    (void)h;
    return HopDecision{0, dst};
  }
  return std::nullopt;
}

namespace {

// One analytic link traversal: updates `t`, returns false on drop/down.
bool cross_link(Network& net, Rng& rng, DuplexLink& l, NodeId from, std::uint32_t size_bytes,
                TimePoint& t, std::uint64_t& dropped_counter) {
  if (!l.is_up()) {
    ++dropped_counter;
    return false;
  }
  FluidQueue& q = l.queue_from(from);
  const double p_drop = q.drop_probability(t);
  if (p_drop > 0 && rng.chance(p_drop)) {
    ++dropped_counter;
    return false;
  }
  t += q.queuing_delay(t) + q.transmission_delay(size_bytes) + l.prop_delay() +
       l.extra_delay_from(from);
  (void)net;
  return true;
}

}  // namespace

std::vector<PathHop> Network::trace_forward(NodeId from, const net::Packet& pkt_in, bool& dropped,
                                            net::Packet* out) {
  std::vector<PathHop> hops;
  dropped = false;
  net::Packet pkt = pkt_in;
  TimePoint t = sim_.now();
  NodeId cur = from;
  for (int budget = 0; budget < 64; ++budget) {
    Node& n = node(cur);
    if (auto* sw = dynamic_cast<L2Switch*>(&n)) {
      // L2 transit: resolve the port by the frame's next-hop and keep going.
      (void)sw;
      net::Packet probe_frame = pkt;
      // L2Switch::receive path is event-driven; replicate its lookup here.
      // The table is private, so route through interfaces: we stored the
      // learning in connect(); do a linear scan over switch interfaces.
      NodeId next = kInvalidNode;
      int out_if = -1;
      for (std::size_t i = 0; i < n.interfaces().size(); ++i) {
        const auto& ifc = n.interfaces()[i];
        const DuplexLink& l = *links_[static_cast<std::size_t>(ifc.link_id)];
        const NodeId peer = l.other(cur);
        if (node(peer).owns_address(pkt.l2_next_hop.is_unspecified() ? pkt.dst : pkt.l2_next_hop)) {
          next = peer;
          out_if = static_cast<int>(i);
          break;
        }
      }
      if (next == kInvalidNode) {
        dropped = true;
        return hops;
      }
      DuplexLink& l = *links_[static_cast<std::size_t>(n.interfaces()[static_cast<std::size_t>(out_if)].link_id)];
      std::uint64_t drops = 0;
      if (!cross_link(*this, rng_, l, cur, pkt.size_bytes, t, drops)) {
        dropped = true;
        packets_dropped += drops;
        return hops;
      }
      (void)probe_frame;
      cur = next;
      hops.push_back({cur, node(cur).owns_address(pkt.dst) ? pkt.dst : net::Ipv4Address(), t});
      continue;
    }

    // IP node (router or host) other than the origin: record arrival.
    if (cur != from) {
      // handled on link crossing below
    }

    // Decide whether this node answers or forwards.
    auto* router = dynamic_cast<Router*>(&n);
    if (cur != from && router && router->config().rr_filtered && pkt.record_route) {
      dropped = true;  // RR-filtering router discards the optioned packet
      return hops;
    }
    if (cur != from && n.owns_address(pkt.dst)) {
      if (out) *out = pkt;
      return hops;
    }
    if (cur != from && router && pkt.ttl <= 1) {
      if (out) *out = pkt;
      return hops;  // TTL expiry point; caller inspects hops.back()
    }
    if (cur != from && router) pkt.ttl -= 1;

    const auto hop = route_at(cur, pkt.dst);
    if (!hop || hop->ifindex < 0 || hop->ifindex >= static_cast<int>(n.interfaces().size())) {
      dropped = true;
      return hops;
    }
    if (router && pkt.record_route &&
        pkt.route_stamps.size() < static_cast<std::size_t>(net::kMaxRecordRouteSlots)) {
      pkt.route_stamps.push_back(n.interfaces()[static_cast<std::size_t>(hop->ifindex)].addr);
    }
    if (router) t += router->config().forward_delay;
    pkt.l2_next_hop = hop->next_hop;
    DuplexLink& l = *links_[static_cast<std::size_t>(n.interfaces()[static_cast<std::size_t>(hop->ifindex)].link_id)];
    std::uint64_t drops = 0;
    if (!cross_link(*this, rng_, l, cur, pkt.size_bytes, t, drops)) {
      dropped = true;
      packets_dropped += drops;
      return hops;
    }
    const NodeId peer = l.other(cur);
    const int peer_if = l.ifindex_at(peer);
    const auto& peer_ifc = node(peer).interfaces()[static_cast<std::size_t>(peer_if)];
    cur = peer;
    hops.push_back({cur, peer_ifc.addr, t});
    if (out) *out = pkt;
  }
  dropped = true;
  return hops;
}

ProbeResult Network::probe(NodeId from, const net::Packet& pkt_in) {
  ProbeResult res;
  net::Packet pkt = pkt_in;
  bool fwd_dropped = false;
  net::Packet at_end;
  std::vector<PathHop> hops = trace_forward(from, pkt, fwd_dropped, &at_end);
  if (fwd_dropped || hops.empty()) {
    res.forward_dropped = true;
    return res;
  }

  // Identify the responder and the reply origin time.
  const PathHop& last = hops.back();
  Node& n = node(last.node);
  TimePoint t = last.arrived;
  net::Packet reply;
  reply.ttl = 64;
  reply.dst = pkt.src;
  reply.size_bytes = 56;
  reply.record_route = at_end.record_route;
  reply.route_stamps = at_end.route_stamps;

  if (n.owns_address(pkt.dst)) {
    reply.src = pkt.dst;
    reply.icmp_type = net::IcmpType::kEchoReply;
    reply.ident = pkt.ident;
    reply.seq = pkt.seq;
    if (auto* r = dynamic_cast<Router*>(&n)) {
      if (r->config().icmp_disabled || !r->icmp_rate_admit(t)) {
        res.forward_dropped = true;  // silent router or rate-limited
        return res;
      }
      reply.ip_id = r->next_ip_id();
      t += r->icmp_generation_delay(t);
    } else {
      t += std::chrono::microseconds(50);
    }
  } else if (auto* r = dynamic_cast<Router*>(&n)) {
    // TTL expiry at a router.
    reply.src = last.in_addr;
    reply.icmp_type = net::IcmpType::kTimeExceeded;
    reply.quoted_ident = pkt.ident;
    reply.quoted_seq = pkt.seq;
    if (r->config().icmp_disabled || !r->icmp_rate_admit(t)) {
      res.forward_dropped = true;
      return res;
    }
    reply.ip_id = r->next_ip_id();
    t += r->icmp_generation_delay(t);
  } else {
    res.forward_dropped = true;
    return res;
  }
  ++icmp_generated;

  // Reverse walk from the responder to the probing host.
  NodeId cur = last.node;
  for (int budget = 0; budget < 64; ++budget) {
    Node& rn = node(cur);
    if (rn.owns_address(reply.dst)) {
      res.answered = true;
      res.responder = reply.src;
      res.reply_type = reply.icmp_type;
      res.rtt = t - sim_.now();
      res.record_route = reply.route_stamps;
      res.ip_id = reply.ip_id;
      return res;
    }
    std::optional<HopDecision> hop;
    if (auto* sw = dynamic_cast<L2Switch*>(&rn)) {
      (void)sw;
      // Resolve the L2 port toward the frame's next hop.
      NodeId next = kInvalidNode;
      int out_if = -1;
      const net::Ipv4Address key = reply.l2_next_hop.is_unspecified() ? reply.dst : reply.l2_next_hop;
      for (std::size_t i = 0; i < rn.interfaces().size(); ++i) {
        const DuplexLink& l = *links_[static_cast<std::size_t>(rn.interfaces()[i].link_id)];
        const NodeId peer = l.other(cur);
        if (node(peer).owns_address(key)) {
          next = peer;
          out_if = static_cast<int>(i);
          break;
        }
      }
      if (next == kInvalidNode) {
        res.reverse_dropped = true;
        return res;
      }
      hop = HopDecision{out_if, key};
    } else {
      hop = route_at(cur, reply.dst);
      if (auto* rr = dynamic_cast<Router*>(&rn); rr && cur != last.node) {
        if (reply.ttl <= 1) {
          res.reverse_dropped = true;
          return res;
        }
        reply.ttl -= 1;
        t += rr->config().forward_delay;
      }
    }
    if (!hop || hop->ifindex < 0 || hop->ifindex >= static_cast<int>(rn.interfaces().size())) {
      res.reverse_dropped = true;
      return res;
    }
    if (reply.record_route && dynamic_cast<Router*>(&rn) != nullptr &&
        reply.route_stamps.size() < static_cast<std::size_t>(net::kMaxRecordRouteSlots)) {
      reply.route_stamps.push_back(rn.interfaces()[static_cast<std::size_t>(hop->ifindex)].addr);
    }
    reply.l2_next_hop = hop->next_hop;
    DuplexLink& l = *links_[static_cast<std::size_t>(rn.interfaces()[static_cast<std::size_t>(hop->ifindex)].link_id)];
    std::uint64_t drops = 0;
    if (!cross_link(*this, rng_, l, cur, reply.size_bytes, t, drops)) {
      res.reverse_dropped = true;
      packets_dropped += drops;
      return res;
    }
    cur = l.other(cur);
  }
  res.reverse_dropped = true;
  return res;
}

}  // namespace ixp::sim
