#include "sim/network.h"

#include <cassert>

#include "util/log.h"

namespace ixp::sim {

constinit thread_local LpContext* Network::active_lp_ctx_ = nullptr;

NodeId Network::add_node(std::unique_ptr<Node> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->set_id(id);
  nodes_.push_back(std::move(node));
  return id;
}

Router& Network::add_router(const std::string& name, RouterConfig cfg) {
  auto router = std::make_unique<Router>(name, std::move(cfg), rng_.fork());
  Router& ref = *router;
  add_node(std::move(router));
  return ref;
}

Host& Network::add_host(const std::string& name) {
  auto host = std::make_unique<Host>(name);
  Host& ref = *host;
  add_node(std::move(host));
  return ref;
}

L2Switch& Network::add_switch(const std::string& name) {
  auto sw = std::make_unique<L2Switch>(name);
  L2Switch& ref = *sw;
  add_node(std::move(sw));
  return ref;
}

int Network::connect(NodeId a, net::Ipv4Address addr_a, NodeId b, net::Ipv4Address addr_b,
                     const LinkConfig& cfg, const net::Ipv4Prefix& subnet) {
  const int link_id = static_cast<int>(links_.size());
  links_.push_back(std::make_unique<DuplexLink>(a, b, cfg));
  DuplexLink& l = *links_.back();
  const int if_a = node(a).add_interface(Interface{addr_a, link_id, subnet});
  const int if_b = node(b).add_interface(Interface{addr_b, link_id, subnet});
  l.set_ifindex(a, if_a);
  l.set_ifindex(b, if_b);
  if (!addr_a.is_unspecified()) addr_owner_[addr_a] = a;
  if (!addr_b.is_unspecified()) addr_owner_[addr_b] = b;
  // If either endpoint is a switch fabric, teach it the far address and the
  // node behind it: the learned table is the single O(1) port resolution
  // used by both the event-driven and the analytic forwarding paths.
  if (node(a).is_switch() && !addr_b.is_unspecified()) {
    static_cast<L2Switch&>(node(a)).learn(addr_b, if_a, b);
  }
  if (node(b).is_switch() && !addr_a.is_unspecified()) {
    static_cast<L2Switch&>(node(b)).learn(addr_a, if_b, a);
  }
  return link_id;
}

NodeId Network::find_owner(net::Ipv4Address addr) const {
  const auto it = addr_owner_.find(addr);
  return it == addr_owner_.end() ? kInvalidNode : it->second;
}

void Network::transmit(NodeId from, int ifindex, net::Packet pkt, net::Ipv4Address next_hop) {
  Node& sender = node(from);
  if (ifindex < 0 || ifindex >= static_cast<int>(sender.interfaces().size())) {
    bump_dropped();
    return;
  }
  const Interface& ifc = sender.interfaces()[static_cast<std::size_t>(ifindex)];
  DuplexLink& l = link(ifc.link_id);
  Simulator& sim = active_sim();
  TimePoint t = sim.now();
  if (!cross_link(l, from, pkt.size_bytes, t)) return;  // drop already counted
  pkt.l2_next_hop = next_hop;
  const NodeId peer = l.other(from);
  const int peer_if = l.ifindex_at(peer);
  LpContext* ctx = active_lp_ctx_;
  if (ctx && lp_of_node_ &&
      (*lp_of_node_)[static_cast<std::size_t>(peer)] != ctx->lp) {
    // The peer lives in another logical process: buffer the crossing in
    // the per-pair outbox.  The arrival is at least one lookahead past
    // the current window, so exchanging at the barrier is safe.
    const int dst = (*lp_of_node_)[static_cast<std::size_t>(peer)];
    ctx->outbox[static_cast<std::size_t>(dst)].push_back(
        LpMessage{t, sim.now(), ctx->out_seq++, ctx->lp, peer, peer_if, std::move(pkt)});
    return;
  }
  sim.schedule_at(t, [this, peer, peer_if, pkt = std::move(pkt)]() mutable {
    node(peer).receive(*this, std::move(pkt), peer_if);
  });
}

void Network::deliver(NodeId to, net::Packet pkt, int in_ifindex, Duration delay) {
  active_sim().schedule(delay, [this, to, in_ifindex, pkt = std::move(pkt)]() mutable {
    node(to).receive(*this, std::move(pkt), in_ifindex);
  });
}

std::optional<Network::HopDecision> Network::route_at(NodeId at, net::Ipv4Address dst) const {
  const Node& n = node(at);
  switch (n.kind()) {
    case NodeKind::kRouter: {
      const auto* e = static_cast<const Router&>(n).route_lookup(dst);
      if (!e) return std::nullopt;
      return HopDecision{e->ifindex, e->next_hop.is_unspecified() ? dst : e->next_hop};
    }
    case NodeKind::kHost:
      // Hosts send everything via interface 0; on-subnet destinations are
      // reached directly, everything else via the configured gateway.
      if (n.interfaces().empty()) return std::nullopt;
      return HopDecision{0, dst};
    case NodeKind::kSwitch:
      break;  // switches forward at L2, not by FIB
  }
  return std::nullopt;
}

bool Network::cross_link(DuplexLink& l, NodeId from, std::uint32_t size_bytes, TimePoint& t) {
  if (!l.is_up()) {
    bump_dropped();
    return false;
  }
  FluidQueue& q = l.queue_from(from);
  const double p_drop = q.drop_probability(t);
  if (p_drop > 0 && active_rng().chance(p_drop)) {
    bump_dropped();
    return false;
  }
  // Delays are evaluated at the crossing instant `t`: a scheduled delay
  // step (link.h) taking effect later never rewrites this packet's
  // traversal, in either execution mode.
  const Duration delay = q.queuing_delay(t) + q.transmission_delay(size_bytes) +
                         l.prop_delay_at(t) + l.extra_delay_from(from, t);
  if (!q.enqueue(t, size_bytes) && q.offered_bps(t) <= q.config().capacity_bps) {
    // Buffer full but not overflowing: a genuine tail drop.  (Under fluid
    // overflow the backlog is pinned at the buffer so every enqueue fails;
    // admission there is already decided by the drop_probability draw above
    // -- the probe merely displaces fluid that was dropped anyway.)
    bump_dropped();
    return false;
  }
  t += delay;
  bump_hops();
  return true;
}

std::vector<PathHop> Network::trace_forward(NodeId from, const net::Packet& pkt_in, bool& dropped,
                                            net::Packet* out) {
  std::vector<PathHop> hops;
  trace_forward_into(from, pkt_in, dropped, out, hops);
  return hops;
}

void Network::trace_forward_into(NodeId from, const net::Packet& pkt_in, bool& dropped,
                                 net::Packet* out, std::vector<PathHop>& hops) {
  hops.clear();
  dropped = false;
  net::Packet pkt = pkt_in;
  TimePoint t = active_sim().now();
  NodeId cur = from;
  for (int budget = 0; budget < kWalkBudget; ++budget) {
    Node& n = node(cur);
    int out_if = -1;
    if (n.kind() == NodeKind::kSwitch) {
      // L2 transit: the port was resolved into the learned table at
      // connect() time; the frame keeps its next-hop key and its TTL.
      const L2Port* port = static_cast<const L2Switch&>(n).lookup(
          pkt.l2_next_hop.is_unspecified() ? pkt.dst : pkt.l2_next_hop);
      if (port == nullptr) {
        dropped = true;
        return;
      }
      out_if = port->ifindex;
    } else {
      const bool router = n.kind() == NodeKind::kRouter;
      if (cur != from) {
        // Decide whether this node answers or forwards.
        if (router && static_cast<const Router&>(n).config().rr_filtered && pkt.record_route) {
          dropped = true;  // RR-filtering router discards the optioned packet
          return;
        }
        if (n.owns_address(pkt.dst)) {
          if (out) *out = pkt;
          return;
        }
        if (router) {
          if (pkt.ttl <= 1) {
            if (out) *out = pkt;
            return;  // TTL expiry point; caller inspects hops.back()
          }
          pkt.ttl -= 1;
        }
      }
      const auto hop = route_at(cur, pkt.dst);
      if (!hop || hop->ifindex < 0 || hop->ifindex >= static_cast<int>(n.interfaces().size())) {
        dropped = true;
        return;
      }
      out_if = hop->ifindex;
      if (router) {
        if (pkt.record_route &&
            pkt.route_stamps.size() < static_cast<std::size_t>(net::kMaxRecordRouteSlots)) {
          pkt.route_stamps.push_back(n.interfaces()[static_cast<std::size_t>(out_if)].addr);
        }
        t += static_cast<const Router&>(n).config().forward_delay;
      }
      pkt.l2_next_hop = hop->next_hop;
    }
    DuplexLink& l = link(n.interfaces()[static_cast<std::size_t>(out_if)].link_id);
    if (!cross_link(l, cur, pkt.size_bytes, t)) {
      dropped = true;
      return;
    }
    const NodeId peer = l.other(cur);
    const int peer_if = l.ifindex_at(peer);
    cur = peer;
    // Record the receiving interface's address no matter how the hop was
    // reached: a TTL expiry at a router across the L2 fabric must report
    // the peer's fabric address, not 0.0.0.0.
    hops.push_back({cur, node(cur).interfaces()[static_cast<std::size_t>(peer_if)].addr, t});
  }
  dropped = true;
}

ProbeResult Network::probe(NodeId from, const net::Packet& pkt_in) {
  ProbeResult res;
  bool fwd_dropped = false;
  net::Packet at_end;
  trace_forward_into(from, pkt_in, fwd_dropped, &at_end, scratch_hops_);
  const std::vector<PathHop>& hops = scratch_hops_;
  if (fwd_dropped || hops.empty()) {
    res.forward_dropped = true;
    return res;
  }

  // Identify the responder and the reply origin time.
  const PathHop& last = hops.back();
  Node& n = node(last.node);
  const bool at_router = n.kind() == NodeKind::kRouter;
  TimePoint t = last.arrived;
  net::Packet reply;
  reply.ttl = 64;
  reply.dst = pkt_in.src;
  reply.size_bytes = 56;
  reply.record_route = at_end.record_route;
  reply.route_stamps = std::move(at_end.route_stamps);

  if (n.owns_address(pkt_in.dst)) {
    reply.src = pkt_in.dst;
    reply.icmp_type = net::IcmpType::kEchoReply;
    reply.ident = pkt_in.ident;
    reply.seq = pkt_in.seq;
    if (at_router) {
      auto& r = static_cast<Router&>(n);
      if (r.config().icmp_disabled || !r.icmp_rate_admit(t)) {
        res.forward_dropped = true;  // silent router or rate-limited
        return res;
      }
      reply.ip_id = r.next_ip_id();
      t += r.icmp_generation_delay(t);
    } else {
      t += std::chrono::microseconds(50);
    }
  } else if (at_router) {
    // TTL expiry at a router.
    auto& r = static_cast<Router&>(n);
    reply.src = last.in_addr;
    reply.icmp_type = net::IcmpType::kTimeExceeded;
    reply.quoted_ident = pkt_in.ident;
    reply.quoted_seq = pkt_in.seq;
    if (r.config().icmp_disabled || !r.icmp_rate_admit(t)) {
      res.forward_dropped = true;
      return res;
    }
    reply.ip_id = r.next_ip_id();
    t += r.icmp_generation_delay(t);
  } else {
    res.forward_dropped = true;
    return res;
  }
  bump_icmp();

  // Reverse walk from the responder to the probing host.
  NodeId cur = last.node;
  for (int budget = 0; budget < kWalkBudget; ++budget) {
    Node& rn = node(cur);
    if (rn.owns_address(reply.dst)) {
      res.answered = true;
      res.responder = reply.src;
      res.reply_type = reply.icmp_type;
      res.rtt = t - active_sim().now();
      res.record_route = std::move(reply.route_stamps);
      res.ip_id = reply.ip_id;
      return res;
    }
    int out_if = -1;
    if (rn.kind() == NodeKind::kSwitch) {
      // O(1) learned-table resolution, same as the forward walk.
      const L2Port* port = static_cast<const L2Switch&>(rn).lookup(
          reply.l2_next_hop.is_unspecified() ? reply.dst : reply.l2_next_hop);
      if (port == nullptr) {
        res.reverse_dropped = true;
        return res;
      }
      out_if = port->ifindex;
    } else {
      const bool router = rn.kind() == NodeKind::kRouter;
      if (router && cur != last.node) {
        if (reply.ttl <= 1) {
          res.reverse_dropped = true;
          return res;
        }
        reply.ttl -= 1;
        t += static_cast<const Router&>(rn).config().forward_delay;
      }
      const auto hop = route_at(cur, reply.dst);
      if (!hop || hop->ifindex < 0 || hop->ifindex >= static_cast<int>(rn.interfaces().size())) {
        res.reverse_dropped = true;
        return res;
      }
      out_if = hop->ifindex;
      if (router && reply.record_route &&
          reply.route_stamps.size() < static_cast<std::size_t>(net::kMaxRecordRouteSlots)) {
        reply.route_stamps.push_back(rn.interfaces()[static_cast<std::size_t>(out_if)].addr);
      }
      reply.l2_next_hop = hop->next_hop;
    }
    DuplexLink& l = link(rn.interfaces()[static_cast<std::size_t>(out_if)].link_id);
    if (!cross_link(l, cur, reply.size_bytes, t)) {
      res.reverse_dropped = true;
      return res;
    }
    cur = l.other(cur);
  }
  res.reverse_dropped = true;
  return res;
}

FluidQueue::Stats Network::queue_stats() const {
  FluidQueue::Stats total;
  for (const auto& l : links_) {
    for (const FluidQueue* q : {&l->queue_ab(), &l->queue_ba()}) {
      total.headroom_skips += q->stats().headroom_skips;
      total.integration_steps += q->stats().integration_steps;
      total.tail_drops += q->stats().tail_drops;
    }
  }
  return total;
}

}  // namespace ixp::sim
