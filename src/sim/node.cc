#include "sim/node.h"

#include <algorithm>
#include <cmath>

#include "sim/network.h"

namespace ixp::sim {

// ---------------------------------------------------------------------------
// Router

Duration Router::icmp_generation_delay(TimePoint t) {
  double ms = to_ms(cfg_.icmp_base_delay);
  if (cfg_.icmp_jitter.count() > 0) {
    ms += to_ms(cfg_.icmp_jitter) * std::fabs(rng_.normal());
  }
  if (cfg_.icmp_load && cfg_.icmp_load_extra.count() > 0) {
    const double load = std::clamp(cfg_.icmp_load->bps(t), 0.0, 1.0);
    ms += to_ms(cfg_.icmp_load_extra) * load;
  }
  return milliseconds(ms);
}

bool Router::icmp_rate_admit(TimePoint t) {
  if (cfg_.icmp_rate_limit_per_sec <= 0) return true;
  const double cap = std::max(1.0, cfg_.icmp_rate_limit_per_sec);  // burst = 1s worth
  if (!icmp_bucket_primed_) {
    icmp_tokens_ = cap;  // the bucket starts full
    icmp_bucket_primed_ = true;
  }
  icmp_tokens_ = std::min(cap, icmp_tokens_ + to_sec(t - icmp_tokens_at_) * cfg_.icmp_rate_limit_per_sec);
  icmp_tokens_at_ = t;
  if (icmp_tokens_ < 1.0) return false;
  icmp_tokens_ -= 1.0;
  return true;
}

void Router::emit_icmp(Network& net, const net::Packet& cause, net::IcmpType type,
                       net::Ipv4Address from, int /*in_ifindex*/) {
  const TimePoint t = net.active_sim().now();
  if (cfg_.icmp_disabled || !icmp_rate_admit(t)) return;
  net::Packet reply;
  reply.src = from;
  reply.dst = cause.src;
  reply.ttl = 64;
  reply.icmp_type = type;
  reply.ip_id = next_ip_id();
  reply.size_bytes = 56;  // IP + ICMP + quoted header
  reply.sent_at = cause.sent_at;
  if (type == net::IcmpType::kEchoReply) {
    reply.ident = cause.ident;
    reply.seq = cause.seq;
    // Echo replies preserve the record-route option accumulated so far;
    // routers on the return path keep stamping it.
    reply.record_route = cause.record_route;
    reply.route_stamps = cause.route_stamps;
  } else {
    reply.quoted_ident = cause.ident;
    reply.quoted_seq = cause.seq;
    // Time-exceeded replies carry the RR stamps collected by the probe in
    // the quoted header; scamper reads them from there.
    reply.record_route = cause.record_route;
    reply.route_stamps = cause.route_stamps;
  }
  net.bump_icmp();
  const Duration delay = icmp_generation_delay(t);
  const NodeId self = id();
  net.active_sim().schedule(delay, [&net, self, reply]() mutable {
    // Route the reply like any other locally-originated packet.
    auto& me = static_cast<Router&>(net.node(self));
    me.forward(net, reply);
  });
}

void Router::forward(Network& net, net::Packet pkt) {
  const auto* entry = route_lookup(pkt.dst);
  if (!entry || entry->ifindex < 0 || entry->ifindex >= static_cast<int>(interfaces_.size())) {
    net.bump_dropped();
    return;
  }
  if (pkt.record_route &&
      pkt.route_stamps.size() < static_cast<std::size_t>(net::kMaxRecordRouteSlots)) {
    pkt.route_stamps.push_back(interfaces_[static_cast<std::size_t>(entry->ifindex)].addr);
  }
  const net::Ipv4Address nh = entry->next_hop.is_unspecified() ? pkt.dst : entry->next_hop;
  net.bump_forwarded();
  net.transmit(id(), entry->ifindex, std::move(pkt), nh);
}

void Router::receive(Network& net, net::Packet pkt, int in_ifindex) {
  // Record-route filtering drops optioned packets outright.
  if (cfg_.rr_filtered && pkt.record_route) {
    net.bump_dropped();
    return;
  }
  // Addressed to one of my interfaces: control-plane processing.
  if (owns_address(pkt.dst)) {
    if (pkt.icmp_type == net::IcmpType::kEchoRequest) {
      emit_icmp(net, pkt, net::IcmpType::kEchoReply, pkt.dst, in_ifindex);
    }
    return;  // replies addressed to a router are consumed silently
  }
  // TTL check happens before forwarding.
  if (pkt.ttl <= 1) {
    if (pkt.icmp_type == net::IcmpType::kEchoRequest) {
      const net::Ipv4Address from = (in_ifindex >= 0 && in_ifindex < static_cast<int>(interfaces_.size()))
                                        ? interfaces_[static_cast<std::size_t>(in_ifindex)].addr
                                        : net::Ipv4Address();
      emit_icmp(net, pkt, net::IcmpType::kTimeExceeded, from, in_ifindex);
    }
    return;
  }
  pkt.ttl -= 1;
  const NodeId self = id();
  net.active_sim().schedule(cfg_.forward_delay, [&net, self, pkt = std::move(pkt)]() mutable {
    static_cast<Router&>(net.node(self)).forward(net, std::move(pkt));
  });
}

// ---------------------------------------------------------------------------
// Host

void Host::receive(Network& net, net::Packet pkt, int /*in_ifindex*/) {
  if (!owns_address(pkt.dst)) return;  // not for us; hosts do not forward
  if (rx_) rx_(pkt, net.active_sim().now());
  if (pkt.icmp_type == net::IcmpType::kEchoRequest) {
    net::Packet reply;
    reply.src = pkt.dst;
    reply.dst = pkt.src;
    reply.ttl = 64;
    reply.icmp_type = net::IcmpType::kEchoReply;
    reply.ident = pkt.ident;
    reply.seq = pkt.seq;
    reply.size_bytes = pkt.size_bytes;
    reply.sent_at = pkt.sent_at;
    reply.record_route = pkt.record_route;
    reply.route_stamps = pkt.route_stamps;
    const NodeId self = id();
    const int gw_if = gw_ifindex_;
    net::Ipv4Address nh = gateway_;
    if (!interfaces_.empty() && interfaces_[0].subnet.contains(reply.dst)) nh = reply.dst;
    net.active_sim().schedule(reply_delay_, [&net, self, gw_if, nh, reply]() mutable {
      net.transmit(self, gw_if, std::move(reply), nh);
    });
  }
}

void Host::send(Network& net, net::Packet pkt) {
  net::Ipv4Address nh = gateway_;
  if (!interfaces_.empty() && interfaces_[0].subnet.contains(pkt.dst)) nh = pkt.dst;
  net.transmit(id(), gw_ifindex_, std::move(pkt), nh);
}

// ---------------------------------------------------------------------------
// L2Switch

void L2Switch::receive(Network& net, net::Packet pkt, int /*in_ifindex*/) {
  const net::Ipv4Address key = pkt.l2_next_hop.is_unspecified() ? pkt.dst : pkt.l2_next_hop;
  const L2Port* entry = lookup(key);
  if (entry == nullptr) {
    net.bump_dropped();
    return;
  }
  const NodeId self = id();
  const int port = entry->ifindex;
  net.active_sim().schedule(latency_, [&net, self, port, pkt = std::move(pkt)]() mutable {
    net.transmit(self, port, std::move(pkt), pkt.l2_next_hop);
  });
}

}  // namespace ixp::sim
