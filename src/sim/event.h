// Discrete-event simulation core.
//
// A single-threaded event loop over simulated time.  Events scheduled for
// the same instant fire in scheduling order (a monotone sequence number
// breaks ties), which keeps campaigns bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/time.h"

namespace ixp::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run at absolute time `at`.  Scheduling into the
  /// past is a causality violation (in an LP world it means a message
  /// arrived behind its destination's clock): under IXP_PARANOID it
  /// check-fails with the offending delta; release builds clamp to now().
  void schedule_at(TimePoint at, Action action);

  /// Schedules `action` to run `delay` from now.
  void schedule(Duration delay, Action action) { schedule_at(now_ + delay, std::move(action)); }

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events at exactly `until` are executed.
  void run_until(TimePoint until);

  /// Runs events strictly before `until`, then advances the clock to
  /// `until`.  This is the window primitive of the conservative LP
  /// scheduler (sim/lp.h): a window [W, W+L) must leave events at exactly
  /// W+L for the next window so every LP agrees on the cut.
  void run_before(TimePoint until);

  /// Runs until the queue is empty.
  void run();

  /// Discards all pending events and resets the clock, sequence counter,
  /// and executed-event count: a cleared simulator behaves exactly like a
  /// freshly constructed one.
  void clear();

  /// Advances the clock without running events scheduled in between.
  /// Used by the fast-path prober, which evaluates queues analytically.
  void advance_to(TimePoint at) {
    if (at > now_) now_ = at;
  }

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t scheduled() const { return next_seq_; }

  /// Time of the earliest pending event, or nullopt when idle.  The LP
  /// scheduler idle-jumps over empty stretches with this.
  [[nodiscard]] std::optional<TimePoint> next_event_at() const {
    if (heap_.empty()) return std::nullopt;
    return heap_.front().at;
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the earliest entry by moving it out of the heap.  A
  /// std::priority_queue only exposes a const top(), which forced a copy of
  /// the std::function per event; an explicit vector heap does not.
  Entry pop_next();

  std::vector<Entry> heap_;  ///< binary heap ordered by Later
  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ixp::sim
