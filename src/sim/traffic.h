// Cross-traffic demand models.
//
// A TrafficProfile maps simulated time to offered load in bits/second on a
// link direction.  Profiles are deterministic functions of time so that a
// campaign replays exactly; short-timescale randomness enters the system
// through router jitter and probe-drop draws instead.
//
// DiurnalProfile reproduces the shapes the paper observes: load that ramps
// through the day, peaks in business or evening hours, differs between
// weekdays and weekends, and optionally dips around midnight (the
// GIXA-KNET signature).  PiecewiseProfile splices profiles at timeline
// boundaries (phase changes such as the 28/04/2016 NETPAGE port upgrade).
#pragma once

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "util/time.h"

namespace ixp::sim {

class TrafficProfile {
 public:
  virtual ~TrafficProfile() = default;
  /// Offered load in bits per second at time t.
  [[nodiscard]] virtual double bps(TimePoint t) const = 0;
  /// Upper bound on bps(t) over all t; +infinity when no bound is known.
  /// Need not be tight.  FluidQueue uses it to prove a link can never
  /// congest, which lets it skip integrating an empty backlog entirely.
  [[nodiscard]] virtual double max_bps() const {
    return std::numeric_limits<double>::infinity();
  }
};

using TrafficProfilePtr = std::shared_ptr<const TrafficProfile>;

/// Constant offered load.
class ConstantProfile final : public TrafficProfile {
 public:
  explicit ConstantProfile(double bps) : bps_(bps) {}
  [[nodiscard]] double bps(TimePoint) const override { return bps_; }
  [[nodiscard]] double max_bps() const override { return bps_; }

 private:
  double bps_;
};

/// Smooth diurnal demand with weekday/weekend scaling.
///
/// The daily shape is a raised-cosine bump centred on `peak_hour` with
/// half-width `peak_half_width_hours`, on top of `base_bps`:
///   load(t) = scale(day) * (base + peak * bump(hour))
/// where scale(day) is weekday_scale or weekend_scale.
class DiurnalProfile final : public TrafficProfile {
 public:
  struct Config {
    double base_bps = 10e6;
    double peak_bps = 90e6;             ///< added on top of base at the peak
    double peak_hour = 14.0;            ///< centre of the busy period
    double peak_half_width_hours = 6.0; ///< bump reaches zero this far out
    double weekday_scale = 1.0;
    double weekend_scale = 1.0;
    double midnight_dip_frac = 0.0;     ///< 0..1 multiplier removed near 0h
    double midnight_dip_half_width_hours = 1.5;
  };

  explicit DiurnalProfile(Config cfg) : cfg_(cfg) {}
  [[nodiscard]] double bps(TimePoint t) const override;
  [[nodiscard]] double max_bps() const override;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

/// Splices profiles at absolute campaign times.  Segment i applies from
/// boundary i-1 (inclusive) to boundary i (exclusive); the last segment
/// extends to infinity.
class PiecewiseProfile final : public TrafficProfile {
 public:
  struct Piece {
    TimePoint until;  ///< exclusive upper bound for this piece
    TrafficProfilePtr profile;
  };

  /// `pieces` must be sorted by `until`; `tail` covers everything after.
  PiecewiseProfile(std::vector<Piece> pieces, TrafficProfilePtr tail)
      : pieces_(std::move(pieces)), tail_(std::move(tail)) {}

  [[nodiscard]] double bps(TimePoint t) const override;
  [[nodiscard]] double max_bps() const override;

 private:
  std::vector<Piece> pieces_;
  TrafficProfilePtr tail_;
};

/// Sum of component profiles (e.g., steady transit + bursty cache-fill).
class SumProfile final : public TrafficProfile {
 public:
  explicit SumProfile(std::vector<TrafficProfilePtr> parts) : parts_(std::move(parts)) {}
  [[nodiscard]] double bps(TimePoint t) const override;
  [[nodiscard]] double max_bps() const override;

 private:
  std::vector<TrafficProfilePtr> parts_;
};

/// Deterministic pseudo-noise on top of another profile: a sum of
/// incommensurate sinusoids, so the load wiggles realistically while
/// remaining a pure function of time.
class JitteredProfile final : public TrafficProfile {
 public:
  JitteredProfile(TrafficProfilePtr base, double relative_amplitude, std::uint64_t phase_seed);
  [[nodiscard]] double bps(TimePoint t) const override;
  [[nodiscard]] double max_bps() const override;

 private:
  TrafficProfilePtr base_;
  double amplitude_;
  double phase_[3];
};

}  // namespace ixp::sim
