#include "sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ixp::sim {
namespace {
constexpr double kPi = 3.14159265358979323846;

// Raised-cosine bump: 1 at the centre, 0 at +/- half_width, smooth edges.
// Hours wrap around midnight.
double bump(double hour, double centre, double half_width) {
  double d = std::fabs(hour - centre);
  if (d > 12.0) d = 24.0 - d;
  if (d >= half_width) return 0.0;
  return 0.5 * (1.0 + std::cos(kPi * d / half_width));
}
}  // namespace

double DiurnalProfile::bps(TimePoint t) const {
  const CalendarTime c = to_calendar(t);
  const double scale = c.is_weekend ? cfg_.weekend_scale : cfg_.weekday_scale;
  double load = cfg_.base_bps + cfg_.peak_bps * bump(c.hour_of_day, cfg_.peak_hour, cfg_.peak_half_width_hours);
  if (cfg_.midnight_dip_frac > 0) {
    load *= 1.0 - cfg_.midnight_dip_frac * bump(c.hour_of_day, 0.0, cfg_.midnight_dip_half_width_hours);
  }
  return scale * load;
}

double DiurnalProfile::max_bps() const {
  // With any negative parameter the simple peak formula below is no longer
  // an upper bound; report "unknown" rather than a wrong bound.
  if (cfg_.base_bps < 0 || cfg_.peak_bps < 0 || cfg_.weekday_scale < 0 ||
      cfg_.weekend_scale < 0 || cfg_.midnight_dip_frac < 0) {
    return std::numeric_limits<double>::infinity();
  }
  // bump() is in [0, 1] and the midnight dip only reduces load.
  return std::max(cfg_.weekday_scale, cfg_.weekend_scale) * (cfg_.base_bps + cfg_.peak_bps);
}

double PiecewiseProfile::bps(TimePoint t) const {
  for (const auto& piece : pieces_) {
    if (t < piece.until) return piece.profile->bps(t);
  }
  return tail_ ? tail_->bps(t) : 0.0;
}

double PiecewiseProfile::max_bps() const {
  double bound = tail_ ? tail_->max_bps() : 0.0;
  for (const auto& piece : pieces_) bound = std::max(bound, piece.profile->max_bps());
  return bound;
}

double SumProfile::bps(TimePoint t) const {
  double total = 0.0;
  for (const auto& p : parts_) total += p->bps(t);
  return total;
}

double SumProfile::max_bps() const {
  double total = 0.0;
  for (const auto& p : parts_) total += p->max_bps();
  return total;
}

JitteredProfile::JitteredProfile(TrafficProfilePtr base, double relative_amplitude, std::uint64_t phase_seed)
    : base_(std::move(base)), amplitude_(relative_amplitude) {
  // Derive three deterministic phases from the seed.
  std::uint64_t x = phase_seed * 0x9e3779b97f4a7c15ULL + 1;
  for (double& ph : phase_) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    ph = 2.0 * kPi * static_cast<double>(x >> 11) * 0x1.0p-53;
  }
}

double JitteredProfile::bps(TimePoint t) const {
  const double base = base_->bps(t);
  const double h = to_hours(t.since_epoch());
  // Periods of ~37 min, ~13 min, and ~3.1 h: incommensurate with each other
  // and with the 24 h diurnal cycle, so the wiggle never phase-locks.
  const double n = std::sin(2 * kPi * h / 0.6180339887 + phase_[0]) * 0.5 +
                   std::sin(2 * kPi * h / 0.2236067977 + phase_[1]) * 0.3 +
                   std::sin(2 * kPi * h / 3.1415926536 + phase_[2]) * 0.2;
  return base * (1.0 + amplitude_ * n);
}

double JitteredProfile::max_bps() const {
  const double base_max = base_->max_bps();
  if (base_max < 0) return std::numeric_limits<double>::infinity();
  // |n| <= 0.5 + 0.3 + 0.2 = 1.
  return base_max * (1.0 + std::fabs(amplitude_));
}

}  // namespace ixp::sim
