// Simulated nodes: routers, hosts, and L2 switch fabrics.
//
// Routers implement the IP behaviours TSLP depends on: TTL decrement, ICMP
// TIME_EXCEEDED generation from the *inbound* interface address (this is
// what makes the near/far ends of an interdomain link observable), ICMP
// rate limiting, a configurable slow-ICMP control-plane model, and IPv4
// record-route stamping.
//
// The L2Switch models an IXP switching fabric: frames cross it without a
// TTL decrement and the fabric itself is invisible at the IP layer, so a
// traceroute from a member sees its own border router and then directly
// the peer's router -- exactly how IXP LANs appear in real traces.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/prefix_map.h"
#include "sim/link.h"
#include "util/rng.h"

namespace ixp::sim {

class Network;

/// An attachment point of a node to a link.
struct Interface {
  net::Ipv4Address addr;   ///< unset (0) for pure L2 ports
  int link_id = -1;
  net::Ipv4Prefix subnet;  ///< the connected subnet
};

/// Next-hop entry installed in a router FIB.
struct FibEntry {
  int ifindex = -1;
  net::Ipv4Address next_hop;  ///< 0 means "directly connected: use dst"
};

/// Concrete node type, queryable without RTTI.  The forwarding hot path
/// dispatches on this tag instead of dynamic_cast (which dominated probe
/// profiles before the tag existed).
enum class NodeKind : std::uint8_t { kHost, kRouter, kSwitch };

class Node {
 public:
  Node(NodeKind kind, std::string name) : name_(std::move(name)), kind_(kind) {}
  virtual ~Node() = default;

  virtual void receive(Network& net, net::Packet pkt, int in_ifindex) = 0;

  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] bool is_host() const { return kind_ == NodeKind::kHost; }
  [[nodiscard]] bool is_router() const { return kind_ == NodeKind::kRouter; }
  [[nodiscard]] bool is_switch() const { return kind_ == NodeKind::kSwitch; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NodeId id() const { return id_; }
  void set_id(NodeId id) { id_ = id; }

  [[nodiscard]] const std::vector<Interface>& interfaces() const { return interfaces_; }
  int add_interface(const Interface& ifc) {
    interfaces_.push_back(ifc);
    return static_cast<int>(interfaces_.size()) - 1;
  }
  [[nodiscard]] bool owns_address(net::Ipv4Address a) const {
    for (const auto& i : interfaces_) {
      if (i.addr == a && !a.is_unspecified()) return true;
    }
    return false;
  }

 protected:
  std::vector<Interface> interfaces_;

 private:
  std::string name_;
  NodeId id_ = kInvalidNode;
  NodeKind kind_;
};

/// Router behaviour knobs.
struct RouterConfig {
  std::uint32_t owner_asn = 0;
  /// Per-packet forwarding latency (lookup + switching).
  Duration forward_delay = std::chrono::microseconds(20);
  /// Base control-plane delay to generate any ICMP message.
  Duration icmp_base_delay = milliseconds(0.3);
  /// Half-normal jitter added to ICMP generation.
  Duration icmp_jitter = milliseconds(0.25);
  /// Optional control-plane load in [0,1] as a function of time; ICMP
  /// generation slows by icmp_load_extra * load(t).  Models routers whose
  /// ICMP slow path degrades at peak hours (the GIXA-KNET hypothesis).
  TrafficProfilePtr icmp_load;         ///< interpreted as relative load 0..1
  Duration icmp_load_extra = milliseconds(0);
  /// ICMP generation rate limit (messages/second); 0 disables the limit.
  double icmp_rate_limit_per_sec = 0.0;
  /// Router never generates ICMP (echo replies or errors): the silent
  /// routers that cap bdrmap's real-world neighbor recall at ~96 %.
  bool icmp_disabled = false;
  /// Router drops packets carrying the record-route option (common
  /// filtering practice; the reason Table 2 shows zero record routes for
  /// VP4 and VP6).
  bool rr_filtered = false;
};

class Router final : public Node {
 public:
  Router(std::string name, RouterConfig cfg, Rng rng)
      : Node(NodeKind::kRouter, std::move(name)), cfg_(std::move(cfg)), rng_(rng) {}

  void receive(Network& net, net::Packet pkt, int in_ifindex) override;

  [[nodiscard]] std::uint32_t asn() const { return cfg_.owner_asn; }
  [[nodiscard]] const RouterConfig& config() const { return cfg_; }
  RouterConfig& mutable_config() { return cfg_; }

  /// Installs/overwrites a FIB route.
  void add_route(const net::Ipv4Prefix& prefix, FibEntry entry) {
    fib_.insert(prefix, entry);
    route_cache_.clear();
    last_route_valid_ = false;
  }
  [[nodiscard]] const net::PrefixMap<FibEntry>& fib() const { return fib_; }
  void clear_fib() {
    fib_ = net::PrefixMap<FibEntry>();
    route_cache_.clear();
    last_route_valid_ = false;
  }

  /// Memoized longest-prefix match.  A TSLP campaign hits each router with
  /// the same handful of destinations every round, so the trie walk is paid
  /// once per (router, dst); any FIB mutation invalidates the cache.  The
  /// one-entry memo on top covers the far/near probe pairs, which query the
  /// same destination back to back.
  [[nodiscard]] const FibEntry* route_lookup(net::Ipv4Address dst) const {
    if (last_route_valid_ && dst == last_route_dst_) return last_route_;
    const auto [it, fresh] = route_cache_.try_emplace(dst, nullptr);
    if (fresh) it->second = fib_.lookup(dst);
    last_route_valid_ = true;
    last_route_dst_ = dst;
    last_route_ = it->second;
    return it->second;
  }

  /// ICMP generation delay at time t (deterministic given the RNG stream).
  Duration icmp_generation_delay(TimePoint t);

  /// Token-bucket admission for ICMP generation.
  bool icmp_rate_admit(TimePoint t);

  /// Next value of the router-wide IP-ID counter (all interfaces share it,
  /// which is exactly the signal Ally-style alias resolution exploits).
  std::uint16_t next_ip_id() { return ip_id_counter_++; }

 private:
  void forward(Network& net, net::Packet pkt);
  void emit_icmp(Network& net, const net::Packet& cause, net::IcmpType type, net::Ipv4Address from,
                 int in_ifindex);

  RouterConfig cfg_;
  net::PrefixMap<FibEntry> fib_;
  /// dst -> trie entry; pointers stay valid because any mutation clears it.
  mutable std::unordered_map<net::Ipv4Address, const FibEntry*> route_cache_;
  mutable net::Ipv4Address last_route_dst_;
  mutable const FibEntry* last_route_ = nullptr;
  mutable bool last_route_valid_ = false;
  Rng rng_;
  std::uint16_t ip_id_counter_ = 1;
  // Token bucket for ICMP rate limiting.
  double icmp_tokens_ = 0.0;
  bool icmp_bucket_primed_ = false;
  TimePoint icmp_tokens_at_{};
};

/// End host: answers echo requests; a designated callback receives every
/// packet delivered to the host (the prober's receive path).
class Host final : public Node {
 public:
  using RxCallback = std::function<void(const net::Packet&, TimePoint)>;

  Host(std::string name, Duration reply_delay = std::chrono::microseconds(50))
      : Node(NodeKind::kHost, std::move(name)), reply_delay_(reply_delay) {}

  void receive(Network& net, net::Packet pkt, int in_ifindex) override;

  void set_rx_callback(RxCallback cb) { rx_ = std::move(cb); }
  void set_gateway(int ifindex, net::Ipv4Address gw) {
    gw_ifindex_ = ifindex;
    gateway_ = gw;
  }
  [[nodiscard]] net::Ipv4Address gateway() const { return gateway_; }

  /// Emits a locally-originated packet (event mode).
  void send(Network& net, net::Packet pkt);
  [[nodiscard]] net::Ipv4Address address() const {
    return interfaces_.empty() ? net::Ipv4Address() : interfaces_[0].addr;
  }

 private:
  Duration reply_delay_;
  RxCallback rx_;
  int gw_ifindex_ = 0;
  net::Ipv4Address gateway_;
};

/// Resolved L2 port: which switch ifindex reaches an address, and the node
/// on the far side of that port.  Filled in by Network::connect() so both
/// the event-driven and analytic paths share one O(1) lookup.
struct L2Port {
  int ifindex = -1;
  NodeId peer = kInvalidNode;
};

/// IXP switching fabric: forwards by next-hop IP without touching TTL.
class L2Switch final : public Node {
 public:
  explicit L2Switch(std::string name, Duration latency = std::chrono::microseconds(5))
      : Node(NodeKind::kSwitch, std::move(name)), latency_(latency) {}

  void receive(Network& net, net::Packet pkt, int in_ifindex) override;

  /// Registers which port (ifindex on the switch) reaches `addr`, and who
  /// sits behind it.
  void learn(net::Ipv4Address addr, int port_ifindex, NodeId peer = kInvalidNode) {
    table_[addr] = L2Port{port_ifindex, peer};
    last_key_valid_ = false;
  }
  void forget(net::Ipv4Address addr) {
    table_.erase(addr);
    last_key_valid_ = false;
  }

  /// O(1) learned-table lookup; nullptr for unknown addresses.  The
  /// one-entry memo covers consecutive frames toward the same next hop
  /// (TSLP's far/near probe pairs and their replies).
  [[nodiscard]] const L2Port* lookup(net::Ipv4Address addr) const {
    if (last_key_valid_ && addr == last_key_) return last_port_;
    const auto it = table_.find(addr);
    last_key_valid_ = true;
    last_key_ = addr;
    last_port_ = it == table_.end() ? nullptr : &it->second;
    return last_port_;
  }

 private:
  Duration latency_;
  std::unordered_map<net::Ipv4Address, L2Port> table_;
  mutable net::Ipv4Address last_key_;
  mutable const L2Port* last_port_ = nullptr;
  mutable bool last_key_valid_ = false;
};

}  // namespace ixp::sim
