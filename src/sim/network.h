// The simulated network: nodes, links, and packet transport.
//
// Two execution modes share the same queues and topology:
//
//  * Event mode -- packets are scheduled hop by hop through the Simulator.
//    Used by unit tests, examples, and conformance checks.
//  * Fast path -- probe_path()/probe_rtt() walk the forward and reverse
//    route analytically, querying each fluid queue at the packet's arrival
//    instant.  Year-long TSLP campaigns use this; an integration test pins
//    its equivalence to event mode.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/event.h"
#include "sim/node.h"
#include "util/rng.h"

namespace ixp::sim {

/// Maximum hops a fast-path walk will take before declaring a loop.  Well
/// above any real path length (probes start with ttl <= 64; replies also
/// start at 64), so reverse-path TTL expiry is observable before the walk
/// budget runs out.
inline constexpr int kWalkBudget = 255;

/// One hop of a fast-path walk (for traceroute-style introspection).
struct PathHop {
  NodeId node = kInvalidNode;
  net::Ipv4Address in_addr;   ///< inbound interface address at this node
  TimePoint arrived;
};

/// One cross-partition event in flight between two logical processes:
/// a packet that crossed a cut link and now belongs to the destination
/// LP.  Buffered in the source LP's outbox until the next barrier, where
/// the LP scheduler merges all inboxes in (arrival, sent, source LP,
/// sequence) order -- see sim/lp.h for the determinism contract.
struct LpMessage {
  TimePoint at;        ///< arrival time at the destination node
  TimePoint sent;      ///< source-LP clock when the packet crossed
  std::uint64_t seq;   ///< per-source-LP monotone sequence number
  int src_lp = 0;      ///< source LP (merge tie-break after at/sent)
  NodeId to = kInvalidNode;
  int ifindex = -1;
  net::Packet pkt;
};

/// Per-logical-process execution state.  Each LP owns a Simulator, an
/// independent RNG stream, private counter shadows of the Network-wide
/// statistics (merged back in LP order after the run), and one outbox per
/// destination LP.  Worker threads arm a thread-local pointer to their
/// context before running a window, which routes every internal
/// scheduling site through the LP's own simulator.  Cache-line aligned:
/// the counter shadows are bumped once per event, and adjacent contexts
/// sharing a line would false-share that traffic across workers.
struct alignas(64) LpContext {
  Simulator sim;
  int lp = 0;
  Rng rng{0};
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t icmp = 0;
  std::uint64_t hops = 0;
  std::uint64_t out_seq = 0;
  std::vector<std::vector<LpMessage>> outbox;  ///< indexed by destination LP
};

/// Result of a fast-path probe.
struct ProbeResult {
  bool answered = false;
  net::Ipv4Address responder;      ///< source of the reply
  net::IcmpType reply_type = net::IcmpType::kTimeExceeded;
  Duration rtt{};
  std::uint16_t ip_id = 0;         ///< IP-ID the responder stamped
  std::vector<net::Ipv4Address> record_route;  ///< stamps accumulated
  bool forward_dropped = false;
  bool reverse_dropped = false;
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- Construction -------------------------------------------------------

  NodeId add_node(std::unique_ptr<Node> node);
  Router& add_router(const std::string& name, RouterConfig cfg);
  Host& add_host(const std::string& name);
  L2Switch& add_switch(const std::string& name);

  /// Connects two nodes; both sides get an interface with the given
  /// addresses (0 for L2 ports).  Returns the link id.
  int connect(NodeId a, net::Ipv4Address addr_a, NodeId b, net::Ipv4Address addr_b,
              const LinkConfig& cfg, const net::Ipv4Prefix& subnet);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] DuplexLink& link(int id) { return *links_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const DuplexLink& link(int id) const { return *links_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Node owning `addr`, or kInvalidNode.
  [[nodiscard]] NodeId find_owner(net::Ipv4Address addr) const;

  Simulator& simulator() { return sim_; }
  Rng& rng() { return rng_; }
  void seed(std::uint64_t s) { rng_ = Rng(s); }

  // ---- Logical-process execution (sim/lp.h drives these) ------------------

  /// Attaches an LP partition: `lp_of_node` maps every node to its LP and
  /// `ctxs` holds one context per LP.  Both stay owned by the caller (the
  /// LpScheduler) and must outlive the attachment.
  void attach_lp(const std::vector<int>* lp_of_node, std::vector<LpContext>* ctxs) {
    lp_of_node_ = lp_of_node;
    lp_ctxs_ = ctxs;
  }
  void detach_lp() {
    lp_of_node_ = nullptr;
    lp_ctxs_ = nullptr;
  }
  [[nodiscard]] bool lp_attached() const { return lp_ctxs_ != nullptr; }

  /// Arms (or, with nullptr, disarms) the calling thread's LP context.
  /// While armed, every internal scheduling site, RNG draw, and counter
  /// bump lands in the context instead of the shared simulator.
  static void arm_lp(LpContext* ctx) { active_lp_ctx_ = ctx; }

  /// The simulator internal scheduling goes through: the armed LP's when a
  /// worker thread runs a window, the shared one otherwise.
  [[nodiscard]] Simulator& active_sim() {
    return active_lp_ctx_ ? active_lp_ctx_->sim : sim_;
  }

  /// Seeds a workload event at absolute time `at` into the simulator that
  /// owns `owner` -- the node's LP when a partition is attached, the
  /// shared simulator otherwise.  Call from the main thread, in a
  /// deterministic order, before running; identical workload code then
  /// produces identical results serial and partitioned.
  void lp_schedule(NodeId owner, TimePoint at, Simulator::Action action) {
    if (lp_ctxs_ && lp_of_node_) {
      (*lp_ctxs_)[static_cast<std::size_t>(
                      (*lp_of_node_)[static_cast<std::size_t>(owner)])]
          .sim.schedule_at(at, std::move(action));
    } else {
      sim_.schedule_at(at, std::move(action));
    }
  }

  // ---- Event-mode transport ----------------------------------------------

  /// Emits `pkt` from `from` out of `ifindex`; `next_hop` picks the L2 port
  /// on a switch fabric (use the packet dst for directly-connected sends).
  /// Queue overflow and tail drops are counted in packets_dropped.
  void transmit(NodeId from, int ifindex, net::Packet pkt, net::Ipv4Address next_hop);

  /// Delivers `pkt` to a node after `delay` (loopback / self-ping).
  void deliver(NodeId to, net::Packet pkt, int in_ifindex, Duration delay);

  // ---- Fast path -----------------------------------------------------------

  /// Walks the forward path of `pkt` from node `from` without scheduling
  /// events, returning each hop until TTL expiry, delivery, or a drop.
  std::vector<PathHop> trace_forward(NodeId from, const net::Packet& pkt, bool& dropped,
                                     net::Packet* out = nullptr);

  /// Full analytic probe: forward walk, ICMP generation at the responding
  /// node, reverse walk back to `from`.  Drops are decided with this
  /// network's RNG against each queue's drop probability.
  ProbeResult probe(NodeId from, const net::Packet& pkt);

  // ---- Statistics -----------------------------------------------------------

  std::uint64_t packets_forwarded = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t icmp_generated = 0;
  std::uint64_t hops_walked = 0;  ///< link crossings, event-mode and analytic

  /// Sum of FluidQueue::Stats over every queue (both directions of every
  /// link).  Scraped into the observability registry at campaign end.
  [[nodiscard]] FluidQueue::Stats queue_stats() const;

 private:
  friend class Router;
  friend class Host;
  friend class L2Switch;
  friend class LpScheduler;

  // Counter bumps route to the armed LP's private shadow during a window
  // (the public totals are merged back in LP order after the run, so the
  // sums stay byte-identical to the serial tally).
  void bump_forwarded() {
    if (active_lp_ctx_) ++active_lp_ctx_->forwarded; else ++packets_forwarded;
  }
  void bump_dropped() {
    if (active_lp_ctx_) ++active_lp_ctx_->dropped; else ++packets_dropped;
  }
  void bump_icmp() {
    if (active_lp_ctx_) ++active_lp_ctx_->icmp; else ++icmp_generated;
  }
  void bump_hops() {
    if (active_lp_ctx_) ++active_lp_ctx_->hops; else ++hops_walked;
  }

  /// RNG for loss draws: the armed LP's independent stream during a
  /// window, the shared network stream otherwise.  Loss-free event
  /// workloads never draw, which is what makes LP runs byte-identical to
  /// serial ones; lossy event workloads are deterministic per (plan,
  /// thread count) but not across thread counts.
  [[nodiscard]] Rng& active_rng() { return active_lp_ctx_ ? active_lp_ctx_->rng : rng_; }

  /// Fast-path hop decision shared with event mode: where does `pkt` go
  /// from `at` given FIBs; returns false if unroutable.
  struct HopDecision {
    int ifindex = -1;
    net::Ipv4Address next_hop;
  };
  std::optional<HopDecision> route_at(NodeId at, net::Ipv4Address dst) const;

  /// One link traversal shared by event mode (transmit) and the analytic
  /// walks: decides drops, advances `t` past the queue, and books the probe
  /// bytes into the backlog.  Returns false when the packet is dropped (the
  /// drop is already counted in packets_dropped).
  bool cross_link(DuplexLink& l, NodeId from, std::uint32_t size_bytes, TimePoint& t);

  /// trace_forward into a caller-owned hop buffer (the probe hot path
  /// reuses one scratch vector instead of allocating per probe).
  void trace_forward_into(NodeId from, const net::Packet& pkt_in, bool& dropped, net::Packet* out,
                          std::vector<PathHop>& hops);

  std::vector<PathHop> scratch_hops_;  ///< reused by probe()
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<DuplexLink>> links_;
  std::unordered_map<net::Ipv4Address, NodeId> addr_owner_;
  Simulator sim_;
  Rng rng_{0xabcdef12345ULL};

  // LP attachment (null when running serially).  The map and contexts are
  // owned by the LpScheduler; the thread-local is armed per worker thread
  // for the duration of one window.  constinit keeps the access wrapper-free
  // (no dynamic-init guard on the hot counter path).
  const std::vector<int>* lp_of_node_ = nullptr;
  std::vector<LpContext>* lp_ctxs_ = nullptr;
  static constinit thread_local LpContext* active_lp_ctx_;
};

}  // namespace ixp::sim
