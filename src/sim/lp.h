// Conservative logical-process (LP) parallel execution of one Network.
//
// The network is cut into islands along its long-haul links: any link
// whose minimum propagation delay stays under the island threshold keeps
// its endpoints in the same island (an IXP fabric plus the routers and
// hosts hanging off it), and islands are packed onto the requested number
// of logical processes by greedy LPT using estimate_campaign_cost-style
// weights.  Each LP owns a private Simulator; the links that span two LPs
// (the "cut") define the lookahead
//
//     L = min over cut links of min_prop_delay()
//
// -- every cross-LP packet needs at least L of simulated time to arrive,
// because its total delay is queuing + transmission + propagation + extra
// >= propagation >= L, and scheduled delay steps are already folded into
// min_prop_delay().
//
// Execution proceeds in global barrier windows (YAWNS-style): all LPs run
// their events in [W, W+L) in parallel, then exchange the cross-LP
// packets buffered in per-pair outboxes.  A window's messages arrive at
// >= W+L, i.e. never inside the window that produced them, so the
// exchange at the barrier can never violate causality -- which the
// IXP_PARANOID check in Simulator::schedule_at enforces at runtime.
// Window starts idle-jump to the earliest pending event across all LPs,
// so an idle substrate costs windows proportional to events, not to
// simulated time.  One window is one "null-message round" in the stats.
//
// Determinism contract: merged inboxes are sorted by (arrival time, send
// time, source LP, per-source sequence) before being scheduled into the
// destination simulator.  This reproduces the serial global ordering --
// and therefore byte-identical RTT bit patterns, counters, and executed
// counts for ANY thread count -- whenever no two packets from *different*
// source LPs collide on both arrival and send instants at the same
// destination LP, and the workload draws no loss randomness (loss draws
// come from per-LP RNG streams).  Campaign/bench workloads stagger their
// send times with unique per-host offsets, which eliminates such ties by
// construction; test_parallel_sim pins the guarantee for 1..16
// partitions, with and without fault plans.
//
// Degenerate partitions fall back safely: a zero lookahead (some cut link
// with zero propagation delay) collapses to a single LP, and a network
// with no cut links at all (fully disconnected islands) runs every LP to
// the horizon in a single window.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"
#include "util/thread_pool.h"
#include "util/time.h"

namespace ixp::obs {
class Registry;
}

namespace ixp::sim {

/// How a network is split into logical processes.
struct LpPartition {
  std::vector<int> lp_of_node;  ///< node id -> LP index
  int count = 1;                ///< number of LPs (1 = serial fallback)
  /// Minimum propagation delay over the cut links; Duration::max() when
  /// the cut is empty (disconnected partitions, one window to horizon).
  Duration lookahead = Duration::max();
  std::vector<double> weights;  ///< per-LP packed cost estimate
  std::vector<int> cut_links;   ///< link ids spanning two LPs
};

/// Splits `net` into at most `parts` logical processes.  Deterministic:
/// islands are discovered in node-id order and packed largest-first with
/// index tie-breaks.  Collapses to a single LP when `parts` <= 1, when
/// the topology is one island, or when the cut lookahead would be zero.
LpPartition partition_network(const Network& net, int parts);

/// Progress counters for one LP run; scraped into the observability
/// registry by publish_lp_stats().  `barrier_wait_seconds` is host time
/// (threads idling at window barriers) and is the only non-deterministic
/// field -- it never feeds back into simulation results.
struct LpRunStats {
  int lps = 1;
  Duration lookahead{};
  std::uint64_t windows = 0;         ///< barrier windows == null-message rounds
  std::uint64_t cross_messages = 0;  ///< packets exchanged across LPs
  std::vector<std::uint64_t> events_per_lp;
  std::vector<std::uint64_t> scheduled_per_lp;
  Duration sim_horizon{};            ///< simulated time covered by run_until
  double barrier_wait_seconds = 0.0;

  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const std::uint64_t e : events_per_lp) n += e;
    return n;
  }
  [[nodiscard]] std::uint64_t total_scheduled() const {
    std::uint64_t n = 0;
    for (const std::uint64_t s : scheduled_per_lp) n += s;
    return n;
  }
};

/// Resolves a --sim-threads request: positive values pass through, 0
/// falls back to the IXP_SIM_THREADS env knob, and an unset knob means 1
/// (serial).  Always >= 1.
int resolve_sim_threads(int requested);

/// Drives one Network's event workload across a partition.  Construction
/// partitions and attaches; while attached, Network::lp_schedule() seeds
/// workload events into the owning LP's simulator and every internal
/// scheduling site follows the armed worker context.  Destruction
/// detaches.  Counters are merged back into the Network's public totals
/// (in LP-index order) at the end of every run_until().
class LpScheduler {
 public:
  LpScheduler(Network& net, int threads);
  ~LpScheduler();

  LpScheduler(const LpScheduler&) = delete;
  LpScheduler& operator=(const LpScheduler&) = delete;

  /// Runs every LP to `horizon` (inclusive, matching the serial
  /// Simulator::run_until semantics) through barrier windows, then
  /// advances the Network's shared clock to `horizon`.
  void run_until(TimePoint horizon);

  [[nodiscard]] const LpPartition& partition() const { return part_; }
  [[nodiscard]] const LpRunStats& stats() const { return stats_; }

 private:
  /// Runs one window on every LP in parallel ([.., end) exclusive, or
  /// [.., end] inclusive for the final pass), then exchanges outboxes.
  void window(TimePoint end, bool inclusive);
  /// Merges all outboxes into their destination simulators in (arrival,
  /// sent, source LP, sequence) order.
  void exchange();
  /// Adds the per-LP counter shadows into the Network's public totals.
  void flush_counters();

  Network& net_;
  LpPartition part_;
  std::vector<LpContext> ctxs_;
  ThreadPool pool_;
  LpRunStats stats_;
  std::vector<LpMessage> staging_;  ///< reused merge buffer
  std::vector<double> busy_;        ///< per-LP busy seconds, current window
};

/// Publishes an LP run's counters into `reg`: total windows (null-message
/// rounds), cross-LP messages, per-LP executed/scheduled event counters
/// (labelled lp="N"), a per-LP simulated-time span, and the barrier-wait
/// gauge.  Campaign metrics exports never include these unless an LP run
/// actually happened, keeping metrics bytes identical across
/// --sim-threads for analytic workloads.
void publish_lp_stats(obs::Registry& reg, const LpRunStats& stats);

}  // namespace ixp::sim
