// FaultInjector: expands a declarative FaultPlan (util/fault_plan.h) into
// concrete fault windows over one campaign's calendar, and answers the two
// questions the TSLP driver asks on its hot path — "is the VP dark right
// now?" and "does this probe die in a loss burst?".
//
// Determinism contract: all randomness is drawn in the constructor (window
// placement) or from a dedicated member stream (per-probe burst losses), in
// a fixed category order, from Rngs forked off the single injector seed.
// Two injectors built from the same (plan, seed, start, end) therefore
// produce identical windows and identical per-probe draw sequences, which
// is what makes `afixp chaos --seed S --plan P` byte-reproducible.
//
// Topology-touching faults (link flaps, ICMP tightening, silent drops,
// reroutes) are not applied here: analysis/scenario.cc's
// `attach_fault_plan` turns this injector's windows into timeline events
// against a live ScenarioRuntime, and bumps `counters().timeline_faults`
// each time one fires.
#pragma once

#include <cstdint>
#include <vector>

#include "util/fault_plan.h"
#include "util/rng.h"
#include "util/time.h"

namespace ixp::sim {

/// Half-open activity window of one fault instance.
struct FaultWindow {
  TimePoint begin;
  TimePoint end;
  [[nodiscard]] bool contains(TimePoint t) const { return begin <= t && t < end; }
};

/// What actually happened during a campaign, for fleet metrics and the
/// chaos report.
struct FaultCounters {
  std::uint64_t timeline_faults = 0;    ///< topology fault events that fired
  std::uint64_t probes_suppressed = 0;  ///< probes not sent (outage/burst)
  std::uint64_t outage_rounds = 0;      ///< whole rounds lost to VP outages
};

class FaultInjector {
 public:
  /// Expands every window spec in `plan` against [start, end).  The plan is
  /// copied so the injector owns its schedule.
  FaultInjector(FaultPlan plan, std::uint64_t seed, TimePoint start, TimePoint end);

  /// True while any VP-outage window is active: the driver skips the whole
  /// probing round.
  [[nodiscard]] bool vp_down(TimePoint t) const;

  /// Per-probe loss-burst gate.  Draws from the burst stream only while a
  /// burst window is active, so quiet periods consume no randomness.
  bool lose_probe(TimePoint t);

  void note_suppressed(std::uint64_t n) { counters_.probes_suppressed += n; }
  void note_outage_round() { ++counters_.outage_rounds; }
  void note_timeline_fault() { ++counters_.timeline_faults; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  /// Expanded windows, one vector per spec, index-aligned with the plan's
  /// category vectors.  Used by attach_fault_plan to emit timeline events.
  [[nodiscard]] const std::vector<FaultWindow>& outage_windows() const {
    return outage_windows_;
  }
  [[nodiscard]] const std::vector<std::vector<FaultWindow>>& flap_windows() const {
    return flap_windows_;
  }
  [[nodiscard]] const std::vector<std::vector<FaultWindow>>& icmp_windows() const {
    return icmp_windows_;
  }
  [[nodiscard]] const std::vector<std::vector<FaultWindow>>& silent_windows() const {
    return silent_windows_;
  }
  [[nodiscard]] const std::vector<std::vector<FaultWindow>>& reroute_windows() const {
    return reroute_windows_;
  }
  [[nodiscard]] const std::vector<std::vector<FaultWindow>>& burst_windows() const {
    return burst_windows_;
  }
  [[nodiscard]] const std::vector<std::vector<FaultWindow>>& facility_windows() const {
    return facility_windows_;
  }

 private:
  FaultPlan plan_;
  std::vector<FaultWindow> outage_windows_;  // all outage specs merged
  std::vector<std::vector<FaultWindow>> flap_windows_;
  std::vector<std::vector<FaultWindow>> icmp_windows_;
  std::vector<std::vector<FaultWindow>> silent_windows_;
  std::vector<std::vector<FaultWindow>> reroute_windows_;
  std::vector<std::vector<FaultWindow>> burst_windows_;
  std::vector<std::vector<FaultWindow>> facility_windows_;
  Rng burst_rng_;
  FaultCounters counters_;
};

}  // namespace ixp::sim
