#include "topo/gen.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace ixp::topo {
namespace {

enum class Kind { kString, kU64, kInt, kDouble };

// The single source of truth for the spec grammar.  tools/check_docs.sh
// greps this table and cross-checks every key against docs/SCALING.md in
// both directions, the same way env knobs are linted against README.md --
// add a key here and the docs lint fails until SCALING.md documents it.
struct KeyDef {
  const char* key;
  Kind kind;
  std::string TopoSpec::* s = nullptr;
  std::uint64_t TopoSpec::* u = nullptr;
  int TopoSpec::* i = nullptr;
  double TopoSpec::* d = nullptr;
};

const KeyDef kSpecKeys[] = {
    {"name", Kind::kString, &TopoSpec::name},
    {"seed", Kind::kU64, nullptr, &TopoSpec::seed},
    {"ixps", Kind::kInt, nullptr, nullptr, &TopoSpec::ixps},
    {"days", Kind::kInt, nullptr, nullptr, &TopoSpec::days},
    {"snapshot.days", Kind::kInt, nullptr, nullptr, &TopoSpec::snapshot_days},
    {"regions", Kind::kInt, nullptr, nullptr, &TopoSpec::regions},
    {"members.dist", Kind::kString, &TopoSpec::members_dist},
    {"members.mean", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::members_mean},
    {"members.min", Kind::kInt, nullptr, nullptr, &TopoSpec::members_min},
    {"members.max", Kind::kInt, nullptr, nullptr, &TopoSpec::members_max},
    {"multi.router.fraction", Kind::kDouble, nullptr, nullptr, nullptr,
     &TopoSpec::multi_router_fraction},
    {"ptp.fraction", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::ptp_fraction},
    {"transit.depth", Kind::kInt, nullptr, nullptr, &TopoSpec::transit_depth},
    {"rtt.fabric.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::rtt_fabric_ms},
    {"rtt.metro.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::rtt_metro_ms},
    {"rtt.region.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::rtt_region_ms},
    {"rtt.continent.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::rtt_continent_ms},
    {"capacity.min.mbps", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::capacity_min_mbps},
    {"capacity.max.mbps", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::capacity_max_mbps},
    {"congested.fraction", Kind::kDouble, nullptr, nullptr, nullptr,
     &TopoSpec::congested_fraction},
    {"congested.aw.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::congested_aw_ms},
    {"congested.dtud.hours", Kind::kDouble, nullptr, nullptr, nullptr,
     &TopoSpec::congested_dtud_hours},
    {"noise.fraction", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::noise_fraction},
    {"silent.fraction", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::silent_fraction},
    {"vp.tail.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::vp_tail_ms},
    {"vp.tail.jitter", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::vp_tail_jitter},
    {"remote.fraction", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::remote_fraction},
    {"rtt.remote.ms", Kind::kDouble, nullptr, nullptr, nullptr, &TopoSpec::rtt_remote_ms},
    {"facilities", Kind::kInt, nullptr, nullptr, &TopoSpec::facilities},
};

const KeyDef* find_key(std::string_view key) {
  for (const KeyDef& def : kSpecKeys) {
    if (key == def.key) return &def;
  }
  return nullptr;
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  bool neg = false;
  if (!s.empty() && s.front() == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  std::uint64_t u = 0;
  if (!parse_u64(s, u)) return false;
  out = neg ? -static_cast<std::int64_t>(u) : static_cast<std::int64_t>(u);
  return true;
}

std::string format_double(double v) {
  // Shortest form that parses back exactly enough for spec round-trips.
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

bool fraction(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

std::optional<TopoSpec> parse_topo_spec(const std::string& text, std::string* error) {
  TopoSpec spec;
  int lineno = 0;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line(raw);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = strformat("line %d: expected 'key = value'", lineno);
      return std::nullopt;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    const KeyDef* def = find_key(key);
    if (def == nullptr) {
      if (error) {
        *error = strformat("line %d: unknown spec key '%.*s'", lineno,
                           static_cast<int>(key.size()), key.data());
      }
      return std::nullopt;
    }
    bool ok = true;
    switch (def->kind) {
      case Kind::kString:
        spec.*(def->s) = std::string(value);
        break;
      case Kind::kU64: {
        std::uint64_t u = 0;
        ok = parse_u64(value, u);
        if (ok) spec.*(def->u) = u;
        break;
      }
      case Kind::kInt: {
        std::int64_t i = 0;
        ok = parse_i64(value, i);
        if (ok) spec.*(def->i) = static_cast<int>(i);
        break;
      }
      case Kind::kDouble: {
        double d = 0.0;
        ok = parse_double(value, d);
        if (ok) spec.*(def->d) = d;
        break;
      }
    }
    if (!ok) {
      if (error) {
        *error = strformat("line %d: bad value for '%s': '%.*s'", lineno, def->key,
                           static_cast<int>(value.size()), value.data());
      }
      return std::nullopt;
    }
  }
  if (const std::string msg = validate_topo_spec(spec); !msg.empty()) {
    if (error) *error = msg;
    return std::nullopt;
  }
  return spec;
}

std::optional<TopoSpec> load_topo_spec(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot read spec file: " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_topo_spec(buf.str(), error);
}

std::string topo_spec_to_string(const TopoSpec& spec) {
  std::string out;
  for (const KeyDef& def : kSpecKeys) {
    out += def.key;
    out += " = ";
    switch (def.kind) {
      case Kind::kString:
        out += spec.*(def.s);
        break;
      case Kind::kU64:
        out += strformat("%llu", static_cast<unsigned long long>(spec.*(def.u)));
        break;
      case Kind::kInt:
        out += strformat("%d", spec.*(def.i));
        break;
      case Kind::kDouble:
        out += format_double(spec.*(def.d));
        break;
    }
    out += '\n';
  }
  return out;
}

std::string validate_topo_spec(const TopoSpec& spec) {
  if (spec.name.empty()) return "spec: name must not be empty";
  if (spec.ixps < 1) return "spec: ixps must be >= 1";
  if (spec.days < 1) return "spec: days must be >= 1";
  if (spec.snapshot_days < 0) return "spec: snapshot.days must be >= 0";
  if (spec.regions < 1) return "spec: regions must be >= 1";
  if (spec.members_dist != "fixed" && spec.members_dist != "uniform" &&
      spec.members_dist != "pareto") {
    return "spec: members.dist must be fixed, uniform, or pareto";
  }
  if (spec.members_min < 1) return "spec: members.min must be >= 1";
  if (spec.members_max < spec.members_min) return "spec: members.max < members.min";
  if (spec.members_mean < static_cast<double>(spec.members_min)) {
    return "spec: members.mean below members.min";
  }
  if (!fraction(spec.multi_router_fraction)) return "spec: multi.router.fraction not in [0,1]";
  if (!fraction(spec.ptp_fraction)) return "spec: ptp.fraction not in [0,1]";
  if (spec.transit_depth < 1 || spec.transit_depth > 8) {
    return "spec: transit.depth must be in [1,8]";
  }
  if (spec.rtt_fabric_ms <= 0 || spec.rtt_metro_ms <= 0 || spec.rtt_region_ms <= 0 ||
      spec.rtt_continent_ms <= 0) {
    return "spec: rtt.*.ms must be positive";
  }
  if (spec.capacity_min_mbps <= 0 || spec.capacity_max_mbps < spec.capacity_min_mbps) {
    return "spec: capacity range must satisfy 0 < min <= max";
  }
  if (!fraction(spec.congested_fraction)) return "spec: congested.fraction not in [0,1]";
  if (spec.congested_aw_ms <= 0) return "spec: congested.aw.ms must be positive";
  if (spec.congested_dtud_hours <= 0 || spec.congested_dtud_hours > 24) {
    return "spec: congested.dtud.hours must be in (0,24]";
  }
  if (!fraction(spec.noise_fraction)) return "spec: noise.fraction not in [0,1]";
  if (!fraction(spec.silent_fraction)) return "spec: silent.fraction not in [0,1]";
  if (spec.vp_tail_ms < 0) return "spec: vp.tail.ms must be >= 0";
  if (!fraction(spec.vp_tail_jitter)) return "spec: vp.tail.jitter not in [0,1]";
  if (!fraction(spec.remote_fraction)) return "spec: remote.fraction not in [0,1]";
  if (spec.rtt_remote_ms <= 0) return "spec: rtt.remote.ms must be positive";
  if (spec.facilities < 0) return "spec: facilities must be >= 0";
  return {};
}

std::optional<TopoSpec> topo_spec_preset(const std::string& name) {
  TopoSpec spec;
  spec.name = name;
  if (name == "paper6") {
    // The paper's scale: six exchanges, mostly small member counts, one
    // snapshot cadence matching Table 2's quarterly rhythm.
    spec.ixps = 6;
    spec.days = 28;
    spec.members_dist = "uniform";
    spec.members_min = 4;
    spec.members_max = 24;
    spec.members_mean = 14.0;
    spec.seed = 6;
    return spec;
  }
  if (name == "regional50") {
    // A regional substrate: every exchange of one sub-region, heavy-tailed
    // membership, two weeks of probing.
    spec.ixps = 50;
    spec.days = 14;
    spec.members_dist = "pareto";
    spec.members_mean = 12.0;
    spec.members_min = 3;
    spec.members_max = 150;
    spec.regions = 3;
    spec.seed = 50;
    return spec;
  }
  if (name == "continent100") {
    // Continent-scale: a hundred exchanges across five regions with
    // NAPAfrica-style heavy hitters in the tail and a deeper transit
    // hierarchy; one week at full cadence.
    spec.ixps = 100;
    spec.days = 7;
    spec.members_dist = "pareto";
    spec.members_mean = 18.0;
    spec.members_min = 3;
    spec.members_max = 400;
    spec.regions = 5;
    spec.transit_depth = 2;
    spec.seed = 100;
    return spec;
  }
  if (name == "rixp16") {
    // Remote-peering exchange ("Poor Peering: a reflexion about a RIXP",
    // PAPERS.md): the VP reaches the fabric over a ~35 ms jittery tail and
    // a third of the members peer remotely, so the near-segment baseline
    // the TSLP differential rests on is itself long and noisy.
    spec.ixps = 1;
    spec.days = 28;
    spec.members_dist = "uniform";
    spec.members_min = 10;
    spec.members_max = 22;
    spec.members_mean = 16.0;
    spec.vp_tail_ms = 35.0;
    spec.vp_tail_jitter = 0.25;
    spec.remote_fraction = 0.35;
    spec.rtt_remote_ms = 60.0;
    spec.seed = 161;
    return spec;
  }
  if (name == "facility8") {
    // Colocation-facility substrate: one exchange whose members are homed
    // at three facilities, no scripted congestion — the only disruptions
    // are the ones a facility fault plan injects, which is what makes the
    // facility detector's precision/recall against the "facility" plan a
    // clean measurement.
    spec.ixps = 1;
    spec.days = 28;
    spec.members_dist = "uniform";
    spec.members_min = 9;
    spec.members_max = 15;
    spec.members_mean = 12.0;
    spec.facilities = 3;
    spec.congested_fraction = 0.0;
    spec.noise_fraction = 0.0;
    spec.silent_fraction = 0.0;
    spec.seed = 88;
    return spec;
  }
  return std::nullopt;
}

std::vector<std::string> topo_spec_preset_names() {
  return {"paper6", "regional50", "continent100", "rixp16", "facility8"};
}

}  // namespace ixp::topo
