// Civil-date helpers pinned to the paper's campaign.
//
// The measurement campaign ran 22/02/2016 (a Monday) to 27/03/2017.  The
// simulator's epoch (t = 0) is 22/02/2016 00:00, which makes day-of-week
// arithmetic in util/time.h line up with the real calendar: day 0 is a
// Monday.  date() converts a dd/mm/yyyy from the paper into a campaign
// TimePoint so scenario timelines can quote the paper's dates verbatim.
#pragma once

#include "util/time.h"

namespace ixp::topo {

/// Days from the civil epoch 1970-01-01 (Howard Hinnant's algorithm).
constexpr std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
                       static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Campaign epoch: 22 February 2016 (Monday).
inline constexpr std::int64_t kEpochCivilDays = days_from_civil(2016, 2, 22);

/// Campaign time for a calendar date (00:00 local).
constexpr TimePoint date(int day, int month, int year) {
  return TimePoint(kDay * (days_from_civil(year, month, day) - kEpochCivilDays));
}

/// Campaign end used throughout the paper: 27/03/2017.
inline constexpr TimePoint kCampaignEnd = date(27, 3, 2017);

static_assert(date(22, 2, 2016).ns() == 0, "epoch must be 22/02/2016");
static_assert((date(23, 2, 2016) - date(22, 2, 2016)) == kDay, "day arithmetic");

}  // namespace ixp::topo
