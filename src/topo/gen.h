// Declarative topology specification for the continent-scale substrate.
//
// The paper's six vantage points are hand-written scenarios
// (analysis/africa.cc).  Everything beyond that scale is generated: a
// TopoSpec describes a whole IXP substrate -- how many exchanges, how the
// members-per-IXP distribution looks, how deep the transit hierarchy goes,
// and what the RTT geography is -- and the generator in
// analysis/substrate.h expands it deterministically into one VpSpec per
// IXP, which the existing scenario builder, campaign loop, and fleet run
// unchanged.  Any scale from the paper's 6 VPs to hundreds of IXPs and
// ~10^6 monitored links is one spec file away (see docs/SCALING.md for
// the format reference and worked examples).
//
// Spec files are `key = value` lines; `#` starts a comment.  The full key
// list lives in the kSpecKeys table in gen.cc and is linted against
// docs/SCALING.md by tools/check_docs.sh, the same way env knobs are.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ixp::topo {

/// Parameterized substrate description.  Defaults describe a small
/// regional exchange mix; presets below cover the documented tiers.
struct TopoSpec {
  std::string name = "custom";  ///< label stamped into generated entity names
  std::uint64_t seed = 42;      ///< master seed; all draws derive from it
  int ixps = 6;                 ///< number of exchanges (one VP each)
  int days = 28;                ///< campaign length per VP
  int snapshot_days = 0;        ///< mid-campaign snapshot cadence (0 = end only)
  int regions = 5;              ///< geographic regions IXPs are spread over

  /// Members-per-IXP distribution: "fixed", "uniform", or "pareto"
  /// (heavy-tailed, like the real substrate: JINX/NAPAfrica-style large
  /// exchanges coexist with 3-member country IXPs).
  std::string members_dist = "pareto";
  double members_mean = 12.0;  ///< mean members per IXP (fixed/pareto)
  int members_min = 3;         ///< clamp / uniform lower bound
  int members_max = 400;       ///< clamp / uniform upper bound

  double multi_router_fraction = 0.15;  ///< members with 2-3 LAN routers
  double ptp_fraction = 0.05;           ///< members adding a private interconnect
  int transit_depth = 1;  ///< provider chain above each VP (1 = regional only)

  // RTT geography: one-way propagation delay by how far a member's edge
  // router sits from the exchange.
  double rtt_fabric_ms = 0.15;    ///< same-building port (paper default)
  double rtt_metro_ms = 1.0;      ///< metro backhaul into the exchange
  double rtt_region_ms = 8.0;     ///< neighboring-country member
  double rtt_continent_ms = 35.0; ///< cross-continent remote peering

  double capacity_min_mbps = 100.0;    ///< member port capacity, log-uniform
  double capacity_max_mbps = 10000.0;  ///< upper bound of the capacity draw

  // Behaviour mix (fractions of members, each drawn independently).
  double congested_fraction = 0.08;  ///< members with an undersized port
  double congested_aw_ms = 15.0;     ///< buffer depth of congested ports
  double congested_dtud_hours = 5.0; ///< daily congested hours at those ports
  double noise_fraction = 0.05;      ///< members with route-change RTT noise
  double silent_fraction = 0.04;     ///< members whose routers drop ICMP

  // Remote-peering (RIXP) knobs.  All default off so pre-existing presets
  // draw the exact same random streams as before; see docs/SCENARIOS.md.
  double vp_tail_ms = 0.0;      ///< one-way VP↔fabric tail (0 = in-building)
  double vp_tail_jitter = 0.0;  ///< cross-load jitter fraction on the VP port
  double remote_fraction = 0.0; ///< members peering remotely over long tails
  double rtt_remote_ms = 60.0;  ///< one-way tail of remotely peered members

  /// Colocation facilities per IXP (0 = members unassigned; facility
  /// faults and the facility detector need >= 1).
  int facilities = 0;
};

/// Parses `key = value` spec text.  Returns nullopt and fills `*error`
/// (unknown key, malformed value, failed validation) on failure.
std::optional<TopoSpec> parse_topo_spec(const std::string& text, std::string* error);

/// Reads and parses a spec file from disk.
std::optional<TopoSpec> load_topo_spec(const std::string& path, std::string* error);

/// Serializes a spec back to canonical `key = value` text (every key,
/// table order).  parse_topo_spec(topo_spec_to_string(s)) == s.
std::string topo_spec_to_string(const TopoSpec& spec);

/// Returns a non-empty message when the spec is out of range (negative
/// counts, fractions outside [0,1], min > max, unknown members.dist).
std::string validate_topo_spec(const TopoSpec& spec);

/// Named presets for the documented scale tiers ("paper6", "regional50",
/// "continent100") and the scenario-diversity substrates ("rixp16",
/// "facility8"; see docs/SCENARIOS.md).  Returns nullopt for other names.
std::optional<TopoSpec> topo_spec_preset(const std::string& name);
std::vector<std::string> topo_spec_preset_names();

}  // namespace ixp::topo
