#include "topo/topology.h"

#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"

namespace ixp::topo {

// ---------------------------------------------------------------------------
// AddressAllocator

net::Ipv4Prefix AddressAllocator::next_as_block() {
  // AfriNIC-style pool: /22 blocks carved sequentially from 41.0.0.0/8 and
  // then 102.0.0.0/8 (synthetic allocations; see DESIGN.md).
  constexpr std::uint32_t kBlocksPer8 = 1u << 14;  // /22s inside a /8
  const std::uint32_t idx = as_block_index_++;
  const std::uint32_t base = (idx < kBlocksPer8) ? (41u << 24) : (102u << 24);
  const std::uint32_t within = idx % kBlocksPer8;
  return net::Ipv4Prefix(net::Ipv4Address(base + (within << 10)), 22);
}

net::Ipv4Prefix AddressAllocator::next_ptp_subnet() {
  // /30s carved from 154.64.0.0/10.
  const std::uint32_t idx = ptp_index_++;
  return net::Ipv4Prefix(net::Ipv4Address((154u << 24) | (64u << 16) | (idx << 2)), 30);
}

net::Ipv4Address AddressAllocator::next_lan_address(const net::Ipv4Prefix& lan) {
  auto& next = lan_next_[lan];
  ++next;  // skip the network address; first assignment is .1
  if (next >= lan.size() - 1) throw std::runtime_error("IXP LAN exhausted: " + lan.to_string());
  return lan.at(next);
}

// ---------------------------------------------------------------------------
// Topology

AsInfo& Topology::add_as(AsInfo info) {
  const Asn asn = info.asn;
  auto [it, inserted] = ases_.emplace(asn, std::move(info));
  if (!inserted) throw std::runtime_error(strformat("duplicate AS%u", asn));
  return it->second;
}

const AsInfo* Topology::find_as(Asn asn) const {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : &it->second;
}

AsInfo* Topology::find_as(Asn asn) {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : &it->second;
}

IxpInfo& Topology::add_ixp(IxpInfo info) {
  ixps_.emplace_back(info.name, std::move(info));
  return ixps_.back().second;
}

const IxpInfo* Topology::find_ixp(const std::string& name) const {
  for (const auto& [n, info] : ixps_) {
    if (n == name) return &info;
  }
  return nullptr;
}

sim::NodeId Topology::add_router(Asn asn, const std::string& tag, sim::RouterConfig cfg) {
  cfg.owner_asn = asn;
  const AsInfo* info = find_as(asn);
  const std::string name = (info ? info->name : strformat("AS%u", asn)) + "." + tag;
  sim::Router& r = net_.add_router(name, std::move(cfg));
  as_routers_[asn].push_back(r.id());
  router_owner_[r.id()] = asn;
  return r.id();
}

sim::NodeId Topology::add_host(Asn asn, const std::string& tag, net::Ipv4Address addr,
                               sim::NodeId router, const net::Ipv4Prefix& subnet) {
  const AsInfo* info = find_as(asn);
  const std::string name = (info ? info->name : strformat("AS%u", asn)) + ".host." + tag;
  sim::Host& h = net_.add_host(name);
  // LAN between host and its gateway: generous capacity so the access hop
  // never masks interdomain queueing.
  sim::LinkConfig lan;
  lan.capacity_bps = 10e9;
  lan.buffer_bytes = 4e6;
  lan.prop_delay = milliseconds(0.05);
  // Gateway side uses the subnet's first address.
  const net::Ipv4Address gw = subnet.at(1) == addr ? subnet.at(2) : subnet.at(1);
  net_.connect(h.id(), addr, router, gw, lan, subnet);
  h.set_gateway(0, gw);
  router_owner_[h.id()] = asn;
  return h.id();
}

void Topology::announce(Asn asn, const net::Ipv4Prefix& prefix, sim::NodeId router) {
  announcements_.push_back({prefix, asn, router});
  if (AsInfo* info = find_as(asn)) info->prefixes.push_back(prefix);
}

void Topology::add_as_relationship(Asn a, Asn b, Relationship rel) {
  as_links_.push_back({a, b, rel});
}

sim::NodeId Topology::ixp_fabric(const std::string& ixp_name) {
  const auto it = fabric_.find(ixp_name);
  if (it != fabric_.end()) return it->second;
  sim::L2Switch& sw = net_.add_switch(ixp_name + ".fabric");
  fabric_[ixp_name] = sw.id();
  return sw.id();
}

int Topology::attach_to_ixp(sim::NodeId router, const std::string& ixp_name, const PortConfig& port,
                            net::Ipv4Address* lan_addr_out) {
  const IxpInfo* ixp = find_ixp(ixp_name);
  if (!ixp) throw std::runtime_error("unknown IXP " + ixp_name);
  const sim::NodeId fab = ixp_fabric(ixp_name);
  const net::Ipv4Address lan_addr = alloc_.next_lan_address(ixp->peering_prefix);

  sim::LinkConfig cfg;
  cfg.capacity_bps = port.capacity_bps;
  cfg.buffer_bytes = port.buffer_bytes;
  cfg.prop_delay = port.prop_delay;
  cfg.cross_ab = port.egress_cross;   // router -> fabric
  cfg.cross_ba = port.ingress_cross;  // fabric -> router
  cfg.base_loss = port.base_loss;
  const int link_id =
      net_.connect(router, lan_addr, fab, net::Ipv4Address(), cfg, ixp->peering_prefix);

  if (lan_addr_out) *lan_addr_out = lan_addr;
  lan_members_[ixp_name].emplace_back(router, lan_addr);
  lan_addr_[router][ixp_name] = lan_addr;
  port_link_[router][ixp_name] = link_id;
  return link_id;
}

int Topology::connect_routers(sim::NodeId a, sim::NodeId b, const sim::LinkConfig& cfg) {
  const net::Ipv4Prefix subnet = alloc_.next_ptp_subnet();
  infra_delegations_.emplace_back(subnet, router_owner(a));
  return net_.connect(a, subnet.at(1), b, subnet.at(2), cfg, subnet);
}

std::vector<InterdomainLinkTruth> Topology::interdomain_links_of(Asn vp_asn) const {
  std::vector<InterdomainLinkTruth> out;
  const auto rit = as_routers_.find(vp_asn);
  if (rit == as_routers_.end()) return out;

  for (const sim::NodeId rid : rit->second) {
    const sim::Node& r = net_.node(rid);
    for (const auto& ifc : r.interfaces()) {
      if (ifc.link_id < 0) continue;
      const auto& link = const_cast<sim::Network&>(net_).link(ifc.link_id);
      if (!link.is_up()) continue;
      const sim::NodeId peer = link.other(rid);
      const auto oit = router_owner_.find(peer);
      if (oit != router_owner_.end() && oit->second != vp_asn) {
        // Direct point-to-point interdomain link.
        InterdomainLinkTruth t;
        t.near_ip = ifc.addr;
        const int pif = link.ifindex_at(peer);
        t.far_ip = net_.node(peer).interfaces()[static_cast<std::size_t>(pif)].addr;
        t.near_asn = vp_asn;
        t.far_asn = oit->second;
        t.link_id = ifc.link_id;
        if (const IxpInfo* ixp = ixp_containing(t.near_ip)) {
          t.at_ixp = true;
          t.ixp_name = ixp->name;
        }
        out.push_back(t);
        continue;
      }
      // Link into an IXP fabric: every *other* member of that LAN is an
      // IP-level adjacency of this router.
      for (const auto& [ixp_name, members] : lan_members_) {
        const auto fit = fabric_.find(ixp_name);
        if (fit == fabric_.end() || fit->second != peer) continue;
        const auto my_lan = lan_addr_.find(rid);
        if (my_lan == lan_addr_.end()) continue;
        const auto my_addr = my_lan->second.find(ixp_name);
        if (my_addr == my_lan->second.end()) continue;
        for (const auto& [member, member_addr] : members) {
          if (member == rid) continue;
          const auto mo = router_owner_.find(member);
          if (mo == router_owner_.end() || mo->second == vp_asn) continue;
          // Skip members whose port is down (they left the IXP).
          const auto pl = port_link_.find(member);
          if (pl != port_link_.end()) {
            const auto plink = pl->second.find(ixp_name);
            if (plink != pl->second.end() &&
                !const_cast<sim::Network&>(net_).link(plink->second).is_up()) {
              continue;
            }
          }
          InterdomainLinkTruth t;
          t.near_ip = my_addr->second;
          t.far_ip = member_addr;
          t.near_asn = vp_asn;
          t.far_asn = mo->second;
          t.link_id = (pl != port_link_.end()) ? pl->second.at(ixp_name) : -1;
          t.at_ixp = true;
          t.ixp_name = ixp_name;
          out.push_back(t);
        }
      }
    }
  }
  return out;
}

std::vector<std::pair<net::Ipv4Address, Asn>> Topology::lan_participants(
    const std::string& ixp) const {
  std::vector<std::pair<net::Ipv4Address, Asn>> out;
  const auto it = lan_members_.find(ixp);
  if (it == lan_members_.end()) return out;
  for (const auto& [router, addr] : it->second) {
    const auto pl = port_link_.find(router);
    if (pl != port_link_.end()) {
      const auto plink = pl->second.find(ixp);
      if (plink != pl->second.end() &&
          !const_cast<sim::Network&>(net_).link(plink->second).is_up()) {
        continue;
      }
    }
    const auto oit = router_owner_.find(router);
    if (oit != router_owner_.end()) out.emplace_back(addr, oit->second);
  }
  return out;
}

Asn Topology::owner_asn(net::Ipv4Address addr) const {
  const sim::NodeId node = net_.find_owner(addr);
  if (node != sim::kInvalidNode) {
    const auto it = router_owner_.find(node);
    if (it != router_owner_.end()) return it->second;
  }
  // Fall back to originated prefixes (longest match wins).
  Asn best = 0;
  int best_len = -1;
  for (const auto& a : announcements_) {
    if (a.prefix.contains(addr) && a.prefix.length() > best_len) {
      best = a.asn;
      best_len = a.prefix.length();
    }
  }
  return best;
}

const IxpInfo* Topology::ixp_containing(net::Ipv4Address addr) const {
  for (const auto& [name, info] : ixps_) {
    if (info.peering_prefix.contains(addr) || info.management_prefix.contains(addr)) return &info;
  }
  return nullptr;
}

const std::vector<sim::NodeId>& Topology::routers_of(Asn asn) const {
  static const std::vector<sim::NodeId> kEmpty;
  const auto it = as_routers_.find(asn);
  return it == as_routers_.end() ? kEmpty : it->second;
}

Asn Topology::router_owner(sim::NodeId node) const {
  const auto it = router_owner_.find(node);
  return it == router_owner_.end() ? 0 : it->second;
}

std::optional<net::Ipv4Address> Topology::lan_address_of(sim::NodeId router,
                                                         const std::string& ixp) const {
  const auto it = lan_addr_.find(router);
  if (it == lan_addr_.end()) return std::nullopt;
  const auto jt = it->second.find(ixp);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

}  // namespace ixp::topo
