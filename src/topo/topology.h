// Topology builder: constructs a simulated internetwork plus the metadata
// layer (AS ownership, IXP membership, originated prefixes, ground truth).
//
// The builder places one or more routers per AS, wires IXP peering LANs as
// L2 switch fabrics with per-member port capacities, allocates addresses
// from AfriNIC-style pools, and records ground-truth interdomain links that
// the bdrmap-lite inference is later scored against.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "topo/entities.h"

namespace ixp::topo {

/// Hands out subnets and host addresses from fixed pools, deterministically.
class AddressAllocator {
 public:
  /// Next /22 for an AS from the AfriNIC-style pool.
  net::Ipv4Prefix next_as_block();
  /// Next /30 point-to-point subnet.
  net::Ipv4Prefix next_ptp_subnet();
  /// Next host address inside an IXP peering LAN.
  net::Ipv4Address next_lan_address(const net::Ipv4Prefix& lan);

 private:
  std::uint32_t as_block_index_ = 0;
  std::uint32_t ptp_index_ = 0;
  std::unordered_map<net::Ipv4Prefix, std::uint64_t> lan_next_;
};

/// Per-member IXP port provisioning.
struct PortConfig {
  double capacity_bps = 1e9;
  double buffer_bytes = 1e6;
  Duration prop_delay = milliseconds(0.15);
  sim::TrafficProfilePtr egress_cross;   ///< member -> fabric (uploads)
  sim::TrafficProfilePtr ingress_cross;  ///< fabric -> member (downloads)
  double base_loss = 0.0;                ///< floor loss probability
};

class Topology {
 public:
  Topology() = default;

  // ---- Entities -----------------------------------------------------------

  AsInfo& add_as(AsInfo info);
  [[nodiscard]] const AsInfo* find_as(Asn asn) const;
  AsInfo* find_as(Asn asn);

  IxpInfo& add_ixp(IxpInfo info);
  [[nodiscard]] const IxpInfo* find_ixp(const std::string& name) const;

  /// Adds a router owned by `asn`.  `tag` distinguishes multiple routers.
  sim::NodeId add_router(Asn asn, const std::string& tag, sim::RouterConfig cfg = {});

  /// Adds a host inside `asn`, addressed at `addr`, gatewayed at `router`.
  sim::NodeId add_host(Asn asn, const std::string& tag, net::Ipv4Address addr,
                       sim::NodeId router, const net::Ipv4Prefix& subnet);

  /// Declares that `asn` originates `prefix` from `router` (FIB target is
  /// the router itself; probes toward the prefix expire there or reach an
  /// attached host).
  void announce(Asn asn, const net::Ipv4Prefix& prefix, sim::NodeId router);

  /// Records an AS-level relationship (drives Gao-Rexford routing).
  void add_as_relationship(Asn a, Asn b, Relationship rel);

  // ---- Wiring -------------------------------------------------------------

  /// Creates (or returns) the L2 fabric node for an IXP.
  sim::NodeId ixp_fabric(const std::string& ixp_name);

  /// Connects `router` to the IXP fabric, assigning it a peering-LAN
  /// address.  Returns the port link id; the LAN address is stored in
  /// `lan_addr_out` if non-null.
  int attach_to_ixp(sim::NodeId router, const std::string& ixp_name, const PortConfig& port,
                    net::Ipv4Address* lan_addr_out = nullptr);

  /// Point-to-point interconnect between two routers on a fresh /30.  The
  /// subnet is registered as numbered from `a`'s address space (the RIR
  /// delegation record points at `a`'s AS), as providers usually number
  /// interconnects.
  int connect_routers(sim::NodeId a, sim::NodeId b, const sim::LinkConfig& cfg);

  /// Infrastructure subnets (point-to-point /30s) and the AS they are
  /// delegated to; feeds the synthetic RIR delegation files.
  [[nodiscard]] const std::vector<std::pair<net::Ipv4Prefix, Asn>>& infra_delegations() const {
    return infra_delegations_;
  }

  // ---- Ground truth & lookups ----------------------------------------------

  /// Recomputes the interdomain ground-truth table for `vp_asn`: every
  /// router-level link (up at time `t`) between a router of vp_asn and a
  /// router of another AS, including LAN adjacencies across IXP fabrics.
  std::vector<InterdomainLinkTruth> interdomain_links_of(Asn vp_asn) const;

  /// AS owning `addr` per ground truth (router interfaces and announced
  /// prefixes); 0 if unknown.
  [[nodiscard]] Asn owner_asn(net::Ipv4Address addr) const;

  /// True if `addr` is inside any IXP peering or management prefix.
  [[nodiscard]] const IxpInfo* ixp_containing(net::Ipv4Address addr) const;

  [[nodiscard]] const std::vector<AsLink>& as_links() const { return as_links_; }
  [[nodiscard]] const std::vector<std::pair<std::string, IxpInfo>>& ixps() const { return ixps_; }
  [[nodiscard]] const std::unordered_map<Asn, AsInfo>& ases() const { return ases_; }
  struct Announcement {
    net::Ipv4Prefix prefix;
    Asn asn = 0;
    sim::NodeId router = sim::kInvalidNode;  ///< router that originates it
  };
  [[nodiscard]] const std::vector<Announcement>& announcements() const { return announcements_; }
  [[nodiscard]] const std::vector<sim::NodeId>& routers_of(Asn asn) const;
  [[nodiscard]] Asn router_owner(sim::NodeId node) const;
  [[nodiscard]] std::optional<net::Ipv4Address> lan_address_of(sim::NodeId router,
                                                               const std::string& ixp) const;

  /// Participants of an IXP LAN: (LAN address, owner ASN) for every member
  /// whose port is up.  This is what PCH's ip_asn_mapping publishes.
  [[nodiscard]] std::vector<std::pair<net::Ipv4Address, Asn>> lan_participants(
      const std::string& ixp) const;

  sim::Network& net() { return net_; }
  const sim::Network& net() const { return net_; }
  AddressAllocator& allocator() { return alloc_; }

 private:
  sim::Network net_;
  AddressAllocator alloc_;
  std::unordered_map<Asn, AsInfo> ases_;
  std::vector<AsLink> as_links_;
  std::vector<std::pair<std::string, IxpInfo>> ixps_;  // ordered
  std::unordered_map<std::string, sim::NodeId> fabric_;
  std::unordered_map<Asn, std::vector<sim::NodeId>> as_routers_;
  std::unordered_map<sim::NodeId, Asn> router_owner_;
  std::vector<Announcement> announcements_;
  std::vector<std::pair<net::Ipv4Prefix, Asn>> infra_delegations_;
  // (router, ixp) -> LAN address, plus per-fabric membership list.
  std::unordered_map<std::string, std::vector<std::pair<sim::NodeId, net::Ipv4Address>>> lan_members_;
  std::unordered_map<sim::NodeId, std::unordered_map<std::string, net::Ipv4Address>> lan_addr_;
  std::unordered_map<sim::NodeId, std::unordered_map<std::string, int>> port_link_;
};

}  // namespace ixp::topo
