// Topology entities: autonomous systems, IXPs, and ground-truth links.
//
// These are the *metadata* layer on top of the packet simulator: who owns
// which router, which prefixes an AS originates, where each IXP's peering
// LAN lives.  The bdrmap-lite and TSLP pipelines must rediscover this
// information from probing alone; tests score them against it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/time.h"

namespace ixp::topo {

using Asn = std::uint32_t;

enum class AsType {
  kIxpContent,   ///< IXP's own content/management network
  kIxpPeeringLan,///< the IXP peering LAN "AS" (route-server / LAN prefix)
  kAccessIsp,    ///< eyeball ISP
  kTransit,      ///< regional or intercontinental transit provider
  kContent,      ///< content/CDN network
  kEducation,    ///< research & education
  kMobile,       ///< mobile operator
};

struct AsInfo {
  Asn asn = 0;
  std::string name;
  std::string org;       ///< organisation (drives sibling inference)
  std::string country;   ///< ISO-3166-ish code, e.g. "GH"
  AsType type = AsType::kAccessIsp;
  std::vector<net::Ipv4Prefix> prefixes;  ///< originated prefixes
};

struct IxpInfo {
  std::string name;          ///< e.g. "GIXA"
  std::string long_name;     ///< e.g. "Ghana Internet eXchange Association"
  std::string country;
  std::string city;
  std::string sub_region;    ///< "West Africa", ...
  Asn ixp_asn = 0;           ///< the AS the IXP itself operates
  int launch_year = 0;
  net::Ipv4Prefix peering_prefix;     ///< the shared peering LAN
  net::Ipv4Prefix management_prefix;  ///< IXP management/content prefix
};

/// AS-level business relationship (Gao-Rexford model).
enum class Relationship {
  kCustomerToProvider,  ///< first AS buys transit from the second
  kPeerToPeer,
  kSibling,
};

struct AsLink {
  Asn a = 0;
  Asn b = 0;
  Relationship rel = Relationship::kPeerToPeer;  ///< meaning: a REL b
};

/// Ground truth for one router-level interdomain link of a VP's AS.
struct InterdomainLinkTruth {
  net::Ipv4Address near_ip;  ///< VP-AS side
  net::Ipv4Address far_ip;   ///< neighbor side
  Asn near_asn = 0;
  Asn far_asn = 0;
  int link_id = -1;          ///< simulator link
  bool at_ixp = false;       ///< either address inside an IXP prefix
  std::string ixp_name;      ///< which IXP, when at_ixp
};

}  // namespace ixp::topo
