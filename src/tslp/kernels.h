// Shared kernels for the TSLP fast path (engine.h / online.h).
//
// FiniteIndex is one fused O(n) pass over a series that yields everything
// the detector's bookkeeping needs afterwards in O(1): per-range not-NaN
// counts (window darkness, episode coverage, all-missing bridging) and the
// explicit gap list find_gaps() would have produced.  The legacy detector
// recomputes each of these with its own loop; the fast engine builds the
// index once and reuses it, which is exact because every consumer only ever
// needed the count or the run boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tslp/series.h"

namespace ixp::tslp {

class FiniteIndex {
 public:
  /// One pass over `v`: prefix counts of not-NaN samples plus all maximal
  /// NaN runs of at least `gap_min_run` samples (identical to
  /// find_gaps(series, gap_min_run), trailing run included).
  void build(std::span<const double> v, std::size_t gap_min_run);

  /// Number of not-NaN samples in [begin, end).
  [[nodiscard]] std::size_t not_nan(std::size_t begin, std::size_t end) const {
    return prefix_[end] - prefix_[begin];
  }
  /// True when [begin, end) contains no not-NaN sample (an empty range is
  /// all-missing, matching the legacy loop's vacuous truth).
  [[nodiscard]] bool all_missing(std::size_t begin, std::size_t end) const {
    return not_nan(begin, end) == 0;
  }
  [[nodiscard]] std::size_t size() const { return prefix_.empty() ? 0 : prefix_.size() - 1; }
  [[nodiscard]] const std::vector<SeriesGap>& gaps() const { return gaps_; }

 private:
  std::vector<std::uint64_t> prefix_;  ///< prefix_[i] = not-NaN count in [0, i)
  std::vector<SeriesGap> gaps_;
};

}  // namespace ixp::tslp
