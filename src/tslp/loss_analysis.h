// Loss/congestion correlation analysis (§6.2's argument structure).
//
// The paper ties its congestion inferences to user impact through loss:
// GIXA-GHANATEL's loss "confirms" the diurnal pattern (Fig. 2b) while
// GIXA-KNET's 0.1 % average loss argues users were unaffected (Fig. 3b).
// This module quantifies that relationship: for each loss batch, was the
// link inside a detected congestion episode, and how do loss rates differ
// inside vs outside?
#pragma once

#include <limits>
#include <vector>

#include "tslp/level_shift.h"
#include "tslp/series.h"

namespace ixp::tslp {

struct LossCorrelation {
  double loss_in_episodes = 0.0;    ///< mean batch loss while congested
  double loss_outside = 0.0;        ///< mean batch loss otherwise
  std::size_t batches_in = 0;
  std::size_t batches_out = 0;
  /// Batches with sent <= 0: no probes went out, so no loss observation
  /// exists.  Excluded from every statistic above.
  std::size_t batches_skipped = 0;
  /// Point-biserial correlation between "inside an episode" and the batch
  /// loss rate; NaN when undefined (no variance or too few batches).
  double correlation = 0.0;

  /// The paper's qualitative verdicts.
  [[nodiscard]] bool loss_confirms_congestion() const {
    return batches_in >= 3 && loss_in_episodes > 2.0 * loss_outside &&
           loss_in_episodes > 0.01;
  }
  [[nodiscard]] bool users_likely_unaffected(double threshold = 0.005) const {
    return average_loss() < threshold;
  }
  [[nodiscard]] double average_loss() const {
    const auto n = batches_in + batches_out;
    // No observed batch: the average is undefined, not "zero loss" -- a
    // 0.0 here made users_likely_unaffected() claim an unmeasured link
    // was fine (regression: AllBatchesEmptyIsUndefined).
    if (n == 0) return std::numeric_limits<double>::quiet_NaN();
    return (loss_in_episodes * static_cast<double>(batches_in) +
            loss_outside * static_cast<double>(batches_out)) /
           static_cast<double>(n);
  }
};

/// Correlates a loss series against the episodes detected on the same
/// link's far-RTT series.  `rtt` provides the time base for the episodes.
LossCorrelation correlate_loss(const LossSeries& loss, const RttSeries& rtt,
                               const LevelShiftResult& shifts);

}  // namespace ixp::tslp
