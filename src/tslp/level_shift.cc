#include "tslp/level_shift.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/ranks.h"
#include "tslp/engine.h"
#include "util/check.h"
#include "util/strings.h"

namespace ixp::tslp {

// Episode lists handed to consumers must be sorted, non-overlapping, and
// non-empty per episode; the duration/period averages and the loss
// correlation all assume it.
void check_episode_invariants(const std::vector<Episode>& episodes) {
  if (!paranoid_checks_enabled()) return;
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const Episode& e = episodes[i];
    IXP_CHECK(e.begin < e.end,
              strformat("episode %zu is empty or inverted: [%zu, %zu)", i, e.begin, e.end));
    if (i > 0) {
      IXP_CHECK(episodes[i - 1].end <= e.begin,
                strformat("episodes %zu and %zu overlap or are unsorted: [%zu, %zu) then [%zu, %zu)",
                          i - 1, i, episodes[i - 1].begin, episodes[i - 1].end, e.begin, e.end));
    }
  }
}

namespace {

// total * interval / divisor, dividing *after* the multiplication and
// rounding to nearest.  Dividing first (the old code) truncated to a whole
// sample count and biased the reported dt_UD / period low by up to one full
// probing interval.  The product is taken at 128 bits: a multi-year series
// has sample counts past 2^31, and interval.count() is nanoseconds (3e11
// for 5 minutes), so the 64-bit product overflows long before the
// substrate's long-horizon campaigns end (regression:
// tests/test_tslp.cc ScaledMeanLongHorizon).
Duration scaled_mean(std::int64_t total, Duration interval, std::int64_t divisor) {
  const auto product = static_cast<__int128>(interval.count()) * total;
  return Duration(static_cast<std::int64_t>((product + divisor / 2) / divisor));
}

}  // namespace

double LevelShiftResult::average_magnitude() const {
  if (episodes.empty()) return kMissing;
  double sum = 0;
  for (const auto& e : episodes) sum += e.magnitude_ms;
  return sum / static_cast<double>(episodes.size());
}

Duration LevelShiftResult::average_duration(Duration interval) const {
  if (episodes.empty()) return Duration(0);
  std::int64_t total = 0;
  for (const auto& e : episodes) total += static_cast<std::int64_t>(e.samples());
  return scaled_mean(total, interval, static_cast<std::int64_t>(episodes.size()));
}

Duration LevelShiftResult::average_period(Duration interval) const {
  if (episodes.size() < 2) return Duration(0);
  const std::int64_t span = static_cast<std::int64_t>(episodes.back().begin - episodes.front().begin);
  return scaled_mean(span, interval, static_cast<std::int64_t>(episodes.size() - 1));
}

std::vector<Episode> sanitize_episodes(std::vector<Episode> raw, std::size_t gap_samples) {
  return sanitize_episodes(std::move(raw), gap_samples, nullptr);
}

std::vector<Episode> sanitize_episodes(
    std::vector<Episode> raw, std::size_t gap_samples,
    const std::function<bool(std::size_t, std::size_t)>& also_merge) {
  std::vector<Episode> merged;
  for (const auto& e : raw) {
    const bool close_enough =
        !merged.empty() && e.begin <= merged.back().end + gap_samples;
    const bool bridgeable = !merged.empty() && !close_enough && also_merge &&
                            e.begin > merged.back().end &&
                            also_merge(merged.back().end, e.begin);
    if (close_enough || bridgeable) {
      Episode& prev = merged.back();
      // Weight the merged magnitude by the samples each episode actually
      // contributes: overlap with `prev` must not be counted twice, and a
      // nested episode (e.end <= prev.end) must not shrink the span.
      const std::size_t fresh_begin = std::max(e.begin, prev.end);
      const std::size_t fresh = e.end > fresh_begin ? e.end - fresh_begin : 0;
      if (fresh > 0) {
        const double w1 = static_cast<double>(prev.samples());
        const double w2 = static_cast<double>(fresh);
        prev.magnitude_ms = (prev.magnitude_ms * w1 + e.magnitude_ms * w2) / (w1 + w2);
        prev.end = std::max(prev.end, e.end);
      }
    } else {
      merged.push_back(e);
    }
  }
  check_episode_invariants(merged);
  return merged;
}

LevelShiftResult LevelShiftDetector::detect(const RttSeries& series) const {
  if (opts_.engine == DetectorEngine::kLegacy) return detect_legacy(series);
  thread_local DetectScratch scratch;
  return detect_fast(view_of(series), opts_, scratch);
}

LevelShiftResult LevelShiftDetector::detect_legacy(const RttSeries& series) const {
  LevelShiftResult out;
  const auto& v = series.ms;
  if (v.empty()) return out;
  IXP_CHECK(series.interval.count() > 0,
            strformat("RttSeries interval must be positive, got %lldns",
                      static_cast<long long>(series.interval.count())));
  IXP_CHECK(series.index_of(series.time_of(v.size() - 1)) == v.size() - 1,
            "RttSeries index/time round-trip is broken");

  // Gap accounting: explicit markers for the missing runs, and a coverage
  // early-out — a series that is almost entirely dark (monitor outage for
  // most of the window) cannot support any verdict.
  out.coverage = series.coverage();
  out.gaps = find_gaps(series, std::max<std::size_t>(1, opts_.gap_min_run));
  if (out.coverage < opts_.min_coverage) {
    out.refused_low_coverage = true;
    return out;
  }

  // Baseline: the 10th percentile of the whole series is a robust estimate
  // of the uncongested RTT floor.
  out.baseline_ms = stats::quantile(v, 0.10);
  if (std::isnan(out.baseline_ms)) return out;

  // Change-point analysis over 50%-overlapping windows; change points are
  // global indices.  The overlap matters: a shift that happens to land
  // exactly on a window boundary is flat inside both adjacent windows (and
  // the quiet-window fast path would skip them), but it sits mid-window in
  // the offset pass.
  const std::size_t win = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts_.window.count() / series.interval.count()));
  std::vector<std::size_t> cps;
  for (std::size_t begin = 0; begin < v.size(); begin += win / 2) {
    const std::size_t end = std::min(begin + win, v.size());
    const std::span<const double> chunk(v.data() + begin, end - begin);
    // Mostly-dark windows are skipped outright: a handful of surviving
    // samples cannot support a change-point decision, and the bootstrap's
    // rank transform would amplify their noise.
    std::size_t finite = 0;
    for (const double x : chunk) {
      if (!std::isnan(x)) ++finite;
    }
    if (finite < opts_.min_finite_window) {
      ++out.windows_skipped_dark;
      continue;
    }
    if (opts_.skip_quiet_windows) {
      const double hi = stats::quantile(chunk, 0.95);
      const double lo = stats::quantile(chunk, 0.05);
      if (!(hi - lo >= opts_.threshold_ms / 2.0)) {
        ++out.windows_skipped_quiet;
        continue;
      }
    }
    ++out.windows_scanned;
    stats::CusumOptions copt = opts_.cusum;
    copt.seed ^= begin * 0x9e3779b97f4a7c15ULL;  // distinct bootstrap streams
    for (const auto& cp : stats::detect_change_points(chunk, copt)) {
      cps.push_back(begin + cp.index);
    }
    // Window boundaries are implicit change points so segment levels never
    // average across windows.
    if (end < v.size()) cps.push_back(end);
  }
  std::sort(cps.begin(), cps.end());
  cps.erase(std::unique(cps.begin(), cps.end()), cps.end());

  // Build segments over the whole series.
  std::vector<stats::ChangePoint> cp_structs;
  cp_structs.reserve(cps.size());
  for (const std::size_t idx : cps) {
    stats::ChangePoint cp;
    cp.index = idx;
    cp.confidence = 1.0;
    cp_structs.push_back(cp);
  }
  out.segments = stats::to_segments(v, cp_structs);

  // Elevated segments -> raw episodes.  Episodes whose span is mostly
  // missing are unsupported: the segment level rests on too few samples.
  std::vector<Episode> raw;
  for (const auto& seg : out.segments) {
    if (std::isnan(seg.level)) continue;
    if (seg.level - out.baseline_ms >= opts_.threshold_ms) {
      std::size_t finite = 0;
      for (std::size_t i = seg.begin; i < seg.end; ++i) {
        if (!std::isnan(v[i])) ++finite;
      }
      const double span = static_cast<double>(seg.end - seg.begin);
      if (span <= 0 || static_cast<double>(finite) / span < opts_.min_episode_coverage) {
        continue;
      }
      raw.push_back({seg.begin, seg.end, seg.level - out.baseline_ms});
    }
  }

  // Sanitize: merge episodes separated by gaps <= merge_gap, and bridge
  // across all-missing runs of any length — the series was still elevated
  // at the last sample before the gap and at the first one after it, and
  // the gap itself carries no evidence the level came back down.
  const std::size_t gap_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(opts_.merge_gap.count() / series.interval.count()));
  const auto all_missing = [&v](std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      if (!std::isnan(v[i])) return false;
    }
    return true;
  };
  out.raw_episode_count = raw.size();
  const std::vector<Episode> merged = sanitize_episodes(
      std::move(raw), gap_samples,
      opts_.bridge_gaps
          ? std::function<bool(std::size_t, std::size_t)>(all_missing)
          : nullptr);

  // Duration filter (ceil: see min_episode_samples).
  const std::size_t min_samples = min_episode_samples(opts_.min_duration, series.interval);
  for (const auto& e : merged) {
    if (e.samples() >= min_samples) out.episodes.push_back(e);
  }
  check_episode_invariants(out.episodes);

  // Statistical significance: each surviving episode against a baseline
  // sample drawn from the non-elevated segments (capped for cost).
  if (!out.episodes.empty()) {
    std::vector<double> baseline_samples;
    baseline_samples.reserve(2048);
    for (const auto& seg : out.segments) {
      if (std::isnan(seg.level) || seg.level - out.baseline_ms >= opts_.threshold_ms) continue;
      const std::size_t step = std::max<std::size_t>(1, (seg.end - seg.begin) / 64);
      for (std::size_t i = seg.begin; i < seg.end && baseline_samples.size() < 2048; i += step) {
        if (std::isfinite(v[i])) baseline_samples.push_back(v[i]);
      }
    }
    for (auto& e : out.episodes) {
      if (baseline_samples.size() < 8) break;
      const std::size_t n = std::min<std::size_t>(e.samples(), 512);
      std::vector<double> ep;
      ep.reserve(n);
      const std::size_t step = std::max<std::size_t>(1, e.samples() / n);
      for (std::size_t i = e.begin; i < e.end; i += step) {
        if (std::isfinite(v[i])) ep.push_back(v[i]);
      }
      if (ep.size() >= 8) e.p_value = stats::mann_whitney_pvalue(ep, baseline_samples);
    }
  }
  return out;
}

}  // namespace ixp::tslp
