#include "tslp/classifier.h"

#include <cmath>

#include "stats/descriptive.h"
#include "tslp/engine.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/strings.h"

namespace ixp::tslp {

CongestionClassifier::CongestionClassifier(ClassifierOptions opts) : opts_(opts) {}

std::size_t samples_per_day(Duration interval) {
  IXP_CHECK(interval.count() > 0,
            strformat("probing interval must be positive, got %lldns",
                      static_cast<long long>(interval.count())));
  if (interval.count() <= 0) return 1;
  const auto spd = static_cast<std::size_t>(
      std::llround(static_cast<double>(kDay.count()) / static_cast<double>(interval.count())));
  IXP_CHECK(spd > 0, strformat("samples_per_day rounds to zero for interval %s",
                               format_duration(interval).c_str()));
  return std::max<std::size_t>(1, spd);
}

namespace {

// p95 elevation over baseline, split by weekday/weekend.
void weekday_weekend_peaks(const RttSeries& s, double baseline, double& weekday, double& weekend) {
  std::vector<double> wd, we;
  wd.reserve(s.ms.size());
  we.reserve(s.ms.size() / 3);
  for (std::size_t i = 0; i < s.ms.size(); ++i) {
    const double v = s.ms[i];
    if (std::isnan(v)) continue;
    const CalendarTime c = to_calendar(s.time_of(i));
    (c.is_weekend ? we : wd).push_back(v);
  }
  const double wdp = stats::quantile(wd, 0.95);
  const double wep = stats::quantile(we, 0.95);
  weekday = std::isnan(wdp) ? 0.0 : std::max(0.0, wdp - baseline);
  weekend = std::isnan(wep) ? 0.0 : std::max(0.0, wep - baseline);
}

// The fast path's split: is_weekend is constant within a calendar day, so
// samples are bucketed a day-block at a time with a vectorized compaction
// instead of a to_calendar call per sample.  Identical results: the day of
// sample i here is exactly to_calendar(time_of(i)).day (including the
// clamp-negative-to-day-0 rule), samples land in the same bucket in the
// same order, and dropping non-finite values early is invisible to the
// p95 (stats::quantile skips them anyway).
void weekday_weekend_peaks_fast(const RttSeries& s, double baseline, double& weekday,
                                double& weekend) {
  std::vector<double> wd, we;
  wd.reserve(s.ms.size());
  we.reserve(s.ms.size() / 3);
  const std::int64_t day_ns = kDay.count();
  const std::int64_t iv = s.interval.count();
  const std::int64_t start_ns = s.start.ns();
  const std::size_t n = s.ms.size();
  std::size_t i = 0;
  while (i < n) {
    const std::int64_t t = start_ns + static_cast<std::int64_t>(i) * iv;
    const std::int64_t ns = t < 0 ? 0 : t;
    const std::int64_t day = ns / day_ns;
    // First index on the next calendar day: ceil(((day+1)*day_ns - start)/iv).
    const std::int64_t boundary = (day + 1) * day_ns - start_ns;
    std::size_t next = n;
    if (boundary <= static_cast<std::int64_t>(n - 1) * iv) {
      next = std::max(i + 1, static_cast<std::size_t>((boundary + iv - 1) / iv));
    }
    auto& bucket = ((day % 7) >= 5) ? we : wd;
    const std::size_t old = bucket.size();
    bucket.resize(old + (next - i));
    const std::size_t nf =
        simd::compact_finite(std::span<const double>(s.ms.data() + i, next - i),
                             bucket.data() + old);
    bucket.resize(old + nf);
    i = next;
  }
  const double wdp = stats::quantile(wd, 0.95);
  const double wep = stats::quantile(we, 0.95);
  weekday = std::isnan(wdp) ? 0.0 : std::max(0.0, wdp - baseline);
  weekend = std::isnan(wep) ? 0.0 : std::max(0.0, wep - baseline);
}

}  // namespace

LinkReport CongestionClassifier::classify_with_shifts(const LinkSeries& link, LevelShiftResult far,
                                                      LevelShiftResult near) const {
  LinkReport report;
  report.key = link.key;
  report.far_shifts = std::move(far);
  report.near_shifts = std::move(near);
  // A near side refused for low coverage was never judged at all; calling
  // it "clean" would upgrade the verdict to kCongested on zero near-side
  // evidence (regression: NearRefusalIsNotClean).
  report.near_clean =
      !report.near_shifts.any() && !report.near_shifts.refused_low_coverage;

  if (!report.far_shifts.any()) {
    report.verdict = Verdict::kNotCongested;
    return report;
  }

  stats::DiurnalOptions dopt = opts_.diurnal;
  dopt.samples_per_day = samples_per_day(link.far_rtt.interval);
  // Diurnality is judged over the episodes' active span (with margin), not
  // the whole campaign: congestion that was mitigated after two months is
  // still "recurring diurnal" within those months (QCELL-NETPAGE).
  {
    const auto& eps = report.far_shifts.episodes;
    const std::size_t margin = 3 * dopt.samples_per_day;
    const std::size_t lo = eps.front().begin > margin ? eps.front().begin - margin : 0;
    const std::size_t hi = std::min(link.far_rtt.ms.size(), eps.back().end + margin);
    const std::span<const double> active(link.far_rtt.ms.data() + lo, hi - lo);
    report.diurnal = stats::diurnal_score(active, dopt);
  }

  if (!report.diurnal.recurring) {
    report.verdict = Verdict::kPotentiallyCongested;
  } else if (report.near_clean) {
    report.verdict = Verdict::kCongested;
  } else {
    report.verdict = Verdict::kInconclusive;
  }

  // Waveform characteristics.
  report.waveform.a_w_ms = report.far_shifts.average_magnitude();
  report.waveform.dt_ud = report.far_shifts.average_duration(link.far_rtt.interval);
  report.waveform.period = report.far_shifts.average_period(link.far_rtt.interval);
  if (opts_.level_shift.engine == DetectorEngine::kLegacy) {
    weekday_weekend_peaks(link.far_rtt, report.far_shifts.baseline_ms,
                          report.waveform.weekday_peak_ms, report.waveform.weekend_peak_ms);
  } else {
    weekday_weekend_peaks_fast(link.far_rtt, report.far_shifts.baseline_ms,
                               report.waveform.weekday_peak_ms, report.waveform.weekend_peak_ms);
  }

  // Sustained vs transient: does the pattern persist to the campaign end?
  if (report.verdict == Verdict::kCongested || report.verdict == Verdict::kInconclusive) {
    const auto& eps = report.far_shifts.episodes;
    const std::size_t margin_samples = static_cast<std::size_t>(
        opts_.sustain_margin.count() / link.far_rtt.interval.count());
    const std::size_t last_end = eps.empty() ? 0 : eps.back().end;
    // Also treat a far series that stops answering (link shut down, as for
    // GIXA-GHANATEL phase 2's end) as "sustained until the link vanished":
    // find the last answered sample.
    std::size_t last_answered = link.far_rtt.ms.size();
    while (last_answered > 0 && std::isnan(link.far_rtt.ms[last_answered - 1])) --last_answered;
    const std::size_t effective_end = std::min(link.far_rtt.ms.size(), last_answered);
    report.persistence = (last_end + margin_samples >= effective_end) ? Persistence::kSustained
                                                                      : Persistence::kTransient;
  }
  return report;
}

bool crosscheck_reroute(LinkReport& report, const std::vector<std::size_t>& responder_changes,
                        std::size_t tolerance_rounds) {
  const auto& eps = report.far_shifts.episodes;
  if (eps.empty() || responder_changes.empty()) return false;
  for (const auto& e : eps) {
    bool explained = false;
    for (const std::size_t r : responder_changes) {
      const std::size_t lo = e.begin > tolerance_rounds ? e.begin - tolerance_rounds : 0;
      if (r >= lo && r <= e.begin + tolerance_rounds) {
        explained = true;
        break;
      }
    }
    if (!explained) return false;
  }
  report.reroute_suspect = true;
  if (report.verdict == Verdict::kCongested || report.verdict == Verdict::kInconclusive) {
    report.verdict = Verdict::kPotentiallyCongested;
    report.persistence = Persistence::kNone;
  }
  return true;
}

LinkReport CongestionClassifier::classify(const LinkSeries& link) const {
  LevelShiftOptions near_opts = opts_.level_shift;
  near_opts.threshold_ms = opts_.near_threshold_ms;
  if (opts_.level_shift.engine == DetectorEngine::kLegacy) {
    LevelShiftDetector far_detector(opts_.level_shift);
    LevelShiftDetector near_detector(near_opts);
    return classify_with_shifts(link, far_detector.detect_legacy(link.far_rtt),
                                near_detector.detect_legacy(link.near_rtt));
  }
  thread_local DetectScratch scratch;
  return classify_with_shifts(link, detect_fast(view_of(link.far_rtt), opts_.level_shift, scratch),
                              detect_fast(view_of(link.near_rtt), near_opts, scratch));
}

}  // namespace ixp::tslp
