#include "tslp/engine.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/ranks.h"
#include "util/simd.h"
#include "util/strings.h"

namespace ixp::tslp {

namespace detail {

WindowOutcome gate_window(std::span<const double> chunk, std::size_t finite,
                          const LevelShiftOptions& opts, std::vector<double>& finite_buf) {
  if (finite < opts.min_finite_window) return WindowOutcome::kDark;
  if (opts.skip_quiet_windows) {
    double lo = 0.0, hi = 0.0;
    // No finite sample: the legacy prefilter's quantiles are NaN, and
    // !(NaN - NaN >= x) skips the window.
    if (!simd::finite_minmax(chunk, lo, hi)) return WindowOutcome::kQuiet;
    // Exact conservative shortcut: p95 - p05 <= max - min, so a spread
    // below the bar here is below the bar for the quantiles too.  Only
    // windows that pass pay for the real prefilter.
    if (hi - lo < opts.threshold_ms / 2.0) return WindowOutcome::kQuiet;
    finite_buf.resize(chunk.size());
    const std::size_t nf = simd::compact_finite(chunk, finite_buf.data());
    const std::span<double> fb(finite_buf.data(), nf);
    // quantile_inplace only permutes fb, so the second call sees the same
    // multiset the first did -- both values match fresh quantile() calls.
    const double q95 = stats::quantile_inplace(fb, 0.95);
    const double q05 = stats::quantile_inplace(fb, 0.05);
    if (!(q95 - q05 >= opts.threshold_ms / 2.0)) return WindowOutcome::kQuiet;
  }
  return WindowOutcome::kScanned;
}

// The per-window seed perturbation: every window gets an independent
// bootstrap stream, which is also what lets the batch driver interleave
// windows' draws.
stats::CusumOptions window_cusum_options(const LevelShiftOptions& opts, std::size_t begin) {
  stats::CusumOptions copt = opts.cusum;
  copt.seed ^= begin * 0x9e3779b97f4a7c15ULL;  // distinct bootstrap streams
  return copt;
}

WindowOutcome scan_window(std::span<const double> chunk, std::size_t begin, std::size_t finite,
                          const LevelShiftOptions& opts, stats::ChangePointScratch& cp,
                          std::vector<double>& finite_buf, std::vector<std::size_t>& cps) {
  const WindowOutcome gate = gate_window(chunk, finite, opts, finite_buf);
  if (gate != WindowOutcome::kScanned) return gate;
  const stats::CusumOptions copt = window_cusum_options(opts, begin);
  for (const std::size_t idx : stats::detect_change_point_indices(chunk, copt, cp)) {
    cps.push_back(begin + idx);
  }
  return WindowOutcome::kScanned;
}

bool prepare_series(const SeriesView& series, const LevelShiftOptions& opts,
                    DetectScratch& scratch, LevelShiftResult& out, std::size_t& win) {
  const std::span<const double> v = series.ms;
  win = 0;
  if (v.empty()) return false;
  IXP_CHECK(series.interval.count() > 0,
            strformat("SeriesView interval must be positive, got %lldns",
                      static_cast<long long>(series.interval.count())));
  IXP_CHECK(series.index_of(series.time_of(v.size() - 1)) == v.size() - 1,
            "SeriesView index/time round-trip is broken");

  scratch.index.build(v, std::max<std::size_t>(1, opts.gap_min_run));
  out.coverage =
      static_cast<double>(scratch.index.not_nan(0, v.size())) / static_cast<double>(v.size());
  out.gaps = scratch.index.gaps();
  if (out.coverage < opts.min_coverage) {
    out.refused_low_coverage = true;
    return false;
  }

  // Baseline: one compaction, then the shared selection kernel -- exactly
  // what stats::quantile(v, 0.10) computes internally.
  scratch.finite.resize(v.size());
  const std::size_t nf = simd::compact_finite(v, scratch.finite.data());
  out.baseline_ms = stats::quantile_inplace(std::span<double>(scratch.finite.data(), nf), 0.10);
  if (std::isnan(out.baseline_ms)) return false;

  win = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.window.count() / series.interval.count()));
  return true;
}

void assemble_result(const SeriesView& series, const LevelShiftOptions& opts,
                     DetectScratch& scratch, LevelShiftResult& out) {
  const std::span<const double> v = series.ms;
  auto& cps = scratch.cps;
  std::sort(cps.begin(), cps.end());
  cps.erase(std::unique(cps.begin(), cps.end()), cps.end());

  scratch.cp_structs.clear();
  scratch.cp_structs.reserve(cps.size());
  for (const std::size_t idx : cps) {
    stats::ChangePoint cp;
    cp.index = idx;
    cp.confidence = 1.0;
    scratch.cp_structs.push_back(cp);
  }
  out.segments = stats::to_segments(v, scratch.cp_structs);

  // Elevated segments -> raw episodes, with the coverage support test from
  // the prefix counts instead of a per-segment loop.
  std::vector<Episode> raw;
  for (const auto& seg : out.segments) {
    if (std::isnan(seg.level)) continue;
    if (seg.level - out.baseline_ms >= opts.threshold_ms) {
      const std::size_t finite = scratch.index.not_nan(seg.begin, seg.end);
      const double span = static_cast<double>(seg.end - seg.begin);
      if (span <= 0 || static_cast<double>(finite) / span < opts.min_episode_coverage) {
        continue;
      }
      raw.push_back({seg.begin, seg.end, seg.level - out.baseline_ms});
    }
  }

  const std::size_t gap_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(opts.merge_gap.count() / series.interval.count()));
  const auto all_missing = [&scratch](std::size_t from, std::size_t to) {
    return scratch.index.all_missing(from, to);
  };
  out.raw_episode_count = raw.size();
  const std::vector<Episode> merged = sanitize_episodes(
      std::move(raw), gap_samples,
      opts.bridge_gaps ? std::function<bool(std::size_t, std::size_t)>(all_missing) : nullptr);

  // Duration filter (ceil: see min_episode_samples).
  const std::size_t min_samples = min_episode_samples(opts.min_duration, series.interval);
  for (const auto& e : merged) {
    if (e.samples() >= min_samples) out.episodes.push_back(e);
  }
  check_episode_invariants(out.episodes);

  // Statistical significance, identical sampling to the legacy path.
  if (!out.episodes.empty()) {
    std::vector<double> baseline_samples;
    baseline_samples.reserve(2048);
    for (const auto& seg : out.segments) {
      if (std::isnan(seg.level) || seg.level - out.baseline_ms >= opts.threshold_ms) continue;
      const std::size_t step = std::max<std::size_t>(1, (seg.end - seg.begin) / 64);
      for (std::size_t i = seg.begin; i < seg.end && baseline_samples.size() < 2048; i += step) {
        if (std::isfinite(v[i])) baseline_samples.push_back(v[i]);
      }
    }
    for (auto& e : out.episodes) {
      if (baseline_samples.size() < 8) break;
      const std::size_t n = std::min<std::size_t>(e.samples(), 512);
      std::vector<double> ep;
      ep.reserve(n);
      const std::size_t step = std::max<std::size_t>(1, e.samples() / n);
      for (std::size_t i = e.begin; i < e.end; i += step) {
        if (std::isfinite(v[i])) ep.push_back(v[i]);
      }
      if (ep.size() >= 8) e.p_value = stats::mann_whitney_pvalue(ep, baseline_samples);
    }
  }
}

}  // namespace detail

LevelShiftResult detect_fast(const SeriesView& series, const LevelShiftOptions& opts,
                             DetectScratch& scratch) {
  LevelShiftResult out;
  const std::span<const double> v = series.ms;
  std::size_t win = 0;
  if (!detail::prepare_series(series, opts, scratch, out, win)) return out;
  scratch.cps.clear();
  for (std::size_t begin = 0; begin < v.size(); begin += win / 2) {
    const std::size_t end = std::min(begin + win, v.size());
    const std::span<const double> chunk(v.data() + begin, end - begin);
    const std::size_t finite = scratch.index.not_nan(begin, end);
    switch (detail::scan_window(chunk, begin, finite, opts, scratch.cp, scratch.finite,
                                scratch.cps)) {
      case detail::WindowOutcome::kDark:
        ++out.windows_skipped_dark;
        break;
      case detail::WindowOutcome::kQuiet:
        ++out.windows_skipped_quiet;
        break;
      case detail::WindowOutcome::kScanned:
        ++out.windows_scanned;
        if (end < v.size()) scratch.cps.push_back(end);
        break;
    }
  }

  detail::assemble_result(series, opts, scratch, out);
  return out;
}

std::vector<LevelShiftResult> detect_batch(const SeriesBatch& batch, const LevelShiftOptions& opts) {
  std::vector<LevelShiftResult> results;
  results.reserve(batch.size());
  if (opts.engine == DetectorEngine::kLegacy) {
    // Batch API over the scalar engine: used by the benchmark baseline.
    LevelShiftDetector legacy(opts);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      RttSeries s;
      const SeriesView view = batch.view(i);
      s.start = view.start;
      s.interval = view.interval;
      s.ms.assign(view.ms.begin(), view.ms.end());
      results.push_back(legacy.detect_legacy(s));
    }
    return results;
  }

  // Three-phase sweep, byte-identical to per-series detect_fast calls:
  // gates and preambles first, then every surviving window of every series
  // through the interleaved change-point driver in one submission, then the
  // per-series assembly.  Phase B is where the time goes, and batching it
  // lets four windows' bootstrap streams overlap instead of serializing on
  // one generator's latency chain.
  DetectScratch scratch;

  // One scanned window: which series it belongs to, where it starts, and
  // whether detect_fast would append the window-end split candidate.
  struct WindowRef {
    std::size_t series;
    std::size_t begin;
    std::size_t end;
    bool push_end;
  };
  std::vector<stats::ChangePointTask> tasks;
  std::vector<WindowRef> refs;
  std::vector<char> needs_assembly(batch.size(), 0);

  for (std::size_t si = 0; si < batch.size(); ++si) {
    const SeriesView series = batch.view(si);
    LevelShiftResult out;
    std::size_t win = 0;
    if (!detail::prepare_series(series, opts, scratch, out, win)) {
      results.push_back(std::move(out));
      continue;
    }
    needs_assembly[si] = 1;
    const std::span<const double> v = series.ms;
    for (std::size_t begin = 0; begin < v.size(); begin += win / 2) {
      const std::size_t end = std::min(begin + win, v.size());
      const std::span<const double> chunk(v.data() + begin, end - begin);
      const std::size_t finite = scratch.index.not_nan(begin, end);
      switch (detail::gate_window(chunk, finite, opts, scratch.finite)) {
        case detail::WindowOutcome::kDark:
          ++out.windows_skipped_dark;
          break;
        case detail::WindowOutcome::kQuiet:
          ++out.windows_skipped_quiet;
          break;
        case detail::WindowOutcome::kScanned:
          ++out.windows_scanned;
          tasks.push_back({chunk, detail::window_cusum_options(opts, begin), {}});
          refs.push_back({si, begin, end, end < v.size()});
          break;
      }
    }
    results.push_back(std::move(out));
  }

  stats::detect_change_point_indices_batch(tasks, scratch.cp);

  std::size_t ri = 0;
  for (std::size_t si = 0; si < batch.size(); ++si) {
    if (!needs_assembly[si]) continue;
    const SeriesView series = batch.view(si);
    // assemble_result reads the finite index for episode support and gap
    // bridging; rebuild it for this series (phase A reused one scratch).
    scratch.index.build(series.ms, std::max<std::size_t>(1, opts.gap_min_run));
    scratch.cps.clear();
    for (; ri < refs.size() && refs[ri].series == si; ++ri) {
      for (const std::size_t idx : tasks[ri].found) {
        scratch.cps.push_back(refs[ri].begin + idx);
      }
      if (refs[ri].push_end) scratch.cps.push_back(refs[ri].end);
    }
    detail::assemble_result(series, opts, scratch, results[si]);
  }
  return results;
}

}  // namespace ixp::tslp
