// RTT time-series containers shared by the prober (producer) and the
// congestion-inference pipeline (consumer).
//
// A series holds one sample per probing round; lost probes are NaN.  The
// paper's cadence is one round per 5 minutes, so a year-long campaign is
// ~113k samples per link side.
#pragma once

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/check.h"
#include "util/time.h"

namespace ixp::tslp {

inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

/// Uniformly sampled series of RTT values in milliseconds.
struct RttSeries {
  TimePoint start;                 ///< time of sample 0
  Duration interval = kMinute * 5; ///< spacing between samples
  std::vector<double> ms;          ///< NaN = probe unanswered

  [[nodiscard]] TimePoint time_of(std::size_t i) const {
    IXP_CHECK(interval.count() > 0, "RttSeries interval must be positive");
    return start + interval * static_cast<std::int64_t>(i);
  }
  [[nodiscard]] std::size_t index_of(TimePoint t) const {
    IXP_CHECK(interval.count() > 0, "RttSeries interval must be positive");
    const auto d = t - start;
    if (d.count() < 0) return 0;
    return static_cast<std::size_t>(d.count() / interval.count());
  }
  [[nodiscard]] std::size_t size() const { return ms.size(); }
  [[nodiscard]] double loss_fraction() const {
    if (ms.empty()) return 0.0;
    std::size_t lost = 0;
    for (double v : ms) {
      if (std::isnan(v)) ++lost;
    }
    return static_cast<double>(lost) / static_cast<double>(ms.size());
  }
  /// Samples that actually carry a measurement.
  [[nodiscard]] std::size_t finite_count() const {
    std::size_t n = 0;
    for (double v : ms) {
      if (!std::isnan(v)) ++n;
    }
    return n;
  }
  /// Fraction of rounds with a measurement (1.0 for an empty series, so a
  /// not-yet-probed link is not reported as fully dark).
  [[nodiscard]] double coverage() const {
    if (ms.empty()) return 1.0;
    return static_cast<double>(finite_count()) / static_cast<double>(ms.size());
  }
};

/// Explicit marker for a maximal run of consecutive missing samples:
/// [begin, end) indices into the series.  Downstream detectors bridge or
/// skip these instead of treating missing rounds as observations.
struct SeriesGap {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t samples() const { return end - begin; }
};

/// All maximal missing runs of at least `min_run` samples, in order.
inline std::vector<SeriesGap> find_gaps(const RttSeries& s, std::size_t min_run = 1) {
  std::vector<SeriesGap> gaps;
  std::size_t run_begin = 0;
  bool in_run = false;
  for (std::size_t i = 0; i < s.ms.size(); ++i) {
    if (std::isnan(s.ms[i])) {
      if (!in_run) {
        in_run = true;
        run_begin = i;
      }
    } else if (in_run) {
      in_run = false;
      if (i - run_begin >= min_run) gaps.push_back({run_begin, i});
    }
  }
  if (in_run && s.ms.size() - run_begin >= min_run) gaps.push_back({run_begin, s.ms.size()});
  return gaps;
}

/// Near+far measurement record for one monitored interdomain link.
struct LinkSeries {
  std::string key;            ///< "VPAS-NEIGHBOR" style label
  net::Ipv4Address near_ip;
  net::Ipv4Address far_ip;
  std::uint32_t near_asn = 0;
  std::uint32_t far_asn = 0;
  bool at_ixp = false;
  RttSeries near_rtt;
  RttSeries far_rtt;
  /// Rounds (indices into far_rtt) where the driver re-learned the hop
  /// distance because the responder identity changed — the path under the
  /// monitor moved.  The classifier cross-checks level-shift episodes
  /// against these: a "congestion" onset that coincides with a forwarding
  /// change is a reroute, not a queue (tslp::crosscheck_reroute).
  std::vector<std::size_t> responder_changes;
};

/// Restricts a series to [from, to): used by the case-study analyses that
/// look at one phase of a longer campaign.
inline RttSeries slice(const RttSeries& s, TimePoint from, TimePoint to) {
  RttSeries out;
  out.interval = s.interval;
  const std::size_t b = std::min(s.index_of(from), s.ms.size());
  const std::size_t e = std::min(s.index_of(to), s.ms.size());
  out.start = s.time_of(b);
  if (e > b) out.ms.assign(s.ms.begin() + static_cast<std::ptrdiff_t>(b),
                           s.ms.begin() + static_cast<std::ptrdiff_t>(e));
  return out;
}

inline LinkSeries slice(const LinkSeries& ls, TimePoint from, TimePoint to) {
  LinkSeries out = ls;
  out.near_rtt = slice(ls.near_rtt, from, to);
  out.far_rtt = slice(ls.far_rtt, from, to);
  // Re-base the responder-change rounds into the sliced index space,
  // dropping the ones outside the window.
  const std::size_t b = std::min(ls.far_rtt.index_of(from), ls.far_rtt.ms.size());
  out.responder_changes.clear();
  for (const std::size_t r : ls.responder_changes) {
    if (r >= b && r - b < out.far_rtt.ms.size()) out.responder_changes.push_back(r - b);
  }
  return out;
}

/// One loss-rate batch: `sent` probes, `lost` unanswered.
struct LossBatch {
  TimePoint at;
  int sent = 0;
  int lost = 0;
  [[nodiscard]] double loss_rate() const { return sent > 0 ? static_cast<double>(lost) / sent : 0.0; }
};

/// Loss-rate measurement toward one side of a link.
struct LossSeries {
  net::Ipv4Address target;
  std::vector<LossBatch> batches;

  [[nodiscard]] double average_loss() const {
    std::int64_t sent = 0, lost = 0;
    for (const auto& b : batches) {
      sent += b.sent;
      lost += b.lost;
    }
    return sent > 0 ? static_cast<double>(lost) / static_cast<double>(sent) : 0.0;
  }
};

}  // namespace ixp::tslp
