#include "tslp/kernels.h"

#include <cmath>

namespace ixp::tslp {

void FiniteIndex::build(std::span<const double> v, std::size_t gap_min_run) {
  prefix_.assign(v.size() + 1, 0);
  gaps_.clear();
  std::uint64_t count = 0;
  std::size_t run_begin = 0;
  bool in_run = false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::isnan(v[i])) {
      if (!in_run) {
        in_run = true;
        run_begin = i;
      }
    } else {
      ++count;
      if (in_run) {
        in_run = false;
        if (i - run_begin >= gap_min_run) gaps_.push_back({run_begin, i});
      }
    }
    prefix_[i + 1] = count;
  }
  if (in_run && v.size() - run_begin >= gap_min_run) gaps_.push_back({run_begin, v.size()});
}

}  // namespace ixp::tslp
