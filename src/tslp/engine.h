// The TSLP fast path: a scratch-reusing, vectorized implementation of the
// level-shift detector, plus a structure-of-arrays batch front end.
//
// detect_fast() is byte-identical to LevelShiftDetector::detect_legacy()
// on every input (see docs/ARCHITECTURE.md, "TSLP fast path", for the
// argument; tests/test_tslp.cc and the golden corpus pin it).  The speed
// comes from exact transformations only:
//   * change-point detection returns accepted *indices* without the
//     discarded per-point confidence re-estimation and segment medians
//     (stats::detect_change_point_indices);
//   * one FiniteIndex pass replaces every per-range counting loop;
//   * the quiet-window test short-circuits on a fused finite min/max
//     (max - min < threshold/2 implies p95 - p05 < threshold/2);
//   * one isfinite compaction feeds both prefilter quantiles;
//   * all per-window buffers are recycled across windows and series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/changepoint.h"
#include "tslp/kernels.h"
#include "tslp/level_shift.h"
#include "util/check.h"

namespace ixp::tslp {

/// A borrowed series: the samples plus the time base, so detection can run
/// directly over columnar-store decode buffers without copying into an
/// RttSeries.  Same index/time arithmetic as RttSeries.
struct SeriesView {
  std::span<const double> ms;
  TimePoint start{};
  Duration interval = kMinute * 5;

  [[nodiscard]] TimePoint time_of(std::size_t i) const {
    IXP_CHECK(interval.count() > 0, "SeriesView interval must be positive");
    return start + interval * static_cast<std::int64_t>(i);
  }
  [[nodiscard]] std::size_t index_of(TimePoint t) const {
    IXP_CHECK(interval.count() > 0, "SeriesView interval must be positive");
    const auto d = t - start;
    if (d.count() < 0) return 0;
    return static_cast<std::size_t>(d.count() / interval.count());
  }
  [[nodiscard]] std::size_t size() const { return ms.size(); }
};

[[nodiscard]] inline SeriesView view_of(const RttSeries& s) {
  return SeriesView{std::span<const double>(s.ms), s.start, s.interval};
}

/// Reusable buffers for detect_fast: one instance amortizes every
/// allocation across the windows of a series and across the series of a
/// batch.
struct DetectScratch {
  FiniteIndex index;
  stats::ChangePointScratch cp;
  std::vector<double> finite;               ///< isfinite compaction buffer
  std::vector<std::size_t> cps;             ///< global change-point indices
  std::vector<stats::ChangePoint> cp_structs;
};

/// The fast detector.  Byte-identical to detect_legacy on the same samples,
/// options, and time base.
LevelShiftResult detect_fast(const SeriesView& series, const LevelShiftOptions& opts,
                             DetectScratch& scratch);

namespace detail {

enum class WindowOutcome { kDark, kQuiet, kScanned };

/// Just the darkness and quiet-spread gates of scan_window, no detection:
/// the batch engine gates every window first, then hands the surviving
/// windows to the change-point driver in one submission.
WindowOutcome gate_window(std::span<const double> chunk, std::size_t finite,
                          const LevelShiftOptions& opts, std::vector<double>& finite_buf);

/// The shared preamble of detect_fast and the batch sweep: validates the
/// view, builds the finite index, computes coverage / gaps / baseline, and
/// derives the window size.  Returns false when detection ends here (empty
/// series, coverage refusal, or NaN baseline); `out` is then final.
bool prepare_series(const SeriesView& series, const LevelShiftOptions& opts,
                    DetectScratch& scratch, LevelShiftResult& out, std::size_t& win);

/// One analysis window: the darkness and quiet-spread skips, then
/// change-point detection with the window's perturbed seed.  Accepted
/// global indices are appended to `cps`.  Shared by the batch and online
/// engines so a window is processed identically no matter when its samples
/// arrived.  `finite` must be the chunk's not-NaN count.
WindowOutcome scan_window(std::span<const double> chunk, std::size_t begin, std::size_t finite,
                          const LevelShiftOptions& opts, stats::ChangePointScratch& cp,
                          std::vector<double>& finite_buf, std::vector<std::size_t>& cps);

/// The assembly tail shared by detect_fast and OnlineLevelShift::finalize:
/// sort/unique scratch.cps, segments, elevated episodes, sanitization,
/// duration filter, Mann-Whitney significance.  Requires out.baseline_ms
/// set and scratch.index built over `series`.
void assemble_result(const SeriesView& series, const LevelShiftOptions& opts,
                     DetectScratch& scratch, LevelShiftResult& out);

}  // namespace detail

/// Structure-of-arrays container for many series: all samples live in one
/// contiguous buffer with per-series extents, so a batch detection sweep
/// walks memory linearly and reuses one scratch for every series.
class SeriesBatch {
 public:
  void add(std::string key, const RttSeries& s) {
    add(std::move(key), s.start, s.interval, s.ms);
  }
  /// Pre-sizes the columnar buffers so a pack loop with known totals never
  /// pays growth copies of the sample store (tens of MB for a campaign).
  void reserve(std::size_t series, std::size_t samples) {
    samples_.reserve(samples);
    offsets_.reserve(series + 1);
    starts_.reserve(series);
    intervals_.reserve(series);
    keys_.reserve(series);
  }
  void add(std::string key, TimePoint start, Duration interval, std::span<const double> ms) {
    IXP_CHECK(interval.count() > 0, "SeriesBatch interval must be positive");
    samples_.insert(samples_.end(), ms.begin(), ms.end());
    offsets_.push_back(samples_.size());
    starts_.push_back(start);
    intervals_.push_back(interval);
    keys_.push_back(std::move(key));
  }
  void clear() {
    samples_.clear();
    offsets_.assign(1, 0);
    starts_.clear();
    intervals_.clear();
    keys_.clear();
  }
  [[nodiscard]] std::size_t size() const { return starts_.size(); }
  [[nodiscard]] std::size_t total_samples() const { return samples_.size(); }
  [[nodiscard]] const std::string& key(std::size_t i) const { return keys_[i]; }
  [[nodiscard]] SeriesView view(std::size_t i) const {
    return SeriesView{
        std::span<const double>(samples_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]),
        starts_[i], intervals_[i]};
  }

 private:
  std::vector<double> samples_;
  std::vector<std::size_t> offsets_{0};
  std::vector<TimePoint> starts_;
  std::vector<Duration> intervals_;
  std::vector<std::string> keys_;
};

/// Runs detect_fast over every series of the batch with one shared scratch.
/// results[i] corresponds to batch.view(i).
std::vector<LevelShiftResult> detect_batch(const SeriesBatch& batch, const LevelShiftOptions& opts);

}  // namespace ixp::tslp
