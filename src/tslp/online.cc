#include "tslp/online.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "util/simd.h"
#include "util/strings.h"

namespace ixp::tslp {

namespace {

// Window scratch shared by every detector on the thread: scan_window's
// buffers carry no state across calls, so per-detector copies would only
// waste memory on campaigns with one detector pair per link.
struct PushScratch {
  stats::ChangePointScratch cp;
  std::vector<double> finite;
};

PushScratch& push_scratch() {
  thread_local PushScratch s;
  return s;
}

}  // namespace

OnlineLevelShift::OnlineLevelShift(LevelShiftOptions opts, TimePoint start, Duration interval,
                                   bool retain_samples)
    : opts_(opts), start_(start), interval_(interval), retain_(retain_samples) {
  IXP_CHECK(interval_.count() > 0,
            strformat("OnlineLevelShift interval must be positive, got %lldns",
                      static_cast<long long>(interval_.count())));
  win_ = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts_.window.count() / interval_.count()));
  stride_ = win_ / 2;
}

void OnlineLevelShift::push(double ms) {
  pending_.push_back(ms);
  if (retain_) retained_.push_back(ms);
  ++n_;
  process_ready();
}

void OnlineLevelShift::push(std::span<const double> ms) {
  pending_.insert(pending_.end(), ms.begin(), ms.end());
  if (retain_) retained_.insert(retained_.end(), ms.begin(), ms.end());
  n_ += ms.size();
  process_ready();
}

void OnlineLevelShift::process_ready() {
  auto& s = push_scratch();
  while (next_begin_ + win_ <= n_) {
    const std::span<const double> chunk(pending_.data() + (next_begin_ - base_), win_);
    const std::size_t finite = simd::count_not_nan(chunk);
    switch (detail::scan_window(chunk, next_begin_, finite, opts_, s.cp, s.finite, cps_)) {
      case detail::WindowOutcome::kDark:
        ++windows_skipped_dark_;
        break;
      case detail::WindowOutcome::kQuiet:
        ++windows_skipped_quiet_;
        break;
      case detail::WindowOutcome::kScanned:
        ++windows_scanned_;
        // Whether this end is an implicit change point depends on the
        // *final* series length, unknown until finalize -- record it.
        scanned_ends_.push_back(next_begin_ + win_);
        break;
    }
    next_begin_ += stride_;
    // Samples before the next window's begin are never read again.
    if (next_begin_ > base_) {
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(next_begin_ - base_));
      base_ = next_begin_;
    }
  }
}

LevelShiftResult OnlineLevelShift::finalize(const SeriesView& full, DetectScratch& scratch) const {
  IXP_CHECK(full.ms.size() == n_,
            strformat("online detector saw %zu samples but finalize got a view of %zu", n_,
                      full.ms.size()));
  IXP_CHECK(full.interval == interval_, "finalize view interval differs from the push time base");

  LevelShiftResult out;
  const std::span<const double> v = full.ms;
  if (v.empty()) return out;
  IXP_CHECK(full.index_of(full.time_of(v.size() - 1)) == v.size() - 1,
            "SeriesView index/time round-trip is broken");

  scratch.index.build(v, std::max<std::size_t>(1, opts_.gap_min_run));
  out.coverage =
      static_cast<double>(scratch.index.not_nan(0, v.size())) / static_cast<double>(v.size());
  out.gaps = scratch.index.gaps();
  if (out.coverage < opts_.min_coverage) {
    out.refused_low_coverage = true;
    return out;
  }

  scratch.finite.resize(v.size());
  const std::size_t nf = simd::compact_finite(v, scratch.finite.data());
  out.baseline_ms = stats::quantile_inplace(std::span<double>(scratch.finite.data(), nf), 0.10);
  if (std::isnan(out.baseline_ms)) return out;

  out.windows_scanned = windows_scanned_;
  out.windows_skipped_dark = windows_skipped_dark_;
  out.windows_skipped_quiet = windows_skipped_quiet_;

  scratch.cps.assign(cps_.begin(), cps_.end());
  for (const std::size_t end : scanned_ends_) {
    if (end < v.size()) scratch.cps.push_back(end);
  }
  // Trailing windows the stream never completed (all truncated at the
  // series end), processed exactly as the batch loop would.
  for (std::size_t begin = next_begin_; begin < v.size(); begin += stride_) {
    const std::size_t end = std::min(begin + win_, v.size());
    const std::span<const double> chunk(v.data() + begin, end - begin);
    const std::size_t finite = scratch.index.not_nan(begin, end);
    switch (detail::scan_window(chunk, begin, finite, opts_, scratch.cp, scratch.finite,
                                scratch.cps)) {
      case detail::WindowOutcome::kDark:
        ++out.windows_skipped_dark;
        break;
      case detail::WindowOutcome::kQuiet:
        ++out.windows_skipped_quiet;
        break;
      case detail::WindowOutcome::kScanned:
        ++out.windows_scanned;
        if (end < v.size()) scratch.cps.push_back(end);
        break;
    }
  }

  detail::assemble_result(full, opts_, scratch, out);
  return out;
}

LevelShiftResult OnlineLevelShift::finalize(const SeriesView& full) const {
  thread_local DetectScratch scratch;
  return finalize(full, scratch);
}

LevelShiftResult OnlineLevelShift::finalize() const {
  IXP_CHECK(retain_, "finalize() without a view requires retain_samples = true");
  return finalize(SeriesView{std::span<const double>(retained_), start_, interval_});
}

}  // namespace ixp::tslp
