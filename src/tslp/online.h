// Incremental (online) level-shift detection.
//
// OnlineLevelShift consumes samples as campaign rounds complete and runs
// the expensive part of the detector -- the per-window rank-CUSUM
// bootstraps -- as soon as each 50%-overlapping analysis window fills.
// finalize() then replays only the cheap O(n) assembly (baseline, segment
// medians, sanitization, significance) against a borrowed view of the full
// series, typically decoded transiently from the columnar store, so no
// per-link raw series is ever materialized long-term.
//
// Equivalence: a window's scan depends only on its samples, its begin
// index, and the options -- never on when the samples arrived -- and every
// order-sensitive decision (the "window end is an implicit change point
// when it is not the series end" rule, trailing truncated windows) is
// deferred to finalize.  Feeding one sample at a time, in chunks at
// arbitrary split points, or all at once therefore yields byte-identical
// results to detect_fast -- and hence to the legacy scalar detector.
// Amortized cost per sample is O(1) bootstraps-per-window aside; retained
// state is O(window) samples plus the accepted change points.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tslp/engine.h"
#include "tslp/level_shift.h"

namespace ixp::tslp {

class OnlineLevelShift {
 public:
  /// `start`/`interval` fix the series time base (must match the view
  /// given to finalize).  With `retain_samples`, the detector keeps its
  /// own copy of the series so the no-argument finalize() works -- handy
  /// for tests and standalone use; campaigns leave it off and finalize
  /// against the columnar store's decode buffer.
  OnlineLevelShift(LevelShiftOptions opts, TimePoint start, Duration interval,
                   bool retain_samples = false);

  /// Appends one sample (NaN = unanswered probe) and processes any
  /// analysis window it completes.
  void push(double ms);
  /// Appends a chunk of samples.
  void push(std::span<const double> ms);

  /// Samples seen so far.
  [[nodiscard]] std::size_t samples_seen() const { return n_; }
  /// Samples currently buffered (bounded by window + stride regardless of
  /// series length; pinned by OnlineBoundedMemory).
  [[nodiscard]] std::size_t pending_samples() const { return pending_.size(); }
  /// Windows fully processed so far.
  [[nodiscard]] std::size_t windows_processed() const {
    return windows_scanned_ + windows_skipped_dark_ + windows_skipped_quiet_;
  }

  /// Completes trailing (truncated) windows and assembles the result over
  /// `full`, which must hold exactly the samples pushed so far on the same
  /// time base.  Does not mutate detector state: pushing more samples and
  /// finalizing again later is allowed (the always-on observatory mode).
  [[nodiscard]] LevelShiftResult finalize(const SeriesView& full, DetectScratch& scratch) const;
  [[nodiscard]] LevelShiftResult finalize(const SeriesView& full) const;
  /// Requires retain_samples = true.
  [[nodiscard]] LevelShiftResult finalize() const;

  [[nodiscard]] const LevelShiftOptions& options() const { return opts_; }

 private:
  void process_ready();

  LevelShiftOptions opts_;
  TimePoint start_;
  Duration interval_;
  bool retain_;
  std::size_t win_ = 2;
  std::size_t stride_ = 1;

  std::vector<double> retained_;  ///< full copy, only when retain_
  std::vector<double> pending_;   ///< samples [base_, n_)
  std::size_t base_ = 0;
  std::size_t n_ = 0;
  std::size_t next_begin_ = 0;  ///< next window begin awaiting processing

  std::vector<std::size_t> cps_;           ///< accepted global indices
  std::vector<std::size_t> scanned_ends_;  ///< ends of scanned windows
  std::size_t windows_scanned_ = 0;
  std::size_t windows_skipped_dark_ = 0;
  std::size_t windows_skipped_quiet_ = 0;
};

}  // namespace ixp::tslp
