#include "tslp/loss_analysis.h"

#include <cmath>
#include <limits>

namespace ixp::tslp {

LossCorrelation correlate_loss(const LossSeries& loss, const RttSeries& rtt,
                               const LevelShiftResult& shifts) {
  LossCorrelation out;
  double sum_in = 0, sum_out = 0;
  std::vector<std::pair<bool, double>> points;
  points.reserve(loss.batches.size());

  for (const auto& batch : loss.batches) {
    const std::size_t idx = rtt.index_of(batch.at);
    bool inside = false;
    for (const auto& e : shifts.episodes) {
      if (idx >= e.begin && idx < e.end) {
        inside = true;
        break;
      }
    }
    const double rate = batch.loss_rate();
    points.emplace_back(inside, rate);
    if (inside) {
      sum_in += rate;
      ++out.batches_in;
    } else {
      sum_out += rate;
      ++out.batches_out;
    }
  }
  if (out.batches_in) out.loss_in_episodes = sum_in / static_cast<double>(out.batches_in);
  if (out.batches_out) out.loss_outside = sum_out / static_cast<double>(out.batches_out);

  // Point-biserial correlation.
  const double n = static_cast<double>(points.size());
  if (n >= 4 && out.batches_in > 0 && out.batches_out > 0) {
    const double mean = (sum_in + sum_out) / n;
    double var = 0;
    for (const auto& [inside, rate] : points) {
      (void)inside;
      var += (rate - mean) * (rate - mean);
    }
    // Sample standard deviation (n - 1), the denominator the point-biserial
    // coefficient is defined with; n >= 4 is guaranteed above.
    const double sd = std::sqrt(var / (n - 1.0));
    if (sd > 0) {
      const double p = static_cast<double>(out.batches_in) / n;
      out.correlation =
          (out.loss_in_episodes - out.loss_outside) / sd * std::sqrt(p * (1.0 - p));
    }
  } else {
    out.correlation = std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

}  // namespace ixp::tslp
