#include "tslp/loss_analysis.h"

#include <cmath>
#include <limits>

namespace ixp::tslp {

LossCorrelation correlate_loss(const LossSeries& loss, const RttSeries& rtt,
                               const LevelShiftResult& shifts) {
  LossCorrelation out;
  double sum_in = 0, sum_out = 0;
  double rate_min = std::numeric_limits<double>::infinity();
  double rate_max = -std::numeric_limits<double>::infinity();
  std::vector<std::pair<bool, double>> points;
  points.reserve(loss.batches.size());

  for (const auto& batch : loss.batches) {
    // A batch that sent nothing carries no measurement: counting it as a
    // zero-loss observation diluted both means and the correlation
    // (regression: EmptyBatchesAreNotObservations).
    if (batch.sent <= 0) {
      ++out.batches_skipped;
      continue;
    }
    const std::size_t idx = rtt.index_of(batch.at);
    bool inside = false;
    for (const auto& e : shifts.episodes) {
      if (idx >= e.begin && idx < e.end) {
        inside = true;
        break;
      }
    }
    const double rate = batch.loss_rate();
    rate_min = std::min(rate_min, rate);
    rate_max = std::max(rate_max, rate);
    points.emplace_back(inside, rate);
    if (inside) {
      sum_in += rate;
      ++out.batches_in;
    } else {
      sum_out += rate;
      ++out.batches_out;
    }
  }
  if (out.batches_in) out.loss_in_episodes = sum_in / static_cast<double>(out.batches_in);
  if (out.batches_out) out.loss_outside = sum_out / static_cast<double>(out.batches_out);

  // Point-biserial correlation.  The degeneracy test is exact (max rate ==
  // min rate), not `sd > 0`: summing a constant rate accumulates rounding,
  // so the computed variance of a constant series is a tiny nonzero and
  // the quotient reported a garbage coefficient instead of "undefined"
  // (regression: ZeroVarianceLossIsUndefined).
  const double n = static_cast<double>(points.size());
  if (n >= 4 && out.batches_in > 0 && out.batches_out > 0 && rate_max > rate_min) {
    const double mean = (sum_in + sum_out) / n;
    double var = 0;
    for (const auto& [inside, rate] : points) {
      (void)inside;
      var += (rate - mean) * (rate - mean);
    }
    // Sample standard deviation (n - 1), the denominator the point-biserial
    // coefficient is defined with; n >= 4 is guaranteed above.
    const double sd = std::sqrt(var / (n - 1.0));
    if (sd > 0) {
      const double p = static_cast<double>(out.batches_in) / n;
      out.correlation =
          (out.loss_in_episodes - out.loss_outside) / sd * std::sqrt(p * (1.0 - p));
    } else {
      // Unreachable given the exact degeneracy test above, but the
      // coefficient is undefined -- never 0 -- whenever the denominator is.
      out.correlation = std::numeric_limits<double>::quiet_NaN();
    }
  } else {
    out.correlation = std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

}  // namespace ixp::tslp
