// Level-shift detection on RTT series -- the paper's §5.2 algorithm.
//
// The detector runs the rank-based non-parametric CUSUM change-point test
// (stats/changepoint.h, after Taylor [40]) over windows of the series,
// converts accepted change points into level segments, and extracts
// *elevated episodes*: maximal runs where the level sits at least
// `threshold_ms` above the series baseline for at least `min_duration`
// (paper values: 10 ms and 30 minutes at a 5-minute cadence).
//
// Episode magnitude corresponds to the filled router buffer, which is the
// A_w the paper reports; episode duration is the up-to-down width dt_UD.
// sanitize() merges episodes split by brief dips, matching the paper's
// "level shifts sanitization" step before computing dt_UD.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/changepoint.h"
#include "tslp/series.h"

namespace ixp::tslp {

/// Which implementation LevelShiftDetector::detect runs.  Both produce
/// byte-identical results (pinned by the golden corpus and the equivalence
/// suites in tests/test_tslp.cc); kLegacy is retained as the oracle and as
/// the benchmark baseline.
enum class DetectorEngine {
  kFast,    ///< scratch-reusing, vectorized path (tslp/engine.h)
  kLegacy,  ///< original per-series scalar pipeline
};

struct LevelShiftOptions {
  double threshold_ms = 10.0;        ///< minimum magnitude to label a shift
  Duration min_duration = kMinute * 30;
  Duration window = kDay;            ///< change-point analysis window
  stats::CusumOptions cusum;         ///< rank-based by default
  /// Windows whose p95-p05 spread is below threshold/2 cannot contain a
  /// qualifying shift and are skipped (big speedup on quiet links).
  bool skip_quiet_windows = true;
  /// Merge episodes separated by gaps up to this long (sanitization).
  Duration merge_gap = kMinute * 30;

  // ---- Gap tolerance ----
  // Real deployments return gappy series (monitor outages, ICMP rate
  // limiting, loss trains); missing rounds must never be treated as
  // observations.  These rules decide when the surviving samples still
  // support a verdict.
  /// Missing runs of at least this many samples become explicit SeriesGap
  /// markers in the result.
  std::size_t gap_min_run = 6;
  /// Windows with fewer finite samples than this are skipped outright: a
  /// handful of surviving points cannot support a change-point decision.
  std::size_t min_finite_window = 8;
  /// A raw episode must carry at least this fraction of finite samples
  /// over its span, or it is discarded as unsupported.
  double min_episode_coverage = 0.25;
  /// Below this overall finite fraction the series is unjudgeable and the
  /// detector reports no episodes at all.
  double min_coverage = 0.02;
  /// Merge episodes separated by an *all-missing* run of any length: a gap
  /// carries no evidence that the level ever came back down.  (Gaps with
  /// even one quiet finite sample in between still split episodes.)
  bool bridge_gaps = true;

  /// Implementation selector; results are identical either way.
  DetectorEngine engine = DetectorEngine::kFast;
};

/// Episode duration floor in samples.  Rounds *up*: an episode shorter than
/// `min_duration` must never pass, so at a 7-minute cadence a 30-minute
/// floor requires 5 samples (35 min), not the 4 samples (28 min) the old
/// truncating division admitted (regression: MinDurationCeilAtOddCadence).
inline std::size_t min_episode_samples(Duration min_duration, Duration interval) {
  const std::int64_t num = min_duration.count();
  const std::int64_t den = interval.count();
  // No duration floor means no filter: zero, not one.  (Behaviorally the
  // same -- every episode spans at least one sample -- but a caller
  // comparing against the configured floor must see "none".)
  if (num <= 0) return 0;
  if (den <= 0) return 1;
  return static_cast<std::size_t>(std::max<std::int64_t>(1, (num + den - 1) / den));
}

/// One elevated episode: [begin, end) sample indices.
struct Episode {
  std::size_t begin = 0;
  std::size_t end = 0;
  double magnitude_ms = 0.0;  ///< elevated level minus baseline
  /// Two-sided Mann-Whitney p-value of the episode's samples against the
  /// series' baseline samples; ~0 for genuine level shifts.
  double p_value = 1.0;

  [[nodiscard]] std::size_t samples() const { return end - begin; }
  [[nodiscard]] bool significant(double alpha = 0.01) const { return p_value < alpha; }
};

/// The sanitization step: merges episodes whose gap is <= `gap_samples`
/// samples, weighting the merged magnitude by each episode's contribution
/// of *new* (non-overlapping) samples.  Input must be sorted by `begin`;
/// overlapping and even fully nested episodes are handled (a nested episode
/// never shrinks the merged span).  Exposed for direct testing.
std::vector<Episode> sanitize_episodes(std::vector<Episode> raw, std::size_t gap_samples);

/// Same merge, with an extra predicate: episodes whose inter-gap
/// [prev_end, next_begin) satisfies `also_merge` are merged even when the
/// gap exceeds `gap_samples`.  Used by the detector to bridge all-missing
/// gaps; a null predicate reduces to the two-argument form.
std::vector<Episode> sanitize_episodes(
    std::vector<Episode> raw, std::size_t gap_samples,
    const std::function<bool(std::size_t, std::size_t)>& also_merge);

/// Paranoid-mode invariant check (sorted, non-overlapping, non-empty);
/// shared by both detector engines.  No-op unless paranoid checks are on.
void check_episode_invariants(const std::vector<Episode>& episodes);

struct LevelShiftResult {
  double baseline_ms = 0.0;           ///< robust base RTT level
  double coverage = 1.0;              ///< finite fraction of the series
  std::vector<SeriesGap> gaps;        ///< missing runs >= gap_min_run
  std::vector<stats::Segment> segments;
  std::vector<Episode> episodes;      ///< sanitized, duration-filtered
  /// Elevated segments that qualified as episodes before sanitization
  /// merged them; episodes.size() <= raw_episode_count always holds.
  std::size_t raw_episode_count = 0;
  /// True when the series was too dark to judge (coverage < min_coverage)
  /// and the detector refused to emit any verdict.
  bool refused_low_coverage = false;

  // Window telemetry (identical across engines; the fast path's skip
  // shortcuts classify windows exactly as the scalar loop would).
  std::size_t windows_scanned = 0;        ///< ran change-point detection
  std::size_t windows_skipped_dark = 0;   ///< fewer than min_finite_window
  std::size_t windows_skipped_quiet = 0;  ///< p95-p05 spread below threshold/2

  [[nodiscard]] bool any() const { return !episodes.empty(); }
  /// Average episode magnitude (the paper's A_w); NaN if no episodes.
  [[nodiscard]] double average_magnitude() const;
  /// Average episode duration (the paper's dt_UD).
  [[nodiscard]] Duration average_duration(Duration interval) const;
  /// Average spacing between consecutive episode starts (periodicity).
  [[nodiscard]] Duration average_period(Duration interval) const;
};

class LevelShiftDetector {
 public:
  explicit LevelShiftDetector(LevelShiftOptions opts = {}) : opts_(opts) {}

  /// Runs the full pipeline on one series, dispatching on opts.engine.
  [[nodiscard]] LevelShiftResult detect(const RttSeries& series) const;

  /// The original scalar pipeline, regardless of opts.engine — the
  /// equivalence oracle and the benchmark baseline.
  [[nodiscard]] LevelShiftResult detect_legacy(const RttSeries& series) const;

  [[nodiscard]] const LevelShiftOptions& options() const { return opts_; }

 private:
  LevelShiftOptions opts_;
};

}  // namespace ixp::tslp
