// Congestion classification of a monitored interdomain link (§5.2/§6).
//
// The paper's decision procedure:
//   * level shifts >= threshold on the far side           -> "potentially
//     congested";
//   * plus a recurring diurnal pattern                    -> candidate;
//   * plus a clean near side (no level shifts there)      -> "congested";
//     a diurnal far side with an ambiguous near side      -> inconclusive,
//     tagged for further analysis;
//   * congestion that is later mitigated (the pattern disappears well
//     before the campaign ends) is *transient*, otherwise *sustained*.
//
// The classifier also computes the waveform characteristics reported in
// the case studies: A_w (average shift magnitude), dt_UD (average up-down
// duration), periodicity, and weekday/weekend amplitude split.
#pragma once

#include <string>

#include "stats/periodicity.h"
#include "tslp/level_shift.h"
#include "tslp/series.h"

namespace ixp::tslp {

/// Probing rounds per day at the given cadence, rounded to nearest and
/// never zero.  Truncating instead (the old behaviour) skewed the diurnal
/// day slicing for cadences that do not divide 24 h, and returned 0 for
/// cadences above one day, which disabled the diurnal test entirely.
std::size_t samples_per_day(Duration interval);

enum class Verdict {
  kNotCongested,
  kPotentiallyCongested,  ///< far-side shifts, no recurring diurnal pattern
  kInconclusive,          ///< far diurnal but near side unclear
  kCongested,             ///< far diurnal + clean near side
};

enum class Persistence {
  kNone,
  kTransient,  ///< pattern disappeared before the campaign end
  kSustained,  ///< pattern continued to the end of the measurements
};

struct WaveformStats {
  double a_w_ms = 0.0;            ///< average level-shift magnitude
  Duration dt_ud{};               ///< average up-to-down duration
  Duration period{};              ///< average spacing of episode starts
  double weekday_peak_ms = 0.0;   ///< p95 far RTT above baseline, weekdays
  double weekend_peak_ms = 0.0;   ///< p95 far RTT above baseline, weekends
};

struct ClassifierOptions {
  LevelShiftOptions level_shift;
  stats::DiurnalOptions diurnal;
  /// Near side is "clean" when it has no episode at this (stricter)
  /// threshold.
  double near_threshold_ms = 5.0;
  /// Pattern must be absent for this long before the campaign end to call
  /// the congestion transient.
  Duration sustain_margin = kDay * 14;
};

struct LinkReport {
  std::string key;
  Verdict verdict = Verdict::kNotCongested;
  Persistence persistence = Persistence::kNone;
  LevelShiftResult far_shifts;
  LevelShiftResult near_shifts;
  stats::DiurnalScore diurnal;
  WaveformStats waveform;
  bool near_clean = true;
  /// Every far episode's onset coincides with a responder-identity change:
  /// the level shifts are explained by a forwarding change, and any
  /// congestion verdict was downgraded by crosscheck_reroute().
  bool reroute_suspect = false;

  [[nodiscard]] bool potentially_congested() const {
    return verdict != Verdict::kNotCongested;
  }
  [[nodiscard]] bool congested() const { return verdict == Verdict::kCongested; }
  [[nodiscard]] bool has_diurnal_pattern() const { return diurnal.recurring; }
};

/// Reroute-vs-congestion discrimination: cross-checks the report's far
/// level-shift episodes against the rounds where the TSLP driver re-learned
/// the hop distance because the responder identity changed
/// (LinkSeries::responder_changes).  When the link has episodes and every
/// one of them begins within `tolerance_rounds` of such a change, the RTT
/// level shift is explained by the path moving under the monitor, not by a
/// queue: the report is flagged `reroute_suspect` and a kCongested /
/// kInconclusive verdict is downgraded to kPotentiallyCongested.  Returns
/// true when the flag was applied.  A link with even one unexplained
/// episode keeps its verdict — partial reroutes must not launder real
/// congestion.
bool crosscheck_reroute(LinkReport& report,
                        const std::vector<std::size_t>& responder_changes,
                        std::size_t tolerance_rounds = 6);

class CongestionClassifier {
 public:
  explicit CongestionClassifier(ClassifierOptions opts = {});

  [[nodiscard]] LinkReport classify(const LinkSeries& link) const;

  /// The classification tail given already-computed level-shift results:
  /// verdict ladder, diurnality, waveform, persistence.  classify() is
  /// detect + this; campaigns running the *online* detector call it
  /// directly with the finalized per-side results so detection never runs
  /// twice.  `link` still provides the far series for diurnality and the
  /// waveform peaks.
  [[nodiscard]] LinkReport classify_with_shifts(const LinkSeries& link, LevelShiftResult far,
                                                LevelShiftResult near) const;

  [[nodiscard]] const ClassifierOptions& options() const { return opts_; }

 private:
  ClassifierOptions opts_;
};

}  // namespace ixp::tslp
