#include "geo/geo.h"

#include <algorithm>

#include "util/strings.h"

namespace ixp::geo {

void GeoDatabase::add(const net::Ipv4Prefix& prefix, Location loc) {
  map_.insert(prefix, std::move(loc));
}

std::optional<Location> GeoDatabase::lookup(net::Ipv4Address a) const {
  const Location* loc = map_.lookup(a);
  if (!loc) return std::nullopt;
  return *loc;
}

namespace {
// Capital-city table for the countries in our scenarios.
const std::unordered_map<std::string, std::string>& capitals() {
  static const std::unordered_map<std::string, std::string> kCapitals = {
      {"GH", "Accra"},        {"TZ", "Dar es Salaam"}, {"ZA", "Johannesburg"},
      {"GM", "Serekunda"},    {"KE", "Nairobi"},       {"RW", "Kigali"},
      {"NG", "Lagos"},        {"US", "Ashburn"},       {"GB", "London"},
      {"FR", "Paris"},        {"ZZ", "Unknown"},
  };
  return kCapitals;
}
}  // namespace

GeoDatabase build_geo_database(const topo::Topology& topology) {
  GeoDatabase db;
  for (const auto& [asn, info] : topology.ases()) {
    (void)asn;
    const auto it = capitals().find(info.country);
    const std::string city = it == capitals().end() ? "Unknown" : it->second;
    for (const auto& p : info.prefixes) db.add(p, {city, info.country});
  }
  for (const auto& [prefix, asn] : topology.infra_delegations()) {
    const topo::AsInfo* info = topology.find_as(asn);
    const std::string country = info ? info->country : "ZZ";
    const auto it = capitals().find(country);
    db.add(prefix, {it == capitals().end() ? "Unknown" : it->second, country});
  }
  for (const auto& [name, ixp] : topology.ixps()) {
    (void)name;
    db.add(ixp.peering_prefix, {ixp.city, ixp.country});
    db.add(ixp.management_prefix, {ixp.city, ixp.country});
  }
  return db;
}

const std::vector<std::pair<std::string, std::string>>& city_tokens() {
  static const std::vector<std::pair<std::string, std::string>> kTokens = {
      {"Accra", "acc"},     {"Dar es Salaam", "dar"}, {"Johannesburg", "jnb"},
      {"Serekunda", "bjl"}, {"Nairobi", "nbo"},       {"Kigali", "kgl"},
      {"Lagos", "los"},     {"London", "lhr"},        {"Paris", "cdg"},
      {"Ashburn", "iad"},
  };
  return kTokens;
}

std::string make_rdns_name(net::Ipv4Address addr, topo::Asn asn, const std::string& city) {
  std::string token = "xxx";
  for (const auto& [c, t] : city_tokens()) {
    if (c == city) {
      token = t;
      break;
    }
  }
  // Interface index octets keep names unique, as real operators do.
  const std::uint32_t v = addr.value();
  return strformat("ge-%u-%u-%u.%s.as%u.afr.net", (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff,
                   token.c_str(), asn);
}

std::optional<std::string> parse_rdns_city(const std::string& rdns) {
  const auto labels = split(to_lower(rdns), '.');
  for (const auto& label : labels) {
    for (const auto& [city, token] : city_tokens()) {
      if (label == token) return city;
    }
  }
  return std::nullopt;
}

LinkLocationCheck check_link_location(const GeoDatabase& db, net::Ipv4Address near_ip,
                                      net::Ipv4Address far_ip, const topo::IxpInfo& ixp) {
  LinkLocationCheck out;
  const auto near_loc = db.lookup(near_ip);
  const auto far_loc = db.lookup(far_ip);
  auto matches = [&](const std::optional<Location>& loc) {
    return loc && (loc->city == ixp.city || loc->country == ixp.country);
  };
  out.near_matches = matches(near_loc);
  out.far_matches = matches(far_loc);
  return out;
}

}  // namespace ixp::geo
