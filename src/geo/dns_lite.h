// dns-lite: a reverse-DNS (PTR) substrate.
//
// The paper uses "hints in Reverse DNS outputs" [19, 34] as an added check
// that an inferred link really sits at the IXP: operators embed city or
// IATA tokens in router interface names.  dns-lite builds the PTR zone a
// regional operator community would publish -- one record per router
// interface, named with geo::make_rdns_name -- and answers lookups.
//
// A deliberate fraction of interfaces has no PTR record (unnamed
// infrastructure is common), and a small fraction carries a *stale* name
// whose city token no longer matches reality; the cross-check code must
// treat rDNS as a hint, not truth, exactly as the paper does.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "geo/geo.h"
#include "topo/topology.h"

namespace ixp::geo {

struct DnsLiteOptions {
  double unnamed_fraction = 0.15;  ///< interfaces with no PTR record
  double stale_fraction = 0.03;    ///< PTRs pointing at the wrong city
  std::uint64_t seed = 0xd45;
};

class DnsLite {
 public:
  /// Builds the PTR zone from every named router interface in the
  /// topology, using the owning AS's country capital (or the IXP's city
  /// for addresses inside an IXP prefix) as the name's location token.
  DnsLite(const topo::Topology& topology, DnsLiteOptions opts = {});

  /// PTR lookup; nullopt when the interface is unnamed.
  [[nodiscard]] std::optional<std::string> ptr(net::Ipv4Address a) const;

  /// Convenience: the city token parsed out of the PTR record, if any.
  [[nodiscard]] std::optional<std::string> city_hint(net::Ipv4Address a) const;

  [[nodiscard]] std::size_t zone_size() const { return zone_.size(); }
  [[nodiscard]] std::size_t stale_records() const { return stale_; }

 private:
  std::map<net::Ipv4Address, std::string> zone_;
  std::size_t stale_ = 0;
};

/// Three-way location cross-check for one link end, combining the
/// geolocation database and the rDNS hint (the §5.1 methodology):
/// agreement when both sources name the IXP's city, conflict when they
/// disagree, and inconclusive when neither says anything.
enum class LocationVerdict { kConfirmed, kWeak, kConflict, kInconclusive };

LocationVerdict check_end_location(const GeoDatabase& db, const DnsLite& dns,
                                   net::Ipv4Address addr, const topo::IxpInfo& ixp);

}  // namespace ixp::geo
