// geo-lite: prefix-keyed geolocation plus reverse-DNS hints.
//
// The paper cross-checks that both IPs of each inferred IXP link geolocate
// to the IXP's city, using the commercial Netacuity database [12] plus
// hints embedded in reverse DNS names [19, 34].  We reproduce both sources:
// a prefix->location database generated from the topology's registry data,
// and rDNS names of the "ge-0-0-1.accra2.GIXA.net.gh" style whose tokens a
// parser maps back to cities/IATA codes.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/prefix_map.h"
#include "topo/topology.h"

namespace ixp::geo {

struct Location {
  std::string city;
  std::string country;  ///< ISO-ish code
};

/// Netacuity-like database: longest-prefix lookup to a location.
class GeoDatabase {
 public:
  void add(const net::Ipv4Prefix& prefix, Location loc);
  [[nodiscard]] std::optional<Location> lookup(net::Ipv4Address a) const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  net::PrefixMap<Location> map_;
};

/// Builds the database from topology registry data (AS blocks -> the AS's
/// country capital; IXP prefixes -> the IXP's city).
GeoDatabase build_geo_database(const topo::Topology& topology);

/// Known city -> IATA-like token table for African IXP cities.
const std::vector<std::pair<std::string, std::string>>& city_tokens();

/// Produces an rDNS name for a router interface, embedding the city hint:
/// e.g. "ge-0-0-1.acc.as30997.afr.net".
std::string make_rdns_name(net::Ipv4Address addr, topo::Asn asn, const std::string& city);

/// Extracts a city hint from an rDNS name; nullopt when no token matches.
std::optional<std::string> parse_rdns_city(const std::string& rdns);

/// Cross-check used in §5.1: do both ends of a link geolocate to the IXP's
/// city (or at least its country)?
struct LinkLocationCheck {
  bool near_matches = false;
  bool far_matches = false;
  [[nodiscard]] bool consistent() const { return near_matches && far_matches; }
};

LinkLocationCheck check_link_location(const GeoDatabase& db, net::Ipv4Address near_ip,
                                      net::Ipv4Address far_ip, const topo::IxpInfo& ixp);

}  // namespace ixp::geo
