#include "geo/dns_lite.h"

#include "util/rng.h"

namespace ixp::geo {
namespace {

const std::unordered_map<std::string, std::string>& capitals() {
  static const std::unordered_map<std::string, std::string> kCapitals = {
      {"GH", "Accra"},        {"TZ", "Dar es Salaam"}, {"ZA", "Johannesburg"},
      {"GM", "Serekunda"},    {"KE", "Nairobi"},       {"RW", "Kigali"},
      {"NG", "Lagos"},        {"US", "Ashburn"},       {"GB", "London"},
      {"FR", "Paris"},
  };
  return kCapitals;
}

std::string wrong_city(const std::string& right, Rng& rng) {
  const auto& tokens = city_tokens();
  for (int i = 0; i < 8; ++i) {
    const auto& cand = tokens[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(tokens.size()) - 1))];
    if (cand.first != right) return cand.first;
  }
  return tokens.front().first;
}

}  // namespace

DnsLite::DnsLite(const topo::Topology& topology, DnsLiteOptions opts) {
  Rng rng(opts.seed);
  const auto& net = topology.net();
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    const auto id = static_cast<sim::NodeId>(n);
    const topo::Asn asn = topology.router_owner(id);
    if (asn == 0) continue;  // switch fabrics and unowned nodes stay unnamed
    for (const auto& ifc : net.node(id).interfaces()) {
      if (ifc.addr.is_unspecified()) continue;
      if (rng.chance(opts.unnamed_fraction)) continue;

      std::string city = "Unknown";
      if (const auto* ixp = topology.ixp_containing(ifc.addr)) {
        city = ixp->city;
      } else if (const auto* info = topology.find_as(asn)) {
        const auto it = capitals().find(info->country);
        if (it != capitals().end()) city = it->second;
      }
      if (rng.chance(opts.stale_fraction)) {
        city = wrong_city(city, rng);
        ++stale_;
      }
      zone_[ifc.addr] = make_rdns_name(ifc.addr, asn, city);
    }
  }
}

std::optional<std::string> DnsLite::ptr(net::Ipv4Address a) const {
  const auto it = zone_.find(a);
  if (it == zone_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> DnsLite::city_hint(net::Ipv4Address a) const {
  const auto name = ptr(a);
  if (!name) return std::nullopt;
  return parse_rdns_city(*name);
}

LocationVerdict check_end_location(const GeoDatabase& db, const DnsLite& dns,
                                   net::Ipv4Address addr, const topo::IxpInfo& ixp) {
  const auto loc = db.lookup(addr);
  const bool geo_match = loc && (loc->city == ixp.city || loc->country == ixp.country);
  const auto hint = dns.city_hint(addr);
  const bool dns_match = hint && *hint == ixp.city;
  const bool dns_conflict = hint && *hint != ixp.city;

  if (geo_match && dns_match) return LocationVerdict::kConfirmed;
  if (geo_match && dns_conflict) return LocationVerdict::kConflict;
  if (geo_match || dns_match) return LocationVerdict::kWeak;
  if (dns_conflict && loc) return LocationVerdict::kConflict;
  return LocationVerdict::kInconclusive;
}

}  // namespace ixp::geo
