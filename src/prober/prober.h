// scamper-lite: the active-measurement engine.
//
// A Prober is attached to a vantage-point host inside the simulated
// network and offers the scamper primitives the paper's methodology uses:
//   * ping        -- ICMP echo with caller-controlled TTL and packet size
//   * traceroute  -- TTL sweep with per-hop retries
//   * record-route probes -- for the path-symmetry check (RR method [24,28])
// plus a token-bucket rate limiter pinned at the paper's ethical probing
// rate (small packets, 100 packets/second).
//
// Probes run in one of two modes:
//   * fast path (default) -- the probe walks the network analytically at
//     the current simulated instant (sim::Network::probe); year-long
//     campaigns are feasible this way.
//   * event mode -- the probe is injected as a real packet and the
//     simulator runs until the reply or a timeout; unit tests use this and
//     an integration test pins fast-path equivalence.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/network.h"

namespace ixp::prober {

struct ProbeOptions {
  std::uint8_t ttl = 64;
  bool record_route = false;
  std::uint32_t size_bytes = 64;   ///< paper: small probe packets
  Duration timeout = std::chrono::seconds(3);
  bool event_mode = false;
};

struct ProbeOutcome {
  bool answered = false;
  net::Ipv4Address responder;
  net::IcmpType reply_type = net::IcmpType::kEchoReply;
  Duration rtt{};
  std::uint16_t ip_id = 0;  ///< responder's IP-ID stamp (alias resolution)
  std::vector<net::Ipv4Address> record_route;
};

struct TraceHop {
  int ttl = 0;
  net::Ipv4Address addr;  ///< unset when the hop did not answer
  Duration rtt{};
};

class Prober {
 public:
  /// `vp_host` must be a sim::Host.  `pps_limit` throttles probe emission
  /// in simulated time (0 disables).
  Prober(sim::Network& net, sim::NodeId vp_host, double pps_limit = 100.0);

  /// Single probe toward `dst`.
  ProbeOutcome probe(net::Ipv4Address dst, const ProbeOptions& opts = {});

  /// Classic traceroute: increasing TTL until `dst` answers, max_ttl is
  /// reached, or `stop_after_silent` consecutive hops stay dark (scamper's
  /// gap limit -- keeps sweeps over unresponsive space cheap).
  std::vector<TraceHop> traceroute(net::Ipv4Address dst, int max_ttl = 32, int attempts = 2,
                                   int stop_after_silent = 3);

  /// Hop distance at which `addr` responds (its TTL from the VP), or
  /// nullopt if it never answers within max_ttl.
  std::optional<int> hop_distance(net::Ipv4Address addr, int max_ttl = 32);

  /// Path-symmetry check via the record-route option: probes `dst` with RR
  /// and reports whether the forward stamps are mirrored on the return
  /// (true = route symmetric as far as the RR slots can see).
  std::optional<bool> record_route_symmetric(net::Ipv4Address dst);

  /// Reverse-path inference via record-route (the Reverse Traceroute idea
  /// the paper cites [24]): the RR stamps after the responder's own stamp
  /// are the egress interfaces of the routers the reply crossed, in order.
  /// Empty when the responder never stamped (option exhausted en route).
  std::vector<net::Ipv4Address> reverse_hops(net::Ipv4Address dst);

  /// Doubletree-style traceroute for large sweeps (Donnet et al.; scamper
  /// implements the same idea for bdrmap's prefix sweeps): hops already in
  /// `stop_set` end the trace early -- the path from there toward the
  /// destination's vicinity was explored by an earlier trace.  Newly seen
  /// responding hops are added to the stop set.  Near-end hops are always
  /// probed (the border inference needs them fresh).
  std::vector<TraceHop> traceroute_doubletree(net::Ipv4Address dst,
                                              std::set<net::Ipv4Address>& stop_set,
                                              int max_ttl = 32, int attempts = 2,
                                              int always_probe_first = 2);

  [[nodiscard]] net::Ipv4Address source_address() const { return src_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t replies_received() const { return replies_; }

  sim::Network& network() { return *net_; }
  [[nodiscard]] sim::NodeId host_id() const { return host_; }

 private:
  ProbeOutcome probe_event(const net::Packet& pkt, const ProbeOptions& opts);
  void rate_limit();

  sim::Network* net_;
  sim::NodeId host_;
  net::Ipv4Address src_;
  std::uint16_t ident_;
  std::uint16_t next_seq_ = 1;
  double pps_limit_;
  TimePoint next_slot_{};
  std::uint64_t probes_sent_ = 0;
  std::uint64_t replies_ = 0;
  // Event-mode reply mailbox keyed by (ident, seq).
  std::map<std::pair<std::uint16_t, std::uint16_t>, ProbeOutcome> mailbox_;
};

}  // namespace ixp::prober
