#include "prober/warts_lite.h"

#include <bit>
#include <cstring>
#include <string>

namespace ixp::prober {
namespace {

constexpr char kMagic[4] = {'W', 'L', 'T', '1'};
constexpr std::uint8_t kTypeLink = 1;
constexpr std::uint8_t kTypeLoss = 2;
constexpr std::uint8_t kTypeTrace = 3;

// ---- little-endian primitive encoding into a byte buffer -------------------

void put_u16(std::string& b, std::uint16_t v) {
  b.push_back(static_cast<char>(v & 0xff));
  b.push_back(static_cast<char>((v >> 8) & 0xff));
}
void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_i64(std::string& b, std::int64_t v) { put_u64(b, static_cast<std::uint64_t>(v)); }
void put_f64(std::string& b, double v) { put_u64(b, std::bit_cast<std::uint64_t>(v)); }
void put_str(std::string& b, const std::string& s) {
  put_u16(b, static_cast<std::uint16_t>(s.size()));
  b.append(s);
}

struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    std::memcpy(&v, p, 2);
    p += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint16_t n = u16();
    if (!need(n)) return {};
    std::string s(p, n);
    p += n;
    return s;
  }
};

void put_series(std::string& b, const tslp::RttSeries& s) {
  put_i64(b, s.start.ns());
  put_i64(b, s.interval.count());
  put_u32(b, static_cast<std::uint32_t>(s.ms.size()));
  for (double v : s.ms) put_f64(b, v);
}

bool get_series(Cursor& c, tslp::RttSeries& s) {
  s.start = TimePoint(Duration(c.i64()));
  s.interval = Duration(c.i64());
  const std::uint32_t n = c.u32();
  if (!c.need(static_cast<std::size_t>(n) * 8)) return false;
  s.ms.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) s.ms[i] = c.f64();
  return c.ok;
}

void append_record(std::string& out, std::uint8_t type, const std::string& payload) {
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

}  // namespace

bool write_warts_lite(std::ostream& out, const WartsLiteFile& file) {
  std::string buf;
  buf.append(kMagic, 4);
  put_u16(buf, kWartsLiteVersion);

  for (const auto& l : file.links) {
    std::string p;
    put_str(p, l.key);
    put_u32(p, l.near_ip.value());
    put_u32(p, l.far_ip.value());
    put_u32(p, l.near_asn);
    put_u32(p, l.far_asn);
    p.push_back(l.at_ixp ? 1 : 0);
    put_series(p, l.near_rtt);
    put_series(p, l.far_rtt);
    append_record(buf, kTypeLink, p);
  }
  for (const auto& l : file.losses) {
    std::string p;
    put_u32(p, l.target.value());
    put_u32(p, static_cast<std::uint32_t>(l.batches.size()));
    for (const auto& b : l.batches) {
      put_i64(p, b.at.ns());
      put_u32(p, static_cast<std::uint32_t>(b.sent));
      put_u32(p, static_cast<std::uint32_t>(b.lost));
    }
    append_record(buf, kTypeLoss, p);
  }
  for (const auto& t : file.traces) {
    std::string p;
    put_u32(p, t.dst.value());
    put_i64(p, t.at.ns());
    put_u16(p, static_cast<std::uint16_t>(t.hops.size()));
    for (const auto& h : t.hops) {
      p.push_back(static_cast<char>(h.ttl));
      put_u32(p, h.addr.value());
      put_i64(p, h.rtt.count());
    }
    append_record(buf, kTypeTrace, p);
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

std::optional<WartsLiteFile> read_warts_lite(std::istream& in) {
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  Cursor c{data.data(), data.data() + data.size()};
  if (!c.need(6) || std::memcmp(c.p, kMagic, 4) != 0) return std::nullopt;
  c.p += 4;
  if (c.u16() != kWartsLiteVersion) return std::nullopt;

  WartsLiteFile file;
  while (c.ok && c.p < c.end) {
    if (!c.need(5)) return std::nullopt;
    const std::uint8_t type = static_cast<std::uint8_t>(*c.p);
    c.p += 1;
    const std::uint32_t len = c.u32();
    if (!c.need(len)) return std::nullopt;
    Cursor rec{c.p, c.p + len};
    c.p += len;

    if (type == kTypeLink) {
      tslp::LinkSeries l;
      l.key = rec.str();
      l.near_ip = net::Ipv4Address(rec.u32());
      l.far_ip = net::Ipv4Address(rec.u32());
      l.near_asn = rec.u32();
      l.far_asn = rec.u32();
      if (!rec.need(1)) return std::nullopt;
      l.at_ixp = *rec.p != 0;
      rec.p += 1;
      if (!get_series(rec, l.near_rtt) || !get_series(rec, l.far_rtt)) return std::nullopt;
      file.links.push_back(std::move(l));
    } else if (type == kTypeLoss) {
      tslp::LossSeries l;
      l.target = net::Ipv4Address(rec.u32());
      const std::uint32_t n = rec.u32();
      for (std::uint32_t i = 0; i < n && rec.ok; ++i) {
        tslp::LossBatch b;
        b.at = TimePoint(Duration(rec.i64()));
        b.sent = static_cast<int>(rec.u32());
        b.lost = static_cast<int>(rec.u32());
        l.batches.push_back(b);
      }
      if (!rec.ok) return std::nullopt;
      file.losses.push_back(std::move(l));
    } else if (type == kTypeTrace) {
      TraceRecord t;
      t.dst = net::Ipv4Address(rec.u32());
      t.at = TimePoint(Duration(rec.i64()));
      const std::uint16_t n = rec.u16();
      for (std::uint16_t i = 0; i < n && rec.ok; ++i) {
        if (!rec.need(1)) return std::nullopt;
        TraceHop h;
        h.ttl = static_cast<int>(static_cast<unsigned char>(*rec.p));
        rec.p += 1;
        h.addr = net::Ipv4Address(rec.u32());
        h.rtt = Duration(rec.i64());
        t.hops.push_back(h);
      }
      if (!rec.ok) return std::nullopt;
      file.traces.push_back(std::move(t));
    } else {
      // Unknown record type: skip (forward compatibility).
    }
  }
  if (!c.ok) return std::nullopt;
  return file;
}

}  // namespace ixp::prober
