#include "prober/prober.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace ixp::prober {

Prober::Prober(sim::Network& net, sim::NodeId vp_host, double pps_limit)
    : net_(&net), host_(vp_host), pps_limit_(pps_limit) {
  IXP_CHECK(net.node(vp_host).is_host(), "prober VP must be a Host node");
  auto& host = static_cast<sim::Host&>(net.node(vp_host));
  src_ = host.address();
  // Derive a stable ICMP ident from the host id (multiple probers on the
  // same network keep distinct ident spaces).
  ident_ = static_cast<std::uint16_t>(0x8000u | (static_cast<unsigned>(vp_host) & 0x7fff));
  host.set_rx_callback([this](const net::Packet& pkt, TimePoint at) {
    // Match replies to outstanding event-mode probes.
    std::uint16_t id = 0, seq = 0;
    if (pkt.icmp_type == net::IcmpType::kEchoReply) {
      id = pkt.ident;
      seq = pkt.seq;
    } else {
      id = pkt.quoted_ident;
      seq = pkt.quoted_seq;
    }
    if (id != ident_) return;
    ProbeOutcome out;
    out.answered = true;
    out.responder = pkt.src;
    out.reply_type = pkt.icmp_type;
    out.rtt = at - pkt.sent_at;
    out.ip_id = pkt.ip_id;
    out.record_route = pkt.route_stamps;
    mailbox_[{id, seq}] = std::move(out);
  });
}

void Prober::rate_limit() {
  if (pps_limit_ <= 0) return;
  const TimePoint now = net_->simulator().now();
  if (next_slot_ < now) next_slot_ = now;
  // Advance the simulated clock to the probe's emission slot.  In fast-path
  // mode nothing else runs in between, so this is just bookkeeping that
  // keeps the emission rate honest.
  net_->simulator().advance_to(next_slot_);
  next_slot_ += seconds(1.0 / pps_limit_);
}

ProbeOutcome Prober::probe(net::Ipv4Address dst, const ProbeOptions& opts) {
  rate_limit();
  net::Packet pkt;
  pkt.src = src_;
  pkt.dst = dst;
  pkt.ttl = opts.ttl;
  pkt.record_route = opts.record_route;
  pkt.size_bytes = std::max<std::uint32_t>(opts.size_bytes, 28);
  pkt.ident = ident_;
  pkt.seq = next_seq_++;
  pkt.sent_at = net_->simulator().now();
  ++probes_sent_;
  if (opts.event_mode) return probe_event(pkt, opts);

  sim::ProbeResult r = net_->probe(host_, pkt);
  ProbeOutcome out;
  out.answered = r.answered;
  out.responder = r.responder;
  out.reply_type = r.reply_type;
  out.rtt = r.rtt;
  out.ip_id = r.ip_id;
  out.record_route = std::move(r.record_route);
  if (out.answered) ++replies_;
  return out;
}

ProbeOutcome Prober::probe_event(const net::Packet& pkt, const ProbeOptions& opts) {
  auto& host = static_cast<sim::Host&>(net_->node(host_));
  const auto key = std::make_pair(pkt.ident, pkt.seq);
  mailbox_.erase(key);
  host.send(*net_, pkt);
  net_->simulator().run_until(pkt.sent_at + opts.timeout);
  const auto it = mailbox_.find(key);
  if (it == mailbox_.end()) return {};
  ProbeOutcome out = std::move(it->second);
  mailbox_.erase(it);
  ++replies_;
  return out;
}

std::vector<TraceHop> Prober::traceroute(net::Ipv4Address dst, int max_ttl, int attempts,
                                         int stop_after_silent) {
  std::vector<TraceHop> hops;
  int silent = 0;
  for (int ttl = 1; ttl <= max_ttl; ++ttl) {
    ProbeOptions o;
    o.ttl = static_cast<std::uint8_t>(ttl);
    TraceHop hop;
    hop.ttl = ttl;
    for (int a = 0; a < attempts; ++a) {
      const ProbeOutcome r = probe(dst, o);
      if (r.answered) {
        hop.addr = r.responder;
        hop.rtt = r.rtt;
        break;
      }
    }
    hops.push_back(hop);
    if (hop.addr == dst) break;
    if (hop.addr.is_unspecified()) {
      if (++silent >= stop_after_silent) break;
    } else {
      silent = 0;
    }
  }
  return hops;
}

std::optional<int> Prober::hop_distance(net::Ipv4Address addr, int max_ttl) {
  const auto hops = traceroute(addr, max_ttl, 2);
  for (const auto& h : hops) {
    if (h.addr == addr) return h.ttl;
  }
  return std::nullopt;
}

std::optional<bool> Prober::record_route_symmetric(net::Ipv4Address dst) {
  ProbeOptions o;
  o.record_route = true;
  const ProbeOutcome r = probe(dst, o);
  if (!r.answered) return std::nullopt;
  // Forward stamps are the egress interfaces of routers from the VP toward
  // dst.  On a symmetric route the reply re-traverses the same routers, so
  // every stamped address must sit on a router that is also on the forward
  // path.  With our 9-slot RR and short IXP paths, a sufficient practical
  // check (and the one scamper's RR analysis effectively performs on these
  // topologies) is: the stamps up to the responder must include the egress
  // toward dst, and the stamp list must not contain duplicates out of
  // order.  We compare the forward half against the mirrored return half
  // when both fit in the option.
  const auto& s = r.record_route;
  if (s.empty()) return std::nullopt;
  // Locate the responder (or dst) in the stamp list: stamps before it are
  // the forward path, after it the return path.
  std::size_t pivot = s.size();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == dst || s[i] == r.responder) {
      pivot = i;
      break;
    }
  }
  if (pivot == s.size()) {
    // Responder did not stamp (option full before arrival): undecidable.
    return std::nullopt;
  }
  const std::size_t fwd_len = pivot;
  const std::size_t ret_len = s.size() - pivot - 1;
  const std::size_t n = std::min(fwd_len, ret_len);
  // Mirror test: i-th return router should be the (fwd_len-1-i)-th forward
  // router.  Interface addresses differ per direction, so compare at the
  // router granularity via the owner node.
  for (std::size_t i = 0; i < n; ++i) {
    const auto fwd_owner = net_->find_owner(s[fwd_len - 1 - i]);
    const auto ret_owner = net_->find_owner(s[pivot + 1 + i]);
    if (fwd_owner == sim::kInvalidNode || ret_owner == sim::kInvalidNode) return std::nullopt;
    if (fwd_owner != ret_owner) return false;
  }
  return true;
}

std::vector<TraceHop> Prober::traceroute_doubletree(net::Ipv4Address dst,
                                                    std::set<net::Ipv4Address>& stop_set,
                                                    int max_ttl, int attempts,
                                                    int always_probe_first) {
  std::vector<TraceHop> hops;
  int silent = 0;
  for (int ttl = 1; ttl <= max_ttl; ++ttl) {
    ProbeOptions o;
    o.ttl = static_cast<std::uint8_t>(ttl);
    TraceHop hop;
    hop.ttl = ttl;
    for (int a = 0; a < attempts; ++a) {
      const ProbeOutcome r = probe(dst, o);
      if (r.answered) {
        hop.addr = r.responder;
        hop.rtt = r.rtt;
        break;
      }
    }
    hops.push_back(hop);
    if (hop.addr.is_unspecified()) {
      if (hops.back().ttl > 0 && hop.addr == dst) break;
      if (++silent >= 3) break;
      continue;
    }
    silent = 0;
    // Every responding hop (including the destination) joins the stop set;
    // the stop check applies beyond the always-probed prefix of the path.
    const bool fresh = stop_set.insert(hop.addr).second;
    if (hop.addr == dst) break;
    if (ttl > always_probe_first && !fresh) break;
  }
  return hops;
}

std::vector<net::Ipv4Address> Prober::reverse_hops(net::Ipv4Address dst) {
  ProbeOptions o;
  o.record_route = true;
  const ProbeOutcome r = probe(dst, o);
  std::vector<net::Ipv4Address> out;
  if (!r.answered) return out;
  const auto& s = r.record_route;
  std::size_t pivot = s.size();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == dst || s[i] == r.responder) {
      pivot = i;
      break;
    }
  }
  if (pivot == s.size()) return out;  // responder did not stamp
  for (std::size_t i = pivot; i < s.size(); ++i) out.push_back(s[i]);
  return out;
}

}  // namespace ixp::prober
