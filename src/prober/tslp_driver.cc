#include "prober/tslp_driver.h"

#include <cmath>

#include "sim/faults.h"
#include "util/log.h"

namespace ixp::prober {
namespace {

struct TargetState {
  MonitorTarget target;
  int far_ttl = 0;          ///< hop distance of the far address; 0 = unknown
  int consecutive_losses = 0;
  /// Consecutive *answered* near probes whose responder belongs to the
  /// wrong router: the path under the monitor changed length, so the
  /// near probe now expires somewhere else.
  int near_mismatches = 0;
};

}  // namespace

TslpDriver::TslpDriver(Prober& prober, TslpConfig cfg) : prober_(&prober), cfg_(cfg) {}

std::vector<tslp::LinkSeries> TslpDriver::run(const std::vector<MonitorTarget>& targets,
                                              TimePoint start, TimePoint end,
                                              const std::function<void(std::size_t)>& on_round) {
  auto& sim = prober_->network().simulator();
  sim.advance_to(start);

  std::vector<TargetState> state;
  state.reserve(targets.size());
  std::vector<tslp::LinkSeries> out;
  out.reserve(targets.size());
  for (const auto& t : targets) {
    TargetState s;
    s.target = t;
    if (const auto d = prober_->hop_distance(t.far_ip, cfg_.max_ttl)) s.far_ttl = *d;
    state.push_back(s);

    tslp::LinkSeries ls;
    ls.key = t.key;
    ls.near_ip = t.near_ip;
    ls.far_ip = t.far_ip;
    ls.near_asn = t.near_asn;
    ls.far_asn = t.far_asn;
    ls.at_ixp = t.at_ixp;
    ls.near_rtt.start = start;
    ls.near_rtt.interval = cfg_.round_interval;
    ls.far_rtt.start = start;
    ls.far_rtt.interval = cfg_.round_interval;
    out.push_back(std::move(ls));
  }

  auto relearn = [this](TargetState& s) {
    s.consecutive_losses = 0;
    s.near_mismatches = 0;
    if (const auto d = prober_->hop_distance(s.target.far_ip, cfg_.max_ttl)) {
      s.far_ttl = *d;
    } else {
      s.far_ttl = 0;  // target gone (link removed / member left)
    }
  };

  const std::int64_t rounds = (end - start).count() / cfg_.round_interval.count();
  for (std::int64_t r = 0; r < rounds; ++r) {
    const TimePoint at = start + cfg_.round_interval * r;
    sim.advance_to(at);
    if (cfg_.pre_round) cfg_.pre_round(at);
    sim::FaultInjector* fi = cfg_.faults;

    // VP outage: the monitor itself is dark, so the whole round is skipped.
    // No loss bookkeeping — the network is fine, the monitor is not, and a
    // hop-distance relearn fired from here would "succeed" and reset state
    // that is in fact untouched.
    if (fi != nullptr && fi->vp_down(at)) {
      fi->note_outage_round();
      for (std::size_t i = 0; i < state.size(); ++i) {
        if (state[i].far_ttl >= 2) fi->note_suppressed(2);
        out[i].near_rtt.ms.push_back(tslp::kMissing);
        out[i].far_rtt.ms.push_back(tslp::kMissing);
      }
      if (on_round) on_round(static_cast<std::size_t>(r));
      continue;
    }

    for (std::size_t i = 0; i < state.size(); ++i) {
      TargetState& s = state[i];
      tslp::LinkSeries& ls = out[i];
      double near_ms = tslp::kMissing;
      double far_ms = tslp::kMissing;
      bool far_stale = false;
      bool near_answered = false;
      bool near_mismatch = false;
      if (s.far_ttl >= 2) {
        if (fi != nullptr && fi->lose_probe(at)) {
          fi->note_suppressed(1);
        } else {
          ProbeOptions fo;
          fo.ttl = static_cast<std::uint8_t>(s.far_ttl);
          fo.event_mode = cfg_.event_mode;
          const ProbeOutcome far = prober_->probe(s.target.far_ip, fo);
          if (!far.answered) ++probes_lost_;
          if (far.answered) {
            // A response from a different address means the path moved and
            // the configured TTL now expires at some other router: the
            // sample belongs to a different link and must not be recorded.
            if (far.responder == s.target.far_ip) {
              far_ms = to_ms(far.rtt);
            } else {
              far_stale = true;
            }
          }
        }

        if (fi != nullptr && fi->lose_probe(at)) {
          fi->note_suppressed(1);
        } else {
          ProbeOptions no;
          no.ttl = static_cast<std::uint8_t>(s.far_ttl - 1);
          no.event_mode = cfg_.event_mode;
          const ProbeOutcome near = prober_->probe(s.target.far_ip, no);
          if (!near.answered) ++probes_lost_;
          if (near.answered) {
            near_answered = true;
            // The near probe normally expires at the near router but on a
            // *different* interface than near_ip (the host-facing one), so
            // compare owning routers, not addresses.
            const auto owner = prober_->network().find_owner(near.responder);
            if (owner != sim::kInvalidNode &&
                owner == prober_->network().find_owner(s.target.near_ip)) {
              near_ms = to_ms(near.rtt);
            } else {
              near_mismatch = true;
            }
          }
        }
      }

      if (far_stale) {
        // Stale path detected from the far side: relearn immediately, as
        // the real driver re-triggers bdrmap for the affected link.  The
        // round index is recorded on the series so the classifier can
        // cross-check level-shift onsets against forwarding changes.
        ++stale_relearns_;
        ls.responder_changes.push_back(ls.far_rtt.ms.size());
        relearn(s);
      } else if (std::isnan(far_ms)) {
        if (++s.consecutive_losses >= cfg_.relearn_after_losses) {
          // Route may have moved; re-learn the hop distance.  Dead targets
          // (far_ttl 0: member gone or link down) re-poll through the same
          // path so they recover when the link returns, but only live
          // targets count as loss-forced re-learns.
          if (s.far_ttl >= 2) ++loss_relearns_;
          relearn(s);
        }
      } else {
        s.consecutive_losses = 0;
      }
      if (near_answered) {
        if (near_mismatch) {
          // The far side can keep answering (echo replies reach the target
          // at any sufficient TTL) while the near probe expires at the
          // wrong router — detect that drift too, with the same patience
          // as the loss path.
          if (++s.near_mismatches >= cfg_.relearn_after_losses) {
            ++stale_relearns_;
            ls.responder_changes.push_back(ls.far_rtt.ms.size());
            relearn(s);
          }
        } else {
          s.near_mismatches = 0;
        }
      }
      ls.near_rtt.ms.push_back(near_ms);
      ls.far_rtt.ms.push_back(far_ms);

      // Periodic record-route measurement on this link.
      if (cfg_.rr_every_rounds > 0 && r % cfg_.rr_every_rounds == 0 && s.far_ttl >= 2) {
        const auto sym = prober_->record_route_symmetric(s.target.far_ip);
        if (sym.has_value()) {
          ++record_routes_;
          if (*sym) ++rr_symmetric_;
        }
      }
    }
    if (on_round) on_round(static_cast<std::size_t>(r));
  }
  return out;
}

tslp::LossSeries measure_loss(Prober& prober, net::Ipv4Address target, TimePoint start,
                              TimePoint end, const LossConfig& cfg) {
  auto& sim = prober.network().simulator();
  tslp::LossSeries out;
  out.target = target;
  TimePoint t = start;
  while (t < end) {
    tslp::LossBatch batch;
    batch.at = t;
    for (int i = 0; i < cfg.batch_size; ++i) {
      const TimePoint pt = t + cfg.probe_interval * i;
      if (pt >= end) break;
      sim.advance_to(pt);
      ++batch.sent;
      const ProbeOutcome r = prober.probe(target);
      if (!r.answered) ++batch.lost;
    }
    if (batch.sent > 0) out.batches.push_back(batch);
    t += cfg.probe_interval * cfg.batch_size + cfg.batch_gap;
  }
  return out;
}

}  // namespace ixp::prober
