// warts-lite: a compact binary capture format for measurement output.
//
// scamper stores its measurements in the warts format; warts-lite plays the
// same role here so campaigns can be persisted and re-analysed without
// re-simulating.  The format is a sequence of length-prefixed records after
// a fixed header:
//
//   file   := magic("WLT1") u16 version  record*
//   record := u8 type  u32 payload_len  payload
//   types  := 1 link-RTT series, 2 loss series, 3 traceroute
//
// All integers are little-endian; doubles are IEEE-754 bit patterns (NaN
// encodes a lost probe).  Readers reject bad magic, unknown versions, and
// truncated records.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <vector>

#include "prober/prober.h"
#include "tslp/series.h"

namespace ixp::prober {

inline constexpr std::uint16_t kWartsLiteVersion = 1;

/// A stored traceroute (scamper's trace object, reduced to what the
/// border-mapping pipeline consumes).
struct TraceRecord {
  net::Ipv4Address dst;
  TimePoint at;
  std::vector<TraceHop> hops;
};

/// Everything one campaign run produces.
struct WartsLiteFile {
  std::vector<tslp::LinkSeries> links;
  std::vector<tslp::LossSeries> losses;
  std::vector<TraceRecord> traces;
};

/// Serializes to a stream.  Returns false on stream failure.
bool write_warts_lite(std::ostream& out, const WartsLiteFile& file);

/// Parses from a stream; nullopt on malformed input.
std::optional<WartsLiteFile> read_warts_lite(std::istream& in);

}  // namespace ixp::prober
