// TSLP measurement driver.
//
// Implements the paper's measurement loop (§4): every 5 minutes, send
// TTL-limited probes that expire at the near and the far end of every
// monitored interdomain link, for the whole campaign.  Hop distances are
// learned once by traceroute (and re-learned if a target stops answering,
// since routes move during a year).  Output is one LinkSeries per link.
//
// Loss-rate measurement (run on links flagged as repeatedly congested)
// probes both ends at one packet/second and aggregates every batch of 100
// probes into a loss fraction, as in §4.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "prober/prober.h"
#include "tslp/series.h"

namespace ixp::sim {
class FaultInjector;
}  // namespace ixp::sim

namespace ixp::prober {

/// A link to be monitored, as produced by border mapping.
struct MonitorTarget {
  std::string key;
  net::Ipv4Address near_ip;
  net::Ipv4Address far_ip;
  std::uint32_t near_asn = 0;
  std::uint32_t far_asn = 0;
  bool at_ixp = false;
};

struct TslpConfig {
  Duration round_interval = kMinute * 5;  ///< paper cadence
  int max_ttl = 32;
  /// Re-traceroute a target after this many consecutive losses (routes
  /// change over a year-long campaign).
  int relearn_after_losses = 12;
  /// Invoked at the start of every round with the round's time; campaign
  /// drivers hook world-timeline application here.
  std::function<void(TimePoint)> pre_round;
  /// Probe with real scheduled packets instead of the analytic fast path.
  /// Slow; used by the equivalence validation tests.
  bool event_mode = false;
  /// Every N rounds, send one record-route probe per target (the paper's
  /// path-symmetry campaign; Table 2 reports the totals).  0 disables.
  int rr_every_rounds = 0;
  /// Optional fault injector (not owned).  Gates whole rounds during VP
  /// outages and individual probes during loss bursts; see sim/faults.h.
  sim::FaultInjector* faults = nullptr;
};

class TslpDriver {
 public:
  TslpDriver(Prober& prober, TslpConfig cfg = {});

  /// Runs rounds from `start` to `end` (exclusive); returns one series per
  /// target.  `on_round`, if set, is called after each round with the round
  /// index (for progress reporting in long campaigns).
  std::vector<tslp::LinkSeries> run(const std::vector<MonitorTarget>& targets, TimePoint start,
                                    TimePoint end,
                                    const std::function<void(std::size_t)>& on_round = {});

  /// Successful record-route measurements accumulated across run() calls.
  [[nodiscard]] std::uint64_t record_routes() const { return record_routes_; }
  /// Of those, measurements whose stamps mirrored (symmetric paths).
  [[nodiscard]] std::uint64_t record_routes_symmetric() const { return rr_symmetric_; }
  /// Hop-distance re-learns triggered by consecutive losses.
  [[nodiscard]] std::uint64_t loss_relearns() const { return loss_relearns_; }
  /// Re-learns triggered by a responder-address change (stale path): the
  /// probe was answered, but by the wrong router — the route moved under
  /// the monitor, so the configured TTL no longer lands on this link.
  [[nodiscard]] std::uint64_t stale_relearns() const { return stale_relearns_; }
  /// Round probes (near or far) that were sent but never answered.  Fault
  /// suppressions are not counted: those probes were never on the wire.
  [[nodiscard]] std::uint64_t probes_lost() const { return probes_lost_; }

 private:
  Prober* prober_;
  TslpConfig cfg_;
  std::uint64_t record_routes_ = 0;
  std::uint64_t rr_symmetric_ = 0;
  std::uint64_t loss_relearns_ = 0;
  std::uint64_t stale_relearns_ = 0;
  std::uint64_t probes_lost_ = 0;
};

struct LossConfig {
  Duration probe_interval = kSecond;  ///< 1 packet per second (paper rate)
  int batch_size = 100;               ///< loss computed per 100 probes
  /// Gap between consecutive batches.  The paper probes continuously
  /// (gap = 0); campaigns that only need the loss *timeseries shape* can
  /// subsample with a positive gap.
  Duration batch_gap = Duration(0);
};

/// Measures loss toward one target from `start` to `end`.
tslp::LossSeries measure_loss(Prober& prober, net::Ipv4Address target, TimePoint start,
                              TimePoint end, const LossConfig& cfg = {});

}  // namespace ixp::prober
