// A tiny blocking HTTP/1.1 server (and matching client) for the serving
// layer -- no external dependencies, loopback-oriented, hardened against
// malformed input.
//
// The parser is an incremental pure function over a byte buffer: feed it
// whatever has arrived so far and it answers kOk (one complete request,
// with how many bytes it consumed), kNeedMore (keep reading), or kBad
// (answer with the indicated 4xx and close).  Every limit is explicit and
// enforced *before* buffering more input, so a hostile peer can never make
// the server hold more than `max_head_bytes + max_body_bytes` per
// connection: oversized heads are rejected with 431, oversized or
// non-numeric Content-Length with 413/400, and Transfer-Encoding (chunked
// framing) with 400 outright -- the serving API never needs request
// bodies, so the simplest rejection is also the safest.  The fuzz sweep in
// tests/test_serve.cc holds the parser to "every truncation and every
// single-byte corruption of a valid request yields kNeedMore or a clean
// 4xx, never a crash".
//
// The server runs N worker threads, each blocking in accept() on a shared
// listening socket (the kernel load-balances).  A worker owns one
// connection at a time and serves keep-alive requests in a loop; reads
// carry a short timeout so stop() is honored promptly even with idle
// connections parked on workers.  stop() drains: in-flight requests are
// answered before their connections close, and workers are joined before
// stop() returns -- the deterministic-shutdown contract `afixp serve`
// builds on (docs/SERVING.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace ixp::net {

/// Hard ceilings on one request.  Defaults fit the serving API (short GET
/// targets, no bodies) with room to spare; every limit violation maps to a
/// specific 4xx so clients can tell what they did wrong.
struct HttpLimits {
  std::size_t max_head_bytes = 8192;   ///< request line + headers, incl. CRLFs
  std::size_t max_headers = 64;
  std::size_t max_target_bytes = 2048; ///< request-target (path + query)
  std::size_t max_body_bytes = 65536;  ///< Content-Length ceiling
};

/// One parsed request.  `target` is the raw request-target; `path` and
/// `query` are the two sides of its first '?' (query empty when absent).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string query;
  int minor_version = 1;  ///< 1 for HTTP/1.1, 0 for HTTP/1.0
  std::vector<std::pair<std::string, std::string>> headers;  ///< arrival order
  std::string body;
  bool keep_alive = true;

  /// First header with this name (ASCII case-insensitive); nullptr when
  /// absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  /// Value of the query parameter `key` in `key=value&...` syntax; empty
  /// optional-style: returns `fallback` when absent or empty.
  [[nodiscard]] std::string query_param(std::string_view key,
                                        std::string_view fallback = "") const;
};

enum class HttpParse {
  kOk,        ///< one complete request parsed
  kNeedMore,  ///< prefix of a valid request; read more bytes
  kBad,       ///< malformed; answer with `status` and close
};

/// Incremental request parse over the front of `in`.  On kOk fills `*req`
/// and `*consumed` (bytes to drop from the buffer).  On kBad fills
/// `*status` with the 4xx to answer (400 malformed syntax / unsupported
/// framing, 413 body too large, 414 target too long, 431 head too large)
/// and `*error` with a one-line reason.  kNeedMore promises that no limit
/// has been exceeded yet, so callers can keep buffering safely.
HttpParse parse_http_request(std::string_view in, HttpRequest* req,
                             std::size_t* consumed, int* status, std::string* error,
                             const HttpLimits& limits = {});

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close = false;  ///< force Connection: close even mid-keep-alive
};

/// Reason phrase for the status codes the serving layer emits.
const char* http_status_reason(int status);

/// Serializes status line + headers + body.  `keep_alive` decides the
/// Connection header (overridden by resp.close).
std::string render_http_response(const HttpResponse& resp, bool keep_alive);

/// Blocking HTTP server on 127.0.0.1.  Construct, start(), serve, stop().
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
    int threads = 2;         ///< accept/serve workers
    HttpLimits limits;
    int listen_backlog = 128;
    /// Read timeout granularity: how often a worker parked on an idle
    /// connection re-checks the stop flag.
    int poll_interval_ms = 200;
    /// Idle keep-alive connections are closed after this long without a
    /// byte (0 = first poll interval closes them).
    int idle_timeout_ms = 5000;
    /// Keep-alive requests served per connection before forcing a close
    /// (bounds per-connection state lifetime).
    int max_requests_per_connection = 100000;
  };

  HttpServer(Handler handler, Options opt);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and launches the workers.  False (with `*error`
  /// filled) when the socket cannot be set up.
  bool start(std::string* error);

  /// Drains and stops: no new connections are accepted, requests already
  /// being read or handled are answered, then workers are joined.  Safe to
  /// call more than once (later calls are no-ops).
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (valid after a successful start()).
  [[nodiscard]] int port() const { return port_; }

  // Served-traffic counters (monotone, lock-free; readable at any time).
  [[nodiscard]] std::uint64_t connections_accepted() const { return connections_.load(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t bad_requests() const { return bad_requests_.load(); }

 private:
  void worker_loop();
  void serve_connection(int fd);

  Handler handler_;
  Options opt_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
};

/// Minimal blocking client for tests and the serve benchmark: one
/// keep-alive connection to 127.0.0.1:`port`.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// (Re)connects; false on failure.
  bool connect(int port);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends GET `target` and reads one full response.  False on transport
  /// error (connection reset, malformed response); the connection is then
  /// closed and must be re-connect()ed.
  bool get(const std::string& target, int* status, std::string* body);

  /// Sends raw bytes and reads whatever the server answers until it closes
  /// the connection or `max_bytes` arrive -- for malformed-input tests.
  bool raw_roundtrip(std::string_view bytes, std::string* response,
                     std::size_t max_bytes = 1 << 16);

 private:
  int fd_ = -1;
};

}  // namespace ixp::net
