// IPv4 + ICMP wire-format encoding and decoding.
//
// encode_packet() produces RFC-791/792-conformant bytes for a Packet
// (including the record-route option and correct internet checksums);
// decode_packet() parses them back.  The simulator itself moves Packet
// structs for speed; the wire layer backs the warts-lite capture format and
// the conformance tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace ixp::net {

/// RFC 1071 internet checksum over the given bytes.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Serializes to on-wire IPv4+ICMP bytes.  The ICMP payload is zero-padded
/// to reach packet.size_bytes total length (minimum header sizes apply).
std::vector<std::uint8_t> encode_packet(const Packet& packet);

/// Parses on-wire bytes; returns nullopt if the buffer is truncated, the
/// version is not 4, or either checksum fails.
std::optional<Packet> decode_packet(std::span<const std::uint8_t> data);

}  // namespace ixp::net
