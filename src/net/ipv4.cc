#include "net/ipv4.h"

#include "util/strings.h"

namespace ixp::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  const auto parts = ixp::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    std::uint64_t octet = 0;
    if (!ixp::parse_u64(p, octet) || octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Address(v);
}

std::string Ipv4Address::to_string() const {
  return ixp::strformat("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                        (value_ >> 8) & 0xff, value_ & 0xff);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view s) {
  const auto pos = s.find('/');
  if (pos == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(s.substr(0, pos));
  std::uint64_t len = 0;
  if (!addr || !ixp::parse_u64(s.substr(pos + 1), len) || len > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<int>(len));
}

std::string Ipv4Prefix::to_string() const {
  return network().to_string() + ixp::strformat("/%d", length_);
}

}  // namespace ixp::net
