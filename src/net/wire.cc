#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace ixp::net {
namespace {

constexpr std::uint8_t kProtoIcmp = 1;
constexpr std::size_t kIpv4MinHeader = 20;
constexpr std::size_t kIcmpHeader = 8;
constexpr std::uint8_t kOptRecordRoute = 7;
constexpr std::uint8_t kOptEnd = 0;

void put_u16(std::vector<std::uint8_t>& out, std::size_t at, std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 8);
  out[at + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 24);
  out[at + 1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  out[at + 2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  out[at + 3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t at) {
  return static_cast<std::uint16_t>((d[at] << 8) | d[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t at) {
  return (std::uint32_t(d[at]) << 24) | (std::uint32_t(d[at + 1]) << 16) |
         (std::uint32_t(d[at + 2]) << 8) | std::uint32_t(d[at + 3]);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> encode_packet(const Packet& p) {
  // Record-route option: type, length, pointer, then 9 four-byte slots,
  // padded with an end-of-options byte to a 4-byte boundary (37 + 3 = 40).
  std::size_t opt_len = 0;
  if (p.record_route) opt_len = 40;
  const std::size_t ihl_bytes = kIpv4MinHeader + opt_len;

  std::size_t total = std::max<std::size_t>(p.size_bytes, ihl_bytes + kIcmpHeader);
  std::vector<std::uint8_t> out(total, 0);

  out[0] = static_cast<std::uint8_t>((4u << 4) | (ihl_bytes / 4));  // version + IHL
  out[1] = 0;                                                       // DSCP/ECN
  put_u16(out, 2, static_cast<std::uint16_t>(total));
  put_u16(out, 4, p.ip_id);
  put_u16(out, 6, 0);        // flags/fragment offset
  out[8] = p.ttl;
  out[9] = kProtoIcmp;
  put_u32(out, 12, p.src.value());
  put_u32(out, 16, p.dst.value());

  if (p.record_route) {
    const std::size_t o = kIpv4MinHeader;
    out[o] = kOptRecordRoute;
    out[o + 1] = 39;  // option length: 3 + 9*4
    const std::size_t nstamps = std::min<std::size_t>(p.route_stamps.size(), kMaxRecordRouteSlots);
    out[o + 2] = static_cast<std::uint8_t>(4 + nstamps * 4);  // pointer to next free slot
    for (std::size_t i = 0; i < nstamps; ++i) {
      put_u32(out, o + 3 + i * 4, p.route_stamps[i].value());
    }
    out[o + 39] = kOptEnd;
  }

  put_u16(out, 10, 0);  // header checksum placeholder
  const std::uint16_t hsum = internet_checksum({out.data(), ihl_bytes});
  put_u16(out, 10, hsum);

  // ICMP header.
  const std::size_t ic = ihl_bytes;
  out[ic] = static_cast<std::uint8_t>(p.icmp_type);
  out[ic + 1] = p.icmp_code;
  if (p.icmp_type == IcmpType::kEchoRequest || p.icmp_type == IcmpType::kEchoReply) {
    put_u16(out, ic + 4, p.ident);
    put_u16(out, ic + 6, p.seq);
  } else {
    // Error messages quote the offending probe's ident/seq in the payload
    // area (a real router quotes the full IP header + 8 bytes; we keep the
    // two fields the prober actually matches on).
    if (total >= ic + kIcmpHeader + 4) {
      put_u16(out, ic + kIcmpHeader, p.quoted_ident);
      put_u16(out, ic + kIcmpHeader + 2, p.quoted_seq);
    }
  }
  put_u16(out, ic + 2, 0);
  const std::uint16_t csum = internet_checksum({out.data() + ic, total - ic});
  put_u16(out, ic + 2, csum);
  return out;
}

std::optional<Packet> decode_packet(std::span<const std::uint8_t> data) {
  if (data.size() < kIpv4MinHeader + kIcmpHeader) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl_bytes = static_cast<std::size_t>(data[0] & 0x0f) * 4;
  if (ihl_bytes < kIpv4MinHeader || data.size() < ihl_bytes + kIcmpHeader) return std::nullopt;
  const std::size_t total = get_u16(data, 2);
  if (total > data.size() || total < ihl_bytes + kIcmpHeader) return std::nullopt;
  if (data[9] != kProtoIcmp) return std::nullopt;
  if (internet_checksum(data.subspan(0, ihl_bytes)) != 0) return std::nullopt;
  if (internet_checksum(data.subspan(ihl_bytes, total - ihl_bytes)) != 0) return std::nullopt;

  Packet p;
  p.size_bytes = static_cast<std::uint32_t>(total);
  p.ip_id = get_u16(data, 4);
  p.ttl = data[8];
  p.src = Ipv4Address(get_u32(data, 12));
  p.dst = Ipv4Address(get_u32(data, 16));

  // Options.
  std::size_t o = kIpv4MinHeader;
  while (o < ihl_bytes) {
    const std::uint8_t type = data[o];
    if (type == kOptEnd) break;
    if (type == 1) {  // NOP
      ++o;
      continue;
    }
    if (o + 1 >= ihl_bytes) return std::nullopt;
    const std::uint8_t len = data[o + 1];
    if (len < 2 || o + len > ihl_bytes) return std::nullopt;
    if (type == kOptRecordRoute && len >= 3) {
      p.record_route = true;
      const std::uint8_t ptr = data[o + 2];
      for (std::size_t slot = o + 3; slot + 4 <= o + ptr - 1 && slot + 4 <= o + len; slot += 4) {
        p.route_stamps.emplace_back(get_u32(data, slot));
      }
    }
    o += len;
  }

  const std::size_t ic = ihl_bytes;
  p.icmp_type = static_cast<IcmpType>(data[ic]);
  p.icmp_code = data[ic + 1];
  if (p.icmp_type == IcmpType::kEchoRequest || p.icmp_type == IcmpType::kEchoReply) {
    p.ident = get_u16(data, ic + 4);
    p.seq = get_u16(data, ic + 6);
  } else if (total >= ic + kIcmpHeader + 4) {
    p.quoted_ident = get_u16(data, ic + kIcmpHeader);
    p.quoted_seq = get_u16(data, ic + kIcmpHeader + 2);
  }
  return p;
}

}  // namespace ixp::net
