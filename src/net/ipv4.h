// IPv4 address and prefix types.
//
// Addresses are a strong wrapper over a host-order u32.  Prefixes support
// containment tests and enumeration; PrefixMap (prefix_map.h) provides
// longest-prefix matching on top of them.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ixp::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) | (std::uint32_t(c) << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view s);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address a, Ipv4Address b) = default;

  constexpr Ipv4Address operator+(std::uint32_t offset) const { return Ipv4Address(value_ + offset); }

 private:
  std::uint32_t value_ = 0;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Normalizes: host bits of the network address are cleared.
  constexpr Ipv4Prefix(Ipv4Address network, int length)
      : network_(network.value() & mask_for(length)), length_(length) {}

  [[nodiscard]] constexpr Ipv4Address network() const { return Ipv4Address(network_); }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const { return mask_for(length_); }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value() & mask()) == network_;
  }
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.network());
  }
  /// Number of addresses covered (2^(32-len)); 0 means 2^32 for len 0.
  [[nodiscard]] constexpr std::uint64_t size() const { return std::uint64_t(1) << (32 - length_); }

  /// The i-th address inside the prefix.
  [[nodiscard]] constexpr Ipv4Address at(std::uint64_t i) const {
    return Ipv4Address(network_ + static_cast<std::uint32_t>(i));
  }

  /// Parses "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view s);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix& a, const Ipv4Prefix& b) = default;

 private:
  static constexpr std::uint32_t mask_for(int len) {
    return len <= 0 ? 0u : (len >= 32 ? 0xffffffffu : ~((std::uint32_t(1) << (32 - len)) - 1));
  }
  std::uint32_t network_ = 0;
  int length_ = 0;
};

}  // namespace ixp::net

template <>
struct std::hash<ixp::net::Ipv4Address> {
  std::size_t operator()(ixp::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>()(a.value());
  }
};

template <>
struct std::hash<ixp::net::Ipv4Prefix> {
  std::size_t operator()(const ixp::net::Ipv4Prefix& p) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t(p.network().value()) << 8) | std::uint64_t(p.length()));
  }
};
