// Longest-prefix-match map from Ipv4Prefix to an arbitrary value.
//
// A binary trie keyed on address bits.  Used for router FIBs, prefix->AS
// maps built from the synthetic BGP dumps, and the IXP prefix directory.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace ixp::net {

template <typename V>
class PrefixMap {
 public:
  PrefixMap() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at `prefix`.
  void insert(const Ipv4Prefix& prefix, V value) {
    Node* n = root_.get();
    const std::uint32_t addr = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (addr >> (31 - depth)) & 1;
      auto& child = n->child[bit];
      if (!child) child = std::make_unique<Node>();
      n = child.get();
    }
    if (!n->value.has_value()) ++size_;
    n->value = std::move(value);
  }

  /// Longest-prefix match; nullptr if no covering prefix exists.
  [[nodiscard]] const V* lookup(Ipv4Address a) const {
    const Node* n = root_.get();
    const V* best = n->value ? &*n->value : nullptr;
    const std::uint32_t addr = a.value();
    for (int depth = 0; depth < 32 && n; ++depth) {
      const int bit = (addr >> (31 - depth)) & 1;
      n = n->child[bit].get();
      if (n && n->value) best = &*n->value;
    }
    return best;
  }

  /// Exact-prefix lookup; nullptr if `prefix` itself was never inserted.
  [[nodiscard]] const V* lookup_exact(const Ipv4Prefix& prefix) const {
    const Node* n = root_.get();
    const std::uint32_t addr = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (addr >> (31 - depth)) & 1;
      n = n->child[bit].get();
      if (!n) return nullptr;
    }
    return n->value ? &*n->value : nullptr;
  }

  /// The most specific inserted prefix covering `a`, with its value.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, V>> lookup_prefix(Ipv4Address a) const {
    const Node* n = root_.get();
    std::optional<std::pair<Ipv4Prefix, V>> best;
    if (n->value) best = {Ipv4Prefix(Ipv4Address(0), 0), *n->value};
    const std::uint32_t addr = a.value();
    for (int depth = 0; depth < 32 && n; ++depth) {
      const int bit = (addr >> (31 - depth)) & 1;
      n = n->child[bit].get();
      if (n && n->value) {
        best = {Ipv4Prefix(a, depth + 1), *n->value};
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair in address order.
  template <typename F>
  void for_each(F&& f) const {
    walk(root_.get(), 0, 0, f);
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> child[2];
  };

  template <typename F>
  static void walk(const Node* n, std::uint32_t addr, int depth, F& f) {
    if (!n) return;
    if (n->value) f(Ipv4Prefix(Ipv4Address(addr), depth), *n->value);
    if (depth < 32) {
      walk(n->child[0].get(), addr, depth + 1, f);
      walk(n->child[1].get(), addr | (std::uint32_t(1) << (31 - depth)), depth + 1, f);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace ixp::net
