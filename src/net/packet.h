// In-simulator packet model.
//
// The simulator moves Packet objects; wire.h can encode/decode them to real
// IPv4/ICMP bytes (used by the warts-lite capture format and by tests that
// check protocol conformance).  Fields mirror what scamper's TSLP probing
// actually uses: ICMP echo with a caller-chosen TTL, plus the IPv4
// record-route option for path-symmetry checks.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "util/time.h"

namespace ixp::net {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

/// Maximum route entries the IPv4 RR option can hold (9 slots of 4 bytes in
/// a 40-byte options area, minus type/length/pointer).
inline constexpr int kMaxRecordRouteSlots = 9;

struct Packet {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t ttl = 64;
  IcmpType icmp_type = IcmpType::kEchoRequest;
  std::uint8_t icmp_code = 0;
  std::uint16_t ident = 0;    ///< ICMP identifier (per-prober)
  std::uint16_t seq = 0;      ///< ICMP sequence number
  std::uint16_t ip_id = 0;    ///< IPv4 identification field; routers stamp
                              ///< replies from a shared counter (Ally)
  std::uint32_t size_bytes = 64;  ///< total on-wire size incl. headers

  bool record_route = false;              ///< IPv4 RR option present
  std::vector<Ipv4Address> route_stamps;  ///< addresses stamped by routers

  TimePoint sent_at;  ///< simulator bookkeeping: when the probe left the VP

  /// Transient L2 hint: the IP next hop chosen by the last router, used by
  /// an IXP switch fabric to pick the egress port.  Not part of the wire
  /// format (real networks carry this as the frame's destination MAC).
  Ipv4Address l2_next_hop;

  /// For TimeExceeded/Unreachable replies: the original probe this quotes.
  std::uint16_t quoted_ident = 0;
  std::uint16_t quoted_seq = 0;

  [[nodiscard]] bool is_probe() const { return icmp_type == IcmpType::kEchoRequest; }
  [[nodiscard]] bool is_reply() const {
    return icmp_type == IcmpType::kEchoReply || icmp_type == IcmpType::kTimeExceeded ||
           icmp_type == IcmpType::kDestUnreachable;
  }
};

}  // namespace ixp::net
