#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "util/strings.h"

namespace ixp::net {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool is_token_char(char c) {
  // RFC 9110 token charset (header names, methods).
  static constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
  return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
         kExtra.find(c) != std::string_view::npos;
}

bool is_target_char(char c) {
  // Printable ASCII except space and DEL; controls embedded in a target are
  // always an attack or corruption, never a real client.
  return c > 0x20 && c < 0x7f;
}

HttpParse bad(int code, std::string why, int* status, std::string* error) {
  if (status != nullptr) *status = code;
  if (error != nullptr) *error = std::move(why);
  return HttpParse::kBad;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

std::string HttpRequest::query_param(std::string_view key, std::string_view fallback) const {
  std::string_view q = query;
  while (!q.empty()) {
    const std::size_t amp = q.find('&');
    const std::string_view pair = q.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key &&
        eq + 1 < pair.size()) {
      return std::string(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    q.remove_prefix(amp + 1);
  }
  return std::string(fallback);
}

HttpParse parse_http_request(std::string_view in, HttpRequest* req, std::size_t* consumed,
                             int* status, std::string* error, const HttpLimits& limits) {
  // ---- Locate the end of the head (CRLFCRLF) within the head budget -----
  const std::size_t head_end = in.substr(0, limits.max_head_bytes).find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (in.size() >= limits.max_head_bytes) {
      return bad(431, "request head exceeds the size limit", status, error);
    }
    // An early NUL can never become a valid request; reject instead of
    // buffering until the head limit trips.
    if (in.find('\0') != std::string_view::npos) {
      return bad(400, "NUL byte in request head", status, error);
    }
    return HttpParse::kNeedMore;
  }
  const std::string_view head = in.substr(0, head_end);

  // ---- Request line ------------------------------------------------------
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line = head.substr(0, line_end);  // npos = whole head
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return bad(400, "malformed request line", status, error);
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16) {
    return bad(400, "malformed method", status, error);
  }
  for (const char c : method) {
    if (!is_token_char(c)) return bad(400, "malformed method", status, error);
  }
  if (target.size() > limits.max_target_bytes) {
    return bad(414, "request target too long", status, error);
  }
  if (target.empty() || target[0] != '/') {
    return bad(400, "request target must be origin-form", status, error);
  }
  for (const char c : target) {
    if (!is_target_char(c)) return bad(400, "invalid byte in request target", status, error);
  }
  int minor = 0;
  if (version == "HTTP/1.1") {
    minor = 1;
  } else if (version == "HTTP/1.0") {
    minor = 0;
  } else {
    return bad(400, "unsupported HTTP version", status, error);
  }

  // ---- Headers -----------------------------------------------------------
  HttpRequest out;
  out.method = std::string(method);
  out.target = std::string(target);
  const std::size_t qmark = target.find('?');
  out.path = std::string(target.substr(0, qmark));
  out.query = qmark == std::string_view::npos ? "" : std::string(target.substr(qmark + 1));
  out.minor_version = minor;

  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{} : head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view hline = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    if (hline.empty()) return bad(400, "empty header line", status, error);
    if (out.headers.size() >= limits.max_headers) {
      return bad(431, "too many header fields", status, error);
    }
    const std::size_t colon = hline.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return bad(400, "malformed header field", status, error);
    }
    const std::string_view name = hline.substr(0, colon);
    for (const char c : name) {
      if (!is_token_char(c)) return bad(400, "malformed header name", status, error);
    }
    std::string_view value = hline.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    for (const char c : value) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
        return bad(400, "control byte in header value", status, error);
      }
    }
    out.headers.emplace_back(std::string(name), std::string(value));
  }

  // ---- Framing: no chunked support, strictly bounded bodies --------------
  if (out.header("Transfer-Encoding") != nullptr) {
    // The serving API takes no request bodies; chunked framing would force
    // unbounded decode state, so it is rejected outright.
    return bad(400, "Transfer-Encoding is not supported", status, error);
  }
  std::size_t body_len = 0;
  bool saw_content_length = false;
  for (const auto& [k, v] : out.headers) {
    if (!iequals(k, "Content-Length")) continue;
    if (v.empty() || v.size() > 19) {
      return bad(400, "malformed Content-Length", status, error);
    }
    std::uint64_t n = 0;
    for (const char c : v) {
      if (c < '0' || c > '9') return bad(400, "malformed Content-Length", status, error);
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (saw_content_length && n != body_len) {
      return bad(400, "conflicting Content-Length fields", status, error);
    }
    if (n > limits.max_body_bytes) {
      return bad(413, "request body exceeds the size limit", status, error);
    }
    body_len = static_cast<std::size_t>(n);
    saw_content_length = true;
  }

  const std::size_t total = head_end + 4 + body_len;
  if (in.size() < total) return HttpParse::kNeedMore;
  out.body = std::string(in.substr(head_end + 4, body_len));

  // ---- Connection semantics ---------------------------------------------
  out.keep_alive = out.minor_version >= 1;
  if (const std::string* conn = out.header("Connection"); conn != nullptr) {
    if (iequals(*conn, "close")) out.keep_alive = false;
    if (iequals(*conn, "keep-alive")) out.keep_alive = true;
  }

  if (req != nullptr) *req = std::move(out);
  if (consumed != nullptr) *consumed = total;
  return HttpParse::kOk;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_http_response(const HttpResponse& resp, bool keep_alive) {
  const bool close = resp.close || !keep_alive;
  std::string out = strformat("HTTP/1.1 %d %s\r\n", resp.status, http_status_reason(resp.status));
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += strformat("Content-Length: %zu\r\n", resp.body.size());
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += resp.body;
  return out;
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

HttpServer::HttpServer(Handler handler, Options opt)
    : handler_(std::move(handler)), opt_(opt) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  if (running_.load()) return true;
  // A peer that disappears mid-write must not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = strformat("socket: %s", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, opt_.listen_backlog) != 0) {
    if (error != nullptr) *error = strformat("bind/listen: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  const int threads = std::max(1, opt_.threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake every accept() blocked on the listening socket; workers then see
  // the stop flag, finish their in-flight connection, and exit.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::worker_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listening socket is gone
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  timeval tv{};
  tv.tv_sec = opt_.poll_interval_ms / 1000;
  tv.tv_usec = (opt_.poll_interval_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  std::string buf;
  char chunk[8192];
  int served = 0;
  auto idle_since = std::chrono::steady_clock::now();
  // The parser promises kNeedMore only while within limits, but cap the
  // buffer anyway: belt and braces against a parser bug becoming a
  // memory-growth bug.
  const std::size_t hard_cap = opt_.limits.max_head_bytes + opt_.limits.max_body_bytes + 1024;

  auto send_all = [&](std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  };

  while (true) {
    // Drain any complete request already buffered before reading more.
    HttpRequest req;
    std::size_t consumed = 0;
    int bad_status = 400;
    std::string perr;
    const HttpParse st =
        parse_http_request(buf, &req, &consumed, &bad_status, &perr, opt_.limits);
    if (st == HttpParse::kBad) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp;
      resp.status = bad_status;
      resp.content_type = "text/plain";
      resp.body = perr + "\n";
      send_all(render_http_response(resp, /*keep_alive=*/false));
      return;  // framing is unrecoverable; close
    }
    if (st == HttpParse::kOk) {
      buf.erase(0, consumed);
      HttpResponse resp;
      try {
        resp = handler_(req);
      } catch (const std::exception& e) {
        resp.status = 500;
        resp.content_type = "text/plain";
        resp.body = std::string(e.what()) + "\n";
      }
      ++served;
      const bool drain = stopping_.load(std::memory_order_acquire);
      const bool keep = req.keep_alive && !resp.close && !drain &&
                        served < opt_.max_requests_per_connection;
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (!send_all(render_http_response(resp, keep))) return;
      if (!keep) return;
      idle_since = std::chrono::steady_clock::now();
      continue;
    }

    // kNeedMore: block (briefly) for more bytes.
    if (buf.size() >= hard_cap) return;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      idle_since = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) return;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Poll tick: shut idle connections, honor stop().  A connection with
      // a partial request buffered is mid-read; it gets until the idle
      // timeout even while stopping, which keeps the drain bounded.
      if (stopping_.load(std::memory_order_acquire) && buf.empty()) return;
      const auto idle = std::chrono::steady_clock::now() - idle_since;
      if (idle > std::chrono::milliseconds(opt_.idle_timeout_ms)) return;
      continue;
    }
    return;  // transport error
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::connect(int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return false;
  }
  const int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return true;
}

bool HttpClient::get(const std::string& target, int* status, std::string* body) {
  if (fd_ < 0) return false;
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd_, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string buf;
  char chunk[8192];
  std::size_t head_end = std::string::npos;
  std::size_t content_length = 0;
  while (true) {
    if (head_end == std::string::npos) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Parse status + Content-Length out of the head.
        const std::size_t sp = buf.find(' ');
        if (sp == std::string::npos || sp + 4 > head_end) {
          close();
          return false;
        }
        if (status != nullptr) *status = std::atoi(buf.c_str() + sp + 1);
        const std::size_t cl = buf.find("Content-Length:");
        if (cl == std::string::npos || cl > head_end) {
          close();
          return false;
        }
        content_length = static_cast<std::size_t>(std::atoll(buf.c_str() + cl + 15));
      }
    }
    if (head_end != std::string::npos && buf.size() >= head_end + 4 + content_length) {
      if (body != nullptr) *body = buf.substr(head_end + 4, content_length);
      // Keep-alive: leave the connection open unless the server said close.
      if (buf.find("Connection: close") != std::string::npos &&
          buf.find("Connection: close") < head_end) {
        close();
      }
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool HttpClient::raw_roundtrip(std::string_view bytes, std::string* response,
                               std::size_t max_bytes) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // server may already have rejected and closed; still read
    }
    off += static_cast<std::size_t>(n);
  }
  // Signal end-of-request so the server never waits on us.
  ::shutdown(fd_, SHUT_WR);
  std::string buf;
  char chunk[8192];
  while (buf.size() < max_bytes) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  if (response != nullptr) *response = std::move(buf);
  close();
  return true;
}

}  // namespace ixp::net
