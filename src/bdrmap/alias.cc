#include "bdrmap/alias.h"

#include <algorithm>

namespace ixp::bdrmap {

// ---------------------------------------------------------------------------
// AliasSets

void AliasSets::add(net::Ipv4Address a) {
  parent_.emplace(a, a);
}

net::Ipv4Address AliasSets::root(net::Ipv4Address a) const {
  auto it = parent_.find(a);
  if (it == parent_.end()) return a;
  // Path compression over the value map.
  net::Ipv4Address r = a;
  while (parent_.at(r) != r) r = parent_.at(r);
  while (parent_.at(a) != r) {
    const net::Ipv4Address next = parent_.at(a);
    parent_[a] = r;
    a = next;
  }
  return r;
}

void AliasSets::merge(net::Ipv4Address a, net::Ipv4Address b) {
  add(a);
  add(b);
  const net::Ipv4Address ra = root(a);
  const net::Ipv4Address rb = root(b);
  if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
}

net::Ipv4Address AliasSets::find(net::Ipv4Address a) const { return root(a); }

bool AliasSets::same_router(net::Ipv4Address a, net::Ipv4Address b) const {
  if (!parent_.count(a) || !parent_.count(b)) return false;
  return root(a) == root(b);
}

std::vector<std::vector<net::Ipv4Address>> AliasSets::sets() const {
  std::map<net::Ipv4Address, std::vector<net::Ipv4Address>> by_root;
  for (const auto& [addr, _] : parent_) by_root[root(addr)].push_back(addr);
  std::vector<std::vector<net::Ipv4Address>> out;
  out.reserve(by_root.size());
  for (auto& [_, members] : by_root) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

// ---------------------------------------------------------------------------
// AliasResolver

AliasResolver::AliasResolver(prober::Prober& prober, AllyOptions opts)
    : prober_(&prober), opts_(opts) {}

bool AliasResolver::ally(net::Ipv4Address a, net::Ipv4Address b) {
  ++pairs_tested_;
  std::vector<std::uint16_t> ids;
  ids.reserve(static_cast<std::size_t>(opts_.probes_per_pair) * 2);
  for (int round = 0; round < opts_.probes_per_pair; ++round) {
    for (const net::Ipv4Address dst : {a, b}) {
      const auto r = prober_->probe(dst);
      if (!r.answered || r.responder != dst) return false;
      ids.push_back(r.ip_id);
    }
  }
  // One shared counter produces a strictly increasing, tightly spaced ID
  // sequence across the interleaved probes (allowing 16-bit wraparound).
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const std::uint16_t gap = static_cast<std::uint16_t>(ids[i] - ids[i - 1]);
    if (gap == 0 || gap > opts_.max_gap) return false;
  }
  return true;
}

AliasSets AliasResolver::resolve(const std::vector<net::Ipv4Address>& addrs,
                                 std::size_t max_pairs) {
  AliasSets sets;
  for (const auto a : addrs) sets.add(a);

  for (std::size_t i = 0; i < addrs.size(); ++i) {
    for (std::size_t j = i + 1; j < addrs.size(); ++j) {
      if (pairs_tested_ >= max_pairs) return sets;
      // /30 mates face each other across a link: never aliases, skip.
      const auto mate = ptp_mate(addrs[i]);
      if (mate && *mate == addrs[j]) continue;
      if (sets.same_router(addrs[i], addrs[j])) continue;  // already merged
      if (ally(addrs[i], addrs[j])) sets.merge(addrs[i], addrs[j]);
    }
  }
  return sets;
}

std::optional<net::Ipv4Address> ptp_mate(net::Ipv4Address a) {
  const std::uint32_t v = a.value();
  switch (v & 3u) {
    case 1: return net::Ipv4Address(v + 1);  // .1 <-> .2 inside a /30
    case 2: return net::Ipv4Address(v - 1);
    default: return std::nullopt;            // network / broadcast position
  }
}

}  // namespace ixp::bdrmap
