// Alias resolution: grouping interface addresses into routers.
//
// bdrmap [29] relies on alias resolution to reason about router ownership;
// we implement the two classic techniques it builds on:
//
//  * Ally-style IP-ID counter probing (Spring et al., Rocketfuel): most
//    routers stamp outgoing ICMP with a single shared, monotonically
//    increasing IP-ID counter.  Interleaved probes to two candidate
//    addresses that return interleaved, closely-spaced IDs come from the
//    same router.  Our simulated routers keep exactly such a counter.
//
//  * Common-subnet inference (APAR-style): the two ends of a /30 or /31
//    point-to-point subnet belong to *different* routers facing each
//    other, while multiple addresses inside one infrastructure subnet at
//    distance 0 of each other pair as mates.
//
// The resolver produces disjoint sets of addresses (inferred routers) and
// is scored against ground truth in the tests.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "prober/prober.h"

namespace ixp::bdrmap {

/// Union-find over addresses; the public result type of alias resolution.
class AliasSets {
 public:
  /// Declares that `a` and `b` are aliases (same router).
  void merge(net::Ipv4Address a, net::Ipv4Address b);
  /// Ensures `a` is represented (as its own router if never merged).
  void add(net::Ipv4Address a);
  /// Canonical representative of `a`'s set.
  [[nodiscard]] net::Ipv4Address find(net::Ipv4Address a) const;
  /// True if both addresses are known and inferred to be one router.
  [[nodiscard]] bool same_router(net::Ipv4Address a, net::Ipv4Address b) const;
  /// All sets with at least one member.
  [[nodiscard]] std::vector<std::vector<net::Ipv4Address>> sets() const;

 private:
  // Path-compressing find over a value map (addresses are sparse).
  net::Ipv4Address root(net::Ipv4Address a) const;
  mutable std::map<net::Ipv4Address, net::Ipv4Address> parent_;
};

struct AllyOptions {
  int probes_per_pair = 4;    ///< interleaved probe rounds
  std::uint32_t max_gap = 16; ///< IDs further apart than this reject the pair
};

class AliasResolver {
 public:
  explicit AliasResolver(prober::Prober& prober, AllyOptions opts = {});

  /// Ally test for one candidate pair: probes a,b,a,b,... and accepts when
  /// the returned IP-ID sequence is interleaved and tight.  Unanswered
  /// probes or wild IDs reject the pair.
  [[nodiscard]] bool ally(net::Ipv4Address a, net::Ipv4Address b);

  /// Full resolution over a candidate address set: Ally across plausible
  /// pairs (bounded by `max_pairs` to stay polite), then /30-mate
  /// separation (mates are never aliases).
  AliasSets resolve(const std::vector<net::Ipv4Address>& addrs, std::size_t max_pairs = 4096);

  [[nodiscard]] std::uint64_t pairs_tested() const { return pairs_tested_; }

 private:
  prober::Prober* prober_;
  AllyOptions opts_;
  std::uint64_t pairs_tested_ = 0;
};

/// The /30 (or /31) mate of an address, if it lies in such a subnet within
/// the infrastructure pool; mates face each other across a link and are
/// therefore on different routers.
std::optional<net::Ipv4Address> ptp_mate(net::Ipv4Address a);

}  // namespace ixp::bdrmap
