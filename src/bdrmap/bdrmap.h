// bdrmap-lite: inference of the borders between the VP's network and its
// neighbors, from traceroutes plus public registry data only.
//
// Mirrors the structure of CAIDA's bdrmap [29]:
//   1. gather routing/addressing data (prefix->AS from BGP dumps, RIR
//      delegations, IXP prefixes, AS-org/sibling lists) -- registry module;
//   2. trace from the VP toward every routed prefix;
//   3. resolve aliases and assemble constraints (address ownership,
//      /30 point-to-point mates, IXP LAN membership);
//   4. run ownership heuristics to place the border and emit interdomain
//      links, neighbor and peer sets.
//
// The inference never touches the simulator's ground truth; score() compares
// its output against the truth afterwards (the paper's "96.2 % of neighbors
// discovered" check).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bdrmap/alias.h"
#include "prober/prober.h"
#include "registry/registry.h"
#include "routing/asrank.h"

namespace ixp::bdrmap {

using topo::Asn;

/// An inferred interdomain link of the VP network.
struct InferredLink {
  net::Ipv4Address near_ip;   ///< last VP-side hop (or /30 mate)
  net::Ipv4Address far_ip;    ///< first hop beyond the border
  Asn far_asn = 0;
  bool at_ixp = false;
  std::string ixp_name;
  bool far_is_peer = false;   ///< relationship heuristic says peer (vs transit)
};

struct BdrmapResult {
  std::vector<InferredLink> links;
  std::set<Asn> neighbors;          ///< ASes adjacent to the VP network
  std::set<Asn> peers;              ///< subset inferred as settlement-free peers
  AliasSets aliases;                ///< router groups (when resolve_aliases)
  std::size_t inferred_routers = 0; ///< alias sets among far addresses
  std::size_t traces_run = 0;
  std::size_t traces_with_border = 0;

  [[nodiscard]] std::size_t link_count() const { return links.size(); }
  [[nodiscard]] std::size_t peering_link_count() const {
    std::size_t n = 0;
    for (const auto& l : links) n += l.at_ixp ? 1 : 0;
    return n;
  }
};

struct BdrmapOptions {
  int max_ttl = 32;
  int attempts = 2;
  /// Also sweep every address in IXP peering LANs (bdrmap probes a target
  /// list dense enough to see all LAN adjacencies; this models that).
  bool sweep_ixp_lans = true;
  /// Run Ally-style alias resolution over the far addresses to group them
  /// into routers (bdrmap's router-ownership stage).  Costs O(pairs)
  /// probes, so campaigns leave it off and run it at snapshots only.
  bool resolve_aliases = false;
  std::size_t max_alias_pairs = 4096;
  /// Use doubletree-style stop sets for the prefix sweep (scamper's probing
  /// optimization): traces stop once they re-enter previously explored
  /// path; cuts probe cost several-fold on transit-heavy VPs.
  bool doubletree = true;
};

class Bdrmap {
 public:
  /// `data` is the public-registry bundle; `vp_asn` the hosting network.
  Bdrmap(prober::Prober& prober, const registry::PublicData& data, Asn vp_asn,
         BdrmapOptions opts = {});

  /// Runs the full border-mapping process.
  BdrmapResult run();

  /// Address ownership per public data (longest-prefix origin, then
  /// delegations); 0 when unknown.  IXP LAN addresses return 0 with
  /// `at_ixp` knowledge available via data().ixp_for().
  [[nodiscard]] Asn resolve_owner(net::Ipv4Address a) const;

  /// True if `asn` is the VP's AS or one of its listed siblings.
  [[nodiscard]] bool is_vp_network(Asn asn) const;

  [[nodiscard]] const registry::PublicData& data() const { return *data_; }

 private:
  void process_trace(const std::vector<prober::TraceHop>& hops, Asn target_origin,
                     BdrmapResult& out);

  prober::Prober* prober_;
  const registry::PublicData* data_;
  Asn vp_asn_;
  BdrmapOptions opts_;
  net::PrefixMap<Asn> origin_map_;
  net::PrefixMap<Asn> delegation_map_;
  net::PrefixMap<bool> infra_map_;
  std::map<net::Ipv4Address, Asn> participant_asn_;
};

/// Accuracy of a bdrmap run against simulator ground truth.
struct BdrmapScore {
  std::size_t true_neighbors = 0;
  std::size_t found_neighbors = 0;     ///< true neighbors we discovered
  std::size_t false_neighbors = 0;     ///< inferred neighbors that are wrong
  std::size_t true_links = 0;
  std::size_t found_links = 0;         ///< matched on far_ip
  double neighbor_recall() const {
    return true_neighbors ? static_cast<double>(found_neighbors) / true_neighbors : 1.0;
  }
  double link_recall() const {
    return true_links ? static_cast<double>(found_links) / true_links : 1.0;
  }
};

BdrmapScore score(const BdrmapResult& result,
                  const std::vector<topo::InterdomainLinkTruth>& truth);

}  // namespace ixp::bdrmap
