#include "bdrmap/bdrmap.h"

#include "bdrmap/alias.h"

#include <algorithm>

#include "util/log.h"

namespace ixp::bdrmap {

Bdrmap::Bdrmap(prober::Prober& prober, const registry::PublicData& data, Asn vp_asn,
               BdrmapOptions opts)
    : prober_(&prober), data_(&data), vp_asn_(vp_asn), opts_(opts) {
  origin_map_ = data.origin_map();
  // Join delegation org-ids to ASNs via the AS-org file (lowest ASN per
  // organisation; sibling resolution happens through the VP sibling list).
  std::map<std::string, Asn> org_to_asn;
  for (const auto& rec : data.as_orgs) {
    auto [it, inserted] = org_to_asn.emplace(rec.org_id, rec.asn);
    if (!inserted && rec.asn < it->second) it->second = rec.asn;
  }
  for (const auto& d : data.delegations) {
    const auto it = org_to_asn.find(d.org_id);
    if (it == org_to_asn.end()) continue;
    delegation_map_.insert(d.prefix, it->second);
    if (d.prefix.length() >= 30) infra_map_.insert(d.prefix, true);
  }
  for (const auto& p : data.ixp_participants) participant_asn_[p.lan_ip] = p.asn;
}

Asn Bdrmap::resolve_owner(net::Ipv4Address a) const {
  if (const Asn* asn = origin_map_.lookup(a)) return *asn;
  if (const Asn* asn = delegation_map_.lookup(a)) return *asn;
  return 0;
}

bool Bdrmap::is_vp_network(Asn asn) const {
  if (asn == vp_asn_) return true;
  return std::binary_search(data_->vp_siblings.begin(), data_->vp_siblings.end(), asn);
}

void Bdrmap::process_trace(const std::vector<prober::TraceHop>& hops, Asn target_origin,
                           BdrmapResult& out) {
  // Classify every hop: owner ASN (0 = unknown) and IXP LAN membership.
  struct HopInfo {
    net::Ipv4Address addr;
    Asn owner = 0;
    bool lan = false;
    bool infra = false;  ///< inside an assigned point-to-point delegation
  };
  std::vector<HopInfo> info;
  info.reserve(hops.size());
  for (const auto& h : hops) {
    HopInfo hi;
    hi.addr = h.addr;
    if (!h.addr.is_unspecified()) {
      if (data_->ixp_for(h.addr) != nullptr) {
        hi.lan = true;
      } else {
        hi.owner = resolve_owner(h.addr);
        // Infrastructure test: covered by a /30 or /31 delegation record.
        hi.infra = infra_map_.lookup(h.addr) != nullptr;
      }
    }
    info.push_back(hi);
  }

  // First known owner at or after index k that is neither the VP network
  // nor an IXP LAN; falls back to the traced prefix's origin AS.
  auto owner_beyond = [&](std::size_t k) -> Asn {
    for (std::size_t j = k; j < info.size(); ++j) {
      if (info[j].owner != 0 && !is_vp_network(info[j].owner) && !info[j].lan) {
        return info[j].owner;
      }
    }
    return target_origin;
  };

  for (std::size_t j = 1; j < info.size(); ++j) {
    const HopInfo& prev = info[j - 1];
    const HopInfo& cur = info[j];
    if (cur.addr.is_unspecified()) continue;
    // The border must depart from a hop inside the VP network.
    const bool prev_in_vp = prev.owner != 0 && is_vp_network(prev.owner);
    if (!prev_in_vp) continue;

    Asn far_asn = 0;
    if (cur.lan) {
      // Rule (a): IXP peering LAN address -- PCH's participant mapping
      // names the member directly; otherwise the far router belongs to the
      // network the path enters next.
      const auto pit = participant_asn_.find(cur.addr);
      far_asn = pit != participant_asn_.end() ? pit->second : owner_beyond(j + 1);
    } else if (cur.owner != 0 && !is_vp_network(cur.owner)) {
      // Rule (b): address resolves to a foreign AS.
      far_asn = cur.owner;
    } else if (cur.owner != 0 && is_vp_network(cur.owner) && cur.infra) {
      // Rule (c): interdomain link numbered from the VP's space; the far
      // interface answers with a VP-delegated /30 address but the path
      // continues into a foreign network.
      const Asn beyond = owner_beyond(j + 1);
      if (beyond != 0 && !is_vp_network(beyond)) far_asn = beyond;
    }
    if (far_asn == 0 || is_vp_network(far_asn)) continue;

    InferredLink link;
    link.near_ip = prev.addr;
    link.far_ip = cur.addr;
    link.far_asn = far_asn;
    if (const auto* ixp = data_->ixp_for(cur.addr)) {
      link.at_ixp = true;
      link.ixp_name = ixp->name;
    } else if (const auto* ixp2 = data_->ixp_for(prev.addr)) {
      link.at_ixp = true;
      link.ixp_name = ixp2->name;
    }
    // Deduplicate on (near, far).
    const bool dup = std::any_of(out.links.begin(), out.links.end(), [&](const InferredLink& l) {
      return l.near_ip == link.near_ip && l.far_ip == link.far_ip;
    });
    if (!dup) out.links.push_back(link);
    out.neighbors.insert(far_asn);
    ++out.traces_with_border;
    break;  // only the first border on the path belongs to the VP network
  }
}

BdrmapResult Bdrmap::run() {
  BdrmapResult out;

  // Relationship inference feeding the peer/transit split.
  routing::AsRank asrank;
  for (const auto& p : data_->bgp_paths) asrank.add_path(p);
  asrank.infer();

  // Trace toward every routed prefix not originated by the VP network.
  // The doubletree stop set only suppresses hops beyond the first two --
  // the border always lies within the first hops from the VP, and those
  // are probed fresh every time.
  std::set<net::Ipv4Address> stop_set;
  for (const auto& [prefix, origin] : data_->prefix_origins) {
    if (is_vp_network(origin)) continue;
    const net::Ipv4Address target = prefix.at(1);
    const auto hops = opts_.doubletree
                          ? prober_->traceroute_doubletree(target, stop_set, opts_.max_ttl,
                                                           opts_.attempts)
                          : prober_->traceroute(target, opts_.max_ttl, opts_.attempts);
    ++out.traces_run;
    process_trace(hops, origin, out);
  }

  // Sweep IXP LANs for silent adjacencies (members that announce little).
  if (opts_.sweep_ixp_lans) {
    for (const auto& e : data_->ixp_directory) {
      for (std::uint64_t i = 1; i + 1 < e.peering_prefix.size(); ++i) {
        const net::Ipv4Address a = e.peering_prefix.at(i);
        const auto r = prober_->probe(a);
        if (!r.answered) continue;
        const auto hops = prober_->traceroute(a, 8, 1);
        ++out.traces_run;
        process_trace(hops, 0, out);
      }
    }
  }

  // Alias resolution: group the far addresses into routers.
  if (opts_.resolve_aliases) {
    std::vector<net::Ipv4Address> far;
    far.reserve(out.links.size());
    for (const auto& l : out.links) far.push_back(l.far_ip);
    AliasResolver resolver(*prober_);
    out.aliases = resolver.resolve(far, opts_.max_alias_pairs);
    out.inferred_routers = out.aliases.sets().size();
  }

  // Peer/transit classification per neighbor.
  for (const auto& l : out.links) {
    const auto rel = asrank.relationship(vp_asn_, l.far_asn);
    const bool provider = rel == routing::InferredRel::kCustomerToProvider;
    if (!provider && l.at_ixp) out.peers.insert(l.far_asn);
    if (rel == routing::InferredRel::kPeerToPeer) out.peers.insert(l.far_asn);
  }
  // Mark per-link peer flag.
  for (auto& l : out.links) l.far_is_peer = out.peers.count(l.far_asn) > 0;
  return out;
}

BdrmapScore score(const BdrmapResult& result,
                  const std::vector<topo::InterdomainLinkTruth>& truth) {
  BdrmapScore s;
  std::set<Asn> true_neighbors;
  std::set<net::Ipv4Address> true_far_ips;
  for (const auto& t : truth) {
    true_neighbors.insert(t.far_asn);
    true_far_ips.insert(t.far_ip);
  }
  s.true_neighbors = true_neighbors.size();
  s.true_links = true_far_ips.size();
  for (const Asn n : result.neighbors) {
    if (true_neighbors.count(n)) {
      ++s.found_neighbors;
    } else {
      ++s.false_neighbors;
    }
  }
  std::set<net::Ipv4Address> seen;
  for (const auto& l : result.links) {
    if (true_far_ips.count(l.far_ip) && seen.insert(l.far_ip).second) ++s.found_links;
  }
  return s;
}

}  // namespace ixp::bdrmap
