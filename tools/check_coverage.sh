#!/bin/sh
# Line-coverage floor for the congestion-detection core, run from CTest.
#
# Configures a second build tree with -DIXP_COVERAGE=ON (gcov
# instrumentation, -O0), builds and runs the suites that exercise the
# detector and the fault layer, then aggregates gcov "Lines executed"
# over every .cc under src/tslp and src/sim.  The check fails when the
# aggregate line coverage drops below the floor: that is the signal that
# someone grew the detector or the fault injector without growing the
# tests that pin its behaviour.
#
# The build tree is reused across runs, so only the first invocation pays
# the full compile.  When gcov is missing the check is SKIPPED, not
# failed: coverage is a CI amenity, not a correctness gate.
#
# usage: check_coverage.sh <source_dir> [build_dir]
#   IXP_COVERAGE_SUITES  override the space-separated list of test binaries
#   IXP_COVERAGE_FLOOR   override the minimum aggregate line coverage (%)
set -u

src=${1:?usage: check_coverage.sh <source_dir> [build_dir]}
build=${2:-$src/build-coverage}
suites=${IXP_COVERAGE_SUITES:-test_sim test_parallel_sim test_tslp test_faults test_serve}
floor=${IXP_COVERAGE_FLOOR:-80}

if ! command -v gcov > /dev/null 2>&1; then
    echo "check_coverage: SKIPPED (gcov not found)"
    exit 0
fi

log_dir=$(mktemp -d)
trap 'rm -rf "$log_dir"' EXIT

# --- Configure + build the instrumented tree ------------------------------
if ! cmake -B "$build" -S "$src" -DIXP_COVERAGE=ON \
        > "$log_dir/configure.log" 2>&1; then
    echo "check_coverage: FAILED to configure the instrumented build" >&2
    tail -n 30 "$log_dir/configure.log" >&2
    exit 1
fi
# shellcheck disable=SC2086  # suites is a deliberate word list
if ! cmake --build "$build" --target $suites -j "$(nproc)" \
        > "$log_dir/build.log" 2>&1; then
    echo "check_coverage: FAILED to build the instrumented test suites" >&2
    tail -n 30 "$log_dir/build.log" >&2
    exit 1
fi

# --- Run the suites (counters accumulate into the .gcda files) ------------
# Stale counters from a previous source revision would inflate the number,
# so start from a clean slate every run.
find "$build/src" -name '*.gcda' -delete
for s in $suites; do
    printf 'check_coverage: running %s ... ' "$s"
    if "$build/tests/$s" --gtest_brief=1 > "$log_dir/$s.log" 2>&1; then
        echo "OK"
    else
        echo "FAILED"
        tail -n 40 "$log_dir/$s.log"
        exit 1
    fi
done

# --- Aggregate gcov line coverage over src/tslp + src/sim -----------------
# Each .cc is compiled exactly once into its library, so every source file
# contributes one File/Lines pair; headers are skipped to avoid counting
# the same inline code once per including translation unit.
gcda_list=$(find "$build/src/tslp" "$build/src/sim" -name '*.gcda' | sort)
if [ -z "$gcda_list" ]; then
    echo "check_coverage: FAILED (no .gcda files under src/tslp + src/sim)" >&2
    exit 1
fi
# shellcheck disable=SC2086  # word-splitting the file list is intended
(cd "$log_dir" && gcov -n $gcda_list > gcov.out 2>/dev/null)
if ! awk '
    /^File /           { f = substr($2, 2, length($2) - 2) }
    /^Lines executed:/ {
        # gcov ends with a grand-total line that has no File header; the
        # cleared f skips it (and any other headerless summary line).
        ok = (f ~ /src\/(tslp|sim)\/[^\/]*\.cc$/); file = f; f = ""
        if (!ok) next
        pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
        n = $0;   sub(/.* of /, "", n)
        covered += pct * n / 100.0; total += n
        printf "check_coverage:   %6.2f%% %5d  %s\n", pct, n, file
    }
    END {
        if (total == 0) {
            print "check_coverage: no matching sources in gcov output"
            exit 1
        }
        agg = 100.0 * covered / total
        printf "check_coverage: TOTAL %.2f%% of %d lines\n", agg, total
        printf "%.2f\n", agg > TOTAL_FILE
    }' TOTAL_FILE="$log_dir/total" "$log_dir/gcov.out"; then
    exit 1
fi
total=$(cat "$log_dir/total")

if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t + 0 < f + 0) }'; then
    echo "check_coverage: FAILED (aggregate ${total}% below floor ${floor}%)" >&2
    exit 1
fi
echo "check_coverage: OK (${total}% >= floor ${floor}%)"
exit 0
