#!/bin/sh
# Documentation lint, run from CTest (see tools/CMakeLists.txt).
#
# Fails when README.md references a binary, afixp subcommand, afixp flag,
# or IXP_* environment variable that no longer exists -- and, conversely,
# when the sources read an IXP_* knob that README does not document.
# Also holds docs/SCALING.md to its two contracts: the topology-spec keys
# it documents must match the kSpecKeys parser table in src/topo/gen.cc,
# and its benchmark-field table must match the committed
# BENCH_substrate.json record (both directions each).  docs/SERVING.md
# carries the same kind of contracts for the serving layer: its endpoint
# table must match the kEndpoints dispatch table in src/serve/serve.cc,
# and its bench-field table must match the committed BENCH_serve.json
# (both directions each).
#
# usage: check_docs.sh <source_dir> <afixp_binary>
set -u

src=${1:?usage: check_docs.sh <source_dir> <afixp_binary>}
afixp=${2:?usage: check_docs.sh <source_dir> <afixp_binary>}
readme="$src/README.md"
errors=$(mktemp)
trap 'rm -f "$errors"' EXIT

err() {
    echo "check_docs: $*" | tee -a "$errors" >&2
}

[ -r "$readme" ] || { err "cannot read $readme"; exit 1; }
[ -x "$afixp" ] || { err "cannot execute $afixp"; exit 1; }

# --- 1. Every bench_* binary README mentions has a source file ------------
for b in $(grep -o 'bench_[a-z0-9_]*' "$readme" | sort -u); do
    [ -f "$src/bench/$b.cc" ] || err "README references '$b' but bench/$b.cc does not exist"
done

# --- 2. Every 'afixp <sub>' subcommand README mentions is real ------------
usage=$("$afixp" 2>&1)
for c in $(grep -oE 'afixp [a-z]+' "$readme" | awk '{print $2}' | sort -u); do
    echo "$usage" | grep -qw "$c" || err "README references 'afixp $c' but afixp usage does not list it"
done

# --- 3. Every --flag on an afixp command line in README parses ------------
# Lines like `./build/tools/afixp tables --fast --jobs 6`: each flag must
# appear in that subcommand's --help.
grep -oE 'afixp [a-z]+[^)`|]*' "$readme" | while read -r line; do
    sub=$(echo "$line" | awk '{print $2}')
    help=$("$afixp" "$sub" --help 2>&1)
    for flag in $(echo "$line" | grep -oE '\-\-[a-z-]+' | sort -u); do
        [ "$flag" = "--help" ] && continue  # implicit on every subcommand
        echo "$help" | grep -q -- "$flag" ||
            err "README uses 'afixp $sub $flag' but 'afixp $sub --help' does not document it"
    done
done

# --- 4. IXP_* knobs: README <-> sources/CMake/scripts must agree ----------
# Every env knob a compiled binary reads is declared in the kKnobs registry
# table in src/util/env.cc, so that table IS the source-side knob list.
# Build knobs (IXP_PARANOID as a forced-on option, IXP_SANITIZE,
# IXP_COVERAGE) live in the top-level CMakeLists; the CI scripts under
# tools/ read their own ${IXP_*} knobs.  README must document all three
# kinds, and must not document ghosts.  Only source env knobs are required
# in `afixp tables --help` (build and script knobs are not visible to a
# compiled binary).
env_table="$src/src/util/env.cc"
[ -r "$env_table" ] || { err "cannot read $env_table"; exit 1; }
src_knobs=$(grep -oE '\{"IXP_[A-Z_]+"' "$env_table" |
    grep -oE 'IXP_[A-Z_]+' | sort -u)
[ -n "$src_knobs" ] || err "no knobs found in the kKnobs table of $env_table"
# The registry only works if it is the single getenv path: any direct
# getenv("IXP_...") outside env.cc bypasses the declaration check.
grep -rn --include='*.cc' --include='*.h' --include='*.cpp' 'getenv("IXP_' \
    "$src/src" "$src/bench" "$src/tools" "$src/examples" 2>/dev/null |
    grep -v 'src/util/env\.' |
while read -r hit; do
    err "direct getenv(\"IXP_*\") outside src/util/env.cc: $hit"
done
cmake_knobs=$(grep -hoE 'IXP_[A-Z_]+' "$src/CMakeLists.txt" 2>/dev/null | sort -u)
script_knobs=$(grep -hoE '\$\{IXP_[A-Z_]+' "$src"/tools/*.sh 2>/dev/null |
    grep -oE 'IXP_[A-Z_]+' | sort -u)
readme_knobs=$(grep -oE 'IXP_[A-Z_]+' "$readme" | sort -u)
for k in $readme_knobs; do
    { echo "$src_knobs"; echo "$cmake_knobs"; echo "$script_knobs"; } | grep -qx "$k" ||
        err "README documents knob '$k' but no source, CMakeLists, or tools/ script uses it"
done
for k in $src_knobs; do
    echo "$readme_knobs" | grep -qx "$k" || err "sources read env knob '$k' but README does not document it"
    "$afixp" tables --help 2>&1 | grep -q "$k" ||
        err "'afixp tables --help' does not mention env knob '$k'"
done
for k in $cmake_knobs; do
    echo "$readme_knobs" | grep -qx "$k" ||
        err "CMakeLists defines build knob '$k' but README does not document it"
done
for k in $script_knobs; do
    echo "$readme_knobs" | grep -qx "$k" ||
        err "tools/ script reads knob '$k' but README does not document it"
done

# --- 5. Benchmark harness flags: README documents every one ----------------
# `afixp bench` is the PR-to-PR performance comparison contract, so the
# README's "Benchmark harness" section must cover each flag it offers (the
# reverse of check 3, which only validates flags README already uses).
"$afixp" bench --help 2>&1 | grep -oE '^  --[a-z-]+' | tr -d ' ' | sort -u |
while read -r flag; do
    grep -q -- "$flag" "$readme" ||
        err "'afixp bench --help' offers '$flag' but README does not document it"
done

# --- 6. Docs cross-links resolve ------------------------------------------
for doc in $(grep -oE '\]\(([A-Za-z0-9_/.-]+\.md)\)' "$readme" | sed 's/](\(.*\))/\1/' | sort -u); do
    [ -f "$src/$doc" ] || err "README links to '$doc' but the file does not exist"
done

# --- 7. Topology-spec keys: docs/SCALING.md <-> src/topo/gen.cc -----------
# The kSpecKeys table in src/topo/gen.cc is the single parser-side list of
# `key = value` spec keys, and the key-reference table in docs/SCALING.md is
# the operator-facing contract.  Both directions must agree: every parsed
# key is documented, and SCALING.md documents no ghost keys.
scaling="$src/docs/SCALING.md"
gen_cc="$src/src/topo/gen.cc"
[ -r "$scaling" ] || err "docs/SCALING.md does not exist (the scaling guide is part of the docs contract)"
[ -r "$gen_cc" ] || err "cannot read $gen_cc"
if [ -r "$scaling" ] && [ -r "$gen_cc" ]; then
    spec_keys=$(sed -n '/kSpecKeys\[\]/,/^};/p' "$gen_cc" |
        grep -oE '\{"[a-z.]+"' | tr -d '{"' | sort -u)
    [ -n "$spec_keys" ] || err "no keys found in the kSpecKeys table of $gen_cc"
    for k in $spec_keys; do
        grep -q "\`$k\`" "$scaling" ||
            err "spec key '$k' (kSpecKeys) is not documented in docs/SCALING.md"
    done
    # Reverse direction: keys listed in the SCALING.md key-reference table
    # (first column of the table under '### Key reference') must parse.
    doc_keys=$(sed -n '/^### Key reference/,/^## /p' "$scaling" |
        grep -oE '^\| `[a-z.]+`' | tr -d '`| ' | sort -u)
    [ -n "$doc_keys" ] || err "no key-reference table found in docs/SCALING.md"
    for k in $doc_keys; do
        echo "$spec_keys" | grep -qx "$k" ||
            err "docs/SCALING.md documents spec key '$k' but kSpecKeys does not parse it"
    done
fi

# --- 8. BENCH_substrate.json fields: record <-> docs/SCALING.md -----------
# The committed record at the repo root is the reference continent-scale
# run; SCALING.md documents every field of the afixp-bench-substrate/1
# schema, and documents no ghost fields.
sub_record="$src/BENCH_substrate.json"
[ -r "$sub_record" ] || err "BENCH_substrate.json does not exist at the repo root"
if [ -r "$scaling" ] && [ -r "$sub_record" ]; then
    record_fields=$(grep -oE '^  "[a-z_]+"' "$sub_record" | tr -d ' "' | sort -u)
    [ -n "$record_fields" ] || err "no fields found in $sub_record"
    for f in $record_fields; do
        grep -q "\`$f\`" "$scaling" ||
            err "BENCH_substrate.json field '$f' is not documented in docs/SCALING.md"
    done
    doc_fields=$(sed -n '/^## The substrate benchmark/,$p' "$scaling" |
        grep -oE '^\| `[a-z_]+`' | tr -d '`| ' | sort -u)
    [ -n "$doc_fields" ] || err "no benchmark-field table found in docs/SCALING.md"
    for f in $doc_fields; do
        echo "$record_fields" | grep -qx "$f" ||
            err "docs/SCALING.md documents bench field '$f' but the record does not carry it"
    done
fi

# --- 9. BENCH_tslp.json fields: record <-> docs/ARCHITECTURE.md -----------
# The committed record at the repo root is the reference TSLP-engine run;
# the "TSLP fast path" section of ARCHITECTURE.md documents every field of
# the afixp-bench-tslp/1 schema (including the nested engine-entry fields),
# and documents no ghost fields.
arch="$src/docs/ARCHITECTURE.md"
tslp_record="$src/BENCH_tslp.json"
[ -r "$tslp_record" ] || err "BENCH_tslp.json does not exist at the repo root"
if [ -r "$arch" ] && [ -r "$tslp_record" ]; then
    tslp_fields=$(grep -oE '"[a-z_]+":' "$tslp_record" | tr -d '":' | sort -u)
    [ -n "$tslp_fields" ] || err "no fields found in $tslp_record"
    tslp_section=$(sed -n '/^## The TSLP fast path/,/^## The continent-scale substrate/p' "$arch")
    [ -n "$tslp_section" ] || err "docs/ARCHITECTURE.md has no 'TSLP fast path' section"
    for f in $tslp_fields; do
        echo "$tslp_section" | grep -q "\`$f\`" ||
            err "BENCH_tslp.json field '$f' is not documented in docs/ARCHITECTURE.md"
    done
    tslp_doc_fields=$(echo "$tslp_section" | grep -oE '^\| `[a-z_]+`' | tr -d '`| ' | sort -u)
    [ -n "$tslp_doc_fields" ] || err "no TSLP bench-field table found in docs/ARCHITECTURE.md"
    for f in $tslp_doc_fields; do
        echo "$tslp_fields" | grep -qx "$f" ||
            err "docs/ARCHITECTURE.md documents TSLP bench field '$f' but the record does not carry it"
    done
fi

# --- 10. Serving endpoints: docs/SERVING.md <-> src/serve/serve.cc --------
# The kEndpoints dispatch table in ServeDaemon::endpoints() is the single
# source of truth for the HTTP surface; the endpoint table in
# docs/SERVING.md (first column under '## Endpoints') is the operator
# contract.  Both directions must agree: every routed pattern is
# documented, and SERVING.md documents no ghost endpoints.
serving="$src/docs/SERVING.md"
serve_cc="$src/src/serve/serve.cc"
[ -r "$serving" ] || err "docs/SERVING.md does not exist (the serving guide is part of the docs contract)"
[ -r "$serve_cc" ] || err "cannot read $serve_cc"
if [ -r "$serving" ] && [ -r "$serve_cc" ]; then
    routed=$(sed -n '/kEndpoints = {/,/^  };/p' "$serve_cc" |
        grep -oE '\{"/[^"]*"' | sed 's/^{"//; s/"$//' | sort -u)
    [ -n "$routed" ] || err "no patterns found in the kEndpoints table of $serve_cc"
    for e in $routed; do
        grep -q "\`$e\`" "$serving" ||
            err "endpoint '$e' (kEndpoints) is not documented in docs/SERVING.md"
    done
    doc_endpoints=$(sed -n '/^## Endpoints/,/^## /p' "$serving" |
        grep -oE '^\| `/[^`]*`' | sed 's/^| `//; s/`$//' | sort -u)
    [ -n "$doc_endpoints" ] || err "no endpoint table found in docs/SERVING.md"
    for e in $doc_endpoints; do
        echo "$routed" | grep -qxF "$e" ||
            err "docs/SERVING.md documents endpoint '$e' but kEndpoints does not route it"
    done
fi

# --- 11. BENCH_serve.json fields: record <-> docs/SERVING.md --------------
# The committed record at the repo root is the reference live-observatory
# soak; SERVING.md documents every field of the afixp-bench-serve/1 schema,
# and documents no ghost fields.
serve_record="$src/BENCH_serve.json"
[ -r "$serve_record" ] || err "BENCH_serve.json does not exist at the repo root"
if [ -r "$serving" ] && [ -r "$serve_record" ]; then
    serve_fields=$(grep -oE '^  "[a-z_]+"' "$serve_record" | tr -d ' "' | sort -u)
    [ -n "$serve_fields" ] || err "no fields found in $serve_record"
    for f in $serve_fields; do
        grep -q "\`$f\`" "$serving" ||
            err "BENCH_serve.json field '$f' is not documented in docs/SERVING.md"
    done
    serve_doc_fields=$(sed -n '/^## The serving benchmark/,$p' "$serving" |
        grep -oE '^\| `[a-z_]+`' | tr -d '`| ' | sort -u)
    [ -n "$serve_doc_fields" ] || err "no bench-field table found in docs/SERVING.md"
    for f in $serve_doc_fields; do
        echo "$serve_fields" | grep -qx "$f" ||
            err "docs/SERVING.md documents bench field '$f' but the record does not carry it"
    done
fi

# --- 12. Scenario plans: docs/SCENARIOS.md <-> src/util/fault_plan.cc -----
# The kScenarioPlans registry is the single source of truth for named
# scenario plans (afixp chaos/serve --plan, --list-plans); the plan-registry
# table in docs/SCENARIOS.md (first column under '## Plan registry') is the
# operator contract.  Both directions must agree: every registered plan is
# documented, and SCENARIOS.md documents no ghost plans.
scenarios="$src/docs/SCENARIOS.md"
plan_cc="$src/src/util/fault_plan.cc"
[ -r "$scenarios" ] || err "docs/SCENARIOS.md does not exist (the scenario guide is part of the docs contract)"
[ -r "$plan_cc" ] || err "cannot read $plan_cc"
if [ -r "$scenarios" ] && [ -r "$plan_cc" ]; then
    plans=$(sed -n '/kScenarioPlans\[\]/,/^};/p' "$plan_cc" |
        grep -oE '^    \{"[a-z0-9-]+"' | tr -d '{" ' | sort -u)
    [ -n "$plans" ] || err "no plans found in the kScenarioPlans table of $plan_cc"
    for p in $plans; do
        grep -q "\`$p\`" "$scenarios" ||
            err "scenario plan '$p' (kScenarioPlans) is not documented in docs/SCENARIOS.md"
        "$afixp" chaos --list-plans 2>&1 | grep -qw "$p" ||
            err "'afixp chaos --list-plans' does not list scenario plan '$p'"
    done
    doc_plans=$(sed -n '/^## Plan registry/,/^## /p' "$scenarios" |
        grep -oE '^\| `[a-z0-9-]+`' | tr -d '`| ' | sort -u)
    [ -n "$doc_plans" ] || err "no plan-registry table found in docs/SCENARIOS.md"
    for p in $doc_plans; do
        echo "$plans" | grep -qx "$p" ||
            err "docs/SCENARIOS.md documents scenario plan '$p' but kScenarioPlans does not register it"
    done
fi

if [ -s "$errors" ]; then
    echo "check_docs: FAILED ($(wc -l < "$errors") problem(s))" >&2
    exit 1
fi
echo "check_docs: OK"
