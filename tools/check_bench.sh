#!/bin/sh
# Benchmark-harness smoke check, run from CTest (see tools/CMakeLists.txt).
#
# Runs the CI-sized benchmark workloads and fails when the harness crashes,
# emits malformed JSON, or the record is missing the fields the comparison
# workflow in README.md depends on (schema tag, per-benchmark name/unit and
# positive throughput numbers).  This is a format/liveness gate, not a
# performance gate: smoke timings on shared CI boxes are too noisy to assert
# thresholds on.
#
# One exception: the observability overhead gate.  A second campaign_six_vp
# run with --metrics must stay within a lenient factor of the metrics-off
# run -- metrics collection scrapes plain counters at segment boundaries,
# so a big gap means someone put registry work on the per-probe path.  The
# threshold (0.70x) is deliberately loose to survive CI noise.
#
# usage: check_bench.sh <bench_probe_binary>
set -u

bench=${1:?usage: check_bench.sh <bench_probe_binary>}
[ -x "$bench" ] || { echo "check_bench: cannot execute $bench" >&2; exit 1; }

out=$(mktemp)
trap 'rm -f "$out"' EXIT

if ! "$bench" --smoke --out "$out"; then
    echo "check_bench: bench_probe --smoke exited non-zero" >&2
    exit 1
fi

python3 - "$out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: {msg}")

if record.get("schema") != "afixp-bench-sim/1":
    fail(f"unexpected schema tag {record.get('schema')!r}")
if record.get("workload") != "smoke":
    fail(f"expected workload 'smoke', got {record.get('workload')!r}")
benches = record.get("benchmarks")
if not isinstance(benches, list) or not benches:
    fail("'benchmarks' must be a non-empty list")
expected = {"probe_fabric", "event_loop", "campaign_six_vp"}
names = {b.get("name") for b in benches}
if names != expected:
    fail(f"benchmark set {sorted(names)} != {sorted(expected)}")
for b in benches:
    for key in ("unit", "items_per_pass", "cold_per_sec", "warm_per_sec", "wall_seconds"):
        if key not in b:
            fail(f"benchmark {b.get('name')!r} lacks field {key!r}")
    for key in ("cold_per_sec", "warm_per_sec"):
        if not (isinstance(b[key], (int, float)) and b[key] > 0):
            fail(f"benchmark {b.get('name')!r} has non-positive {key}: {b[key]!r}")
print("check_bench: OK")
EOF
[ $? -eq 0 ] || exit 1

# --- Observability overhead gate ------------------------------------------
metrics_out=$(mktemp)
trap 'rm -f "$out" "$metrics_out"' EXIT
if ! "$bench" --smoke --only campaign_six_vp --metrics --out "$metrics_out"; then
    echo "check_bench: bench_probe --metrics exited non-zero" >&2
    exit 1
fi

python3 - "$out" "$metrics_out" <<'EOF'
import json
import sys

def warm(path, name):
    with open(path) as f:
        record = json.load(f)
    for b in record.get("benchmarks", []):
        if b.get("name") == name:
            return b["warm_per_sec"]
    sys.exit(f"check_bench: {path} lacks benchmark {name!r}")

off = warm(sys.argv[1], "campaign_six_vp")
on = warm(sys.argv[2], "campaign_six_vp")
ratio = on / off
print(f"check_bench: campaign_six_vp metrics-on/off warm ratio {ratio:.3f} "
      f"({on:.0f} vs {off:.0f} probes/s)")
if ratio < 0.70:
    sys.exit(f"check_bench: metrics collection costs too much "
             f"(ratio {ratio:.3f} < 0.70) -- registry work on the hot path?")
print("check_bench: overhead gate OK")
EOF
