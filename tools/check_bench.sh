#!/bin/sh
# Benchmark-harness smoke check, run from CTest (see tools/CMakeLists.txt).
#
# Runs the CI-sized benchmark workloads and fails when the harness crashes,
# emits malformed JSON, or the record is missing the fields the comparison
# workflow in README.md depends on (schema tag, per-benchmark name/unit and
# positive throughput numbers).  This is a format/liveness gate, not a
# performance gate: smoke timings on shared CI boxes are too noisy to assert
# thresholds on.
#
# One exception: the observability overhead gate.  A second campaign_six_vp
# run with --metrics must stay within a lenient factor of the metrics-off
# run -- metrics collection scrapes plain counters at segment boundaries,
# so a big gap means someone put registry work on the per-probe path.  The
# threshold (0.70x) is deliberately loose to survive CI noise.
#
# When a bench_substrate binary is supplied, its smoke workload runs under
# the same format gate: the afixp-bench-substrate/1 record must carry every
# field docs/SCALING.md documents, with positive throughput and a columnar
# store that actually beats raw storage.
#
# The lp_islands benchmark inside the afixp-bench-sim/2 record carries a
# second non-negotiable bit: identical=true -- the partitioned LP run must
# be byte-identical to the serial simulator (same RTT bit patterns, same
# event and forwarding counts).  The committed reference BENCH_sim.json is
# additionally checked for the full regional50 workload at 8 LP workers;
# its >= 1.5x speedup bar only applies when the recording host actually had
# enough CPUs to run the workers in parallel (host_cpus >= threads) -- on a
# single-core recorder the record must still be identical, but asserting a
# parallel speedup would be asserting fiction.
#
# When a bench_tslp binary is supplied, its smoke workload runs too: the
# afixp-bench-tslp/1 record must carry all three engines (scalar, batch,
# online) with positive rates, and -- non-negotiably -- equivalent=true:
# the fast paths must be byte-identical to the legacy detector.  When a
# source dir is also supplied, the committed reference BENCH_tslp.json is
# checked as well: full regional50 workload, equivalent, and the batch
# engine at >= 3x the scalar baseline.  The reference record is a committed
# artifact, not a CI measurement, so asserting its speedup is safe.
#
# When a bench_serve binary is supplied, its smoke workload runs too: the
# afixp-bench-serve/1 record must carry the full field set docs/SERVING.md
# documents, with positive read throughput and an error-free soak.  The
# committed reference BENCH_serve.json is gated as well: full continent100
# workload, no errors, and a minimum queries/s floor -- 10k on a
# multi-core recorder, relaxed to 5k when the recording host had a single
# CPU (the campaign driver, HTTP workers, and soak clients all share it).
#
# usage: check_bench.sh <bench_probe_binary> [bench_substrate_binary] \
#                       [bench_tslp_binary] [bench_serve_binary] [source_dir]
set -u

bench=${1:?usage: check_bench.sh <bench_probe_binary> [bench_substrate_binary] [bench_tslp_binary] [bench_serve_binary] [source_dir]}
substrate=${2:-}
tslp=${3:-}
serve=${4:-}
srcdir=${5:-}
[ -x "$bench" ] || { echo "check_bench: cannot execute $bench" >&2; exit 1; }

out=$(mktemp)
trap 'rm -f "$out"' EXIT

if ! "$bench" --smoke --out "$out"; then
    echo "check_bench: bench_probe --smoke exited non-zero" >&2
    exit 1
fi

python3 - "$out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: {msg}")

if record.get("schema") != "afixp-bench-sim/2":
    fail(f"unexpected schema tag {record.get('schema')!r}")
if record.get("workload") != "smoke":
    fail(f"expected workload 'smoke', got {record.get('workload')!r}")
benches = record.get("benchmarks")
if not isinstance(benches, list) or not benches:
    fail("'benchmarks' must be a non-empty list")
expected = {"probe_fabric", "event_loop", "campaign_six_vp", "lp_islands"}
names = {b.get("name") for b in benches}
if names != expected:
    fail(f"benchmark set {sorted(names)} != {sorted(expected)}")
for b in benches:
    for key in ("unit", "items_per_pass", "cold_per_sec", "warm_per_sec", "wall_seconds"):
        if key not in b:
            fail(f"benchmark {b.get('name')!r} lacks field {key!r}")
    for key in ("cold_per_sec", "warm_per_sec"):
        if not (isinstance(b[key], (int, float)) and b[key] > 0):
            fail(f"benchmark {b.get('name')!r} has non-positive {key}: {b[key]!r}")
# The LP comparison record must be present and -- non-negotiably, even at
# smoke size on a one-core CI box -- byte-identical to the serial run.
lp = record.get("lp")
if not isinstance(lp, dict):
    fail("record lacks the 'lp' comparison object")
for key in ("spec", "threads", "lps", "host_cpus", "serial_wall_seconds",
            "lp_wall_seconds", "speedup", "identical", "windows",
            "cross_messages", "events"):
    if key not in lp:
        fail(f"lp record lacks field {key!r}")
if lp.get("identical") is not True:
    fail("lp run diverged from the serial simulator (identical != true)")
for key in ("threads", "lps", "events"):
    if not (isinstance(lp[key], int) and lp[key] > 0):
        fail(f"lp record has non-positive {key}: {lp[key]!r}")
print("check_bench: OK")
EOF
[ $? -eq 0 ] || exit 1

# --- Observability overhead gate ------------------------------------------
metrics_out=$(mktemp)
trap 'rm -f "$out" "$metrics_out"' EXIT
if ! "$bench" --smoke --only campaign_six_vp --metrics --out "$metrics_out"; then
    echo "check_bench: bench_probe --metrics exited non-zero" >&2
    exit 1
fi

python3 - "$out" "$metrics_out" <<'EOF'
import json
import sys

def warm(path, name):
    with open(path) as f:
        record = json.load(f)
    for b in record.get("benchmarks", []):
        if b.get("name") == name:
            return b["warm_per_sec"]
    sys.exit(f"check_bench: {path} lacks benchmark {name!r}")

off = warm(sys.argv[1], "campaign_six_vp")
on = warm(sys.argv[2], "campaign_six_vp")
ratio = on / off
print(f"check_bench: campaign_six_vp metrics-on/off warm ratio {ratio:.3f} "
      f"({on:.0f} vs {off:.0f} probes/s)")
if ratio < 0.70:
    sys.exit(f"check_bench: metrics collection costs too much "
             f"(ratio {ratio:.3f} < 0.70) -- registry work on the hot path?")
print("check_bench: overhead gate OK")
EOF
[ $? -eq 0 ] || exit 1

# --- Substrate benchmark record gate ---------------------------------------
[ -n "$substrate" ] || exit 0
[ -x "$substrate" ] || { echo "check_bench: cannot execute $substrate" >&2; exit 1; }

sub_out=$(mktemp)
trap 'rm -f "$out" "$metrics_out" "$sub_out"' EXIT
if ! "$substrate" --smoke --out "$sub_out"; then
    echo "check_bench: bench_substrate --smoke exited non-zero" >&2
    exit 1
fi

python3 - "$sub_out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed substrate JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: {msg}")

if record.get("schema") != "afixp-bench-substrate/1":
    fail(f"unexpected substrate schema tag {record.get('schema')!r}")
if record.get("workload") != "smoke":
    fail(f"expected substrate workload 'smoke', got {record.get('workload')!r}")
# The full field set docs/SCALING.md documents -- losing any breaks the
# cross-commit comparison workflow.
fields = {
    "schema", "workload", "spec", "seed", "jobs", "ixps", "links", "rounds",
    "samples", "probes", "wall_seconds", "link_rounds_per_sec",
    "probes_per_sec", "resident_bytes", "raw_bytes", "bytes_per_link",
    "raw_bytes_per_link", "compression_ratio", "peak_rss_kb",
}
missing = fields - record.keys()
if missing:
    fail(f"substrate record lacks field(s) {sorted(missing)}")
for key in ("ixps", "links", "rounds", "samples", "probes",
            "link_rounds_per_sec", "bytes_per_link", "peak_rss_kb"):
    if not (isinstance(record[key], (int, float)) and record[key] > 0):
        fail(f"substrate record has non-positive {key}: {record[key]!r}")
if not record["resident_bytes"] < record["raw_bytes"]:
    fail(f"columnar store does not beat raw storage "
         f"({record['resident_bytes']} >= {record['raw_bytes']} bytes)")
print("check_bench: substrate record OK")
EOF
[ $? -eq 0 ] || exit 1

# --- TSLP benchmark smoke gate ---------------------------------------------
[ -n "$tslp" ] || exit 0
[ -x "$tslp" ] || { echo "check_bench: cannot execute $tslp" >&2; exit 1; }

tslp_out=$(mktemp)
trap 'rm -f "$out" "$metrics_out" "$sub_out" "$tslp_out"' EXIT
if ! "$tslp" --smoke --out "$tslp_out"; then
    echo "check_bench: bench_tslp --smoke exited non-zero" >&2
    exit 1
fi

python3 - "$tslp_out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed tslp JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: {msg}")

if record.get("schema") != "afixp-bench-tslp/1":
    fail(f"unexpected tslp schema tag {record.get('schema')!r}")
if record.get("workload") != "smoke":
    fail(f"expected tslp workload 'smoke', got {record.get('workload')!r}")
engines = record.get("engines")
if not isinstance(engines, list) or not engines:
    fail("'engines' must be a non-empty list")
names = {e.get("name") for e in engines}
if names != {"scalar", "batch", "online"}:
    fail(f"engine set {sorted(names)} != ['batch', 'online', 'scalar']")
for e in engines:
    for key in ("cold_series_per_sec", "warm_series_per_sec", "wall_seconds"):
        if key not in e:
            fail(f"engine {e.get('name')!r} lacks field {key!r}")
        if not (isinstance(e[key], (int, float)) and e[key] > 0):
            fail(f"engine {e.get('name')!r} has non-positive {key}: {e[key]!r}")
# The non-negotiable bit, even at smoke size: the fast paths must have
# produced byte-identical reports to the legacy detector on every link.
if record.get("equivalent") is not True:
    fail("tslp engines are not equivalent -- the fast path diverged "
         "from the legacy detector")
print("check_bench: tslp smoke OK")
EOF
[ $? -eq 0 ] || exit 1

# --- Serve benchmark smoke gate --------------------------------------------
if [ -n "$serve" ]; then
    [ -x "$serve" ] || { echo "check_bench: cannot execute $serve" >&2; exit 1; }

    serve_out=$(mktemp)
    trap 'rm -f "$out" "$metrics_out" "$sub_out" "$tslp_out" "$serve_out"' EXIT
    if ! "$serve" --smoke --out "$serve_out"; then
        echo "check_bench: bench_serve --smoke exited non-zero" >&2
        exit 1
    fi

    python3 - "$serve_out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed serve JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: {msg}")

if record.get("schema") != "afixp-bench-serve/1":
    fail(f"unexpected serve schema tag {record.get('schema')!r}")
if record.get("workload") != "smoke":
    fail(f"expected serve workload 'smoke', got {record.get('workload')!r}")
# The full field set docs/SERVING.md documents.
fields = {
    "schema", "workload", "spec", "http_threads", "client_threads",
    "soak_seconds", "queries", "errors", "queries_per_sec", "passes",
    "epochs", "links", "host_cpus",
}
missing = fields - record.keys()
if missing:
    fail(f"serve record lacks field(s) {sorted(missing)}")
for key in ("queries", "queries_per_sec", "passes", "epochs", "links",
            "soak_seconds"):
    if not (isinstance(record[key], (int, float)) and record[key] > 0):
        fail(f"serve record has non-positive {key}: {record[key]!r}")
# A clean soak answers every query; allow nothing worse than 1% transport
# noise on a loaded CI box.
if record["errors"] * 100 > record["queries"]:
    fail(f"serve soak errors too high ({record['errors']} of "
         f"{record['queries']} queries)")
print("check_bench: serve smoke OK")
EOF
    [ $? -eq 0 ] || exit 1
fi

# --- TSLP committed reference gate -----------------------------------------
[ -n "$srcdir" ] || exit 0
ref="$srcdir/BENCH_tslp.json"
[ -f "$ref" ] || { echo "check_bench: missing committed reference $ref" >&2; exit 1; }

python3 - "$ref" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed reference JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: BENCH_tslp.json {msg}")

if record.get("schema") != "afixp-bench-tslp/1":
    fail(f"has unexpected schema tag {record.get('schema')!r}")
if record.get("workload") != "full":
    fail(f"is not a full-workload record ({record.get('workload')!r})")
if record.get("spec") != "regional50":
    fail(f"was not measured on the regional50 substrate ({record.get('spec')!r})")
if record.get("equivalent") is not True:
    fail("records non-equivalent engines")
speedup = record.get("speedup_batch")
if not (isinstance(speedup, (int, float)) and speedup >= 3.0):
    fail(f"batch speedup {speedup!r} is below the 3.0x acceptance bar")
print(f"check_bench: reference OK (batch {speedup}x over scalar)")
EOF
[ $? -eq 0 ] || exit 1

# --- Sim committed reference gate (LP speedup record) -----------------------
simref="$srcdir/BENCH_sim.json"
[ -f "$simref" ] || { echo "check_bench: missing committed reference $simref" >&2; exit 1; }

python3 - "$simref" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed reference JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: BENCH_sim.json {msg}")

if record.get("schema") != "afixp-bench-sim/2":
    fail(f"has unexpected schema tag {record.get('schema')!r}")
if record.get("workload") != "full":
    fail(f"is not a full-workload record ({record.get('workload')!r})")
lp = record.get("lp")
if not isinstance(lp, dict):
    fail("lacks the 'lp' comparison object")
if lp.get("spec") != "regional50":
    fail(f"lp record was not measured on regional50 ({lp.get('spec')!r})")
if lp.get("threads") != 8:
    fail(f"lp record was not measured at 8 LP workers ({lp.get('threads')!r})")
if lp.get("identical") is not True:
    fail("lp record diverged from the serial simulator")
speedup = lp.get("speedup")
if not (isinstance(speedup, (int, float)) and speedup > 0):
    fail(f"lp record has non-positive speedup {speedup!r}")
host_cpus = lp.get("host_cpus")
if isinstance(host_cpus, int) and host_cpus >= lp.get("threads", 8):
    # Recorded on a host with enough cores for real parallelism: hold the
    # record to the acceptance bar.
    if speedup < 1.5:
        fail(f"lp speedup {speedup!r} is below the 1.5x acceptance bar "
             f"(recorded on a {host_cpus}-CPU host)")
    print(f"check_bench: sim reference OK (lp {speedup}x over serial, "
          f"{host_cpus} CPUs)")
else:
    # Single-core (or under-provisioned) recorder: the LP run cannot
    # physically beat serial by the parallel bar, so only the determinism
    # contract is enforced above.  Re-record on real hardware to arm the
    # speedup gate.
    print(f"check_bench: sim reference OK (identical; speedup gate idle, "
          f"recorded with host_cpus={host_cpus!r} < threads)")
EOF

# --- Serve committed reference gate ----------------------------------------
[ -n "$serve" ] || exit 0
serveref="$srcdir/BENCH_serve.json"
[ -f "$serveref" ] || { echo "check_bench: missing committed reference $serveref" >&2; exit 1; }

python3 - "$serveref" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed reference JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: BENCH_serve.json {msg}")

if record.get("schema") != "afixp-bench-serve/1":
    fail(f"has unexpected schema tag {record.get('schema')!r}")
if record.get("workload") != "full":
    fail(f"is not a full-workload record ({record.get('workload')!r})")
if record.get("spec") != "continent100":
    fail(f"was not measured against continent100 ({record.get('spec')!r})")
if record.get("errors") != 0:
    fail(f"records a soak with errors ({record.get('errors')!r})")
qps = record.get("queries_per_sec")
if not (isinstance(qps, (int, float)) and qps > 0):
    fail(f"has non-positive queries_per_sec {qps!r}")
host_cpus = record.get("host_cpus")
# The floor is conditional on the recording host: with a single CPU the
# campaign driver, HTTP workers, and soak clients all timeshare one core,
# so the bar drops to half.
floor = 10000.0 if isinstance(host_cpus, int) and host_cpus >= 2 else 5000.0
if qps < floor:
    fail(f"queries_per_sec {qps!r} is below the {floor:.0f}/s floor "
         f"(host_cpus={host_cpus!r})")
print(f"check_bench: serve reference OK ({qps:.0f} queries/s on a "
      f"{host_cpus}-CPU host)")
EOF
