#!/bin/sh
# Benchmark-harness smoke check, run from CTest (see tools/CMakeLists.txt).
#
# Runs the CI-sized benchmark workloads and fails when the harness crashes,
# emits malformed JSON, or the record is missing the fields the comparison
# workflow in README.md depends on (schema tag, per-benchmark name/unit and
# positive throughput numbers).  This is a format/liveness gate, not a
# performance gate: smoke timings on shared CI boxes are too noisy to assert
# thresholds on.
#
# usage: check_bench.sh <bench_probe_binary>
set -u

bench=${1:?usage: check_bench.sh <bench_probe_binary>}
[ -x "$bench" ] || { echo "check_bench: cannot execute $bench" >&2; exit 1; }

out=$(mktemp)
trap 'rm -f "$out"' EXIT

if ! "$bench" --smoke --out "$out"; then
    echo "check_bench: bench_probe --smoke exited non-zero" >&2
    exit 1
fi

python3 - "$out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    try:
        record = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: malformed JSON: {e}")

def fail(msg):
    sys.exit(f"check_bench: {msg}")

if record.get("schema") != "afixp-bench-sim/1":
    fail(f"unexpected schema tag {record.get('schema')!r}")
if record.get("workload") != "smoke":
    fail(f"expected workload 'smoke', got {record.get('workload')!r}")
benches = record.get("benchmarks")
if not isinstance(benches, list) or not benches:
    fail("'benchmarks' must be a non-empty list")
expected = {"probe_fabric", "event_loop", "campaign_six_vp"}
names = {b.get("name") for b in benches}
if names != expected:
    fail(f"benchmark set {sorted(names)} != {sorted(expected)}")
for b in benches:
    for key in ("unit", "items_per_pass", "cold_per_sec", "warm_per_sec", "wall_seconds"):
        if key not in b:
            fail(f"benchmark {b.get('name')!r} lacks field {key!r}")
    for key in ("cold_per_sec", "warm_per_sec"):
        if not (isinstance(b[key], (int, float)) and b[key] > 0):
            fail(f"benchmark {b.get('name')!r} has non-positive {key}: {b[key]!r}")
print("check_bench: OK")
EOF
