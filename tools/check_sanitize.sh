#!/bin/sh
# Sanitizer CI (layer 3 of the correctness harness), run from CTest.
#
# Two modes, selected by the IXP_SANITIZE environment variable:
#
#   address (default)  -DIXP_SANITIZE=address;undefined -DIXP_PARANOID=ON;
#                      runs the statistics-path gtest suites with
#                      halt-on-error ASan/UBSan settings.
#   thread             -DIXP_SANITIZE=thread -DIXP_PARANOID=ON; runs the
#                      suites that exercise real threads (the LP scheduler,
#                      the fleet pool, and the serving layer's snapshot
#                      publish/pin path) under TSan, so a data race in the
#                      barrier-window exchange, the counter-shadow merge,
#                      or the epoch swap fails CI instead of silently
#                      corrupting a "byte-identical" run.
#
# Each mode configures its own build tree (reused across runs, so only the
# first invocation pays the full compile).
#
# When the toolchain cannot produce a working sanitized binary for the
# requested mode (missing runtime libraries, cross builds), the check is
# SKIPPED, not failed: the golden corpus and the invariant layer still run
# in the normal build.
#
# usage: check_sanitize.sh <source_dir> [build_dir]
#   IXP_SANITIZE         "address" (default) or "thread"
#   IXP_SANITIZE_SUITES  override the space-separated list of test binaries
set -u

src=${1:?usage: check_sanitize.sh <source_dir> [build_dir]}
mode=${IXP_SANITIZE:-address}
case "$mode" in
    thread)
        build=${2:-$src/build-sanitize-thread}
        suites=${IXP_SANITIZE_SUITES:-test_parallel_sim test_fleet test_serve}
        probe_flags="-fsanitize=thread"
        cmake_sanitize="thread"
        ;;
    address|*)
        build=${2:-$src/build-sanitize}
        suites=${IXP_SANITIZE_SUITES:-test_util test_obs test_net test_stats test_sim test_tslp test_golden test_prober test_faults test_analysis test_serve}
        probe_flags="-fsanitize=address,undefined"
        cmake_sanitize="address;undefined"
        ;;
esac

# --- Toolchain probe: can we compile AND run a sanitized binary? ----------
probe_dir=$(mktemp -d)
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cc" <<'EOF'
int main() { return 0; }
EOF
if ! c++ $probe_flags "$probe_dir/probe.cc" -o "$probe_dir/probe" \
        > /dev/null 2>&1 || ! "$probe_dir/probe" > /dev/null 2>&1; then
    echo "check_sanitize: SKIPPED ($mode: toolchain cannot build/run sanitized binaries)"
    exit 0
fi

# --- Configure + build the sanitized tree ---------------------------------
if ! cmake -B "$build" -S "$src" \
        -DIXP_SANITIZE="$cmake_sanitize" -DIXP_PARANOID=ON \
        > "$probe_dir/configure.log" 2>&1; then
    echo "check_sanitize: FAILED to configure the $mode-sanitized build" >&2
    tail -n 30 "$probe_dir/configure.log" >&2
    exit 1
fi
# shellcheck disable=SC2086  # suites is a deliberate word list
if ! cmake --build "$build" --target $suites -j "$(nproc)" \
        > "$probe_dir/build.log" 2>&1; then
    echo "check_sanitize: FAILED to build the $mode-sanitized test suites" >&2
    tail -n 30 "$probe_dir/build.log" >&2
    exit 1
fi

# --- Run the suites with halt-on-error sanitizer settings -----------------
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
# tools/tsan.supp masks libstdc++'s _Sp_atomic false positive (relaxed
# spinlock unlock in atomic<shared_ptr>::load); see the comment there.
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$src/tools/tsan.supp"
export ASAN_OPTIONS UBSAN_OPTIONS TSAN_OPTIONS
status=0
for s in $suites; do
    printf 'check_sanitize: running %s [%s] ... ' "$s" "$mode"
    if "$build/tests/$s" --gtest_brief=1 > "$probe_dir/$s.log" 2>&1; then
        echo "OK"
    else
        echo "FAILED"
        tail -n 40 "$probe_dir/$s.log"
        status=1
    fi
done
[ "$status" -eq 0 ] && echo "check_sanitize: OK [$mode] ($suites)"
exit $status
