#!/bin/sh
# Sanitizer CI (layer 3 of the correctness harness), run from CTest.
#
# Configures a second build tree with -DIXP_SANITIZE=address;undefined and
# -DIXP_PARANOID=ON, builds the statistics-path gtest suites, and runs them
# with halt-on-error sanitizer settings.  The build tree is reused across
# runs, so only the first invocation pays the full compile.
#
# When the toolchain cannot produce a working ASan/UBSan binary (missing
# runtime libraries, cross builds), the check is SKIPPED, not failed: the
# golden corpus and the invariant layer still run in the normal build.
#
# usage: check_sanitize.sh <source_dir> [build_dir]
#   IXP_SANITIZE_SUITES  override the space-separated list of test binaries
set -u

src=${1:?usage: check_sanitize.sh <source_dir> [build_dir]}
build=${2:-$src/build-sanitize}
suites=${IXP_SANITIZE_SUITES:-test_util test_obs test_net test_stats test_sim test_tslp test_golden test_prober test_faults}

# --- Toolchain probe: can we compile AND run a sanitized binary? ----------
probe_dir=$(mktemp -d)
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cc" <<'EOF'
int main() { return 0; }
EOF
if ! c++ -fsanitize=address,undefined "$probe_dir/probe.cc" -o "$probe_dir/probe" \
        > /dev/null 2>&1 || ! "$probe_dir/probe" > /dev/null 2>&1; then
    echo "check_sanitize: SKIPPED (toolchain cannot build/run sanitized binaries)"
    exit 0
fi

# --- Configure + build the sanitized tree ---------------------------------
if ! cmake -B "$build" -S "$src" \
        -DIXP_SANITIZE="address;undefined" -DIXP_PARANOID=ON \
        > "$probe_dir/configure.log" 2>&1; then
    echo "check_sanitize: FAILED to configure the sanitized build" >&2
    tail -n 30 "$probe_dir/configure.log" >&2
    exit 1
fi
# shellcheck disable=SC2086  # suites is a deliberate word list
if ! cmake --build "$build" --target $suites -j "$(nproc)" \
        > "$probe_dir/build.log" 2>&1; then
    echo "check_sanitize: FAILED to build the sanitized test suites" >&2
    tail -n 30 "$probe_dir/build.log" >&2
    exit 1
fi

# --- Run the suites with halt-on-error sanitizer settings -----------------
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS UBSAN_OPTIONS
status=0
for s in $suites; do
    printf 'check_sanitize: running %s ... ' "$s"
    if "$build/tests/$s" --gtest_brief=1 > "$probe_dir/$s.log" 2>&1; then
        echo "OK"
    else
        echo "FAILED"
        tail -n 40 "$probe_dir/$s.log"
        status=1
    fi
done
[ "$status" -eq 0 ] && echo "check_sanitize: OK ($suites)"
exit $status
