#!/bin/sh
# Metrics-export determinism check, run from CTest (see tools/CMakeLists.txt).
#
# The acceptance property behind `--metrics-out`: the same workload run
# with `--jobs 1` and `--jobs 8` must write byte-identical metrics files
# (JSON and Prometheus) and byte-identical stdout.  Per-VP registries are
# single-writer shards merged in spec order, so the job count must never
# leak into the exported bytes.  Also exercises the IXP_METRICS default
# path and the suffix dispatch to the Prometheus writer.
#
# usage: check_metrics.sh <afixp_binary>
set -u

afixp=${1:?usage: check_metrics.sh <afixp_binary>}
[ -x "$afixp" ] || { echo "check_metrics: cannot execute $afixp" >&2; exit 1; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
# A deliberately coarse cadence keeps this CI-sized (~seconds per run).
opts="--fast --round-minutes 240"

run() {
    jobs=$1
    out=$2
    # shellcheck disable=SC2086  # opts is a deliberate word list
    if ! "$afixp" tables $opts --jobs "$jobs" --metrics-out "$out" \
            > "$tmp/stdout.$jobs" 2> /dev/null; then
        echo "check_metrics: 'afixp tables --jobs $jobs' exited non-zero" >&2
        exit 1
    fi
    [ -s "$out" ] || { echo "check_metrics: $out is empty" >&2; exit 1; }
}

run 1 "$tmp/m1.json"
run 8 "$tmp/m8.json"

if ! cmp -s "$tmp/m1.json" "$tmp/m8.json"; then
    echo "check_metrics: metrics JSON differs between --jobs 1 and --jobs 8" >&2
    diff "$tmp/m1.json" "$tmp/m8.json" | head -20 >&2
    exit 1
fi
if ! cmp -s "$tmp/stdout.1" "$tmp/stdout.8"; then
    echo "check_metrics: stdout differs between --jobs 1 and --jobs 8" >&2
    diff "$tmp/stdout.1" "$tmp/stdout.8" | head -20 >&2
    exit 1
fi
grep -q '"schema": "afixp-obs/1"' "$tmp/m1.json" ||
    { echo "check_metrics: m1.json lacks the afixp-obs/1 schema tag" >&2; exit 1; }

# --- Prometheus suffix dispatch + IXP_METRICS default path ----------------
# shellcheck disable=SC2086
if ! IXP_METRICS="$tmp/m.prom" "$afixp" tables $opts --jobs 2 \
        > /dev/null 2> /dev/null; then
    echo "check_metrics: IXP_METRICS run exited non-zero" >&2
    exit 1
fi
[ -s "$tmp/m.prom" ] ||
    { echo "check_metrics: IXP_METRICS did not produce $tmp/m.prom" >&2; exit 1; }
grep -q '^# TYPE afixp_campaign_probes_sent_total counter' "$tmp/m.prom" ||
    { echo "check_metrics: m.prom lacks the probes-sent TYPE line" >&2; exit 1; }

echo "check_metrics: OK (JSON and stdout byte-identical across job counts)"
