#!/bin/sh
# CLI dispatch lint, run from CTest (see tools/CMakeLists.txt).
#
# The afixp front door must hold three properties: the top-level usage text
# enumerates every subcommand (the dispatch table is the single source, so
# a new subcommand cannot be reachable-but-undocumented), unknown or
# missing subcommands exit non-zero with usage on stderr, and every
# subcommand answers --help with exit 0.
#
# usage: check_cli.sh <afixp_binary>
set -u

afixp=${1:?usage: check_cli.sh <afixp_binary>}
[ -x "$afixp" ] || { echo "check_cli: cannot execute $afixp" >&2; exit 1; }

errors=0
err() {
    echo "check_cli: $*" >&2
    errors=$((errors + 1))
}

subcommands="campaign analyze tables casebook selftest bench chaos gen"

# --- 1. `afixp help` exits 0 and lists every subcommand -------------------
help_out=$("$afixp" help 2>&1)
[ $? -eq 0 ] || err "'afixp help' exited non-zero"
for c in $subcommands; do
    echo "$help_out" | grep -qE "^  $c " ||
        err "'afixp help' does not list subcommand '$c'"
done
for alias in --help -h; do
    "$afixp" "$alias" > /dev/null 2>&1 || err "'afixp $alias' exited non-zero"
done

# --- 2. Bare and unknown invocations fail loudly --------------------------
"$afixp" > /dev/null 2>&1 && err "bare 'afixp' exited zero"
bare_err=$("$afixp" 2>&1 >/dev/null)
echo "$bare_err" | grep -q "usage:" || err "bare 'afixp' prints no usage on stderr"

"$afixp" frobnicate > /dev/null 2>&1 && err "'afixp frobnicate' exited zero"
unk_err=$("$afixp" frobnicate 2>&1 >/dev/null)
echo "$unk_err" | grep -q "unknown command" ||
    err "'afixp frobnicate' does not report an unknown command"
echo "$unk_err" | grep -q "usage:" ||
    err "'afixp frobnicate' prints no usage on stderr"

# --- 3. Every subcommand answers --help with exit 0 -----------------------
for c in $subcommands; do
    "$afixp" "$c" --help > /dev/null 2>&1 ||
        err "'afixp $c --help' exited non-zero"
done

if [ "$errors" -gt 0 ]; then
    echo "check_cli: FAILED ($errors problem(s))" >&2
    exit 1
fi
echo "check_cli: OK"
